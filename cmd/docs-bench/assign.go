package main

import (
	"fmt"
	"time"

	"docs/internal/core"
	"docs/internal/experiment"
	"docs/internal/model"
)

// assignLatency measures what the candidate index buys the /request hot
// path: per-request assignment latency on the indexed path (one atomic
// load of the shared open-task array) against the seed's per-request scan
// over all tasks, as campaign size grows. Campaigns run with a redundancy
// cap and are driven until ~99% of tasks have met it — the steady state of
// a long-running campaign, where the scan still walks every task it ever
// published while the index walks only what is left open. Both systems
// see identical answer streams, and every measured request's assignment
// is asserted identical between the two paths.
func assignLatency(seed uint64, quick bool) (*experiment.Table, error) {
	sizes := []int{1000, 10000, 100000}
	requests := 40
	if quick {
		sizes = []int{1000, 5000}
		requests = 10
	}
	const redundancy = 3
	const m = 26
	tb := &experiment.Table{
		Title:  "OTA assignment — per-request latency, indexed candidate set vs full scan",
		Header: []string{"tasks", "open", "scan µs/req", "indexed µs/req", "speedup"},
	}
	for _, n := range sizes {
		build := func(scan bool) (*core.System, error) {
			sys, err := core.New(core.Config{
				GoldenCount: -1, HITSize: 20, AnswersPerTask: redundancy,
				RerunEvery: -1, ScanAssign: scan,
			})
			if err != nil {
				return nil, err
			}
			tasks := make([]*model.Task, n)
			for i := range tasks {
				dom := make(model.DomainVector, m)
				dom[i%m] = 1
				tasks[i] = &model.Task{
					ID: i, Text: fmt.Sprintf("t%d", i), Choices: []string{"a", "b"},
					Domain: dom, Truth: model.NoTruth, TrueDomain: model.NoTruth,
				}
			}
			if err := sys.Publish(tasks); err != nil {
				sys.Close()
				return nil, err
			}
			// Drive the campaign to its steady state: all but ~1% of tasks
			// meet the redundancy cap and leave the open pool.
			closed := n - n/100
			for id := 0; id < closed; id++ {
				for r := 0; r < redundancy; r++ {
					if err := sys.Submit(fmt.Sprintf("closer-%d", r), id, int(seed%2)); err != nil {
						sys.Close()
						return nil, err
					}
				}
			}
			return sys, nil
		}
		scanSys, err := build(true)
		if err != nil {
			return nil, err
		}
		idxSys, err := build(false)
		if err != nil {
			return nil, err
		}
		measure := func(sys *core.System) (time.Duration, [][]int, error) {
			got := make([][]int, 0, requests)
			start := time.Now()
			for r := 0; r < requests; r++ {
				// Fresh worker IDs: pure assignment cost, no answered-set
				// exclusions, identical across both systems.
				tasks, err := sys.Request(fmt.Sprintf("probe-%d", r), 20)
				if err != nil {
					return 0, nil, err
				}
				ids := make([]int, len(tasks))
				for i, t := range tasks {
					ids[i] = t.ID
				}
				got = append(got, ids)
			}
			return time.Since(start), got, nil
		}
		scanDur, scanIDs, err := measure(scanSys)
		if err != nil {
			return nil, err
		}
		idxDur, idxIDs, err := measure(idxSys)
		if err != nil {
			return nil, err
		}
		for r := range scanIDs {
			if fmt.Sprint(scanIDs[r]) != fmt.Sprint(idxIDs[r]) {
				return nil, fmt.Errorf("assign: request %d diverged at n=%d: scan=%v indexed=%v",
					r, n, scanIDs[r], idxIDs[r])
			}
		}
		open := idxSys.OpenTasks()
		scanUs := float64(scanDur.Microseconds()) / float64(requests)
		idxUs := float64(idxDur.Microseconds()) / float64(requests)
		tb.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", open),
			fmt.Sprintf("%.1f", scanUs), fmt.Sprintf("%.1f", idxUs),
			fmt.Sprintf("%.1fx", scanUs/idxUs))
		scanSys.Close()
		idxSys.Close()
	}
	tb.Notes = append(tb.Notes,
		"campaigns driven until ~99% of tasks met their redundancy cap (the long-campaign steady state)",
		"scan = seed path (rebuild candidates from all tasks per request); indexed = live open-task array",
		"every measured request's assignment asserted identical between the two paths")
	return tb, nil
}
