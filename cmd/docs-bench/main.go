// Command docs-bench regenerates every table and figure of the paper's
// evaluation (Section 6) and prints them as text tables.
//
// Usage:
//
//	docs-bench                  # run everything at full scale
//	docs-bench -exp fig5        # one experiment
//	docs-bench -quick           # reduced sizes (seconds instead of minutes)
//	docs-bench -seed 42         # change the deterministic seed
//
// Experiments: table3, fig3, fig4a, fig4b, fig4c, fig4d, fig4e, fig5,
// fig6, fig7a, fig7b, fig8, fig8c, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"docs/internal/experiment"
)

type runner struct {
	id  string
	fn  func(seed uint64, quick bool) (*experiment.Table, error)
	est string
}

var runners = []runner{
	{"table3", experiment.Table3DVE, "DVE efficiency: Algorithm 1 vs Enumeration"},
	{"fig3", experiment.Fig3DomainDetection, "domain detection accuracy: IC/FC/DOCS"},
	{"fig4a", experiment.Fig4aConvergence, "TI convergence"},
	{"fig4b", experiment.Fig4bGoldenTasks, "accuracy vs #golden tasks"},
	{"fig4c", experiment.Fig4cAnswersPerTask, "accuracy vs #answers per task"},
	{"fig4d", experiment.Fig4dWorkerQuality, "worker quality estimation deviation"},
	{"fig4e", experiment.Fig4eTIScalability, "TI scalability"},
	{"fig5", experiment.Fig5TruthInference, "truth inference comparison"},
	{"fig6", experiment.Fig6CaseStudy, "worker quality case study"},
	{"fig7a", experiment.Fig7aGoldenSelection, "golden selection vs enumeration"},
	{"fig7b", experiment.Fig7bGoldenScalability, "golden selection scalability"},
	{"fig8", experiment.Fig8Assignment, "online task assignment comparison"},
	{"fig8c", experiment.Fig8cOTAScalability, "OTA scalability"},
	{"ablation", experiment.AblationStudy, "contribution of each DOCS design choice"},
}

func main() {
	exp := flag.String("exp", "all", "experiment to run (table3, fig3, ..., fig8c, all)")
	seed := flag.Uint64("seed", 20160412, "deterministic seed")
	quick := flag.Bool("quick", false, "reduced sizes for a fast pass")
	flag.Parse()

	ran := 0
	for _, r := range runners {
		if *exp != "all" && *exp != r.id {
			continue
		}
		ran++
		fmt.Printf("## %s — %s (seed=%d quick=%v)\n\n", r.id, r.est, *seed, *quick)
		start := time.Now()
		tb, err := r.fn(*seed, *quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "docs-bench: %s: %v\n", r.id, err)
			os.Exit(1)
		}
		fmt.Println(tb.Format())
		fmt.Printf("(%s in %s)\n\n", r.id, time.Since(start).Round(time.Millisecond))
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "docs-bench: unknown experiment %q; known:", *exp)
		for _, r := range runners {
			fmt.Fprintf(os.Stderr, " %s", r.id)
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(2)
	}
}
