// Command docs-bench regenerates every table and figure of the paper's
// evaluation (Section 6) and prints them as text tables.
//
// Usage:
//
//	docs-bench                  # run everything at full scale
//	docs-bench -exp fig5        # one experiment
//	docs-bench -quick           # reduced sizes (seconds instead of minutes)
//	docs-bench -seed 42         # change the deterministic seed
//
// Experiments: table3, fig3, fig4a, fig4b, fig4c, fig4d, fig4e, fig5,
// fig6, fig7a, fig7b, fig8, fig8c, wal, multicampaign, assign, recover,
// http, density, all.
//
// The wal experiment measures the durable ingest path added on top of the
// paper (answer WAL with group commit); -wal-dir points it at a real
// device instead of a temp directory. The multicampaign experiment
// measures the campaign registry: N concurrent campaigns served by one
// overlapping worker population, with the shared worker store (profiles
// carry across campaigns) against isolated per-campaign stores (every
// campaign re-profiles every worker).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"docs/internal/core"
	"docs/internal/experiment"
	"docs/internal/mathx"
	"docs/internal/model"
	"docs/internal/registry"
	"docs/internal/wal"
)

type runner struct {
	id  string
	fn  func(seed uint64, quick bool) (*experiment.Table, error)
	est string
}

var runners = []runner{
	{"table3", experiment.Table3DVE, "DVE efficiency: Algorithm 1 vs Enumeration"},
	{"fig3", experiment.Fig3DomainDetection, "domain detection accuracy: IC/FC/DOCS"},
	{"fig4a", experiment.Fig4aConvergence, "TI convergence"},
	{"fig4b", experiment.Fig4bGoldenTasks, "accuracy vs #golden tasks"},
	{"fig4c", experiment.Fig4cAnswersPerTask, "accuracy vs #answers per task"},
	{"fig4d", experiment.Fig4dWorkerQuality, "worker quality estimation deviation"},
	{"fig4e", experiment.Fig4eTIScalability, "TI scalability"},
	{"fig5", experiment.Fig5TruthInference, "truth inference comparison"},
	{"fig6", experiment.Fig6CaseStudy, "worker quality case study"},
	{"fig7a", experiment.Fig7aGoldenSelection, "golden selection vs enumeration"},
	{"fig7b", experiment.Fig7bGoldenScalability, "golden selection scalability"},
	{"fig8", experiment.Fig8Assignment, "online task assignment comparison"},
	{"fig8c", experiment.Fig8cOTAScalability, "OTA scalability"},
	{"ablation", experiment.AblationStudy, "contribution of each DOCS design choice"},
}

func main() {
	exp := flag.String("exp", "all", "experiment to run (table3, fig3, ..., fig8c, wal, recover, all)")
	seed := flag.Uint64("seed", 20160412, "deterministic seed")
	quick := flag.Bool("quick", false, "reduced sizes for a fast pass")
	walDir := flag.String("wal-dir", "", "directory for the wal experiment's log files (empty = a temp directory)")
	recoverAnswers := flag.String("recover-answers", "", "comma-separated campaign sizes for the recover experiment (default 10000,100000; quick 2000; add 1000000 for the million-answer point)")
	jsonOut := flag.String("json", "", "write the recover experiment's rows as JSON to this path (the BENCH_recover.json CI artifact)")
	httpRate := flag.Float64("http-rate", 0, "http experiment offered arrival rate in answers/sec (0 = unthrottled: measure sustainable capacity)")
	httpClients := flag.Int("http-workers", 0, "http experiment concurrent client goroutines (0 = default 128, quick 32)")
	httpBatch := flag.Int("http-batch", 64, "http experiment answers per batch")
	httpJSON := flag.String("http-json", "", "write the http experiment's rows as JSON to this path (the BENCH_http.json CI artifact)")
	accuracyJSON := flag.String("accuracy-json", "", "write the accuracy experiment's rows as JSON to this path (the BENCH_accuracy.json CI artifact)")
	densityCampaigns := flag.Int("density-campaigns", 0, "density experiment campaign count (0 = default 10000, quick 1200)")
	densityLive := flag.Int("density-live", 0, "density experiment MaxLiveCampaigns cap (0 = default 64, quick 16)")
	densityJSON := flag.String("density-json", "", "write the density experiment's report as JSON to this path (the BENCH_density.json CI artifact)")
	flag.Parse()

	runners := append(runners,
		runner{"wal", walThroughput(*walDir), "answer WAL group-commit throughput"},
		runner{"multicampaign", multiCampaign, "registry serving N campaigns, shared vs isolated worker store"},
		runner{"assign", assignLatency, "per-request assignment latency: indexed candidate set vs full scan"},
		runner{"recover", recoverBoot(*recoverAnswers, jsonOut), "boot lag: full WAL replay vs state-snapshot restore"},
		runner{"http", httpLoad(httpRate, httpClients, httpBatch, httpJSON), "open-loop HTTP load: single vs batched submission over the real server"},
		runner{"accuracy", accuracyRunner(accuracyJSON), "adversarial crowds: DOCS vs MV/IC/FC/D-Max accuracy per population mix"},
		runner{"density", densityRun(densityCampaigns, densityLive, densityJSON), "campaign density: hibernating LRU cap vs all-live baseline, cold-wake latency"})
	ran := 0
	for _, r := range runners {
		if *exp != "all" && *exp != r.id {
			continue
		}
		ran++
		fmt.Printf("## %s — %s (seed=%d quick=%v)\n\n", r.id, r.est, *seed, *quick)
		start := time.Now()
		tb, err := r.fn(*seed, *quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "docs-bench: %s: %v\n", r.id, err)
			os.Exit(1)
		}
		fmt.Println(tb.Format())
		fmt.Printf("(%s in %s)\n\n", r.id, time.Since(start).Round(time.Millisecond))
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "docs-bench: unknown experiment %q; known:", *exp)
		for _, r := range runners {
			fmt.Fprintf(os.Stderr, " %s", r.id)
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(2)
	}
}

// multiCampaign measures the campaign registry end to end: N campaigns in
// one process, hammered by goroutines driving an overlapping worker
// population round-robin across campaigns. The "shared" rows host every
// campaign over one worker store — a worker runs the golden gauntlet once,
// ever — while the "isolated" rows give each campaign its own store, so
// every campaign re-profiles every worker. The golden-answer column is the
// profiling traffic the shared store saves; the answers/sec column is the
// registry's aggregate ingest rate.
func multiCampaign(seed uint64, quick bool) (*experiment.Table, error) {
	nTasks, nWorkers, goroutines := 160, 48, 8
	counts := []int{1, 2, 4, 8}
	if quick {
		nTasks, nWorkers = 60, 24
		counts = []int{1, 2, 4}
	}
	tb := &experiment.Table{
		Title:  "Multi-campaign registry — overlapping workers, shared vs isolated store",
		Header: []string{"campaigns", "store", "answers", "golden", "elapsed", "answers/sec"},
	}
	m := 26
	makeTasks := func(offset int) []*model.Task {
		tasks := make([]*model.Task, nTasks)
		for i := range tasks {
			dom := make(model.DomainVector, m)
			dom[(i+offset)%m] = 1
			tasks[i] = &model.Task{
				ID: i, Text: fmt.Sprintf("t%d", i), Choices: []string{"a", "b"},
				Domain: dom, Truth: (i + offset) % 2, TrueDomain: model.NoTruth,
			}
		}
		return tasks
	}
	for _, n := range counts {
		for _, shared := range []bool{true, false} {
			// Shared: one registry hosts all N campaigns over one store.
			// Isolated: N single-campaign registries, one store each.
			regs := make([]*registry.Registry, 0, n)
			open := func() (*registry.Registry, error) {
				return registry.Open(registry.Config{
					GoldenCount: 8, HITSize: 4, AnswersPerTask: 3, RerunEvery: 50,
				})
			}
			var err error
			if shared {
				var reg *registry.Registry
				if reg, err = open(); err != nil {
					return nil, err
				}
				regs = append(regs, reg)
			} else {
				for i := 0; i < n; i++ {
					reg, oerr := open()
					if oerr != nil {
						return nil, oerr
					}
					regs = append(regs, reg)
				}
			}
			campaigns := make([]*campaignUnderTest, n)
			for i := 0; i < n; i++ {
				reg := regs[0]
				if !shared {
					reg = regs[i]
				}
				sys, cerr := reg.Create(fmt.Sprintf("c%d", i))
				if cerr != nil {
					return nil, cerr
				}
				if cerr := sys.Publish(makeTasks(3 * i)); cerr != nil {
					return nil, cerr
				}
				golden := map[int]bool{}
				for _, id := range sys.GoldenTasks() {
					golden[id] = true
				}
				campaigns[i] = &campaignUnderTest{sys: sys, golden: golden}
			}

			var goldenAnswers atomic.Int64
			start := time.Now()
			var wg sync.WaitGroup
			errs := make(chan error, goroutines)
			for g := 0; g < goroutines; g++ {
				g := g
				wg.Add(1)
				go func() {
					defer wg.Done()
					r := mathx.NewRand(seed + uint64(1000*g))
					empty := 0
					for empty < 100*n {
						w := fmt.Sprintf("w%d", r.Intn(nWorkers))
						c := campaigns[r.Intn(n)]
						got, rerr := c.sys.Request(w, 4)
						if rerr != nil {
							errs <- rerr
							return
						}
						if len(got) == 0 {
							empty++
							continue
						}
						empty = 0
						for _, tk := range got {
							choice := tk.Truth
							if c.golden[tk.ID] {
								goldenAnswers.Add(1)
							} else if r.Float64() >= 0.85 {
								choice = 1 - choice
							}
							if serr := c.sys.Submit(w, tk.ID, choice); serr != nil {
								errs <- serr
								return
							}
						}
					}
				}()
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				return nil, err
			}
			elapsed := time.Since(start)
			var answers int64
			for _, c := range campaigns {
				answers += c.sys.AnswerCount()
			}
			total := answers + goldenAnswers.Load()
			storeKind := "shared"
			if !shared {
				storeKind = "isolated"
			}
			tb.AddRow(fmt.Sprintf("%d", n), storeKind,
				fmt.Sprintf("%d", answers), fmt.Sprintf("%d", goldenAnswers.Load()),
				elapsed.Round(time.Millisecond).String(),
				fmt.Sprintf("%.0f", float64(total)/elapsed.Seconds()))
			for _, reg := range regs {
				if cerr := reg.Close(); cerr != nil {
					return nil, cerr
				}
			}
		}
	}
	tb.Notes = append(tb.Notes,
		"one overlapping worker pool drives every campaign; golden = profiling answers collected",
		"shared rows profile each worker once ever (the registry's shared store); isolated rows re-profile per campaign")
	return tb, nil
}

// campaignUnderTest pairs a campaign's serving core with its golden set.
type campaignUnderTest struct {
	sys    *core.System
	golden map[int]bool
}

// walThroughput returns a runner measuring the durable ingest path: append
// throughput of the answer WAL under increasing submitter concurrency,
// with and without per-batch fsync. It quantifies what durability costs
// the serving core's hot path (compare the single-appender row against the
// grouped ones to see group commit amortizing the write syscalls).
func walThroughput(dir string) func(seed uint64, quick bool) (*experiment.Table, error) {
	return func(seed uint64, quick bool) (*experiment.Table, error) {
		records := 200000
		if quick {
			records = 20000
		}
		tb := &experiment.Table{
			Title:  "WAL — group-commit append throughput",
			Header: []string{"appenders", "sync", "records", "records/sec", "µs/record"},
		}
		for _, policy := range []wal.SyncPolicy{wal.SyncNever, wal.SyncEveryBatch} {
			for _, appenders := range []int{1, 4, 16} {
				d := dir
				if d == "" {
					tmp, err := os.MkdirTemp("", "docs-walbench-*")
					if err != nil {
						return nil, err
					}
					defer os.RemoveAll(tmp)
					d = tmp
				}
				d = filepath.Join(d, fmt.Sprintf("run-%d-%d", policy, appenders))
				l, err := wal.Open(d, wal.Options{Sync: policy})
				if err != nil {
					return nil, err
				}
				start := time.Now()
				var wg sync.WaitGroup
				perG := records / appenders
				errs := make(chan error, appenders)
				for g := 0; g < appenders; g++ {
					wg.Add(1)
					go func(g int) {
						defer wg.Done()
						rec := wal.Record{Kind: wal.KindAnswer, Worker: fmt.Sprintf("w%d", g)}
						for i := 0; i < perG; i++ {
							rec.Task, rec.Choice = i, i%4
							if _, err := l.Append(rec); err != nil {
								errs <- err
								return
							}
						}
					}(g)
				}
				wg.Wait()
				close(errs)
				for err := range errs {
					l.Close()
					return nil, err
				}
				if err := l.Close(); err != nil {
					return nil, err
				}
				elapsed := time.Since(start)
				n := perG * appenders
				rate := float64(n) / elapsed.Seconds()
				syncName := "none"
				if policy == wal.SyncEveryBatch {
					syncName = "batch"
				}
				tb.AddRow(fmt.Sprintf("%d", appenders), syncName, fmt.Sprintf("%d", n),
					fmt.Sprintf("%.0f", rate), fmt.Sprintf("%.2f", elapsed.Seconds()/float64(n)*1e6))
			}
		}
		tb.Notes = append(tb.Notes,
			"append = enqueue + wait for the group-commit batch; sync=batch adds one fsync per batch",
			"logs written under a fresh directory per row; pass -wal-dir to target a real device")
		return tb, nil
	}
}
