// Command docs-bench regenerates every table and figure of the paper's
// evaluation (Section 6) and prints them as text tables.
//
// Usage:
//
//	docs-bench                  # run everything at full scale
//	docs-bench -exp fig5        # one experiment
//	docs-bench -quick           # reduced sizes (seconds instead of minutes)
//	docs-bench -seed 42         # change the deterministic seed
//
// Experiments: table3, fig3, fig4a, fig4b, fig4c, fig4d, fig4e, fig5,
// fig6, fig7a, fig7b, fig8, fig8c, wal, all.
//
// The wal experiment measures the durable ingest path added on top of the
// paper (answer WAL with group commit); -wal-dir points it at a real
// device instead of a temp directory.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"docs/internal/experiment"
	"docs/internal/wal"
)

type runner struct {
	id  string
	fn  func(seed uint64, quick bool) (*experiment.Table, error)
	est string
}

var runners = []runner{
	{"table3", experiment.Table3DVE, "DVE efficiency: Algorithm 1 vs Enumeration"},
	{"fig3", experiment.Fig3DomainDetection, "domain detection accuracy: IC/FC/DOCS"},
	{"fig4a", experiment.Fig4aConvergence, "TI convergence"},
	{"fig4b", experiment.Fig4bGoldenTasks, "accuracy vs #golden tasks"},
	{"fig4c", experiment.Fig4cAnswersPerTask, "accuracy vs #answers per task"},
	{"fig4d", experiment.Fig4dWorkerQuality, "worker quality estimation deviation"},
	{"fig4e", experiment.Fig4eTIScalability, "TI scalability"},
	{"fig5", experiment.Fig5TruthInference, "truth inference comparison"},
	{"fig6", experiment.Fig6CaseStudy, "worker quality case study"},
	{"fig7a", experiment.Fig7aGoldenSelection, "golden selection vs enumeration"},
	{"fig7b", experiment.Fig7bGoldenScalability, "golden selection scalability"},
	{"fig8", experiment.Fig8Assignment, "online task assignment comparison"},
	{"fig8c", experiment.Fig8cOTAScalability, "OTA scalability"},
	{"ablation", experiment.AblationStudy, "contribution of each DOCS design choice"},
}

func main() {
	exp := flag.String("exp", "all", "experiment to run (table3, fig3, ..., fig8c, wal, all)")
	seed := flag.Uint64("seed", 20160412, "deterministic seed")
	quick := flag.Bool("quick", false, "reduced sizes for a fast pass")
	walDir := flag.String("wal-dir", "", "directory for the wal experiment's log files (empty = a temp directory)")
	flag.Parse()

	runners := append(runners, runner{"wal", walThroughput(*walDir), "answer WAL group-commit throughput"})
	ran := 0
	for _, r := range runners {
		if *exp != "all" && *exp != r.id {
			continue
		}
		ran++
		fmt.Printf("## %s — %s (seed=%d quick=%v)\n\n", r.id, r.est, *seed, *quick)
		start := time.Now()
		tb, err := r.fn(*seed, *quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "docs-bench: %s: %v\n", r.id, err)
			os.Exit(1)
		}
		fmt.Println(tb.Format())
		fmt.Printf("(%s in %s)\n\n", r.id, time.Since(start).Round(time.Millisecond))
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "docs-bench: unknown experiment %q; known:", *exp)
		for _, r := range runners {
			fmt.Fprintf(os.Stderr, " %s", r.id)
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(2)
	}
}

// walThroughput returns a runner measuring the durable ingest path: append
// throughput of the answer WAL under increasing submitter concurrency,
// with and without per-batch fsync. It quantifies what durability costs
// the serving core's hot path (compare the single-appender row against the
// grouped ones to see group commit amortizing the write syscalls).
func walThroughput(dir string) func(seed uint64, quick bool) (*experiment.Table, error) {
	return func(seed uint64, quick bool) (*experiment.Table, error) {
		records := 200000
		if quick {
			records = 20000
		}
		tb := &experiment.Table{
			Title:  "WAL — group-commit append throughput",
			Header: []string{"appenders", "sync", "records", "records/sec", "µs/record"},
		}
		for _, policy := range []wal.SyncPolicy{wal.SyncNever, wal.SyncEveryBatch} {
			for _, appenders := range []int{1, 4, 16} {
				d := dir
				if d == "" {
					tmp, err := os.MkdirTemp("", "docs-walbench-*")
					if err != nil {
						return nil, err
					}
					defer os.RemoveAll(tmp)
					d = tmp
				}
				d = filepath.Join(d, fmt.Sprintf("run-%d-%d", policy, appenders))
				l, err := wal.Open(d, wal.Options{Sync: policy})
				if err != nil {
					return nil, err
				}
				start := time.Now()
				var wg sync.WaitGroup
				perG := records / appenders
				errs := make(chan error, appenders)
				for g := 0; g < appenders; g++ {
					wg.Add(1)
					go func(g int) {
						defer wg.Done()
						rec := wal.Record{Kind: wal.KindAnswer, Worker: fmt.Sprintf("w%d", g)}
						for i := 0; i < perG; i++ {
							rec.Task, rec.Choice = i, i%4
							if _, err := l.Append(rec); err != nil {
								errs <- err
								return
							}
						}
					}(g)
				}
				wg.Wait()
				close(errs)
				for err := range errs {
					l.Close()
					return nil, err
				}
				if err := l.Close(); err != nil {
					return nil, err
				}
				elapsed := time.Since(start)
				n := perG * appenders
				rate := float64(n) / elapsed.Seconds()
				syncName := "none"
				if policy == wal.SyncEveryBatch {
					syncName = "batch"
				}
				tb.AddRow(fmt.Sprintf("%d", appenders), syncName, fmt.Sprintf("%d", n),
					fmt.Sprintf("%.0f", rate), fmt.Sprintf("%.2f", elapsed.Seconds()/float64(n)*1e6))
			}
		}
		tb.Notes = append(tb.Notes,
			"append = enqueue + wait for the group-commit batch; sync=batch adds one fsync per batch",
			"logs written under a fresh directory per row; pass -wal-dir to target a real device")
		return tb, nil
	}
}
