package main

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"docs/internal/core"
	"docs/internal/experiment"
	"docs/internal/model"
)

// recoverRow is one machine-readable measurement of the recover
// experiment, emitted to the -json artifact (BENCH_recover.json in CI).
type recoverRow struct {
	Answers         int     `json:"answers"`
	Records         int     `json:"records"`
	ReplaySeconds   float64 `json:"replay_seconds"`
	SnapshotSeconds float64 `json:"snapshot_seconds"`
	Speedup         float64 `json:"speedup"`
	SuffixRecords   int     `json:"suffix_records"`
}

// recoverBoot measures what the state-snapshot subsystem buys at restart:
// the same logged campaign is booted twice, once by full WAL replay and
// once from a snapshot covering the whole log, and the two recovered
// states are asserted bit-identical (Fingerprint) before the timings are
// reported — the experiment is a correctness check as much as a benchmark.
//
// The campaign is synthetic (preset domain vectors, golden profiling and
// periodic reruns disabled) so the replay cost measured is the incremental
// ingest path itself; with reruns enabled the full replay would also
// re-pay every EM batch run and the gap would only widen. Sizes come from
// -recover-answers (default 10000,100000; -quick uses 2000 — pass e.g.
// -recover-answers 1000000 for the million-answer point).
func recoverBoot(sizes string, jsonOut *string) func(seed uint64, quick bool) (*experiment.Table, error) {
	return func(seed uint64, quick bool) (*experiment.Table, error) {
		ns, err := parseSizes(sizes, quick)
		if err != nil {
			return nil, err
		}
		tb := &experiment.Table{
			Title:  "Recovery — full WAL replay vs state-snapshot boot",
			Header: []string{"answers", "records", "replay boot", "snapshot boot", "speedup", "suffix"},
		}
		var rows []recoverRow
		for _, n := range ns {
			row, err := recoverOne(n)
			if err != nil {
				return nil, err
			}
			rows = append(rows, *row)
			tb.AddRow(fmt.Sprintf("%d", row.Answers), fmt.Sprintf("%d", row.Records),
				fmt.Sprintf("%.3fs", row.ReplaySeconds), fmt.Sprintf("%.3fs", row.SnapshotSeconds),
				fmt.Sprintf("%.1fx", row.Speedup), fmt.Sprintf("%d", row.SuffixRecords))
		}
		tb.Notes = append(tb.Notes,
			"both boots recover the identical campaign; fingerprints asserted bit-identical before timing is reported",
			"replay boot re-applies every record through the serial submit path; snapshot boot restores state and replays only the suffix",
			"golden profiling and periodic reruns disabled: the replay column is the pure ingest cost (reruns would widen the gap)")
		if jsonOut != nil && *jsonOut != "" {
			blob, err := json.MarshalIndent(map[string]any{"experiment": "recover", "rows": rows}, "", "  ")
			if err != nil {
				return nil, err
			}
			if dir := filepath.Dir(*jsonOut); dir != "." {
				if err := os.MkdirAll(dir, 0o755); err != nil {
					return nil, err
				}
			}
			if err := os.WriteFile(*jsonOut, append(blob, '\n'), 0o644); err != nil {
				return nil, err
			}
			tb.Notes = append(tb.Notes, "machine-readable rows written to "+*jsonOut)
		}
		return tb, nil
	}
}

func parseSizes(sizes string, quick bool) ([]int, error) {
	if sizes == "" {
		if quick {
			return []int{2000}, nil
		}
		return []int{10000, 100000}, nil
	}
	var ns []int
	for _, f := range strings.Split(sizes, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("recover: bad -recover-answers entry %q", f)
		}
		ns = append(ns, n)
	}
	return ns, nil
}

// recoverOne generates one logged campaign of n answers and measures the
// two boot paths.
func recoverOne(n int) (*recoverRow, error) {
	dir, err := os.MkdirTemp("", "docs-recover-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	cfg := core.Config{
		GoldenCount:     -1, // no golden gauntlet: every worker submits directly
		RerunEvery:      -1, // measure the pure ingest replay cost
		CheckpointEvery: -1,
		SnapshotEvery:   -1, // the snapshot is written deterministically below
	}
	// Workers cycle every nTasks submissions, so the (i/nTasks, i%nTasks)
	// pairing below never repeats a (worker, task) pair.
	const nTasks = 200

	gen, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	if _, err := gen.Recover(dir); err != nil {
		return nil, err
	}
	if err := gen.Publish(synthTasks(nTasks, gen.Domains().Size())); err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		w := fmt.Sprintf("w%d", i/nTasks)
		if err := gen.Submit(w, i%nTasks, i%2); err != nil {
			return nil, err
		}
	}
	if err := gen.Close(); err != nil {
		return nil, err
	}

	// Boot 1: full replay — and from the recovered (quiescent, serial)
	// state, write the snapshot the second boot will restore.
	start := time.Now()
	s1, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	info1, err := s1.Recover(dir)
	if err != nil {
		return nil, err
	}
	replayBoot := time.Since(start)
	if info1.SnapshotUsed {
		return nil, fmt.Errorf("recover: replay boot unexpectedly found a snapshot")
	}
	if err := s1.WriteSnapshot(); err != nil {
		return nil, err
	}
	fp1 := fingerprintHash(s1)
	if err := s1.Close(); err != nil {
		return nil, err
	}

	// Boot 2: snapshot-assisted.
	start = time.Now()
	s2, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	info2, err := s2.Recover(dir)
	if err != nil {
		return nil, err
	}
	snapBoot := time.Since(start)
	if !info2.SnapshotUsed {
		return nil, fmt.Errorf("recover: snapshot boot fell back to replay: %s", info2.SnapshotRejected)
	}
	if fp2 := fingerprintHash(s2); fp2 != fp1 {
		return nil, fmt.Errorf("recover: snapshot boot state differs from replay boot (fingerprint %x vs %x)", fp2, fp1)
	}
	if err := s2.Close(); err != nil {
		return nil, err
	}
	return &recoverRow{
		Answers:         n,
		Records:         info1.Records,
		ReplaySeconds:   replayBoot.Seconds(),
		SnapshotSeconds: snapBoot.Seconds(),
		Speedup:         replayBoot.Seconds() / snapBoot.Seconds(),
		SuffixRecords:   info2.Records,
	}, nil
}

func synthTasks(n, m int) []*model.Task {
	tasks := make([]*model.Task, n)
	for i := range tasks {
		dom := make(model.DomainVector, m)
		dom[i%m] = 1
		tasks[i] = &model.Task{
			ID: i, Text: fmt.Sprintf("t%d", i), Choices: []string{"a", "b"},
			Domain: dom, Truth: model.NoTruth, TrueDomain: model.NoTruth,
		}
	}
	return tasks
}

// fingerprintHash condenses the (large) state fingerprint for comparison.
func fingerprintHash(s *core.System) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s.Fingerprint()))
	return h.Sum64()
}
