package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"docs"
	"docs/internal/experiment"
	"docs/internal/httpapi"
	"docs/internal/wal"
)

// httpRow is one machine-readable measurement of the http experiment,
// emitted to the -http-json artifact (BENCH_http.json in CI).
type httpRow struct {
	Mode          string  `json:"mode"`
	Batch         int     `json:"batch"`
	Answers       int     `json:"answers"`
	ElapsedSec    float64 `json:"elapsed_seconds"`
	AnswersPerSec float64 `json:"answers_per_sec"`
	P50Ms         float64 `json:"p50_ms"`
	P99Ms         float64 `json:"p99_ms"`
	P999Ms        float64 `json:"p999_ms"`
	Workers       int     `json:"workers"`
	OfferedRate   float64 `json:"offered_answers_per_sec"`
}

// httpLoad returns a runner measuring the HTTP serving path end to end:
// an open-loop load generator drives Request→Submit visits against the
// real handler (docs/internal/httpapi) over real TCP with keep-alive
// connection reuse, a WAL directory, and per-group fsync — the paper
// system's most honest serving configuration. Three wire strategies
// carry identical traffic:
//
//	single     one POST /submit per answer (the legacy protocol)
//	batch-json POST /submit-batch, JSON body, batch answers per call
//	batch-bin  POST /submit-batch, binary framed body (docs/protocol.md)
//
// The generator is open-loop in the wrk2 sense: visit i is *scheduled*
// at t0 + i/rate regardless of how long earlier visits took, so a slow
// server accumulates backlog instead of silently throttling the offered
// load (closed-loop generators suffer coordinated omission and flatter
// tails). Workers pull visit indices from one atomic counter; a visit
// behind schedule starts immediately. The default rate is 0 = unthrottled:
// every visit is due at t0, the offered load is effectively infinite, and
// the measured answers/sec is the sustainable capacity of that wire
// strategy. Each visit uses a fresh worker ID, so the simulated
// population is thousands of workers and no visit exhausts its
// answerable-task set.
//
// Latency samples are per submitting HTTP call — one per answer in
// single mode, one per batch otherwise — because that is the unit a
// client blocks on; answers/sec counts accepted answers over the whole
// window either way, which is what makes the modes comparable.
func httpLoad(rate *float64, clients *int, batch *int, jsonOut *string) func(seed uint64, quick bool) (*experiment.Table, error) {
	return func(seed uint64, quick bool) (*experiment.Table, error) {
		answers, workers := 48000, 128
		if quick {
			answers, workers = 6000, 32
		}
		if *clients > 0 {
			workers = *clients
		}
		b := *batch
		if b <= 0 {
			b = 64
		}
		tb := &experiment.Table{
			Title:  "HTTP serving — open-loop load, single vs batched submission (WAL + fsync)",
			Header: []string{"mode", "batch", "answers", "answers/sec", "p50", "p99", "p99.9"},
		}
		var rows []httpRow
		for _, mode := range []string{"single", "batch-json", "batch-bin"} {
			row, err := httpLoadOne(mode, answers, b, workers, *rate)
			if err != nil {
				return nil, fmt.Errorf("http %s: %w", mode, err)
			}
			rows = append(rows, *row)
			tb.AddRow(mode, fmt.Sprintf("%d", row.Batch), fmt.Sprintf("%d", row.Answers),
				fmt.Sprintf("%.0f", row.AnswersPerSec),
				fmt.Sprintf("%.2fms", row.P50Ms), fmt.Sprintf("%.2fms", row.P99Ms),
				fmt.Sprintf("%.2fms", row.P999Ms))
		}
		tb.Notes = append(tb.Notes,
			"real TCP + keep-alive against the docs-server handler; WAL enabled, fsync once per group commit",
			"open-loop arrivals (visit i due at t0+i/rate); -http-rate 0 = unthrottled, measuring sustainable capacity",
			"latency is per submitting HTTP call: per answer in single mode, per batch otherwise",
			fmt.Sprintf("speedup batched vs single: json %.1fx, binary %.1fx",
				rows[1].AnswersPerSec/rows[0].AnswersPerSec, rows[2].AnswersPerSec/rows[0].AnswersPerSec))
		if jsonOut != nil && *jsonOut != "" {
			blob, err := json.MarshalIndent(map[string]any{"experiment": "http", "rows": rows}, "", "  ")
			if err != nil {
				return nil, err
			}
			if dir := filepath.Dir(*jsonOut); dir != "." {
				if err := os.MkdirAll(dir, 0o755); err != nil {
					return nil, err
				}
			}
			if err := os.WriteFile(*jsonOut, append(blob, '\n'), 0o644); err != nil {
				return nil, err
			}
			tb.Notes = append(tb.Notes, "machine-readable rows written to "+*jsonOut)
		}
		return tb, nil
	}
}

// httpLoadOne boots a fresh durable server, publishes a campaign over
// HTTP, and drives totalAnswers answers through it with the given wire
// strategy.
func httpLoadOne(mode string, totalAnswers, batch, workers int, rate float64) (*httpRow, error) {
	dir, err := os.MkdirTemp("", "docs-httpbench-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	srv, err := httpapi.New(docs.Config{
		WALDir:            dir,
		WALSyncEveryBatch: true, // the honest configuration: acks survive power loss
		GoldenCount:       -1,   // no gauntlet: fresh workers submit immediately
		RerunEvery:        -1,   // measure the serving path, not EM re-inference
		CheckpointEvery:   -1,
		SnapshotEvery:     -1,
		HITSize:           batch,
	}, httpapi.Options{})
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String() + "/c/bench"

	// One shared transport: every worker goroutine reuses the same
	// keep-alive pool, the configuration docs-simulate -server uses too.
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        workers + 8,
		MaxIdleConnsPerHost: workers + 8,
	}}
	defer client.CloseIdleConnections()

	const nTasks = 256
	type pubTask struct {
		ID          int      `json:"id"`
		Text        string   `json:"text"`
		Choices     []string `json:"choices"`
		GoldenTruth int      `json:"golden_truth"`
	}
	pub := struct {
		Tasks []pubTask `json:"tasks"`
	}{Tasks: make([]pubTask, nTasks)}
	for i := range pub.Tasks {
		pub.Tasks[i] = pubTask{ID: i, Text: fmt.Sprintf("t%d", i),
			Choices: []string{"a", "b"}, GoldenTruth: docs.NoTruth}
	}
	blob, err := json.Marshal(pub)
	if err != nil {
		return nil, err
	}
	if err := postOK(client, base+"/publish", "application/json", blob); err != nil {
		return nil, fmt.Errorf("publish: %w", err)
	}

	visits := (totalAnswers + batch - 1) / batch
	visitRate := 0.0 // visits/sec; 0 = every visit due at t0
	if rate > 0 {
		visitRate = rate / float64(batch)
	}
	var next atomic.Int64
	var accepted atomic.Int64
	lats := make([][]time.Duration, workers)
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	t0 := time.Now()
	for g := 0; g < workers; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(visits) {
					return
				}
				if visitRate > 0 {
					due := t0.Add(time.Duration(float64(i) / visitRate * float64(time.Second)))
					if d := time.Until(due); d > 0 {
						time.Sleep(d)
					}
				}
				n, ls, err := httpVisit(client, base, mode, fmt.Sprintf("lw%d", i), batch)
				if err != nil {
					errs <- fmt.Errorf("visit %d: %w", i, err)
					return
				}
				accepted.Add(int64(n))
				lats[g] = append(lats[g], ls...)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(t0)
	close(errs)
	for err := range errs {
		return nil, err
	}
	var all []time.Duration
	for _, ls := range lats {
		all = append(all, ls...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return &httpRow{
		Mode:          mode,
		Batch:         batch,
		Answers:       int(accepted.Load()),
		ElapsedSec:    elapsed.Seconds(),
		AnswersPerSec: float64(accepted.Load()) / elapsed.Seconds(),
		P50Ms:         pctlMs(all, 0.50),
		P99Ms:         pctlMs(all, 0.99),
		P999Ms:        pctlMs(all, 0.999),
		Workers:       workers,
		OfferedRate:   rate,
	}, nil
}

// httpVisit performs one Request→Submit round trip for a fresh worker:
// fetch up to batch tasks, answer each, submit with the given wire
// strategy. Returns accepted answers and one latency sample per
// submitting HTTP call.
func httpVisit(client *http.Client, base, mode, worker string, batch int) (int, []time.Duration, error) {
	resp, err := client.Get(fmt.Sprintf("%s/request?worker=%s&k=%d", base, worker, batch))
	if err != nil {
		return 0, nil, err
	}
	var got struct {
		Tasks []struct {
			ID int `json:"id"`
		} `json:"tasks"`
	}
	err = json.NewDecoder(resp.Body).Decode(&got)
	resp.Body.Close()
	if err != nil {
		return 0, nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, nil, fmt.Errorf("request: status %d", resp.StatusCode)
	}
	if len(got.Tasks) == 0 {
		return 0, nil, fmt.Errorf("request: no tasks for %s", worker)
	}

	switch mode {
	case "single":
		lats := make([]time.Duration, 0, len(got.Tasks))
		for _, t := range got.Tasks {
			body, err := json.Marshal(map[string]any{"worker": worker, "task": t.ID, "choice": t.ID % 2})
			if err != nil {
				return 0, nil, err
			}
			start := time.Now()
			if err := postOK(client, base+"/submit", "application/json", body); err != nil {
				return 0, nil, err
			}
			lats = append(lats, time.Since(start))
		}
		return len(got.Tasks), lats, nil

	case "batch-json":
		req := struct {
			Answers []map[string]any `json:"answers"`
		}{}
		for _, t := range got.Tasks {
			req.Answers = append(req.Answers, map[string]any{"worker": worker, "task": t.ID, "choice": t.ID % 2})
		}
		body, err := json.Marshal(req)
		if err != nil {
			return 0, nil, err
		}
		return submitBatch(client, base, "application/json", body)

	case "batch-bin":
		recs := make([]wal.Record, len(got.Tasks))
		for i, t := range got.Tasks {
			recs[i] = wal.Record{Worker: worker, Task: t.ID, Choice: t.ID % 2}
		}
		return submitBatch(client, base, httpapi.BatchContentType, wal.EncodeBatch(nil, recs))

	default:
		return 0, nil, fmt.Errorf("unknown mode %q", mode)
	}
}

// submitBatch posts one batch body and returns the server's accepted
// count plus the single latency sample for the call.
func submitBatch(client *http.Client, base, contentType string, body []byte) (int, []time.Duration, error) {
	start := time.Now()
	resp, err := client.Post(base+"/submit-batch", contentType, bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	var out struct {
		Accepted int `json:"accepted"`
		Rejected int `json:"rejected"`
	}
	err = json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	lat := time.Since(start)
	if err != nil {
		return 0, nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, nil, fmt.Errorf("submit-batch: status %d", resp.StatusCode)
	}
	if out.Rejected > 0 {
		return 0, nil, fmt.Errorf("submit-batch: %d items rejected", out.Rejected)
	}
	return out.Accepted, []time.Duration{lat}, nil
}

// postOK posts a body and fails unless the response is 200; the body is
// drained so the keep-alive connection returns to the pool.
func postOK(client *http.Client, url, contentType string, body []byte) error {
	resp, err := client.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return fmt.Errorf("%s: status %d: %s", url, resp.StatusCode, msg)
	}
	_, err = io.Copy(io.Discard, resp.Body)
	return err
}

// pctlMs reads the p'th percentile from a sorted latency slice, in
// milliseconds.
func pctlMs(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p*float64(len(sorted)-1) + 0.5)
	return float64(sorted[i]) / float64(time.Millisecond)
}
