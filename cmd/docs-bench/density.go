package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"docs/internal/experiment"
	"docs/internal/registry"
)

// densityReport is the machine-readable result of the density experiment,
// emitted to the -density-json artifact (BENCH_density.json in CI).
type densityReport struct {
	Campaigns             int     `json:"campaigns"`
	AnswersPerCampaign    int     `json:"answers_per_campaign"`
	MaxLive               int     `json:"max_live"`
	HeapAllLiveBytes      uint64  `json:"heap_all_live_bytes"`
	HeapAfterHibernate    uint64  `json:"heap_after_hibernate_bytes"`
	HeapCappedBytes       uint64  `json:"heap_capped_bytes"`
	AllLiveBootSeconds    float64 `json:"all_live_boot_seconds"`
	CappedBootSeconds     float64 `json:"capped_boot_seconds"`
	WakesSampled          int     `json:"wakes_sampled"`
	WakeP50Ms             float64 `json:"wake_p50_ms"`
	WakeP99Ms             float64 `json:"wake_p99_ms"`
	FingerprintsVerified  int     `json:"fingerprints_verified"`
	HeapReductionVsLive   float64 `json:"heap_reduction_vs_live"`
	SuffixRecordsPerWake  int     `json:"suffix_records_per_wake"`
	ResidentPeakDuringSim int     `json:"resident_peak_during_sim"`
}

// densityRun measures campaign density: how many campaigns one node holds
// when idle ones hibernate, what that costs a cold request, and that the
// woken state is bit-identical to the state that hibernated. Three phases:
//
//  1. Build: N small campaigns are created, driven, fingerprinted and
//     hibernated (final snapshot + fsync + release) in one durable
//     registry. Heap is sampled with everything live and again after the
//     hibernations, showing the memory actually released.
//  2. All-live baseline: the root is rebooted UNCAPPED — every campaign
//     replays at Open and stays resident, the pre-hibernation behavior.
//     Boot time and heap are the baseline the cap is judged against.
//  3. Capped serving: the root is rebooted with MaxLiveCampaigns=L. Boot
//     is O(readdir); a sample of cold campaigns is then woken by their
//     first request, timing each wake (p50/p99), verifying every woken
//     fingerprint against its phase-1 capture, and asserting the resident
//     set never exceeds L.
//
// The experiment fails (rather than reporting numbers) on any fingerprint
// mismatch or un-snapshotted wake — like the recover experiment, it is a
// correctness check first and a benchmark second.
func densityRun(nCampaigns, maxLive *int, jsonOut *string) func(seed uint64, quick bool) (*experiment.Table, error) {
	return func(seed uint64, quick bool) (*experiment.Table, error) {
		n := *nCampaigns
		if n <= 0 {
			n = 10000
			if quick {
				n = 1200
			}
		}
		live := *maxLive
		if live <= 0 {
			live = 64
			if quick {
				live = 16
			}
		}
		const nTasks, answersPer = 12, 24
		sample := 200
		if quick {
			sample = 50
		}
		if sample > n {
			sample = n
		}

		root, err := os.MkdirTemp("", "docs-density-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(root)
		// Tiny synthetic campaigns: no golden gauntlet, no reruns, no
		// background cadence — the footprint measured is the serving state
		// itself, and wake cost is the snapshot restore.
		cfg := registry.Config{
			WALDir:          root,
			GoldenCount:     -1,
			RerunEvery:      -1,
			CheckpointEvery: -1,
			SnapshotEvery:   -1,
		}

		// Phase 1 — build and hibernate N campaigns.
		reg, err := registry.Open(cfg)
		if err != nil {
			return nil, err
		}
		fps := make([]uint64, n)
		names := make([]string, n)
		for i := 0; i < n; i++ {
			names[i] = fmt.Sprintf("c%06d", i)
			sys, err := reg.Create(names[i])
			if err != nil {
				return nil, err
			}
			if err := sys.Publish(synthTasks(nTasks, sys.Domains().Size())); err != nil {
				return nil, err
			}
			for a := 0; a < answersPer; a++ {
				w := fmt.Sprintf("w%d", a/nTasks)
				if err := sys.Submit(w, a%nTasks, (a+i)%2); err != nil {
					return nil, err
				}
			}
			fps[i] = fingerprintHash(sys)
		}
		heapAllLive := heapInUse()
		for _, name := range names {
			if err := reg.Hibernate(name); err != nil {
				return nil, err
			}
		}
		heapHibernated := heapInUse()
		if err := reg.Close(); err != nil {
			return nil, err
		}

		// Phase 2 — the uncapped baseline: boot replays everything live.
		start := time.Now()
		baseline, err := registry.Open(cfg)
		if err != nil {
			return nil, err
		}
		allLiveBoot := time.Since(start)
		if got, _, _ := baseline.Counts(); got != n {
			return nil, fmt.Errorf("density: uncapped boot left %d/%d campaigns live", got, n)
		}
		heapBaseline := heapInUse()
		if heapBaseline > heapAllLive {
			heapAllLive = heapBaseline // the honest all-live number is the larger sample
		}
		if err := baseline.Close(); err != nil {
			return nil, err
		}

		// Phase 3 — capped serving: lazy boot, sampled cold wakes.
		capped := cfg
		capped.MaxLiveCampaigns = live
		start = time.Now()
		reg, err = registry.Open(capped)
		if err != nil {
			return nil, err
		}
		cappedBoot := time.Since(start)
		if gotLive, hib, _ := reg.Counts(); gotLive != 0 || hib != n {
			return nil, fmt.Errorf("density: capped boot counts %d live / %d hibernated, want 0/%d", gotLive, hib, n)
		}
		wakeDur := make([]time.Duration, 0, sample)
		verified, suffix, peak := 0, 0, 0
		stride := n / sample
		for i := 0; i < sample; i++ {
			idx := i * stride
			t0 := time.Now()
			sys, err := reg.Get(names[idx])
			if err != nil {
				return nil, err
			}
			wakeDur = append(wakeDur, time.Since(t0))
			info := sys.Recovery()
			if !info.SnapshotUsed || info.SnapshotRejected != "" {
				return nil, fmt.Errorf("density: campaign %s woke without its snapshot (rejected: %q)", names[idx], info.SnapshotRejected)
			}
			suffix += info.Records
			if got := fingerprintHash(sys); got != fps[idx] {
				return nil, fmt.Errorf("density: campaign %s woke with a different fingerprint than it hibernated with", names[idx])
			}
			verified++
			if gotLive, _, _ := reg.Counts(); gotLive > peak {
				peak = gotLive
			}
		}
		if peak > live {
			return nil, fmt.Errorf("density: resident set peaked at %d, cap is %d", peak, live)
		}
		heapCapped := heapInUse()
		if err := reg.Close(); err != nil {
			return nil, err
		}

		sort.Slice(wakeDur, func(i, j int) bool { return wakeDur[i] < wakeDur[j] })
		pct := func(q int) float64 {
			idx := (len(wakeDur)*q + 99) / 100
			if idx > 0 {
				idx--
			}
			return float64(wakeDur[idx]) / float64(time.Millisecond)
		}
		rep := densityReport{
			Campaigns:             n,
			AnswersPerCampaign:    answersPer,
			MaxLive:               live,
			HeapAllLiveBytes:      heapAllLive,
			HeapAfterHibernate:    heapHibernated,
			HeapCappedBytes:       heapCapped,
			AllLiveBootSeconds:    allLiveBoot.Seconds(),
			CappedBootSeconds:     cappedBoot.Seconds(),
			WakesSampled:          len(wakeDur),
			WakeP50Ms:             pct(50),
			WakeP99Ms:             pct(99),
			FingerprintsVerified:  verified,
			HeapReductionVsLive:   float64(heapAllLive) / float64(heapCapped),
			SuffixRecordsPerWake:  suffix,
			ResidentPeakDuringSim: peak,
		}

		tb := &experiment.Table{
			Title:  "Campaign density — all-live baseline vs hibernating LRU cap",
			Header: []string{"mode", "campaigns", "resident", "heap", "boot", "wake p50", "wake p99"},
		}
		tb.AddRow("all-live", fmt.Sprintf("%d", n), fmt.Sprintf("%d", n),
			fmtBytes(heapAllLive), fmt.Sprintf("%.2fs", rep.AllLiveBootSeconds), "-", "-")
		tb.AddRow(fmt.Sprintf("capped-%d", live), fmt.Sprintf("%d", n), fmt.Sprintf("≤%d", live),
			fmtBytes(heapCapped), fmt.Sprintf("%.2fs", rep.CappedBootSeconds),
			fmt.Sprintf("%.2fms", rep.WakeP50Ms), fmt.Sprintf("%.2fms", rep.WakeP99Ms))
		tb.Notes = append(tb.Notes,
			fmt.Sprintf("%d sampled cold wakes, every fingerprint verified bit-identical to its pre-hibernation state", verified),
			fmt.Sprintf("clean hibernates leave a covering snapshot: %d total suffix records replayed across all wakes", suffix),
			fmt.Sprintf("hibernating in place released %s of the all-live heap", fmtBytes(heapAllLive-minU64(heapAllLive, heapHibernated))),
			"capped boot lists namespaces without replaying any; each campaign pays its restore on first touch")
		if jsonOut != nil && *jsonOut != "" {
			blob, err := json.MarshalIndent(map[string]any{"experiment": "density", "report": rep}, "", "  ")
			if err != nil {
				return nil, err
			}
			if dir := filepath.Dir(*jsonOut); dir != "." {
				if err := os.MkdirAll(dir, 0o755); err != nil {
					return nil, err
				}
			}
			if err := os.WriteFile(*jsonOut, append(blob, '\n'), 0o644); err != nil {
				return nil, err
			}
			tb.Notes = append(tb.Notes, "machine-readable report written to "+*jsonOut)
		}
		return tb, nil
	}
}

// heapInUse samples live heap bytes after a forced collection.
func heapInUse() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

func fmtBytes(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	default:
		return fmt.Sprintf("%.0fKiB", float64(b)/(1<<10))
	}
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
