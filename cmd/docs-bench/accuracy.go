package main

import (
	"encoding/json"
	"os"

	"docs/internal/experiment"
)

// accuracyRunner wires the adversarial accuracy experiment: DOCS vs
// MV/IC/FC (shared answer set) and vs Baseline/D-Max (Fig.8 campaigns)
// across the population mixes of docs/experiments.md. With -accuracy-json
// the deterministic artifact is written for scripts/check_bench.sh, which
// gates the DOCS−MV margin at every spammer fraction against the committed
// bench/BENCH_accuracy.json.
func accuracyRunner(jsonPath *string) func(seed uint64, quick bool) (*experiment.Table, error) {
	return func(seed uint64, quick bool) (*experiment.Table, error) {
		tb, res, err := experiment.AccuracyExperiment(seed, quick)
		if err != nil {
			return nil, err
		}
		if *jsonPath != "" {
			b, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				return nil, err
			}
			b = append(b, '\n')
			if err := os.WriteFile(*jsonPath, b, 0o644); err != nil {
				return nil, err
			}
			tb.Notes = append(tb.Notes, "artifact written to "+*jsonPath)
		}
		return tb, nil
	}
}
