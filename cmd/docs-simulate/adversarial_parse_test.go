package main

import (
	"testing"

	"docs/internal/crowd"
)

func TestParseAdversarial(t *testing.T) {
	adv, err := parseAdversarial("spam=0.2, sleep=0.1, cliques=2x4, drift=-0.002")
	if err != nil {
		t.Fatal(err)
	}
	if adv.SpammerFraction != 0.2 || adv.SleeperFraction != 0.1 {
		t.Errorf("fractions: got spam=%v sleep=%v", adv.SpammerFraction, adv.SleeperFraction)
	}
	if adv.Cliques != 2 || adv.CliqueSize != 4 {
		t.Errorf("cliques: got %dx%d, want 2x4", adv.Cliques, adv.CliqueSize)
	}
	if adv.DriftPerAnswer != -0.002 {
		t.Errorf("drift: got %v", adv.DriftPerAnswer)
	}

	adv, err = parseAdversarial("cliques=3,sleep-honest=10,sleep-quality=0.4,clique-rate=0.9,drift-floor=0.2")
	if err != nil {
		t.Fatal(err)
	}
	if adv.Cliques != 3 || adv.CliqueSize != 0 {
		t.Errorf("bare clique count: got %dx%d, want 3 with default size", adv.Cliques, adv.CliqueSize)
	}
	if adv.SleeperHonest != 10 || adv.SleeperQuality != 0.4 || adv.CliqueRate != 0.9 || adv.DriftFloor != 0.2 {
		t.Errorf("tuning keys misparsed: %+v", adv)
	}

	if adv, err := parseAdversarial(""); err != nil || adv != (crowd.Adversarial{}) {
		t.Errorf("empty spec: got %+v, %v", adv, err)
	}
	for _, bad := range []string{"spam", "spam=x", "bogus=1", "cliques=2xq"} {
		if _, err := parseAdversarial(bad); err == nil {
			t.Errorf("spec %q: want error", bad)
		}
	}
}
