// Command docs-simulate runs a complete simulated crowdsourcing campaign
// end to end: it generates one of the paper's datasets, publishes it to a
// DOCS system, drives a simulated worker population through the golden-
// profiling and OTA loop, and reports the final accuracy and worker
// statistics.
//
// Usage:
//
//	docs-simulate -dataset 4D -workers 50 -redundancy 10 -seed 7
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"time"

	"docs/internal/core"
	"docs/internal/crowd"
	"docs/internal/dataset"
	"docs/internal/kb"
	"docs/internal/truth"
	"docs/internal/wal"
)

func main() {
	name := flag.String("dataset", "Item", "dataset: Item, 4D, QA or SFV")
	workers := flag.Int("workers", 50, "simulated worker population size")
	redundancy := flag.Int("redundancy", 10, "answers collected per task")
	hit := flag.Int("hit", 20, "tasks per HIT")
	golden := flag.Int("golden", 20, "golden task count")
	seed := flag.Uint64("seed", 20160412, "deterministic seed")
	walDir := flag.String("wal-dir", "", "write-ahead log directory: the campaign becomes durable, and an interrupted simulation resumes from the log (empty = memory-only, the pre-WAL behavior)")
	walFsync := flag.Bool("wal-fsync", false, "fsync the WAL once per group-commit batch")
	checkpointEvery := flag.Int("checkpoint-every", 0, "answers between WAL checkpoints (0 = default, negative = never)")
	flag.Parse()

	ds, err := dataset.ByName(*name, *seed)
	if err != nil {
		log.Fatalf("docs-simulate: %v", err)
	}
	walSync := wal.SyncNever
	if *walFsync {
		walSync = wal.SyncEveryBatch
	}
	sys, err := core.New(core.Config{
		GoldenCount:     *golden,
		HITSize:         *hit,
		AnswersPerTask:  *redundancy,
		CheckpointEvery: *checkpointEvery,
		WALSync:         walSync,
	})
	if err != nil {
		log.Fatalf("docs-simulate: %v", err)
	}
	defer sys.Close()
	if *walDir != "" {
		info, err := sys.Recover(*walDir)
		if err != nil {
			log.Fatalf("docs-simulate: recover: %v", err)
		}
		if info.Records > 0 {
			fmt.Printf("recovered %d records from %s in %s (torn tail: %v)\n",
				info.Records, *walDir, info.Duration.Round(time.Millisecond), info.TornTail)
		}
	}
	if sys.Published() {
		fmt.Printf("resuming recovered campaign: %d answers already collected, %d golden tasks\n",
			sys.AnswerCount(), len(sys.GoldenTasks()))
	} else {
		if err := sys.Publish(ds.Tasks); err != nil {
			log.Fatalf("docs-simulate: publish: %v", err)
		}
		fmt.Printf("published %d tasks (%s), %d golden\n", len(ds.Tasks), *name, len(sys.GoldenTasks()))
	}

	pop, err := crowd.NewPopulation(crowd.Config{
		NumWorkers:      *workers,
		M:               kb.MustDefault().Domains().Size(),
		RelevantDomains: ds.YahooIndex,
		Seed:            *seed,
	})
	if err != nil {
		log.Fatalf("docs-simulate: %v", err)
	}

	r := pop.Rand()
	target := *redundancy * (len(ds.Tasks) - len(sys.GoldenTasks()))
	collected := int(sys.AnswerCount()) // non-zero when resuming from a WAL
	hits := 0
	idle := 0
	for collected < target && idle < 5000 {
		w := pop.Arrival()
		batch, err := sys.Request(w.ID, *hit)
		if err != nil {
			log.Fatalf("docs-simulate: request: %v", err)
		}
		if len(batch) == 0 {
			idle++
			continue
		}
		idle = 0
		hits++
		golden := map[int]bool{}
		for _, id := range sys.GoldenTasks() {
			golden[id] = true
		}
		for _, tk := range batch {
			if err := sys.Submit(w.ID, tk.ID, w.Answer(tk, r)); err != nil {
				log.Fatalf("docs-simulate: submit: %v", err)
			}
			if !golden[tk.ID] {
				collected++
			}
		}
		if hits%200 == 0 {
			fmt.Printf("  %d HITs served, %d/%d answers collected\n", hits, collected, target)
		}
	}
	fmt.Printf("campaign done: %d HITs, %d answers\n", hits, collected)

	res, err := sys.Results()
	if err != nil {
		log.Fatalf("docs-simulate: results: %v", err)
	}
	inferTasks := sys.InferTasks()
	acc, n := truth.Accuracy(inferTasks, res.Truth)
	fmt.Printf("final accuracy: %.2f%% over %d tasks (TI converged in %d iterations)\n",
		100*acc, n, res.Iterations)

	// Worker quality calibration summary over the dataset's domains.
	type row struct {
		id       string
		answered int
		dev      float64
	}
	trueQ := pop.TrueQualities()
	var rows []row
	for w, eq := range res.Quality {
		tq, ok := trueQ[w]
		if !ok {
			continue
		}
		var dev float64
		for _, k := range ds.YahooIndex {
			d := tq[k] - eq[k]
			if d < 0 {
				d = -d
			}
			dev += d
		}
		dev /= float64(len(ds.YahooIndex))
		rows = append(rows, row{w, len(sys.Answers().ForWorker(w)), dev})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].answered > rows[j].answered })
	fmt.Println("top workers (answers, |trueQ-estQ| over dataset domains):")
	for i, rw := range rows {
		if i >= 5 {
			break
		}
		fmt.Printf("  %-8s %4d answers  dev %.3f\n", rw.id, rw.answered, rw.dev)
	}
}
