// Command docs-simulate runs complete simulated crowdsourcing campaigns
// end to end: it generates one of the paper's datasets, publishes it to a
// DOCS system, drives a simulated worker population through the golden-
// profiling and OTA loop, and reports the final accuracy and worker
// statistics.
//
// With -campaigns N > 1 it hosts N campaigns in one campaign registry over
// a single shared worker store: the same worker population serves all of
// them, so workers profiled on campaign 0's golden tasks skip the golden
// gauntlet everywhere else — the paper's cross-requester story — and the
// tool reports how many profiles carried over per campaign.
//
// With -server URL it drives a running docs-server over HTTP instead of
// an in-process registry — every simulated worker shares one keep-alive
// connection pool so the simulator measures the server, not its own
// connection churn. With -batch N answers are submitted in groups of up
// to N per call: POST /submit-batch over HTTP, the batched (group-
// committed) core entry locally. See docs/protocol.md.
//
// Usage:
//
//	docs-simulate -dataset 4D -workers 50 -redundancy 10 -seed 7
//	docs-simulate -dataset Item -campaigns 4 -workers 80
//	docs-simulate -server http://localhost:8080 -batch 20
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"sort"
	"time"

	"docs/internal/core"
	"docs/internal/crowd"
	"docs/internal/dataset"
	"docs/internal/kb"
	"docs/internal/registry"
	"docs/internal/truth"
	"docs/internal/wal"
)

func main() {
	name := flag.String("dataset", "Item", "dataset: Item, 4D, QA or SFV")
	campaigns := flag.Int("campaigns", 1, "number of campaigns hosted in one registry (same dataset family, different seeds) served by one shared worker population")
	workers := flag.Int("workers", 50, "simulated worker population size, shared across campaigns")
	redundancy := flag.Int("redundancy", 10, "answers collected per task")
	hit := flag.Int("hit", 20, "tasks per HIT")
	golden := flag.Int("golden", 20, "golden task count per campaign")
	seed := flag.Uint64("seed", 20160412, "deterministic seed")
	walDir := flag.String("wal-dir", "", "registry root directory: campaigns become durable under <dir>/campaigns/<name> and an interrupted simulation resumes from the logs (empty = memory-only)")
	walFsync := flag.Bool("wal-fsync", false, "fsync the WALs once per group-commit batch")
	checkpointEvery := flag.Int("checkpoint-every", 0, "answers between WAL checkpoints (0 = default, negative = never)")
	server := flag.String("server", "", "drive a running docs-server at this base URL over HTTP instead of an in-process registry; all workers share one keep-alive connection pool")
	batch := flag.Int("batch", 0, "submit answers in batches of up to N per call (POST /submit-batch over HTTP, the batched core entry locally); 0 or 1 = one answer per submit")
	adversarial := flag.String("adversarial", "", `adversarial population spec, e.g. "spam=0.2,sleep=0.1,cliques=2x3,drift=-0.002" (empty = honest crowd)`)
	flag.Parse()

	adv, err := parseAdversarial(*adversarial)
	if err != nil {
		log.Fatalf("docs-simulate: -adversarial: %v", err)
	}

	if *server != "" {
		client := newSimClient()
		base, err := dataset.ByName(*name, *seed)
		if err != nil {
			log.Fatalf("docs-simulate: %v", err)
		}
		pop, err := crowd.NewPopulation(crowd.Config{
			NumWorkers:      *workers,
			M:               kb.MustDefault().Domains().Size(),
			RelevantDomains: base.YahooIndex,
			Seed:            *seed,
			Adversarial:     adv,
		})
		if err != nil {
			log.Fatalf("docs-simulate: %v", err)
		}
		if *adversarial != "" {
			printComposition(pop)
		}
		for ci := 0; ci < *campaigns; ci++ {
			ds := base
			if ci > 0 {
				if ds, err = dataset.ByName(*name, *seed+uint64(ci)); err != nil {
					log.Fatalf("docs-simulate: %v", err)
				}
			}
			cname := fmt.Sprintf("c%d", ci)
			if *campaigns > 1 {
				fmt.Printf("=== campaign %s ===\n", cname)
			}
			runCampaignHTTP(client, *server, cname, ds, pop, *name, *hit, *redundancy, *batch)
		}
		return
	}

	walSync := wal.SyncNever
	if *walFsync {
		walSync = wal.SyncEveryBatch
	}
	reg, err := registry.Open(registry.Config{
		WALDir:          *walDir,
		GoldenCount:     *golden,
		HITSize:         *hit,
		AnswersPerTask:  *redundancy,
		CheckpointEvery: *checkpointEvery,
		WALSync:         walSync,
	})
	if err != nil {
		log.Fatalf("docs-simulate: %v", err)
	}
	defer reg.Close()

	base, err := dataset.ByName(*name, *seed)
	if err != nil {
		log.Fatalf("docs-simulate: %v", err)
	}
	pop, err := crowd.NewPopulation(crowd.Config{
		NumWorkers:      *workers,
		M:               kb.MustDefault().Domains().Size(),
		RelevantDomains: base.YahooIndex,
		Seed:            *seed,
		Adversarial:     adv,
	})
	if err != nil {
		log.Fatalf("docs-simulate: %v", err)
	}
	if *adversarial != "" {
		printComposition(pop)
	}

	for ci := 0; ci < *campaigns; ci++ {
		ds := base
		if ci > 0 {
			// Same dataset family, different generation seed: each
			// requester brings their own task set over the same domains.
			if ds, err = dataset.ByName(*name, *seed+uint64(ci)); err != nil {
				log.Fatalf("docs-simulate: %v", err)
			}
		}
		cname := fmt.Sprintf("c%d", ci)
		if *campaigns > 1 {
			fmt.Printf("=== campaign %s ===\n", cname)
		}
		runCampaign(reg, cname, ds, pop, *name, *hit, *redundancy, *batch, *campaigns == 1)
	}
	if *campaigns > 1 {
		fmt.Printf("shared store: %d workers profiled across %d campaigns\n",
			reg.Store().Len(), *campaigns)
	}
}

// runCampaign publishes (or resumes) one campaign and drives the shared
// population through it until every task reaches its redundancy cap.
// With batch > 1, each HIT's answers go through the batched core entry
// (the same group-committed path POST /submit-batch uses) in chunks of
// up to batch answers.
func runCampaign(reg *registry.Registry, cname string, ds *dataset.Dataset, pop *crowd.Population, dsName string, hit, redundancy, batch int, verbose bool) {
	sys, err := reg.Get(cname)
	if errors.Is(err, registry.ErrNotFound) {
		sys, err = reg.Create(cname)
	}
	if err != nil {
		log.Fatalf("docs-simulate: %v", err)
	}
	if info := sys.Recovery(); info.Records > 0 {
		fmt.Printf("recovered %d records in %s (torn tail: %v)\n",
			info.Records, info.Duration.Round(time.Millisecond), info.TornTail)
	}
	if sys.Published() {
		fmt.Printf("resuming recovered campaign: %d answers already collected, %d golden tasks\n",
			sys.AnswerCount(), len(sys.GoldenTasks()))
	} else {
		if err := sys.Publish(ds.Tasks); err != nil {
			log.Fatalf("docs-simulate: publish: %v", err)
		}
		fmt.Printf("published %d tasks (%s), %d golden\n", len(ds.Tasks), dsName, len(sys.GoldenTasks()))
	}
	golden := map[int]bool{}
	for _, id := range sys.GoldenTasks() {
		golden[id] = true
	}

	r := pop.Rand()
	target := redundancy * (len(ds.Tasks) - len(sys.GoldenTasks()))
	collected := int(sys.AnswerCount()) // non-zero when resuming from a WAL
	hits := 0
	idle := 0
	goldenAnswers := 0
	carried, gauntlets := 0, 0
	seen := map[string]bool{}
	for collected < target && idle < 5000 {
		w := pop.Arrival()
		assigned, err := sys.Request(w.ID, hit)
		if err != nil {
			log.Fatalf("docs-simulate: request: %v", err)
		}
		if len(assigned) == 0 {
			idle++
			continue
		}
		idle = 0
		hits++
		if !seen[w.ID] {
			seen[w.ID] = true
			// A worker's first batch is homogeneous: golden while
			// unprofiled, regular once their profile carried over.
			if golden[assigned[0].ID] {
				gauntlets++
			} else {
				carried++
			}
		}
		if batch > 1 {
			items := make([]core.BatchItem, len(assigned))
			for i, tk := range assigned {
				items[i] = core.BatchItem{Worker: w.ID, Task: tk.ID, Choice: w.Answer(tk, r)}
			}
			for start := 0; start < len(items); start += batch {
				end := min(start+batch, len(items))
				statuses, err := sys.SubmitBatch(items[start:end])
				if err != nil {
					log.Fatalf("docs-simulate: submit batch: %v", err)
				}
				for i, st := range statuses {
					if !st.OK {
						log.Fatalf("docs-simulate: submit batch item %d: %s", start+i+1, st.Err)
					}
				}
			}
		} else {
			for _, tk := range assigned {
				if err := sys.Submit(w.ID, tk.ID, w.Answer(tk, r)); err != nil {
					log.Fatalf("docs-simulate: submit: %v", err)
				}
			}
		}
		for _, tk := range assigned {
			if golden[tk.ID] {
				goldenAnswers++
			} else {
				collected++
			}
		}
		if verbose && hits%200 == 0 {
			fmt.Printf("  %d HITs served, %d/%d answers collected\n", hits, collected, target)
		}
	}
	fmt.Printf("campaign done: %d HITs, %d answers (%d golden)\n", hits, collected, goldenAnswers)
	fmt.Printf("workers: %d served; %d carried a profile from an earlier campaign, %d ran the golden gauntlet\n",
		len(seen), carried, gauntlets)

	res, err := sys.Results()
	if err != nil {
		log.Fatalf("docs-simulate: results: %v", err)
	}
	inferTasks := sys.InferTasks()
	acc, n := truth.Accuracy(inferTasks, res.Truth)
	fmt.Printf("final accuracy: %.2f%% over %d tasks (TI converged in %d iterations)\n",
		100*acc, n, res.Iterations)

	if verbose {
		printWorkerCalibration(sys, pop, ds, res)
	}
	if comp := pop.Composition(); len(comp) > 1 || comp[crowd.Honest] != len(pop.Workers) {
		printAdversarialReport(pop, res)
	}
}

// printWorkerCalibration summarizes worker quality calibration over the
// dataset's domains (single-campaign mode only, matching the original
// report).
func printWorkerCalibration(sys *core.System, pop *crowd.Population, ds *dataset.Dataset, res *truth.Result) {
	type row struct {
		id       string
		answered int
		dev      float64
	}
	trueQ := pop.TrueQualities()
	var rows []row
	for w, eq := range res.Quality {
		tq, ok := trueQ[w]
		if !ok {
			continue
		}
		var dev float64
		for _, k := range ds.YahooIndex {
			d := tq[k] - eq[k]
			if d < 0 {
				d = -d
			}
			dev += d
		}
		dev /= float64(len(ds.YahooIndex))
		rows = append(rows, row{w, len(sys.Answers().ForWorker(w)), dev})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].answered > rows[j].answered })
	fmt.Println("top workers (answers, |trueQ-estQ| over dataset domains):")
	for i, rw := range rows {
		if i >= 5 {
			break
		}
		fmt.Printf("  %-8s %4d answers  dev %.3f\n", rw.id, rw.answered, rw.dev)
	}
}
