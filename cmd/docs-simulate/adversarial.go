package main

import (
	"fmt"
	"strconv"
	"strings"

	"docs/internal/crowd"
	"docs/internal/truth"
)

// parseAdversarial turns the -adversarial spec string into a population
// config. The spec is a comma-separated list of key=value fields:
//
//	spam=0.2          fraction of workers answering uniformly at random
//	sleep=0.1         fraction of sleepers (honest on golden, then degraded)
//	sleep-honest=20   answers a sleeper stays honest for
//	sleep-quality=0.3 sleeper accuracy after waking
//	cliques=2x3       C colluding cliques of S workers each (S defaults to 3)
//	clique-rate=1.0   probability a colluder follows the clique vote
//	drift=-0.002      per-answer quality drift applied to every worker
//	drift-floor=0.25  drift clamp
//
// Example: -adversarial "spam=0.2,sleep=0.1,cliques=2x3,drift=-0.002"
func parseAdversarial(spec string) (crowd.Adversarial, error) {
	var adv crowd.Adversarial
	if strings.TrimSpace(spec) == "" {
		return adv, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return adv, fmt.Errorf("bad field %q (want key=value)", part)
		}
		key = strings.ToLower(strings.TrimSpace(key))
		val = strings.TrimSpace(val)
		f := func() (float64, error) { return strconv.ParseFloat(val, 64) }
		var err error
		switch key {
		case "spam":
			adv.SpammerFraction, err = f()
		case "sleep":
			adv.SleeperFraction, err = f()
		case "sleep-honest":
			adv.SleeperHonest, err = strconv.Atoi(val)
		case "sleep-quality":
			adv.SleeperQuality, err = f()
		case "cliques":
			c, s, sized := strings.Cut(val, "x")
			if adv.Cliques, err = strconv.Atoi(c); err == nil && sized {
				adv.CliqueSize, err = strconv.Atoi(s)
			}
		case "clique-rate":
			adv.CliqueRate, err = f()
		case "drift":
			adv.DriftPerAnswer, err = f()
		case "drift-floor":
			adv.DriftFloor, err = f()
		default:
			return adv, fmt.Errorf("unknown adversarial key %q", key)
		}
		if err != nil {
			return adv, fmt.Errorf("field %q: %v", part, err)
		}
	}
	return adv, nil
}

var archetypeOrder = []crowd.Archetype{crowd.Honest, crowd.Spammer, crowd.Sleeper, crowd.Colluder}

// printComposition reports how the population was dealt across archetypes.
func printComposition(pop *crowd.Population) {
	comp := pop.Composition()
	parts := make([]string, 0, len(comp))
	for _, at := range archetypeOrder {
		if n := comp[at]; n > 0 {
			parts = append(parts, fmt.Sprintf("%d %v", n, at))
		}
	}
	fmt.Printf("population: %d workers (%s)\n", len(pop.Workers), strings.Join(parts, ", "))
}

// printAdversarialReport shows whether the campaign's quality estimates
// separated the archetypes: the mean estimated quality per archetype should
// put spammers and woken sleepers in the bottom tiers.
func printAdversarialReport(pop *crowd.Population, res *truth.Result) {
	type agg struct {
		n   int
		sum float64
	}
	stats := map[crowd.Archetype]*agg{}
	for _, w := range pop.Workers {
		eq, ok := res.Quality[w.ID]
		if !ok || len(eq) == 0 {
			continue
		}
		var mean float64
		for _, q := range eq {
			mean += q
		}
		mean /= float64(len(eq))
		a := stats[w.Archetype]
		if a == nil {
			a = &agg{}
			stats[w.Archetype] = a
		}
		a.n++
		a.sum += mean
	}
	fmt.Println("adversarial detection (mean estimated quality by archetype):")
	for _, at := range archetypeOrder {
		if a := stats[at]; a != nil && a.n > 0 {
			fmt.Printf("  %-9v %3d workers  est quality %.3f\n", at, a.n, a.sum/float64(a.n))
		}
	}
}
