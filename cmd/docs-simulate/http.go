package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"
	"time"

	"docs/internal/crowd"
	"docs/internal/dataset"
	"docs/internal/model"
)

// newSimClient builds the ONE http.Client the whole simulation shares.
// Every simulated worker's requests ride the same keep-alive pool — a
// per-worker client would redial per worker (or worse, per request) and
// the simulator would bottleneck on connection churn instead of the
// server under test.
func newSimClient() *http.Client {
	return &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        64,
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     90 * time.Second,
		},
	}
}

// runCampaignHTTP drives one campaign on a running docs-server instead
// of an in-process registry: publish the dataset over POST /publish,
// loop the shared worker population through GET /request and
// POST /submit (or POST /submit-batch with -batch > 1), then score the
// server's GET /results against the dataset's ground truth. The
// simulated workers know each task's truth locally (the dataset is
// synthetic); the server sees only worker IDs, task IDs and choices,
// exactly what a real crowd would send it.
func runCampaignHTTP(client *http.Client, server, cname string, ds *dataset.Dataset, pop *crowd.Population, dsName string, hit, redundancy, batch int) {
	base := strings.TrimRight(server, "/") + "/c/" + cname
	byID := make(map[int]*model.Task, len(ds.Tasks))
	for _, tk := range ds.Tasks {
		byID[tk.ID] = tk
	}

	type taskJSON struct {
		ID          int      `json:"id"`
		Text        string   `json:"text"`
		Choices     []string `json:"choices"`
		GoldenTruth int      `json:"golden_truth"`
	}
	pub := struct {
		Tasks []taskJSON `json:"tasks"`
	}{Tasks: make([]taskJSON, len(ds.Tasks))}
	for i, tk := range ds.Tasks {
		pub.Tasks[i] = taskJSON{ID: tk.ID, Text: tk.Text, Choices: tk.Choices, GoldenTruth: tk.Truth}
	}
	var published struct {
		Published int   `json:"published"`
		Golden    []int `json:"golden"`
	}
	if err := callJSON(client, http.MethodPost, base+"/publish", "application/json", mustJSON(pub), &published); err != nil {
		log.Fatalf("docs-simulate: publish: %v", err)
	}
	golden := make(map[int]bool, len(published.Golden))
	for _, id := range published.Golden {
		golden[id] = true
	}
	fmt.Printf("published %d tasks (%s) to %s, %d golden\n", published.Published, dsName, base, len(golden))

	r := pop.Rand()
	target := redundancy * (len(ds.Tasks) - len(golden))
	collected, goldenAnswers, hits, idle := 0, 0, 0, 0
	for collected < target && idle < 5000 {
		w := pop.Arrival()
		var got struct {
			Tasks []taskJSON `json:"tasks"`
		}
		if err := callJSON(client, http.MethodGet, fmt.Sprintf("%s/request?worker=%s&k=%d", base, w.ID, hit), "", nil, &got); err != nil {
			log.Fatalf("docs-simulate: request: %v", err)
		}
		if len(got.Tasks) == 0 {
			idle++
			continue
		}
		idle = 0
		hits++
		type answer struct {
			Worker string `json:"worker"`
			Task   int    `json:"task"`
			Choice int    `json:"choice"`
		}
		answers := make([]answer, 0, len(got.Tasks))
		for _, at := range got.Tasks {
			tk, ok := byID[at.ID]
			if !ok {
				log.Fatalf("docs-simulate: server assigned unknown task %d", at.ID)
			}
			answers = append(answers, answer{Worker: w.ID, Task: tk.ID, Choice: w.Answer(tk, r)})
		}
		if batch > 1 {
			for start := 0; start < len(answers); start += batch {
				end := min(start+batch, len(answers))
				req := struct {
					Answers []answer `json:"answers"`
				}{Answers: answers[start:end]}
				var resp struct {
					Accepted int `json:"accepted"`
					Rejected int `json:"rejected"`
				}
				if err := callJSON(client, http.MethodPost, base+"/submit-batch", "application/json", mustJSON(req), &resp); err != nil {
					log.Fatalf("docs-simulate: submit-batch: %v", err)
				}
				if resp.Rejected > 0 {
					log.Fatalf("docs-simulate: submit-batch rejected %d items", resp.Rejected)
				}
			}
		} else {
			for _, a := range answers {
				if err := callJSON(client, http.MethodPost, base+"/submit", "application/json", mustJSON(a), nil); err != nil {
					log.Fatalf("docs-simulate: submit: %v", err)
				}
			}
		}
		for _, a := range answers {
			if golden[a.Task] {
				goldenAnswers++
			} else {
				collected++
			}
		}
	}
	fmt.Printf("campaign done: %d HITs, %d answers (%d golden)\n", hits, collected, goldenAnswers)

	var res struct {
		Results []struct {
			TaskID int
			Choice int
		} `json:"results"`
	}
	if err := callJSON(client, http.MethodGet, base+"/results", "", nil, &res); err != nil {
		log.Fatalf("docs-simulate: results: %v", err)
	}
	right, scored := 0, 0
	for _, rr := range res.Results {
		tk, ok := byID[rr.TaskID]
		if !ok || golden[rr.TaskID] || tk.Truth == model.NoTruth {
			continue
		}
		scored++
		if rr.Choice == tk.Truth {
			right++
		}
	}
	if scored > 0 {
		fmt.Printf("final accuracy: %.2f%% over %d tasks (scored against the dataset's ground truth)\n",
			100*float64(right)/float64(scored), scored)
	}
}

// callJSON performs one HTTP call and decodes the JSON response into
// out (when non-nil), failing on any non-200 status.
func callJSON(client *http.Client, method, url, contentType string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return fmt.Errorf("%s %s: status %d: %s", method, url, resp.StatusCode, msg)
	}
	if out == nil {
		_, err := io.Copy(io.Discard, resp.Body)
		return err
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func mustJSON(v any) []byte {
	blob, err := json.Marshal(v)
	if err != nil {
		log.Fatalf("docs-simulate: encode: %v", err)
	}
	return blob
}
