// Command docs-lint is the project's static-analysis gate: it loads every
// package in the module (stdlib-only tooling — go/parser, go/ast,
// go/types; no external dependencies) and runs the five project-specific
// analyzers that prove the determinism and durability contracts at the
// source level:
//
//	determinism  nothing order- or clock-dependent reachable from
//	             Fingerprint, the snapshot/WAL encoders, or replay
//	clock        time.Now/Since/Until only at //docs:allow-listed sites
//	walswitch    every wal.Kind constant handled in every Kind switch
//	lockorder    no acquisition violating a declared //docs:lockorder
//	floatbits    no raw floats formatted in digest paths
//
// Findings print as "file:line: analyzer: message" and any finding makes
// the exit status non-zero, so CI (and scripts/check_bench.sh's
// preflight) fail the moment a diff can violate a contract — before any
// crash-injection suite runs. See docs/static-analysis.md.
//
// Usage:
//
//	docs-lint ./...            lint the whole module (from anywhere inside it)
//	docs-lint ./internal/wal   lint the module, report findings under the path
//	docs-lint -list            print the analyzer suite and exit
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"docs/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "print the analyzer suite and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := lint.FindModuleRoot(wd)
	if err != nil {
		fatal(err)
	}

	// The whole module is always loaded — the determinism and lock-order
	// analyzers need the full call graph — and the patterns only filter
	// which files findings are REPORTED for.
	prog, err := lint.LoadModule(root)
	if err != nil {
		fatal(err)
	}
	findings := lint.Run(prog, lint.Analyzers())
	lint.TrimPaths(findings, root)

	keep := findings[:0]
	for _, f := range findings {
		if matchesPatterns(f.Pos.Filename, wd, root, flag.Args()) {
			keep = append(keep, f)
		}
	}
	findings = keep

	for _, f := range findings {
		fmt.Println(f)
	}
	if n := len(findings); n > 0 {
		fmt.Fprintf(os.Stderr, "docs-lint: %d finding(s)\n", n)
		os.Exit(1)
	}
}

// matchesPatterns reports whether a repo-relative filename falls under any
// of the requested package patterns (resolved against the invoking
// directory). No patterns, ".", or "./..." mean everything.
func matchesPatterns(rel, wd, root string, patterns []string) bool {
	if len(patterns) == 0 {
		return true
	}
	for _, p := range patterns {
		if p == "./..." || p == "..." || p == "." && wd == root {
			return true
		}
		dir := strings.TrimSuffix(p, "/...")
		abs := dir
		if !filepath.IsAbs(dir) {
			abs = filepath.Join(wd, dir)
		}
		prefix, err := filepath.Rel(root, abs)
		if err != nil {
			continue
		}
		if prefix == "." {
			return true
		}
		if rel == prefix || strings.HasPrefix(rel, prefix+string(filepath.Separator)) {
			return true
		}
	}
	return false
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "docs-lint:", err)
	os.Exit(2)
}
