package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"docs"
)

// server exposes a DOCS campaign over a JSON HTTP API, the deployment
// shape of Figure 1 (the paper serves AMT workers through a web frontend).
//
//	POST /publish  {"tasks":[{"id":0,"text":"...","choices":["a","b"],"golden_truth":-1}]}
//	GET  /request?worker=W&k=20        → {"tasks":[...]}
//	POST /submit   {"worker":"W","task":0,"choice":1}
//	GET  /result?task=0                → current inferred truth
//	GET  /results                      → final inference over all answers
//	GET  /worker?id=W                  → quality vector
//	GET  /domains                      → domain names
//	GET  /stats                        → serving counters (see handleStats)
//	GET  /healthz
//
// Handlers take no server-wide lock: docs.System is safe for concurrent
// use, serving reads from immutable snapshots, so Request, Submit and
// Result run in parallel and JSON encoding never blocks other handlers.
// The only cross-handler state is the publish flag, an atomic bool.
type server struct {
	sys       *docs.System
	cfg       docs.Config
	published atomic.Bool
	start     time.Time

	// rateMu guards the last /stats observation used to compute the recent
	// answer rate; it is touched only by /stats calls, never the hot path.
	rateMu      sync.Mutex
	lastStatsAt time.Time
	lastAnswers int64
}

func newServer(cfg docs.Config) (*server, error) {
	sys, err := docs.New(cfg)
	if err != nil {
		return nil, err
	}
	s := &server{sys: sys, cfg: cfg, start: time.Now()}
	// WAL recovery may have replayed the campaign publication; the HTTP
	// flag must agree or the recovered server would 409 every request.
	s.published.Store(sys.Published())
	return s, nil
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /publish", s.handlePublish)
	mux.HandleFunc("GET /request", s.handleRequest)
	mux.HandleFunc("POST /submit", s.handleSubmit)
	mux.HandleFunc("GET /result", s.handleResult)
	mux.HandleFunc("GET /results", s.handleResults)
	mux.HandleFunc("GET /worker", s.handleWorker)
	mux.HandleFunc("GET /domains", s.handleDomains)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

type taskJSON struct {
	ID          int      `json:"id"`
	Text        string   `json:"text"`
	Choices     []string `json:"choices"`
	GoldenTruth int      `json:"golden_truth"`
}

type publishRequest struct {
	Tasks []taskJSON `json:"tasks"`
}

func (s *server) handlePublish(w http.ResponseWriter, r *http.Request) {
	var req publishRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("invalid JSON: %w", err))
		return
	}
	if len(req.Tasks) == 0 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("no tasks"))
		return
	}
	tasks := make([]docs.Task, 0, len(req.Tasks))
	for _, t := range req.Tasks {
		tasks = append(tasks, docs.Task{ID: t.ID, Text: t.Text, Choices: t.Choices, GoldenTruth: t.GoldenTruth})
	}
	if s.published.Load() {
		writeErr(w, http.StatusConflict, fmt.Errorf("tasks already published"))
		return
	}
	// docs.System.Publish is itself exclusive and rejects a second
	// publication, so a racing pair of publishes cannot both succeed; the
	// flag above only provides the friendlier 409 for the common case.
	if err := s.sys.Publish(tasks); err != nil {
		// Publish can fail AFTER the campaign took effect in memory (the
		// WAL append is last). Resync the flag with the core so a durability
		// error does not wedge the server into "published but unservable",
		// and report server-side durability failures as 500, not 400 — the
		// requester's payload was fine.
		s.published.Store(s.sys.Published())
		writeErr(w, statusFor(err), err)
		return
	}
	s.published.Store(true)
	writeJSON(w, http.StatusOK, map[string]any{
		"published": len(tasks),
		"golden":    s.sys.GoldenTaskIDs(),
	})
}

func (s *server) handleRequest(w http.ResponseWriter, r *http.Request) {
	worker := r.URL.Query().Get("worker")
	if worker == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("missing worker"))
		return
	}
	k := 0
	if ks := r.URL.Query().Get("k"); ks != "" {
		var err error
		if k, err = strconv.Atoi(ks); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("invalid k: %w", err))
			return
		}
	}
	if !s.published.Load() {
		writeErr(w, http.StatusConflict, fmt.Errorf("no tasks published"))
		return
	}
	tasks, err := s.sys.Request(worker, k)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	out := make([]taskJSON, 0, len(tasks))
	for _, t := range tasks {
		// Golden truth is never leaked to workers.
		out = append(out, taskJSON{ID: t.ID, Text: t.Text, Choices: t.Choices, GoldenTruth: docs.NoTruth})
	}
	writeJSON(w, http.StatusOK, map[string]any{"tasks": out})
}

type submitRequest struct {
	Worker string `json:"worker"`
	Task   int    `json:"task"`
	Choice int    `json:"choice"`
}

func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("invalid JSON: %w", err))
		return
	}
	if !s.published.Load() {
		writeErr(w, http.StatusConflict, fmt.Errorf("no tasks published"))
		return
	}
	if err := s.sys.Submit(req.Worker, req.Task, req.Choice); err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "accepted"})
}

func (s *server) handleResult(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.URL.Query().Get("task"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("invalid task: %w", err))
		return
	}
	writeJSON(w, http.StatusOK, s.sys.CurrentResult(id))
}

func (s *server) handleResults(w http.ResponseWriter, r *http.Request) {
	// Results infers over a snapshot of the answer log; submits keep
	// flowing while inference and response encoding run.
	results, err := s.sys.Results()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"results": results})
}

func (s *server) handleWorker(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	if id == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("missing id"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"worker":  id,
		"quality": s.sys.WorkerQuality(id),
		"domains": s.sys.DomainNames(),
	})
}

func (s *server) handleDomains(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"domains": s.sys.DomainNames()})
}

// statsJSON is the /stats payload: goroutine-safe counters describing the
// serving state. answers_per_sec_recent covers the window since the
// previous /stats call (equal to the lifetime rate on the first call).
type statsJSON struct {
	Published           bool    `json:"published"`
	Answers             int64   `json:"answers"`
	SnapshotEpoch       uint64  `json:"snapshot_epoch"`
	RerunsCompleted     int64   `json:"reruns_completed"`
	RerunsFailed        int64   `json:"reruns_failed"`
	UptimeSeconds       float64 `json:"uptime_seconds"`
	AnswersPerSec       float64 `json:"answers_per_sec"`
	AnswersPerSecRecent float64 `json:"answers_per_sec_recent"`
	Goroutines          int     `json:"goroutines"`

	// Durability counters, all zero when the server runs without -wal-dir.
	WALEnabled           bool    `json:"wal_enabled"`
	WALLastSeq           uint64  `json:"wal_last_seq"`
	CheckpointsCompleted int64   `json:"checkpoints_completed"`
	CheckpointsFailed    int64   `json:"checkpoints_failed"`
	RecoveredRecords     int     `json:"recovered_records"`
	RecoveredTornTail    bool    `json:"recovered_torn_tail"`
	RecoverySeconds      float64 `json:"recovery_seconds"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	// The whole observation happens under rateMu so concurrent /stats
	// calls see monotone (time, answers) pairs and the recent rate can
	// never go negative.
	s.rateMu.Lock()
	st := s.sys.Stats()
	now := time.Now()
	uptime := now.Sub(s.start).Seconds()
	rec := s.sys.Recovery()
	out := statsJSON{
		Published:            s.published.Load(),
		Answers:              st.Answers,
		SnapshotEpoch:        st.SnapshotEpoch,
		RerunsCompleted:      st.RerunsCompleted,
		RerunsFailed:         st.RerunsFailed,
		UptimeSeconds:        uptime,
		Goroutines:           runtime.NumGoroutine(),
		WALEnabled:           st.WALEnabled,
		WALLastSeq:           st.WALLastSeq,
		CheckpointsCompleted: st.CheckpointsCompleted,
		CheckpointsFailed:    st.CheckpointsFailed,
		RecoveredRecords:     rec.Records,
		RecoveredTornTail:    rec.TornTail,
		RecoverySeconds:      rec.Seconds,
	}
	if uptime > 0 {
		out.AnswersPerSec = float64(st.Answers) / uptime
	}
	if s.lastStatsAt.IsZero() {
		out.AnswersPerSecRecent = out.AnswersPerSec
	} else if dt := now.Sub(s.lastStatsAt).Seconds(); dt > 0 {
		out.AnswersPerSecRecent = float64(st.Answers-s.lastAnswers) / dt
	}
	s.lastStatsAt = now
	s.lastAnswers = st.Answers
	s.rateMu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

// statusFor maps a serving error to an HTTP status: durability failures
// are the server's fault (500), everything else is a rejected input (400).
func statusFor(err error) int {
	if errors.Is(err, docs.ErrDurability) {
		return http.StatusInternalServerError
	}
	return http.StatusBadRequest
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are out; nothing more to do but note it.
		fmt.Printf("docs-server: encode response: %v\n", err)
	}
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
