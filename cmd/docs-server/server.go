package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"docs"
)

// server exposes a DOCS campaign over a JSON HTTP API, the deployment
// shape of Figure 1 (the paper serves AMT workers through a web frontend).
//
//	POST /publish  {"tasks":[{"id":0,"text":"...","choices":["a","b"],"golden_truth":-1}]}
//	GET  /request?worker=W&k=20        → {"tasks":[...]}
//	POST /submit   {"worker":"W","task":0,"choice":1}
//	GET  /result?task=0                → current inferred truth
//	GET  /results                      → final inference over all answers
//	GET  /worker?id=W                  → quality vector
//	GET  /domains                      → domain names
//	GET  /healthz
type server struct {
	mu        sync.Mutex
	sys       *docs.System
	cfg       docs.Config
	published bool
}

func newServer(cfg docs.Config) (*server, error) {
	sys, err := docs.New(cfg)
	if err != nil {
		return nil, err
	}
	return &server{sys: sys, cfg: cfg}, nil
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /publish", s.handlePublish)
	mux.HandleFunc("GET /request", s.handleRequest)
	mux.HandleFunc("POST /submit", s.handleSubmit)
	mux.HandleFunc("GET /result", s.handleResult)
	mux.HandleFunc("GET /results", s.handleResults)
	mux.HandleFunc("GET /worker", s.handleWorker)
	mux.HandleFunc("GET /domains", s.handleDomains)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

type taskJSON struct {
	ID          int      `json:"id"`
	Text        string   `json:"text"`
	Choices     []string `json:"choices"`
	GoldenTruth int      `json:"golden_truth"`
}

type publishRequest struct {
	Tasks []taskJSON `json:"tasks"`
}

func (s *server) handlePublish(w http.ResponseWriter, r *http.Request) {
	var req publishRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("invalid JSON: %w", err))
		return
	}
	if len(req.Tasks) == 0 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("no tasks"))
		return
	}
	tasks := make([]docs.Task, 0, len(req.Tasks))
	for _, t := range req.Tasks {
		tasks = append(tasks, docs.Task{ID: t.ID, Text: t.Text, Choices: t.Choices, GoldenTruth: t.GoldenTruth})
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.published {
		writeErr(w, http.StatusConflict, fmt.Errorf("tasks already published"))
		return
	}
	if err := s.sys.Publish(tasks); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	s.published = true
	writeJSON(w, http.StatusOK, map[string]any{
		"published": len(tasks),
		"golden":    s.sys.GoldenTaskIDs(),
	})
}

func (s *server) handleRequest(w http.ResponseWriter, r *http.Request) {
	worker := r.URL.Query().Get("worker")
	if worker == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("missing worker"))
		return
	}
	k := 0
	if ks := r.URL.Query().Get("k"); ks != "" {
		var err error
		if k, err = strconv.Atoi(ks); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("invalid k: %w", err))
			return
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.published {
		writeErr(w, http.StatusConflict, fmt.Errorf("no tasks published"))
		return
	}
	tasks, err := s.sys.Request(worker, k)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	out := make([]taskJSON, 0, len(tasks))
	for _, t := range tasks {
		// Golden truth is never leaked to workers.
		out = append(out, taskJSON{ID: t.ID, Text: t.Text, Choices: t.Choices, GoldenTruth: docs.NoTruth})
	}
	writeJSON(w, http.StatusOK, map[string]any{"tasks": out})
}

type submitRequest struct {
	Worker string `json:"worker"`
	Task   int    `json:"task"`
	Choice int    `json:"choice"`
}

func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("invalid JSON: %w", err))
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.published {
		writeErr(w, http.StatusConflict, fmt.Errorf("no tasks published"))
		return
	}
	if err := s.sys.Submit(req.Worker, req.Task, req.Choice); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "accepted"})
}

func (s *server) handleResult(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.URL.Query().Get("task"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("invalid task: %w", err))
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	res := s.sys.CurrentResult(id)
	writeJSON(w, http.StatusOK, res)
}

func (s *server) handleResults(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	results, err := s.sys.Results()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"results": results})
}

func (s *server) handleWorker(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	if id == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("missing id"))
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"worker":  id,
		"quality": s.sys.WorkerQuality(id),
		"domains": s.sys.DomainNames(),
	})
}

func (s *server) handleDomains(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"domains": s.sys.DomainNames()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are out; nothing more to do but note it.
		fmt.Printf("docs-server: encode response: %v\n", err)
	}
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
