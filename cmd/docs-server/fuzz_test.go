package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"docs"
)

// FuzzSubmitJSON drives arbitrary bytes through the POST /submit body — the
// one endpoint every worker on the platform hits — against a live published
// campaign. The handler must never panic and must answer every body with a
// well-formed JSON response in {200, 400}; anything else means hostile
// input reached deeper than the decode layer. Seed corpus under
// testdata/fuzz/FuzzSubmitJSON (checked in).
func FuzzSubmitJSON(f *testing.F) {
	srv, err := newServer(docs.Config{GoldenCount: -1, HITSize: 3, RerunEvery: -1})
	if err != nil {
		f.Fatal(err)
	}
	// Publish a minimal campaign so valid submits exercise the accept path.
	tasks := []docs.Task{
		{ID: 0, Text: "a or b", Choices: []string{"a", "b"}, GoldenTruth: docs.NoTruth},
		{ID: 1, Text: "c or d", Choices: []string{"c", "d"}, GoldenTruth: docs.NoTruth},
	}
	if err := srv.sys.Publish(tasks); err != nil {
		f.Fatal(err)
	}
	srv.published.Store(true)
	handler := srv.handler()

	f.Add(`{"worker":"w1","task":0,"choice":1}`)
	f.Add(`{"worker":"","task":0,"choice":0}`)
	f.Add(`{"worker":"w1","task":99,"choice":0}`)
	f.Add(`{"worker":"w1","task":0,"choice":-1}`)
	f.Add(`{"task":0}`)
	f.Add(`{}`)
	f.Add(``)
	f.Add(`[`)
	f.Add(`{"worker":"w1","task":1e309,"choice":0}`)
	f.Add("{\"worker\":\"\u0000\",\"task\":0,\"choice\":0}")
	f.Add(`{"worker":"w1","task":"0","choice":0}`)
	f.Fuzz(func(t *testing.T, body string) {
		req := httptest.NewRequest(http.MethodPost, "/submit", strings.NewReader(body))
		rr := httptest.NewRecorder()
		handler.ServeHTTP(rr, req)
		if rr.Code != http.StatusOK && rr.Code != http.StatusBadRequest {
			t.Fatalf("body %q: status %d, want 200 or 400", body, rr.Code)
		}
		if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
			t.Fatalf("body %q: content-type %q", body, ct)
		}
		if !strings.HasPrefix(strings.TrimSpace(rr.Body.String()), "{") {
			t.Fatalf("body %q: non-JSON response %q", body, rr.Body.String())
		}
	})
}
