package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"docs"
)

func testServer(t *testing.T) (*httptest.Server, *server) {
	t.Helper()
	srv, err := newServer(docs.Config{GoldenCount: -1, HITSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	return ts, srv
}

func doJSON(t *testing.T, method, url string, body any) (*http.Response, map[string]json.RawMessage) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var out map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding %s %s: %v", method, url, err)
	}
	return resp, out
}

func publishBody() map[string]any {
	return map[string]any{
		"tasks": []map[string]any{
			{"id": 0, "text": "Does Michael Jordan win more NBA championships than Kobe Bryant?",
				"choices": []string{"yes", "no"}, "golden_truth": -1},
			{"id": 1, "text": "Which food contains more calories, Chocolate or Honey?",
				"choices": []string{"Chocolate", "Honey"}, "golden_truth": -1},
			{"id": 2, "text": "Compare the height of Mount Everest and K2.",
				"choices": []string{"Everest", "K2"}, "golden_truth": -1},
		},
	}
}

func TestServerLifecycle(t *testing.T) {
	ts, _ := testServer(t)

	if resp, _ := doJSON(t, "GET", ts.URL+"/healthz", nil); resp.StatusCode != 200 {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	// Requests before publish are rejected.
	if resp, _ := doJSON(t, "GET", ts.URL+"/request?worker=w1", nil); resp.StatusCode != http.StatusConflict {
		t.Errorf("pre-publish request = %d, want 409", resp.StatusCode)
	}

	resp, out := doJSON(t, "POST", ts.URL+"/publish", publishBody())
	if resp.StatusCode != 200 {
		t.Fatalf("publish = %d: %s", resp.StatusCode, out["error"])
	}

	// Double publish conflicts.
	if resp, _ := doJSON(t, "POST", ts.URL+"/publish", publishBody()); resp.StatusCode != http.StatusConflict {
		t.Errorf("double publish = %d, want 409", resp.StatusCode)
	}

	// Worker requests tasks.
	resp, out = doJSON(t, "GET", ts.URL+"/request?worker=w1&k=2", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("request = %d", resp.StatusCode)
	}
	var batch []struct {
		ID          int      `json:"id"`
		Choices     []string `json:"choices"`
		GoldenTruth int      `json:"golden_truth"`
	}
	if err := json.Unmarshal(out["tasks"], &batch); err != nil {
		t.Fatal(err)
	}
	if len(batch) != 2 {
		t.Fatalf("requested 2 tasks, got %d", len(batch))
	}
	for _, b := range batch {
		if b.GoldenTruth != -1 {
			t.Error("golden truth leaked to worker")
		}
	}

	// Submit answers.
	for _, b := range batch {
		resp, out = doJSON(t, "POST", ts.URL+"/submit",
			map[string]any{"worker": "w1", "task": b.ID, "choice": 0})
		if resp.StatusCode != 200 {
			t.Fatalf("submit = %d: %s", resp.StatusCode, out["error"])
		}
	}
	// Duplicate answer rejected.
	resp, _ = doJSON(t, "POST", ts.URL+"/submit",
		map[string]any{"worker": "w1", "task": batch[0].ID, "choice": 1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("duplicate submit = %d, want 400", resp.StatusCode)
	}

	// Current result.
	resp, _ = doJSON(t, "GET", ts.URL+"/result?task=0", nil)
	if resp.StatusCode != 200 {
		t.Errorf("result = %d", resp.StatusCode)
	}

	// Worker profile and domains.
	resp, out = doJSON(t, "GET", ts.URL+"/worker?id=w1", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("worker = %d", resp.StatusCode)
	}
	var domains []string
	if err := json.Unmarshal(out["domains"], &domains); err != nil {
		t.Fatal(err)
	}
	if len(domains) != 26 {
		t.Errorf("domains = %d, want 26", len(domains))
	}

	// Final results.
	resp, out = doJSON(t, "GET", ts.URL+"/results", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("results = %d", resp.StatusCode)
	}
	var results []docs.Result
	if err := json.Unmarshal(out["results"], &results); err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Errorf("results = %d tasks, want 3", len(results))
	}
}

func TestServerValidation(t *testing.T) {
	ts, _ := testServer(t)
	if resp, _ := doJSON(t, "POST", ts.URL+"/publish", map[string]any{"tasks": []any{}}); resp.StatusCode != 400 {
		t.Errorf("empty publish = %d, want 400", resp.StatusCode)
	}
	req, _ := http.NewRequest("POST", ts.URL+"/publish", bytes.NewBufferString("{broken"))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("broken JSON = %d, want 400", resp.StatusCode)
	}
	if resp, _ := doJSON(t, "GET", ts.URL+"/request", nil); resp.StatusCode != 400 {
		t.Errorf("missing worker = %d, want 400", resp.StatusCode)
	}
	if resp, _ := doJSON(t, "GET", ts.URL+"/result?task=abc", nil); resp.StatusCode != 400 {
		t.Errorf("bad task id = %d, want 400", resp.StatusCode)
	}
	if resp, _ := doJSON(t, "GET", ts.URL+"/worker", nil); resp.StatusCode != 400 {
		t.Errorf("missing worker id = %d, want 400", resp.StatusCode)
	}
}

func TestServerStats(t *testing.T) {
	ts, _ := testServer(t)

	resp, out := doJSON(t, "GET", ts.URL+"/stats", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("stats = %d", resp.StatusCode)
	}
	var published bool
	if err := json.Unmarshal(out["published"], &published); err != nil {
		t.Fatal(err)
	}
	if published {
		t.Error("stats reports published before publish")
	}

	if resp, _ := doJSON(t, "POST", ts.URL+"/publish", publishBody()); resp.StatusCode != 200 {
		t.Fatalf("publish = %d", resp.StatusCode)
	}
	for _, w := range []string{"s1", "s2"} {
		for task := 0; task < 3; task++ {
			resp, out := doJSON(t, "POST", ts.URL+"/submit",
				map[string]any{"worker": w, "task": task, "choice": 0})
			if resp.StatusCode != 200 {
				t.Fatalf("submit = %d: %s", resp.StatusCode, out["error"])
			}
		}
	}

	resp, out = doJSON(t, "GET", ts.URL+"/stats", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("stats = %d", resp.StatusCode)
	}
	var answers int64
	if err := json.Unmarshal(out["answers"], &answers); err != nil {
		t.Fatal(err)
	}
	if answers != 6 {
		t.Errorf("stats answers = %d, want 6", answers)
	}
	var epoch uint64
	if err := json.Unmarshal(out["snapshot_epoch"], &epoch); err != nil {
		t.Fatal(err)
	}
	if epoch == 0 {
		t.Error("snapshot epoch did not advance")
	}
	if err := json.Unmarshal(out["published"], &published); err != nil {
		t.Fatal(err)
	}
	if !published {
		t.Error("stats reports unpublished after publish")
	}
}

// TestServerConcurrentTraffic hammers the handlers from many goroutines;
// with -race it verifies the lock-free server plus the concurrent core end
// to end over real HTTP.
func TestServerConcurrentTraffic(t *testing.T) {
	srv, err := newServer(docs.Config{GoldenCount: -1, HITSize: 3, AnswersPerTask: 4, AsyncRerun: true, RerunEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	hts := httptest.NewServer(srv.handler())
	t.Cleanup(hts.Close)

	tasks := make([]map[string]any, 40)
	for i := range tasks {
		tasks[i] = map[string]any{
			"id": i, "text": fmt.Sprintf("is %d even or odd", i),
			"choices": []string{"even", "odd"}, "golden_truth": -1,
		}
	}
	if resp, out := doJSON(t, "POST", hts.URL+"/publish", map[string]any{"tasks": tasks}); resp.StatusCode != 200 {
		t.Fatalf("publish = %d: %s", resp.StatusCode, out["error"])
	}

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{}
			for i := 0; i < 6; i++ {
				w := fmt.Sprintf("cw%d-%d", g, i)
				resp, err := client.Get(hts.URL + "/request?worker=" + w + "&k=3")
				if err != nil {
					errs <- err
					return
				}
				var rout struct {
					Tasks []struct {
						ID int `json:"id"`
					} `json:"tasks"`
				}
				err = json.NewDecoder(resp.Body).Decode(&rout)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				for _, tk := range rout.Tasks {
					var buf bytes.Buffer
					if err := json.NewEncoder(&buf).Encode(map[string]any{"worker": w, "task": tk.ID, "choice": tk.ID % 2}); err != nil {
						errs <- err
						return
					}
					sresp, err := client.Post(hts.URL+"/submit", "application/json", &buf)
					if err != nil {
						errs <- err
						return
					}
					sresp.Body.Close()
					rresp, err := client.Get(fmt.Sprintf("%s/result?task=%d", hts.URL, tk.ID))
					if err != nil {
						errs <- err
						return
					}
					rresp.Body.Close()
				}
				stresp, err := client.Get(hts.URL + "/stats")
				if err != nil {
					errs <- err
					return
				}
				stresp.Body.Close()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	resp, out := doJSON(t, "GET", hts.URL+"/results", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("results = %d: %s", resp.StatusCode, out["error"])
	}
	var results []docs.Result
	if err := json.Unmarshal(out["results"], &results); err != nil {
		t.Fatal(err)
	}
	if len(results) != 40 {
		t.Errorf("results = %d tasks, want 40", len(results))
	}
}
