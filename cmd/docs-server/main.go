// Command docs-server runs the DOCS system as an HTTP service: a requester
// publishes tasks with POST /publish, workers obtain assignments with
// GET /request and answer with POST /submit, and the requester reads
// inferred truths from GET /results. See server.go for the full API and
// README.md for the durability contract.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"docs"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	storePath := flag.String("store", "", "optional JSON path persisting worker statistics across campaigns")
	walDir := flag.String("wal-dir", "", "write-ahead log directory: accepted submits become durable and are replayed on boot (empty = memory-only)")
	walFsync := flag.Bool("wal-fsync", false, "fsync the WAL once per group-commit batch (survive power loss, not just process crashes)")
	checkpointEvery := flag.Int("checkpoint-every", 0, "answers between WAL checkpoints (0 = default 5000, negative = never)")
	golden := flag.Int("golden", 0, "golden task count (0 = default 20, negative = disabled)")
	hitSize := flag.Int("hit", 0, "tasks per assignment (0 = default 20)")
	perTask := flag.Int("redundancy", 0, "max answers per task (0 = unlimited)")
	syncRerun := flag.Bool("sync-rerun", false, "run the periodic batch re-inference on the submitting request instead of the background worker")
	flag.Parse()

	srv, err := newServer(docs.Config{
		StorePath:         *storePath,
		WALDir:            *walDir,
		WALSyncEveryBatch: *walFsync,
		CheckpointEvery:   *checkpointEvery,
		GoldenCount:       *golden,
		HITSize:           *hitSize,
		AnswersPerTask:    *perTask,
		AsyncRerun:        !*syncRerun,
	})
	if err != nil {
		log.Fatalf("docs-server: %v", err)
	}
	if rec := srv.sys.Recovery(); rec.Enabled {
		log.Printf("docs-server: recovered %d records from %s in %.3fs (torn tail: %v)",
			rec.Records, *walDir, rec.Seconds, rec.TornTail)
	}
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	// Graceful shutdown: stop accepting, drain in-flight requests, then
	// Close the system — which flushes and fsyncs the WAL — so a SIGTERM
	// loses nothing even under the no-fsync default.
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	errC := make(chan error, 1)
	go func() { errC <- hs.ListenAndServe() }()
	log.Printf("docs-server listening on %s", *addr)
	select {
	case err := <-errC:
		log.Fatal(err)
	case sig := <-stop:
		log.Printf("docs-server: %v: draining", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			log.Printf("docs-server: shutdown: %v", err)
		}
		if err := srv.sys.Close(); err != nil {
			log.Fatalf("docs-server: close: %v", err)
		}
		log.Printf("docs-server: WAL flushed, bye")
	}
}
