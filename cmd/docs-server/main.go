// Command docs-server runs the DOCS system as an HTTP service: a requester
// publishes tasks with POST /publish, workers obtain assignments with
// GET /request and answer with POST /submit, and the requester reads
// inferred truths from GET /results. See server.go for the full API.
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"docs"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	storePath := flag.String("store", "", "optional JSON path persisting worker statistics across campaigns")
	golden := flag.Int("golden", 0, "golden task count (0 = default 20, negative = disabled)")
	hitSize := flag.Int("hit", 0, "tasks per assignment (0 = default 20)")
	perTask := flag.Int("redundancy", 0, "max answers per task (0 = unlimited)")
	syncRerun := flag.Bool("sync-rerun", false, "run the periodic batch re-inference on the submitting request instead of the background worker")
	flag.Parse()

	srv, err := newServer(docs.Config{
		StorePath:      *storePath,
		GoldenCount:    *golden,
		HITSize:        *hitSize,
		AnswersPerTask: *perTask,
		AsyncRerun:     !*syncRerun,
	})
	if err != nil {
		log.Fatalf("docs-server: %v", err)
	}
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Printf("docs-server listening on %s", *addr)
	log.Fatal(hs.ListenAndServe())
}
