// Command docs-server runs the DOCS system as an HTTP service hosting many
// campaigns at once: requesters publish task sets with
// POST /c/{campaign}/publish, workers obtain assignments with
// GET /c/{campaign}/request and answer with POST /c/{campaign}/submit or
// batched with POST /c/{campaign}/submit-batch, and requesters read
// inferred truths from GET /c/{campaign}/results. Worker profiles are
// shared across campaigns through one store. The handlers live in
// docs/internal/httpapi (shared with the load harness); see that package
// for the full API (including the legacy single-campaign aliases),
// docs/protocol.md for the batch wire formats, and README.md for the
// durability contract.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"docs"
	"docs/internal/httpapi"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	storePath := flag.String("store", "", "shared worker-statistics store (empty = <wal-dir>/store.json when -wal-dir is set, else memory-only)")
	walDir := flag.String("wal-dir", "", "registry root directory: each campaign logs under <dir>/campaigns/<name> and is replayed on boot (empty = memory-only)")
	walFsync := flag.Bool("wal-fsync", false, "fsync each campaign's WAL once per group-commit batch (survive power loss, not just process crashes)")
	checkpointEvery := flag.Int("checkpoint-every", 0, "answers between WAL checkpoints per campaign (0 = default 5000, negative = never)")
	snapshotEvery := flag.Int("snapshot-every", 0, "answers between full state snapshots per campaign; snapshots make restart cost proportional to the un-snapshotted WAL suffix (0 = default 5000, negative = never)")
	golden := flag.Int("golden", 0, "golden task count per campaign (0 = default 20, negative = disabled)")
	hitSize := flag.Int("hit", 0, "tasks per assignment (0 = default 20)")
	perTask := flag.Int("redundancy", 0, "max answers per task (0 = unlimited)")
	syncRerun := flag.Bool("sync-rerun", false, "run the periodic batch re-inference on the submitting request instead of the background worker")
	leaseTTL := flag.Duration("lease-ttl", 0, "assignment lease TTL: tasks served to a worker are excluded from their re-requests and count against redundancy until answered or expired (0 = leases disabled)")
	maxBatch := flag.Int("max-batch", 0, "max answers one POST /submit-batch materializes; items past the clamp are rejected per-item (0 = default 256)")
	maxLive := flag.Int("max-live-campaigns", 0, "max campaigns resident in memory; past the cap the least-recently-used campaign hibernates (final snapshot + WAL fsync, memory released) and wakes on its next request; also makes boot lazy — campaign logs replay on first touch (requires -wal-dir, 0 = unlimited)")
	hibernateAfter := flag.Duration("hibernate-after", 0, "hibernate campaigns idle this long (requires -wal-dir, 0 = never)")
	flag.Parse()

	srv, err := httpapi.New(docs.Config{
		StorePath:         *storePath,
		WALDir:            *walDir,
		WALSyncEveryBatch: *walFsync,
		CheckpointEvery:   *checkpointEvery,
		SnapshotEvery:     *snapshotEvery,
		GoldenCount:       *golden,
		HITSize:           *hitSize,
		AnswersPerTask:    *perTask,
		AsyncRerun:        !*syncRerun,
		LeaseTTL:          *leaseTTL,
		MaxLiveCampaigns:  *maxLive,
		HibernateAfter:    *hibernateAfter,
	}, httpapi.Options{MaxBatch: *maxBatch})
	if err != nil {
		log.Fatalf("docs-server: %v", err)
	}
	for _, info := range srv.Registry().Campaigns() {
		switch {
		case info.Archived:
			log.Printf("docs-server: campaign %q: archived", info.Name)
		case info.RecoveredRecords > 0:
			log.Printf("docs-server: campaign %q: recovered %d records (%d answers, published=%v)",
				info.Name, info.RecoveredRecords, info.Answers, info.Published)
		}
	}
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	// Graceful shutdown: stop accepting, drain in-flight requests, then
	// close the registry — which flushes and fsyncs every campaign's WAL —
	// so a SIGTERM loses nothing even under the no-fsync default.
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	errC := make(chan error, 1)
	go func() { errC <- hs.ListenAndServe() }()
	log.Printf("docs-server listening on %s", *addr)
	select {
	case err := <-errC:
		log.Fatal(err)
	case sig := <-stop:
		log.Printf("docs-server: %v: draining", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			log.Printf("docs-server: shutdown: %v", err)
		}
		if err := srv.Close(); err != nil {
			log.Fatalf("docs-server: close: %v", err)
		}
		log.Printf("docs-server: WALs flushed, bye")
	}
}
