package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"docs"
)

// TestServerWALRestart is the end-to-end durability check: publish and
// collect answers over HTTP with -wal-dir armed, shut the system down,
// boot a second server over the same directory, and verify the campaign —
// tasks, answers, per-task results — came back without re-publishing. The
// /stats durability fields must reflect the recovery.
func TestServerWALRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := docs.Config{GoldenCount: -1, HITSize: 3, WALDir: dir, RerunEvery: 5}

	srv1, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.handler())
	resp, _ := doJSON(t, "POST", ts1.URL+"/publish", publishBody())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("publish: %d", resp.StatusCode)
	}
	for i := 0; i < 4; i++ {
		w := fmt.Sprintf("w%d", i)
		resp, out := doJSON(t, "GET", ts1.URL+"/request?worker="+w+"&k=3", nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request: %d", resp.StatusCode)
		}
		var batch struct {
			ID int `json:"id"`
		}
		var tasks []json.RawMessage
		if err := json.Unmarshal(out["tasks"], &tasks); err != nil {
			t.Fatal(err)
		}
		for _, raw := range tasks {
			if err := json.Unmarshal(raw, &batch); err != nil {
				t.Fatal(err)
			}
			resp, _ := doJSON(t, "POST", ts1.URL+"/submit",
				map[string]any{"worker": w, "task": batch.ID, "choice": batch.ID % 2})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("submit: %d", resp.StatusCode)
			}
		}
	}
	live := srv1.sys.Stats()
	wantResults := map[int]docs.Result{}
	for id := 0; id < 3; id++ {
		wantResults[id] = srv1.sys.CurrentResult(id)
	}
	ts1.Close()
	if err := srv1.sys.Close(); err != nil { // graceful shutdown: flush + fsync
		t.Fatal(err)
	}

	srv2, err := newServer(cfg)
	if err != nil {
		t.Fatalf("reboot over WAL dir: %v", err)
	}
	defer srv2.sys.Close()
	rec := srv2.sys.Recovery()
	if !rec.Enabled || rec.TornTail {
		t.Fatalf("recovery = %+v, want enabled and clean", rec)
	}
	if !srv2.published.Load() {
		t.Fatal("recovered server does not know the campaign is published")
	}
	ts2 := httptest.NewServer(srv2.handler())
	defer ts2.Close()

	if got := srv2.sys.Stats(); got.Answers != live.Answers {
		t.Fatalf("recovered %d answers, live had %d", got.Answers, live.Answers)
	}
	for id, want := range wantResults {
		got := srv2.sys.CurrentResult(id)
		if got.Choice != want.Choice {
			t.Errorf("task %d: recovered choice %d, want %d", id, got.Choice, want.Choice)
		}
	}
	// A second publish must be rejected — the recovered campaign owns the
	// task set.
	resp, _ = doJSON(t, "POST", ts2.URL+"/publish", publishBody())
	if resp.StatusCode == http.StatusOK {
		t.Error("re-publish over a recovered campaign succeeded")
	}
	// Serving continues: stats advertise the WAL and recovery lag.
	resp, out := doJSON(t, "GET", ts2.URL+"/stats", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: %d", resp.StatusCode)
	}
	var st statsJSON
	raw, _ := json.Marshal(out)
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if !st.WALEnabled || st.RecoveredRecords == 0 || st.WALLastSeq == 0 {
		t.Errorf("stats missing durability fields: %+v", st)
	}
}
