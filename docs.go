// Package docs is a Go implementation of DOCS, the Domain-Aware
// Crowdsourcing System (Zheng, Li, Cheng — PVLDB 10(4), 2016).
//
// DOCS improves crowdsourced truth inference by modelling each worker's
// quality per knowledge domain rather than as a single number. It consists
// of three modules, all implemented here from scratch:
//
//   - Domain Vector Estimation (DVE): entity-links each task's text against
//     a knowledge base and computes a distribution over 26 domains via the
//     paper's polynomial-time Algorithm 1;
//   - Truth Inference (TI): jointly estimates task truths and per-domain
//     worker qualities, iteratively (batch) and incrementally (online);
//   - Online Task Assignment (OTA): serves each arriving worker the k tasks
//     whose answers reduce truth ambiguity the most, plus golden-task
//     profiling for first-time workers.
//
// The typical flow mirrors a crowdsourcing campaign:
//
//	sys, _ := docs.New(docs.Config{})
//	sys.Publish(tasks)                    // DVE runs here
//	batch, _ := sys.Request(workerID, 20) // OTA (or golden tasks)
//	sys.Submit(workerID, batch[0].ID, 1)  // TI updates incrementally
//	results, _ := sys.Results()           // final iterative inference
//
// For offline use (answers already collected), see InferTruth.
//
// # Concurrency
//
// A System serves Request, Submit, CurrentResult and WorkerQuality
// concurrently from any number of goroutines; only Publish is exclusive
// (call it once, before serving). Reads are served from immutable
// snapshots of the truth-inference state: a snapshot is published
// atomically after every accepted answer, so a concurrent Request sees a
// consistent (possibly one-answer-stale) view and never blocks ingest.
// Answer ingest itself takes only per-task and per-worker-shard locks, so
// answers to different tasks are processed in parallel.
//
// The periodic full re-inference (Config.RerunEvery) runs synchronously on
// the submitting goroutine by default — serial callers get exactly
// reproducible campaigns. Setting Config.AsyncRerun moves it to a
// background worker that infers over a snapshot of the answer log and
// swaps the result in atomically per task (skipping tasks that received
// answers after the snapshot); submits then never stall on the iterative
// solver. Use Close to stop the background worker when done.
//
// Staleness contract: CurrentResult and Request may trail the newest
// answer by the snapshot in flight; Results always infers over all answers
// accepted before it was called.
//
// # Assignment index and leases
//
// Request does not scan the campaign: candidates come from a live index of
// the open-task set (tasks still under their redundancy cap), maintained
// incrementally as answers arrive and shared by all requests as one
// immutable array — per-request cost is proportional to open tasks, not
// campaign size, with no per-request candidate allocation. Config.LeaseTTL
// additionally leases each served task to its worker until answered or
// expired, so re-requesting workers get disjoint batches and tasks are not
// over-assigned past their redundancy under concurrent traffic. Leases are
// serving-only state and are not persisted. See docs/assignment.md for the
// benefit math, the index design and the lease/recovery contract, and
// docs/architecture.md for the package-by-layer map.
//
// # Persistence
//
// Two artifacts survive a restart. Config.StorePath keeps the long-run
// per-worker statistics (the paper stores these in the system database so
// returning workers keep their profile across requesters); it is written
// as an atomically-replaced JSON checkpoint plus an append-only delta log,
// so no crash window loses a merged session. Config.WALDir keeps the
// campaign itself: every accepted publication and answer is appended to a
// segmented, CRC-checked write-ahead log (package docs/internal/wal) with
// group-commit batching, and New replays the log — checkpoint prefix
// first, then the intact segment records, dropping a torn final record —
// through the ordinary serial submit path before serving. Because
// concurrent serving is provably equivalent to a serial replay of the
// chronological answer log, the recovered state is bit-identical to an
// uninterrupted serial run of the logged stream; the crash-injection suite
// in docs/internal/core asserts exactly that over randomized kill points.
//
// Durability levels: by default an acknowledged Submit has reached the OS
// (survives process crashes); Config.WALSyncEveryBatch adds one fsync per
// group-commit batch (survives power loss). Checkpoints every
// Config.CheckpointEvery answers bound the log's disk footprint — they
// compact the replayed prefix and delete covered segments. State
// snapshots every Config.SnapshotEvery answers bound the RECOVERY TIME:
// a background serial shadow replica of the durable log is serialized
// (floats as raw bits) to an atomically-replaced snapshot file, and boot
// restores it and replays only the WAL suffix past it — bit-identical to
// a full replay, falling back to one loudly if the snapshot is torn,
// corrupt, or ahead of the durable log. See docs/persistence.md for the
// full contract and the fallback ladder (snapshot → checkpoint →
// segments).
//
// # Multiple campaigns
//
// OpenRegistry hosts many named campaigns in one process, each a full
// System, all sharing one long-run worker store — the paper's central
// observation is that per-domain worker quality persists across
// requesters, so a worker profiled on campaign A's golden tasks starts
// campaign B with their quality vector carried over instead of re-running
// the golden gauntlet:
//
//	reg, _ := docs.OpenRegistry(docs.Config{WALDir: "data"})
//	a, _ := reg.Create("product-labels")
//	a.Publish(tasks)
//	b, _ := reg.Campaign("product-labels") // same campaign, by name
//
// With Config.WALDir set, each campaign logs under its own namespace
// (<dir>/campaigns/<name>) and the shared store persists at
// <dir>/store.json; OpenRegistry recovers every campaign a previous
// process left behind. Archive ends a campaign for good; Close shuts the
// whole registry down gracefully. See docs/multi-campaign.md.
package docs

import (
	"fmt"
	"time"

	"docs/internal/core"
	"docs/internal/kb"
	"docs/internal/model"
	"docs/internal/store"
	"docs/internal/truth"
	"docs/internal/wal"
)

// NoTruth marks an unknown ground truth.
const NoTruth = -1

// ErrDurability marks a failed durability promise: the mutation took
// effect in memory but could not be logged to the WAL. Check with
// errors.Is; servers should answer 5xx, not 4xx.
var ErrDurability = core.ErrDurability

// Task is a multiple-choice crowdsourcing task.
type Task struct {
	// ID must be unique within a campaign.
	ID int
	// Text is the natural-language description; DVE links entities in it.
	Text string
	// Choices are the possible answers (at least 2).
	Choices []string
	// GoldenTruth is the index of the correct choice when the requester
	// knows it (enables the task to serve as a golden task), or NoTruth.
	GoldenTruth int
}

// Answer is one worker response, used by the offline InferTruth API.
type Answer struct {
	Worker string
	TaskID int
	Choice int
}

// Result is the inferred outcome for one task.
type Result struct {
	TaskID int
	// Choice is the inferred truth (index into the task's Choices).
	Choice int
	// Confidence is the probabilistic truth s_i over the choices.
	Confidence []float64
}

// Config tunes a System. The zero value selects the paper's defaults:
// 20 golden tasks, HITs of 20 tasks, full re-inference every 100 answers,
// no redundancy cap, memory-only worker store.
type Config struct {
	// GoldenCount is the number of golden tasks selected among tasks with
	// GoldenTruth set; negative disables golden profiling.
	GoldenCount int
	// HITSize is k, the default number of tasks per assignment.
	HITSize int
	// AnswersPerTask caps redundancy per task (0 = unlimited).
	AnswersPerTask int
	// RerunEvery re-runs full iterative truth inference every z answers
	// (0 = the default 100, negative = never).
	RerunEvery int
	// AsyncRerun runs the periodic re-inference on a background worker
	// instead of the submitting goroutine; see the package comment for the
	// staleness contract. Serving stays deterministic without it.
	AsyncRerun bool
	// StorePath persists worker statistics as JSON across campaigns
	// (empty = memory-only).
	StorePath string
	// WALDir arms the write-ahead log: every accepted Publish/Submit is
	// appended durably (group-commit batched), and New replays whatever a
	// previous process left in the directory before serving. Empty keeps
	// the campaign memory-only. See the Persistence section of the package
	// comment.
	WALDir string
	// CheckpointEvery writes a WAL checkpoint (and truncates covered
	// segments) every so many accepted answers when WALDir is set
	// (0 = default 5000, negative = never).
	CheckpointEvery int
	// SnapshotEvery writes a full state snapshot every so many accepted
	// answers when WALDir is set (0 = default 5000, negative = never).
	// A snapshot makes restart time proportional to the un-snapshotted
	// WAL suffix instead of the whole campaign history, while keeping the
	// bit-exact recovery contract: it is built from a serial shadow
	// replica of the durable log, so snapshot-assisted boot and full
	// replay reconstruct identical state. A torn or corrupt snapshot is
	// rejected loudly and boot falls back to full replay. See
	// docs/persistence.md.
	SnapshotEvery int
	// WALSyncEveryBatch fsyncs the WAL once per group-commit batch,
	// surviving power loss at the cost of one fsync amortized over each
	// batch; the default flushes batches to the OS only (survives process
	// crashes).
	WALSyncEveryBatch bool
	// LeaseTTL arms assignment leases: every task served on the OTA path
	// is leased to the worker until they answer it or the TTL elapses, so
	// a worker re-requesting before submitting gets disjoint tasks and,
	// with AnswersPerTask set, concurrent traffic cannot over-assign a
	// task far past its redundancy. Zero disables leases. Leases are
	// serving-only state (never logged to the WAL): after a crash,
	// recovery restores answers but not outstanding leases, so
	// re-assignment is briefly possible — bounded and safe, see
	// docs/assignment.md.
	LeaseTTL time.Duration

	// MaxLiveCampaigns (registry only) caps how many campaigns are
	// resident in memory at once; past the cap the least-recently-used
	// live campaign hibernates (final snapshot + fsync, memory released)
	// and wakes on its next request. Also makes boot lazy: campaign logs
	// replay on first touch, not at open. Requires WALDir. Zero keeps
	// every campaign live forever (the pre-hibernation behavior).
	MaxLiveCampaigns int
	// HibernateAfter (registry only) hibernates any campaign idle for
	// this long. Requires WALDir. Zero disables idle hibernation. See
	// docs/multi-campaign.md for the lifecycle and wake contract.
	HibernateAfter time.Duration
}

// System is a running DOCS campaign.
type System struct {
	sys *core.System
	st  *store.Store // non-nil when New opened a file-backed store
}

// New creates a System over the built-in knowledge base.
func New(cfg Config) (*System, error) {
	k, err := kb.Default()
	if err != nil {
		return nil, err
	}
	var st *store.Store
	if cfg.StorePath != "" {
		st, err = store.Open(cfg.StorePath, k.Domains().Size())
		if err != nil {
			return nil, err
		}
	}
	walSync := wal.SyncNever
	if cfg.WALSyncEveryBatch {
		walSync = wal.SyncEveryBatch
	}
	sys, err := core.New(core.Config{
		KB:              k,
		Store:           st,
		GoldenCount:     cfg.GoldenCount,
		HITSize:         cfg.HITSize,
		AnswersPerTask:  cfg.AnswersPerTask,
		RerunEvery:      cfg.RerunEvery,
		AsyncRerun:      cfg.AsyncRerun,
		CheckpointEvery: cfg.CheckpointEvery,
		SnapshotEvery:   cfg.SnapshotEvery,
		WALSync:         walSync,
		LeaseTTL:        cfg.LeaseTTL,
	})
	if err != nil {
		return nil, err
	}
	if cfg.WALDir != "" {
		if _, err := sys.Recover(cfg.WALDir); err != nil {
			sys.Close()
			if st != nil {
				st.Close()
			}
			return nil, err
		}
	}
	return &System{sys: sys, st: st}, nil
}

// Recovery describes what New replayed from Config.WALDir.
type Recovery struct {
	// Enabled is true when a WAL is armed.
	Enabled bool
	// Records is how many durable records (publication + answers) were
	// replayed on boot.
	Records int
	// TornTail is true when the log ended in a torn, dropped record (the
	// previous process crashed mid-append; the record was never
	// acknowledged).
	TornTail bool
	// SnapshotUsed is true when the boot restored a state snapshot and
	// Records counts only the WAL suffix past SnapshotSeq.
	SnapshotUsed bool
	// SnapshotSeq is the WAL sequence the restored snapshot covered.
	SnapshotSeq uint64
	// SnapshotRejected carries the reason a present snapshot was not used
	// (torn, corrupt, or ahead of the durable log); the boot fell back to
	// a full replay. Empty when no snapshot existed or it was used.
	SnapshotRejected string
	// Seconds is the wall-clock recovery lag the boot paid.
	Seconds float64
}

// Recovery returns what New replayed from the WAL (zero value when no WAL
// is armed).
func (s *System) Recovery() Recovery {
	info := s.sys.Recovery()
	return Recovery{
		Enabled:          info.Enabled,
		Records:          info.Records,
		TornTail:         info.TornTail,
		SnapshotUsed:     info.SnapshotUsed,
		SnapshotSeq:      info.SnapshotSeq,
		SnapshotRejected: info.SnapshotRejected,
		Seconds:          info.Duration.Seconds(),
	}
}

// Publish registers the campaign's tasks and runs Domain Vector Estimation
// over their text. Must be called exactly once, before Request/Submit.
func (s *System) Publish(tasks []Task) error {
	internal := make([]*model.Task, 0, len(tasks))
	for _, t := range tasks {
		it, err := toInternal(t)
		if err != nil {
			return err
		}
		internal = append(internal, it)
	}
	return s.sys.Publish(internal)
}

// Request serves the arriving worker up to k tasks: golden tasks first for
// unknown workers, then the highest-benefit regular tasks. k <= 0 uses the
// configured HITSize.
func (s *System) Request(workerID string, k int) ([]Task, error) {
	got, err := s.sys.Request(workerID, k)
	if err != nil {
		return nil, err
	}
	out := make([]Task, 0, len(got))
	for _, it := range got {
		out = append(out, fromInternal(it))
	}
	return out, nil
}

// Submit records one answer from a worker.
func (s *System) Submit(workerID string, taskID, choice int) error {
	return s.sys.Submit(workerID, taskID, choice)
}

// BatchStatus is the per-item outcome of SubmitBatch.
type BatchStatus struct {
	OK bool
	// Error is the rejection reason, empty when OK.
	Error string
}

// SubmitBatch records many answers in one call. Each item is validated
// independently — one bad answer never poisons the batch — and every
// accepted regular answer becomes durable in ONE write-ahead-log record
// (one write, at most one fsync), instead of one per answer. The resulting
// state is bit-identical to submitting the same answers one by one. The
// returned slice has one status per item, in input order; the error is
// batch-level (a durability failure — some items may be applied in memory
// without the durability promise; treat as 5xx). See docs/protocol.md.
func (s *System) SubmitBatch(answers []Answer) ([]BatchStatus, error) {
	items := make([]core.BatchItem, len(answers))
	for i, a := range answers {
		items[i] = core.BatchItem{Worker: a.Worker, Task: a.TaskID, Choice: a.Choice}
	}
	got, err := s.sys.SubmitBatch(items)
	if err != nil {
		return nil, err
	}
	out := make([]BatchStatus, len(got))
	for i, st := range got {
		out[i] = BatchStatus{OK: st.OK, Error: st.Err}
	}
	return out, nil
}

// GoldenTaskIDs returns the IDs of the selected golden tasks.
func (s *System) GoldenTaskIDs() []int { return s.sys.GoldenTasks() }

// Published reports whether a campaign is in place — via Publish or via
// WAL recovery on New.
func (s *System) Published() bool { return s.sys.Published() }

// DomainNames returns the system's domain set (the 26 Yahoo! Answers
// domains for the default knowledge base).
func (s *System) DomainNames() []string { return s.sys.Domains().Names() }

// DomainNames returns the built-in knowledge base's domain set without
// constructing a System — the domain taxonomy is a property of the KB,
// shared by every campaign.
func DomainNames() ([]string, error) {
	k, err := kb.Default()
	if err != nil {
		return nil, err
	}
	return k.Domains().Names(), nil
}

// CurrentResult returns the present (incrementally maintained) inferred
// truth for a task; Choice is -1 for golden or unknown tasks.
func (s *System) CurrentResult(taskID int) Result {
	choice, conf := s.sys.Result(taskID)
	return Result{TaskID: taskID, Choice: choice, Confidence: conf}
}

// WorkerQuality returns the current per-domain quality estimate for a
// worker, aligned with DomainNames.
func (s *System) WorkerQuality(workerID string) []float64 {
	return s.sys.WorkerQuality(workerID)
}

// Stats is a point-in-time view of the serving counters.
type Stats struct {
	// Answers is the number of accepted non-golden answers.
	Answers int64
	// SnapshotEpoch is the truth engine's mutation counter; it advances
	// with every accepted answer and batch-rerun swap.
	SnapshotEpoch uint64
	// RerunsCompleted and RerunsFailed count periodic batch re-inference
	// runs.
	RerunsCompleted int64
	RerunsFailed    int64
	// OpenTasks is the size of the live candidate index: non-golden tasks
	// still under their redundancy cap, maintained incrementally as
	// answers arrive. IndexEpoch is the index's generation counter — it
	// advances whenever a new immutable candidate array is published.
	OpenTasks  int
	IndexEpoch uint64
	// LeasesActive is the number of live assignment leases (always zero
	// without Config.LeaseTTL).
	LeasesActive int64
	// BatchesTotal counts accepted SubmitBatch calls and BatchAnswersTotal
	// the answers they carried; single-submit traffic leaves both zero.
	BatchesTotal      int64
	BatchAnswersTotal int64
	// WALEnabled reports whether a write-ahead log is armed; WALLastSeq is
	// the sequence number of the last durable record and Checkpoints*
	// count WAL checkpoint passes. All zero without a WAL.
	WALEnabled           bool
	WALLastSeq           uint64
	CheckpointsCompleted int64
	CheckpointsFailed    int64
	// Snapshots* count background state-snapshot passes; SnapshotLastSeq
	// is the WAL sequence the newest snapshot covers (what a restart would
	// restore instead of replaying). All zero without a WAL or with
	// Config.SnapshotEvery negative.
	SnapshotsCompleted int64
	SnapshotsFailed    int64
	SnapshotLastSeq    uint64
}

// Stats returns the current serving counters. Safe to call concurrently
// with serving.
func (s *System) Stats() Stats {
	done, failed := s.sys.Reruns()
	ckpts, ckptErrs := s.sys.Checkpoints()
	snaps, snapErrs := s.sys.Snapshots()
	batches, batchAnswers := s.sys.BatchCounts()
	return Stats{
		Answers:              s.sys.AnswerCount(),
		SnapshotEpoch:        s.sys.Epoch(),
		RerunsCompleted:      done,
		RerunsFailed:         failed,
		OpenTasks:            s.sys.OpenTasks(),
		IndexEpoch:           s.sys.IndexEpoch(),
		LeasesActive:         s.sys.ActiveLeases(),
		BatchesTotal:         batches,
		BatchAnswersTotal:    batchAnswers,
		WALEnabled:           s.sys.Recovery().Enabled,
		WALLastSeq:           s.sys.WALSeq(),
		CheckpointsCompleted: ckpts,
		CheckpointsFailed:    ckptErrs,
		SnapshotsCompleted:   snaps,
		SnapshotsFailed:      snapErrs,
		SnapshotLastSeq:      s.sys.LastSnapshotSeq(),
	}
}

// Close stops the background re-inference and checkpoint workers and
// flushes, fsyncs and closes the WAL and the worker store, so a graceful
// shutdown loses nothing. Do not serve after Close.
func (s *System) Close() error {
	err := s.sys.Close()
	if s.st != nil {
		if cerr := s.st.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Results runs the final iterative truth inference over all collected
// answers, merges worker statistics into the persistent store, and returns
// one Result per published non-golden task.
func (s *System) Results() ([]Result, error) {
	res, err := s.sys.Results()
	if err != nil {
		return nil, err
	}
	tasks := s.sys.InferTasks()
	out := make([]Result, len(tasks))
	for i, t := range tasks {
		out[i] = Result{TaskID: t.ID, Choice: res.Truth[i], Confidence: res.S[i]}
	}
	return out, nil
}

// InferTruth is the offline API: given tasks and a full set of collected
// answers, it runs DVE and the iterative truth inference and returns one
// Result per task, in input order. Worker qualities start at the default
// prior; use a System with golden tasks for profiled inference.
func InferTruth(tasks []Task, answers []Answer) ([]Result, error) {
	sys, err := New(Config{GoldenCount: -1, RerunEvery: -1})
	if err != nil {
		return nil, err
	}
	internal := make([]*model.Task, 0, len(tasks))
	for _, t := range tasks {
		it, err := toInternal(t)
		if err != nil {
			return nil, err
		}
		internal = append(internal, it)
	}
	if err := sys.sys.Publish(internal); err != nil {
		return nil, err
	}
	as := model.NewAnswerSet()
	for _, a := range answers {
		if err := as.Add(model.Answer{Worker: a.Worker, Task: a.TaskID, Choice: a.Choice}); err != nil {
			return nil, err
		}
	}
	m := sys.sys.Domains().Size()
	res, err := truth.Infer(internal, as, m, truth.Options{})
	if err != nil {
		return nil, err
	}
	out := make([]Result, len(internal))
	for i, t := range internal {
		out[i] = Result{TaskID: t.ID, Choice: res.Truth[i], Confidence: res.S[i]}
	}
	return out, nil
}

func toInternal(t Task) (*model.Task, error) {
	if len(t.Choices) < 2 {
		return nil, fmt.Errorf("docs: task %d needs at least 2 choices", t.ID)
	}
	truthIdx := model.NoTruth
	if t.GoldenTruth != NoTruth {
		if t.GoldenTruth < 0 || t.GoldenTruth >= len(t.Choices) {
			return nil, fmt.Errorf("docs: task %d golden truth %d out of range", t.ID, t.GoldenTruth)
		}
		truthIdx = t.GoldenTruth
	}
	return &model.Task{
		ID:         t.ID,
		Text:       t.Text,
		Choices:    append([]string(nil), t.Choices...),
		Truth:      truthIdx,
		TrueDomain: model.NoTruth,
	}, nil
}

func fromInternal(it *model.Task) Task {
	truthIdx := NoTruth
	if it.Truth != model.NoTruth {
		truthIdx = it.Truth
	}
	return Task{
		ID:          it.ID,
		Text:        it.Text,
		Choices:     append([]string(nil), it.Choices...),
		GoldenTruth: truthIdx,
	}
}
