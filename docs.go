// Package docs is a Go implementation of DOCS, the Domain-Aware
// Crowdsourcing System (Zheng, Li, Cheng — PVLDB 10(4), 2016).
//
// DOCS improves crowdsourced truth inference by modelling each worker's
// quality per knowledge domain rather than as a single number. It consists
// of three modules, all implemented here from scratch:
//
//   - Domain Vector Estimation (DVE): entity-links each task's text against
//     a knowledge base and computes a distribution over 26 domains via the
//     paper's polynomial-time Algorithm 1;
//   - Truth Inference (TI): jointly estimates task truths and per-domain
//     worker qualities, iteratively (batch) and incrementally (online);
//   - Online Task Assignment (OTA): serves each arriving worker the k tasks
//     whose answers reduce truth ambiguity the most, plus golden-task
//     profiling for first-time workers.
//
// The typical flow mirrors a crowdsourcing campaign:
//
//	sys, _ := docs.New(docs.Config{})
//	sys.Publish(tasks)                    // DVE runs here
//	batch, _ := sys.Request(workerID, 20) // OTA (or golden tasks)
//	sys.Submit(workerID, batch[0].ID, 1)  // TI updates incrementally
//	results, _ := sys.Results()           // final iterative inference
//
// For offline use (answers already collected), see InferTruth.
//
// # Concurrency
//
// A System serves Request, Submit, CurrentResult and WorkerQuality
// concurrently from any number of goroutines; only Publish is exclusive
// (call it once, before serving). Reads are served from immutable
// snapshots of the truth-inference state: a snapshot is published
// atomically after every accepted answer, so a concurrent Request sees a
// consistent (possibly one-answer-stale) view and never blocks ingest.
// Answer ingest itself takes only per-task and per-worker-shard locks, so
// answers to different tasks are processed in parallel.
//
// The periodic full re-inference (Config.RerunEvery) runs synchronously on
// the submitting goroutine by default — serial callers get exactly
// reproducible campaigns. Setting Config.AsyncRerun moves it to a
// background worker that infers over a snapshot of the answer log and
// swaps the result in atomically per task (skipping tasks that received
// answers after the snapshot); submits then never stall on the iterative
// solver. Use Close to stop the background worker when done.
//
// Staleness contract: CurrentResult and Request may trail the newest
// answer by the snapshot in flight; Results always infers over all answers
// accepted before it was called.
package docs

import (
	"fmt"

	"docs/internal/core"
	"docs/internal/kb"
	"docs/internal/model"
	"docs/internal/store"
	"docs/internal/truth"
)

// NoTruth marks an unknown ground truth.
const NoTruth = -1

// Task is a multiple-choice crowdsourcing task.
type Task struct {
	// ID must be unique within a campaign.
	ID int
	// Text is the natural-language description; DVE links entities in it.
	Text string
	// Choices are the possible answers (at least 2).
	Choices []string
	// GoldenTruth is the index of the correct choice when the requester
	// knows it (enables the task to serve as a golden task), or NoTruth.
	GoldenTruth int
}

// Answer is one worker response, used by the offline InferTruth API.
type Answer struct {
	Worker string
	TaskID int
	Choice int
}

// Result is the inferred outcome for one task.
type Result struct {
	TaskID int
	// Choice is the inferred truth (index into the task's Choices).
	Choice int
	// Confidence is the probabilistic truth s_i over the choices.
	Confidence []float64
}

// Config tunes a System. The zero value selects the paper's defaults:
// 20 golden tasks, HITs of 20 tasks, full re-inference every 100 answers,
// no redundancy cap, memory-only worker store.
type Config struct {
	// GoldenCount is the number of golden tasks selected among tasks with
	// GoldenTruth set; negative disables golden profiling.
	GoldenCount int
	// HITSize is k, the default number of tasks per assignment.
	HITSize int
	// AnswersPerTask caps redundancy per task (0 = unlimited).
	AnswersPerTask int
	// RerunEvery re-runs full iterative truth inference every z answers
	// (0 = the default 100, negative = never).
	RerunEvery int
	// AsyncRerun runs the periodic re-inference on a background worker
	// instead of the submitting goroutine; see the package comment for the
	// staleness contract. Serving stays deterministic without it.
	AsyncRerun bool
	// StorePath persists worker statistics as JSON across campaigns
	// (empty = memory-only).
	StorePath string
}

// System is a running DOCS campaign.
type System struct {
	sys *core.System
}

// New creates a System over the built-in knowledge base.
func New(cfg Config) (*System, error) {
	k, err := kb.Default()
	if err != nil {
		return nil, err
	}
	var st *store.Store
	if cfg.StorePath != "" {
		st, err = store.Open(cfg.StorePath, k.Domains().Size())
		if err != nil {
			return nil, err
		}
	}
	sys, err := core.New(core.Config{
		KB:             k,
		Store:          st,
		GoldenCount:    cfg.GoldenCount,
		HITSize:        cfg.HITSize,
		AnswersPerTask: cfg.AnswersPerTask,
		RerunEvery:     cfg.RerunEvery,
		AsyncRerun:     cfg.AsyncRerun,
	})
	if err != nil {
		return nil, err
	}
	return &System{sys: sys}, nil
}

// Publish registers the campaign's tasks and runs Domain Vector Estimation
// over their text. Must be called exactly once, before Request/Submit.
func (s *System) Publish(tasks []Task) error {
	internal := make([]*model.Task, 0, len(tasks))
	for _, t := range tasks {
		it, err := toInternal(t)
		if err != nil {
			return err
		}
		internal = append(internal, it)
	}
	return s.sys.Publish(internal)
}

// Request serves the arriving worker up to k tasks: golden tasks first for
// unknown workers, then the highest-benefit regular tasks. k <= 0 uses the
// configured HITSize.
func (s *System) Request(workerID string, k int) ([]Task, error) {
	got, err := s.sys.Request(workerID, k)
	if err != nil {
		return nil, err
	}
	out := make([]Task, 0, len(got))
	for _, it := range got {
		out = append(out, fromInternal(it))
	}
	return out, nil
}

// Submit records one answer from a worker.
func (s *System) Submit(workerID string, taskID, choice int) error {
	return s.sys.Submit(workerID, taskID, choice)
}

// GoldenTaskIDs returns the IDs of the selected golden tasks.
func (s *System) GoldenTaskIDs() []int { return s.sys.GoldenTasks() }

// DomainNames returns the system's domain set (the 26 Yahoo! Answers
// domains for the default knowledge base).
func (s *System) DomainNames() []string { return s.sys.Domains().Names() }

// CurrentResult returns the present (incrementally maintained) inferred
// truth for a task; Choice is -1 for golden or unknown tasks.
func (s *System) CurrentResult(taskID int) Result {
	choice, conf := s.sys.Result(taskID)
	return Result{TaskID: taskID, Choice: choice, Confidence: conf}
}

// WorkerQuality returns the current per-domain quality estimate for a
// worker, aligned with DomainNames.
func (s *System) WorkerQuality(workerID string) []float64 {
	return s.sys.WorkerQuality(workerID)
}

// Stats is a point-in-time view of the serving counters.
type Stats struct {
	// Answers is the number of accepted non-golden answers.
	Answers int64
	// SnapshotEpoch is the truth engine's mutation counter; it advances
	// with every accepted answer and batch-rerun swap.
	SnapshotEpoch uint64
	// RerunsCompleted and RerunsFailed count periodic batch re-inference
	// runs.
	RerunsCompleted int64
	RerunsFailed    int64
}

// Stats returns the current serving counters. Safe to call concurrently
// with serving.
func (s *System) Stats() Stats {
	done, failed := s.sys.Reruns()
	return Stats{
		Answers:         s.sys.AnswerCount(),
		SnapshotEpoch:   s.sys.Epoch(),
		RerunsCompleted: done,
		RerunsFailed:    failed,
	}
}

// Close stops the background re-inference worker started by
// Config.AsyncRerun (a no-op otherwise). Do not serve after Close.
func (s *System) Close() { s.sys.Close() }

// Results runs the final iterative truth inference over all collected
// answers, merges worker statistics into the persistent store, and returns
// one Result per published non-golden task.
func (s *System) Results() ([]Result, error) {
	res, err := s.sys.Results()
	if err != nil {
		return nil, err
	}
	tasks := s.sys.InferTasks()
	out := make([]Result, len(tasks))
	for i, t := range tasks {
		out[i] = Result{TaskID: t.ID, Choice: res.Truth[i], Confidence: res.S[i]}
	}
	return out, nil
}

// InferTruth is the offline API: given tasks and a full set of collected
// answers, it runs DVE and the iterative truth inference and returns one
// Result per task, in input order. Worker qualities start at the default
// prior; use a System with golden tasks for profiled inference.
func InferTruth(tasks []Task, answers []Answer) ([]Result, error) {
	sys, err := New(Config{GoldenCount: -1, RerunEvery: -1})
	if err != nil {
		return nil, err
	}
	internal := make([]*model.Task, 0, len(tasks))
	for _, t := range tasks {
		it, err := toInternal(t)
		if err != nil {
			return nil, err
		}
		internal = append(internal, it)
	}
	if err := sys.sys.Publish(internal); err != nil {
		return nil, err
	}
	as := model.NewAnswerSet()
	for _, a := range answers {
		if err := as.Add(model.Answer{Worker: a.Worker, Task: a.TaskID, Choice: a.Choice}); err != nil {
			return nil, err
		}
	}
	m := sys.sys.Domains().Size()
	res, err := truth.Infer(internal, as, m, truth.Options{})
	if err != nil {
		return nil, err
	}
	out := make([]Result, len(internal))
	for i, t := range internal {
		out[i] = Result{TaskID: t.ID, Choice: res.Truth[i], Confidence: res.S[i]}
	}
	return out, nil
}

func toInternal(t Task) (*model.Task, error) {
	if len(t.Choices) < 2 {
		return nil, fmt.Errorf("docs: task %d needs at least 2 choices", t.ID)
	}
	truthIdx := model.NoTruth
	if t.GoldenTruth != NoTruth {
		if t.GoldenTruth < 0 || t.GoldenTruth >= len(t.Choices) {
			return nil, fmt.Errorf("docs: task %d golden truth %d out of range", t.ID, t.GoldenTruth)
		}
		truthIdx = t.GoldenTruth
	}
	return &model.Task{
		ID:         t.ID,
		Text:       t.Text,
		Choices:    append([]string(nil), t.Choices...),
		Truth:      truthIdx,
		TrueDomain: model.NoTruth,
	}, nil
}

func fromInternal(it *model.Task) Task {
	truthIdx := NoTruth
	if it.Truth != model.NoTruth {
		truthIdx = it.Truth
	}
	return Task{
		ID:          it.ID,
		Text:        it.Text,
		Choices:     append([]string(nil), it.Choices...),
		GoldenTruth: truthIdx,
	}
}
