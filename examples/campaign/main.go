// Campaign: a larger end-to-end run that exercises every public API —
// persistent worker statistics included.
//
// The example runs TWO sequential campaigns sharing one worker-statistics
// store (a temp JSON file). In campaign 1 the workers are profiled on
// golden tasks; in campaign 2 the same workers return, skip golden
// profiling entirely (their qualities were persisted per the paper's
// Theorem 1 maintenance rule), and go straight to high-benefit tasks.
//
//	go run ./examples/campaign
package main

import (
	"fmt"
	"hash/fnv"
	"log"
	"os"
	"path/filepath"
)

import "docs"

// simWorker answers sports questions well and food questions at chance.
type simWorker struct{ name string }

func (w simWorker) answer(t docs.Task, truth int) int {
	if containsAny(t.Text, "NBA", "championships", "Warriors", "Lakers") {
		return truth // sports expert
	}
	h := fnv.New32a()
	h.Write([]byte(w.name + t.Text))
	if h.Sum32()%3 == 0 { // wrong a third of the time elsewhere
		return 1 - truth
	}
	return truth
}

func containsAny(s string, subs ...string) bool {
	for _, sub := range subs {
		if len(sub) > 0 && len(s) >= len(sub) {
			for i := 0; i+len(sub) <= len(s); i++ {
				if s[i:i+len(sub)] == sub {
					return true
				}
			}
		}
	}
	return false
}

func makeTasks(campaign int) ([]docs.Task, map[int]int) {
	players := []string{"Michael Jordan", "Kobe Bryant", "LeBron James", "Stephen Curry",
		"Tim Duncan", "Magic Johnson", "Larry Bird", "Kevin Durant"}
	foods := []string{"Chocolate", "Honey", "Pizza", "Avocado", "Banana", "Cheese", "Bacon", "Tofu"}
	var tasks []docs.Task
	truths := map[int]int{}
	add := func(text string, truth int, golden bool) {
		gt := docs.NoTruth
		if golden {
			gt = truth
		}
		tasks = append(tasks, docs.Task{
			ID: len(tasks), Text: text,
			Choices: []string{"first", "second"}, GoldenTruth: gt,
		})
		truths[len(tasks)-1] = truth
	}
	for i := 0; i+1 < len(players); i++ {
		a, b := players[i], players[(i+campaign)%len(players)]
		if a == b {
			continue
		}
		add(fmt.Sprintf("Who wins more NBA championships, %s or %s?", a, b), i%2, i < 2)
	}
	for i := 0; i+1 < len(foods); i++ {
		a, b := foods[i], foods[(i+campaign)%len(foods)]
		if a == b {
			continue
		}
		add(fmt.Sprintf("Which food contains more calories, %s or %s?", a, b), (i+1)%2, i < 2)
	}
	return tasks, truths
}

func runCampaign(n int, storePath string, workers []simWorker) {
	tasks, truths := makeTasks(n)
	sys, err := docs.New(docs.Config{
		GoldenCount:    4,
		HITSize:        3,
		AnswersPerTask: 3,
		StorePath:      storePath,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Publish(tasks); err != nil {
		log.Fatal(err)
	}
	goldenSet := map[int]bool{}
	for _, id := range sys.GoldenTaskIDs() {
		goldenSet[id] = true
	}
	goldenServed := map[string]int{}
	for round := 0; round < 40; round++ {
		w := workers[round%len(workers)]
		batch, err := sys.Request(w.name, 3)
		if err != nil {
			log.Fatal(err)
		}
		for _, t := range batch {
			if goldenSet[t.ID] {
				goldenServed[w.name]++
			}
			if err := sys.Submit(w.name, t.ID, w.answer(t, truths[t.ID])); err != nil {
				log.Fatal(err)
			}
		}
	}
	results, err := sys.Results()
	if err != nil {
		log.Fatal(err)
	}
	correct := 0
	for _, r := range results {
		if r.Choice == truths[r.TaskID] {
			correct++
		}
	}
	fmt.Printf("campaign %d: %d/%d correct; golden tasks served per worker: %v\n",
		n, correct, len(results), goldenServed)
}

func main() {
	dir, err := os.MkdirTemp("", "docs-campaign-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	storePath := filepath.Join(dir, "workers.json")

	workers := []simWorker{{"ana"}, {"ben"}, {"cho"}, {"dee"}}
	runCampaign(1, storePath, workers)
	// Same workers return: profiled qualities load from the store, so the
	// golden counter should stay at zero in campaign 2.
	runCampaign(2, storePath, workers)
}
