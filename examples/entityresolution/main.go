// Entity resolution: the crowdsourced-join workload the paper's
// introduction motivates (CrowdER-style "do these two records refer to the
// same real-world entity?" questions).
//
// Record pairs come from different verticals (sports teams, car models,
// films), so a worker good at cars is not necessarily good at films.
// A mixed crowd with per-vertical skill answers; DOCS profiles every worker
// on golden pairs, routes pairs to matching experts, and aggregates
// domain-aware. For contrast, the example also reports what plain majority
// voting over the same answers would have produced.
//
//	go run ./examples/entityresolution
package main

import (
	"fmt"
	"hash/fnv"
	"log"
	"strings"

	"docs"
)

// pairSpec is one candidate duplicate pair with its hidden verdict.
type pairSpec struct {
	left, right string
	vertical    string
	same        bool
}

func buildPairs() []pairSpec {
	return []pairSpec{
		// Sports teams.
		{"Golden State Warriors", "Warriors (Oakland NBA team)", "sports", true},
		{"Los Angeles Lakers", "Lakers basketball club", "sports", true},
		{"Chicago Bulls", "Boston Celtics", "sports", false},
		{"Miami Heat", "Utah Jazz", "sports", false},
		{"San Antonio Spurs", "Spurs (Texas NBA franchise)", "sports", true},
		{"Houston Rockets", "Toronto Raptors", "sports", false},
		// Car models.
		{"Toyota Camry", "Camry sedan by Toyota", "cars", true},
		{"Honda Civic", "Ford Mustang", "cars", false},
		{"Tesla Model S", "Model S (Tesla electric sedan)", "cars", true},
		{"BMW 3 Series", "Audi A4", "cars", false},
		{"Porsche 911", "911 sports car from Porsche", "cars", true},
		{"Jeep Wrangler", "Mazda MX-5", "cars", false},
		// Films.
		{"The Dark Knight", "Dark Knight (Batman film)", "films", true},
		{"Titanic", "Inception", "films", false},
		{"The Matrix", "Matrix (1999 science fiction film)", "films", true},
		{"Forrest Gump", "Pulp Fiction", "films", false},
		{"Toy Story", "Toy Story (Pixar animated film)", "films", true},
		{"Gladiator", "Casablanca", "films", false},
	}
}

// crowdWorker has one strong vertical and guesses elsewhere; guesses are
// deterministic from the pair text so runs are reproducible.
type crowdWorker struct {
	name   string
	expert string
}

func (w crowdWorker) answer(p pairSpec) int {
	truth := 1
	if p.same {
		truth = 0
	}
	if p.vertical == w.expert {
		return truth
	}
	// Non-experts are wrong about a third of the time (text-hash coin).
	h := fnv.New32a()
	h.Write([]byte(w.name + p.left + p.right))
	if h.Sum32()%3 == 0 {
		return 1 - truth
	}
	return truth
}

func main() {
	pairs := buildPairs()

	// Publish: each pair becomes a yes/no task. The first two pairs in each
	// vertical double as golden tasks (their verdicts are known) so worker
	// profiling sees one "same" and one "different" example per vertical.
	var tasks []docs.Task
	goldenSeen := map[string]int{}
	for i, p := range pairs {
		truth := docs.NoTruth
		if goldenSeen[p.vertical] < 2 {
			goldenSeen[p.vertical]++
			if p.same {
				truth = 0
			} else {
				truth = 1
			}
		}
		tasks = append(tasks, docs.Task{
			ID:          i,
			Text:        fmt.Sprintf("Do %q and %q refer to the same entity?", p.left, p.right),
			Choices:     []string{"same entity", "different entities"},
			GoldenTruth: truth,
		})
	}

	sys, err := docs.New(docs.Config{GoldenCount: 6, HITSize: 4, AnswersPerTask: 3})
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Publish(tasks); err != nil {
		log.Fatal(err)
	}

	crowd := []crowdWorker{
		{"fan1", "sports"}, {"fan2", "sports"},
		{"gearhead1", "cars"}, {"gearhead2", "cars"},
		{"cinephile1", "films"}, {"cinephile2", "films"},
	}
	votes := map[int][]int{} // for the MV contrast
	for round := 0; round < 30; round++ {
		w := crowd[round%len(crowd)]
		batch, err := sys.Request(w.name, 4)
		if err != nil {
			log.Fatal(err)
		}
		for _, t := range batch {
			c := w.answer(pairs[t.ID])
			if err := sys.Submit(w.name, t.ID, c); err != nil {
				log.Fatal(err)
			}
			votes[t.ID] = append(votes[t.ID], c)
		}
	}

	results, err := sys.Results()
	if err != nil {
		log.Fatal(err)
	}
	docsCorrect, mvCorrect, total := 0, 0, 0
	for _, r := range results {
		p := pairs[r.TaskID]
		truth := 1
		if p.same {
			truth = 0
		}
		total++
		if r.Choice == truth {
			docsCorrect++
		}
		if majority(votes[r.TaskID]) == truth {
			mvCorrect++
		}
		verdict := "DIFFERENT"
		if r.Choice == 0 {
			verdict = "SAME     "
		}
		fmt.Printf("%-9s %-22s ~ %-38s (conf %.2f)\n",
			verdict, trim(p.left, 22), trim(p.right, 38), r.Confidence[r.Choice])
	}
	fmt.Printf("\nDOCS resolved %d/%d pairs correctly; majority voting %d/%d\n",
		docsCorrect, total, mvCorrect, total)
}

func majority(votes []int) int {
	ones := 0
	for _, v := range votes {
		ones += v
	}
	if 2*ones > len(votes) {
		return 1
	}
	return 0
}

func trim(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return strings.TrimSpace(s[:n-1]) + "…"
}
