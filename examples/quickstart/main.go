// Quickstart: the smallest end-to-end DOCS flow.
//
// Tasks are published, three workers answer them, and the offline
// InferTruth API aggregates the answers domain-aware. The point to notice:
// on the contested basketball question (task 0) the lone "yes" from the
// worker with a strong sports track record outweighs two "no" votes from
// workers whose sports answers have been erratic — the paper's Table 1
// scenario.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"docs"
)

func main() {
	tasks := []docs.Task{
		// The contested task: sportsfan says yes, the other two say no.
		{ID: 0, Text: "Does Michael Jordan win more NBA championships than Kobe Bryant?",
			Choices: []string{"yes", "no"}, GoldenTruth: docs.NoTruth},
		// More sports tasks that reveal who actually knows basketball:
		// sportsfan is consistent while foodie and hiker contradict each
		// other (random guessers).
		{ID: 1, Text: "Did the Chicago Bulls win more championships than the Boston Celtics in the 1990s NBA?",
			Choices: []string{"yes", "no"}, GoldenTruth: docs.NoTruth},
		{ID: 2, Text: "Compare the height of LeBron James and Stephen Curry.",
			Choices: []string{"LeBron is taller", "Curry is taller"}, GoldenTruth: docs.NoTruth},
		{ID: 3, Text: "Is Tim Duncan a power forward in the NBA?",
			Choices: []string{"yes", "no"}, GoldenTruth: docs.NoTruth},
		{ID: 4, Text: "Did Magic Johnson play for the Los Angeles Lakers?",
			Choices: []string{"yes", "no"}, GoldenTruth: docs.NoTruth},
		// A non-sports task where everyone happens to agree.
		{ID: 5, Text: "Which food contains more calories, Chocolate or Honey?",
			Choices: []string{"Chocolate", "Honey"}, GoldenTruth: docs.NoTruth},
	}

	answers := []docs.Answer{
		// Task 0: the Table 1 situation — one yes vs two nos.
		{Worker: "sportsfan", TaskID: 0, Choice: 0},
		{Worker: "foodie", TaskID: 0, Choice: 1},
		{Worker: "hiker", TaskID: 0, Choice: 1},
		// Tasks 1-4: sportsfan answers consistently; the other two split.
		{Worker: "sportsfan", TaskID: 1, Choice: 0},
		{Worker: "foodie", TaskID: 1, Choice: 0},
		{Worker: "hiker", TaskID: 1, Choice: 1},
		{Worker: "sportsfan", TaskID: 2, Choice: 0},
		{Worker: "foodie", TaskID: 2, Choice: 1},
		{Worker: "hiker", TaskID: 2, Choice: 0},
		{Worker: "sportsfan", TaskID: 3, Choice: 0},
		{Worker: "foodie", TaskID: 3, Choice: 0},
		{Worker: "hiker", TaskID: 3, Choice: 1},
		{Worker: "sportsfan", TaskID: 4, Choice: 0},
		{Worker: "foodie", TaskID: 4, Choice: 1},
		{Worker: "hiker", TaskID: 4, Choice: 0},
		// Task 5: unanimous.
		{Worker: "sportsfan", TaskID: 5, Choice: 0},
		{Worker: "foodie", TaskID: 5, Choice: 0},
		{Worker: "hiker", TaskID: 5, Choice: 0},
	}

	results, err := docs.InferTruth(tasks, answers)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		t := tasks[r.TaskID]
		fmt.Printf("task %d: %q\n", r.TaskID, t.Text)
		fmt.Printf("  inferred: %q  (confidence %.2f)\n", t.Choices[r.Choice], r.Confidence[r.Choice])
	}
	if results[0].Choice == 0 {
		fmt.Println("\nNote: task 0 resolved to \"yes\" although two of three workers said \"no\" —")
		fmt.Println("the sports expert's vote carries more weight on a sports-domain task.")
	}
}
