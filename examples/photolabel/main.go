// Photo labelling: the scenario from the paper's introduction.
//
// Two workers label photos: A is an NBA fan, B is a frequent moviegoer.
// The campaign publishes photo-labelling tasks about Stephen Curry (sports)
// and Leonardo DiCaprio (films), plus golden tasks that profile each
// worker. Watch two things happen:
//
//  1. assignment: after profiling, DOCS routes sports photos to A and film
//     photos to B (the highest-benefit tasks are the ones in each worker's
//     expert domain);
//
//  2. inference: each worker's answers are trusted on their own domain.
//
//     go run ./examples/photolabel
package main

import (
	"fmt"
	"log"
	"strings"

	"docs"
)

// worker simulates a human with different accuracy on sports vs films.
type worker struct {
	name              string
	sportsOK, filmsOK bool
}

// answer picks the correct choice if the worker is good at the task's
// subject, otherwise the wrong one (a deliberately stark simulation).
func (w worker) answer(t docs.Task, correct int) int {
	isSports := strings.Contains(t.Text, "Curry") || strings.Contains(t.Text, "NBA") ||
		strings.Contains(t.Text, "Warriors")
	good := w.filmsOK
	if isSports {
		good = w.sportsOK
	}
	if good {
		return correct
	}
	return 1 - correct
}

func main() {
	// Photo-labelling tasks: "what does this photo show?" with two label
	// candidates. Ground truth (index 0 here) is known to the simulation
	// but hidden from the system; only the golden tasks expose it.
	var tasks []docs.Task
	truths := map[int]int{}
	add := func(text string, golden bool) {
		truth := docs.NoTruth
		if golden {
			truth = 0
		}
		tasks = append(tasks, docs.Task{
			ID:          len(tasks),
			Text:        text,
			Choices:     []string{"correct label", "wrong label"},
			GoldenTruth: truth,
		})
		truths[len(tasks)-1] = 0
	}
	// Golden tasks (known labels) — one per domain.
	add("Photo of Stephen Curry shooting a three pointer for the Golden State Warriors in an NBA game.", true)
	add("Photo of Leonardo DiCaprio on a film set during an Oscar campaign.", true)
	// Real tasks.
	for i := 0; i < 6; i++ {
		add(fmt.Sprintf("Photo %d: Stephen Curry celebrates an NBA championship with the Warriors.", i), false)
		add(fmt.Sprintf("Photo %d: Leonardo DiCaprio stars in a new film premiere.", i), false)
	}

	// One answer per photo: with a single label per photo, who gets routed
	// where is exactly what determines quality.
	sys, err := docs.New(docs.Config{GoldenCount: 2, HITSize: 3, AnswersPerTask: 1})
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Publish(tasks); err != nil {
		log.Fatal(err)
	}

	workers := []worker{
		{name: "A (NBA fan)", sportsOK: true, filmsOK: false},
		{name: "B (moviegoer)", sportsOK: false, filmsOK: true},
	}
	assignedSports := map[string]int{}
	assignedFilms := map[string]int{}
	for round := 0; round < 12; round++ {
		w := workers[round%2]
		batch, err := sys.Request(w.name, 3)
		if err != nil {
			log.Fatal(err)
		}
		if len(batch) == 0 {
			continue
		}
		for _, t := range batch {
			if strings.Contains(t.Text, "Curry") {
				assignedSports[w.name]++
			} else {
				assignedFilms[w.name]++
			}
			if err := sys.Submit(w.name, t.ID, w.answer(t, truths[t.ID])); err != nil {
				log.Fatal(err)
			}
		}
	}

	fmt.Println("assignment routing after profiling:")
	for _, w := range workers {
		fmt.Printf("  %-15s sports photos: %2d   film photos: %2d\n",
			w.name, assignedSports[w.name], assignedFilms[w.name])
	}

	results, err := sys.Results()
	if err != nil {
		log.Fatal(err)
	}
	correct := 0
	for _, r := range results {
		if r.Choice == truths[r.TaskID] {
			correct++
		}
	}
	fmt.Printf("inference: %d/%d photo labels correct\n", correct, len(results))
}
