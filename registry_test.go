package docs

import (
	"errors"
	"testing"
)

// TestRegistryPublicAPI drives the multi-campaign lifecycle through the
// public surface: create, publish, serve, cross-campaign profile
// carryover, archive, reboot.
func TestRegistryPublicAPI(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{WALDir: dir, GoldenCount: 2, HITSize: 3, AnswersPerTask: 3, RerunEvery: -1}

	reg, err := OpenRegistry(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := reg.Create("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Create("alpha"); !errors.Is(err, ErrCampaignExists) {
		t.Errorf("duplicate Create = %v, want ErrCampaignExists", err)
	}
	if _, err := reg.Campaign("missing"); !errors.Is(err, ErrCampaignNotFound) {
		t.Errorf("Campaign(missing) = %v, want ErrCampaignNotFound", err)
	}

	tasks := []Task{
		{ID: 0, Text: "Does Michael Jordan win more NBA championships than Kobe Bryant?",
			Choices: []string{"yes", "no"}, GoldenTruth: 0},
		{ID: 1, Text: "Which food contains more calories, Chocolate or Honey?",
			Choices: []string{"Chocolate", "Honey"}, GoldenTruth: 0},
		{ID: 2, Text: "Compare the height of Mount Everest and K2.",
			Choices: []string{"Everest", "K2"}, GoldenTruth: NoTruth},
		{ID: 3, Text: "Which city hosts more people, Tokyo or Beijing?",
			Choices: []string{"Tokyo", "Beijing"}, GoldenTruth: NoTruth},
	}
	if err := a.Publish(tasks); err != nil {
		t.Fatal(err)
	}
	goldenA := map[int]bool{}
	for _, id := range a.GoldenTaskIDs() {
		goldenA[id] = true
	}
	if len(goldenA) != 2 {
		t.Fatalf("campaign alpha selected %d golden tasks, want 2", len(goldenA))
	}

	// Profile a worker in alpha through the golden gauntlet.
	for answered := 0; answered < len(goldenA); {
		batch, err := a.Request("w", 3)
		if err != nil {
			t.Fatal(err)
		}
		for _, tk := range batch {
			if !goldenA[tk.ID] {
				t.Fatalf("unprofiled worker served regular task %d", tk.ID)
			}
			if err := a.Submit("w", tk.ID, 0); err != nil {
				t.Fatal(err)
			}
			answered++
		}
	}

	// A second campaign: the profiled worker skips its gauntlet entirely.
	b, err := reg.Create("beta")
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Publish(tasks); err != nil {
		t.Fatal(err)
	}
	goldenB := map[int]bool{}
	for _, id := range b.GoldenTaskIDs() {
		goldenB[id] = true
	}
	batch, err := b.Request("w", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) == 0 {
		t.Fatal("carried-over worker got no tasks in campaign beta")
	}
	for _, tk := range batch {
		if goldenB[tk.ID] {
			t.Fatalf("worker profiled in alpha re-served golden task %d in beta", tk.ID)
		}
		if err := b.Submit("w", tk.ID, 0); err != nil {
			t.Fatal(err)
		}
	}

	infos := reg.Campaigns()
	if len(infos) != 2 || infos[0].Name != "alpha" || infos[1].Name != "beta" {
		t.Fatalf("Campaigns = %+v", infos)
	}
	if !infos[0].Published || !infos[1].Published {
		t.Errorf("Campaigns = %+v, want both published", infos)
	}

	if err := reg.Archive("alpha"); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Campaign("alpha"); !errors.Is(err, ErrCampaignArchived) {
		t.Errorf("Campaign(archived) = %v, want ErrCampaignArchived", err)
	}
	betaAnswers := mustCampaign(t, reg, "beta").Stats().Answers
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}

	// Reboot: beta is replayed, alpha stays archived.
	reg2, err := OpenRegistry(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer reg2.Close()
	b2, err := reg2.Campaign("beta")
	if err != nil {
		t.Fatal(err)
	}
	if !b2.Published() {
		t.Error("beta not published after reboot")
	}
	if got := b2.Stats().Answers; got != betaAnswers {
		t.Errorf("beta recovered %d answers, want %d", got, betaAnswers)
	}
	if _, err := reg2.Campaign("alpha"); !errors.Is(err, ErrCampaignArchived) {
		t.Errorf("alpha after reboot = %v, want ErrCampaignArchived", err)
	}
	// And the cross-campaign profile survived in the shared store: a third
	// campaign serves the worker real tasks immediately.
	c, err := reg2.Create("gamma")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Publish(tasks); err != nil {
		t.Fatal(err)
	}
	goldenC := map[int]bool{}
	for _, id := range c.GoldenTaskIDs() {
		goldenC[id] = true
	}
	batch, err = c.Request("w", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) == 0 {
		t.Fatal("rebooted registry lost the worker's profile")
	}
	for _, tk := range batch {
		if goldenC[tk.ID] {
			t.Fatalf("rebooted registry re-served golden task %d to a stored worker", tk.ID)
		}
	}
}

func mustCampaign(t *testing.T, reg *Registry, name string) *System {
	t.Helper()
	sys, err := reg.Campaign(name)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}
