package docs

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestExamplesBuildAndRun builds and smoke-runs every program under
// examples/ so CI catches example rot — the seed shipped them untested, and
// nothing else exercises the public API the way the README points
// newcomers at it. Each example is a deterministic, sub-second program;
// the test asserts a clean exit and a content marker that proves it got
// past setup into real inference output.
func TestExamplesBuildAndRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples smoke-run skipped in -short mode")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go binary not found: %v", err)
	}
	root, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(filepath.Join(root, "examples"))
	if err != nil {
		t.Fatal(err)
	}
	// A marker per example that only appears when the run reached its
	// inference results (not just flag parsing or an early log line).
	markers := map[string]string{
		"quickstart":       "inferred:",
		"campaign":         "campaign 2:",
		"photolabel":       "assignment routing",
		"entityresolution": "SAME",
	}
	found := 0
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		found++
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			ctxTimeout := 2 * time.Minute
			deadline, ok := t.Deadline()
			if ok {
				if d := time.Until(deadline) - 5*time.Second; d < ctxTimeout {
					ctxTimeout = d
				}
			}
			cmd := exec.Command(goBin, "run", "./examples/"+name)
			cmd.Dir = root
			done := make(chan struct{})
			var out []byte
			var runErr error
			go func() {
				out, runErr = cmd.CombinedOutput()
				close(done)
			}()
			select {
			case <-done:
			case <-time.After(ctxTimeout):
				_ = cmd.Process.Kill()
				<-done
				t.Fatalf("example %s did not finish within %v", name, ctxTimeout)
			}
			if runErr != nil {
				t.Fatalf("go run ./examples/%s: %v\n%s", name, runErr, out)
			}
			marker, known := markers[name]
			if !known {
				t.Fatalf("example %s has no output marker registered in this test — add one", name)
			}
			if !strings.Contains(string(out), marker) {
				t.Fatalf("example %s output lacks marker %q:\n%s", name, marker, out)
			}
		})
	}
	if found == 0 {
		t.Fatal("no examples found")
	}
}
