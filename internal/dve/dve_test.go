package dve

import (
	"math"
	"testing"
	"testing/quick"

	"docs/internal/mathx"
)

// table2 reproduces the paper's Table 2: the three entities of the task
// "Does Michael Jordan win more NBA championships than Kobe Bryant?" over
// D = {politics, sports, films}.
func table2() []Entity {
	return []Entity{
		{ // e1: Michael Jordan
			Probs: []float64{0.7, 0.2, 0.1},
			H: [][]float64{
				{0, 1, 1}, // the player (sports, films via Space Jam)
				{0, 0, 0}, // the professor (unrelated to all three)
				{0, 0, 1}, // the actor (films)
			},
		},
		{ // e2: NBA
			Probs: []float64{0.8, 0.2},
			H: [][]float64{
				{0, 1, 0}, // National Basketball Association
				{0, 0, 0}, // National Bar Association
			},
		},
		{ // e3: Kobe Bryant
			Probs: []float64{1.0},
			H:     [][]float64{{0, 1, 0}},
		},
	}
}

func TestComputeTable2(t *testing.T) {
	r := Compute(table2(), 3)
	// Figure 2 of the paper works r_2 out to 0.78 (3/4·0.56 + 2/3·0.22 +
	// 2/2·0.16 + 1/1·0.04 + 1/2·0.02 = 0.7767) and the paper reports
	// r = [0, 0.78, 0.22].
	if r[0] != 0 {
		t.Errorf("r[politics] = %g, want 0", r[0])
	}
	if math.Abs(r[1]-0.7767) > 0.001 {
		t.Errorf("r[sports] = %g, want ≈0.7767", r[1])
	}
	if math.Abs(r[2]-0.2233) > 0.001 {
		t.Errorf("r[films] = %g, want ≈0.2233", r[2])
	}
}

func TestComputeMatchesEnumOnTable2(t *testing.T) {
	ents := table2()
	a := Compute(ents, 3)
	b := ComputeEnum(ents, 3)
	for k := range a {
		if math.Abs(a[k]-b[k]) > 1e-12 {
			t.Errorf("domain %d: Compute %g != Enum %g", k, a[k], b[k])
		}
	}
}

// TestComputeMatchesEnumProperty is the core correctness property: the
// polynomial DP must agree with brute-force enumeration on random inputs.
func TestComputeMatchesEnumProperty(t *testing.T) {
	r := mathx.NewRand(17)
	gen := func(seed uint64) []Entity {
		r.Seed(seed)
		nEnt := 1 + r.Intn(4)
		m := 2 + r.Intn(4)
		ents := make([]Entity, nEnt)
		for i := range ents {
			nC := 1 + r.Intn(4)
			e := Entity{Probs: r.Dirichlet(nC, 1.0), H: make([][]float64, nC)}
			for j := range e.H {
				h := make([]float64, m)
				for k := range h {
					if r.Float64() < 0.4 {
						h[k] = 1
					}
				}
				e.H[j] = h
			}
			ents[i] = e
		}
		return ents
	}
	f := func(seed uint64) bool {
		ents := gen(seed)
		m := len(ents[0].H[0])
		a := Compute(ents, m)
		b := ComputeEnum(ents, m)
		for k := range a {
			if math.Abs(a[k]-b[k]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestComputeMassProperty: Σ_k r_k = 1 − Pr(all-unrelated linkings) ≤ 1,
// and exactly 1 when every concept relates to at least one domain.
func TestComputeMassProperty(t *testing.T) {
	ents := table2()
	r := Compute(ents, 3)
	// The all-unrelated linking is e1→professor (0.2) · e2→bar assoc (0.2)
	// — but e3 always relates to sports, so no linking is fully unrelated
	// and the mass must be exactly 1.
	if s := mathx.Sum(r); math.Abs(s-1) > 1e-12 {
		t.Errorf("Σr = %g, want 1", s)
	}

	// Drop e3; now the professor+bar-association linking (0.04) has an
	// all-zero aggregate and its mass is excluded.
	r2 := Compute(ents[:2], 3)
	if s := mathx.Sum(r2); math.Abs(s-0.96) > 1e-12 {
		t.Errorf("Σr = %g, want 0.96", s)
	}
}

func TestComputeEmpty(t *testing.T) {
	r := Compute(nil, 4)
	if mathx.Sum(r) != 0 {
		t.Errorf("Compute(nil) = %v, want zeros", r)
	}
}

func TestNormalized(t *testing.T) {
	r := Normalized(table2(), 3)
	if err := mathx.CheckDistribution(r, 1e-9); err != nil {
		t.Errorf("Normalized not a distribution: %v", err)
	}
	// All-unrelated input falls back to uniform.
	unrelated := []Entity{{Probs: []float64{1}, H: [][]float64{{0, 0, 0}}}}
	u := Normalized(unrelated, 3)
	for k := range u {
		if math.Abs(u[k]-1.0/3) > 1e-12 {
			t.Errorf("Normalized(all-unrelated)[%d] = %g, want 1/3", k, u[k])
		}
	}
	if u2 := Normalized(nil, 4); math.Abs(mathx.Sum(u2)-1) > 1e-12 {
		t.Errorf("Normalized(nil) mass = %g", mathx.Sum(u2))
	}
}

func TestValidate(t *testing.T) {
	if err := Validate(table2(), 3); err != nil {
		t.Errorf("valid input rejected: %v", err)
	}
	bad := []Entity{{Probs: []float64{0.6, 0.3}, H: [][]float64{{0, 1, 0}, {1, 0, 0}}}}
	if err := Validate(bad, 3); err == nil {
		t.Error("non-normalized probs accepted")
	}
	bad2 := []Entity{{Probs: []float64{1}, H: [][]float64{{0, 0.5, 0}}}}
	if err := Validate(bad2, 3); err == nil {
		t.Error("fractional indicator accepted")
	}
	bad3 := []Entity{{Probs: []float64{1}, H: [][]float64{{0, 1}}}}
	if err := Validate(bad3, 3); err == nil {
		t.Error("wrong-size indicator accepted")
	}
	bad4 := []Entity{{}}
	if err := Validate(bad4, 3); err == nil {
		t.Error("empty entity accepted")
	}
	bad5 := []Entity{{Probs: []float64{1}, H: nil}}
	if err := Validate(bad5, 3); err == nil {
		t.Error("probs/H length mismatch accepted")
	}
}

func TestTruncateTopC(t *testing.T) {
	ents := table2()
	tr := TruncateTopC(ents, 2)
	if len(tr[0].Probs) != 2 {
		t.Fatalf("entity 0 kept %d candidates, want 2", len(tr[0].Probs))
	}
	// Highest-probability candidates survive and are renormalized.
	if math.Abs(tr[0].Probs[0]-0.7/0.9) > 1e-12 {
		t.Errorf("renormalized prob = %g, want %g", tr[0].Probs[0], 0.7/0.9)
	}
	if err := Validate(tr, 3); err != nil {
		t.Errorf("truncated input invalid: %v", err)
	}
	// Truncation must not mutate the original.
	if len(ents[0].Probs) != 3 || math.Abs(ents[0].Probs[0]-0.7) > 1e-12 {
		t.Error("TruncateTopC mutated its input")
	}
}

// TestComputePolynomialScaling sanity-checks that Compute handles an input
// size where enumeration would be hopeless (20 entities × 20 concepts =
// 20^20 linkings).
func TestComputePolynomialScaling(t *testing.T) {
	r := mathx.NewRand(3)
	const m, nEnt, nC = 26, 20, 20
	ents := make([]Entity, nEnt)
	for i := range ents {
		e := Entity{Probs: r.Dirichlet(nC, 1.0), H: make([][]float64, nC)}
		for j := range e.H {
			h := make([]float64, m)
			for k := range h {
				if r.Float64() < 0.15 {
					h[k] = 1
				}
			}
			e.H[j] = h
		}
		ents[i] = e
	}
	res := Compute(ents, m)
	if s := mathx.Sum(res); s <= 0 || s > 1+1e-9 {
		t.Errorf("mass = %g out of (0,1]", s)
	}
}
