// Package dve implements Domain Vector Estimation (Section 3 of the paper):
// turning a task's linked entities — each a distribution over candidate
// concepts with per-concept domain indicator vectors — into the task's
// domain vector r^t (Equation 1).
//
// Two evaluators are provided. Compute is the paper's Algorithm 1: an exact
// dynamic program over (numerator, denominator) pairs that reduces the cost
// from exponential O(c^{|E_t|}·|E_t|·m) to polynomial O(c·m²·|E_t|³).
// ComputeEnum is the direct enumeration over all concept linkings, kept as
// the correctness oracle and as the baseline for the Table 3 experiment.
package dve

import (
	"fmt"

	"docs/internal/entitylink"
	"docs/internal/mathx"
)

// Entity is the DVE view of one linked entity e_i: the distribution p_i over
// its candidate concepts and the indicator vector h_{i,j} of each candidate.
type Entity struct {
	// Probs[j] is p_{i,j}, the probability the j-th candidate is the
	// correct link. Must sum to 1.
	Probs []float64
	// H[j] is the indicator vector (size m) of the j-th candidate.
	H [][]float64
}

// FromLinked converts linker output into DVE input for a domain set of
// size m.
func FromLinked(ents []entitylink.Entity, m int) []Entity {
	out := make([]Entity, 0, len(ents))
	for _, e := range ents {
		de := Entity{
			Probs: make([]float64, len(e.Candidates)),
			H:     make([][]float64, len(e.Candidates)),
		}
		for j, c := range e.Candidates {
			de.Probs[j] = c.Prob
			de.H[j] = c.Concept.Indicator(m)
		}
		out = append(out, de)
	}
	return out
}

// Validate checks the structural invariants of the DVE input.
func Validate(entities []Entity, m int) error {
	for i, e := range entities {
		if len(e.Probs) == 0 {
			return fmt.Errorf("dve: entity %d has no candidates", i)
		}
		if len(e.Probs) != len(e.H) {
			return fmt.Errorf("dve: entity %d has %d probs but %d indicator vectors", i, len(e.Probs), len(e.H))
		}
		if err := mathx.CheckDistribution(e.Probs, 1e-6); err != nil {
			return fmt.Errorf("dve: entity %d: %w", i, err)
		}
		for j, h := range e.H {
			if len(h) != m {
				return fmt.Errorf("dve: entity %d concept %d indicator has size %d, want %d", i, j, len(h), m)
			}
			for k, x := range h {
				if x != 0 && x != 1 {
					return fmt.Errorf("dve: entity %d concept %d indicator[%d] = %g, want 0 or 1", i, j, k, x)
				}
			}
		}
	}
	return nil
}

// Compute evaluates Equation 1 exactly via Algorithm 1.
//
// For each domain k it runs a dynamic program whose state is the pair
// (nm, dm) = (Σ_i h_{i,π_i,k}, Σ_i Σ_{k'} h_{i,π_i,k'}) reachable after
// linking the first i entities, with the aggregated probability of all
// linkings reaching that state. The k-th element of r^t is then
// Σ over states of (nm/dm)·Pr(state), skipping dm = 0 states exactly as the
// paper does (linkings whose concepts relate to no domain contribute no
// normalized vector). Consequently Σ_k r^t_k may be below 1 by the total
// probability of all-unrelated linkings; see Normalized for the practical
// wrapper.
func Compute(entities []Entity, m int) []float64 {
	r := make([]float64, m)
	if len(entities) == 0 {
		return r
	}
	// Pre-compute x_{i,j} = Σ_k h_{i,j,k} (line 1 of Algorithm 1).
	x := make([][]int, len(entities))
	maxX := 0
	for i, e := range entities {
		x[i] = make([]int, len(e.H))
		for j, h := range e.H {
			s := 0
			for _, v := range h {
				if v != 0 {
					s++
				}
			}
			x[i][j] = s
			if s > maxX {
				maxX = s
			}
		}
	}

	// The DP state is the pair (nm, dm) of Algorithm 1's hash-map keys.
	// Both are small bounded integers — nm ≤ |E_t|, dm ≤ max_j x_{i,j}·|E_t|
	// — so a dense table replaces the paper's hash map. Density also makes
	// the float accumulation order fixed; Go map iteration order is random,
	// and summing probabilities in varying order would perturb r^t in the
	// last ulp from run to run, breaking the system's reproducibility.
	nmMax := len(entities) + 1
	dmMax := maxX*len(entities) + 1
	cur := make([]float64, nmMax*dmMax)
	next := make([]float64, nmMax*dmMax)
	for k := 0; k < m; k++ {
		for i := range cur {
			cur[i] = 0
		}
		cur[0] = 1 // state (nm=0, dm=0)
		reachNm, reachDm := 0, 0
		for i, e := range entities {
			for j := range next[:(reachNm+2)*dmMax] {
				next[j] = 0
			}
			for nm := 0; nm <= reachNm; nm++ {
				base := nm * dmMax
				for dm := 0; dm <= reachDm; dm++ {
					val := cur[base+dm]
					if val == 0 {
						continue
					}
					for j, pj := range e.Probs {
						hk := 0
						if e.H[j][k] != 0 {
							hk = 1
						}
						next[(nm+hk)*dmMax+dm+x[i][j]] += val * pj
					}
				}
			}
			cur, next = next, cur
			reachNm++
			reachDm += maxXOf(x[i])
			if reachNm >= nmMax {
				reachNm = nmMax - 1
			}
			if reachDm >= dmMax {
				reachDm = dmMax - 1
			}
		}
		var rk float64
		for nm := 0; nm <= reachNm; nm++ {
			base := nm * dmMax
			for dm := 1; dm <= reachDm; dm++ {
				if val := cur[base+dm]; val != 0 {
					rk += float64(nm) / float64(dm) * val
				}
			}
		}
		r[k] = rk
	}
	return r
}

func maxXOf(xs []int) int {
	max := 0
	for _, v := range xs {
		if v > max {
			max = v
		}
	}
	return max
}

// ComputeEnum evaluates Equation 1 by enumerating every linking π ∈ Ω.
// Cost is O(c^{|E_t|}·|E_t|·m); it exists as the correctness oracle for
// Compute and as the enumeration baseline of Table 3.
func ComputeEnum(entities []Entity, m int) []float64 {
	r := make([]float64, m)
	if len(entities) == 0 {
		return r
	}
	agg := make([]float64, m)
	var rec func(i int, prob float64)
	rec = func(i int, prob float64) {
		if prob == 0 {
			return
		}
		if i == len(entities) {
			var denom float64
			for _, v := range agg {
				denom += v
			}
			if denom == 0 {
				return
			}
			for k := range r {
				r[k] += agg[k] / denom * prob
			}
			return
		}
		e := entities[i]
		for j, pj := range e.Probs {
			for k, v := range e.H[j] {
				agg[k] += v
			}
			rec(i+1, prob*pj)
			for k, v := range e.H[j] {
				agg[k] -= v
			}
		}
	}
	rec(0, 1)
	return r
}

// Normalized returns Compute's result normalized into a proper domain
// vector. If the raw vector has zero mass (every linking is unrelated to
// every domain, or there are no entities), the uniform distribution is
// returned — the system-level convention for "domain unknown".
func Normalized(entities []Entity, m int) []float64 {
	r := Compute(entities, m)
	if mathx.Sum(r) == 0 {
		return mathx.Uniform(m)
	}
	return mathx.Normalize(r)
}

// TruncateTopC keeps only the c most probable candidates of each entity,
// renormalizing each distribution; this is the "Top-10 / Top-3" heuristic
// of Table 3.
func TruncateTopC(entities []Entity, c int) []Entity {
	out := make([]Entity, len(entities))
	for i, e := range entities {
		order := mathx.TopK(e.Probs, c)
		te := Entity{
			Probs: make([]float64, 0, len(order)),
			H:     make([][]float64, 0, len(order)),
		}
		for _, j := range order {
			te.Probs = append(te.Probs, e.Probs[j])
			te.H = append(te.H, e.H[j])
		}
		mathx.Normalize(te.Probs)
		out[i] = te
	}
	return out
}
