package baselines

import (
	"testing"

	"docs/internal/mathx"
	"docs/internal/model"
)

// binaryCampaign generates tasks in two domains with domain-structured
// workers: half expert on domain 0, half on domain 1.
func binaryCampaign(t *testing.T, nTasks, nWorkers, perTask int, seed uint64) ([]*model.Task, *model.AnswerSet, map[string]model.QualityVector) {
	t.Helper()
	r := mathx.NewRand(seed)
	tasks := make([]*model.Task, nTasks)
	for i := range tasks {
		dom := model.DomainVector{1, 0}
		td := 0
		if i%2 == 1 {
			dom = model.DomainVector{0, 1}
			td = 1
		}
		tasks[i] = &model.Task{
			ID: i, Text: taskText(td, i),
			Choices: []string{"a", "b"},
			Domain:  dom, Truth: r.Intn(2), TrueDomain: td,
		}
	}
	trueQ := make(map[string]model.QualityVector)
	names := make([]string, nWorkers)
	for w := 0; w < nWorkers; w++ {
		name := workerName(w)
		names[w] = name
		if w%2 == 0 {
			trueQ[name] = model.QualityVector{0.93, 0.55}
		} else {
			trueQ[name] = model.QualityVector{0.55, 0.93}
		}
	}
	as := model.NewAnswerSet()
	for _, tk := range tasks {
		perm := r.Perm(nWorkers)
		for _, wi := range perm[:perTask] {
			name := names[wi]
			choice := tk.Truth
			if r.Float64() >= trueQ[name].Expected(tk.Domain) {
				choice = 1 - tk.Truth
			}
			if err := as.Add(model.Answer{Worker: name, Task: tk.ID, Choice: choice}); err != nil {
				t.Fatal(err)
			}
		}
	}
	return tasks, as, trueQ
}

func workerName(w int) string {
	return "bw" + string(rune('a'+w%26)) + string(rune('0'+w/26))
}

// taskText gives domain-flavored text so IC/FC's topic models have signal.
func taskText(dom, i int) string {
	if dom == 0 {
		return "basketball player championship game score team"
	}
	return "recipe butter sugar flour bake kitchen"
}

func accuracy(tasks []*model.Task, inferred []int) float64 {
	correct := 0
	for i, tk := range tasks {
		if inferred[i] == tk.Truth {
			correct++
		}
	}
	return float64(correct) / float64(len(tasks))
}

func TestMV(t *testing.T) {
	tasks := []*model.Task{
		{ID: 0, Choices: []string{"a", "b"}, Truth: 0, TrueDomain: model.NoTruth},
		{ID: 1, Choices: []string{"a", "b", "c"}, Truth: 2, TrueDomain: model.NoTruth},
	}
	as := model.NewAnswerSet()
	for _, a := range []model.Answer{
		{Worker: "w1", Task: 0, Choice: 0},
		{Worker: "w2", Task: 0, Choice: 0},
		{Worker: "w3", Task: 0, Choice: 1},
		{Worker: "w1", Task: 1, Choice: 2},
		{Worker: "w2", Task: 1, Choice: 1},
		{Worker: "w3", Task: 1, Choice: 2},
	} {
		if err := as.Add(a); err != nil {
			t.Fatal(err)
		}
	}
	got, err := MV{}.InferTruth(tasks, as)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 || got[1] != 2 {
		t.Errorf("MV = %v, want [0 2]", got)
	}
}

func TestMVErrors(t *testing.T) {
	tasks := []*model.Task{{ID: 0, Choices: []string{"a", "b"}, Truth: 0, TrueDomain: model.NoTruth}}
	as := model.NewAnswerSet()
	if err := as.Add(model.Answer{Worker: "w", Task: 5, Choice: 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := (MV{}).InferTruth(tasks, as); err == nil {
		t.Error("unknown task accepted")
	}
	as2 := model.NewAnswerSet()
	if err := as2.Add(model.Answer{Worker: "w", Task: 0, Choice: 9}); err != nil {
		t.Fatal(err)
	}
	if _, err := (MV{}).InferTruth(tasks, as2); err == nil {
		t.Error("out-of-range choice accepted")
	}
}

// TestBaselineOrdering reproduces the qualitative ordering of Figure 5(a):
// methods that model worker quality beat MV, and the domain-aware methods
// (FC with true topics) beat the scalar ones on domain-structured crowds.
func TestBaselineOrdering(t *testing.T) {
	tasks, as, _ := binaryCampaign(t, 300, 20, 5, 99)

	accs := map[string]float64{}
	mvT, err := MV{}.InferTruth(tasks, as)
	if err != nil {
		t.Fatal(err)
	}
	accs["MV"] = accuracy(tasks, mvT)

	zcT, err := (&ZC{}).InferTruth(tasks, as)
	if err != nil {
		t.Fatal(err)
	}
	accs["ZC"] = accuracy(tasks, zcT)

	dsT, err := (&DS{}).InferTruth(tasks, as)
	if err != nil {
		t.Fatal(err)
	}
	accs["DS"] = accuracy(tasks, dsT)

	// FC with ground-truth topics (the paper's favored configuration).
	topics := make([]int, len(tasks))
	for i, tk := range tasks {
		topics[i] = tk.TrueDomain
	}
	fcT, err := (&FC{GivenTopics: topics}).InferTruth(tasks, as)
	if err != nil {
		t.Fatal(err)
	}
	accs["FC"] = accuracy(tasks, fcT)

	// Scalar worker models (ZC, DS) are misspecified on a domain-structured
	// crowd — the paper's core observation — so they are only required to
	// stay in MV's neighbourhood, while the domain-aware method must beat
	// MV outright.
	if accs["ZC"] < accs["MV"]-0.06 {
		t.Errorf("ZC %.3f far below MV %.3f", accs["ZC"], accs["MV"])
	}
	if accs["DS"] < accs["MV"]-0.06 {
		t.Errorf("DS %.3f far below MV %.3f", accs["DS"], accs["MV"])
	}
	if accs["FC"] <= accs["MV"] {
		t.Errorf("FC %.3f should beat MV %.3f (domain-aware vs unweighted)", accs["FC"], accs["MV"])
	}
	if accs["FC"] < 0.9 {
		t.Errorf("FC accuracy %.3f suspiciously low", accs["FC"])
	}
	t.Logf("accuracies: %v", accs)
}

func TestICWithGivenDomains(t *testing.T) {
	tasks, as, _ := binaryCampaign(t, 200, 16, 5, 7)
	domains := make([][]float64, len(tasks))
	for i, tk := range tasks {
		v := make([]float64, 2)
		v[tk.TrueDomain] = 1
		domains[i] = v
	}
	ic := &IC{GivenDomains: domains}
	got, err := ic.InferTruth(tasks, as)
	if err != nil {
		t.Fatal(err)
	}
	mvT, _ := MV{}.InferTruth(tasks, as)
	if accuracy(tasks, got) < accuracy(tasks, mvT)-0.05 {
		t.Errorf("IC %.3f should be near or above MV %.3f", accuracy(tasks, got), accuracy(tasks, mvT))
	}
}

func TestICTaskDomainsViaLDA(t *testing.T) {
	tasks, _, _ := binaryCampaign(t, 60, 8, 4, 21)
	ic := &IC{Topics: 2, LDAIters: 100, Seed: 5}
	theta := ic.TaskDomains(tasks)
	if len(theta) != len(tasks) {
		t.Fatalf("got %d domain vectors", len(theta))
	}
	// With cleanly separated vocabularies, latent topics should align with
	// true domains up to permutation.
	agree, disagree := 0, 0
	for i, tk := range tasks {
		top := mathx.ArgMax(theta[i])
		if top == tk.TrueDomain {
			agree++
		} else {
			disagree++
		}
	}
	if agree < disagree {
		agree, disagree = disagree, agree
	}
	if frac := float64(agree) / float64(len(tasks)); frac < 0.9 {
		t.Errorf("LDA domain alignment %.2f, want >= 0.9", frac)
	}
}

func TestFCTaskTopicsViaTwitterLDA(t *testing.T) {
	tasks, _, _ := binaryCampaign(t, 60, 8, 4, 23)
	fc := &FC{Topics: 2, LDAIters: 100, Seed: 5}
	topics := fc.TaskTopics(tasks)
	agree, disagree := 0, 0
	for i, tk := range tasks {
		if topics[i] == tk.TrueDomain {
			agree++
		} else {
			disagree++
		}
	}
	if agree < disagree {
		agree, disagree = disagree, agree
	}
	if frac := float64(agree) / float64(len(tasks)); frac < 0.9 {
		t.Errorf("TwitterLDA topic alignment %.2f, want >= 0.9", frac)
	}
}

func TestZCInitReliability(t *testing.T) {
	tasks, as, trueQ := binaryCampaign(t, 100, 10, 4, 31)
	init := make(map[string]float64)
	for w, q := range trueQ {
		init[w] = (q[0] + q[1]) / 2
	}
	zc := &ZC{InitReliability: init}
	got, err := zc.InferTruth(tasks, as)
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(tasks, got); acc < 0.7 {
		t.Errorf("ZC with init accuracy %.3f", acc)
	}
}

func TestDSHandlesMixedChoiceCounts(t *testing.T) {
	tasks := []*model.Task{
		{ID: 0, Choices: []string{"a", "b"}, Truth: 0, TrueDomain: model.NoTruth},
		{ID: 1, Choices: []string{"a", "b", "c", "d"}, Truth: 3, TrueDomain: model.NoTruth},
	}
	as := model.NewAnswerSet()
	for w := 0; w < 5; w++ {
		name := workerName(w)
		if err := as.Add(model.Answer{Worker: name, Task: 0, Choice: 0}); err != nil {
			t.Fatal(err)
		}
		if err := as.Add(model.Answer{Worker: name, Task: 1, Choice: 3}); err != nil {
			t.Fatal(err)
		}
	}
	got, err := (&DS{}).InferTruth(tasks, as)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 || got[1] != 3 {
		t.Errorf("DS = %v, want [0 3]", got)
	}
}

func TestInferrersHandleEmptyAnswers(t *testing.T) {
	tasks := []*model.Task{{ID: 0, Choices: []string{"a", "b"}, Truth: 0, TrueDomain: model.NoTruth,
		Domain: model.DomainVector{1, 0}}}
	empty := model.NewAnswerSet()
	for _, inf := range []TruthInferrer{MV{}, &ZC{}, &DS{}, &FC{GivenTopics: []int{0}}} {
		got, err := inf.InferTruth(tasks, empty)
		if err != nil {
			t.Errorf("%s: %v", inf.Name(), err)
			continue
		}
		if len(got) != 1 {
			t.Errorf("%s returned %d truths", inf.Name(), len(got))
		}
	}
	ic := &IC{GivenDomains: [][]float64{{1, 0}}}
	if _, err := ic.InferTruth(tasks, empty); err != nil {
		t.Errorf("IC: %v", err)
	}
}
