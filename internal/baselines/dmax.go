package baselines

import (
	"docs/internal/model"
	"docs/internal/truth"
)

// DMaxAssigner is the paper's D-Max baseline: it uses DOCS's own truth
// inference to maintain worker qualities, but assigns the k tasks whose
// domains best *match* the worker's expertise (score = Σ_k q_k·r_k),
// ignoring how confident the tasks' truths already are. It exists to
// isolate the value of the benefit function: matching alone keeps sending
// experts to already-settled tasks (Section 6.4, observation 5).
type DMaxAssigner struct {
	tasks   []*model.Task
	pos     map[int]int
	inc     *truth.Incremental
	m       int
	stats   map[string]*truth.Stats
	answers *model.AnswerSet
}

// NewDMaxAssigner returns the D-Max baseline over m domains. initStats
// optionally seeds worker statistics from golden tasks.
func NewDMaxAssigner(m int, initStats map[string]*truth.Stats) *DMaxAssigner {
	return &DMaxAssigner{m: m, stats: initStats}
}

// Name implements Assigner.
func (*DMaxAssigner) Name() string { return "D-Max" }

// Init implements Assigner.
func (d *DMaxAssigner) Init(tasks []*model.Task) error {
	d.tasks = tasks
	d.pos = make(map[int]int, len(tasks))
	d.inc = truth.NewIncremental(d.m)
	d.answers = model.NewAnswerSet()
	for i, t := range tasks {
		d.pos[t.ID] = i
		if err := d.inc.AddTask(t); err != nil {
			return err
		}
	}
	for w, st := range d.stats {
		if err := d.inc.SetWorker(w, st); err != nil {
			return err
		}
	}
	return nil
}

// Assign implements Assigner: rank candidates by domain match q·r.
func (d *DMaxAssigner) Assign(workerID string, candidates []int, k int) []int {
	if len(candidates) == 0 || k <= 0 {
		return nil
	}
	var q model.QualityVector
	if st := d.inc.Worker(workerID); st != nil {
		q = st.Q
	} else {
		q = make(model.QualityVector, d.m)
		for i := range q {
			q[i] = truth.DefaultQuality
		}
	}
	scores := make([]float64, len(candidates))
	for ci, id := range candidates {
		scores[ci] = q.Expected(d.tasks[d.pos[id]].Domain)
	}
	return pick(candidates, scores, k)
}

// Observe implements Assigner: incremental DOCS truth inference plus an
// answer log for the final batch run.
func (d *DMaxAssigner) Observe(a model.Answer) error {
	if err := d.answers.Add(a); err != nil {
		return err
	}
	return d.inc.Submit(a)
}

// Finalize implements Assigner: DOCS's iterative truth inference over all
// collected answers, initialized from the maintained worker qualities.
func (d *DMaxAssigner) Finalize() ([]int, error) {
	init := make(map[string]model.QualityVector, len(d.stats))
	for w, st := range d.stats {
		init[w] = st.Q
	}
	res, err := truth.Infer(d.tasks, d.answers, d.m, truth.Options{InitQuality: init})
	if err != nil {
		return nil, err
	}
	return res.Truth, nil
}
