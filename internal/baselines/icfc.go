package baselines

import (
	"math"

	"docs/internal/mathx"
	"docs/internal/model"
	"docs/internal/topicmodel"
)

// logf is math.Log with a floor so log(0) never propagates.
func logf(x float64) float64 {
	if x < 1e-300 {
		x = 1e-300
	}
	return math.Log(x)
}

func softmaxLog(logw []float64) []float64 {
	max := logw[0]
	for _, x := range logw[1:] {
		if x > max {
			max = x
		}
	}
	w := make([]float64, len(logw))
	for i, x := range logw {
		w[i] = math.Exp(x - max)
	}
	return mathx.Normalize(w)
}

// IC is the iCrowd baseline (Fan et al., SIGMOD 2015): tasks get latent
// domain vectors from LDA over their text, worker accuracy on a task is
// estimated from the worker's record on *similar* tasks (cosine similarity
// of topic vectors), and truths come from weighted majority voting.
type IC struct {
	// Topics is m', the number of latent domains (default 4, as the paper
	// sets for the 4-domain datasets).
	Topics int
	// LDAIters is the Gibbs sweep count (default 200).
	LDAIters int
	// Rounds alternates truth / quality estimation (default 5).
	Rounds int
	// Seed drives LDA.
	Seed uint64
	// GivenDomains optionally bypasses LDA with externally supplied task
	// domain vectors (the paper hands IC the ground-truth domains in
	// Figure 5 to favor it). Indexed like the task slice.
	GivenDomains [][]float64
}

// Name implements TruthInferrer.
func (*IC) Name() string { return "IC" }

// TaskDomains returns the latent domain vector of every task (running LDA
// unless GivenDomains is set); exposed for the Figure 3 domain-detection
// comparison.
func (ic *IC) TaskDomains(tasks []*model.Task) [][]float64 {
	if ic.GivenDomains != nil {
		return ic.GivenDomains
	}
	k := ic.Topics
	if k <= 0 {
		k = 4
	}
	iters := ic.LDAIters
	if iters <= 0 {
		iters = 200
	}
	texts := make([]string, len(tasks))
	for i, t := range tasks {
		texts[i] = t.Text
	}
	c := topicmodel.NewCorpus(texts)
	l := topicmodel.NewLDA(k, 0, 0, ic.Seed^0x1c)
	l.Fit(c, iters)
	out := make([][]float64, len(tasks))
	for i := range tasks {
		out[i] = l.DocTopics(i)
	}
	return out
}

// InferTruth implements TruthInferrer.
func (ic *IC) InferTruth(tasks []*model.Task, answers *model.AnswerSet) ([]int, error) {
	pos, err := indexTasks(tasks, answers)
	if err != nil {
		return nil, err
	}
	rounds := ic.Rounds
	if rounds <= 0 {
		rounds = 5
	}
	theta := ic.TaskDomains(tasks)

	// Current truth estimate, initialized by majority voting.
	truth, err := MV{}.InferTruth(tasks, answers)
	if err != nil {
		return nil, err
	}

	sim := func(i, j int) float64 { return cosine(theta[i], theta[j]) }

	for round := 0; round < rounds; round++ {
		next := make([]int, len(tasks))
		for i, t := range tasks {
			v := answers.ForTask(t.ID)
			if len(v) == 0 {
				next[i] = truth[i]
				continue
			}
			weights := make([]float64, t.NumChoices())
			for _, a := range v {
				// Worker accuracy on this task: similarity-weighted record
				// on the worker's other answered tasks.
				var num, den float64
				for _, b := range answers.ForWorker(a.Worker) {
					j := pos[b.Task]
					if j == i {
						continue
					}
					s := sim(i, j)
					den += s
					if b.Choice == truth[j] {
						num += s
					}
				}
				q := 0.7
				if den > 1e-9 {
					q = num / den
				}
				weights[a.Choice] += q
			}
			next[i] = mathx.ArgMax(weights)
		}
		truth = next
	}
	return truth, nil
}

func cosine(a, b []float64) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// FC is the FaitCrowd baseline (Ma et al., KDD 2015): TwitterLDA assigns a
// single latent topic to each task, each worker carries a per-topic
// reliability vector, and truths and reliabilities are estimated jointly.
type FC struct {
	// Topics is m'', the latent topic count (default 4).
	Topics int
	// LDAIters is the TwitterLDA sweep count (default 200).
	LDAIters int
	// MaxIter bounds the reliability EM (default 20).
	MaxIter int
	// Seed drives TwitterLDA.
	Seed uint64
	// InitReliability seeds each worker's per-topic reliabilities uniformly
	// with a scalar; missing workers start at 0.7.
	InitReliability map[string]float64
	// GivenTopics optionally bypasses TwitterLDA with externally supplied
	// hard topic labels per task (Figure 5's favored configuration).
	GivenTopics []int
}

// Name implements TruthInferrer.
func (*FC) Name() string { return "FC" }

// TaskTopics returns the hard latent topic per task (running TwitterLDA
// unless GivenTopics is set); exposed for the Figure 3 comparison.
func (fc *FC) TaskTopics(tasks []*model.Task) []int {
	if fc.GivenTopics != nil {
		return fc.GivenTopics
	}
	k := fc.Topics
	if k <= 0 {
		k = 4
	}
	iters := fc.LDAIters
	if iters <= 0 {
		iters = 200
	}
	texts := make([]string, len(tasks))
	for i, t := range tasks {
		texts[i] = t.Text
	}
	c := topicmodel.NewCorpus(texts)
	tl := topicmodel.NewTwitterLDA(k, fc.Seed^0xfc)
	tl.Fit(c, iters)
	out := make([]int, len(tasks))
	for i := range tasks {
		out[i] = tl.DocTopic(i)
	}
	return out
}

// InferTruth implements TruthInferrer.
func (fc *FC) InferTruth(tasks []*model.Task, answers *model.AnswerSet) ([]int, error) {
	pos, err := indexTasks(tasks, answers)
	if err != nil {
		return nil, err
	}
	maxIter := fc.MaxIter
	if maxIter <= 0 {
		maxIter = 20
	}
	topics := fc.TaskTopics(tasks)
	nTopics := 0
	for _, z := range topics {
		if z+1 > nTopics {
			nTopics = z + 1
		}
	}
	if nTopics == 0 {
		nTopics = 1
	}

	// Per-worker per-topic reliability.
	rel := make(map[string][]float64)
	for _, w := range answers.Workers() {
		init := 0.7
		if q, ok := fc.InitReliability[w]; ok {
			init = q
		}
		rs := make([]float64, nTopics)
		for k := range rs {
			rs[k] = init
		}
		rel[w] = rs
	}
	s := make([][]float64, len(tasks))
	for i, t := range tasks {
		s[i] = mathx.Uniform(t.NumChoices())
	}
	for iter := 0; iter < maxIter; iter++ {
		// E-step: truth posterior using each worker's reliability on the
		// task's topic.
		for i, t := range tasks {
			v := answers.ForTask(t.ID)
			if len(v) == 0 {
				continue
			}
			ell := t.NumChoices()
			z := topics[i]
			logw := make([]float64, ell)
			for _, a := range v {
				q := clampProb(rel[a.Worker][z])
				for j := 0; j < ell; j++ {
					if a.Choice == j {
						logw[j] += logf(q)
					} else {
						logw[j] += logf((1 - q) / float64(ell-1))
					}
				}
			}
			s[i] = softmaxLog(logw)
		}
		// M-step: per-topic reliabilities.
		for w, rs := range rel {
			num := make([]float64, nTopics)
			den := make([]float64, nTopics)
			for _, a := range answers.ForWorker(w) {
				i := pos[a.Task]
				z := topics[i]
				num[z] += s[i][a.Choice]
				den[z]++
			}
			for k := 0; k < nTopics; k++ {
				if den[k] > 0 {
					rs[k] = num[k] / den[k]
				}
			}
		}
	}
	out := make([]int, len(tasks))
	for i := range tasks {
		out[i] = mathx.ArgMax(s[i])
	}
	return out, nil
}
