package baselines

import (
	"testing"

	"docs/internal/crowd"
	"docs/internal/mathx"
	"docs/internal/model"
	"docs/internal/truth"
)

// Spammers (uniform-random answers) must hurt naive majority vote
// measurably, and the reliability-aware DS baseline — seeded from golden
// profiling — must claw a margin back by downweighting them. This pins the
// qualitative robustness ordering the accuracy benchmark tracks.
func TestAdversarialSpamRobustnessMVvsDS(t *testing.T) {
	const (
		m      = 6
		nTasks = 150
		seed   = 99
	)
	r := mathx.NewRand(seed)
	mk := func(id int) *model.Task {
		dom := make(model.DomainVector, m)
		dom[r.Intn(m)] = 1
		return &model.Task{
			ID: id, Choices: []string{"a", "b", "c", "d"},
			Domain: dom, Truth: r.Intn(4), TrueDomain: model.NoTruth,
		}
	}
	tasks := make([]*model.Task, nTasks)
	for i := range tasks {
		tasks[i] = mk(i)
	}
	golden := make([]*model.Task, 24)
	for i := range golden {
		golden[i] = mk(nTasks + i)
	}

	run := func(spam float64) (mvAcc, dsAcc float64) {
		pop, err := crowd.NewPopulation(crowd.Config{
			NumWorkers: 40, M: m, Seed: seed,
			Adversarial: crowd.Adversarial{SpammerFraction: spam},
		})
		if err != nil {
			t.Fatal(err)
		}
		init := make(map[string]float64, len(pop.Workers))
		for w, as := range crowd.AnswerGolden(golden, pop) {
			st := truth.EstimateFromGolden(golden, as, m)
			var num, den float64
			for k, q := range st.Q {
				num += q * st.U[k]
				den += st.U[k]
			}
			init[w] = num / den
		}
		answers, err := crowd.Collect(tasks, pop, 5)
		if err != nil {
			t.Fatal(err)
		}
		for _, inf := range []TruthInferrer{MV{}, &DS{InitReliability: init}} {
			got, err := inf.InferTruth(tasks, answers)
			if err != nil {
				t.Fatalf("%s: %v", inf.Name(), err)
			}
			acc := accuracy(tasks, got)
			if inf.Name() == "MV" {
				mvAcc = acc
			} else {
				dsAcc = acc
			}
		}
		return mvAcc, dsAcc
	}

	mvClean, _ := run(0)
	mvSpam, dsSpam := run(0.4)
	t.Logf("MV clean %.3f, MV 40%% spam %.3f, DS 40%% spam %.3f", mvClean, mvSpam, dsSpam)
	if mvClean-mvSpam < 0.05 {
		t.Errorf("40%% spam barely hurt MV: clean %.3f vs spam %.3f", mvClean, mvSpam)
	}
	if dsSpam < mvSpam+0.02 {
		t.Errorf("reliability-aware DS (%.3f) should beat MV (%.3f) under 40%% spam", dsSpam, mvSpam)
	}
}
