package baselines

import (
	"fmt"

	"docs/internal/mathx"
	"docs/internal/model"
)

// Assigner is the common interface of the online task-assignment methods
// compared in Figure 8. An Assigner is stateful over one campaign: the
// harness calls Init once, then alternates Assign (pick k tasks for an
// arriving worker from the eligible candidates) and Observe (feed back the
// worker's answers), and finally Finalize to obtain the method's inferred
// truths.
//
// Eligibility (tasks not yet at the redundancy cap and not yet answered by
// this worker) is enforced by the harness so every method sees the same
// rules; the Assigner only ranks.
type Assigner interface {
	// Name returns the method's display name.
	Name() string
	// Init installs the campaign's tasks (with domain vectors where the
	// method uses them).
	Init(tasks []*model.Task) error
	// Assign ranks the candidate task IDs for the worker and returns up to
	// k of them.
	Assign(workerID string, candidates []int, k int) []int
	// Observe feeds one collected answer back into the method's state.
	Observe(a model.Answer) error
	// Finalize runs the method's own truth inference over everything
	// observed and returns the truth per task (input-slice order).
	Finalize() ([]int, error)
}

// campaign holds the state shared by every assignment baseline.
type campaign struct {
	tasks   []*model.Task
	pos     map[int]int
	answers *model.AnswerSet
	counts  [][]float64 // per task: votes per choice
}

func (c *campaign) init(tasks []*model.Task) error {
	c.tasks = tasks
	c.pos = make(map[int]int, len(tasks))
	c.answers = model.NewAnswerSet()
	c.counts = make([][]float64, len(tasks))
	for i, t := range tasks {
		if len(t.Choices) < 2 {
			return fmt.Errorf("baselines: task %d has %d choices", t.ID, len(t.Choices))
		}
		c.pos[t.ID] = i
		c.counts[i] = make([]float64, t.NumChoices())
	}
	return nil
}

func (c *campaign) observe(a model.Answer) error {
	i, ok := c.pos[a.Task]
	if !ok {
		return fmt.Errorf("baselines: observe unknown task %d", a.Task)
	}
	if a.Choice < 0 || a.Choice >= len(c.counts[i]) {
		return fmt.Errorf("baselines: observe choice %d out of range for task %d", a.Choice, a.Task)
	}
	if err := c.answers.Add(a); err != nil {
		return err
	}
	c.counts[i][a.Choice]++
	return nil
}

// RandomAssigner is the paper's "Baseline": uniformly random assignment
// with MV inference.
type RandomAssigner struct {
	campaign
	rand *mathx.Rand
}

// NewRandomAssigner returns the random baseline with the given seed.
func NewRandomAssigner(seed uint64) *RandomAssigner {
	return &RandomAssigner{rand: mathx.NewRand(seed ^ 0xba5e)}
}

// Name implements Assigner.
func (*RandomAssigner) Name() string { return "Baseline" }

// Init implements Assigner.
func (r *RandomAssigner) Init(tasks []*model.Task) error { return r.init(tasks) }

// Assign implements Assigner.
func (r *RandomAssigner) Assign(_ string, candidates []int, k int) []int {
	if len(candidates) == 0 || k <= 0 {
		return nil
	}
	perm := r.rand.Perm(len(candidates))
	if k > len(candidates) {
		k = len(candidates)
	}
	out := make([]int, 0, k)
	for _, p := range perm[:k] {
		out = append(out, candidates[p])
	}
	return out
}

// Observe implements Assigner.
func (r *RandomAssigner) Observe(a model.Answer) error { return r.observe(a) }

// Finalize implements Assigner.
func (r *RandomAssigner) Finalize() ([]int, error) {
	return MV{}.InferTruth(r.tasks, r.answers)
}

// AskItAssigner is AskIt! (Boim et al., ICDE 2012): assign the k tasks with
// the highest current uncertainty (entropy of the empirical vote
// distribution), infer with MV.
type AskItAssigner struct {
	campaign
}

// NewAskItAssigner returns the AskIt! baseline.
func NewAskItAssigner() *AskItAssigner { return &AskItAssigner{} }

// Name implements Assigner.
func (*AskItAssigner) Name() string { return "AskIt!" }

// Init implements Assigner.
func (a *AskItAssigner) Init(tasks []*model.Task) error { return a.init(tasks) }

// Assign implements Assigner.
func (a *AskItAssigner) Assign(_ string, candidates []int, k int) []int {
	scores := make([]float64, len(candidates))
	for ci, id := range candidates {
		i := a.pos[id]
		total := mathx.Sum(a.counts[i])
		if total == 0 {
			// Never-answered tasks are maximally uncertain.
			scores[ci] = mathx.MaxEntropy(len(a.counts[i])) + 1
			continue
		}
		p := mathx.Normalize(mathx.Clone(a.counts[i]))
		scores[ci] = mathx.Entropy(p)
	}
	return pick(candidates, scores, k)
}

// Observe implements Assigner.
func (a *AskItAssigner) Observe(ans model.Answer) error { return a.observe(ans) }

// Finalize implements Assigner.
func (a *AskItAssigner) Finalize() ([]int, error) {
	return MV{}.InferTruth(a.tasks, a.answers)
}

// pick returns up to k candidate IDs with the highest scores.
func pick(candidates []int, scores []float64, k int) []int {
	if len(candidates) == 0 || k <= 0 {
		return nil
	}
	order := mathx.TopK(scores, k)
	out := make([]int, 0, len(order))
	for _, i := range order {
		out = append(out, candidates[i])
	}
	return out
}
