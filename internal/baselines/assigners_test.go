package baselines

import (
	"sort"
	"testing"

	"docs/internal/mathx"
	"docs/internal/model"
	"docs/internal/truth"
)

// runCampaign drives an assigner through a simulated campaign: workers
// arrive round-robin, receive k eligible tasks, and answer per their true
// quality. Returns the assigner's final accuracy.
func runCampaign(t *testing.T, a Assigner, tasks []*model.Task, trueQ map[string]model.QualityVector, totalAnswers, k, cap int, seed uint64) float64 {
	t.Helper()
	if err := a.Init(tasks); err != nil {
		t.Fatal(err)
	}
	r := mathx.NewRand(seed)
	counts := make(map[int]int)
	answered := make(map[string]map[int]bool)
	workers := make([]string, 0, len(trueQ))
	for w := range trueQ {
		workers = append(workers, w)
	}
	sort.Strings(workers)

	collected := 0
	for collected < totalAnswers {
		w := workers[r.Intn(len(workers))]
		if answered[w] == nil {
			answered[w] = make(map[int]bool)
		}
		var candidates []int
		for _, tk := range tasks {
			if counts[tk.ID] < cap && !answered[w][tk.ID] {
				candidates = append(candidates, tk.ID)
			}
		}
		if len(candidates) == 0 {
			break
		}
		got := a.Assign(w, candidates, k)
		if len(got) == 0 {
			t.Fatalf("%s assigned nothing from %d candidates", a.Name(), len(candidates))
		}
		if len(got) > k {
			t.Fatalf("%s assigned %d > k=%d", a.Name(), len(got), k)
		}
		seen := map[int]bool{}
		for _, id := range got {
			if seen[id] {
				t.Fatalf("%s assigned task %d twice in one HIT", a.Name(), id)
			}
			seen[id] = true
			if answered[w][id] || counts[id] >= cap {
				t.Fatalf("%s assigned ineligible task %d", a.Name(), id)
			}
			tk := tasks[id]
			choice := tk.Truth
			if r.Float64() >= trueQ[w].Expected(tk.Domain) {
				choice = (tk.Truth + 1 + r.Intn(tk.NumChoices()-1)) % tk.NumChoices()
			}
			if err := a.Observe(model.Answer{Worker: w, Task: id, Choice: choice}); err != nil {
				t.Fatal(err)
			}
			answered[w][id] = true
			counts[id]++
			collected++
		}
	}
	inferred, err := a.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	return accuracy(tasks, inferred)
}

func campaignTasks(t *testing.T, n int, seed uint64) ([]*model.Task, map[string]model.QualityVector) {
	t.Helper()
	tasks, _, trueQ := binaryCampaign(t, n, 16, 0, seed) // perTask=0: no pre-collected answers
	return tasks, trueQ
}

func TestAssignersRespectProtocol(t *testing.T) {
	tasks, trueQ := campaignTasks(t, 60, 3)
	domains := make([][]float64, len(tasks))
	for i, tk := range tasks {
		v := make([]float64, 2)
		v[tk.TrueDomain] = 1
		domains[i] = v
	}
	assigners := []Assigner{
		NewRandomAssigner(1),
		NewAskItAssigner(),
		NewICAssigner(&IC{GivenDomains: domains}),
		NewQASCAAssigner(nil),
		NewDMaxAssigner(2, nil),
	}
	for _, a := range assigners {
		acc := runCampaign(t, a, tasks, trueQ, 300, 3, 5, 17)
		if acc < 0.55 {
			t.Errorf("%s accuracy %.3f suspiciously low", a.Name(), acc)
		}
		t.Logf("%s: %.3f", a.Name(), acc)
	}
}

// TestSmartAssignersBeatRandom is the Figure 8(a) shape at small scale:
// quality-aware assignment must not lose to the random baseline.
func TestSmartAssignersBeatRandom(t *testing.T) {
	tasks, trueQ := campaignTasks(t, 100, 5)
	const total, k, cap = 600, 3, 8

	base := runCampaign(t, NewRandomAssigner(2), tasks, trueQ, total, k, cap, 29)
	qasca := runCampaign(t, NewQASCAAssigner(nil), tasks, trueQ, total, k, cap, 29)
	dmax := runCampaign(t, NewDMaxAssigner(2, nil), tasks, trueQ, total, k, cap, 29)

	t.Logf("Baseline %.3f, QASCA %.3f, D-Max %.3f", base, qasca, dmax)
	if qasca < base-0.05 {
		t.Errorf("QASCA %.3f clearly below Baseline %.3f", qasca, base)
	}
	if dmax < base-0.05 {
		t.Errorf("D-Max %.3f clearly below Baseline %.3f", dmax, base)
	}
}

func TestICAssignerEqualTimesTendency(t *testing.T) {
	tasks, trueQ := campaignTasks(t, 40, 7)
	domains := make([][]float64, len(tasks))
	for i, tk := range tasks {
		v := make([]float64, 2)
		v[tk.TrueDomain] = 1
		domains[i] = v
	}
	a := NewICAssigner(&IC{GivenDomains: domains})
	if err := a.Init(tasks); err != nil {
		t.Fatal(err)
	}
	// Manually drive a few HITs and check low-count tasks are served first.
	r := mathx.NewRand(1)
	counts := make(map[int]int)
	workers := []string{}
	for w := range trueQ {
		workers = append(workers, w)
	}
	sort.Strings(workers)
	for hit := 0; hit < 30; hit++ {
		w := workers[hit%len(workers)]
		var candidates []int
		for _, tk := range tasks {
			if counts[tk.ID] < 3 {
				candidates = append(candidates, tk.ID)
			}
		}
		if len(candidates) == 0 {
			break
		}
		got := a.Assign(w, candidates, 4)
		minCount := 1 << 30
		for _, id := range candidates {
			if counts[id] < minCount {
				minCount = counts[id]
			}
		}
		for _, id := range got {
			if counts[id] > minCount {
				t.Fatalf("HIT %d assigned task with count %d while min is %d", hit, counts[id], minCount)
			}
			counts[id]++
			choice := tasks[id].Truth
			if r.Float64() >= trueQ[w].Expected(tasks[id].Domain) {
				choice = 1 - choice
			}
			// A worker may get the same task across HITs in this loose
			// loop; ignore duplicate errors — protocol is tested elsewhere.
			_ = a.Observe(model.Answer{Worker: w, Task: id, Choice: choice})
		}
	}
}

func TestDMaxUsesGoldenStats(t *testing.T) {
	tasks, trueQ := campaignTasks(t, 30, 11)
	stats := make(map[string]*truth.Stats)
	for w, q := range trueQ {
		st := truth.NewStats(2)
		copy(st.Q, q)
		st.U[0], st.U[1] = 5, 5
		stats[w] = st
	}
	a := NewDMaxAssigner(2, stats)
	if err := a.Init(tasks); err != nil {
		t.Fatal(err)
	}
	// An expert on domain 0 must be preferentially assigned domain-0 tasks.
	var expert string
	for w, q := range trueQ {
		if q[0] > q[1] {
			expert = w
			break
		}
	}
	var candidates []int
	for _, tk := range tasks {
		candidates = append(candidates, tk.ID)
	}
	got := a.Assign(expert, candidates, 5)
	dom0 := 0
	for _, id := range got {
		if tasks[id].TrueDomain == 0 {
			dom0++
		}
	}
	if dom0 < 4 {
		t.Errorf("expert assigned only %d/5 domain-0 tasks", dom0)
	}
}

func TestAssignEdgeCasesAllAssigners(t *testing.T) {
	tasks, _ := campaignTasks(t, 10, 13)
	for _, a := range []Assigner{
		NewRandomAssigner(3), NewAskItAssigner(), NewQASCAAssigner(nil), NewDMaxAssigner(2, nil),
	} {
		if err := a.Init(tasks); err != nil {
			t.Fatal(err)
		}
		if got := a.Assign("w", nil, 3); got != nil {
			t.Errorf("%s assigned from empty candidates: %v", a.Name(), got)
		}
		if got := a.Assign("w", []int{0, 1}, 0); got != nil {
			t.Errorf("%s assigned with k=0: %v", a.Name(), got)
		}
		if err := a.Observe(model.Answer{Worker: "w", Task: 999, Choice: 0}); err == nil {
			t.Errorf("%s accepted answer for unknown task", a.Name())
		}
	}
}
