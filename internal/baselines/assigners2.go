package baselines

import (
	"docs/internal/mathx"
	"docs/internal/model"
)

// ICAssigner is iCrowd's assignment strategy: give the coming worker the
// tasks on which she has the highest estimated quality, under the
// constraint that every task ends up answered the same number of times.
// The equal-times constraint is realized by serving tasks with the fewest
// answers first (within a round, quality breaks ties), which converges to
// equal counts under the harness's redundancy cap. Truth inference is
// iCrowd's similarity-weighted majority voting.
type ICAssigner struct {
	campaign
	ic     *IC
	theta  [][]float64
	truth  []int
	sinceT int
}

// NewICAssigner returns iCrowd's assigner. domains may carry per-task
// latent domain vectors (e.g. LDA output or given ground truth); if nil,
// LDA runs at Init.
func NewICAssigner(ic *IC) *ICAssigner {
	if ic == nil {
		ic = &IC{}
	}
	return &ICAssigner{ic: ic}
}

// Name implements Assigner.
func (*ICAssigner) Name() string { return "IC" }

// Init implements Assigner.
func (a *ICAssigner) Init(tasks []*model.Task) error {
	if err := a.init(tasks); err != nil {
		return err
	}
	a.theta = a.ic.TaskDomains(tasks)
	a.truth = make([]int, len(tasks))
	return nil
}

// workerQuality estimates the worker's accuracy on task i from her record
// on similar tasks (cosine similarity of latent domain vectors), judged
// against the current truth estimate.
func (a *ICAssigner) workerQuality(workerID string, i int) float64 {
	var num, den float64
	for _, b := range a.answers.ForWorker(workerID) {
		j := a.pos[b.Task]
		if j == i {
			continue
		}
		s := cosine(a.theta[i], a.theta[j])
		den += s
		if b.Choice == a.truth[j] {
			num += s
		}
	}
	if den <= 1e-9 {
		return 0.7
	}
	return num / den
}

// Assign implements Assigner.
func (a *ICAssigner) Assign(workerID string, candidates []int, k int) []int {
	if len(candidates) == 0 || k <= 0 {
		return nil
	}
	// Equal-times constraint: rank primarily by (max count − count), then
	// by the worker's estimated quality.
	maxCount := 0.0
	counts := make([]float64, len(candidates))
	for ci, id := range candidates {
		counts[ci] = mathx.Sum(a.counts[a.pos[id]])
		if counts[ci] > maxCount {
			maxCount = counts[ci]
		}
	}
	scores := make([]float64, len(candidates))
	for ci, id := range candidates {
		q := a.workerQuality(workerID, a.pos[id])
		scores[ci] = (maxCount-counts[ci])*10 + q
	}
	return pick(candidates, scores, k)
}

// Observe implements Assigner.
func (a *ICAssigner) Observe(ans model.Answer) error {
	if err := a.observe(ans); err != nil {
		return err
	}
	// Refresh the cheap weighted-MV truth estimate periodically.
	a.sinceT++
	if a.sinceT >= 50 {
		a.sinceT = 0
		a.refreshTruth()
	}
	i := a.pos[ans.Task]
	a.truth[i] = mathx.ArgMax(a.counts[i])
	return nil
}

func (a *ICAssigner) refreshTruth() {
	for i := range a.tasks {
		a.truth[i] = mathx.ArgMax(a.counts[i])
	}
}

// Finalize implements Assigner.
func (a *ICAssigner) Finalize() ([]int, error) {
	ic := *a.ic
	ic.GivenDomains = a.theta
	return ic.InferTruth(a.tasks, a.answers)
}

// QASCAAssigner is QASCA (Zheng et al., SIGMOD 2015): assign the k tasks
// whose answers most improve the expected Accuracy of the current truth
// estimates. Online it tracks per-worker scalar reliabilities and per-task
// Bayesian posteriors; the final inference is full Dawid&Skene, as in the
// paper.
type QASCAAssigner struct {
	campaign
	rel     map[string]float64
	post    [][]float64
	seedRel map[string]float64
}

// NewQASCAAssigner returns the QASCA baseline; initRel optionally seeds
// worker reliabilities from golden tasks.
func NewQASCAAssigner(initRel map[string]float64) *QASCAAssigner {
	return &QASCAAssigner{seedRel: initRel}
}

// Name implements Assigner.
func (*QASCAAssigner) Name() string { return "QASCA" }

// Init implements Assigner.
func (q *QASCAAssigner) Init(tasks []*model.Task) error {
	if err := q.init_(tasks); err != nil {
		return err
	}
	return nil
}

func (q *QASCAAssigner) init_(tasks []*model.Task) error {
	if err := q.campaign.init(tasks); err != nil {
		return err
	}
	q.rel = make(map[string]float64)
	q.post = make([][]float64, len(tasks))
	for i, t := range tasks {
		q.post[i] = mathx.Uniform(t.NumChoices())
	}
	return nil
}

func (q *QASCAAssigner) reliability(w string) float64 {
	if r, ok := q.rel[w]; ok {
		return r
	}
	if r, ok := q.seedRel[w]; ok {
		return clampProb(r)
	}
	return 0.7
}

// Assign implements Assigner: expected gain in max-posterior (the Accuracy
// quality metric of the QASCA paper) per candidate, top-k.
func (q *QASCAAssigner) Assign(workerID string, candidates []int, k int) []int {
	if len(candidates) == 0 || k <= 0 {
		return nil
	}
	wq := q.reliability(workerID)
	scores := make([]float64, len(candidates))
	for ci, id := range candidates {
		i := q.pos[id]
		s := q.post[i]
		ell := float64(len(s))
		cur := s[mathx.ArgMax(s)]
		var exp float64
		for a := range s {
			// Predictive probability of answer a under the scalar model.
			var pa float64
			for j := range s {
				if j == a {
					pa += s[j] * wq
				} else {
					pa += s[j] * (1 - wq) / (ell - 1)
				}
			}
			if pa == 0 {
				continue
			}
			// Posterior if a is observed.
			upd := make([]float64, len(s))
			for j := range s {
				if j == a {
					upd[j] = s[j] * wq
				} else {
					upd[j] = s[j] * (1 - wq) / (ell - 1)
				}
			}
			mathx.Normalize(upd)
			exp += pa * upd[mathx.ArgMax(upd)]
		}
		scores[ci] = exp - cur
	}
	return pick(candidates, scores, k)
}

// Observe implements Assigner: Bayes-update the task posterior and nudge
// the worker's reliability toward her agreement with it.
func (q *QASCAAssigner) Observe(ans model.Answer) error {
	if err := q.observe(ans); err != nil {
		return err
	}
	i := q.pos[ans.Task]
	s := q.post[i]
	wq := q.reliability(ans.Worker)
	ell := float64(len(s))
	for j := range s {
		if j == ans.Choice {
			s[j] *= wq
		} else {
			s[j] *= (1 - wq) / (ell - 1)
		}
	}
	mathx.Normalize(s)
	// Running reliability: exponential average of agreement with the
	// posterior of the tasks the worker answered.
	agreement := s[ans.Choice]
	q.rel[ans.Worker] = clampProb(0.9*q.reliability(ans.Worker) + 0.1*agreement)
	return nil
}

// Finalize implements Assigner: full Dawid&Skene, per the QASCA paper.
func (q *QASCAAssigner) Finalize() ([]int, error) {
	ds := &DS{InitReliability: q.seedRel}
	return ds.InferTruth(q.tasks, q.answers)
}
