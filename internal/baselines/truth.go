// Package baselines implements every method DOCS is compared against in the
// paper's evaluation (Section 6): the truth-inference competitors MV,
// ZenCrowd (ZC), Dawid&Skene (DS), iCrowd (IC) and FaitCrowd (FC), and the
// task-assignment competitors Baseline (random), AskIt!, IC-assign, QASCA
// and D-Max. All are built from scratch on the same substrates as DOCS so
// the comparisons measure algorithms, not implementations.
package baselines

import (
	"fmt"

	"docs/internal/mathx"
	"docs/internal/model"
)

// TruthInferrer is the common interface of the truth-inference baselines:
// given tasks and collected answers, produce the inferred truth per task
// (indexed by position in the task slice).
type TruthInferrer interface {
	// Name returns the method's display name as used in the paper's plots.
	Name() string
	// InferTruth returns the inferred truth index for every task.
	InferTruth(tasks []*model.Task, answers *model.AnswerSet) ([]int, error)
}

// indexTasks builds the task-ID → slice-position map and validates answers.
func indexTasks(tasks []*model.Task, answers *model.AnswerSet) (map[int]int, error) {
	pos := make(map[int]int, len(tasks))
	for i, t := range tasks {
		if len(t.Choices) < 2 {
			return nil, fmt.Errorf("baselines: task %d has %d choices", t.ID, len(t.Choices))
		}
		pos[t.ID] = i
	}
	for _, id := range answers.Tasks() {
		i, ok := pos[id]
		if !ok {
			return nil, fmt.Errorf("baselines: answers reference unknown task %d", id)
		}
		for _, a := range answers.ForTask(id) {
			if a.Choice < 0 || a.Choice >= len(tasks[i].Choices) {
				return nil, fmt.Errorf("baselines: task %d choice %d out of range", id, a.Choice)
			}
		}
	}
	return pos, nil
}

// MV is majority voting: the answer given by the most workers wins, ties
// broken toward the lowest choice index.
type MV struct{}

// Name implements TruthInferrer.
func (MV) Name() string { return "MV" }

// InferTruth implements TruthInferrer.
func (MV) InferTruth(tasks []*model.Task, answers *model.AnswerSet) ([]int, error) {
	if _, err := indexTasks(tasks, answers); err != nil {
		return nil, err
	}
	out := make([]int, len(tasks))
	for i, t := range tasks {
		counts := make([]float64, t.NumChoices())
		for _, a := range answers.ForTask(t.ID) {
			counts[a.Choice]++
		}
		out[i] = mathx.ArgMax(counts)
	}
	return out, nil
}

// ZC is ZenCrowd (Demartini et al., WWW 2012): each worker has one scalar
// reliability, estimated jointly with the task truths by EM.
type ZC struct {
	// MaxIter bounds EM iterations (default 20).
	MaxIter int
	// InitReliability seeds per-worker reliabilities (e.g. from golden
	// tasks); missing workers start at 0.7.
	InitReliability map[string]float64
}

// Name implements TruthInferrer.
func (*ZC) Name() string { return "ZC" }

// InferTruth implements TruthInferrer.
func (z *ZC) InferTruth(tasks []*model.Task, answers *model.AnswerSet) ([]int, error) {
	pos, err := indexTasks(tasks, answers)
	if err != nil {
		return nil, err
	}
	maxIter := z.MaxIter
	if maxIter <= 0 {
		maxIter = 20
	}
	rel := make(map[string]float64)
	for _, w := range answers.Workers() {
		if q, ok := z.InitReliability[w]; ok {
			rel[w] = q
		} else {
			rel[w] = 0.7
		}
	}
	s := make([][]float64, len(tasks))
	for i, t := range tasks {
		s[i] = mathx.Uniform(t.NumChoices())
	}
	for iter := 0; iter < maxIter; iter++ {
		// E-step: truth posteriors from reliabilities.
		for i, t := range tasks {
			v := answers.ForTask(t.ID)
			if len(v) == 0 {
				continue
			}
			ell := t.NumChoices()
			logw := make([]float64, ell)
			for _, a := range v {
				q := clampProb(rel[a.Worker])
				for j := 0; j < ell; j++ {
					if a.Choice == j {
						logw[j] += logf(q)
					} else {
						logw[j] += logf((1 - q) / float64(ell-1))
					}
				}
			}
			s[i] = softmaxLog(logw)
		}
		// M-step: reliability = expected fraction answered correctly.
		for w := range rel {
			var num, den float64
			for _, a := range answers.ForWorker(w) {
				num += s[pos[a.Task]][a.Choice]
				den++
			}
			if den > 0 {
				rel[w] = num / den
			}
		}
	}
	out := make([]int, len(tasks))
	for i := range tasks {
		out[i] = mathx.ArgMax(s[i])
	}
	return out, nil
}

// DS is Dawid & Skene (1979): each worker has a full confusion matrix
// π_w[j][l] = Pr(worker answers l | truth is j), estimated by EM. Matrices
// are sized to the largest choice count in the task set; smaller tasks use
// the leading sub-matrix.
type DS struct {
	// MaxIter bounds EM iterations (default 20).
	MaxIter int
	// InitReliability seeds the diagonal of each worker's confusion matrix
	// (e.g. from golden tasks); missing workers start at 0.7.
	InitReliability map[string]float64
	// Smoothing is the additive pseudo-count in the M-step (default 0.01).
	Smoothing float64
}

// Name implements TruthInferrer.
func (*DS) Name() string { return "DS" }

// InferTruth implements TruthInferrer.
func (d *DS) InferTruth(tasks []*model.Task, answers *model.AnswerSet) ([]int, error) {
	pos, err := indexTasks(tasks, answers)
	if err != nil {
		return nil, err
	}
	maxIter := d.MaxIter
	if maxIter <= 0 {
		maxIter = 20
	}
	smooth := d.Smoothing
	if smooth <= 0 {
		smooth = 0.01
	}
	maxEll := 2
	for _, t := range tasks {
		if t.NumChoices() > maxEll {
			maxEll = t.NumChoices()
		}
	}
	// Initialize confusion matrices: diagonal q, off-diagonal uniform.
	conf := make(map[string][][]float64)
	for _, w := range answers.Workers() {
		q := 0.7
		if init, ok := d.InitReliability[w]; ok {
			q = clampProb(init)
		}
		cm := make([][]float64, maxEll)
		for j := range cm {
			cm[j] = make([]float64, maxEll)
			for l := range cm[j] {
				if j == l {
					cm[j][l] = q
				} else {
					cm[j][l] = (1 - q) / float64(maxEll-1)
				}
			}
		}
		conf[w] = cm
	}
	s := make([][]float64, len(tasks))
	for i, t := range tasks {
		s[i] = mathx.Uniform(t.NumChoices())
	}
	for iter := 0; iter < maxIter; iter++ {
		// E-step.
		for i, t := range tasks {
			v := answers.ForTask(t.ID)
			if len(v) == 0 {
				continue
			}
			ell := t.NumChoices()
			logw := make([]float64, ell)
			for _, a := range v {
				cm := conf[a.Worker]
				for j := 0; j < ell; j++ {
					logw[j] += logf(clampProb(cm[j][a.Choice]))
				}
			}
			s[i] = softmaxLog(logw)
		}
		// M-step: re-estimate confusion matrices row-wise.
		for w, cm := range conf {
			counts := make([][]float64, maxEll)
			for j := range counts {
				counts[j] = make([]float64, maxEll)
				for l := range counts[j] {
					counts[j][l] = smooth
				}
			}
			for _, a := range answers.ForWorker(w) {
				si := s[pos[a.Task]]
				for j := 0; j < len(si); j++ {
					counts[j][a.Choice] += si[j]
				}
			}
			for j := range cm {
				var rowSum float64
				for _, c := range counts[j] {
					rowSum += c
				}
				for l := range cm[j] {
					cm[j][l] = counts[j][l] / rowSum
				}
			}
		}
	}
	out := make([]int, len(tasks))
	for i := range tasks {
		out[i] = mathx.ArgMax(s[i])
	}
	return out, nil
}

func clampProb(q float64) float64 {
	if q < 0.01 {
		return 0.01
	}
	if q > 0.99 {
		return 0.99
	}
	return q
}
