// Package lint is the project's static-analysis pass: a small, stdlib-only
// analyzer framework (go/parser + go/ast + go/types — no external modules)
// plus five project-specific analyzers that prove the repo's determinism
// and durability contracts at the source level, before any crash-injection
// suite runs.
//
// The analyzers are driven by //docs: source directives:
//
//	//docs:deterministic             marks a function as a determinism root
//	                                 (fingerprints, encoders, replay entry
//	                                 points) — everything reachable from it
//	                                 must be order- and clock-independent
//	//docs:exhaustive                on a type declaration: every switch over
//	                                 the type must enumerate every constant
//	//docs:lockorder A < B           declares a lock-acquisition order
//	//docs:holds L                   this function runs with L already held
//	//docs:acquires L                this function acquires L
//	//docs:allow <analyzer> <reason> suppresses findings of <analyzer> on
//	                                 this line or the next one; the reason
//	                                 is mandatory
//
// See docs/static-analysis.md for what each analyzer proves and how it
// relates to the dynamic suite that used to be the only guard.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one analyzer hit: a position, the analyzer that fired, and a
// message naming the violated contract.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the finding in the file:line: analyzer: message form the
// CI step greps for.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Analyzer, f.Message)
}

// Analyzer is one static check over the whole loaded program.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Program) []Finding
}

// Package is one type-checked package of the program under analysis.
type Package struct {
	Path  string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Program is the loaded-and-type-checked module: every package, a shared
// FileSet, the directive table, and a body index resolving a *types.Func
// to the declaration that carries its AST.
type Program struct {
	Fset     *token.FileSet
	Packages []*Package

	dirs  *directives
	funcs *funcIndex
}

// Analyzers returns the full analyzer suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		determinismAnalyzer,
		clockAnalyzer,
		walswitchAnalyzer,
		lockorderAnalyzer,
		floatbitsAnalyzer,
	}
}

// Run executes the given analyzers over the program, applies //docs:allow
// suppressions, appends a finding for every malformed (reason-less) allow
// directive, and returns the surviving findings sorted by position.
func Run(prog *Program, analyzers []*Analyzer) []Finding {
	var out []Finding
	for _, a := range analyzers {
		for _, f := range a.Run(prog) {
			if prog.dirs.allowed(a.Name, f.Pos) {
				continue
			}
			out = append(out, f)
		}
	}
	// A suppression without a reason is itself a finding: the allowlist
	// doubles as documentation, and an unexplained entry documents nothing.
	out = append(out, prog.dirs.badAllows...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// finding builds a Finding at a node's position.
func (p *Program) finding(analyzer string, pos token.Pos, format string, args ...any) Finding {
	return Finding{
		Pos:      p.Fset.Position(pos),
		Analyzer: analyzer,
		Message:  fmt.Sprintf(format, args...),
	}
}

// pkgOf returns the package a position belongs to (by file), or nil.
func (p *Program) pkgOf(pos token.Pos) *Package {
	file := p.Fset.Position(pos).Filename
	for _, pkg := range p.Packages {
		for _, f := range pkg.Files {
			if p.Fset.Position(f.Pos()).Filename == file {
				return pkg
			}
		}
	}
	return nil
}

// trimPath strips a leading root prefix so findings print repo-relative
// paths.
func trimPath(fs []Finding, root string) {
	if root == "" {
		return
	}
	prefix := root
	if !strings.HasSuffix(prefix, "/") {
		prefix += "/"
	}
	for i := range fs {
		fs[i].Pos.Filename = strings.TrimPrefix(fs[i].Pos.Filename, prefix)
	}
}

// TrimPaths rewrites all finding positions relative to root (for printing).
func TrimPaths(fs []Finding, root string) { trimPath(fs, root) }
