package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

// funcInfo is one analyzable function: a declaration or a literal, its
// body, and the package it lives in.
type funcInfo struct {
	// Name is a human-readable name for path reporting: "Fingerprint",
	// "(*System).applyRecord", or "func@file:line" for literals.
	Name string
	Pkg  *Package
	Decl *ast.FuncDecl // nil for literals
	Lit  *ast.FuncLit  // nil for declarations
	Obj  *types.Func   // nil for literals
}

func (fi *funcInfo) body() *ast.BlockStmt {
	if fi.Decl != nil {
		return fi.Decl.Body
	}
	return fi.Lit.Body
}

func (fi *funcInfo) pos() token.Pos {
	if fi.Decl != nil {
		return fi.Decl.Pos()
	}
	return fi.Lit.Pos()
}

// funcIndex resolves *types.Func objects to the declarations carrying
// their bodies, across every package in the program.
type funcIndex struct {
	byObj map[*types.Func]*funcInfo
	// lits are all function literals, each standing alone (used by the
	// lock-order analyzer, which analyzes annotated literals as roots).
	lits []*funcInfo
	// all is every declared function in deterministic order.
	all []*funcInfo
}

func indexFuncs(prog *Program) *funcIndex {
	idx := &funcIndex{byObj: map[*types.Func]*funcInfo{}}
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				fi := &funcInfo{Name: declName(fd), Pkg: pkg, Decl: fd, Obj: obj}
				if obj != nil {
					idx.byObj[obj] = fi
				}
				idx.all = append(idx.all, fi)
				// Collect literals nested anywhere inside this declaration.
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if lit, ok := n.(*ast.FuncLit); ok {
						pos := prog.Fset.Position(lit.Pos())
						idx.lits = append(idx.lits, &funcInfo{
							Name: "func@" + pos.Filename + ":" + strconv.Itoa(pos.Line),
							Pkg:  pkg,
							Lit:  lit,
						})
					}
					return true
				})
			}
		}
	}
	return idx
}

func declName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	recv := fd.Recv.List[0].Type
	return "(" + typeText(recv) + ")." + fd.Name.Name
}

func typeText(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return "*" + typeText(t.X)
	case *ast.IndexExpr:
		return typeText(t.X)
	case *ast.IndexListExpr:
		return typeText(t.X)
	}
	return "?"
}

// calleeOf resolves a call expression to the *types.Func it invokes
// statically: a package function, a method (by declared receiver), or nil
// for dynamic calls (function values, interface methods without bodies in
// the program still resolve to their *types.Func — the caller decides what
// to do when no body is indexed).
func calleeOf(pkg *Package, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// callsIn returns every call expression lexically inside root (including
// inside nested function literals), in source order.
func callsIn(root ast.Node) []*ast.CallExpr {
	var calls []*ast.CallExpr
	ast.Inspect(root, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok {
			calls = append(calls, c)
		}
		return true
	})
	return calls
}

// reachableFrom walks the static call graph from the given roots and
// returns every function (with a body in the program) reachable from
// them, each annotated with one shortest call path for reporting.
func reachableFrom(prog *Program, roots []*funcInfo) map[*funcInfo][]string {
	type item struct {
		fi   *funcInfo
		path []string
	}
	seen := map[*funcInfo][]string{}
	var queue []item
	for _, r := range roots {
		if _, ok := seen[r]; ok {
			continue
		}
		seen[r] = []string{r.Name}
		queue = append(queue, item{r, []string{r.Name}})
	}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		for _, call := range callsIn(it.fi.body()) {
			obj := calleeOf(it.fi.Pkg, call)
			if obj == nil {
				continue
			}
			callee, ok := prog.funcs.byObj[obj]
			if !ok {
				continue // no body in the program (stdlib, interface method)
			}
			if _, ok := seen[callee]; ok {
				continue
			}
			path := append(append([]string(nil), it.path...), callee.Name)
			seen[callee] = path
			queue = append(queue, item{callee, path})
		}
	}
	return seen
}

// pathString renders a call path as "a → b → c".
func pathString(path []string) string {
	out := ""
	for i, p := range path {
		if i > 0 {
			out += " → "
		}
		out += p
	}
	return out
}
