package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// directives is the parsed //docs: directive table for a program.
//
// Grammar (one directive per comment line, no space after "//"):
//
//	//docs:allow <analyzer> <reason...>   suppress <analyzer> findings on
//	                                      this line or the next; reason
//	                                      required
//	//docs:deterministic                  function is a determinism root
//	//docs:exhaustive                     type's switches must be exhaustive
//	//docs:lockorder <A> < <B>            lock A is acquired before lock B
//	//docs:holds <lock>                   function runs with <lock> held
//	//docs:acquires <lock>                function acquires <lock>
//
// Function-attached directives (deterministic, holds, acquires) bind to
// the function declaration or literal whose `func` keyword is on the
// directive's line or the line immediately after it — the end-of-doc and
// line-above positions — or anywhere in a FuncDecl's doc comment.
type directives struct {
	// allows: file -> line -> set of analyzer names suppressed there.
	allows map[string]map[int]map[string]bool
	// badAllows are //docs:allow lines with no reason (reported as
	// findings: an unexplained suppression is itself a violation).
	badAllows []Finding
	// funcMarks: directive name -> funcKey -> args (one per directive).
	funcMarks map[string]map[funcKey][]string
	// exhaustive: "pkgpath.TypeName" set.
	exhaustive map[string]bool
	// lockOrder: declared before-pairs; lockOrder[a][b] means a < b (a is
	// acquired before b). Transitively closed.
	lockOrder map[string]map[string]bool
}

// funcKey identifies a function declaration or literal by the position of
// its `func` keyword.
type funcKey token.Pos

type rawDirective struct {
	file string
	line int
	pos  token.Pos
	verb string
	args string
}

func scanDirectives(prog *Program) *directives {
	d := &directives{
		allows:     map[string]map[int]map[string]bool{},
		funcMarks:  map[string]map[funcKey][]string{},
		exhaustive: map[string]bool{},
		lockOrder:  map[string]map[string]bool{},
	}

	var raws []rawDirective
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, "//docs:")
					if !ok {
						continue
					}
					verb, args, _ := strings.Cut(text, " ")
					pos := prog.Fset.Position(c.Pos())
					raws = append(raws, rawDirective{
						file: pos.Filename,
						line: pos.Line,
						pos:  c.Pos(),
						verb: verb,
						args: strings.TrimSpace(args),
					})
				}
			}
		}

		// Type-attached directives: scan type declarations' docs.
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					for _, doc := range []*ast.CommentGroup{gd.Doc, ts.Doc, ts.Comment} {
						if doc == nil {
							continue
						}
						for _, c := range doc.List {
							if strings.TrimSpace(c.Text) == "//docs:exhaustive" {
								d.exhaustive[pkg.Path+"."+ts.Name.Name] = true
							}
						}
					}
				}
			}
		}
	}

	// Function binding: map each line to the function whose `func` keyword
	// starts there.
	funcAt := map[string]map[int]funcKey{}
	note := func(pos token.Pos) {
		p := prog.Fset.Position(pos)
		if funcAt[p.Filename] == nil {
			funcAt[p.Filename] = map[int]funcKey{}
		}
		// First function on a line wins (one function per line in practice).
		if _, ok := funcAt[p.Filename][p.Line]; !ok {
			funcAt[p.Filename][p.Line] = funcKey(pos)
		}
	}
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch fn := n.(type) {
				case *ast.FuncDecl:
					note(fn.Pos())
				case *ast.FuncLit:
					note(fn.Pos())
				}
				return true
			})
		}
	}
	// FuncDecl doc comments may carry directives on any doc line; bind them
	// by scanning decl docs directly, and remember which comment positions
	// were consumed so the line-proximity pass below does not double-bind
	// or mis-report them.
	consumed := map[token.Pos]bool{}
	bindFunc := func(verb string, key funcKey, args string) {
		if d.funcMarks[verb] == nil {
			d.funcMarks[verb] = map[funcKey][]string{}
		}
		if !contains(d.funcMarks[verb][key], args) {
			d.funcMarks[verb][key] = append(d.funcMarks[verb][key], args)
		}
	}
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Doc == nil {
					continue
				}
				for _, c := range fd.Doc.List {
					text, ok := strings.CutPrefix(c.Text, "//docs:")
					if !ok {
						continue
					}
					verb, args, _ := strings.Cut(text, " ")
					if isFuncVerb(verb) {
						bindFunc(verb, funcKey(fd.Pos()), strings.TrimSpace(args))
						consumed[c.Pos()] = true
					}
				}
			}
		}
	}

	for _, r := range raws {
		if consumed[r.pos] {
			continue
		}
		switch r.verb {
		case "allow":
			analyzer, reason, _ := strings.Cut(r.args, " ")
			if analyzer == "" || strings.TrimSpace(reason) == "" {
				d.badAllows = append(d.badAllows, Finding{
					Pos:      prog.Fset.Position(r.pos),
					Analyzer: "allow",
					Message:  "//docs:allow needs an analyzer name and a non-empty reason",
				})
				continue
			}
			for _, line := range []int{r.line, r.line + 1} {
				if d.allows[r.file] == nil {
					d.allows[r.file] = map[int]map[string]bool{}
				}
				if d.allows[r.file][line] == nil {
					d.allows[r.file][line] = map[string]bool{}
				}
				d.allows[r.file][line][analyzer] = true
			}
		case "lockorder":
			before, after, ok := strings.Cut(r.args, "<")
			before, after = strings.TrimSpace(before), strings.TrimSpace(after)
			if !ok || before == "" || after == "" {
				d.badAllows = append(d.badAllows, Finding{
					Pos:      prog.Fset.Position(r.pos),
					Analyzer: "lockorder",
					Message:  "//docs:lockorder wants the form `//docs:lockorder A < B`",
				})
				continue
			}
			if d.lockOrder[before] == nil {
				d.lockOrder[before] = map[string]bool{}
			}
			d.lockOrder[before][after] = true
		case "deterministic", "holds", "acquires":
			// Bind to the function starting on this or the next line (the
			// doc-comment path above already handled FuncDecl docs; binding
			// twice is harmless for deterministic and duplicates are fine
			// for holds/acquires since the sets dedupe).
			key, ok := funcNear(funcAt, r.file, r.line)
			if !ok {
				d.badAllows = append(d.badAllows, Finding{
					Pos:      prog.Fset.Position(r.pos),
					Analyzer: r.verb,
					Message:  "//docs:" + r.verb + " is not attached to a function",
				})
				continue
			}
			if d.funcMarks[r.verb] == nil {
				d.funcMarks[r.verb] = map[funcKey][]string{}
			}
			if !contains(d.funcMarks[r.verb][key], r.args) {
				d.funcMarks[r.verb][key] = append(d.funcMarks[r.verb][key], r.args)
			}
		case "exhaustive":
			// Handled via type-doc scan above.
		default:
			d.badAllows = append(d.badAllows, Finding{
				Pos:      prog.Fset.Position(r.pos),
				Analyzer: "directive",
				Message:  "unknown directive //docs:" + r.verb,
			})
		}
	}

	// Transitive closure of the declared lock order.
	for changed := true; changed; {
		changed = false
		for a, afters := range d.lockOrder {
			for b := range afters {
				for c := range d.lockOrder[b] {
					if !d.lockOrder[a][c] {
						d.lockOrder[a][c] = true
						changed = true
					}
				}
			}
		}
	}
	return d
}

func isFuncVerb(v string) bool {
	return v == "deterministic" || v == "holds" || v == "acquires"
}

func contains(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}

// funcNear finds a function starting on line or line+1 in file. A FuncDecl
// with a doc comment starts at the doc's first line per go/ast, so a
// directive inside the doc group still binds via the decl-doc scan; this
// covers literals and bare declarations.
func funcNear(funcAt map[string]map[int]funcKey, file string, line int) (funcKey, bool) {
	lines := funcAt[file]
	if lines == nil {
		return 0, false
	}
	for _, l := range []int{line, line + 1} {
		if k, ok := lines[l]; ok {
			return k, true
		}
	}
	return 0, false
}

// allowed reports whether a finding of analyzer at pos is suppressed by an
// allow directive on its line or the line above.
func (d *directives) allowed(analyzer string, pos token.Position) bool {
	lines := d.allows[pos.Filename]
	if lines == nil {
		return false
	}
	set := lines[pos.Line]
	return set != nil && set[analyzer]
}

// marked reports whether fn carries the given function directive, and the
// directive's arguments.
func (d *directives) marked(verb string, key funcKey) ([]string, bool) {
	m := d.funcMarks[verb]
	if m == nil {
		return nil, false
	}
	args, ok := m[key]
	return args, ok
}

// ordered reports whether the declared order says a must be acquired
// before b.
func (d *directives) ordered(a, b string) bool {
	return d.lockOrder[a] != nil && d.lockOrder[a][b]
}

// lockNames returns every lock name mentioned in any lockorder directive.
func (d *directives) lockNames() map[string]bool {
	names := map[string]bool{}
	for a, afters := range d.lockOrder {
		names[a] = true
		for b := range afters {
			names[b] = true
		}
	}
	return names
}
