package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// loader parses and type-checks module packages with a shared FileSet and
// a shared stdlib importer, so type objects are identical across packages
// (a *types.Func seen at a call site in package A is the same object the
// body index recorded when checking package B).
type loader struct {
	root    string // module root directory
	module  string // module path from go.mod
	fset    *token.FileSet
	std     types.Importer
	cache   map[string]*types.Package
	pkgs    map[string]*Package
	loading map[string]bool
}

// LoadModule parses and type-checks every non-test package under the
// module rooted at root (skipping testdata, hidden and underscore
// directories) and returns the analyzable Program. It is hermetic: no
// subprocesses, no network — stdlib packages are type-checked from
// GOROOT/src by the standard source importer.
func LoadModule(root string) (*Program, error) {
	modPath, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	ld := &loader{
		root:    root,
		module:  modPath,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		cache:   map[string]*types.Package{},
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}
	dirs, err := ld.moduleDirs()
	if err != nil {
		return nil, err
	}
	for _, dir := range dirs {
		if _, err := ld.Import(ld.pathFor(dir)); err != nil {
			return nil, fmt.Errorf("lint: %s: %w", dir, err)
		}
	}
	return finishProgram(fset, ld.pkgs)
}

// LoadPackages type-checks the given directories as a standalone program
// (the fixture-test entry point). Each directory is one package; imports
// between them are not supported — fixtures import only the stdlib.
func LoadPackages(dirs ...string) (*Program, error) {
	fset := token.NewFileSet()
	std := importer.ForCompiler(fset, "source", nil)
	pkgs := map[string]*Package{}
	for _, dir := range dirs {
		abs, err := filepath.Abs(dir)
		if err != nil {
			return nil, err
		}
		path := "fixture/" + filepath.Base(abs)
		pkg, err := checkDir(fset, std, path, abs)
		if err != nil {
			return nil, err
		}
		pkgs[path] = pkg
	}
	return finishProgram(fset, pkgs)
}

// finishProgram indexes directives and function bodies over the checked
// packages.
func finishProgram(fset *token.FileSet, byPath map[string]*Package) (*Program, error) {
	prog := &Program{Fset: fset}
	paths := make([]string, 0, len(byPath))
	for p := range byPath {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		prog.Packages = append(prog.Packages, byPath[p])
	}
	prog.dirs = scanDirectives(prog)
	prog.funcs = indexFuncs(prog)
	return prog, nil
}

// Import satisfies types.Importer: module packages are parsed and checked
// from source (memoized); everything else defers to the stdlib importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if p, ok := l.cache[path]; ok {
		return p, nil
	}
	if path != l.module && !strings.HasPrefix(path, l.module+"/") {
		return l.std.Import(path)
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.root
	if path != l.module {
		dir = filepath.Join(l.root, strings.TrimPrefix(path, l.module+"/"))
	}
	pkg, err := checkDir(l.fset, l, path, dir)
	if err != nil {
		return nil, err
	}
	l.cache[path] = pkg.Types
	l.pkgs[path] = pkg
	return pkg.Types, nil
}

// checkDir parses every non-test .go file in dir and type-checks them as
// one package with full Uses/Defs/Types/Selections info.
func checkDir(fset *token.FileSet, imp types.Importer, path, dir string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Types:      map[ast.Expr]types.TypeAndValue{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	cfg := &types.Config{Importer: imp}
	tpkg, err := cfg.Check(path, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{Path: path, Files: files, Types: tpkg, Info: info}, nil
}

// moduleDirs walks the module tree and returns every directory holding at
// least one non-test .go file, skipping testdata, hidden and underscore
// directories.
func (l *loader) moduleDirs() ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(l.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != l.root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	// WalkDir visits files in sorted order per directory but appends a dir
	// once per contiguous run; dedupe after the final sort.
	out := dirs[:0]
	for i, d := range dirs {
		if i == 0 || d != dirs[i-1] {
			out = append(out, d)
		}
	}
	return out, nil
}

// pathFor maps a module directory to its import path.
func (l *loader) pathFor(dir string) string {
	if dir == l.root {
		return l.module
	}
	rel, _ := filepath.Rel(l.root, dir)
	return l.module + "/" + filepath.ToSlash(rel)
}

// modulePath reads the module path from go.mod at root.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("lint: not a module root: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s/go.mod", root)
}

// FindModuleRoot walks up from dir to the nearest directory holding a
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		abs = parent
	}
}
