package lint

import (
	"go/ast"
	"go/types"
)

// floatbitsAnalyzer enforces the raw-bits doctrine on digest and encoder
// paths: a float64 that reaches a fingerprint, snapshot, or WAL encoding
// must go through math.Float64bits — never through %v/%g/%f formatting,
// where "close" can pass for "equal" and formatting choices change across
// Go releases. In every function reachable from a //docs:deterministic
// root it rejects float-typed arguments to the fmt printing family and
// any use of strconv.FormatFloat/AppendFloat.
var floatbitsAnalyzer = &Analyzer{
	Name: "floatbits",
	Doc:  "raw floats formatted in fingerprint/digest paths — use math.Float64bits",
	Run:  runFloatbits,
}

var fmtPrinters = map[string]bool{
	"Sprintf": true, "Fprintf": true, "Printf": true,
	"Sprint": true, "Fprint": true, "Print": true,
	"Sprintln": true, "Fprintln": true, "Println": true,
	"Appendf": true, "Append": true, "Appendln": true,
	"Errorf": true,
}

func runFloatbits(prog *Program) []Finding {
	var out []Finding
	reach := reachableFrom(prog, deterministicRoots(prog))
	for fi, path := range reach {
		pkg := fi.Pkg
		ast.Inspect(fi.body(), func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			f, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
			if !ok || f.Pkg() == nil {
				return true
			}
			switch f.Pkg().Path() {
			case "strconv":
				if f.Name() == "FormatFloat" || f.Name() == "AppendFloat" {
					out = append(out, prog.finding("floatbits", call.Pos(),
						"strconv.%s in deterministic path %s — encode math.Float64bits instead",
						f.Name(), pathString(path)))
				}
			case "fmt":
				if !fmtPrinters[f.Name()] {
					return true
				}
				// Writers and format strings are never float-typed, so
				// simply flag any float-typed operand.
				for _, a := range call.Args {
					if isFloaty(pkg, a) {
						out = append(out, prog.finding("floatbits", a.Pos(),
							"raw float formatted via fmt.%s in deterministic path %s — use math.Float64bits",
							f.Name(), pathString(path)))
					}
				}
			}
			return true
		})
	}
	return out
}

// isFloaty reports whether an expression's type is a float or a slice,
// array or matrix of floats.
func isFloaty(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	return typeHasFloat(tv.Type, 0)
}

func typeHasFloat(t types.Type, depth int) bool {
	if depth > 3 {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&types.IsFloat != 0
	case *types.Slice:
		return typeHasFloat(u.Elem(), depth+1)
	case *types.Array:
		return typeHasFloat(u.Elem(), depth+1)
	}
	return false
}
