// Package determinism exercises the determinism analyzer: clocks, global
// rand and order-escaping map iteration reachable from a
// //docs:deterministic root are findings; collect-then-sort, keyed map
// inserts and loop-local computation are the blessed patterns.
package determinism

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// Fingerprint is a determinism root using only blessed patterns: collect
// keys then sort, keyed map inserts, integer counters.
//
//docs:deterministic
func Fingerprint(state map[string]int) string {
	var b strings.Builder
	keys := make([]string, 0, len(state))
	for k := range state {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%d;", k, state[k])
	}
	doubled := make(map[string]int, len(state))
	n := 0
	for k, v := range state {
		doubled[k] = 2 * v // keyed insert: order-independent
		n++                // integer counter: order-independent
	}
	fmt.Fprintf(&b, "n=%d;d=%d", n, len(doubled))
	return b.String()
}

// BadPrint writes to an outer builder from inside a map range: iteration
// order escapes into the output.
//
//docs:deterministic
func BadPrint(state map[string]int) string {
	var b strings.Builder
	for k, v := range state { // want determinism "range over map"
		fmt.Fprintf(&b, "%s=%d;", k, v)
	}
	return b.String()
}

// BadCollect collects keys but never sorts them.
//
//docs:deterministic
func BadCollect(state map[string]int) []string {
	keys := make([]string, 0, len(state))
	for k := range state { // want determinism "never sorts"
		keys = append(keys, k)
	}
	return keys
}

// BadClock reads the wall clock inside a deterministic path.
//
//docs:deterministic
func BadClock() int64 {
	return time.Now().UnixNano() // want determinism "wall-clock read time.Now"
}

// BadRand draws from the shared global generator.
//
//docs:deterministic
func BadRand() int {
	return rand.Int() // want determinism "global rand.Int"
}

// Root reaches the violation two hops away: the finding names the path.
//
//docs:deterministic
func Root() int { return middle(nil) }

func middle(m map[int]bool) int { return reached(m) }

// reached is dirty but unannotated; it is caught via reachability.
func reached(m map[int]bool) int {
	for k := range m { // want determinism "returns from inside the loop"
		if k > 0 {
			return k
		}
	}
	return 0
}

// unreached has the same shape as reached but no root reaches it: clean.
func unreached(m map[int]bool) int {
	for k := range m {
		if k > 0 {
			return k
		}
	}
	return 0
}
