// Package floatbits exercises the raw-bits analyzer: a float formatted
// through fmt verbs or strconv in a deterministic path is a finding; the
// math.Float64bits encoding is the blessed form.
package floatbits

import (
	"fmt"
	"math"
	"strconv"
)

// Digest encodes the float as raw bits: clean.
//
//docs:deterministic
func Digest(x float64) string {
	return fmt.Sprintf("%016x", math.Float64bits(x))
}

// BadVerb formats the raw float.
//
//docs:deterministic
func BadVerb(x float64) string {
	return fmt.Sprintf("%v", x) // want floatbits "raw float formatted via fmt.Sprintf"
}

// BadSlice formats a whole float slice.
//
//docs:deterministic
func BadSlice(xs []float64) string {
	return fmt.Sprint(xs) // want floatbits "raw float formatted via fmt.Sprint"
}

// BadStrconv uses the shortest-representation formatter.
//
//docs:deterministic
func BadStrconv(x float64) string {
	return strconv.FormatFloat(x, 'g', -1, 64) // want floatbits "strconv.FormatFloat"
}

// unreachable formats a float but no deterministic root reaches it: clean.
func unreachable(x float64) string {
	return fmt.Sprintf("%g", x)
}
