// Package allow exercises the suppression grammar: a reasoned
// //docs:allow silences its line and the next, a reason-less allow is
// itself a finding and silences nothing, and an unknown directive is
// reported.
package allow

import "time"

// suppressed documents why it reads the wall clock: clean.
func suppressed() time.Time {
	//docs:allow clock fixture: the wall-clock read is the point of this test
	return time.Now()
}

// unexplained carries a reason-less allow: the directive is reported and
// the finding it tried to hide still fires.
func unexplained() time.Time {
	/* want allow "non-empty reason" */ //docs:allow clock
	return time.Now()                   // want clock "wall-clock read time.Now"
}

// mistyped uses a directive verb that does not exist.
//
//docs:frobnicate // want directive "unknown directive"
func mistyped() {}
