// Package clock exercises the clock-injection analyzer: direct wall-clock
// reads are findings, injected clocks are not, and a reasoned allow
// silences a deliberate site.
package clock

import "time"

// bad reads the wall clock directly.
func bad() time.Time {
	return time.Now() // want clock "wall-clock read time.Now"
}

// badSince measures wall time.
func badSince(t0 time.Time) time.Duration {
	return time.Since(t0) // want clock "wall-clock read time.Since"
}

// badValue smuggles the wall clock in as a function value.
func badValue() func() time.Time {
	return time.Now // want clock "wall-clock read time.Now"
}

// good uses an injected clock; no finding.
func good(now func() time.Time) time.Time {
	return now()
}

// allowed documents its wall-clock read.
func allowed() time.Time {
	//docs:allow clock fixture: deliberate wall-clock read with a reason
	return time.Now()
}
