// Package lockorder exercises the lock-order analyzer: acquiring a lock
// while holding one the declared order says must come after it is a
// finding, whether the inversion is direct, annotated (//docs:holds), or
// reached through the call graph.
package lockorder

import "sync"

//docs:lockorder c.mu < r.mu

type campaign struct{ mu sync.Mutex }

type registry struct{ mu sync.Mutex }

// good takes the locks in the declared order: clean.
func good(c *campaign, r *registry) {
	c.mu.Lock()
	r.mu.Lock()
	r.mu.Unlock()
	c.mu.Unlock()
}

// sequential releases r.mu before taking c.mu: the intervals do not
// overlap, so this is clean too.
func sequential(c *campaign, r *registry) {
	r.mu.Lock()
	r.mu.Unlock()
	c.mu.Lock()
	c.mu.Unlock()
}

// inverted is the direct AB-BA: c.mu under r.mu.
func inverted(c *campaign, r *registry) {
	r.mu.Lock()
	c.mu.Lock() // want lockorder "acquires c.mu while holding r.mu"
	c.mu.Unlock()
	r.mu.Unlock()
}

// callback is documented to run with r.mu held (a hook invoked under the
// registry lock); taking c.mu inside it is the same inversion.
//
//docs:holds r.mu
func callback(c *campaign) {
	c.mu.Lock() // want lockorder "acquires c.mu while holding r.mu"
	c.mu.Unlock()
}

// outer propagates its held set into helper through the call graph.
func outer(c *campaign, r *registry) {
	r.mu.Lock()
	helper(c)
	r.mu.Unlock()
}

func helper(c *campaign) {
	c.mu.Lock() // want lockorder "acquires c.mu while holding r.mu"
	c.mu.Unlock()
}
