// Package walswitch exercises the exhaustiveness analyzer: every switch
// over a //docs:exhaustive type must name every constant; a default clause
// does not excuse a missing one.
package walswitch

// Kind tags a record.
//
//docs:exhaustive
type Kind uint8

const (
	KindA Kind = 1
	KindB Kind = 2
	KindC Kind = 3
)

// full handles every kind: clean.
func full(k Kind) int {
	switch k {
	case KindA:
		return 1
	case KindB:
		return 2
	case KindC:
		return 3
	}
	return 0
}

// partial misses KindC; the default clause does not count.
func partial(k Kind) int {
	switch k { // want walswitch "misses KindC"
	case KindA:
		return 1
	case KindB:
		return 2
	default:
		return 0
	}
}

// other switches over a plain int, not the exhaustive type: clean.
func other(n int) int {
	switch n {
	case 1:
		return 1
	default:
		return 0
	}
}
