package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// walswitchAnalyzer makes record-kind dispatch exhaustive: for every type
// declared //docs:exhaustive (wal.Kind), every switch over a value of the
// type — the live apply path, recovery replay, the shadow replica, wire
// encoders — must mention every declared constant of the type. A default
// clause does NOT satisfy a missing constant: the default is the
// unknown-kind error path, and "new kind falls into the error arm" is
// exactly the silent-skip regression this analyzer exists to prevent.
// Adding a KindBatch-style record therefore fails the build until every
// consumer has decided what to do with it.
var walswitchAnalyzer = &Analyzer{
	Name: "walswitch",
	Doc:  "switches over //docs:exhaustive types must handle every constant",
	Run:  runWalswitch,
}

func runWalswitch(prog *Program) []Finding {
	var out []Finding
	for key := range prog.dirs.exhaustive {
		dot := strings.LastIndex(key, ".")
		pkgPath, typeName := key[:dot], key[dot+1:]
		var named types.Type
		for _, pkg := range prog.Packages {
			if pkg.Path == pkgPath {
				if tn, ok := pkg.Types.Scope().Lookup(typeName).(*types.TypeName); ok {
					named = tn.Type()
				}
			}
		}
		if named == nil {
			continue
		}

		// Every declared constant of the type, across the whole program.
		consts := map[string]types.Object{}
		for _, pkg := range prog.Packages {
			scope := pkg.Types.Scope()
			for _, name := range scope.Names() {
				obj := scope.Lookup(name)
				if c, ok := obj.(*types.Const); ok && types.Identical(c.Type(), named) {
					consts[c.Val().ExactString()] = c
				}
			}
		}
		if len(consts) == 0 {
			continue
		}

		for _, pkg := range prog.Packages {
			for _, file := range pkg.Files {
				ast.Inspect(file, func(n ast.Node) bool {
					sw, ok := n.(*ast.SwitchStmt)
					if !ok || sw.Tag == nil {
						return true
					}
					tv, ok := pkg.Info.Types[sw.Tag]
					if !ok || !types.Identical(tv.Type, named) {
						return true
					}
					handled := map[string]bool{}
					for _, stmt := range sw.Body.List {
						cc, ok := stmt.(*ast.CaseClause)
						if !ok {
							continue
						}
						for _, e := range cc.List {
							if cv, ok := pkg.Info.Types[e]; ok && cv.Value != nil {
								handled[cv.Value.ExactString()] = true
							}
						}
					}
					var missing []string
					for val, obj := range consts {
						if !handled[val] {
							missing = append(missing, obj.Name())
						}
					}
					if len(missing) > 0 {
						sort.Strings(missing)
						out = append(out, prog.finding("walswitch", sw.Pos(),
							"switch over %s.%s misses %s — every record kind needs an explicit case (a default does not count)",
							shortPkg(pkgPath), typeName, strings.Join(missing, ", ")))
					}
					return true
				})
			}
		}
	}
	return out
}

func shortPkg(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}
