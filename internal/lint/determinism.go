package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// determinismAnalyzer proves the bit-exactness contract's static half: it
// computes the call graph reachable from every //docs:deterministic root
// (Fingerprint, the snapshot/WAL encoders, the replay entry points) and
// rejects three sources of nondeterminism inside it:
//
//   - wall-clock reads (time.Now/Since/Until),
//   - the global math/rand generators (seeded *rand.Rand values are fine —
//     they replay bit-identically; the package-level functions do not),
//   - iteration over a map whose order can escape the loop: any write to
//     state that outlives the iteration, any call that can see such state,
//     or an early exit. The blessed pattern is collect-keys-then-sort (the
//     sorted-iteration sites in internal/core/fingerprint.go are the
//     model): a loop that only appends keys to a slice is accepted when
//     the slice is sorted later in the same function, and loops whose only
//     effects are keyed map inserts, integer-counter bumps, boolean flags,
//     or computation on loop-local values are order-independent and pass.
//
// Findings name the offending call path from the root, e.g.
// "Fingerprint → encodeWorkers: range over map ...".
var determinismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc:  "nondeterminism (clock, global rand, unsorted map iteration) reachable from //docs:deterministic roots",
	Run:  runDeterminism,
}

// deterministicRoots collects every function carrying //docs:deterministic.
func deterministicRoots(prog *Program) []*funcInfo {
	var roots []*funcInfo
	for _, fi := range prog.funcs.all {
		if _, ok := prog.dirs.marked("deterministic", funcKey(fi.pos())); ok {
			roots = append(roots, fi)
		}
	}
	return roots
}

func runDeterminism(prog *Program) []Finding {
	var out []Finding
	reach := reachableFrom(prog, deterministicRoots(prog))
	for fi, path := range reach {
		pkg := fi.Pkg
		ast.Inspect(fi.body(), func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.SelectorExpr:
				if f, ok := pkg.Info.Uses[node.Sel].(*types.Func); ok && f.Pkg() != nil {
					switch f.Pkg().Path() {
					case "time":
						switch f.Name() {
						case "Now", "Since", "Until":
							out = append(out, prog.finding("determinism", node.Pos(),
								"wall-clock read time.%s in deterministic path %s",
								f.Name(), pathString(path)))
						}
					case "math/rand", "math/rand/v2":
						// Only package-level functions (the shared global
						// source); methods on a seeded *rand.Rand replay
						// bit-identically and pass.
						if f.Type().(*types.Signature).Recv() == nil {
							out = append(out, prog.finding("determinism", node.Pos(),
								"global %s.%s in deterministic path %s — use a seeded *rand.Rand",
								f.Pkg().Name(), f.Name(), pathString(path)))
						}
					}
				}
			case *ast.RangeStmt:
				if f := checkMapRange(prog, fi, node, path); f != nil {
					out = append(out, *f)
				}
			}
			return true
		})
	}
	return out
}

// checkMapRange classifies one range statement: nil if it does not range
// over a map or the iteration order provably cannot escape.
func checkMapRange(prog *Program, fi *funcInfo, rs *ast.RangeStmt, path []string) *Finding {
	pkg := fi.Pkg
	tv, ok := pkg.Info.Types[rs.X]
	if !ok {
		return nil
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return nil
	}

	local := loopLocals(pkg, rs)
	var appended []types.Object // outer slices fed by append inside the loop
	var sensitive ast.Node
	var why string
	mark := func(n ast.Node, reason string) {
		if sensitive == nil {
			sensitive, why = n, reason
		}
	}

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if sensitive != nil {
			return false
		}
		switch node := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range node.Lhs {
				var rhs ast.Expr
				if len(node.Rhs) == len(node.Lhs) {
					rhs = node.Rhs[i]
				} else if len(node.Rhs) == 1 {
					rhs = node.Rhs[0]
				}
				checkWrite(pkg, local, lhs, rhs, node.Tok, &appended, mark)
			}
		case *ast.IncDecStmt:
			checkWrite(pkg, local, node.X, nil, token.INC, &appended, mark)
		case *ast.CallExpr:
			if callEscapes(pkg, local, node) {
				mark(node, "calls "+callName(node)+" on state that outlives the iteration")
			}
		case *ast.ReturnStmt:
			mark(node, "returns from inside the loop")
		case *ast.BranchStmt:
			if node.Tok == token.BREAK || node.Tok == token.GOTO {
				mark(node, node.Tok.String()+" exits the loop early")
			}
		case *ast.DeferStmt, *ast.GoStmt, *ast.SendStmt:
			mark(n, "defers, spawns or sends from inside the loop")
		}
		return true
	})

	if sensitive != nil {
		return ptr(prog.finding("determinism", rs.Pos(),
			"range over map in deterministic path %s: %s — iteration order can escape; sort keys first",
			pathString(path), why))
	}
	// Collect-then-sort: every outer slice the loop appended to must be
	// sorted later in the enclosing function.
	for _, obj := range appended {
		if !sortedLater(pkg, fi, obj, rs.End()) {
			return ptr(prog.finding("determinism", rs.Pos(),
				"range over map in deterministic path %s collects %q but never sorts it",
				pathString(path), obj.Name()))
		}
	}
	return nil
}

func ptr(f Finding) *Finding { return &f }

// loopLocals returns the objects declared inside the loop (including the
// range key/value variables): writes confined to them die with the
// iteration.
func loopLocals(pkg *Package, rs *ast.RangeStmt) map[types.Object]bool {
	local := map[types.Object]bool{}
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pkg.Info.Defs[id]; obj != nil {
				local[obj] = true
			}
		}
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pkg.Info.Defs[id]; obj != nil {
				local[obj] = true
			}
		}
		return true
	})
	return local
}

// rootObj strips selectors, indexes, derefs and parens down to the base
// identifier's object.
func rootObj(pkg *Package, e ast.Expr) types.Object {
	for {
		switch t := e.(type) {
		case *ast.Ident:
			if obj := pkg.Info.Uses[t]; obj != nil {
				return obj
			}
			return pkg.Info.Defs[t]
		case *ast.SelectorExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.ParenExpr:
			e = t.X
		case *ast.UnaryExpr:
			e = t.X
		case *ast.CallExpr:
			e = t.Fun
		default:
			return nil
		}
	}
}

// checkWrite classifies one assignment target inside a map-range body.
func checkWrite(pkg *Package, local map[types.Object]bool, lhs, rhs ast.Expr, tok token.Token, appended *[]types.Object, mark func(ast.Node, string)) {
	if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
		return
	}
	root := rootObj(pkg, lhs)
	if root != nil && local[root] {
		return // dies with the iteration
	}
	// Keyed map insert: m[k] = v is order-independent.
	if ix, ok := lhs.(*ast.IndexExpr); ok {
		if tv, ok := pkg.Info.Types[ix.X]; ok {
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				return
			}
		}
	}
	// x = append(x, ...) into an outer slice: allowed if sorted later.
	if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if b, isB := pkg.Info.Uses[id].(*types.Builtin); isB && b.Name() == "append" && root != nil {
				*appended = append(*appended, root)
				return
			}
		}
	}
	// Integer counter bumps and boolean flags are order-independent.
	if tok == token.INC || tok == token.DEC || tok == token.ADD_ASSIGN ||
		tok == token.OR_ASSIGN || tok == token.AND_ASSIGN || tok == token.XOR_ASSIGN {
		if tv, ok := pkg.Info.Types[lhs]; ok {
			if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
				return
			}
		}
	}
	if tok == token.ASSIGN || tok == token.DEFINE {
		if id, ok := ast.Unparen(rhs).(*ast.Ident); ok && (id.Name == "true" || id.Name == "false") {
			return
		}
	}
	name := "a value"
	if root != nil {
		name = root.Name()
	}
	mark(lhs, "writes "+name+", which outlives the iteration")
}

// callEscapes reports whether a call inside a map-range body can observe
// or mutate state that outlives the iteration: any argument (or receiver
// chain) rooted outside the loop. Builtins and conversions never escape.
func callEscapes(pkg *Package, local map[types.Object]bool, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch pkg.Info.Uses[fun].(type) {
		case *types.Builtin:
			return false
		case *types.TypeName:
			return false // conversion
		}
	case *ast.SelectorExpr:
		if _, ok := pkg.Info.Uses[fun.Sel].(*types.TypeName); ok {
			return false
		}
	case *ast.ArrayType, *ast.MapType, *ast.FuncType:
		return false // conversion to composite type
	}
	// Receiver chain of a method call counts as an argument.
	args := append([]ast.Expr(nil), call.Args...)
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if _, isPkg := pkg.Info.Uses[baseIdent(sel.X)].(*types.PkgName); !isPkg {
			args = append(args, sel.X)
		}
	}
	for _, a := range args {
		if isPureLeaf(pkg, a) {
			continue
		}
		root := rootObj(pkg, a)
		if root == nil || !local[root] {
			return true
		}
	}
	return false
}

// isPureLeaf reports expressions that carry no aliased state: literals and
// constants.
func isPureLeaf(pkg *Package, e ast.Expr) bool {
	if tv, ok := pkg.Info.Types[ast.Unparen(e)]; ok && tv.Value != nil {
		return true
	}
	switch ast.Unparen(e).(type) {
	case *ast.BasicLit, *ast.CompositeLit:
		return true
	}
	return false
}

func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch t := e.(type) {
		case *ast.Ident:
			return t
		case *ast.SelectorExpr:
			e = t.X
		case *ast.ParenExpr:
			e = t.X
		default:
			return nil
		}
	}
}

func callName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if base := baseIdent(fun); base != nil && base != fun.Sel {
			return base.Name + "…." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "a function value"
}

// sortedLater reports whether obj is passed to a recognized sort call
// after pos in the enclosing function.
func sortedLater(pkg *Package, fi *funcInfo, obj types.Object, pos token.Pos) bool {
	found := false
	ast.Inspect(fi.body(), func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos || len(call.Args) == 0 {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		f, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
		if !ok || f.Pkg() == nil {
			return true
		}
		isSort := false
		switch f.Pkg().Path() {
		case "sort":
			switch f.Name() {
			case "Strings", "Ints", "Float64s", "Slice", "SliceStable", "Sort", "Stable":
				isSort = true
			}
		case "slices":
			switch f.Name() {
			case "Sort", "SortFunc", "SortStableFunc":
				isSort = true
			}
		}
		if isSort && rootObj(pkg, call.Args[0]) == obj {
			found = true
			return false
		}
		return true
	})
	return found
}
