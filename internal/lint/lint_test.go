package lint

import (
	"bufio"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRE matches a golden expectation comment in a fixture file:
//
//	expr // want <analyzer> "message substring"
//
// The expectation binds to the line it sits on; analyzers that anchor
// findings on a range statement put the comment on the `for` line. The
// block form `/* want ... */` exists for lines where a trailing line
// comment would change what is being tested (a //docs: directive swallows
// the rest of its line).
var wantRE = regexp.MustCompile(`(?://|/\*) want (\w+) "([^"]*)"`)

type expectation struct {
	file     string // base name of the fixture file
	line     int
	analyzer string
	substr   string
	matched  bool
}

// loadExpectations scans every .go file in dir for want comments.
func loadExpectations(t *testing.T, dir string) []*expectation {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []*expectation
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			for _, m := range wantRE.FindAllStringSubmatch(sc.Text(), -1) {
				out = append(out, &expectation{file: e.Name(), line: line, analyzer: m[1], substr: m[2]})
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	return out
}

// testFixture type-checks one testdata/src package, runs the given
// analyzers, and holds the findings to the fixture's want comments — every
// finding must be expected, every expectation must fire. Lines without a
// want comment double as the negative cases: a finding there fails the
// test.
func testFixture(t *testing.T, name string, analyzers ...*Analyzer) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	prog, err := LoadPackages(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	findings := Run(prog, analyzers)
	want := loadExpectations(t, dir)
	if len(want) == 0 {
		t.Fatalf("fixture %s declares no want comments", name)
	}
	for _, f := range findings {
		base := filepath.Base(f.Pos.Filename)
		matched := false
		for _, w := range want {
			if !w.matched && w.file == base && w.line == f.Pos.Line &&
				w.analyzer == f.Analyzer && strings.Contains(f.Message, w.substr) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range want {
		if !w.matched {
			t.Errorf("%s:%d: want %s finding matching %q, got none", w.file, w.line, w.analyzer, w.substr)
		}
	}
}

func TestClockFixture(t *testing.T)       { testFixture(t, "clock", clockAnalyzer) }
func TestDeterminismFixture(t *testing.T) { testFixture(t, "determinism", determinismAnalyzer) }
func TestWalswitchFixture(t *testing.T)   { testFixture(t, "walswitch", walswitchAnalyzer) }
func TestLockorderFixture(t *testing.T)   { testFixture(t, "lockorder", lockorderAnalyzer) }
func TestFloatbitsFixture(t *testing.T)   { testFixture(t, "floatbits", floatbitsAnalyzer) }

// TestAllowFixture exercises the suppression grammar: a reasoned allow
// silences its line, a reason-less allow is itself a finding and silences
// nothing, and an unknown directive is reported.
func TestAllowFixture(t *testing.T) { testFixture(t, "allow", clockAnalyzer) }

// TestRepoIsClean is the meta-test: the full analyzer suite over the real
// module must report nothing. Every deliberate exception in the tree
// carries a //docs:allow with a reason, so a new finding here is a real
// contract violation (or a new exception that needs explaining).
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module type-check is slow; skipped with -short")
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	findings := Run(prog, Analyzers())
	TrimPaths(findings, root)
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
