package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// clockAnalyzer forbids wall-clock reads — time.Now calls (or taking
// time.Now as a function value, which is how injectable-clock defaults
// smuggle it in), time.Since, time.Until — in the library packages, where
// every behavior must come from an injectable Clock or from logged state.
// The command binaries (cmd/..., examples/...) are measurement and demo
// surfaces and are exempt.
//
// Every legitimate wall-clock read carries //docs:allow clock <reason>,
// so the allowlist is a complete, greppable inventory of the system's
// wall-clock dependencies.
var clockAnalyzer = &Analyzer{
	Name: "clock",
	Doc:  "wall-clock reads (time.Now/Since/Until) outside the explicit allowlist",
	Run:  runClock,
}

// clockExempt reports whether a package path is outside the clock
// contract: binaries and demos measure wall time on purpose.
func clockExempt(path string) bool {
	for _, seg := range []string{"/cmd/", "/examples/"} {
		if strings.Contains(path+"/", seg) {
			return true
		}
	}
	return false
}

func runClock(prog *Program) []Finding {
	var out []Finding
	for _, pkg := range prog.Packages {
		if clockExempt(pkg.Path) {
			continue
		}
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				obj, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
				if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
					return true
				}
				switch obj.Name() {
				case "Now", "Since", "Until":
					out = append(out, prog.finding("clock", sel.Pos(),
						"wall-clock read time.%s — inject a Clock or annotate //docs:allow clock <reason>",
						obj.Name()))
				}
				return true
			})
		}
	}
	return out
}
