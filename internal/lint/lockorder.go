package lint

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// lockorderAnalyzer statically detects the two deadlock shapes this repo
// has already found by hand (the rateMu→Campaign AB-BA in the /stats
// handler, r.mu-under-c.mu inversions in the registry): acquiring a lock
// while holding one that the declared order says must come AFTER it.
//
// It is annotation-driven:
//
//	//docs:lockorder c.mu < r.mu     declares the legal order (transitive)
//	//docs:holds c.mu                this function runs with c.mu held
//	                                 (e.g. a callback invoked under a lock)
//	//docs:acquires r.mu             this function acquires r.mu in a way
//	                                 the syntactic scan cannot see
//
// Lock identity is the literal receiver spelling at the Lock/RLock call —
// "c.mu", "r.mu", "s.rateMu" — which this repo keeps unique by its
// consistent receiver naming. The analyzer also reads Lock/Unlock pairs
// syntactically and tracks position intervals, so a call made AFTER an
// Unlock (or before the Lock) is correctly treated as lock-free; an
// Unlock inside a defer holds to the end of the function. Held sets
// propagate through the static call graph, and a finding names the full
// call path from the holder to the offending acquisition.
var lockorderAnalyzer = &Analyzer{
	Name: "lockorder",
	Doc:  "lock acquisitions violating a declared //docs:lockorder",
	Run:  runLockorder,
}

// lockEvent is one syntactic Lock/RLock with the interval it covers.
type lockEvent struct {
	lock       string
	pos        token.Pos // the Lock call
	start, end token.Pos // held interval within the body
}

// lockFacts is the per-function lock model.
type lockFacts struct {
	holds    []string // //docs:holds — held for the whole body
	acquires []string // //docs:acquires — treated as held at every call
	events   []lockEvent
	calls    []lockCall
}

type lockCall struct {
	pos    token.Pos
	callee *funcInfo
}

func runLockorder(prog *Program) []Finding {
	names := prog.dirs.lockNames()
	if len(names) == 0 {
		return nil
	}
	universe := append(append([]*funcInfo(nil), prog.funcs.all...), prog.funcs.lits...)
	facts := map[*funcInfo]*lockFacts{}
	for _, fi := range universe {
		facts[fi] = gatherLockFacts(prog, fi, names)
	}

	var out []Finding
	seenFinding := map[string]bool{}
	report := func(pos token.Pos, acquired, held string, path []string) {
		key := prog.Fset.Position(pos).String() + "|" + acquired + "|" + held
		if seenFinding[key] {
			return
		}
		seenFinding[key] = true
		out = append(out, prog.finding("lockorder", pos,
			"acquires %s while holding %s (declared order: %s before %s; path: %s)",
			acquired, held, acquired, held, pathString(path)))
	}

	// visit explores fi with the inherited held set, checking every
	// acquisition (annotated or syntactic) against it and propagating
	// through call sites where anything is held.
	type memoKey struct {
		fi  *funcInfo
		key string
	}
	memo := map[memoKey]bool{}
	var visit func(fi *funcInfo, held map[string]bool, path []string, depth int)
	visit = func(fi *funcInfo, held map[string]bool, path []string, depth int) {
		if depth > 48 {
			return
		}
		mk := memoKey{fi, heldKey(held)}
		if memo[mk] {
			return
		}
		memo[mk] = true
		f := facts[fi]

		effective := map[string]bool{}
		for l := range held {
			effective[l] = true
		}
		for _, l := range f.holds {
			effective[l] = true
		}

		check := func(pos token.Pos, lock string, at map[string]bool) {
			for h := range at {
				if h != lock && prog.dirs.ordered(lock, h) {
					report(pos, lock, h, path)
				}
			}
		}
		for _, l := range f.acquires {
			check(fi.pos(), l, effective)
		}
		for _, ev := range f.events {
			at := map[string]bool{}
			for l := range effective {
				at[l] = true
			}
			for _, other := range f.events {
				if other.lock != ev.lock && other.start < ev.pos && ev.pos < other.end {
					at[other.lock] = true
				}
			}
			check(ev.pos, ev.lock, at)
		}

		for _, c := range f.calls {
			at := map[string]bool{}
			for l := range effective {
				at[l] = true
			}
			for _, l := range f.acquires {
				at[l] = true
			}
			for _, ev := range f.events {
				if ev.start <= c.pos && c.pos < ev.end {
					at[ev.lock] = true
				}
			}
			if len(at) == 0 {
				continue
			}
			visit(c.callee, at, append(append([]string(nil), path...), c.callee.Name), depth+1)
		}
	}

	for _, fi := range universe {
		visit(fi, nil, []string{fi.Name}, 0)
	}
	return out
}

func heldKey(held map[string]bool) string {
	if len(held) == 0 {
		return ""
	}
	ls := make([]string, 0, len(held))
	for l := range held {
		ls = append(ls, l)
	}
	sort.Strings(ls)
	return strings.Join(ls, ",")
}

// gatherLockFacts scans one function's own body — nested literals
// excluded, they are analyzed standalone — for lock events and call
// sites.
func gatherLockFacts(prog *Program, fi *funcInfo, lockNames map[string]bool) *lockFacts {
	f := &lockFacts{}
	key := funcKey(fi.pos())
	if args, ok := prog.dirs.marked("holds", key); ok {
		f.holds = append(f.holds, args...)
	}
	if args, ok := prog.dirs.marked("acquires", key); ok {
		f.acquires = append(f.acquires, args...)
	}

	body := fi.body()
	if body == nil {
		return f
	}
	type release struct {
		lock string
		pos  token.Pos
	}
	var releases []release
	walkOwn(body, fi.Lit, func(n ast.Node, inDefer bool) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if ok {
			lock := exprText(sel.X)
			if lockNames[lock] {
				switch sel.Sel.Name {
				case "Lock", "RLock":
					f.events = append(f.events, lockEvent{lock: lock, pos: call.Pos(), start: call.Pos(), end: body.End()})
					return
				case "Unlock", "RUnlock":
					if !inDefer {
						releases = append(releases, release{lock, call.Pos()})
					}
					return
				}
			}
		}
		if obj := calleeOf(fi.Pkg, call); obj != nil {
			if callee, ok := prog.funcs.byObj[obj]; ok {
				f.calls = append(f.calls, lockCall{pos: call.Pos(), callee: callee})
			}
		}
	})
	// Close each acquisition at the first later non-deferred release of
	// the same lock.
	for i := range f.events {
		ev := &f.events[i]
		for _, r := range releases {
			if r.lock == ev.lock && r.pos > ev.pos && r.pos < ev.end {
				ev.end = r.pos
				break
			}
		}
	}
	return f
}

// walkOwn walks a function body without descending into nested function
// literals (self is the literal being walked, when walking a literal).
func walkOwn(body *ast.BlockStmt, self *ast.FuncLit, fn func(n ast.Node, inDefer bool)) {
	var walk func(n ast.Node, inDefer bool)
	walk = func(n ast.Node, inDefer bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			if m == nil {
				return false
			}
			if lit, ok := m.(*ast.FuncLit); ok && lit != self {
				return false
			}
			if d, ok := m.(*ast.DeferStmt); ok {
				fn(d.Call, true)
				for _, a := range d.Call.Args {
					walk(a, false)
				}
				return false
			}
			fn(m, inDefer)
			return true
		})
	}
	walk(body, false)
}

// exprText renders a selector chain as written: "s.rateMu", "c.mu".
func exprText(e ast.Expr) string {
	switch t := ast.Unparen(e).(type) {
	case *ast.Ident:
		return t.Name
	case *ast.SelectorExpr:
		return exprText(t.X) + "." + t.Sel.Name
	case *ast.StarExpr:
		return exprText(t.X)
	}
	return "<expr>"
}
