// Package model defines the shared data model of the DOCS system —
// Definitions 1–4 of the paper: the domain set D, tasks with domain vectors
// r^t, workers with quality vectors q^w, and answers with (possibly hidden)
// ground truth v*.
//
// Conventions used throughout the repository:
//   - domains, choices and tasks are 0-indexed (the paper is 1-indexed);
//   - a task's ground truth of NoTruth (-1) means "unknown";
//   - all probability vectors sum to 1 within Tolerance.
package model

import (
	"fmt"
	"sort"

	"docs/internal/mathx"
)

// Tolerance is the numeric slack accepted when validating distributions.
const Tolerance = 1e-6

// NoTruth marks a task whose ground truth is unknown.
const NoTruth = -1

// DomainSet is the fixed, ordered set of domains D = {d_1, ..., d_m}
// (Definition 1) used to interpret tasks and profile workers.
type DomainSet struct {
	names []string
	index map[string]int
}

// NewDomainSet builds a DomainSet from the given names. Names must be unique
// and non-empty.
func NewDomainSet(names []string) (*DomainSet, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("model: domain set must be non-empty")
	}
	ds := &DomainSet{
		names: append([]string(nil), names...),
		index: make(map[string]int, len(names)),
	}
	for i, n := range names {
		if n == "" {
			return nil, fmt.Errorf("model: domain %d has empty name", i)
		}
		if _, dup := ds.index[n]; dup {
			return nil, fmt.Errorf("model: duplicate domain %q", n)
		}
		ds.index[n] = i
	}
	return ds, nil
}

// MustDomainSet is NewDomainSet that panics on error; for package-level
// catalogues and tests.
func MustDomainSet(names []string) *DomainSet {
	ds, err := NewDomainSet(names)
	if err != nil {
		panic(err)
	}
	return ds
}

// Size returns m, the number of domains.
func (d *DomainSet) Size() int { return len(d.names) }

// Name returns the name of domain k.
func (d *DomainSet) Name(k int) string { return d.names[k] }

// Names returns a copy of the ordered domain names.
func (d *DomainSet) Names() []string { return append([]string(nil), d.names...) }

// Index returns the index of the named domain and whether it exists.
func (d *DomainSet) Index(name string) (int, bool) {
	k, ok := d.index[name]
	return k, ok
}

// DomainVector is a task's distribution r^t over the domain set
// (Definition 2): r_k ∈ [0,1], Σ r_k = 1.
type DomainVector []float64

// Validate checks that v is a distribution of the expected size m.
func (v DomainVector) Validate(m int) error {
	if len(v) != m {
		return fmt.Errorf("model: domain vector has size %d, want %d", len(v), m)
	}
	return mathx.CheckDistribution(v, Tolerance)
}

// Top returns the index of the most related domain.
func (v DomainVector) Top() int { return mathx.ArgMax(v) }

// QualityVector is a worker's per-domain accuracy q^w (Definition 3):
// q_k ∈ [0,1] is the probability the worker answers a pure domain-k task
// correctly.
type QualityVector []float64

// Validate checks that q has size m and entries in [0,1].
func (q QualityVector) Validate(m int) error {
	if len(q) != m {
		return fmt.Errorf("model: quality vector has size %d, want %d", len(q), m)
	}
	for k, x := range q {
		if x < -Tolerance || x > 1+Tolerance || x != x {
			//docs:allow floatbits error text is human-facing; never encoded or digested
			return fmt.Errorf("model: quality[%d] = %g outside [0,1]", k, x)
		}
	}
	return nil
}

// Expected returns the expected accuracy of a worker with quality q on a
// task with domain vector r: Σ_k r_k·q_k. This is the answer model of
// Equation 4 marginalised over the task's true domain.
func (q QualityVector) Expected(r DomainVector) float64 {
	var a float64
	for k := range q {
		if k < len(r) {
			a += q[k] * r[k]
		}
	}
	return a
}

// Task is a multiple-choice task (Definition 2): a text description,
// ℓ choices, a domain vector over D, and an optional hidden ground truth.
type Task struct {
	// ID identifies the task within its task set.
	ID int
	// Text is the natural-language description shown to workers and fed to
	// the entity linker.
	Text string
	// Choices are the ℓ possible answers.
	Choices []string
	// Domain is the task's domain vector r^t. May be nil before DVE runs.
	Domain DomainVector
	// Truth is the index of the correct choice, or NoTruth if unknown.
	// It is hidden from inference and used only for evaluation and for
	// golden tasks.
	Truth int
	// TrueDomain optionally records the single labelled domain used by the
	// domain-detection experiments (Figure 3); NoTruth when unlabelled.
	TrueDomain int
}

// NumChoices returns ℓ for the task.
func (t *Task) NumChoices() int { return len(t.Choices) }

// Validate checks structural invariants of the task against a domain set of
// size m. A nil Domain is allowed (DVE has not run yet).
func (t *Task) Validate(m int) error {
	if len(t.Choices) < 2 {
		return fmt.Errorf("model: task %d has %d choices, want >= 2", t.ID, len(t.Choices))
	}
	if t.Truth != NoTruth && (t.Truth < 0 || t.Truth >= len(t.Choices)) {
		return fmt.Errorf("model: task %d truth %d out of range [0,%d)", t.ID, t.Truth, len(t.Choices))
	}
	if t.TrueDomain != NoTruth && (t.TrueDomain < 0 || t.TrueDomain >= m) {
		return fmt.Errorf("model: task %d true domain %d out of range [0,%d)", t.ID, t.TrueDomain, m)
	}
	if t.Domain != nil {
		if err := t.Domain.Validate(m); err != nil {
			return fmt.Errorf("model: task %d: %w", t.ID, err)
		}
	}
	return nil
}

// Answer records that a worker chose one of a task's options
// (Definition 4). Choice is 0-indexed.
type Answer struct {
	Worker string
	Task   int
	Choice int
}

// AnswerSet groups the collected answers of a task set, indexed both by
// task (V(i) in the paper) and by worker (T(w)).
type AnswerSet struct {
	byTask   map[int][]Answer
	byWorker map[string][]Answer
	all      []Answer // insertion order, preserved by Clone
}

// NewAnswerSet returns an empty AnswerSet.
func NewAnswerSet() *AnswerSet {
	return &AnswerSet{
		byTask:   make(map[int][]Answer),
		byWorker: make(map[string][]Answer),
	}
}

// Add records an answer. A worker answering the same task twice is the
// caller's responsibility to prevent (the paper assumes at most once); Add
// returns an error if it detects a duplicate.
func (s *AnswerSet) Add(a Answer) error {
	for _, prev := range s.byWorker[a.Worker] {
		if prev.Task == a.Task {
			return fmt.Errorf("model: worker %q already answered task %d", a.Worker, a.Task)
		}
	}
	s.byTask[a.Task] = append(s.byTask[a.Task], a)
	s.byWorker[a.Worker] = append(s.byWorker[a.Worker], a)
	s.all = append(s.all, a)
	return nil
}

// ForTask returns V(i): the answers collected for task i. The returned slice
// must not be modified.
func (s *AnswerSet) ForTask(i int) []Answer { return s.byTask[i] }

// ForWorker returns the answers given by worker w (T(w) with choices).
// The returned slice must not be modified.
func (s *AnswerSet) ForWorker(w string) []Answer { return s.byWorker[w] }

// Workers returns the distinct worker IDs that have answered, in sorted
// order. Sorted here — not in callers — so map iteration order can never
// leak into inference accumulation order through a caller that forgets.
func (s *AnswerSet) Workers() []string {
	ws := make([]string, 0, len(s.byWorker))
	for w := range s.byWorker {
		ws = append(ws, w)
	}
	sort.Strings(ws)
	return ws
}

// Tasks returns the distinct task IDs that have received answers, in
// sorted order (see Workers for why the sort lives here).
func (s *AnswerSet) Tasks() []int {
	ts := make([]int, 0, len(s.byTask))
	for t := range s.byTask {
		ts = append(ts, t)
	}
	sort.Ints(ts)
	return ts
}

// Len returns the total number of answers.
func (s *AnswerSet) Len() int { return len(s.all) }

// All returns the answers in insertion order. The returned slice must not
// be modified.
func (s *AnswerSet) All() []Answer { return s.all }

// Has reports whether worker w has answered task i.
func (s *AnswerSet) Has(w string, i int) bool {
	for _, a := range s.byWorker[w] {
		if a.Task == i {
			return true
		}
	}
	return false
}

// Clone returns a deep copy of the answer set. Insertion order is
// preserved exactly: several consumers accumulate floating-point sums over
// ForTask/ForWorker slices, and a clone that reordered them (e.g. by
// iterating the internal maps) would perturb results in the last ulp and
// break run-to-run reproducibility.
func (s *AnswerSet) Clone() *AnswerSet {
	c := NewAnswerSet()
	for _, a := range s.all {
		c.byTask[a.Task] = append(c.byTask[a.Task], a)
		c.byWorker[a.Worker] = append(c.byWorker[a.Worker], a)
	}
	c.all = append([]Answer(nil), s.all...)
	return c
}
