package model

import (
	"testing"
)

func TestNewDomainSet(t *testing.T) {
	ds, err := NewDomainSet([]string{"politics", "sports", "films"})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Size() != 3 {
		t.Errorf("Size = %d, want 3", ds.Size())
	}
	if k, ok := ds.Index("sports"); !ok || k != 1 {
		t.Errorf("Index(sports) = %d,%v, want 1,true", k, ok)
	}
	if _, ok := ds.Index("cooking"); ok {
		t.Error("Index(cooking) should not exist")
	}
	if ds.Name(2) != "films" {
		t.Errorf("Name(2) = %q", ds.Name(2))
	}
}

func TestNewDomainSetErrors(t *testing.T) {
	if _, err := NewDomainSet(nil); err == nil {
		t.Error("empty domain set accepted")
	}
	if _, err := NewDomainSet([]string{"a", "a"}); err == nil {
		t.Error("duplicate domain accepted")
	}
	if _, err := NewDomainSet([]string{"a", ""}); err == nil {
		t.Error("empty domain name accepted")
	}
}

func TestDomainSetNamesIsCopy(t *testing.T) {
	ds := MustDomainSet([]string{"a", "b"})
	names := ds.Names()
	names[0] = "mutated"
	if ds.Name(0) != "a" {
		t.Error("Names() leaked internal slice")
	}
}

func TestDomainVectorValidate(t *testing.T) {
	v := DomainVector{0, 0.78, 0.22}
	if err := v.Validate(3); err != nil {
		t.Errorf("valid vector rejected: %v", err)
	}
	if err := v.Validate(4); err == nil {
		t.Error("wrong size accepted")
	}
	if err := (DomainVector{0.5, 0.4}).Validate(2); err == nil {
		t.Error("sum 0.9 accepted")
	}
}

func TestDomainVectorTop(t *testing.T) {
	if top := (DomainVector{0, 0.78, 0.22}).Top(); top != 1 {
		t.Errorf("Top = %d, want 1", top)
	}
}

func TestQualityVectorValidate(t *testing.T) {
	q := QualityVector{0.3, 0.9, 0.6}
	if err := q.Validate(3); err != nil {
		t.Errorf("valid quality rejected: %v", err)
	}
	if err := (QualityVector{1.5, 0, 0}).Validate(3); err == nil {
		t.Error("quality > 1 accepted")
	}
	if err := q.Validate(2); err == nil {
		t.Error("wrong size accepted")
	}
}

func TestQualityExpected(t *testing.T) {
	q := QualityVector{0.3, 0.9, 0.6}
	r := DomainVector{0, 0.78, 0.22}
	want := 0.9*0.78 + 0.6*0.22
	if got := q.Expected(r); !almost(got, want) {
		t.Errorf("Expected = %g, want %g", got, want)
	}
}

func almost(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}

func TestTaskValidate(t *testing.T) {
	task := &Task{ID: 1, Text: "x", Choices: []string{"yes", "no"}, Truth: 0, TrueDomain: NoTruth}
	if err := task.Validate(3); err != nil {
		t.Errorf("valid task rejected: %v", err)
	}
	bad := &Task{ID: 2, Choices: []string{"only"}, Truth: NoTruth, TrueDomain: NoTruth}
	if err := bad.Validate(3); err == nil {
		t.Error("single-choice task accepted")
	}
	badTruth := &Task{ID: 3, Choices: []string{"a", "b"}, Truth: 5, TrueDomain: NoTruth}
	if err := badTruth.Validate(3); err == nil {
		t.Error("out-of-range truth accepted")
	}
	badDom := &Task{ID: 4, Choices: []string{"a", "b"}, Truth: NoTruth, TrueDomain: 9}
	if err := badDom.Validate(3); err == nil {
		t.Error("out-of-range true domain accepted")
	}
	badVec := &Task{ID: 5, Choices: []string{"a", "b"}, Truth: NoTruth, TrueDomain: NoTruth,
		Domain: DomainVector{0.5, 0.4, 0.2}}
	if err := badVec.Validate(3); err == nil {
		t.Error("non-normalized domain vector accepted")
	}
}

func TestAnswerSet(t *testing.T) {
	s := NewAnswerSet()
	mustAdd := func(a Answer) {
		t.Helper()
		if err := s.Add(a); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(Answer{Worker: "w1", Task: 0, Choice: 0})
	mustAdd(Answer{Worker: "w2", Task: 0, Choice: 1})
	mustAdd(Answer{Worker: "w1", Task: 1, Choice: 1})

	if s.Len() != 3 {
		t.Errorf("Len = %d, want 3", s.Len())
	}
	if n := len(s.ForTask(0)); n != 2 {
		t.Errorf("ForTask(0) has %d answers, want 2", n)
	}
	if n := len(s.ForWorker("w1")); n != 2 {
		t.Errorf("ForWorker(w1) has %d answers, want 2", n)
	}
	if !s.Has("w1", 1) || s.Has("w2", 1) {
		t.Error("Has gave wrong membership")
	}
	if err := s.Add(Answer{Worker: "w1", Task: 0, Choice: 1}); err == nil {
		t.Error("duplicate answer accepted")
	}
	if got := len(s.Workers()); got != 2 {
		t.Errorf("Workers = %d, want 2", got)
	}
	if got := len(s.Tasks()); got != 2 {
		t.Errorf("Tasks = %d, want 2", got)
	}
}

func TestAnswerSetClone(t *testing.T) {
	s := NewAnswerSet()
	if err := s.Add(Answer{Worker: "w", Task: 0, Choice: 0}); err != nil {
		t.Fatal(err)
	}
	c := s.Clone()
	if err := c.Add(Answer{Worker: "w", Task: 1, Choice: 0}); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 || c.Len() != 2 {
		t.Errorf("clone not independent: orig %d, clone %d", s.Len(), c.Len())
	}
}
