// Package entitylink implements the entity-linking substrate of DOCS.
//
// The paper uses Wikifier to (1) detect entity mentions in a task's text and
// (2) rank, for each mention, its top-c candidate concepts with a probability
// distribution p_i. This package provides the same contract against the
// in-repo knowledge base: longest-match mention detection over the KB alias
// table, followed by candidate ranking that combines each concept's
// popularity prior with context-keyword overlap against the rest of the task
// text (the "semantic meaning in the text" signal of Section 3, Step 1).
package entitylink

import (
	"strings"

	"docs/internal/kb"
	"docs/internal/mathx"
)

// DefaultTopC is the number of candidate concepts kept per entity, matching
// the paper's Wikifier configuration (top-20).
const DefaultTopC = 20

// DefaultContextBoost is the multiplicative bonus per context keyword hit.
const DefaultContextBoost = 0.75

// Candidate is one possible concept a mention may link to, with the
// probability that this link is the correct one (p_{i,j} in the paper).
type Candidate struct {
	Concept *kb.Concept
	Prob    float64
}

// Entity is a detected mention together with its ranked candidates; it
// corresponds to e_i with distribution p_i in Section 3.
type Entity struct {
	// Mention is the surface form as it appeared in the text.
	Mention string
	// Start is the index of the mention's first token in the tokenized text.
	Start int
	// Candidates are the top-c concepts, in descending probability.
	Candidates []Candidate
}

// Linker detects and disambiguates entities against a knowledge base.
type Linker struct {
	kb *kb.KB
	// TopC bounds the number of candidates kept per entity.
	TopC int
	// ContextBoost scales how much each context keyword hit increases a
	// candidate's score relative to its prior.
	ContextBoost float64
}

// New returns a Linker over the given knowledge base with default settings.
func New(k *kb.KB) *Linker {
	return &Linker{kb: k, TopC: DefaultTopC, ContextBoost: DefaultContextBoost}
}

// Link detects entity mentions in text and returns them with ranked,
// normalized candidate distributions. Detection is greedy longest-match over
// the KB alias table: at each token position the longest known alias wins
// and the scan resumes after it, so "Golden State Warriors" links as one
// entity rather than three.
func (l *Linker) Link(text string) []Entity {
	tokens := Tokenize(text)
	if len(tokens) == 0 {
		return nil
	}
	maxWords := l.kb.MaxAliasWords()
	bag := contextBag(tokens)

	var out []Entity
	for i := 0; i < len(tokens); {
		matched := 0
		var mention string
		limit := maxWords
		if rem := len(tokens) - i; rem < limit {
			limit = rem
		}
		for n := limit; n >= 1; n-- {
			candidate := strings.Join(tokens[i:i+n], " ")
			if l.kb.HasAlias(candidate) {
				matched = n
				mention = candidate
				break
			}
		}
		if matched == 0 {
			i++
			continue
		}
		ent := l.disambiguate(mention, i, bag)
		if len(ent.Candidates) > 0 {
			out = append(out, ent)
		}
		i += matched
	}
	return out
}

// disambiguate ranks the mention's candidates by prior × context fit and
// normalizes to a distribution, truncated to TopC.
func (l *Linker) disambiguate(mention string, start int, bag map[string]bool) Entity {
	concepts := l.kb.Candidates(mention)
	topC := l.TopC
	if topC <= 0 {
		topC = DefaultTopC
	}
	scores := make([]float64, len(concepts))
	for j, c := range concepts {
		hits := 0
		for _, kw := range c.Context {
			if bag[kw] {
				hits++
			}
		}
		scores[j] = c.Prior * (1 + l.ContextBoost*float64(hits))
	}
	order := mathx.TopK(scores, topC)
	cands := make([]Candidate, 0, len(order))
	var total float64
	for _, j := range order {
		total += scores[j]
	}
	for _, j := range order {
		cands = append(cands, Candidate{Concept: concepts[j], Prob: scores[j] / total})
	}
	return Entity{Mention: mention, Start: start, Candidates: cands}
}

// Tokenize splits text into normalized tokens using the same normalization
// as the KB alias table, so n-gram joins compare directly against aliases.
func Tokenize(text string) []string {
	return strings.Fields(kb.NormalizeMention(text))
}

// contextBag builds the set of tokens available as disambiguation context.
func contextBag(tokens []string) map[string]bool {
	bag := make(map[string]bool, len(tokens))
	for _, t := range tokens {
		bag[t] = true
	}
	return bag
}
