package entitylink

import (
	"math"
	"testing"

	"docs/internal/kb"
	"docs/internal/mathx"
)

func defaultLinker(t *testing.T) *Linker {
	t.Helper()
	k, err := kb.Default()
	if err != nil {
		t.Fatal(err)
	}
	return New(k)
}

func findEntity(ents []Entity, mention string) *Entity {
	norm := kb.NormalizeMention(mention)
	for i := range ents {
		if ents[i].Mention == norm {
			return &ents[i]
		}
	}
	return nil
}

func TestLinkRunningExample(t *testing.T) {
	l := defaultLinker(t)
	ents := l.Link("Does Michael Jordan win more NBA championships than Kobe Bryant?")
	if len(ents) != 3 {
		for _, e := range ents {
			t.Logf("entity: %q", e.Mention)
		}
		t.Fatalf("detected %d entities, want 3", len(ents))
	}

	mj := findEntity(ents, "Michael Jordan")
	if mj == nil {
		t.Fatal("Michael Jordan not detected")
	}
	if len(mj.Candidates) != 3 {
		t.Fatalf("Michael Jordan has %d candidates, want 3", len(mj.Candidates))
	}
	// The basketball context must put the player first by a wide margin.
	if mj.Candidates[0].Concept.ID != "person/michael_jordan" {
		t.Errorf("top candidate = %q, want the player", mj.Candidates[0].Concept.ID)
	}
	if mj.Candidates[0].Prob < 0.6 {
		t.Errorf("player probability = %g, want >= 0.6", mj.Candidates[0].Prob)
	}

	nba := findEntity(ents, "NBA")
	if nba == nil {
		t.Fatal("NBA not detected")
	}
	if nba.Candidates[0].Concept.ID != "org/national_basketball_association" {
		t.Errorf("NBA top candidate = %q", nba.Candidates[0].Concept.ID)
	}

	kobe := findEntity(ents, "Kobe Bryant")
	if kobe == nil {
		t.Fatal("Kobe Bryant not detected")
	}
	if kobe.Candidates[0].Concept.ID != "person/kobe_bryant" {
		t.Errorf("Kobe Bryant top candidate = %q", kobe.Candidates[0].Concept.ID)
	}
}

func TestLinkContextDisambiguation(t *testing.T) {
	l := defaultLinker(t)

	// Machine-learning context should pull the professor ahead of the player.
	ents := l.Link("Did Michael Jordan publish influential machine learning research at Berkeley?")
	mj := findEntity(ents, "Michael Jordan")
	if mj == nil {
		t.Fatal("Michael Jordan not detected")
	}
	if mj.Candidates[0].Concept.ID != "person/michael_i_jordan" {
		t.Errorf("in ML context top candidate = %q, want the professor", mj.Candidates[0].Concept.ID)
	}

	// Fruit context vs company context for "Apple".
	ents = l.Link("How many calories does an Apple have if you eat it raw?")
	apple := findEntity(ents, "Apple")
	if apple == nil {
		t.Fatal("Apple not detected")
	}
	if apple.Candidates[0].Concept.ID != "food/apple_fruit" {
		t.Errorf("calorie context linked Apple to %q, want the fruit", apple.Candidates[0].Concept.ID)
	}

	ents = l.Link("Did Apple report higher stock revenue than Microsoft this quarter, according to its CEO?")
	apple = findEntity(ents, "Apple")
	if apple == nil {
		t.Fatal("Apple not detected")
	}
	if apple.Candidates[0].Concept.ID != "company/apple_inc" {
		t.Errorf("revenue context linked Apple to %q, want the company", apple.Candidates[0].Concept.ID)
	}
}

func TestLinkLongestMatch(t *testing.T) {
	l := defaultLinker(t)
	ents := l.Link("Have the Golden State Warriors ever won championships?")
	gsw := findEntity(ents, "Golden State Warriors")
	if gsw == nil {
		t.Fatal("Golden State Warriors not detected as one entity")
	}
	if gsw.Candidates[0].Concept.ID != "team/golden_state_warriors" {
		t.Errorf("linked to %q", gsw.Candidates[0].Concept.ID)
	}
}

func TestLinkProbabilitiesAreDistribution(t *testing.T) {
	l := defaultLinker(t)
	texts := []string{
		"Does Michael Jordan win more NBA championships than Kobe Bryant?",
		"Compare the height of Mount Everest and K2.",
		"Is Tesla a better investment than Amazon?",
		"Which has more calories, Chocolate or Honey?",
		"Who owns the Atalanta calcio team in Italy?",
	}
	for _, txt := range texts {
		for _, e := range l.Link(txt) {
			probs := make([]float64, len(e.Candidates))
			for i, c := range e.Candidates {
				probs[i] = c.Prob
			}
			if !mathx.IsDistribution(probs, 1e-9) {
				t.Errorf("entity %q in %q: probabilities %v not a distribution", e.Mention, txt, probs)
			}
			for i := 1; i < len(probs); i++ {
				if probs[i] > probs[i-1]+1e-12 {
					t.Errorf("entity %q: candidates not sorted by probability", e.Mention)
				}
			}
		}
	}
}

func TestLinkEmptyAndUnknownText(t *testing.T) {
	l := defaultLinker(t)
	if ents := l.Link(""); ents != nil {
		t.Errorf("Link(\"\") = %v", ents)
	}
	if ents := l.Link("zzz qqq unknown words only"); len(ents) != 0 {
		t.Errorf("Link(unknown) detected %d entities", len(ents))
	}
}

func TestLinkTopCTruncation(t *testing.T) {
	l := defaultLinker(t)
	l.TopC = 1
	ents := l.Link("Michael Jordan")
	if len(ents) != 1 || len(ents[0].Candidates) != 1 {
		t.Fatalf("TopC=1 not honoured: %+v", ents)
	}
	p := ents[0].Candidates[0].Prob
	if math.Abs(p-1) > 1e-9 {
		t.Errorf("single candidate probability = %g, want 1", p)
	}
}

func TestTokenize(t *testing.T) {
	got := Tokenize("Does Michael Jordan win, more NBA championships?")
	want := []string{"does", "michael", "jordan", "win", "more", "nba", "championships"}
	if len(got) != len(want) {
		t.Fatalf("Tokenize = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, got[i], want[i])
		}
	}
}
