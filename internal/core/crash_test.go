package core

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"docs/internal/kb"
	"docs/internal/mathx"
	"docs/internal/model"
	"docs/internal/store"
	"docs/internal/wal"
)

// The crash-injection harness. One uninterrupted serial campaign runs with
// the WAL armed; the resulting log is then "killed" at randomized points —
// clean record boundaries and torn mid-record cuts — and each surviving
// prefix is recovered into a fresh System. The recovered state must be
// bit-identical (float bits included) to a reference System that applied
// exactly the surviving records through the ordinary serial path. That is
// the durability contract: recovery IS the serial replay the concurrency
// work proved equivalent to live serving.

// fingerprint is the state comparator the kill-point sweeps are built on;
// the implementation moved to the exported (*System).Fingerprint so the
// campaign-registry crash suite can make the same bit-exact comparison.
func fingerprint(s *System) string { return s.Fingerprint() }

// runLoggedCampaign drives a deterministic serial campaign with the WAL
// armed at dir and returns the record stream it wrote (publish + answers,
// in durable order).
func runLoggedCampaign(t *testing.T, cfg Config, dir string, nTasks int) []wal.Record {
	t.Helper()
	s := newSystem(t, cfg)
	if _, err := s.Recover(dir); err != nil {
		t.Fatal(err)
	}
	if err := s.Publish(concTasks(s.m, nTasks)); err != nil {
		t.Fatal(err)
	}
	goldenSet := map[int]bool{}
	for _, id := range s.GoldenTasks() {
		goldenSet[id] = true
	}
	r := mathx.NewRand(42)
	for i := 0; ; i++ {
		w := fmt.Sprintf("w%d", i%11)
		got, err := s.Request(w, 4)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) == 0 {
			break
		}
		for _, tk := range got {
			c := tk.Truth
			if c == model.NoTruth {
				c = 0
			} else if !goldenSet[tk.ID] && r.Float64() >= 0.85 {
				c = 1 - c
			}
			if err := s.Submit(w, tk.ID, c); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Read back the durable stream: checkpoint prefix (if any) + segments.
	var recs []wal.Record
	var cpSeq uint64
	cp, err := wal.ReadCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if cp != nil {
		recs = append(recs, cp.Records...)
		cpSeq = cp.LastSeq
	}
	st, err := wal.Replay(dir, func(rec wal.Record) error {
		if rec.Seq > cpSeq {
			recs = append(recs, rec)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.TornTail {
		t.Fatal("uninterrupted run left a torn tail")
	}
	return recs
}

// frameSpan locates each record's frame: which segment file it lives in
// and its [start, end) byte offsets there.
type frameSpan struct {
	file       string
	start, end int64
}

func segmentSpans(t *testing.T, dir string, afterSeq uint64) map[uint64]frameSpan {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	spans := make(map[uint64]frameSpan)
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".wal") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		err := wal.ScanSegment(path, func(rec wal.Record, start, end int64) error {
			if rec.Seq > afterSeq {
				spans[rec.Seq] = frameSpan{file: e.Name(), start: start, end: end}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return spans
}

// buildCrashDir reconstructs what disk looks like when the process dies
// with `surviving` whole records down plus (optionally) tornBytes of the
// next frame: segments are copied, the one holding the cut is truncated,
// later ones vanish (they were never created), and the checkpoint (if any)
// survives untouched.
func buildCrashDir(t *testing.T, srcDir string, recs []wal.Record, spans map[uint64]frameSpan, surviving int, tornBytes int64) string {
	t.Helper()
	dst := t.TempDir()
	if data, err := os.ReadFile(filepath.Join(srcDir, "checkpoint")); err == nil {
		if err := os.WriteFile(filepath.Join(dst, "checkpoint"), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// The byte cut: end of the last surviving record, plus torn bytes into
	// the next frame (capped to stay strictly inside it).
	cutFile, cutOff := "", int64(0)
	if surviving > 0 {
		if sp, ok := spans[recs[surviving-1].Seq]; ok {
			cutFile, cutOff = sp.file, sp.end
		}
		// else: the record lives in the checkpoint only; cut is "no segment
		// bytes at all" and stays at "", 0.
	}
	if tornBytes > 0 && surviving < len(recs) {
		if next, ok := spans[recs[surviving].Seq]; ok {
			if next.file != cutFile {
				cutFile, cutOff = next.file, next.start
			}
			frameLen := next.end - next.start
			if tornBytes >= frameLen {
				tornBytes = frameLen - 1
			}
			cutOff += tornBytes
		}
	}
	if cutFile == "" {
		// The cut precedes every surviving segment byte: the crash dir has
		// the checkpoint (if any) and no segments.
		return dst
	}
	entries, err := os.ReadDir(srcDir)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".wal") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names) // zero-padded hex: lexicographic == sequence order
	for _, name := range names {
		if name > cutFile {
			break // these segments did not exist yet at crash time
		}
		data, err := os.ReadFile(filepath.Join(srcDir, name))
		if err != nil {
			t.Fatal(err)
		}
		if name == cutFile {
			data = data[:cutOff]
		}
		if err := os.WriteFile(filepath.Join(dst, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// applyPrefix replays records through a WAL-less reference system — the
// uninterrupted serial run the recovered state must match bit for bit.
func applyPrefix(t *testing.T, s *System, recs []wal.Record) {
	t.Helper()
	for _, rec := range recs {
		if err := s.applyRecord(rec, true); err != nil {
			t.Fatal(err)
		}
	}
}

const crashKillPoints = 100

// TestCrashInjectionRecoveryExact is the acceptance test: 100 randomized
// kill points over a logged campaign (clean boundaries and torn final
// records), each recovered and compared bit-identical against the serial
// reference. The reference advances incrementally so the whole sweep costs
// one extra serial pass plus the recoveries themselves.
func TestCrashInjectionRecoveryExact(t *testing.T) {
	cfg := Config{GoldenCount: 4, HITSize: 4, AnswersPerTask: 3, RerunEvery: 20,
		CheckpointEvery: -1, WALSegmentBytes: 1 << 10}
	srcDir := t.TempDir()
	recs := runLoggedCampaign(t, cfg, srcDir, 60)
	if len(recs) < 50 {
		t.Fatalf("campaign produced only %d records", len(recs))
	}
	spans := segmentSpans(t, srcDir, 0)
	for _, rec := range recs {
		if _, ok := spans[rec.Seq]; !ok {
			t.Fatalf("record %d not found in any segment", rec.Seq)
		}
	}

	// Randomized kill points, sorted so the reference system can advance
	// incrementally. Roughly a third tear the next record mid-frame; the
	// final kill point is always "everything but a torn last record".
	r := mathx.NewRand(7)
	type kill struct {
		surviving int
		torn      int64
	}
	kills := make([]kill, 0, crashKillPoints)
	for i := 0; i < crashKillPoints-1; i++ {
		k := kill{surviving: int(r.Float64() * float64(len(recs)+1))}
		if k.surviving > len(recs) {
			k.surviving = len(recs)
		}
		if k.surviving < len(recs) && r.Float64() < 0.35 {
			k.torn = 1 + int64(r.Float64()*16)
		}
		kills = append(kills, k)
	}
	kills = append(kills, kill{surviving: len(recs) - 1, torn: 5}) // torn FINAL record
	sort.Slice(kills, func(i, j int) bool { return kills[i].surviving < kills[j].surviving })

	ref := newSystem(t, cfg)
	applied := 0
	refPrint := fingerprint(ref)
	for i, k := range kills {
		if k.surviving > applied {
			applyPrefix(t, ref, recs[applied:k.surviving])
			applied = k.surviving
			refPrint = fingerprint(ref)
		}
		crashDir := buildCrashDir(t, srcDir, recs, spans, k.surviving, k.torn)
		rec := newSystem(t, cfg)
		info, err := rec.Recover(crashDir)
		if err != nil {
			t.Fatalf("kill %d (surviving=%d torn=%d): recover: %v", i, k.surviving, k.torn, err)
		}
		if info.Records != k.surviving {
			t.Fatalf("kill %d: recovered %d records, want %d (torn=%d)", i, info.Records, k.surviving, k.torn)
		}
		if k.torn > 0 && !info.TornTail {
			t.Errorf("kill %d: torn cut not reported as torn tail", i)
		}
		if got := fingerprint(rec); got != refPrint {
			t.Fatalf("kill %d (surviving=%d torn=%d): recovered state differs from serial reference\nrecovered: %.300s\nreference: %.300s",
				i, k.surviving, k.torn, got, refPrint)
		}
		if err := rec.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCrashRecoveryThenContinueServing recovers from a mid-campaign crash
// and pushes the remaining answer stream through the recovered system; the
// final state must equal the uninterrupted run's. This is the "restart
// under traffic" scenario: sequence numbers continue, re-logging works,
// and nothing double-applies.
func TestCrashRecoveryThenContinueServing(t *testing.T) {
	cfg := Config{GoldenCount: 4, HITSize: 4, AnswersPerTask: 3, RerunEvery: 20,
		CheckpointEvery: -1, WALSegmentBytes: 1 << 10}
	srcDir := t.TempDir()
	recs := runLoggedCampaign(t, cfg, srcDir, 40)
	spans := segmentSpans(t, srcDir, 0)

	full := newSystem(t, cfg)
	applyPrefix(t, full, recs)
	want := fingerprint(full)

	for _, cut := range []int{1, len(recs) / 3, len(recs) / 2, len(recs) - 1} {
		crashDir := buildCrashDir(t, srcDir, recs, spans, cut, 0)
		s := newSystem(t, cfg)
		if _, err := s.Recover(crashDir); err != nil {
			t.Fatal(err)
		}
		for _, rec := range recs[cut:] {
			switch rec.Kind {
			case wal.KindPublish:
				var tasks []*model.Task
				mustUnmarshal(t, rec.Blob, &tasks)
				if err := s.Publish(tasks); err != nil {
					t.Fatal(err)
				}
			case wal.KindAnswer:
				if err := s.Submit(rec.Worker, rec.Task, rec.Choice); err != nil {
					t.Fatal(err)
				}
			}
		}
		if got := fingerprint(s); got != want {
			t.Fatalf("cut=%d: continued state differs from uninterrupted run", cut)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		// And the continued log must itself recover to the same state.
		s2 := newSystem(t, cfg)
		if _, err := s2.Recover(crashDir); err != nil {
			t.Fatal(err)
		}
		if got := fingerprint(s2); got != want {
			t.Fatalf("cut=%d: re-recovery of continued log differs", cut)
		}
		if err := s2.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCrashInjectionWithCheckpoints kills a campaign whose WAL was
// checkpointed and truncated mid-run: recovery must stitch checkpoint +
// surviving segments back into the exact serial state. The checkpoint
// state is constructed deterministically (checkpoint at 2/3 of the stream,
// fully-covered segments deleted, exactly what the checkpoint worker
// produces) so every kill point is reproducible.
func TestCrashInjectionWithCheckpoints(t *testing.T) {
	cfg := Config{GoldenCount: 4, HITSize: 4, AnswersPerTask: 3, RerunEvery: 20,
		CheckpointEvery: -1, WALSegmentBytes: 1 << 10}
	srcDir := t.TempDir()
	recs := runLoggedCampaign(t, cfg, srcDir, 50)

	covered := len(recs) * 2 / 3
	cpSeq := recs[covered-1].Seq
	if err := wal.WriteCheckpoint(srcDir, cpSeq, recs[:covered]); err != nil {
		t.Fatal(err)
	}
	// Emulate TruncateBefore: delete segments all of whose records the
	// checkpoint covers (never the last one).
	all := segmentSpans(t, srcDir, 0)
	maxSeqByFile := map[string]uint64{}
	lastFile := ""
	for seq, sp := range all {
		if seq > maxSeqByFile[sp.file] {
			maxSeqByFile[sp.file] = seq
		}
		if sp.file > lastFile {
			lastFile = sp.file
		}
	}
	for file, maxSeq := range maxSeqByFile {
		if file != lastFile && maxSeq <= cpSeq {
			if err := os.Remove(filepath.Join(srcDir, file)); err != nil {
				t.Fatal(err)
			}
		}
	}
	spans := segmentSpans(t, srcDir, 0)

	// Sorted randomized kill points in [covered, n], so the serial
	// reference advances incrementally.
	r := mathx.NewRand(11)
	ks := make([]int, 0, 20)
	torns := map[int]int64{}
	for i := 0; i < 20; i++ {
		k := covered + int(r.Float64()*float64(len(recs)-covered+1))
		if k > len(recs) {
			k = len(recs)
		}
		if k < len(recs) && r.Float64() < 0.4 {
			torns[k] = 1 + int64(r.Float64()*12)
		}
		ks = append(ks, k)
	}
	sort.Ints(ks)

	ref := newSystem(t, cfg)
	applied := 0
	refPrint := fingerprint(ref)
	for i, k := range ks {
		if k > applied {
			applyPrefix(t, ref, recs[applied:k])
			applied = k
			refPrint = fingerprint(ref)
		}
		crashDir := buildCrashDir(t, srcDir, recs, spans, k, torns[k])
		rec := newSystem(t, cfg)
		info, err := rec.Recover(crashDir)
		if err != nil {
			t.Fatalf("kill %d (surviving=%d torn=%d): %v", i, k, torns[k], err)
		}
		if info.CheckpointRecords != covered {
			t.Fatalf("kill %d: checkpoint contributed %d records, want %d", i, info.CheckpointRecords, covered)
		}
		if info.Records != k {
			t.Fatalf("kill %d: recovered %d records, want %d", i, info.Records, k)
		}
		if got := fingerprint(rec); got != refPrint {
			t.Fatalf("kill %d (surviving=%d torn=%d): recovered state differs from serial reference", i, k, torns[k])
		}
		if err := rec.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestAsyncCheckpointIntegration runs a campaign with the background
// checkpoint worker live (small CheckpointEvery forces several passes) and
// asserts (a) checkpoints actually completed and truncated nothing needed,
// and (b) full recovery of the resulting dir — whatever mix of checkpoint
// and segments the worker's timing left — equals the serial reference.
func TestAsyncCheckpointIntegration(t *testing.T) {
	cfg := Config{GoldenCount: 4, HITSize: 4, AnswersPerTask: 3, RerunEvery: 20,
		CheckpointEvery: 30, WALSegmentBytes: 1 << 10}
	dir := t.TempDir()
	recs := runLoggedCampaign(t, cfg, dir, 50)

	cp, err := wal.ReadCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if cp == nil {
		t.Fatal("no checkpoint written despite CheckpointEvery=30")
	}

	ref := newSystem(t, cfg)
	applyPrefix(t, ref, recs)
	s := newSystem(t, cfg)
	info, err := s.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != len(recs) {
		t.Fatalf("recovered %d records, want %d", info.Records, len(recs))
	}
	if info.CheckpointRecords == 0 {
		t.Error("recovery used no checkpoint records")
	}
	if fingerprint(s) != fingerprint(ref) {
		t.Fatal("async-checkpointed log recovered to a different state")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentServeWithWALRecovers hammers the system from many
// goroutines with the WAL armed (group commit under real contention, run
// with -race), then recovers the log into a fresh system. The recovered
// answer count must equal what the live system accepted, and the final
// batch inference over the recovered state must match the live system's
// bit for bit — the WAL order is the same chronological order the serial
// replay equivalence is proven against.
func TestConcurrentServeWithWALRecovers(t *testing.T) {
	cfg := Config{GoldenCount: 6, HITSize: 4, AnswersPerTask: 5, RerunEvery: 40,
		AsyncRerun: true, CheckpointEvery: 60, WALSegmentBytes: 1 << 11}
	dir := t.TempDir()
	s := newSystem(t, cfg)
	if _, err := s.Recover(dir); err != nil {
		t.Fatal(err)
	}
	if err := s.Publish(concTasks(s.m, 120)); err != nil {
		t.Fatal(err)
	}
	goldenSet := map[int]bool{}
	for _, id := range s.GoldenTasks() {
		goldenSet[id] = true
	}
	hammer(t, s, 8, 0.9, goldenSet)
	res, err := s.Results()
	if err != nil {
		t.Fatal(err)
	}
	accepted := s.AnswerCount()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := newSystem(t, cfg)
	info, err := r.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if info.TornTail {
		t.Error("graceful shutdown left a torn tail")
	}
	if got := r.AnswerCount(); got != accepted {
		t.Fatalf("recovered %d answers, live system accepted %d", got, accepted)
	}
	res2, err := r.Results()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Truth) != len(res2.Truth) {
		t.Fatalf("result sizes differ: %d vs %d", len(res.Truth), len(res2.Truth))
	}
	for i := range res.Truth {
		if res.Truth[i] != res2.Truth[i] {
			t.Fatalf("task %d: live truth %d, recovered truth %d", i, res.Truth[i], res2.Truth[i])
		}
		for j := range res.S[i] {
			if math.Float64bits(res.S[i][j]) != math.Float64bits(res2.S[i][j]) {
				t.Fatalf("task %d choice %d: confidence differs in the last ulp", i, j)
			}
		}
	}
}

// TestRecoveryDeterminism recovers the same directory twice; the two
// Systems must fingerprint identically (replay is a pure function of the
// log bytes).
func TestRecoveryDeterminism(t *testing.T) {
	cfg := Config{GoldenCount: 4, HITSize: 4, AnswersPerTask: 3, RerunEvery: 20, CheckpointEvery: -1}
	dir := t.TempDir()
	runLoggedCampaign(t, cfg, dir, 30)
	a := newSystem(t, cfg)
	if _, err := a.Recover(dir); err != nil {
		t.Fatal(err)
	}
	b := newSystem(t, cfg)
	if _, err := b.Recover(dir); err != nil {
		t.Fatal(err)
	}
	if fingerprint(a) != fingerprint(b) {
		t.Fatal("two recoveries of the same log differ")
	}
	a.Close()
	b.Close()
}

// TestRecoveryDoesNotDoubleMergePersistentStore: golden profiling merges
// worker stats into the long-run store at serving time, and a file-backed
// store already holds (and durably logged) those merges. Replaying the
// WAL must not merge them again — before the fix every restart compounded
// each profiled worker's statistics.
func TestRecoveryDoesNotDoubleMergePersistentStore(t *testing.T) {
	dir := t.TempDir()
	storePath := filepath.Join(t.TempDir(), "store.json")
	newSys := func() *System {
		st, err := store.Open(storePath, kb.MustDefault().Domains().Size())
		if err != nil {
			t.Fatal(err)
		}
		s := newSystem(t, Config{GoldenCount: 4, HITSize: 4, AnswersPerTask: 3,
			RerunEvery: -1, CheckpointEvery: -1, Store: st})
		return s
	}

	s := newSys()
	if _, err := s.Recover(dir); err != nil {
		t.Fatal(err)
	}
	if err := s.Publish(concTasks(s.m, 20)); err != nil {
		t.Fatal(err)
	}
	goldenSet := map[int]bool{}
	for _, id := range s.GoldenTasks() {
		goldenSet[id] = true
	}
	// One worker clears the golden gauntlet (profiling merges into store).
	for done := 0; done < len(goldenSet); {
		got, err := s.Request("w0", 4)
		if err != nil {
			t.Fatal(err)
		}
		for _, tk := range got {
			if !goldenSet[tk.ID] {
				t.Fatalf("unprofiled worker served regular task %d", tk.ID)
			}
			if err := s.Submit("w0", tk.ID, tk.Truth); err != nil {
				t.Fatal(err)
			}
			done++
		}
	}
	want, ok := s.store.Worker("w0")
	if !ok {
		t.Fatal("profiling did not reach the store")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	for restart := 0; restart < 3; restart++ {
		r := newSys()
		if _, err := r.Recover(dir); err != nil {
			t.Fatal(err)
		}
		got, ok := r.store.Worker("w0")
		if !ok {
			t.Fatal("store lost the worker across restart")
		}
		for k := range got.U {
			if math.Float64bits(got.U[k]) != math.Float64bits(want.U[k]) ||
				math.Float64bits(got.Q[k]) != math.Float64bits(want.Q[k]) {
				t.Fatalf("restart %d: store stats changed (U[%d]=%v, want %v) — replay re-merged profiling",
					restart, k, got.U[k], want.U[k])
			}
		}
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRecoverRefusesAfterServing pins the API contract: Recover is a
// construction-time call.
func TestRecoverRefusesAfterServing(t *testing.T) {
	s := newSystem(t, Config{GoldenCount: -1, RerunEvery: -1})
	if err := s.Publish(concTasks(s.m, 4)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Recover(t.TempDir()); err == nil {
		t.Fatal("Recover after Publish must fail")
	}
	if _, err := s.Recover(""); err == nil {
		t.Fatal("Recover with empty dir must fail")
	}
}

func mustUnmarshal(t *testing.T, data []byte, v any) {
	t.Helper()
	if err := json.Unmarshal(data, v); err != nil {
		t.Fatal(err)
	}
}
