package core

import (
	"path/filepath"
	"testing"

	"docs/internal/crowd"
	"docs/internal/dataset"
	"docs/internal/kb"
	"docs/internal/model"
	"docs/internal/store"
	"docs/internal/truth"
)

func newSystem(t *testing.T, cfg Config) *System {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPublishRunsDVE(t *testing.T) {
	s := newSystem(t, Config{GoldenCount: -1})
	tasks := []*model.Task{
		{ID: 0, Text: "Does Michael Jordan win more NBA championships than Kobe Bryant?",
			Choices: []string{"yes", "no"}, Truth: model.NoTruth, TrueDomain: model.NoTruth},
		{ID: 1, Text: "Which food contains more calories, Chocolate or Honey?",
			Choices: []string{"Chocolate", "Honey"}, Truth: model.NoTruth, TrueDomain: model.NoTruth},
	}
	if err := s.Publish(tasks); err != nil {
		t.Fatal(err)
	}
	sports, _ := s.Domains().Index("Sports")
	food, _ := s.Domains().Index("Food")
	if tasks[0].Domain.Top() != sports {
		t.Errorf("task 0 top domain = %s, want Sports", s.Domains().Name(tasks[0].Domain.Top()))
	}
	if tasks[1].Domain.Top() != food {
		t.Errorf("task 1 top domain = %s, want Food", s.Domains().Name(tasks[1].Domain.Top()))
	}
}

func TestPublishErrors(t *testing.T) {
	s := newSystem(t, Config{})
	dup := []*model.Task{
		{ID: 0, Text: "a b", Choices: []string{"x", "y"}, Truth: model.NoTruth, TrueDomain: model.NoTruth},
		{ID: 0, Text: "c d", Choices: []string{"x", "y"}, Truth: model.NoTruth, TrueDomain: model.NoTruth},
	}
	if err := s.Publish(dup); err == nil {
		t.Error("duplicate IDs accepted")
	}
	s2 := newSystem(t, Config{})
	ok := []*model.Task{{ID: 0, Text: "a", Choices: []string{"x", "y"}, Truth: model.NoTruth, TrueDomain: model.NoTruth}}
	if err := s2.Publish(ok); err != nil {
		t.Fatal(err)
	}
	if err := s2.Publish(ok); err == nil {
		t.Error("double publish accepted")
	}
}

func TestGoldenFirstForNewWorkers(t *testing.T) {
	ds := dataset.Item(1)
	s := newSystem(t, Config{GoldenCount: 8, HITSize: 5})
	if err := s.Publish(ds.Tasks[:100]); err != nil {
		t.Fatal(err)
	}
	goldenIDs := s.GoldenTasks()
	if len(goldenIDs) != 8 {
		t.Fatalf("selected %d golden tasks, want 8", len(goldenIDs))
	}
	goldenSet := map[int]bool{}
	for _, id := range goldenIDs {
		goldenSet[id] = true
	}

	// A fresh worker must receive only golden tasks until all are done.
	served := 0
	for served < len(goldenIDs) {
		got, err := s.Request("newbie", 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) == 0 {
			t.Fatal("no tasks served while golden remain")
		}
		for _, tk := range got {
			if !goldenSet[tk.ID] {
				t.Fatalf("unprofiled worker served non-golden task %d", tk.ID)
			}
			if err := s.Submit("newbie", tk.ID, tk.Truth); err != nil {
				t.Fatal(err)
			}
			served++
		}
	}
	// Now the worker is profiled (perfect golden record → high quality) and
	// receives regular tasks.
	got, err := s.Request("newbie", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("profiled worker got no tasks")
	}
	for _, tk := range got {
		if goldenSet[tk.ID] {
			t.Errorf("profiled worker served golden task %d", tk.ID)
		}
	}
	q := s.WorkerQuality("newbie")
	sports, _ := s.Domains().Index("Sports")
	if q[sports] < 0.8 {
		t.Errorf("perfect golden record gave Sports quality %.2f", q[sports])
	}
}

func TestSubmitValidation(t *testing.T) {
	s := newSystem(t, Config{GoldenCount: -1})
	tasks := []*model.Task{{ID: 0, Text: "Kobe Bryant", Choices: []string{"x", "y"}, Truth: model.NoTruth, TrueDomain: model.NoTruth}}
	if err := s.Publish(tasks); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit("", 0, 0); err == nil {
		t.Error("empty worker accepted")
	}
	if err := s.Submit("w", 99, 0); err == nil {
		t.Error("unknown task accepted")
	}
	if err := s.Submit("w", 0, 5); err == nil {
		t.Error("out-of-range choice accepted")
	}
	if err := s.Submit("w", 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit("w", 0, 0); err == nil {
		t.Error("duplicate answer accepted")
	}
	if _, err := s.Request("", 5); err == nil {
		t.Error("empty worker request accepted")
	}
}

// TestEndToEndCampaign runs the full Figure 1 loop on a slice of the Item
// dataset with a simulated crowd and verifies the final accuracy beats the
// trivial bound.
func TestEndToEndCampaign(t *testing.T) {
	ds := dataset.Item(3)
	tasks := ds.Tasks[:120]
	s := newSystem(t, Config{GoldenCount: 8, HITSize: 4, AnswersPerTask: 5, RerunEvery: 50})
	if err := s.Publish(tasks); err != nil {
		t.Fatal(err)
	}
	m := kb.MustDefault().Domains().Size()
	pop, err := crowd.NewPopulation(crowd.Config{
		NumWorkers:      24,
		M:               m,
		RelevantDomains: ds.YahooIndex,
		Seed:            7,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := pop.Rand()
	for hit := 0; hit < 400; hit++ {
		w := pop.Arrival()
		got, err := s.Request(w.ID, 4)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) == 0 {
			break // campaign saturated
		}
		for _, tk := range got {
			if err := s.Submit(w.ID, tk.ID, w.Answer(tk, r)); err != nil {
				t.Fatal(err)
			}
		}
	}
	res, err := s.Results()
	if err != nil {
		t.Fatal(err)
	}
	inferTasks := s.InferTasks()
	acc, n := truth.Accuracy(inferTasks, res.Truth)
	if n != len(inferTasks) {
		t.Fatalf("evaluated %d of %d tasks", n, len(inferTasks))
	}
	if acc < 0.8 {
		t.Errorf("end-to-end accuracy %.3f, want >= 0.8", acc)
	}
}

func TestStorePersistsAcrossCampaigns(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "workers.json")
	m := kb.MustDefault().Domains().Size()

	st, err := store.Open(path, m)
	if err != nil {
		t.Fatal(err)
	}
	ds := dataset.Item(5)
	s := newSystem(t, Config{Store: st, GoldenCount: 6, AnswersPerTask: 3})
	if err := s.Publish(ds.Tasks[:40]); err != nil {
		t.Fatal(err)
	}
	// One worker completes golden tasks perfectly.
	for _, id := range s.GoldenTasks() {
		tk := findTask(ds.Tasks, id)
		if err := s.Submit("veteran", id, tk.Truth); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Results(); err != nil {
		t.Fatal(err)
	}

	// Second campaign with a fresh system over the same store: the veteran
	// is recognized and skips golden profiling.
	st2, err := store.Open(path, m)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st2.Worker("veteran"); !ok {
		t.Fatal("veteran missing from persisted store")
	}
	s2 := newSystem(t, Config{Store: st2, GoldenCount: 6})
	if err := s2.Publish(dataset.Item(6).Tasks[:40]); err != nil {
		t.Fatal(err)
	}
	got, err := s2.Request("veteran", 3)
	if err != nil {
		t.Fatal(err)
	}
	goldenSet := map[int]bool{}
	for _, id := range s2.GoldenTasks() {
		goldenSet[id] = true
	}
	for _, tk := range got {
		if goldenSet[tk.ID] {
			t.Errorf("returning worker served golden task %d", tk.ID)
		}
	}
}

func findTask(tasks []*model.Task, id int) *model.Task {
	for _, t := range tasks {
		if t.ID == id {
			return t
		}
	}
	return nil
}

func TestAnswersPerTaskCap(t *testing.T) {
	s := newSystem(t, Config{GoldenCount: -1, AnswersPerTask: 2, HITSize: 10})
	tasks := []*model.Task{
		{ID: 0, Text: "Kobe Bryant height", Choices: []string{"x", "y"}, Truth: model.NoTruth, TrueDomain: model.NoTruth},
	}
	if err := s.Publish(tasks); err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"w1", "w2"} {
		if err := s.Submit(w, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.Request("w3", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("capped task still assigned: %v", got)
	}
}
