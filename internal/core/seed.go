// Worker-profile seeds: the durable record of store state the campaign
// adopted, so recovery restores it instead of re-deriving it.
//
// A campaign reads the long-run worker store in exactly two places: when a
// store-known worker first becomes visible (workerReady / ensureWorker
// seed the incremental engine from her stored statistics) and when golden
// profiling completes (the Theorem-1 merge, via store.MergeProfile). Both
// reads are time-of-event reads of a store that keeps evolving — other
// campaigns merge into it concurrently — so a replay that re-read the
// store at boot time would observe different bits than the live system
// did, and recovered worker quality (and with it every downstream /result
// confidence) would drift in the last ulps. That drift was ROADMAP item 5:
// ~1e-7 divergence between live and recovered /result confidences after
// kill -9.
//
// The fix is to make both reads durable events. A seed is logged as a
// KindSeed WAL record whose blob carries the exact float64 bits adopted,
// emitted under logMu in the same critical section that installs the seed,
// so the record's sequence orders it before any answer that could have
// observed the seeded statistics. Replay applies the logged bits and never
// touches the store. The profiling merge is made idempotent-by-ID instead
// (store.MergeProfile), and the post-merge anchor it returns is pinned in
// the worker's serving state, where rerun initialization reads it — see
// initQuality.
package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"docs/internal/model"
	"docs/internal/truth"
	"docs/internal/wal"
)

// encodeSeed renders seeded worker statistics as a KindSeed blob:
//
//	m (uvarint) | m×8 bytes Q bits (u64le) | m×8 bytes U bits (u64le) | profiled (1 byte)
//
// The floats travel as raw IEEE-754 bits so the replayed seed is the live
// seed down to the last ulp.
func encodeSeed(st *truth.Stats, profiled bool) []byte {
	m := len(st.Q)
	out := binary.AppendUvarint(nil, uint64(m))
	for _, q := range st.Q {
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(q))
	}
	for _, u := range st.U {
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(u))
	}
	if profiled {
		return append(out, 1)
	}
	return append(out, 0)
}

// decodeSeed parses a KindSeed blob, validating the statistics against the
// system's domain count. It never panics on arbitrary input.
func decodeSeed(blob []byte, m int) (*truth.Stats, bool, error) {
	n, used := binary.Uvarint(blob)
	if used <= 0 {
		return nil, false, fmt.Errorf("bad domain count varint")
	}
	if n != uint64(m) {
		return nil, false, fmt.Errorf("seed has %d domains, want %d", n, m)
	}
	rest := blob[used:]
	if len(rest) != 16*m+1 {
		return nil, false, fmt.Errorf("seed payload is %d bytes, want %d", len(rest), 16*m+1)
	}
	st := &truth.Stats{Q: make(model.QualityVector, m), U: make([]float64, m)}
	for k := 0; k < m; k++ {
		st.Q[k] = math.Float64frombits(binary.LittleEndian.Uint64(rest[8*k:]))
	}
	for k := 0; k < m; k++ {
		st.U[k] = math.Float64frombits(binary.LittleEndian.Uint64(rest[8*(m+k):]))
	}
	var profiled bool
	switch rest[16*m] {
	case 0:
	case 1:
		profiled = true
	default:
		return nil, false, fmt.Errorf("bad profiled flag %d", rest[16*m])
	}
	if err := st.Validate(m); err != nil {
		return nil, false, err
	}
	return st, profiled, nil
}

// profileID is the durable identity of this campaign's profiling merge for
// a worker: one merge per (campaign, worker), applied exactly once no
// matter how often the campaign log replays. The scope charset (campaign
// names: [A-Za-z0-9_-]) cannot contain "/", so the join is unambiguous;
// an unscoped single-campaign system uses the bare "/worker" namespace.
func (s *System) profileID(workerID string) string {
	return s.cfg.ProfileScope + "/" + workerID
}

// logSeed installs store statistics as the worker's incremental seed and
// logs the installed bits as a KindSeed record, atomically with respect to
// the answer log: callers hold logMu, so the record's sequence precedes
// every answer that could observe the seeded statistics, and replay —
// which applies records in sequence order — reconstructs the exact live
// interleaving. The record is emitted even when the install lost the
// set-if-absent race (installed = false) IF force is set: workerReady uses
// that to make its profiled-flag flip durable for workers the incremental
// engine already knew.
func (s *System) logSeed(workerID string, st *truth.Stats, profiled, force bool) (installed bool, p wal.Pending, err error) {
	installed, _ = s.inc.SeedWorker(workerID, st)
	if installed || force {
		p, err = s.walReserve(wal.Record{Kind: wal.KindSeed, Worker: workerID, Blob: encodeSeed(st, profiled)})
	}
	return installed, p, err
}

// applySeed replays one KindSeed record: the logged bits are installed
// set-if-absent (mirroring the live SeedWorker call — if the worker
// already existed, the live install also lost) and the serving-state
// effects are applied: the profiled flag when the seed carried it, and the
// worker's anchor if none is pinned yet (first seed wins, exactly as the
// live set-if-nil does).
func (s *System) applySeed(workerID string, st *truth.Stats, profiled bool) {
	_, _ = s.inc.SeedWorker(workerID, st)
	sh := s.shard(workerID)
	sh.mu.Lock()
	ws := sh.state(workerID)
	if profiled {
		ws.profiled = true
	}
	if ws.anchor == nil {
		ws.anchor = st.Clone()
	}
	sh.mu.Unlock()
}

// anchorStats returns a private copy of the worker's pinned anchor — the
// post-merge (or seeded) long-run statistics adopted when she was profiled
// or first seen — or nil when none is pinned.
func (s *System) anchorStats(workerID string) *truth.Stats {
	sh := s.shard(workerID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ws, ok := sh.workers[workerID]
	if !ok || ws.anchor == nil {
		return nil
	}
	return ws.anchor.Clone()
}
