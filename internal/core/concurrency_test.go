package core

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"docs/internal/mathx"
	"docs/internal/model"
)

// concTasks builds nTasks two-choice tasks with precomputed one-hot domain
// vectors (skipping the DVE pipeline) and known ground truth i%2 for
// accuracy checks.
func concTasks(m, nTasks int) []*model.Task {
	tasks := make([]*model.Task, nTasks)
	for i := range tasks {
		dom := make(model.DomainVector, m)
		dom[i%m] = 1
		tasks[i] = &model.Task{
			ID: i, Text: fmt.Sprintf("task %d", i), Choices: []string{"a", "b"},
			Domain: dom, Truth: i % 2, TrueDomain: model.NoTruth,
		}
	}
	return tasks
}

// hammer drives the system with nG goroutines of simulated workers until
// the campaign saturates (every task at its redundancy cap). Each worker
// first clears the golden gauntlet with perfect answers (when goldenSet is
// non-empty), then answers one regular batch correctly with probability
// pCorrect before the goroutine moves to its next worker.
func hammer(t *testing.T, s *System, nG int, pCorrect float64, goldenSet map[int]bool) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make(chan error, nG)
	for g := 0; g < nG; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := mathx.NewRand(uint64(1000 + g))
			for i := 0; ; i++ {
				w := fmt.Sprintf("w%d-%d", g, i)
				for done := false; !done; {
					got, err := s.Request(w, 4)
					if err != nil {
						errs <- err
						return
					}
					if len(got) == 0 {
						return // saturated
					}
					for _, tk := range got {
						c := tk.Truth
						if c == model.NoTruth {
							c = 0
						} else if !goldenSet[tk.ID] && r.Float64() >= pCorrect {
							c = 1 - c
						}
						if err := s.Submit(w, tk.ID, c); err != nil {
							errs <- err
							return
						}
						// Exercise the concurrent read paths.
						s.Result(tk.ID)
					}
					// A batch is homogeneous: golden while unprofiled,
					// regular after. One regular batch, then a new worker.
					done = !goldenSet[got[0].ID]
				}
				s.WorkerQuality(w)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestConcurrentServeMatchesSerialReplay hammers Request/Submit/Result from
// many goroutines, then replays the recorded answer stream into a fresh
// system serially and checks the final batch inference agrees task by task.
// Golden profiling is on so that Results' EM initialization comes from the
// long-run store — a pure function of each worker's own golden answers —
// making the concurrent system and the serial replay exactly comparable.
// Run with -race: this test is the data-race canary for the whole serving
// stack.
func TestConcurrentServeMatchesSerialReplay(t *testing.T) {
	cfg := Config{GoldenCount: 6, HITSize: 4, AnswersPerTask: 6, RerunEvery: 50}
	s := newSystem(t, cfg)
	tasks := concTasks(s.m, 150)
	if err := s.Publish(tasks); err != nil {
		t.Fatal(err)
	}
	goldenSet := map[int]bool{}
	for _, id := range s.GoldenTasks() {
		goldenSet[id] = true
	}
	hammer(t, s, 8, 0.9, goldenSet)

	stream := s.Answers().All()
	if len(stream) == 0 {
		t.Fatal("no answers collected")
	}
	res, err := s.Results()
	if err != nil {
		t.Fatal(err)
	}

	// Serial replay of the exact same streams — golden gauntlets first
	// (worker order does not matter: profiling is per worker), then the
	// regular answers in recorded order. The replayed tasks are fresh
	// copies so the two systems share nothing.
	replay := newSystem(t, cfg)
	if err := replay.Publish(concTasks(replay.m, 150)); err != nil {
		t.Fatal(err)
	}
	golden := s.goldenAnswersByWorker()
	workers := make([]string, 0, len(golden))
	for w := range golden {
		workers = append(workers, w)
	}
	sort.Strings(workers)
	for _, w := range workers {
		for _, a := range golden[w] {
			if err := replay.Submit(a.Worker, a.Task, a.Choice); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, a := range stream {
		if err := replay.Submit(a.Worker, a.Task, a.Choice); err != nil {
			t.Fatal(err)
		}
	}
	want, err := replay.Results()
	if err != nil {
		t.Fatal(err)
	}

	if len(res.Truth) != len(want.Truth) {
		t.Fatalf("result sizes differ: %d vs %d", len(res.Truth), len(want.Truth))
	}
	diff := 0
	for i := range res.Truth {
		if res.Truth[i] != want.Truth[i] {
			diff++
		}
	}
	if diff != 0 {
		t.Errorf("%d/%d inferred truths differ from serial replay", diff, len(res.Truth))
	}
	// Both must decode the strong ground-truth signal.
	inferTasks := s.InferTasks()
	correct := 0
	for i, tk := range inferTasks {
		if res.Truth[i] == tk.Truth {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(inferTasks)); acc < 0.9 {
		t.Errorf("concurrent campaign accuracy %.3f, want >= 0.9", acc)
	}
}

// TestConcurrentAsyncRerun exercises the background re-inference worker
// under load: submits must never block on the iterative solver, reruns must
// complete, and every published snapshot must stay a valid distribution.
func TestConcurrentAsyncRerun(t *testing.T) {
	s := newSystem(t, Config{GoldenCount: -1, HITSize: 4, AnswersPerTask: 6, RerunEvery: 25, AsyncRerun: true})
	defer s.Close()
	tasks := concTasks(s.m, 120)
	if err := s.Publish(tasks); err != nil {
		t.Fatal(err)
	}
	hammer(t, s, 8, 0.9, nil)
	// Drain the pending rerun (if any) deterministically, then check state.
	if err := s.runRerun(); err != nil {
		t.Fatal(err)
	}
	done, failed := s.Reruns()
	if done == 0 {
		t.Error("no batch reruns completed")
	}
	if failed != 0 {
		t.Errorf("%d batch reruns failed", failed)
	}
	if s.Epoch() == 0 {
		t.Error("snapshot epoch never advanced")
	}
	for _, tk := range tasks {
		_, conf := s.Result(tk.ID)
		if err := mathx.CheckDistribution(conf, 1e-9); err != nil {
			t.Errorf("task %d confidence: %v", tk.ID, err)
		}
	}
}

// TestConcurrentGoldenProfiling makes many goroutines push distinct new
// workers through the golden-task gauntlet at once; profiling and the
// golden/regular handoff must be race-free and every profiled worker must
// then receive only regular tasks.
func TestConcurrentGoldenProfiling(t *testing.T) {
	s := newSystem(t, Config{GoldenCount: 6, HITSize: 3, AnswersPerTask: 8, RerunEvery: -1})
	tasks := concTasks(s.m, 80)
	if err := s.Publish(tasks); err != nil {
		t.Fatal(err)
	}
	goldenSet := map[int]bool{}
	for _, id := range s.GoldenTasks() {
		goldenSet[id] = true
	}
	if len(goldenSet) != 6 {
		t.Fatalf("selected %d golden tasks, want 6", len(goldenSet))
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				w := fmt.Sprintf("gw%d-%d", g, i)
				// Complete the golden gauntlet (perfect answers).
				for served := 0; served < len(goldenSet); {
					got, err := s.Request(w, 3)
					if err != nil {
						errs <- err
						return
					}
					for _, tk := range got {
						if !goldenSet[tk.ID] {
							errs <- fmt.Errorf("unprofiled worker %s served non-golden task %d", w, tk.ID)
							return
						}
						if err := s.Submit(w, tk.ID, tk.Truth); err != nil {
							errs <- err
							return
						}
						served++
					}
				}
				// Profiled now: next batch must be regular tasks.
				got, err := s.Request(w, 3)
				if err != nil {
					errs <- err
					return
				}
				for _, tk := range got {
					if goldenSet[tk.ID] {
						errs <- fmt.Errorf("profiled worker %s served golden task %d", w, tk.ID)
						return
					}
					if err := s.Submit(w, tk.ID, tk.Truth); err != nil {
						errs <- err
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if _, err := s.Results(); err != nil {
		t.Fatal(err)
	}
}
