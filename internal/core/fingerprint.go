package core

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Fingerprint renders every piece of campaign state the durability contract
// covers, with float64s written as raw bits so "close" never passes for
// "equal": published tasks and golden selection, per-task truth state
// (truth, answer count, S and M), the chronological answer log, the golden
// answers and profiling flags per worker, per-worker incremental stats, and
// the long-run store. Two Systems with equal fingerprints are in the same
// serving state down to the last ulp.
//
// It is a diagnostic: the crash-injection suites (here and in the campaign
// registry) compare recovered systems against serial references with it.
// It takes the internal locks briefly, so it is safe — but not free — to
// call on a serving system.
func (s *System) Fingerprint() string {
	var b strings.Builder
	bits := func(f float64) { fmt.Fprintf(&b, "%016x,", math.Float64bits(f)) }

	s.mu.RLock()
	fmt.Fprintf(&b, "tasks:%d;", len(s.tasks))
	for _, t := range s.tasks {
		fmt.Fprintf(&b, "t%d:g%v:", t.ID, s.golden[t.ID])
		for _, r := range t.Domain {
			bits(r)
		}
	}
	tasks := s.tasks
	s.mu.RUnlock()

	fmt.Fprintf(&b, ";answers:%d;", s.submissions.Load())
	s.logMu.Lock()
	for _, a := range s.log {
		fmt.Fprintf(&b, "%s/%d/%d,", a.Worker, a.Task, a.Choice)
	}
	s.logMu.Unlock()

	b.WriteString(";views:")
	for _, t := range tasks {
		v := s.inc.View(t.ID)
		if v == nil {
			fmt.Fprintf(&b, "t%d:nil;", t.ID)
			continue
		}
		fmt.Fprintf(&b, "t%d:c%d:n%d:S", t.ID, v.Truth, v.NumAnswers)
		for _, x := range v.S {
			bits(x)
		}
		b.WriteString("M")
		for _, row := range v.M {
			for _, x := range row {
				bits(x)
			}
		}
		b.WriteString(";")
	}

	b.WriteString(";golden:")
	golden := s.goldenAnswersByWorker()
	workers := make([]string, 0, len(golden))
	for w := range golden {
		workers = append(workers, w)
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for w, ws := range sh.workers {
			if ws.profiled {
				workers = append(workers, w+"+profiled")
			}
		}
		sh.mu.Unlock()
	}
	sort.Strings(workers)
	for _, w := range workers {
		fmt.Fprintf(&b, "%s(", w)
		for _, a := range golden[strings.TrimSuffix(w, "+profiled")] {
			fmt.Fprintf(&b, "%d/%d,", a.Task, a.Choice)
		}
		b.WriteString(")")
	}

	b.WriteString(";workerstats:")
	for _, w := range s.inc.Workers() {
		st := s.inc.Worker(w)
		fmt.Fprintf(&b, "%s:q", w)
		for _, q := range st.Q {
			bits(q)
		}
		b.WriteString("u")
		for _, u := range st.U {
			bits(u)
		}
		b.WriteString(";")
	}

	b.WriteString(";store:")
	for _, w := range s.store.Workers() {
		st, _ := s.store.Worker(w)
		fmt.Fprintf(&b, "%s:q", w)
		for _, q := range st.Q {
			bits(q)
		}
		b.WriteString("u")
		for _, u := range st.U {
			bits(u)
		}
		b.WriteString(";")
	}
	return b.String()
}
