package core

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"docs/internal/truth"
)

// Fingerprint renders every piece of campaign state the durability contract
// covers, with float64s written as raw bits so "close" never passes for
// "equal": published tasks and golden selection, per-task truth state
// (truth, answer count, S and M), the chronological answer log, the golden
// answers and profiling flags per worker, per-worker incremental stats,
// per-worker profile anchors and answered sets, and the long-run store
// (worker records AND recorded profiling merges). Two Systems with equal
// fingerprints are in the same serving state down to the last ulp —
// /result responses are a pure function of the per-task views included
// here, so fingerprint equality implies byte-equal /result output.
//
// It is a diagnostic: the crash-injection suites (here and in the campaign
// registry) compare recovered systems against serial references — and,
// since the live-vs-recovered suite, against the LIVE pre-kill system —
// with it. It takes the internal locks briefly, so it is safe — but not
// free — to call on a serving system.
//
// docs-lint roots its determinism analysis here: everything reachable
// from this function must be clock-free, rand-free and iterate maps only
// through sorted keys (the collect-then-sort loops below are the model
// the analyzer accepts).
//
//docs:deterministic
func (s *System) Fingerprint() string {
	var b strings.Builder
	bits := func(f float64) { fmt.Fprintf(&b, "%016x,", math.Float64bits(f)) }

	s.mu.RLock()
	fmt.Fprintf(&b, "tasks:%d;", len(s.tasks))
	for _, t := range s.tasks {
		fmt.Fprintf(&b, "t%d:g%v:", t.ID, s.golden[t.ID])
		for _, r := range t.Domain {
			bits(r)
		}
	}
	tasks := s.tasks
	s.mu.RUnlock()

	fmt.Fprintf(&b, ";answers:%d;", s.submissions.Load())
	s.logMu.Lock()
	for _, a := range s.log {
		fmt.Fprintf(&b, "%s/%d/%d,", a.Worker, a.Task, a.Choice)
	}
	s.logMu.Unlock()

	b.WriteString(";views:")
	for _, t := range tasks {
		v := s.inc.View(t.ID)
		if v == nil {
			fmt.Fprintf(&b, "t%d:nil;", t.ID)
			continue
		}
		fmt.Fprintf(&b, "t%d:c%d:n%d:S", t.ID, v.Truth, v.NumAnswers)
		for _, x := range v.S {
			bits(x)
		}
		b.WriteString("M")
		for _, row := range v.M {
			for _, x := range row {
				bits(x)
			}
		}
		b.WriteString(";")
	}

	b.WriteString(";golden:")
	golden := s.goldenAnswersByWorker()
	workers := make([]string, 0, len(golden))
	for w := range golden {
		workers = append(workers, w)
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for w, ws := range sh.workers {
			if ws.profiled {
				workers = append(workers, w+"+profiled")
			}
		}
		sh.mu.Unlock()
	}
	sort.Strings(workers)
	for _, w := range workers {
		fmt.Fprintf(&b, "%s(", w)
		for _, a := range golden[strings.TrimSuffix(w, "+profiled")] {
			fmt.Fprintf(&b, "%d/%d,", a.Task, a.Choice)
		}
		b.WriteString(")")
	}

	b.WriteString(";workerstats:")
	for _, w := range s.inc.Workers() {
		st := s.inc.Worker(w)
		fmt.Fprintf(&b, "%s:q", w)
		for _, q := range st.Q {
			bits(q)
		}
		b.WriteString("u")
		for _, u := range st.U {
			bits(u)
		}
		b.WriteString(";")
	}

	// Worker-store-visible serving state: the pinned profile anchors (the
	// exact store bits each worker's rerun initialization uses) and the
	// answered sets. Included so EVERY crash suite — not just the dedicated
	// live-vs-recovered one — fails loudly on a future profile divergence.
	b.WriteString(";anchors:")
	type servingFP struct {
		anchor   *truth.Stats
		answered []int
	}
	serving := make(map[string]*servingFP)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for w, ws := range sh.workers {
			fp := &servingFP{}
			if ws.anchor != nil {
				fp.anchor = ws.anchor.Clone()
			}
			for id := range ws.answered {
				fp.answered = append(fp.answered, id)
			}
			sort.Ints(fp.answered)
			serving[w] = fp
		}
		sh.mu.Unlock()
	}
	names := make([]string, 0, len(serving))
	for w := range serving {
		names = append(names, w)
	}
	sort.Strings(names)
	for _, w := range names {
		if a := serving[w].anchor; a != nil {
			fmt.Fprintf(&b, "%s:q", w)
			for _, q := range a.Q {
				bits(q)
			}
			b.WriteString("u")
			for _, u := range a.U {
				bits(u)
			}
			b.WriteString(";")
		}
	}
	b.WriteString(";answered:")
	for _, w := range names {
		fmt.Fprintf(&b, "%s(", w)
		for _, id := range serving[w].answered {
			fmt.Fprintf(&b, "%d,", id)
		}
		b.WriteString(")")
	}

	b.WriteString(";store:")
	for _, w := range s.store.Workers() {
		st, _ := s.store.Worker(w)
		fmt.Fprintf(&b, "%s:q", w)
		for _, q := range st.Q {
			bits(q)
		}
		b.WriteString("u")
		for _, u := range st.U {
			bits(u)
		}
		b.WriteString(";")
	}
	b.WriteString(";profiles:")
	for _, pid := range s.store.ProfileIDs() {
		a, _ := s.store.ProfileAnchor(pid)
		fmt.Fprintf(&b, "%s:q", pid)
		for _, q := range a.Q {
			bits(q)
		}
		b.WriteString("u")
		for _, u := range a.U {
			bits(u)
		}
		b.WriteString(";")
	}
	return b.String()
}

// DiffFingerprints renders a human-readable bit-level diff of two
// fingerprints: the first maxSegments ";"-separated segments that differ,
// each shown as got/want. The crash suites attach it to failures (and CI
// uploads it as an artifact) so a divergence report names the exact
// drifting component — a worker's q/u bits, a view's S entry — instead of
// two multi-megabyte strings.
func DiffFingerprints(got, want string, maxSegments int) string {
	if got == want {
		return ""
	}
	if maxSegments <= 0 {
		maxSegments = 16
	}
	gs := strings.Split(got, ";")
	ws := strings.Split(want, ";")
	var b strings.Builder
	fmt.Fprintf(&b, "fingerprints differ: %d vs %d segments\n", len(gs), len(ws))
	n := len(gs)
	if len(ws) > n {
		n = len(ws)
	}
	shown := 0
	for i := 0; i < n && shown < maxSegments; i++ {
		var g, w string
		if i < len(gs) {
			g = gs[i]
		}
		if i < len(ws) {
			w = ws[i]
		}
		if g == w {
			continue
		}
		shown++
		fmt.Fprintf(&b, "segment %d:\n  got:  %s\n  want: %s\n", i, clip(g), clip(w))
	}
	if shown == maxSegments {
		b.WriteString("(further divergent segments elided)\n")
	}
	return b.String()
}

// clip bounds one diff line so a huge segment (the answer log) cannot
// drown the report.
func clip(s string) string {
	const max = 512
	if len(s) <= max {
		return s
	}
	return s[:max] + fmt.Sprintf("… (%d bytes)", len(s))
}
