// Campaign hibernation: release a quiescent system's memory while making
// the next boot as cheap as possible.
//
// Hibernate is Close plus one promise: before the memory is released, a
// final state snapshot covering the ENTIRE durable log is written through
// the same serial shadow-replica path the background snapshot passes use
// (the live concurrent system is never serialized — its state is not the
// canonical serial-replay state). A later Recover then restores the
// snapshot and replays an empty WAL suffix, so waking a hibernated
// campaign costs O(restore), not O(campaign history).
//
// The failure direction is chosen deliberately: every step after the WAL
// fsync only affects WAKE TIME, never state. A crash or error between the
// fsync and the snapshot write leaves the previous snapshot (or none) and
// the full log — the next boot replays a longer suffix and recovers the
// identical state. The hibernate-path crash suite in internal/registry
// asserts that bit-exactly at each step.
package core

import "fmt"

// Hibernate drains the system and closes it like Close, but first fsyncs
// the WAL and writes a final state snapshot covering every record the log
// holds, so the next Recover restores the snapshot and replays nothing.
// It returns an error when the final snapshot could not be written or
// does not cover the log's tail; the system is closed and its state is
// durable in the WAL either way — a failed Hibernate degrades the next
// wake to a longer replay, it never loses state. Requires an armed WAL:
// a memory-only campaign released from memory would simply be gone.
//
// The caller is responsible for quiescence: no Publish/Submit/Request may
// be in flight. A straggler racing the drain either commits before the
// final WAL fsync (and is covered by the snapshot or replayed from the
// suffix) or fails with ErrDurability and is never acknowledged.
func (s *System) Hibernate() error {
	if s.wal == nil {
		return fmt.Errorf("core: Hibernate needs an armed WAL")
	}
	// Stop the background rerun and maintenance workers; pending nudges
	// drain first, exactly as in Close.
	s.closed.Do(func() { close(s.quit) })
	s.wg.Wait()

	// Everything reserved so far must be power-loss durable before the
	// final snapshot pass reads the log: the pass replays the on-disk
	// stream, and the snapshot may only ever cover durable records.
	snapErr := s.wal.Sync()
	if snapErr == nil {
		// The maintenance worker has exited, so running the shadow pass on
		// this goroutine is race-free. The pass advances the serial shadow
		// replica over the whole durable stream and atomically replaces
		// the snapshot file with its state.
		snapErr = s.snapshotPass()
	}
	if snapErr == nil {
		// Verify-covering-seq: the written snapshot must cover the log's
		// tail, or the wake would pay a suffix replay we claimed to have
		// eliminated. (A mismatch means records landed after the drain —
		// the caller broke quiescence — and is surfaced loudly.)
		if covered, tail := s.snapSeq.Load(), s.wal.ReservedSeq(); covered != tail {
			snapErr = fmt.Errorf("final snapshot covers seq %d but the log ends at %d", covered, tail)
		}
	}
	// Release everything regardless: Close is idempotent past the
	// closed.Once above and flushes + fsyncs the WAL again on its way out.
	closeErr := s.Close()
	if snapErr != nil {
		return fmt.Errorf("core: hibernate snapshot: %w", snapErr)
	}
	return closeErr
}
