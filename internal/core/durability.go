// Durability: the orchestrator's write-ahead logging and crash recovery.
//
// When a WAL is armed (Recover), every accepted mutation — the campaign
// publication, each golden or regular answer, and each worker-profile
// seed adopted from the long-run store — is reserved in the log
// under the same lock that orders the in-memory answer log, so the durable
// order equals the order the serial-replay equivalence proofs are anchored
// to. Submit acknowledges only after the record's group-commit batch is
// down. Recovery replays the checkpoint prefix and then the live segments
// through the ordinary Publish/Submit path with periodic reruns forced
// synchronous, which reconstructs the exact deterministic serial state.
package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"docs/internal/model"
	"docs/internal/wal"
)

// ErrDurability marks failures of the durability promise itself — the WAL
// could not accept or flush a record — as opposed to validation errors.
// The mutation that triggered it is already applied in memory; callers
// (the HTTP server) use the distinction to answer 5xx instead of 4xx.
var ErrDurability = errors.New("durability failure")

// RecoveryInfo describes what a Recover call replayed.
type RecoveryInfo struct {
	// Enabled is true once a WAL is armed.
	Enabled bool
	// CheckpointRecords is how many records came from the checkpoint file.
	CheckpointRecords int
	// Records is the total records replayed (checkpoint + segments). With
	// a snapshot-assisted boot this counts only the suffix past the
	// snapshot — the records the boot actually paid to re-apply.
	Records int
	// TornTail is true when the final segment ended in a torn record that
	// was dropped (the crash interrupted an unacknowledged append).
	TornTail bool
	// LastSeq is the sequence number serving resumed from.
	LastSeq uint64
	// SnapshotUsed is true when the boot restored a state snapshot and
	// replayed only the WAL records past SnapshotSeq.
	SnapshotUsed bool
	// SnapshotSeq is the WAL sequence the restored snapshot covered.
	SnapshotSeq uint64
	// SnapshotRejected carries the reason a present snapshot was NOT used —
	// torn, corrupt, structurally invalid, or claiming sequences past the
	// durable log — in which case the boot fell back to a full replay
	// (losing time, never state). Empty when no snapshot existed or it was
	// used.
	SnapshotRejected string
	// Duration is the wall-clock cost of the replay — the recovery lag a
	// restarted server paid before it could serve again.
	Duration time.Duration
}

// Recover arms the write-ahead log at dir, first replaying any state a
// previous process left there: the checkpoint prefix, then every intact
// WAL record after it, all through the ordinary Publish/Submit path. The
// periodic batch rerun runs synchronously during replay even when
// Config.AsyncRerun is set, so the recovered state is the deterministic
// serial state of the logged stream — bit-identical to an uninterrupted
// serial run, which the crash-injection tests assert record by record.
//
// Recover must be called once, before any Publish or Submit (it refuses
// otherwise). After it returns, every subsequent accepted mutation is
// appended to the log with group-commit batching.
func (s *System) Recover(dir string) (RecoveryInfo, error) {
	var info RecoveryInfo
	if dir == "" {
		return info, fmt.Errorf("core: empty WAL directory")
	}
	s.mu.RLock()
	published := len(s.tasks) > 0
	s.mu.RUnlock()
	if published || s.submissions.Load() != 0 || s.wal != nil {
		return info, fmt.Errorf("core: Recover must run once, before serving")
	}

	//docs:allow clock recovery duration is diagnostic metadata, never replayed or fingerprinted
	start := time.Now()
	s.recovering = true

	cp, err := wal.ReadCheckpoint(dir)
	if err != nil {
		s.recovering = false
		return info, err
	}
	var cpSeq uint64
	if cp != nil {
		cpSeq = cp.LastSeq
		s.ckptLastSeq, s.ckptBytes = cp.LastSeq, cp.ValidBytes
	}

	// Fallback ladder: state snapshot → checkpoint → segments. The newest
	// usable snapshot restores the serial state through its covered
	// sequence bit-exactly; only the suffix past it is replayed. A torn,
	// corrupt, invalid, or log-overreaching snapshot is rejected LOUDLY
	// (RecoveryInfo.SnapshotRejected) and the boot degrades to the full
	// replay below — recovery then costs time, never state.
	var snapSeq uint64
	snap, reject := loadUsableSnapshot(dir, cpSeq)
	info.SnapshotRejected = reject
	if snap != nil && reject == "" {
		if rerr := s.restoreSnapshot(snap); rerr != nil {
			// restoreSnapshot validates before mutating, so the system is
			// still virgin and the full replay below recovers everything.
			info.SnapshotRejected = rerr.Error()
		} else {
			snapSeq = snap.Seq
			info.SnapshotUsed, info.SnapshotSeq = true, snapSeq
			info.LastSeq = snapSeq
			s.snapSeq.Store(snapSeq)
		}
	}

	if cp != nil {
		for _, rec := range cp.Records {
			if rec.Seq <= snapSeq {
				// The snapshot already embodies this record's effect.
				continue
			}
			// Checkpointed records are not mirrored into durLog: the
			// in-memory mirror holds only the un-checkpointed suffix (the
			// next checkpoint extends the file rather than rebuilding the
			// whole stream from RAM).
			if err := s.applyRecord(rec, false); err != nil {
				s.recovering = false
				return info, fmt.Errorf("core: checkpoint replay: %w", err)
			}
			info.CheckpointRecords++
			info.Records++
			if rec.Seq > info.LastSeq {
				info.LastSeq = rec.Seq
			}
		}
	}
	// Segments below the checkpoint's coverage are skipped wholesale; when
	// nothing needs the mirror, segments below the snapshot are too — that
	// skip is what makes a snapshot boot O(suffix) in I/O as well as CPU.
	floor := cpSeq
	if s.cfg.CheckpointEvery <= 0 && snapSeq > floor {
		floor = snapSeq
	}
	st, err := wal.ReplayFrom(dir, floor, func(rec wal.Record) error {
		if rec.Seq <= snapSeq {
			// Covered by the snapshot but not yet by the checkpoint file:
			// the record's effect is already restored, but it must still
			// enter the un-checkpointed durLog mirror so the next checkpoint
			// pass appends it. Replay order keeps the mirror in sequence
			// order.
			s.logMu.Lock()
			s.durLog = append(s.durLog, rec)
			s.logMu.Unlock()
			if rec.Seq > info.LastSeq {
				info.LastSeq = rec.Seq
			}
			return nil
		}
		if err := s.applyRecord(rec, s.cfg.CheckpointEvery > 0); err != nil {
			return err
		}
		info.Records++
		info.LastSeq = rec.Seq
		return nil
	})
	s.recovering = false
	if err != nil {
		return info, fmt.Errorf("core: WAL replay: %w", err)
	}
	info.TornTail = st.TornTail

	log, err := wal.Open(dir, wal.Options{
		SegmentBytes: s.cfg.WALSegmentBytes,
		Sync:         s.cfg.WALSync,
	})
	if err != nil {
		return info, err
	}
	s.wal = log
	s.walDir = dir
	info.Enabled = true
	//docs:allow clock recovery duration is diagnostic metadata, never replayed or fingerprinted
	info.Duration = time.Since(start)
	s.recovery = info
	if s.cfg.CheckpointEvery > 0 || s.cfg.SnapshotEvery > 0 {
		s.wg.Add(1)
		go s.maintenanceWorker()
	}
	return info, nil
}

// Recovery returns what the last Recover call replayed (zero value when no
// WAL is armed).
func (s *System) Recovery() RecoveryInfo { return s.recovery }

// WALSeq returns the sequence number of the last durable record, 0 when no
// WAL is armed.
func (s *System) WALSeq() uint64 {
	if s.wal == nil {
		return 0
	}
	return s.wal.LastSeq()
}

// Checkpoints returns how many WAL checkpoints have completed and failed.
func (s *System) Checkpoints() (completed, failed int64) {
	return s.ckpts.Load(), s.ckptErrs.Load()
}

// applyRecord replays one durable record through the ordinary serving path.
// The WAL is nil during recovery, so the replay does not re-log; with
// mirror set the record enters the un-checkpointed durLog suffix with its
// original sequence number (false for records the checkpoint file already
// holds).
//
// This is THE replay entry point — recovery, checkpoint replay and the
// snapshot shadow replica all funnel through it — so docs-lint roots its
// determinism analysis here: everything it reaches must replay
// bit-identically.
//
//docs:deterministic
func (s *System) applyRecord(rec wal.Record, mirror bool) error {
	switch rec.Kind {
	case wal.KindPublish:
		var tasks []*model.Task
		if err := json.Unmarshal(rec.Blob, &tasks); err != nil {
			return fmt.Errorf("publish record %d: %w", rec.Seq, err)
		}
		if err := s.Publish(tasks); err != nil {
			return fmt.Errorf("publish record %d: %w", rec.Seq, err)
		}
	case wal.KindAnswer:
		if err := s.Submit(rec.Worker, rec.Task, rec.Choice); err != nil {
			return fmt.Errorf("answer record %d: %w", rec.Seq, err)
		}
	case wal.KindBatch:
		// A batched submit: expand the group and replay every item through
		// the ordinary Submit path. Items were each accepted when logged
		// (rejected items never enter the record), so a rejection here means
		// the log is corrupt and must fail loudly. Per-item Submit keeps the
		// rerun/checkpoint cadence identical to the live batched run — and,
		// because this is the single replay entry, checkpoint replay and the
		// snapshot shadow replica handle batches with no further code.
		items, extra, err := wal.DecodeBatch(rec.Blob, 0)
		if err != nil || extra != 0 {
			return fmt.Errorf("batch record %d: bad body: %v", rec.Seq, err)
		}
		for i, it := range items {
			if err := s.Submit(it.Worker, it.Task, it.Choice); err != nil {
				return fmt.Errorf("batch record %d item %d: %w", rec.Seq, i+1, err)
			}
		}
		s.batches.Add(1)
		s.batchAnswers.Add(int64(len(items)))
	case wal.KindSeed:
		// A worker-profile seed: re-install the exact float64 bits the live
		// system adopted from the long-run store, at the same point in the
		// record order. The store itself is not consulted — its boot-time
		// contents may postdate this read.
		if rec.Worker == "" {
			return fmt.Errorf("seed record %d has no worker", rec.Seq)
		}
		st, profiled, err := decodeSeed(rec.Blob, s.m)
		if err != nil {
			return fmt.Errorf("seed record %d: %w", rec.Seq, err)
		}
		s.applySeed(rec.Worker, st, profiled)
	default:
		return fmt.Errorf("record %d has unknown kind %d", rec.Seq, rec.Kind)
	}
	if mirror {
		s.logMu.Lock()
		s.durLog = append(s.durLog, rec)
		s.logMu.Unlock()
	}
	return nil
}

// walReserve queues one record for the armed WAL and, when checkpointing
// is enabled, mirrors it into the checkpoint source (with checkpoints off
// nothing ever drains the mirror, so it must not grow). Callers hold logMu
// (directly or transitively), which makes reservation order — and
// therefore durable replay order — equal to the in-memory answer-log
// order. Returns a zero Pending when no WAL is armed.
func (s *System) walReserve(rec wal.Record) (wal.Pending, error) {
	if s.wal == nil {
		return wal.Pending{}, nil
	}
	p, err := s.wal.Reserve(rec)
	if err != nil {
		return wal.Pending{}, fmt.Errorf("core: %w: %v", ErrDurability, err)
	}
	if s.cfg.CheckpointEvery > 0 {
		rec.Seq = p.Seq()
		s.durLog = append(s.durLog, rec)
	}
	return p, nil
}

// walCommit waits for a reservation's group-commit batch. A zero Pending
// (no WAL) is a no-op.
func (s *System) walCommit(p wal.Pending) error {
	if p == (wal.Pending{}) {
		return nil
	}
	if err := p.Wait(); err != nil {
		// The mutation is already applied in memory; what failed is the
		// durability promise. Surface it so the platform can stop acking.
		return fmt.Errorf("core: %w: %v", ErrDurability, err)
	}
	return nil
}

// maybeCheckpoint nudges the maintenance worker every CheckpointEvery
// accepted answers.
func (s *System) maybeCheckpoint(n int64) {
	z := s.cfg.CheckpointEvery
	if s.wal == nil || z <= 0 || n%int64(z) != 0 {
		return
	}
	select {
	case s.ckptCh <- struct{}{}:
	default: // one is already pending; it will cover this batch too
	}
}

// maybeSnapshot nudges the maintenance worker every SnapshotEvery accepted
// answers.
func (s *System) maybeSnapshot(n int64) {
	z := s.cfg.SnapshotEvery
	if s.wal == nil || z <= 0 || n%int64(z) != 0 {
		return
	}
	select {
	case s.snapCh <- struct{}{}:
	default: // one is already pending; it will cover this batch too
	}
}

// maintenanceWorker runs WAL checkpoint passes and state-snapshot passes
// on one goroutine: the snapshot pass reads the checkpoint file and the
// segments the checkpoint pass truncates, and sharing the goroutine makes
// those reads race-free by construction. On shutdown each pending nudge is
// drained so a graceful Close leaves the freshest possible boot artifacts.
func (s *System) maintenanceWorker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.quit:
			select {
			case <-s.ckptCh:
				s.runCheckpoint()
			default:
			}
			select {
			case <-s.snapCh:
				s.runSnapshotPass()
			default:
			}
			return
		case <-s.ckptCh:
			s.runCheckpoint()
		case <-s.snapCh:
			s.runSnapshotPass()
		}
	}
}

// runCheckpoint appends the records accepted since the last pass to the
// checkpoint file (O(new), not a prefix rewrite — the tail position is
// cached across passes) and then truncates the segments it now covers.
// The checkpoint stores the record stream rather than engine floats: the
// serving core's canonical state is defined as the serial replay of its
// log, so replaying the stream is the only representation that recovers
// it bit-for-bit. durLog holds only the un-checkpointed suffix, so the
// mirror's steady-state memory is bounded by the checkpoint cadence, not
// the campaign length.
func (s *System) runCheckpoint() {
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	s.logMu.Lock()
	fresh := append([]wal.Record(nil), s.durLog...)
	s.logMu.Unlock()
	if len(fresh) > 0 {
		lastSeq, bytes, err := wal.ExtendCheckpoint(s.walDir, s.ckptLastSeq, s.ckptBytes, fresh)
		if err != nil {
			s.ckptErrs.Add(1)
			return
		}
		s.ckptLastSeq, s.ckptBytes = lastSeq, bytes
		// Trim the mirror immediately — the checkpoint now owns these
		// records, and a later failure must not leave them queued for
		// re-append (a duplicate would corrupt the stream). Records that
		// arrived since the snapshot stay: append order under logMu makes
		// the snapshot a strict prefix of the current durLog.
		s.logMu.Lock()
		s.durLog = append([]wal.Record(nil), s.durLog[len(fresh):]...)
		s.logMu.Unlock()
		// The checkpoint data is durable: the pass counts as completed even
		// if the segment cleanup below hits a transient error.
		s.ckpts.Add(1)
	}
	// Truncation runs every pass (not only when new records arrived), so a
	// previously failed cleanup is retried; until then the covered segments
	// merely linger — recovery skips their records by sequence number.
	if s.ckptLastSeq > 0 {
		if err := s.wal.TruncateBefore(s.ckptLastSeq); err != nil {
			s.ckptErrs.Add(1)
		}
	}
}
