// State snapshots: O(suffix) recovery instead of full-log replay.
//
// The serving core's canonical state is defined as the serial replay of
// its durable record stream, so a correct state snapshot must be exactly
// that serial state — and the live system, serving concurrently (and
// possibly rerunning inference asynchronously), is NOT in that state. The
// snapshot subsystem therefore never serializes the live System. Instead
// it maintains a serial *shadow replica*: a second System, permanently in
// replay mode (synchronous reruns, no WAL of its own, no writes to a
// persistent store), fed incrementally from the durable log by the
// background maintenance worker. Each snapshot pass advances the shadow
// over the records that became durable since the last pass and then
// serializes the shadow's complete state — every float as raw bits — into
// an atomically-replaced snapshot file keyed by the WAL sequence it
// covers. Because the shadow replayed exactly the records a booting
// process would, restoring the snapshot and replaying the WAL suffix past
// it reconstructs the full-replay state bit for bit; the crash-injection
// suite asserts that equality at every kill point, both ways.
//
// The trade-offs are explicit: the shadow doubles the campaign's resident
// state and re-pays the serial inference cost (including periodic batch
// reruns) in the background, in exchange for boot time proportional to
// the un-snapshotted suffix. The shadow is created lazily on the first
// snapshot pass, so campaigns that never reach the snapshot cadence pay
// nothing.
package core

import (
	"encoding/json"
	"fmt"
	"sort"

	"docs/internal/model"
	"docs/internal/snapshot"
	"docs/internal/store"
	"docs/internal/truth"
	"docs/internal/wal"
)

// WriteSnapshot serializes the system's current state as a recovery
// snapshot covering every WAL record reserved so far and atomically
// replaces <walDir>/snapshot with it. The caller asserts the system is
// quiescent and its state IS the serial state of the log — true
// immediately after Recover with no traffic served yet, and for campaigns
// only ever driven serially. The serving path never calls this on the live
// system; the background worker snapshots the serial shadow instead.
func (s *System) WriteSnapshot() error {
	if s.wal == nil {
		return fmt.Errorf("core: WriteSnapshot: no WAL armed")
	}
	seq := s.wal.ReservedSeq()
	// Everything the snapshot covers must be power-loss durable before the
	// snapshot can become the boot source; otherwise a lost tail would make
	// the snapshot claim records the log no longer holds.
	if err := s.wal.Sync(); err != nil {
		return err
	}
	st, err := s.exportState(seq)
	if err != nil {
		return err
	}
	if err := snapshot.Write(s.walDir, st); err != nil {
		return err
	}
	s.snapSeq.Store(seq)
	return nil
}

// Snapshots returns how many background snapshot passes have completed
// and failed.
func (s *System) Snapshots() (completed, failed int64) {
	return s.snaps.Load(), s.snapErrs.Load()
}

// LastSnapshotSeq returns the WAL sequence covered by the newest snapshot
// this process wrote or booted from (0 when none).
func (s *System) LastSnapshotSeq() uint64 { return s.snapSeq.Load() }

// exportState serializes the system's complete recoverable state at the
// given WAL sequence. The system must be quiescent (the shadow between
// passes, or a freshly recovered system before serving).
//
// A snapshot is compared bit-for-bit across boots, so this is a docs-lint
// determinism root: map iteration below must stay collect-then-sort (or
// per-key isolated), and every float must travel as raw bits.
//
//docs:deterministic
func (s *System) exportState(seq uint64) (*snapshot.State, error) {
	st := &snapshot.State{Seq: seq, Answers: s.submissions.Load()}

	s.mu.RLock()
	tasks := s.tasks
	for _, t := range s.tasks {
		if s.golden[t.ID] {
			st.GoldenIDs = append(st.GoldenIDs, t.ID)
		}
	}
	s.mu.RUnlock()
	if len(tasks) > 0 {
		blob, err := json.Marshal(tasks)
		if err != nil {
			return nil, fmt.Errorf("core: snapshot: %w", err)
		}
		st.Tasks = blob
	}

	for _, ts := range s.inc.ExportTasks() {
		st.TaskStates = append(st.TaskStates, snapshot.TaskState{
			ID:   ts.ID,
			MHat: snapshot.BitsMatrix(ts.MHat),
			S:    snapshot.Bits(ts.S),
		})
	}
	for _, w := range s.inc.Workers() {
		ws := s.inc.Worker(w)
		st.Workers = append(st.Workers, snapshot.WorkerStats{ID: w, Q: snapshot.Bits(ws.Q), U: snapshot.Bits(ws.U)})
	}

	// Per-worker serving state, gathered across the shards and sorted for a
	// deterministic encoding.
	type servingCopy struct {
		golden   []model.Answer
		profiled bool
		answered []int
		anchor   *truth.Stats
	}
	serving := make(map[string]*servingCopy)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for w, ws := range sh.workers {
			sc := &servingCopy{profiled: ws.profiled}
			sc.golden = append(sc.golden, ws.goldenAnswers...)
			for id := range ws.answered {
				sc.answered = append(sc.answered, id)
			}
			sort.Ints(sc.answered)
			if ws.anchor != nil {
				sc.anchor = ws.anchor.Clone()
			}
			serving[w] = sc
		}
		sh.mu.Unlock()
	}
	names := make([]string, 0, len(serving))
	for w := range serving {
		names = append(names, w)
	}
	sort.Strings(names)
	for _, w := range names {
		sc := serving[w]
		ws := snapshot.WorkerServing{ID: w, Profiled: sc.profiled, Answered: sc.answered}
		for _, a := range sc.golden {
			ws.GoldenTasks = append(ws.GoldenTasks, a.Task)
			ws.GoldenChoices = append(ws.GoldenChoices, a.Choice)
		}
		if sc.anchor != nil {
			ws.AnchorQ = snapshot.Bits(sc.anchor.Q)
			ws.AnchorU = snapshot.Bits(sc.anchor.U)
		}
		st.Serving = append(st.Serving, ws)
	}

	// The chronological answer log, column-packed with a worker dictionary.
	s.logMu.Lock()
	logCopy := append([]model.Answer(nil), s.log...)
	s.logMu.Unlock()
	widx := make(map[string]int)
	for _, a := range logCopy {
		i, ok := widx[a.Worker]
		if !ok {
			i = len(st.Log.Workers)
			widx[a.Worker] = i
			st.Log.Workers = append(st.Log.Workers, a.Worker)
		}
		st.Log.W = append(st.Log.W, i)
		st.Log.T = append(st.Log.T, a.Task)
		st.Log.C = append(st.Log.C, a.Choice)
	}

	// A persistent store is durable on its own and recovery never writes
	// it; a memory-only store is derived state that a full replay would
	// rebuild, so the snapshot must carry it.
	if !s.store.Persistent() {
		for _, w := range s.store.Workers() {
			ws, _ := s.store.Worker(w)
			st.Store = append(st.Store, snapshot.WorkerStats{ID: w, Q: snapshot.Bits(ws.Q), U: snapshot.Bits(ws.U)})
		}
		for _, pid := range s.store.ProfileIDs() {
			a, _ := s.store.ProfileAnchor(pid)
			st.StoreProfiles = append(st.StoreProfiles,
				snapshot.WorkerStats{ID: pid, Q: snapshot.Bits(a.Q), U: snapshot.Bits(a.U)})
		}
	}
	return st, nil
}

// restoreSnapshot installs a snapshot's state into a virgin system (no
// publish, no answers). It validates the entire snapshot against the
// system's configuration BEFORE mutating anything, so an error return
// leaves the system untouched and the caller can fall back to a full
// replay; an error after mutation begins is impossible by construction
// (every failing check runs in the validation phase).
//
//docs:deterministic
func (s *System) restoreSnapshot(snap *snapshot.State) error {
	s.mu.RLock()
	published := len(s.tasks) > 0
	s.mu.RUnlock()
	if published || s.submissions.Load() != 0 {
		return fmt.Errorf("core: snapshot restore into a serving system")
	}

	// --- validation phase: parse and cross-check everything ---
	var tasks []*model.Task
	if len(snap.Tasks) > 0 {
		if err := json.Unmarshal(snap.Tasks, &tasks); err != nil {
			return fmt.Errorf("core: snapshot tasks: %w", err)
		}
	}
	if len(tasks) == 0 {
		if snap.Seq > 0 || snap.Answers != 0 || snap.Log.Len() != 0 || len(snap.TaskStates) != 0 {
			return fmt.Errorf("core: snapshot has state but no publication")
		}
		return nil // empty snapshot of an unpublished campaign: nothing to do
	}
	byID := make(map[int]*model.Task, len(tasks))
	for _, t := range tasks {
		if t.Domain == nil {
			return fmt.Errorf("core: snapshot task %d has no domain vector", t.ID)
		}
		if err := t.Validate(s.m); err != nil {
			return fmt.Errorf("core: snapshot: %w", err)
		}
		if _, dup := byID[t.ID]; dup {
			return fmt.Errorf("core: snapshot duplicate task %d", t.ID)
		}
		byID[t.ID] = t
	}
	golden := make(map[int]bool, len(snap.GoldenIDs))
	for _, id := range snap.GoldenIDs {
		t, ok := byID[id]
		if !ok || golden[id] {
			return fmt.Errorf("core: snapshot golden task %d unknown or repeated", id)
		}
		if t.Truth == model.NoTruth {
			return fmt.Errorf("core: snapshot golden task %d has no ground truth", id)
		}
		golden[id] = true
	}

	// Every non-golden task must carry exactly one inference state.
	states := make(map[int]snapshot.TaskState, len(snap.TaskStates))
	for _, ts := range snap.TaskStates {
		t, ok := byID[ts.ID]
		if !ok || golden[ts.ID] {
			return fmt.Errorf("core: snapshot state for unknown or golden task %d", ts.ID)
		}
		if _, dup := states[ts.ID]; dup {
			return fmt.Errorf("core: snapshot repeats task state %d", ts.ID)
		}
		ell := t.NumChoices()
		if len(ts.MHat) != s.m || len(ts.S) != ell {
			return fmt.Errorf("core: snapshot task %d state has wrong dimensions", ts.ID)
		}
		for _, row := range ts.MHat {
			if len(row) != ell {
				return fmt.Errorf("core: snapshot task %d state has wrong dimensions", ts.ID)
			}
		}
		states[ts.ID] = ts
	}
	if len(states) != len(tasks)-len(golden) {
		return fmt.Errorf("core: snapshot has %d task states for %d non-golden tasks",
			len(states), len(tasks)-len(golden))
	}

	// Decode and validate the chronological log; rebuild per-task answer
	// lists (each task's accepted answers are its per-task subsequence).
	lg := &snap.Log
	if len(lg.T) != len(lg.W) || len(lg.C) != len(lg.W) {
		return fmt.Errorf("core: snapshot log columns disagree")
	}
	if snap.Answers != int64(lg.Len()) {
		return fmt.Errorf("core: snapshot answer count %d != log length %d", snap.Answers, lg.Len())
	}
	log := make([]model.Answer, lg.Len())
	byTask := make(map[int][]model.Answer)
	seen := make(map[int]map[int]bool) // task -> worker index -> answered
	for i := range lg.W {
		wi, tid, c := lg.W[i], lg.T[i], lg.C[i]
		if wi < 0 || wi >= len(lg.Workers) {
			return fmt.Errorf("core: snapshot log entry %d has bad worker index", i)
		}
		t, ok := byID[tid]
		if !ok || golden[tid] {
			return fmt.Errorf("core: snapshot log entry %d targets unknown or golden task %d", i, tid)
		}
		if c < 0 || c >= t.NumChoices() {
			return fmt.Errorf("core: snapshot log entry %d has choice %d out of range", i, c)
		}
		if seen[tid] == nil {
			seen[tid] = make(map[int]bool)
		}
		if seen[tid][wi] {
			return fmt.Errorf("core: snapshot log repeats worker %q on task %d", lg.Workers[wi], tid)
		}
		seen[tid][wi] = true
		a := model.Answer{Worker: lg.Workers[wi], Task: tid, Choice: c}
		log[i] = a
		byTask[tid] = append(byTask[tid], a)
	}

	// Worker statistics and serving state.
	workerStats := make(map[string]*truth.Stats, len(snap.Workers))
	for _, ws := range snap.Workers {
		st, err := statsFromBits(ws, s.m)
		if err != nil {
			return err
		}
		if _, dup := workerStats[ws.ID]; dup {
			return fmt.Errorf("core: snapshot repeats worker %q", ws.ID)
		}
		workerStats[ws.ID] = st
	}
	anchors := make(map[string]*truth.Stats)
	for _, ws := range snap.Serving {
		if len(ws.GoldenTasks) != len(ws.GoldenChoices) {
			return fmt.Errorf("core: snapshot serving state for %q has mismatched golden columns", ws.ID)
		}
		if len(ws.AnchorQ) > 0 || len(ws.AnchorU) > 0 {
			a, err := statsFromBits(snapshot.WorkerStats{ID: ws.ID, Q: ws.AnchorQ, U: ws.AnchorU}, s.m)
			if err != nil {
				return fmt.Errorf("core: snapshot anchor: %w", err)
			}
			anchors[ws.ID] = a
		}
		for i, tid := range ws.GoldenTasks {
			t, ok := byID[tid]
			if !ok || !golden[tid] {
				return fmt.Errorf("core: snapshot golden answer for %q targets non-golden task %d", ws.ID, tid)
			}
			if c := ws.GoldenChoices[i]; c < 0 || c >= t.NumChoices() {
				return fmt.Errorf("core: snapshot golden answer for %q has choice out of range", ws.ID)
			}
		}
		for _, tid := range ws.Answered {
			if _, ok := byID[tid]; !ok {
				return fmt.Errorf("core: snapshot answered set for %q holds unknown task %d", ws.ID, tid)
			}
		}
	}
	storeStats := make([]storeEntry, 0, len(snap.Store))
	for _, ws := range snap.Store {
		st, err := statsFromBits(ws, s.m)
		if err != nil {
			return err
		}
		storeStats = append(storeStats, storeEntry{id: ws.ID, st: st})
	}
	storeProfiles := make([]storeEntry, 0, len(snap.StoreProfiles))
	for _, ws := range snap.StoreProfiles {
		st, err := statsFromBits(ws, s.m)
		if err != nil {
			return err
		}
		if ws.ID == "" {
			return fmt.Errorf("core: snapshot store profile with empty ID")
		}
		storeProfiles = append(storeProfiles, storeEntry{id: ws.ID, st: st})
	}
	if (len(storeStats) > 0 || len(storeProfiles) > 0) && s.store.Persistent() {
		// A snapshot taken over a memory-only store cannot restore into a
		// persistent one: the persistent store is its own source of truth.
		return fmt.Errorf("core: snapshot carries store state but the store is persistent")
	}

	// --- mutation phase: nothing below can fail ---
	s.mu.Lock()
	s.tasks = tasks
	s.byID = byID
	s.golden = golden
	for _, t := range tasks {
		if golden[t.ID] {
			s.goldenList = append(s.goldenList, t)
		}
	}
	s.mu.Unlock()

	for _, t := range tasks {
		if golden[t.ID] {
			continue
		}
		if err := s.inc.AddTask(t); err != nil {
			panic(fmt.Sprintf("core: snapshot restore: %v", err)) // virgin engine, validated tasks
		}
		if err := s.inc.RestoreTask(truthState(states[t.ID]), byTask[t.ID]); err != nil {
			panic(fmt.Sprintf("core: snapshot restore: %v", err)) // dimensions validated above
		}
	}
	statIDs := make([]string, 0, len(workerStats))
	for id := range workerStats {
		statIDs = append(statIDs, id)
	}
	sort.Strings(statIDs)
	for _, id := range statIDs {
		_ = s.inc.SetWorker(id, workerStats[id])
	}
	for _, ws := range snap.Serving {
		sh := s.shard(ws.ID)
		sh.mu.Lock()
		state := sh.state(ws.ID)
		state.profiled = ws.Profiled
		state.anchor = anchors[ws.ID]
		for i, tid := range ws.GoldenTasks {
			state.goldenAnswers = append(state.goldenAnswers,
				model.Answer{Worker: ws.ID, Task: tid, Choice: ws.GoldenChoices[i]})
		}
		for _, tid := range ws.Answered {
			state.answered[tid] = true
		}
		sh.mu.Unlock()
	}
	for _, e := range storeStats {
		_ = s.store.Put(e.id, e.st)
	}
	for _, e := range storeProfiles {
		_ = s.store.SetProfile(e.id, e.st)
	}
	s.logMu.Lock()
	s.log = log
	s.logMu.Unlock()
	s.submissions.Store(snap.Answers)

	// Rebuild the candidate index and lease counters exactly as Publish
	// would, then resync openness from the restored truth snapshots so
	// tasks already at their redundancy cap start closed.
	master := make([]candidate, 0, len(tasks))
	for _, t := range tasks {
		if golden[t.ID] {
			continue
		}
		c := candidate{id: t.ID, domain: t.Domain, h: s.inc.Handle(t.ID)}
		if s.leases != nil {
			s.leases.registerTask(t.ID)
			c.leases = s.leases.counts[t.ID]
		}
		master = append(master, c)
	}
	ci := newCandidateIndex(master)
	ci.resync(s.cfg.AnswersPerTask)
	s.index.Store(ci)
	return nil
}

type storeEntry struct {
	id string
	st *truth.Stats
}

// statsFromBits rebuilds validated worker statistics from their raw-bit
// encoding.
func statsFromBits(ws snapshot.WorkerStats, m int) (*truth.Stats, error) {
	st := &truth.Stats{Q: model.QualityVector(snapshot.Floats(ws.Q)), U: snapshot.Floats(ws.U)}
	if err := st.Validate(m); err != nil {
		return nil, fmt.Errorf("core: snapshot worker %q: %w", ws.ID, err)
	}
	return st, nil
}

// truthState converts a codec task state to the truth engine's form.
func truthState(ts snapshot.TaskState) truth.TaskState {
	return truth.TaskState{ID: ts.ID, MHat: snapshot.FloatsMatrix(ts.MHat), S: snapshot.Floats(ts.S)}
}

// loadUsableSnapshot reads dir's snapshot and applies the trust guard: a
// snapshot claiming to cover sequences past the durable log's tail (what a
// power loss under SyncNever can leave) is rejected. cpSeq is the
// checkpoint's coverage, which the caller has already read — the
// checkpoint can be ahead of the segments. Returns the snapshot (nil when
// none exists or it was rejected) and the loud rejection reason (empty
// when absent or usable).
func loadUsableSnapshot(dir string, cpSeq uint64) (*snapshot.State, string) {
	snap, err := snapshot.Read(dir)
	if err != nil {
		return nil, err.Error()
	}
	if snap == nil {
		return nil, ""
	}
	tail, err := wal.TailSeq(dir)
	if err != nil {
		return nil, err.Error()
	}
	if cpSeq > tail {
		tail = cpSeq
	}
	if snap.Seq > tail {
		return nil, fmt.Sprintf("snapshot covers seq %d but the durable log ends at %d", snap.Seq, tail)
	}
	return snap, ""
}

// --- the background snapshot pass (runs on the maintenance worker) ---

// runSnapshotPass advances the serial shadow replica over the records that
// became durable since the last pass and atomically replaces the snapshot
// file with the shadow's serialized state.
func (s *System) runSnapshotPass() {
	if err := s.snapshotPass(); err != nil {
		s.snapErrs.Add(1)
		return
	}
	s.snaps.Add(1)
}

func (s *System) snapshotPass() error {
	if s.shadow == nil {
		if err := s.initShadow(); err != nil {
			return err
		}
	}
	// Records past the shadow normally live in the surviving segments:
	// truncation lags the checkpoint and never touches the active segment.
	// The checkpoint file — which holds the ENTIRE record prefix and would
	// cost O(campaign) to decode on every pass — is consulted only when
	// the segments actually have a gap (their oldest possible record
	// starts past shadowSeq+1, so some needed records were truncated into
	// the checkpoint). The maintenance worker runs checkpoint passes and
	// snapshot passes on one goroutine, so truncation never races this.
	advanced := false
	floor := s.shadowSeq
	oldest, err := wal.OldestSeq(s.walDir)
	if err != nil {
		return err
	}
	if oldest == 0 || oldest > s.shadowSeq+1 {
		cp, err := wal.ReadCheckpoint(s.walDir)
		if err != nil {
			return err
		}
		if cp != nil {
			for _, rec := range cp.Records {
				if rec.Seq <= s.shadowSeq {
					continue
				}
				if err := s.applyToShadow(rec); err != nil {
					return err
				}
				advanced = true
			}
			if cp.LastSeq > floor {
				floor = cp.LastSeq
			}
		}
	}
	// A concurrent append can leave a torn final frame in the read; that is
	// fine — those records are not durable yet and the next pass picks them
	// up once they are whole.
	if _, err := wal.ReplayFrom(s.walDir, floor, func(rec wal.Record) error {
		if err := s.applyToShadow(rec); err != nil {
			return err
		}
		advanced = true
		return nil
	}); err != nil {
		return err
	}
	if !advanced && s.snapSeq.Load() == s.shadowSeq {
		return nil // nothing new since the last written snapshot
	}
	// Everything the snapshot covers must be power-loss durable before the
	// snapshot can become the boot source.
	if err := s.wal.Sync(); err != nil {
		return err
	}
	st, err := s.shadow.exportState(s.shadowSeq)
	if err != nil {
		return err
	}
	if err := snapshot.Write(s.walDir, st); err != nil {
		return err
	}
	s.snapSeq.Store(s.shadowSeq)
	return nil
}

// applyToShadow replays one record into the shadow replica, advancing its
// position. An apply failure can leave the record HALF-applied (Submit
// ingests the answer before a due synchronous rerun can fail), and a
// half-applied replica would wedge every later pass on misleading
// duplicate-answer errors — so the replica is discarded on failure and
// the next pass rebuilds it from the last good snapshot (or from zero)
// and retries cleanly, surfacing the real error each time.
func (s *System) applyToShadow(rec wal.Record) error {
	if err := s.shadow.applyRecord(rec, false); err != nil {
		_ = s.shadow.Close()
		s.shadow = nil
		s.shadowSeq = 0
		return err
	}
	s.shadowSeq = rec.Seq
	return nil
}

// initShadow builds the serial shadow replica, booting it from the
// existing snapshot when a usable one is on disk (the common case after a
// snapshot-assisted boot) and from zero otherwise.
func (s *System) initShadow() error {
	cfg := s.cfg
	cfg.KB = s.kb
	cfg.AsyncRerun = false // the shadow must replay serially
	cfg.SnapshotEvery = -1
	cfg.CheckpointEvery = -1
	cfg.LeaseTTL = 0 // the shadow never serves requests
	if s.store.Persistent() {
		// Share the store read-only: the shadow stays in replay mode, which
		// skips persistent-store merges (they are already durable).
		cfg.Store = s.store
	} else {
		// A memory-only store is derived state; the shadow rebuilds its own
		// copy exactly as a booting replay would, and the snapshot carries it.
		ms, err := store.Open("", s.m)
		if err != nil {
			return err
		}
		cfg.Store = ms
	}
	sh, err := New(cfg)
	if err != nil {
		return err
	}
	sh.recovering = true // permanent replay mode: sync reruns, no store merges
	// One-time checkpoint read for the trust guard (the checkpoint can be
	// ahead of the segments); the per-pass loop above avoids it.
	var cpSeq uint64
	if cp, err := wal.ReadCheckpoint(s.walDir); err == nil && cp != nil {
		cpSeq = cp.LastSeq
	}
	if snap, reject := loadUsableSnapshot(s.walDir, cpSeq); snap != nil && reject == "" {
		if err := sh.restoreSnapshot(snap); err == nil {
			s.shadowSeq = snap.Seq
		}
		// A restore failure is not fatal: the shadow just replays from zero
		// and the next written snapshot heals the file.
	}
	s.shadow = sh
	return nil
}
