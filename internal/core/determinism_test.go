package core

import (
	"fmt"
	"testing"

	"docs/internal/crowd"
	"docs/internal/dataset"
	"docs/internal/kb"
)

func campaignTrace(t *testing.T) string {
	ds := dataset.Item(3)
	tasks := ds.Tasks[:120]
	// Regenerate tasks fresh each run (Item(3) returns same pointers otherwise? No — fresh objects each call)
	s := newSystem(t, Config{GoldenCount: 8, HITSize: 4, AnswersPerTask: 5, RerunEvery: 50})
	if err := s.Publish(tasks); err != nil {
		t.Fatal(err)
	}
	m := kb.MustDefault().Domains().Size()
	pop, err := crowd.NewPopulation(crowd.Config{NumWorkers: 24, M: m, RelevantDomains: ds.YahooIndex, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	r := pop.Rand()
	trace := ""
	for hit := 0; hit < 400; hit++ {
		w := pop.Arrival()
		got, err := s.Request(w.ID, 4)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) == 0 {
			break
		}
		for _, tk := range got {
			c := w.Answer(tk, r)
			trace += fmt.Sprintf("%s:%d:%d;", w.ID, tk.ID, c)
			if err := s.Submit(w.ID, tk.ID, c); err != nil {
				t.Fatal(err)
			}
		}
	}
	return trace
}

func TestCampaignDeterminism(t *testing.T) {
	a := campaignTrace(t)
	b := campaignTrace(t)
	if a == b {
		t.Log("traces identical")
		return
	}
	// find first divergence
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			lo := i - 120
			if lo < 0 {
				lo = 0
			}
			hi := i + 120
			if hi > n {
				hi = n
			}
			t.Fatalf("diverge at %d:\nA: ...%s\nB: ...%s", i, a[lo:hi], b[lo:hi])
		}
	}
	t.Fatalf("one trace is a prefix of the other (len %d vs %d)", len(a), len(b))
}
