package core

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"docs/internal/mathx"
	"docs/internal/snapshot"
	"docs/internal/wal"
)

// writeStateAt fabricates the snapshot a background pass would have
// written after the first `covered` records: it replays them through a
// WAL-less serial system (exactly what the shadow replica does) and
// serializes that state keyed by the last covered sequence.
func writeStateAt(t *testing.T, cfg Config, dir string, recs []wal.Record, covered int) {
	t.Helper()
	if covered <= 0 {
		t.Fatal("writeStateAt needs a non-empty prefix")
	}
	ref := newSystem(t, cfg)
	defer ref.Close()
	applyPrefix(t, ref, recs[:covered])
	st, err := ref.exportState(recs[covered-1].Seq)
	if err != nil {
		t.Fatal(err)
	}
	if err := snapshot.Write(dir, st); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotRoundTripProperty drives randomized campaign shapes (task
// count, golden count, redundancy, rerun cadence) through the logged
// serial harness, snapshots the recovered state, and asserts a
// snapshot-assisted boot reproduces the full-replay boot's Fingerprint bit
// for bit — then keeps serving both systems the same answer stream and
// asserts they stay identical (the restored engine state, answer lists,
// counters and rerun boundaries all have to be exact for that to hold).
func TestSnapshotRoundTripProperty(t *testing.T) {
	r := mathx.NewRand(2026)
	for i := 0; i < 8; i++ {
		cfg := Config{
			GoldenCount:     []int{-1, 3, 4, 5}[r.Intn(4)],
			HITSize:         3 + r.Intn(3),
			AnswersPerTask:  2 + r.Intn(3),
			RerunEvery:      15 + r.Intn(20),
			CheckpointEvery: -1,
			WALSegmentBytes: 1 << 10,
		}
		nTasks := 25 + r.Intn(40)
		dir := t.TempDir()
		recs := runLoggedCampaign(t, cfg, dir, nTasks)
		if len(recs) == 0 {
			t.Fatalf("case %d: empty campaign", i)
		}

		full := newSystem(t, cfg)
		if _, err := full.Recover(dir); err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		want := full.Fingerprint()
		if err := full.WriteSnapshot(); err != nil {
			t.Fatalf("case %d: %v", i, err)
		}

		snapped := newSystem(t, cfg)
		info, err := snapped.Recover(dir)
		if err != nil {
			t.Fatalf("case %d: snapshot boot: %v", i, err)
		}
		if !info.SnapshotUsed || info.SnapshotRejected != "" {
			t.Fatalf("case %d: snapshot not used (rejected: %q)", i, info.SnapshotRejected)
		}
		if info.Records != 0 {
			t.Fatalf("case %d: full-coverage snapshot still replayed %d records", i, info.Records)
		}
		if got := snapped.Fingerprint(); got != want {
			t.Fatalf("case %d: snapshot boot differs from replay boot\nsnap: %.300s\nfull: %.300s", i, got, want)
		}

		// Continue serving the same stream down both systems: any drift in
		// the restored numerators, answer lists, worker stats or the rerun
		// cadence counter would surface here.
		var regular []int
		goldenSet := map[int]bool{}
		for _, id := range snapped.GoldenTasks() {
			goldenSet[id] = true
		}
		for _, tk := range snapped.InferTasks() {
			regular = append(regular, tk.ID)
		}
		sort.Ints(regular)
		for j := 0; j < 25; j++ {
			w := fmt.Sprintf("x%d", j%7)
			id := regular[j%len(regular)]
			c := j % 2
			errA := full.Submit(w, id, c)
			errB := snapped.Submit(w, id, c)
			if (errA == nil) != (errB == nil) {
				t.Fatalf("case %d: continued submit %d disagrees: %v vs %v", i, j, errA, errB)
			}
		}
		if full.Fingerprint() != snapped.Fingerprint() {
			t.Fatalf("case %d: states diverged after continued serving", i)
		}
		if err := full.Close(); err != nil {
			t.Fatal(err)
		}
		if err := snapped.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSnapshotFallbackLoud: a torn, corrupt, or log-overreaching snapshot
// must never poison a boot — recovery falls back to the full replay,
// recovers the identical state, and reports WHY in
// RecoveryInfo.SnapshotRejected (silent fallback would hide rot).
func TestSnapshotFallbackLoud(t *testing.T) {
	cfg := Config{GoldenCount: 4, HITSize: 4, AnswersPerTask: 3, RerunEvery: 20,
		CheckpointEvery: -1, WALSegmentBytes: 1 << 10}
	dir := t.TempDir()
	recs := runLoggedCampaign(t, cfg, dir, 30)

	full := newSystem(t, cfg)
	if _, err := full.Recover(dir); err != nil {
		t.Fatal(err)
	}
	want := full.Fingerprint()
	if err := full.WriteSnapshot(); err != nil {
		t.Fatal(err)
	}
	if err := full.Close(); err != nil {
		t.Fatal(err)
	}
	snapPath := filepath.Join(dir, snapshot.FileName)
	pristine, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}

	corrupt := func(name string, mutate func([]byte) []byte) {
		t.Helper()
		if err := os.WriteFile(snapPath, mutate(append([]byte(nil), pristine...)), 0o644); err != nil {
			t.Fatal(err)
		}
		s := newSystem(t, cfg)
		info, err := s.Recover(dir)
		if err != nil {
			t.Fatalf("%s: fallback boot failed: %v", name, err)
		}
		if info.SnapshotUsed {
			t.Fatalf("%s: corrupt snapshot was used", name)
		}
		if info.SnapshotRejected == "" {
			t.Fatalf("%s: fallback was silent", name)
		}
		if info.Records != len(recs) {
			t.Fatalf("%s: fallback replayed %d records, want %d", name, info.Records, len(recs))
		}
		if got := s.Fingerprint(); got != want {
			t.Fatalf("%s: fallback state differs from full replay", name)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}

	corrupt("torn tail", func(b []byte) []byte { return b[:len(b)-7] })
	corrupt("payload rot", func(b []byte) []byte { b[len(b)/2] ^= 0x40; return b })
	corrupt("bad magic", func(b []byte) []byte { b[0] = 'X'; return b })

	// A snapshot claiming sequences past the durable log (what a power loss
	// under SyncNever leaves behind): crash the log at a prefix but keep
	// the full-coverage snapshot.
	spans := segmentSpans(t, dir, 0)
	cut := len(recs) / 2
	crashDir := buildCrashDir(t, dir, recs, spans, cut, 0)
	if err := os.WriteFile(filepath.Join(crashDir, snapshot.FileName), pristine, 0o644); err != nil {
		t.Fatal(err)
	}
	ref := newSystem(t, cfg)
	defer ref.Close()
	applyPrefix(t, ref, recs[:cut])
	s := newSystem(t, cfg)
	info, err := s.Recover(crashDir)
	if err != nil {
		t.Fatal(err)
	}
	if info.SnapshotUsed || info.SnapshotRejected == "" {
		t.Fatalf("log-overreaching snapshot not rejected loudly (used=%v rejected=%q)",
			info.SnapshotUsed, info.SnapshotRejected)
	}
	if got := s.Fingerprint(); got != ref.Fingerprint() {
		t.Fatal("fallback after overreaching snapshot differs from prefix replay")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCrashInjectionSnapshotBothWays is the snapshot acceptance sweep: at
// every randomized kill point (clean boundaries and torn mid-frame cuts)
// the surviving log is recovered BOTH ways — full replay, and snapshot
// restore at a covering prefix plus suffix replay — and the two
// Fingerprints must be bit-identical to each other and to the serial
// reference.
func TestCrashInjectionSnapshotBothWays(t *testing.T) {
	cfg := Config{GoldenCount: 4, HITSize: 4, AnswersPerTask: 3, RerunEvery: 20,
		CheckpointEvery: -1, WALSegmentBytes: 1 << 10}
	srcDir := t.TempDir()
	recs := runLoggedCampaign(t, cfg, srcDir, 50)
	if len(recs) < 40 {
		t.Fatalf("campaign produced only %d records", len(recs))
	}
	spans := segmentSpans(t, srcDir, 0)

	// Snapshot states at fixed prefixes, fabricated exactly as the shadow
	// replica would have written them.
	snapAt := []int{len(recs) / 4, len(recs) / 2, 3 * len(recs) / 4}
	states := map[int]*snapshot.State{}
	for _, j := range snapAt {
		ref := newSystem(t, cfg)
		applyPrefix(t, ref, recs[:j])
		st, err := ref.exportState(recs[j-1].Seq)
		if err != nil {
			t.Fatal(err)
		}
		states[j] = st
		if err := ref.Close(); err != nil {
			t.Fatal(err)
		}
	}

	r := mathx.NewRand(31)
	type kill struct {
		surviving int
		torn      int64
	}
	const killPoints = 28
	kills := make([]kill, 0, killPoints)
	for i := 0; i < killPoints-1; i++ {
		k := kill{surviving: 1 + int(r.Float64()*float64(len(recs)))}
		if k.surviving > len(recs) {
			k.surviving = len(recs)
		}
		if k.surviving < len(recs) && r.Float64() < 0.35 {
			k.torn = 1 + int64(r.Float64()*16)
		}
		kills = append(kills, k)
	}
	kills = append(kills, kill{surviving: len(recs) - 1, torn: 5})
	sort.Slice(kills, func(i, j int) bool { return kills[i].surviving < kills[j].surviving })

	ref := newSystem(t, cfg)
	defer ref.Close()
	applied := 0
	refPrint := ref.Fingerprint()
	for i, k := range kills {
		if k.surviving > applied {
			applyPrefix(t, ref, recs[applied:k.surviving])
			applied = k.surviving
			refPrint = ref.Fingerprint()
		}
		// The largest fabricated snapshot that the surviving log covers.
		best := 0
		for _, j := range snapAt {
			if j <= k.surviving && j > best {
				best = j
			}
		}

		crashDir := buildCrashDir(t, srcDir, recs, spans, k.surviving, k.torn)
		full := newSystem(t, cfg)
		infoF, err := full.Recover(crashDir)
		if err != nil {
			t.Fatalf("kill %d (surviving=%d torn=%d): full replay: %v", i, k.surviving, k.torn, err)
		}
		if infoF.SnapshotUsed {
			t.Fatalf("kill %d: replay boot found a snapshot in a fresh crash dir", i)
		}
		fpFull := full.Fingerprint()
		if fpFull != refPrint {
			t.Fatalf("kill %d (surviving=%d torn=%d): full replay differs from serial reference", i, k.surviving, k.torn)
		}
		// Write the full-coverage snapshot from the recovered system while
		// it is quiescent — a later boot (below, and the k%4==0 branch)
		// restores it.
		if err := full.Close(); err != nil {
			t.Fatal(err)
		}

		if best > 0 {
			if err := snapshot.Write(crashDir, states[best]); err != nil {
				t.Fatal(err)
			}
			snapped := newSystem(t, cfg)
			info, err := snapped.Recover(crashDir)
			if err != nil {
				t.Fatalf("kill %d: snapshot boot: %v", i, err)
			}
			if !info.SnapshotUsed || info.SnapshotRejected != "" {
				t.Fatalf("kill %d: snapshot at %d rejected: %q", i, best, info.SnapshotRejected)
			}
			if info.Records != k.surviving-best {
				t.Fatalf("kill %d: snapshot boot replayed %d records, want suffix %d",
					i, info.Records, k.surviving-best)
			}
			if got := snapped.Fingerprint(); got != fpFull {
				t.Fatalf("kill %d (surviving=%d torn=%d snapshot=%d): snapshot boot differs from full replay\n%s",
					i, k.surviving, k.torn, best, DiffFingerprints(got, fpFull, 4))
			}
			if err := snapped.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestSnapshotCheckpointInterleaving pins the snapshot/checkpoint
// interplay in both orders — snapshot older than the checkpoint's
// coverage (its suffix comes from the checkpoint file, then segments) and
// snapshot newer (segment records below it must enter the durLog mirror
// without re-applying) — including a checkpoint pass AFTER the
// snapshot-assisted boot, whose extended file must itself recover cleanly.
func TestSnapshotCheckpointInterleaving(t *testing.T) {
	cfg := Config{GoldenCount: 4, HITSize: 4, AnswersPerTask: 3, RerunEvery: 20,
		CheckpointEvery: -1, WALSegmentBytes: 1 << 10}
	srcDir := t.TempDir()
	recs := runLoggedCampaign(t, cfg, srcDir, 40)

	covered := len(recs) * 2 / 3
	cpSeq := recs[covered-1].Seq
	if err := wal.WriteCheckpoint(srcDir, cpSeq, recs[:covered]); err != nil {
		t.Fatal(err)
	}
	// Emulate TruncateBefore: segments wholly covered by the checkpoint
	// are gone, so records below the surviving segments exist ONLY in the
	// checkpoint file — the gap both recovery and the shadow's snapshot
	// pass must bridge from it.
	all := segmentSpans(t, srcDir, 0)
	maxSeqByFile := map[string]uint64{}
	lastFile := ""
	for seq, sp := range all {
		if seq > maxSeqByFile[sp.file] {
			maxSeqByFile[sp.file] = seq
		}
		if sp.file > lastFile {
			lastFile = sp.file
		}
	}
	for file, maxSeq := range maxSeqByFile {
		if file != lastFile && maxSeq <= cpSeq {
			if err := os.Remove(filepath.Join(srcDir, file)); err != nil {
				t.Fatal(err)
			}
		}
	}

	full := newSystem(t, cfg)
	if _, err := full.Recover(srcDir); err != nil {
		t.Fatal(err)
	}
	want := full.Fingerprint()
	if err := full.Close(); err != nil {
		t.Fatal(err)
	}

	// The checkpoint mirror matters from here on.
	cfg.CheckpointEvery = 1 << 30

	for _, tc := range []struct {
		name   string
		snapAt int
	}{
		{"snapshot-behind-checkpoint", covered / 2},
		{"snapshot-ahead-of-checkpoint", covered + (len(recs)-covered)/2},
	} {
		dir := t.TempDir()
		copyDir(t, srcDir, dir)
		writeStateAt(t, cfg, dir, recs, tc.snapAt)

		s := newSystem(t, cfg)
		info, err := s.Recover(dir)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !info.SnapshotUsed || info.SnapshotSeq != recs[tc.snapAt-1].Seq {
			t.Fatalf("%s: snapshot not used as expected (%+v)", tc.name, info)
		}
		if got := s.Fingerprint(); got != want {
			t.Fatalf("%s: recovered state differs from full replay\n%s",
				tc.name, DiffFingerprints(got, want, 4))
		}
		// Run a checkpoint pass on the booted system: it must append
		// exactly the un-checkpointed records — including any the snapshot
		// covered but the checkpoint file did not — and the result must
		// still recover to the same state.
		s.runCheckpoint()
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		cp, err := wal.ReadCheckpoint(dir)
		if err != nil {
			t.Fatal(err)
		}
		if cp.LastSeq != recs[len(recs)-1].Seq {
			t.Fatalf("%s: post-boot checkpoint covers seq %d, want %d", tc.name, cp.LastSeq, recs[len(recs)-1].Seq)
		}
		again := newSystem(t, cfg)
		if _, err := again.Recover(dir); err != nil {
			t.Fatalf("%s: re-recovery: %v", tc.name, err)
		}
		if got := again.Fingerprint(); got != want {
			t.Fatalf("%s: re-recovery after checkpoint differs", tc.name)
		}
		// Drive a live snapshot pass: the shadow boots from the on-disk
		// snapshot and — when that snapshot predates the surviving
		// segments — must bridge the gap from the checkpoint file. The
		// pass must end with a snapshot covering the whole log that boots
		// bit-identically.
		again.runSnapshotPass()
		if done, failed := again.Snapshots(); done != 1 || failed != 0 {
			t.Fatalf("%s: snapshot pass done=%d failed=%d", tc.name, done, failed)
		}
		if got := again.LastSnapshotSeq(); got != recs[len(recs)-1].Seq {
			t.Fatalf("%s: pass covered seq %d, want log tail %d", tc.name, got, recs[len(recs)-1].Seq)
		}
		if err := again.Close(); err != nil {
			t.Fatal(err)
		}
		final := newSystem(t, cfg)
		info, err = final.Recover(dir)
		if err != nil {
			t.Fatalf("%s: boot from pass-written snapshot: %v", tc.name, err)
		}
		if !info.SnapshotUsed || info.SnapshotSeq != recs[len(recs)-1].Seq {
			t.Fatalf("%s: pass-written snapshot not used (%+v)", tc.name, info)
		}
		if got := final.Fingerprint(); got != want {
			t.Fatalf("%s: boot from pass-written snapshot differs", tc.name)
		}
		if err := final.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSnapshotWorkerIntegration runs a campaign with the background
// snapshot worker live (small SnapshotEvery forces several passes, async
// rerun stresses the shadow's serial independence) and asserts the
// snapshot it leaves behind boots to exactly the state a full replay of
// the surviving log produces — and that both equal the serial reference.
func TestSnapshotWorkerIntegration(t *testing.T) {
	cfg := Config{GoldenCount: 4, HITSize: 4, AnswersPerTask: 3, RerunEvery: 20,
		AsyncRerun: true, CheckpointEvery: 30, SnapshotEvery: 25, WALSegmentBytes: 1 << 10}
	dir := t.TempDir()
	recs := runLoggedCampaign(t, cfg, dir, 40)

	if _, err := os.Stat(filepath.Join(dir, snapshot.FileName)); err != nil {
		t.Fatalf("no snapshot written despite SnapshotEvery=25: %v", err)
	}

	// Serial reference over the surviving records.
	serialCfg := cfg
	serialCfg.AsyncRerun = false
	ref := newSystem(t, serialCfg)
	defer ref.Close()
	applyPrefix(t, ref, recs)

	snapped := newSystem(t, cfg)
	infoS, err := snapped.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !infoS.SnapshotUsed {
		t.Fatalf("snapshot present but not used (rejected: %q)", infoS.SnapshotRejected)
	}

	plain := t.TempDir()
	copyDir(t, dir, plain)
	if err := os.Remove(filepath.Join(plain, snapshot.FileName)); err != nil {
		t.Fatal(err)
	}
	full := newSystem(t, cfg)
	if _, err := full.Recover(plain); err != nil {
		t.Fatal(err)
	}

	fpSnap, fpFull, fpRef := snapped.Fingerprint(), full.Fingerprint(), ref.Fingerprint()
	if fpSnap != fpFull {
		t.Fatalf("snapshot boot differs from full-replay boot\n%s",
			DiffFingerprints(fpSnap, fpFull, 4))
	}
	if fpSnap != fpRef {
		t.Fatal("recovered state differs from serial reference")
	}
	if err := snapped.Close(); err != nil {
		t.Fatal(err)
	}
	if err := full.Close(); err != nil {
		t.Fatal(err)
	}
}

// copyDir copies every regular file in src into dst (flat — WAL dirs hold
// no subdirectories).
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestFailedRerunStillResyncsIndex: a rerun that fails (inference error)
// must still leave the candidate index resynced — resync doubles as the
// safety net for closures the incremental path missed, and before the fix
// a failing rerun skipped it until the next SUCCESSFUL rerun, unboundedly
// long if the failure repeats.
func TestFailedRerunStillResyncsIndex(t *testing.T) {
	s := newSystem(t, Config{GoldenCount: -1, HITSize: 4, AnswersPerTask: 1, RerunEvery: 2, CheckpointEvery: -1})
	if err := s.Publish(indexTasks(16, s.Domains().Size())); err != nil {
		t.Fatal(err)
	}
	s.rerunFault = func() error { return fmt.Errorf("injected inference failure") }

	// Two answers close two tasks (redundancy 1); the second trips the
	// periodic rerun, which fails. The closed entries are below the
	// compaction threshold (16/4 = 4), so only resync can republish.
	epoch0 := s.IndexEpoch()
	if err := s.Submit("w1", 0, 0); err != nil {
		t.Fatal(err)
	}
	err := s.Submit("w2", 1, 0)
	if err == nil {
		t.Fatal("submit at the rerun boundary should surface the rerun failure")
	}
	if got := s.OpenTasks(); got != 14 {
		t.Fatalf("OpenTasks = %d, want 14", got)
	}
	ci := s.index.Load()
	if ci == nil {
		t.Fatal("no candidate index")
	}
	if got := len(ci.load().entries); got != 14 {
		t.Fatalf("published candidate array holds %d entries, want 14 — failed rerun skipped resync", got)
	}
	if s.IndexEpoch() == epoch0 {
		t.Fatal("index epoch unchanged: failed rerun did not republish")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestShadowDiscardedOnApplyFailure: a record that fails to apply inside
// the shadow replica can be HALF-applied (Submit ingests the answer before
// a due synchronous rerun fails), and before the fix the pass kept the
// wedged replica — every later pass re-applied the same record, hit a
// misleading duplicate-answer error, and no snapshot was ever written
// again. The pass must discard the replica on failure and rebuild it from
// the last good snapshot on the next attempt.
func TestShadowDiscardedOnApplyFailure(t *testing.T) {
	cfg := Config{GoldenCount: -1, HITSize: 4, RerunEvery: 10,
		CheckpointEvery: -1, SnapshotEvery: -1, WALSegmentBytes: 1 << 10}
	dir := t.TempDir()
	s := newSystem(t, cfg)
	if _, err := s.Recover(dir); err != nil {
		t.Fatal(err)
	}
	if err := s.Publish(indexTasks(30, s.m)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 15; i++ {
		if err := s.Submit(fmt.Sprintf("w%d", i), i, 0); err != nil {
			t.Fatal(err)
		}
	}
	s.runSnapshotPass()
	if done, failed := s.Snapshots(); done != 1 || failed != 0 {
		t.Fatalf("first pass: done=%d failed=%d", done, failed)
	}
	goodSeq := s.LastSnapshotSeq()

	// Fault the live shadow's rerun and push the campaign across the next
	// rerun boundary (the shadow replays to 20 and its rerun fails AFTER
	// the 20th answer was ingested — the half-applied shape).
	s.shadow.rerunFault = func() error { return fmt.Errorf("injected shadow rerun failure") }
	for i := 15; i < 21; i++ {
		if err := s.Submit(fmt.Sprintf("w%d", i), i, 0); err != nil {
			t.Fatal(err)
		}
	}
	s.runSnapshotPass()
	if done, failed := s.Snapshots(); done != 1 || failed != 1 {
		t.Fatalf("faulted pass: done=%d failed=%d", done, failed)
	}
	if s.shadow != nil {
		t.Fatal("wedged shadow replica was kept after an apply failure")
	}
	if got := s.LastSnapshotSeq(); got != goodSeq {
		t.Fatalf("failed pass moved the snapshot seq to %d", got)
	}

	// The next pass rebuilds a fresh replica from the last good snapshot
	// and succeeds — before the fix it wedged on a duplicate answer.
	s.runSnapshotPass()
	if done, failed := s.Snapshots(); done != 2 || failed != 1 {
		t.Fatalf("recovery pass: done=%d failed=%d", done, failed)
	}
	if got, want := s.LastSnapshotSeq(), s.wal.ReservedSeq(); got != want {
		t.Fatalf("recovered pass covered seq %d, want log tail %d", got, want)
	}
	want := s.Fingerprint()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	boot := newSystem(t, cfg)
	info, err := boot.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !info.SnapshotUsed {
		t.Fatalf("snapshot not used after shadow recovery (rejected: %q)", info.SnapshotRejected)
	}
	if got := boot.Fingerprint(); got != want {
		t.Fatal("boot from post-recovery snapshot differs from live serial state")
	}
	if err := boot.Close(); err != nil {
		t.Fatal(err)
	}
}
