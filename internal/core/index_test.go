package core

import (
	"fmt"
	"testing"
	"time"

	"docs/internal/crowd"
	"docs/internal/dataset"
	"docs/internal/kb"
	"docs/internal/model"
)

// traceCampaignCfg drives a full serial campaign (the determinism-test
// workload: golden gauntlet + OTA + periodic reruns + redundancy cap) and
// returns the assignment/answer trace plus the finished system, so callers
// can compare both the decisions and the final state across configs.
func traceCampaignCfg(t *testing.T, cfg Config) (string, *System) {
	t.Helper()
	ds := dataset.Item(3)
	tasks := ds.Tasks[:120]
	s := newSystem(t, cfg)
	if err := s.Publish(tasks); err != nil {
		t.Fatal(err)
	}
	m := kb.MustDefault().Domains().Size()
	pop, err := crowd.NewPopulation(crowd.Config{NumWorkers: 24, M: m, RelevantDomains: ds.YahooIndex, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	r := pop.Rand()
	trace := ""
	for hit := 0; hit < 400; hit++ {
		w := pop.Arrival()
		got, err := s.Request(w.ID, 4)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) == 0 {
			break
		}
		for _, tk := range got {
			c := w.Answer(tk, r)
			trace += fmt.Sprintf("%s:%d:%d;", w.ID, tk.ID, c)
			if err := s.Submit(w.ID, tk.ID, c); err != nil {
				t.Fatal(err)
			}
		}
	}
	return trace, s
}

func diffTraces(t *testing.T, label, a, b string) {
	t.Helper()
	if a == b {
		return
	}
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			lo := i - 120
			if lo < 0 {
				lo = 0
			}
			hi := i + 120
			if hi > n {
				hi = n
			}
			t.Fatalf("%s: diverge at %d:\nA: ...%s\nB: ...%s", label, i, a[lo:hi], b[lo:hi])
		}
	}
	t.Fatalf("%s: one trace is a prefix of the other (len %d vs %d)", label, len(a), len(b))
}

// TestIndexedAssignmentEquivalence is the tentpole contract: a serial
// campaign served from the candidate index makes bit-identical assignment
// decisions — and therefore ends in bit-identical campaign state
// (Fingerprint compares every float as raw bits) — to the seed's
// per-request full scan.
func TestIndexedAssignmentEquivalence(t *testing.T) {
	base := Config{GoldenCount: 8, HITSize: 4, AnswersPerTask: 5, RerunEvery: 50}
	scanCfg := base
	scanCfg.ScanAssign = true
	scanTrace, scanSys := traceCampaignCfg(t, scanCfg)
	idxTrace, idxSys := traceCampaignCfg(t, base)
	diffTraces(t, "scan vs indexed", scanTrace, idxTrace)
	if fa, fb := scanSys.Fingerprint(), idxSys.Fingerprint(); fa != fb {
		t.Fatalf("fingerprints differ between scan and indexed paths")
	}
	if idxSys.IndexEpoch() == 0 {
		t.Fatalf("indexed system never published a candidate array")
	}
}

// TestIndexedAssignmentEquivalenceWithLeases pins the lease no-op contract
// for serial traffic: in a request-then-answer-everything campaign every
// lease is released before the next request, so arming leases changes
// nothing — the trace stays bit-identical to the lease-free scan.
func TestIndexedAssignmentEquivalenceWithLeases(t *testing.T) {
	base := Config{GoldenCount: 8, HITSize: 4, AnswersPerTask: 5, RerunEvery: 50}
	scanCfg := base
	scanCfg.ScanAssign = true
	leaseCfg := base
	leaseCfg.LeaseTTL = time.Hour
	scanTrace, scanSys := traceCampaignCfg(t, scanCfg)
	leaseTrace, leaseSys := traceCampaignCfg(t, leaseCfg)
	diffTraces(t, "scan vs indexed+leases", scanTrace, leaseTrace)
	if fa, fb := scanSys.Fingerprint(), leaseSys.Fingerprint(); fa != fb {
		t.Fatalf("fingerprints differ between scan and leased indexed paths")
	}
	if leaseSys.ActiveLeases() != 0 {
		t.Fatalf("serial campaign left %d leases outstanding", leaseSys.ActiveLeases())
	}
}

// indexTasks builds n two-choice tasks with precomputed one-hot domain
// vectors (skipping DVE) for index unit tests.
func indexTasks(n, m int) []*model.Task {
	tasks := make([]*model.Task, n)
	for i := range tasks {
		dom := make(model.DomainVector, m)
		dom[i%m] = 1
		tasks[i] = &model.Task{
			ID: i, Text: fmt.Sprintf("t%d", i), Choices: []string{"a", "b"},
			Domain: dom, Truth: model.NoTruth, TrueDomain: model.NoTruth,
		}
	}
	return tasks
}

// TestCandidateIndexMaintenance checks the open-task set shrinks as
// redundancy is met — maintained on the submit path, not rediscovered per
// request — and that the published array compacts (epoch advances) as
// closures accumulate.
func TestCandidateIndexMaintenance(t *testing.T) {
	const n, redundancy = 8, 2
	s := newSystem(t, Config{GoldenCount: -1, HITSize: 4, AnswersPerTask: redundancy, RerunEvery: -1})
	m := s.Domains().Size()
	if err := s.Publish(indexTasks(n, m)); err != nil {
		t.Fatal(err)
	}
	if got := s.OpenTasks(); got != n {
		t.Fatalf("OpenTasks after publish = %d, want %d", got, n)
	}
	epoch0 := s.IndexEpoch()
	if epoch0 == 0 {
		t.Fatalf("IndexEpoch = 0 after publish")
	}

	// Meet redundancy on task 0: it must leave the open set immediately.
	for _, w := range []string{"w1", "w2"} {
		if err := s.Submit(w, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.OpenTasks(); got != n-1 {
		t.Fatalf("OpenTasks after closing task 0 = %d, want %d", got, n-1)
	}

	// Close everything: the open set drains to zero, the array compacts
	// (epoch advances), and requests come back empty.
	for id := 1; id < n; id++ {
		for _, w := range []string{"w1", "w2"} {
			if err := s.Submit(w, id, 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	if got := s.OpenTasks(); got != 0 {
		t.Fatalf("OpenTasks after closing all = %d, want 0", got)
	}
	if s.IndexEpoch() == epoch0 {
		t.Fatalf("IndexEpoch never advanced past %d despite %d closures", epoch0, n)
	}
	got, err := s.Request("fresh", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("Request on a drained campaign returned %d tasks", len(got))
	}
}

// TestCandidateIndexResyncReopens exercises the reopen direction: resync
// (the post-rerun pass) must restore any task whose live snapshot says it
// is back under the redundancy cap, even if the incremental path had
// marked it closed.
func TestCandidateIndexResyncReopens(t *testing.T) {
	const n = 6
	s := newSystem(t, Config{GoldenCount: -1, HITSize: 4, AnswersPerTask: 1, RerunEvery: -1})
	m := s.Domains().Size()
	if err := s.Publish(indexTasks(n, m)); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit("w1", 0, 0); err != nil {
		t.Fatal(err)
	}
	if got := s.OpenTasks(); got != n-1 {
		t.Fatalf("OpenTasks = %d, want %d", got, n-1)
	}

	// Force-mark an unanswered task closed, as if a rerun swap had left the
	// incremental bookkeeping behind; resync must reopen it from the live
	// snapshot (0 answers < cap) while leaving the genuinely closed task 0
	// out.
	ci := s.index.Load()
	ci.mu.Lock()
	p := ci.pos[3]
	ci.open[p] = false
	ci.openCount.Add(-1)
	ci.stale++
	ci.mu.Unlock()
	if got := s.OpenTasks(); got != n-2 {
		t.Fatalf("OpenTasks after force-close = %d, want %d", got, n-2)
	}
	ci.resync(1)
	if got := s.OpenTasks(); got != n-1 {
		t.Fatalf("OpenTasks after resync = %d, want %d (task 3 reopened)", got, n-1)
	}
	arr := ci.load()
	found := false
	for _, c := range arr.entries {
		if c.id == 0 {
			t.Fatalf("resync republished closed task 0")
		}
		if c.id == 3 {
			found = true
		}
	}
	if !found {
		t.Fatalf("reopened task 3 missing from the published candidate array")
	}
}

// TestPublishRejectionLeavesNoState: a rejected batch (duplicate ID or
// invalid task) must leave the system untouched, so fixing the batch and
// re-publishing succeeds — no leftover byID entries to collide with, no
// half-published campaign with an empty candidate index.
func TestPublishRejectionLeavesNoState(t *testing.T) {
	s := newSystem(t, Config{GoldenCount: -1, RerunEvery: -1})
	m := s.Domains().Size()
	bad := indexTasks(3, m)
	bad[2].ID = bad[0].ID // duplicate
	if err := s.Publish(bad); err == nil {
		t.Fatal("publish accepted a duplicate task ID")
	}
	if s.Published() {
		t.Fatal("rejected publish left the campaign published")
	}
	if got := s.OpenTasks(); got != 0 {
		t.Fatalf("rejected publish left %d open tasks", got)
	}
	good := indexTasks(3, m)
	if err := s.Publish(good); err != nil {
		t.Fatalf("re-publish after rejection: %v", err)
	}
	if got := s.OpenTasks(); got != 3 {
		t.Fatalf("OpenTasks after re-publish = %d, want 3", got)
	}
	if tasks, err := s.Request("w", 3); err != nil || len(tasks) != 3 {
		t.Fatalf("Request after re-publish = %d tasks, err %v", len(tasks), err)
	}
}
