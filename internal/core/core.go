// Package core is the DOCS orchestrator: it wires the three modules of
// Figure 1 — Domain Vector Estimation, Truth Inference and Online Task
// Assignment — into the request/submit loop a crowdsourcing platform
// drives. A requester publishes tasks; DVE computes each task's domain
// vector against the knowledge base; golden tasks are selected to profile
// new workers; arriving workers are served either golden tasks (first
// visit) or the k highest-benefit tasks (OTA); submitted answers flow
// through incremental truth inference, with the full iterative solver
// re-run every RerunEvery submissions; and finally the inferred truths are
// returned and worker statistics are merged into the long-run store per
// Theorem 1.
package core

import (
	"fmt"
	"sort"
	"sync"

	"docs/internal/assign"
	"docs/internal/dve"
	"docs/internal/entitylink"
	"docs/internal/kb"
	"docs/internal/model"
	"docs/internal/store"
	"docs/internal/truth"
)

// Config configures a System.
type Config struct {
	// KB is the knowledge base; nil selects the curated default.
	KB *kb.KB
	// Store persists worker statistics across campaigns; nil keeps a
	// memory-only store.
	Store *store.Store
	// GoldenCount is the number of golden tasks selected from the published
	// tasks that carry ground truth (default assign.DefaultGoldenCount).
	GoldenCount int
	// HITSize is k, the number of tasks per assignment (default
	// assign.DefaultBatchSize).
	HITSize int
	// AnswersPerTask caps redundancy per task; 0 means unlimited.
	AnswersPerTask int
	// RerunEvery re-runs the full iterative TI every z submissions
	// (default 100, the paper's z). Non-positive disables periodic reruns.
	RerunEvery int
}

// System is a running DOCS campaign.
type System struct {
	mu sync.Mutex

	kb     *kb.KB
	linker *entitylink.Linker
	m      int
	store  *store.Store
	cfg    Config

	tasks  []*model.Task // published, with domain vectors
	byID   map[int]*model.Task
	golden map[int]bool // task IDs serving as golden tasks

	inc           *truth.Incremental
	answers       *model.AnswerSet
	goldenAnswers map[string][]model.Answer
	profiled      map[string]bool // workers whose quality is initialized
	submissions   int
}

// New creates a System from the config.
func New(cfg Config) (*System, error) {
	k := cfg.KB
	if k == nil {
		var err error
		k, err = kb.Default()
		if err != nil {
			return nil, err
		}
	}
	st := cfg.Store
	if st == nil {
		var err error
		st, err = store.Open("", k.Domains().Size())
		if err != nil {
			return nil, err
		}
	}
	if cfg.GoldenCount == 0 {
		cfg.GoldenCount = assign.DefaultGoldenCount
	}
	if cfg.HITSize <= 0 {
		cfg.HITSize = assign.DefaultBatchSize
	}
	if cfg.RerunEvery == 0 {
		cfg.RerunEvery = 100
	}
	m := k.Domains().Size()
	return &System{
		kb:            k,
		linker:        entitylink.New(k),
		m:             m,
		store:         st,
		cfg:           cfg,
		byID:          make(map[int]*model.Task),
		golden:        make(map[int]bool),
		inc:           truth.NewIncremental(m),
		answers:       model.NewAnswerSet(),
		goldenAnswers: make(map[string][]model.Answer),
		profiled:      make(map[string]bool),
	}, nil
}

// Domains returns the system's domain set.
func (s *System) Domains() *model.DomainSet { return s.kb.Domains() }

// Publish runs DVE over the tasks, selects golden tasks among those with
// ground truth, and opens the campaign. Tasks without a precomputed Domain
// get one from the DVE pipeline (entity linking + Algorithm 1); tasks the
// requester already annotated keep their vector.
func (s *System) Publish(tasks []*model.Task) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.tasks) > 0 {
		return fmt.Errorf("core: tasks already published")
	}
	for _, t := range tasks {
		if _, dup := s.byID[t.ID]; dup {
			return fmt.Errorf("core: duplicate task ID %d", t.ID)
		}
		if t.Domain == nil {
			ents := dve.FromLinked(s.linker.Link(t.Text), s.m)
			t.Domain = dve.Normalized(ents, s.m)
		}
		if err := t.Validate(s.m); err != nil {
			return err
		}
		s.byID[t.ID] = t
	}
	s.tasks = tasks

	// Golden tasks: choose among tasks with known ground truth so a new
	// worker's answers can be scored (Section 5.2).
	var withTruth []*model.Task
	for _, t := range tasks {
		if t.Truth != model.NoTruth {
			withTruth = append(withTruth, t)
		}
	}
	if n := s.cfg.GoldenCount; n > 0 && len(withTruth) > 0 {
		for _, idx := range assign.SelectGolden(withTruth, n, s.m) {
			s.golden[withTruth[idx].ID] = true
		}
	}

	// Non-golden tasks enter the incremental truth-inference engine.
	for _, t := range tasks {
		if s.golden[t.ID] {
			continue
		}
		if err := s.inc.AddTask(t); err != nil {
			return err
		}
	}
	return nil
}

// GoldenTasks returns the golden task IDs in publication order.
func (s *System) GoldenTasks() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []int
	for _, t := range s.tasks {
		if s.golden[t.ID] {
			out = append(out, t.ID)
		}
	}
	return out
}

// Request serves an arriving worker: a returning (or profiled) worker gets
// the k highest-benefit unanswered tasks; a new worker is first served the
// golden tasks she has not answered yet. The returned tasks are in
// assignment order.
func (s *System) Request(workerID string, k int) ([]*model.Task, error) {
	if workerID == "" {
		return nil, fmt.Errorf("core: empty worker ID")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if k <= 0 {
		k = s.cfg.HITSize
	}

	if !s.workerReadyLocked(workerID) {
		// Serve unanswered golden tasks first.
		var out []*model.Task
		answered := s.goldenAnsweredLocked(workerID)
		for _, t := range s.tasks {
			if len(out) >= k {
				break
			}
			if s.golden[t.ID] && !answered[t.ID] {
				out = append(out, t)
			}
		}
		if len(out) > 0 {
			return out, nil
		}
		// No golden tasks configured: fall through to OTA with defaults.
	}

	q := s.workerQualityLocked(workerID)
	states := make([]*assign.TaskState, 0, len(s.tasks))
	for _, t := range s.tasks {
		if s.golden[t.ID] || s.answers.Has(workerID, t.ID) {
			continue
		}
		if cap := s.cfg.AnswersPerTask; cap > 0 && s.inc.Answers(t.ID) >= cap {
			continue
		}
		states = append(states, &assign.TaskState{
			ID: t.ID, R: t.Domain, M: s.inc.M(t.ID), S: s.inc.S(t.ID),
		})
	}
	ids := assign.Assign(states, q, k, nil)
	out := make([]*model.Task, 0, len(ids))
	for _, id := range ids {
		out = append(out, s.byID[id])
	}
	return out, nil
}

// Submit records a worker's answer. Golden-task answers feed the worker's
// quality profile; regular answers flow through incremental truth
// inference, with a periodic full iterative re-run every RerunEvery
// submissions.
func (s *System) Submit(workerID string, taskID, choice int) error {
	if workerID == "" {
		return fmt.Errorf("core: empty worker ID")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.byID[taskID]
	if !ok {
		return fmt.Errorf("core: unknown task %d", taskID)
	}
	if choice < 0 || choice >= t.NumChoices() {
		return fmt.Errorf("core: choice %d out of range for task %d", choice, taskID)
	}
	a := model.Answer{Worker: workerID, Task: taskID, Choice: choice}

	if s.golden[taskID] {
		for _, prev := range s.goldenAnswers[workerID] {
			if prev.Task == taskID {
				return fmt.Errorf("core: worker %q already answered golden task %d", workerID, taskID)
			}
		}
		s.goldenAnswers[workerID] = append(s.goldenAnswers[workerID], a)
		if len(s.goldenAnswers[workerID]) == len(s.goldenIDsLocked()) {
			s.profileWorkerLocked(workerID)
		}
		return nil
	}

	if err := s.answers.Add(a); err != nil {
		return err
	}
	s.ensureWorkerLocked(workerID)
	if err := s.inc.Submit(a); err != nil {
		return err
	}
	s.submissions++
	if z := s.cfg.RerunEvery; z > 0 && s.submissions%z == 0 {
		if err := s.rerunLocked(); err != nil {
			return err
		}
	}
	return nil
}

// Result returns the current inferred truth and probabilistic truth of a
// task (choice −1 for golden/unknown tasks, which are not inferred).
func (s *System) Result(taskID int) (choice int, confidence []float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inc.Truth(taskID), s.inc.S(taskID)
}

// Results runs the full iterative truth inference over everything received
// and returns the final result (slices aligned with InferTasks). Golden
// tasks and the workers' golden answers participate as pinned evidence so
// the quality scale stays anchored. It also merges each worker's session
// statistics into the long-run store (Theorem 1) and saves the store.
func (s *System) Results() (*truth.Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	inferTasks := s.inferTasksLocked()
	combined, answers, pinned, err := s.combinedLocked(inferTasks)
	if err != nil {
		return nil, err
	}
	res, err := truth.Infer(combined, answers, s.m, truth.Options{
		InitQuality: s.initQualityLocked(),
		Pinned:      pinned,
	})
	if err != nil {
		return nil, err
	}
	for w, st := range truth.SessionStats(combined, answers, res, s.m) {
		if err := s.store.Merge(w, st); err != nil {
			return nil, err
		}
	}
	if err := s.store.Save(); err != nil {
		return nil, err
	}
	// Trim the golden entries so the result aligns with InferTasks.
	n := len(inferTasks)
	res.S = res.S[:n]
	res.M = res.M[:n]
	res.Truth = res.Truth[:n]
	return res, nil
}

// combinedLocked appends the golden tasks (with pinned truths) and the
// golden answers to the campaign's tasks and answers, anchoring inference.
func (s *System) combinedLocked(inferTasks []*model.Task) ([]*model.Task, *model.AnswerSet, map[int]int, error) {
	combined := inferTasks
	pinned := make(map[int]int)
	answers := s.answers
	if len(s.golden) > 0 {
		combined = make([]*model.Task, len(inferTasks), len(inferTasks)+len(s.golden))
		copy(combined, inferTasks)
		for _, t := range s.tasks {
			if s.golden[t.ID] {
				combined = append(combined, t)
				pinned[t.ID] = t.Truth
			}
		}
		answers = s.answers.Clone()
		// Sorted worker order: golden answers must enter the answer set in
		// a fixed order, or per-task likelihood sums reorder between runs
		// and ulp-level differences flip assignment ties.
		workers := make([]string, 0, len(s.goldenAnswers))
		for w := range s.goldenAnswers {
			workers = append(workers, w)
		}
		sort.Strings(workers)
		for _, w := range workers {
			for _, a := range s.goldenAnswers[w] {
				if err := answers.Add(a); err != nil {
					return nil, nil, nil, err
				}
			}
		}
	}
	return combined, answers, pinned, nil
}

// InferTasks returns the non-golden tasks in publication order (the tasks
// Results infers over, in the same order as the result slices).
func (s *System) InferTasks() []*model.Task {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inferTasksLocked()
}

// WorkerQuality returns the system's current quality estimate for a worker.
func (s *System) WorkerQuality(workerID string) model.QualityVector {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.workerQualityLocked(workerID)
}

// Answers returns a snapshot of the collected non-golden answers.
func (s *System) Answers() *model.AnswerSet {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.answers.Clone()
}

// --- internal helpers (callers hold s.mu) ---

func (s *System) inferTasksLocked() []*model.Task {
	out := make([]*model.Task, 0, len(s.tasks))
	for _, t := range s.tasks {
		if !s.golden[t.ID] {
			out = append(out, t)
		}
	}
	return out
}

func (s *System) goldenIDsLocked() []int {
	var out []int
	for _, t := range s.tasks {
		if s.golden[t.ID] {
			out = append(out, t.ID)
		}
	}
	return out
}

func (s *System) goldenAnsweredLocked(workerID string) map[int]bool {
	out := make(map[int]bool)
	for _, a := range s.goldenAnswers[workerID] {
		out[a.Task] = true
	}
	return out
}

// workerReadyLocked reports whether the worker can receive regular tasks:
// either profiled this session, known to the store, or there are no golden
// tasks to profile with.
func (s *System) workerReadyLocked(workerID string) bool {
	if s.profiled[workerID] {
		return true
	}
	if len(s.golden) == 0 {
		return true
	}
	if _, ok := s.store.Worker(workerID); ok {
		s.profiled[workerID] = true
		if st, _ := s.store.Worker(workerID); st != nil {
			_ = s.inc.SetWorker(workerID, st)
		}
		return true
	}
	return false
}

// profileWorkerLocked initializes the worker's quality from her golden-task
// answers and registers it with the incremental engine and the store.
func (s *System) profileWorkerLocked(workerID string) {
	var golden []*model.Task
	for _, t := range s.tasks {
		if s.golden[t.ID] {
			golden = append(golden, t)
		}
	}
	st := truth.EstimateFromGolden(golden, s.goldenAnswers[workerID], s.m)
	_ = s.inc.SetWorker(workerID, st)
	_ = s.store.Merge(workerID, st)
	s.profiled[workerID] = true
}

// ensureWorkerLocked makes sure the incremental engine knows the worker,
// seeding from the store when possible.
func (s *System) ensureWorkerLocked(workerID string) {
	if s.inc.Worker(workerID) != nil {
		return
	}
	if st, ok := s.store.Worker(workerID); ok {
		_ = s.inc.SetWorker(workerID, st)
	}
}

func (s *System) workerQualityLocked(workerID string) model.QualityVector {
	if st := s.inc.Worker(workerID); st != nil {
		q := make(model.QualityVector, s.m)
		copy(q, st.Q)
		return q
	}
	if st, ok := s.store.Worker(workerID); ok {
		return st.Q
	}
	q := make(model.QualityVector, s.m)
	for k := range q {
		q[k] = truth.DefaultQuality
	}
	return q
}

// rerunLocked runs the full iterative TI (with pinned golden evidence) and
// reseeds the incremental engine (the paper's "delayed" batch refresh every
// z submissions).
func (s *System) rerunLocked() error {
	inferTasks := s.inferTasksLocked()
	combined, answers, pinned, err := s.combinedLocked(inferTasks)
	if err != nil {
		return err
	}
	res, err := truth.Infer(combined, answers, s.m, truth.Options{
		InitQuality: s.initQualityLocked(),
		Pinned:      pinned,
	})
	if err != nil {
		return err
	}
	s.inc.Reseed(combined, res, s.answers)
	return nil
}

// initQualityLocked gathers the initial quality per answering worker. The
// long-run store is preferred: its estimates are anchored by golden tasks
// and past sessions (Theorem 1), whereas the incremental engine's estimates
// drift between batch reruns and, used as initialization, can place the EM
// in a label-flipped basin.
func (s *System) initQualityLocked() map[string]model.QualityVector {
	init := make(map[string]model.QualityVector)
	for _, w := range s.answers.Workers() {
		if st, ok := s.store.Worker(w); ok {
			init[w] = st.Q
			continue
		}
		if st := s.inc.Worker(w); st != nil {
			q := make(model.QualityVector, s.m)
			copy(q, st.Q)
			init[w] = q
		}
	}
	return init
}
