// Package core is the DOCS orchestrator: it wires the three modules of
// Figure 1 — Domain Vector Estimation, Truth Inference and Online Task
// Assignment — into the request/submit loop a crowdsourcing platform
// drives. A requester publishes tasks; DVE computes each task's domain
// vector against the knowledge base; golden tasks are selected to profile
// new workers; arriving workers are served either golden tasks (first
// visit) or the k highest-benefit tasks (OTA); submitted answers flow
// through incremental truth inference, with the full iterative solver
// re-run every RerunEvery submissions; and finally the inferred truths are
// returned and worker statistics are merged into the long-run store per
// Theorem 1.
//
// # Concurrency model
//
// The system serves Request, Submit and Result concurrently. The campaign
// structure (tasks, golden set) is guarded by an RWMutex that is only
// write-locked during Publish; per-worker serving state (golden answers,
// profiling, answered sets) lives in sharded maps so workers do not contend
// with each other; answer ingest goes through the truth engine's per-task
// locks; and reads (Request, Result, WorkerQuality) are served from the
// truth engine's immutable snapshots without blocking writers. Assignment
// candidates come from a live index of the open-task set (maintained
// incrementally as answers arrive, published as an epoch-versioned
// immutable array — see index.go) rather than a per-request scan over all
// tasks, and Config.LeaseTTL bounds outstanding assignments per task and
// per worker (see lease.go). The periodic
// batch re-inference runs synchronously on the Submit path by default
// (preserving the seed's deterministic serial behavior) or, with
// Config.AsyncRerun, on a background worker that infers over an answer-log
// snapshot and swaps the result back in atomically per task.
package core

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"docs/internal/assign"
	"docs/internal/dve"
	"docs/internal/entitylink"
	"docs/internal/kb"
	"docs/internal/mathx"
	"docs/internal/model"
	"docs/internal/shard"
	"docs/internal/store"
	"docs/internal/truth"
	"docs/internal/wal"
)

// Config configures a System.
type Config struct {
	// KB is the knowledge base; nil selects the curated default.
	KB *kb.KB
	// Store persists worker statistics across campaigns; nil keeps a
	// memory-only store.
	Store *store.Store
	// GoldenCount is the number of golden tasks selected from the published
	// tasks that carry ground truth (default assign.DefaultGoldenCount).
	GoldenCount int
	// HITSize is k, the number of tasks per assignment (default
	// assign.DefaultBatchSize).
	HITSize int
	// AnswersPerTask caps redundancy per task; 0 means unlimited.
	AnswersPerTask int
	// RerunEvery re-runs the full iterative TI every z submissions
	// (default 100, the paper's z). Non-positive disables periodic reruns.
	RerunEvery int
	// AsyncRerun moves the periodic full re-inference off the Submit path
	// onto a background worker. Submits then never block on the iterative
	// solver; the rerun infers over a snapshot of the answer log and its
	// result is swapped in atomically, skipping tasks that received answers
	// after the snapshot. The default (false) reruns synchronously inside
	// Submit, which serial callers rely on for exact reproducibility.
	AsyncRerun bool
	// CheckpointEvery writes a WAL checkpoint (and truncates covered
	// segments) every so many accepted answers when a WAL is armed via
	// Recover (default 5000, negative = never).
	CheckpointEvery int
	// SnapshotEvery writes a full state snapshot every so many accepted
	// answers when a WAL is armed (default 5000, negative = never). A
	// snapshot makes restart cost proportional to the un-snapshotted WAL
	// suffix instead of the whole log; it is built from a serial shadow
	// replica (created lazily on the first pass) so the snapshotted state
	// is exactly the serial-replay state recovery must reconstruct — see
	// snapshot.go for the design and its memory/CPU trade-off.
	SnapshotEvery int
	// WALSegmentBytes overrides the WAL segment rotation size (0 = the wal
	// package default).
	WALSegmentBytes int64
	// WALSync selects the WAL durability level (default group-commit
	// writes without per-batch fsync; see wal.SyncPolicy).
	WALSync wal.SyncPolicy
	// LeaseTTL arms assignment leases: every task served on the OTA path
	// is leased to the worker until they answer it or the TTL elapses. A
	// worker re-requesting before submitting gets disjoint tasks, and with
	// a redundancy cap a task's open slots shrink by its live leases, so
	// concurrent traffic cannot over-assign it far past AnswersPerTask.
	// Zero disables leases (the seed behavior). Leases are serving-only
	// state, never WAL'd; see docs/assignment.md for the recovery caveat.
	LeaseTTL time.Duration
	// Clock supplies the lease clock (nil = time.Now). Tests inject a fake
	// clock to drive TTL expiry deterministically, with no sleeps.
	Clock func() time.Time
	// ScanAssign selects the legacy per-request full-scan assignment path
	// instead of the live candidate index. The two produce bit-identical
	// assignments; the scan survives as the equivalence oracle and the
	// benchmark baseline (docs-bench -exp assign).
	ScanAssign bool
	// ProfileScope namespaces this campaign's golden-profiling merges in
	// the shared long-run store: each worker's profiling merge is recorded
	// under ProfileScope+"/"+worker and applied exactly once no matter how
	// often the campaign's log replays (crash recovery, snapshot shadow).
	// The registry passes the campaign name; a standalone System may leave
	// it empty (the bare "/" namespace). Campaigns sharing one persistent
	// store MUST use distinct scopes, or one campaign's replay would treat
	// another campaign's profiling of the same worker as its own.
	ProfileScope string
}

// workerShardCount shards per-worker serving state.
const workerShardCount = shard.Count

// workerState is everything the orchestrator tracks per worker: her golden
// answers and profiling status, the set of regular tasks she answered
// (T(w), used to exclude tasks from her next assignment), and her anchor —
// the long-run statistics pinned when she was profiled or first seeded
// from the store. Rerun initialization reads the anchor instead of the
// live store (initQuality): the store keeps evolving under concurrent
// campaigns, and a time-of-rerun store read is exactly the kind of
// unlogged float input that made recovered state drift from live state.
type workerState struct {
	goldenAnswers []model.Answer
	profiled      bool
	answered      map[int]bool
	anchor        *truth.Stats
}

type workerShard struct {
	mu      sync.Mutex
	workers map[string]*workerState
}

// System is a running DOCS campaign.
type System struct {
	// mu guards the campaign structure: it is write-locked only by Publish;
	// every serving path takes the read side.
	mu sync.RWMutex

	kb        *kb.KB
	linker    *entitylink.Linker
	m         int
	store     *store.Store
	ownsStore bool // New created the store, so Close releases it
	cfg       Config

	tasks      []*model.Task // published, with domain vectors
	byID       map[int]*model.Task
	golden     map[int]bool  // task IDs serving as golden tasks
	goldenList []*model.Task // golden tasks in publication order

	inc *truth.Incremental

	// index is the live candidate index: the open-task set in publication
	// order, maintained incrementally as answers arrive and published as an
	// epoch-versioned immutable array (built once by Publish; atomic so
	// stats and pre-publish requests race-freely observe "no index yet").
	index atomic.Pointer[candidateIndex]
	// leases tracks outstanding assignments when Config.LeaseTTL is set
	// (nil otherwise). Created in New, before serving.
	leases *leaseTable

	shards [workerShardCount]workerShard

	// logMu guards the chronological answer log — the only globally ordered
	// write structure left on the Submit path (a single slice append) — and,
	// when a WAL is armed, the WAL reservation that must share its order.
	logMu  sync.Mutex
	log    []model.Answer
	durLog []wal.Record // full durable-record mirror, the checkpoint source

	// wal fields are written once by Recover, before serving starts.
	wal        *wal.Log
	walDir     string
	recovering bool // Recover's replay is in flight: no re-logging, sync reruns
	recovery   RecoveryInfo

	submissions atomic.Int64
	// batches / batchAnswers count SubmitBatch calls and the answers they
	// accepted (replayed KindBatch records included, so the counters survive
	// recovery like submissions does). Neither enters the fingerprint:
	// batched and one-by-one traffic producing the same answer stream are
	// the same campaign.
	batches      atomic.Int64
	batchAnswers atomic.Int64
	reruns       atomic.Int64
	rerunErrs    atomic.Int64
	ckpts        atomic.Int64
	ckptErrs     atomic.Int64
	snaps        atomic.Int64
	snapErrs     atomic.Int64

	// snapSeq is the WAL sequence covered by the newest state snapshot this
	// process wrote or booted from.
	snapSeq atomic.Uint64
	// shadow is the serial replica the snapshot passes advance and
	// serialize; shadowSeq is the WAL sequence it has replayed through.
	// Both are touched only by the maintenance worker (and Close, after the
	// worker exits).
	shadow    *System
	shadowSeq uint64
	snapCh    chan struct{}

	// ckptMu serializes checkpoint passes and guards the cached checkpoint
	// tail (last covered sequence and byte length of the intact file).
	ckptMu      sync.Mutex
	ckptLastSeq uint64
	ckptBytes   int64
	ckptCh      chan struct{}

	rerunMu sync.Mutex // serializes batch re-inference runs
	// rerunFault, when set (tests only), is invoked at the top of every
	// rerun attempt; a non-nil return fails the rerun — the seam the
	// failed-rerun regression test injects through.
	rerunFault func() error
	rerunCh    chan struct{}
	quit       chan struct{}
	wg         sync.WaitGroup
	closed     sync.Once

	assigners sync.Pool
}

// New creates a System from the config.
func New(cfg Config) (*System, error) {
	k := cfg.KB
	if k == nil {
		var err error
		k, err = kb.Default()
		if err != nil {
			return nil, err
		}
	}
	st := cfg.Store
	ownsStore := false
	if st == nil {
		var err error
		st, err = store.Open("", k.Domains().Size())
		if err != nil {
			return nil, err
		}
		ownsStore = true
	}
	if cfg.GoldenCount == 0 {
		cfg.GoldenCount = assign.DefaultGoldenCount
	}
	if cfg.HITSize <= 0 {
		cfg.HITSize = assign.DefaultBatchSize
	}
	if cfg.RerunEvery == 0 {
		cfg.RerunEvery = 100
	}
	if cfg.CheckpointEvery == 0 {
		cfg.CheckpointEvery = 5000
	}
	if cfg.SnapshotEvery == 0 {
		cfg.SnapshotEvery = 5000
	}
	m := k.Domains().Size()
	s := &System{
		kb:        k,
		linker:    entitylink.New(k),
		m:         m,
		store:     st,
		ownsStore: ownsStore,
		cfg:       cfg,
		byID:      make(map[int]*model.Task),
		golden:    make(map[int]bool),
		inc:       truth.NewIncremental(m),
		rerunCh:   make(chan struct{}, 1),
		ckptCh:    make(chan struct{}, 1),
		snapCh:    make(chan struct{}, 1),
		quit:      make(chan struct{}),
	}
	for i := range s.shards {
		s.shards[i].workers = make(map[string]*workerState)
	}
	if cfg.LeaseTTL > 0 {
		s.leases = newLeaseTable(cfg.LeaseTTL, cfg.Clock)
	}
	s.assigners.New = func() any { return new(assign.Assigner) }
	if cfg.AsyncRerun && cfg.RerunEvery > 0 {
		s.wg.Add(1)
		go s.rerunWorker()
	}
	return s, nil
}

// Close stops the background rerun and checkpoint workers (pending
// requests are drained first) and then flushes, fsyncs and closes the WAL,
// so a graceful shutdown loses nothing regardless of sync policy. A store
// this System created (rather than received via Config.Store) is released
// too; a caller-provided store stays open — the caller may share it.
// Serving methods must not be called after Close.
func (s *System) Close() error {
	s.closed.Do(func() { close(s.quit) })
	s.wg.Wait()
	var err error
	if s.shadow != nil {
		// The maintenance worker has exited; the shadow replica has no
		// goroutines or files of its own, but close it for symmetry.
		err = s.shadow.Close()
		s.shadow = nil
	}
	if s.wal != nil {
		if cerr := s.wal.Close(); err == nil {
			err = cerr
		}
	}
	if s.ownsStore {
		if cerr := s.store.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

func (s *System) rerunWorker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.quit:
			// Drain a rerun request that raced the shutdown so Close's
			// "pending requests run first" contract holds.
			select {
			case <-s.rerunCh:
				if err := s.runRerun(); err != nil {
					s.rerunErrs.Add(1)
				}
			default:
			}
			return
		case <-s.rerunCh:
			if err := s.runRerun(); err != nil {
				s.rerunErrs.Add(1)
			}
		}
	}
}

func (s *System) shard(workerID string) *workerShard {
	return &s.shards[shard.Index(workerID, workerShardCount)]
}

// state returns the worker's serving state, creating it if absent. Callers
// hold the shard lock.
func (sh *workerShard) state(workerID string) *workerState {
	ws, ok := sh.workers[workerID]
	if !ok {
		ws = &workerState{answered: make(map[int]bool)}
		sh.workers[workerID] = ws
	}
	return ws
}

// Domains returns the system's domain set.
func (s *System) Domains() *model.DomainSet { return s.kb.Domains() }

// Publish runs DVE over the tasks, selects golden tasks among those with
// ground truth, and opens the campaign. Tasks without a precomputed Domain
// get one from the DVE pipeline (entity linking + Algorithm 1); tasks the
// requester already annotated keep their vector.
func (s *System) Publish(tasks []*model.Task) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.tasks) > 0 {
		return fmt.Errorf("core: tasks already published")
	}
	// Validate the whole batch into a local map before mutating any
	// campaign state: a rejected task must leave the system exactly as it
	// was, so the requester can fix the batch and re-publish (a partial
	// insert would make the retry fail on its own leftovers).
	byID := make(map[int]*model.Task, len(tasks))
	for _, t := range tasks {
		if _, dup := byID[t.ID]; dup {
			return fmt.Errorf("core: duplicate task ID %d", t.ID)
		}
		if t.Domain == nil {
			ents := dve.FromLinked(s.linker.Link(t.Text), s.m)
			t.Domain = dve.Normalized(ents, s.m)
		}
		if err := t.Validate(s.m); err != nil {
			return err
		}
		byID[t.ID] = t
	}
	s.byID = byID
	s.tasks = tasks

	// Golden tasks: choose among tasks with known ground truth so a new
	// worker's answers can be scored (Section 5.2).
	var withTruth []*model.Task
	for _, t := range tasks {
		if t.Truth != model.NoTruth {
			withTruth = append(withTruth, t)
		}
	}
	if n := s.cfg.GoldenCount; n > 0 && len(withTruth) > 0 {
		for _, idx := range assign.SelectGolden(withTruth, n, s.m) {
			s.golden[withTruth[idx].ID] = true
		}
	}
	for _, t := range tasks {
		if s.golden[t.ID] {
			s.goldenList = append(s.goldenList, t)
		}
	}

	// Non-golden tasks enter the incremental truth-inference engine.
	for _, t := range tasks {
		if s.golden[t.ID] {
			continue
		}
		if err := s.inc.AddTask(t); err != nil {
			return err
		}
	}

	// Build the live candidate index over the assignable tasks, in
	// publication order (the order the assignment tie-break is defined
	// over). Each candidate carries a lock-free view handle so a request
	// never touches the task maps; with leases armed, each task gets its
	// lease counter here, before serving can observe the campaign.
	master := make([]candidate, 0, len(s.tasks))
	for _, t := range s.tasks {
		if s.golden[t.ID] {
			continue
		}
		c := candidate{id: t.ID, domain: t.Domain, h: s.inc.Handle(t.ID)}
		if s.leases != nil {
			s.leases.registerTask(t.ID)
			c.leases = s.leases.counts[t.ID]
		}
		master = append(master, c)
	}
	s.index.Store(newCandidateIndex(master))

	// Log the publication — tasks with their DVE-computed domain vectors —
	// so recovery does not depend on re-running entity linking against a
	// possibly different knowledge-base build. Campaign structure is
	// settled at this point; a failure below only voids durability.
	if s.wal != nil {
		blob, err := json.Marshal(tasks)
		if err != nil {
			return fmt.Errorf("core: wal: %w", err)
		}
		s.logMu.Lock()
		p, err := s.walReserve(wal.Record{Kind: wal.KindPublish, Blob: blob})
		s.logMu.Unlock()
		if err != nil {
			return err
		}
		return s.walCommit(p)
	}
	return nil
}

// Published reports whether the campaign's tasks are in place (directly or
// via WAL recovery).
func (s *System) Published() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.tasks) > 0
}

// GoldenTasks returns the golden task IDs in publication order.
func (s *System) GoldenTasks() []int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]int, 0, len(s.goldenList))
	for _, t := range s.goldenList {
		out = append(out, t.ID)
	}
	return out
}

// Request serves an arriving worker: a returning (or profiled) worker gets
// the k highest-benefit open tasks; a new worker is first served the
// golden tasks she has not answered yet. The returned tasks are in
// assignment order. Requests run concurrently with each other and with
// submits: the candidate set is one atomic load of the index's shared
// immutable array and task states are read from the truth engine's latest
// immutable snapshots, so a request never blocks answer ingest (and may be
// up to one submit stale, which OTA tolerates by design). With leases
// armed (Config.LeaseTTL) the served tasks are leased to the worker until
// answered or expired.
func (s *System) Request(workerID string, k int) ([]*model.Task, error) {
	if workerID == "" {
		return nil, fmt.Errorf("core: empty worker ID")
	}
	s.mu.RLock()
	tasks, golden, goldenList := s.tasks, s.golden, s.goldenList
	s.mu.RUnlock()
	if k <= 0 {
		k = s.cfg.HITSize
	}

	ready, err := s.workerReady(workerID, goldenList)
	if err != nil {
		// The worker's store-seed could not be promised durable; surface it
		// like any other durability failure instead of serving tasks whose
		// assignment depended on state recovery would not reconstruct.
		return nil, err
	}
	if !ready {
		// Serve unanswered golden tasks first.
		answered := s.goldenAnswered(workerID)
		var out []*model.Task
		for _, t := range goldenList {
			if len(out) >= k {
				break
			}
			if !answered[t.ID] {
				out = append(out, t)
			}
		}
		if len(out) > 0 {
			return out, nil
		}
		// No golden tasks configured: fall through to OTA with defaults.
	}

	q := s.WorkerQuality(workerID)
	excluded := s.answeredSnapshot(workerID)
	// Leases: expire what is due, then exclude the tasks this worker
	// already holds, so a re-request before submitting gets disjoint tasks.
	var leased map[int]bool
	if s.leases != nil {
		leased = s.leases.beginRequest(workerID)
	}
	redundancy := s.cfg.AnswersPerTask
	as := s.assigners.Get().(*assign.Assigner)
	var ids []int
	if s.cfg.ScanAssign {
		ids = s.assignScan(as, tasks, golden, excluded, leased, q, k, redundancy)
	} else {
		ids = s.assignIndexed(as, excluded, leased, q, k, redundancy)
	}
	s.assigners.Put(as)
	if s.leases != nil {
		s.leases.grant(workerID, ids)
	}
	out := make([]*model.Task, 0, len(ids))
	s.mu.RLock()
	for _, id := range ids {
		out = append(out, s.byID[id])
	}
	s.mu.RUnlock()
	return out, nil
}

// assignIndexed is the indexed OTA hot path: one atomic load of the shared
// immutable candidate array, then a streamed size-k heap over it. The only
// per-request allocations are the exclusion snapshots and the returned IDs
// — nothing proportional to campaign size. The per-candidate filter
// re-checks redundancy (and live leases) against the latest truth
// snapshot, so entries that closed since the last index compaction are
// skipped exactly as the full scan would skip them.
func (s *System) assignIndexed(as *assign.Assigner, excluded, leased map[int]bool, q model.QualityVector, k, redundancy int) []int {
	ci := s.index.Load()
	if ci == nil {
		return nil
	}
	arr := ci.load()
	if arr == nil || len(arr.entries) == 0 {
		return nil
	}
	entries := arr.entries
	return as.AssignFunc(len(entries), func(i int, ts *assign.TaskState) bool {
		c := &entries[i]
		if excluded[c.id] || leased[c.id] {
			return false
		}
		v := c.h.View()
		if v == nil {
			return false
		}
		if redundancy > 0 {
			open := redundancy - v.NumAnswers
			if c.leases != nil {
				open -= int(c.leases.Load())
			}
			if open <= 0 {
				return false
			}
		}
		// The view's M and S are immutable snapshots: OTA reads them
		// without copying or locking.
		ts.ID, ts.R, ts.M, ts.S = c.id, c.domain, v.M, v.S
		return true
	}, q, k)
}

// assignScan is the seed's per-request full scan: rebuild the candidate
// set from all tasks, materializing a TaskState slice proportional to
// campaign size. It survives behind Config.ScanAssign as the equivalence
// oracle (TestIndexedAssignmentEquivalence) and the benchmark baseline;
// the indexed path must stay bit-identical to it on serial campaigns.
func (s *System) assignScan(as *assign.Assigner, tasks []*model.Task, golden map[int]bool, excluded, leased map[int]bool, q model.QualityVector, k, redundancy int) []int {
	backing := make([]assign.TaskState, 0, len(tasks))
	for _, t := range tasks {
		if golden[t.ID] || excluded[t.ID] || leased[t.ID] {
			continue
		}
		v := s.inc.View(t.ID)
		if v == nil {
			continue
		}
		if redundancy > 0 {
			open := redundancy - v.NumAnswers
			if s.leases != nil {
				open -= s.leases.taskLeases(t.ID)
			}
			if open <= 0 {
				continue
			}
		}
		backing = append(backing, assign.TaskState{ID: t.ID, R: t.Domain, M: v.M, S: v.S})
	}
	return as.AssignStates(backing, q, k, nil)
}

// Submit records a worker's answer. Golden-task answers feed the worker's
// quality profile; regular answers flow through incremental truth
// inference, with a periodic full iterative re-run every RerunEvery
// submissions (inline, or on the background worker with AsyncRerun).
func (s *System) Submit(workerID string, taskID, choice int) error {
	return s.submitOne(workerID, taskID, choice, nil)
}

// submitOne is the one answer-application path, shared by Submit and
// SubmitBatch. With g nil the answer reserves and commits its own WAL
// record (the single-submit behavior). With g non-nil, a regular answer
// defers durability into the group — its record joins g instead of being
// reserved, and the caller commits the whole group as ONE KindBatch frame —
// while a golden answer first flushes the group (group record ahead of the
// golden record in the durable order) and then commits individually, so the
// answer-durable-before-profiling-merge invariant documented below holds
// unchanged under batching. Everything else — validation, ingest, the
// chronological log append under logMu, the rerun/checkpoint/snapshot
// cadence — is identical in both modes, which is what makes a batched
// stream's state bit-identical to the same answers submitted one by one
// (TestBatchSubmitEquivalence).
func (s *System) submitOne(workerID string, taskID, choice int, g *batchGroup) error {
	if workerID == "" {
		return fmt.Errorf("core: empty worker ID")
	}
	s.mu.RLock()
	t, ok := s.byID[taskID]
	isGolden := s.golden[taskID]
	goldenList := s.goldenList
	s.mu.RUnlock()
	if !ok {
		return fmt.Errorf("core: unknown task %d", taskID)
	}
	if choice < 0 || choice >= t.NumChoices() {
		return fmt.Errorf("core: choice %d out of range for task %d", choice, taskID)
	}
	a := model.Answer{Worker: workerID, Task: taskID, Choice: choice}

	if isGolden {
		// The group must be durable before (or with) anything that follows
		// it: flush it now so the golden record's reservation lands after
		// the group's, and the fsync wait happens before the shard lock.
		if g != nil {
			if err := g.flush(s); err != nil {
				return err
			}
		}
		sh := s.shard(workerID)
		sh.mu.Lock()
		ws := sh.state(workerID)
		for _, prev := range ws.goldenAnswers {
			if prev.Task == taskID {
				sh.mu.Unlock()
				return fmt.Errorf("core: worker %q already answered golden task %d", workerID, taskID)
			}
		}
		ws.goldenAnswers = append(ws.goldenAnswers, a)
		completesGauntlet := len(ws.goldenAnswers) == len(goldenList)
		// Reserve the WAL slot before releasing the shard lock: a worker's
		// golden answers must replay in the order profiling consumed them.
		s.logMu.Lock()
		p, err := s.walReserve(wal.Record{Kind: wal.KindAnswer, Worker: workerID, Task: taskID, Choice: choice})
		s.logMu.Unlock()
		sh.mu.Unlock()
		if err != nil {
			return err
		}
		// The answer becomes durable BEFORE the profiling merge. The merge
		// is recorded under a campaign-scoped profile ID (MergeProfile), so
		// both crash orders are safe: a crash after the merge replays the
		// completing answer and finds the recorded ID (no double-count), and
		// a crash before the merge replays the completing answer into an
		// ID-less store and re-applies the merge bit-exactly (no loss). The
		// old "one bounded profiling merge can die with the process" window
		// is closed — TestCrashRecoversUnmergedProfiling pins the repair.
		if err := s.walCommit(p); err != nil {
			return err
		}
		if completesGauntlet {
			sh.mu.Lock()
			// Exactly one submit observes the gauntlet completing (the
			// duplicate check above serializes a worker's golden answers),
			// so profiling runs once.
			err = s.profileWorker(workerID, ws, goldenList)
			sh.mu.Unlock()
			return err
		}
		return nil
	}

	// Seed the worker's quality from the long-run store before her first
	// answer enters the incremental engine (logged, so replay re-seeds the
	// same bits rather than re-reading the store).
	if err := s.ensureWorker(workerID); err != nil {
		return err
	}
	// The truth engine's per-task lock is the authority on duplicate
	// answers; ingest updates only that task's state plus the touched
	// workers' shards, so submits to different tasks run in parallel.
	if err := s.inc.Submit(a); err != nil {
		return err
	}
	sh := s.shard(workerID)
	sh.mu.Lock()
	sh.state(workerID).answered[taskID] = true
	sh.mu.Unlock()
	// The accepted answer retires the worker's lease on the task and, once
	// redundancy is met, drops the task out of the candidate index.
	if s.leases != nil {
		s.leases.release(workerID, taskID)
	}
	if r := s.cfg.AnswersPerTask; r > 0 {
		if ci := s.index.Load(); ci != nil {
			if v := s.inc.View(taskID); v != nil {
				ci.noteAnswer(taskID, v.NumAnswers, r)
			}
		}
	}
	var p wal.Pending
	var walErr error
	s.logMu.Lock()
	s.log = append(s.log, a)
	// The WAL reservation shares logMu, so durable replay order is exactly
	// the chronological answer-log order the serial-replay equivalence is
	// proven against. The wait for the group-commit batch happens below,
	// outside the lock, so concurrent submits still share one write. A
	// batched answer defers even the reservation: it joins the group under
	// the same lock, and the group is reserved as one record at flush.
	if g != nil {
		g.recs = append(g.recs, wal.Record{Kind: wal.KindAnswer, Worker: workerID, Task: taskID, Choice: choice})
	} else {
		p, walErr = s.walReserve(wal.Record{Kind: wal.KindAnswer, Worker: workerID, Task: taskID, Choice: choice})
	}
	s.logMu.Unlock()
	if walErr != nil {
		return walErr
	}

	n := s.submissions.Add(1)
	if z := s.cfg.RerunEvery; z > 0 && n%int64(z) == 0 {
		// During recovery the rerun must be synchronous regardless of
		// AsyncRerun: replay determinism is the whole point of the WAL.
		if s.cfg.AsyncRerun && !s.recovering {
			select {
			case s.rerunCh <- struct{}{}:
			default: // a rerun is already pending; it will cover this batch
			}
		} else if err := s.runRerun(); err != nil {
			return err
		}
	}
	s.maybeCheckpoint(n)
	s.maybeSnapshot(n)
	return s.walCommit(p)
}

// Result returns the current inferred truth and probabilistic truth of a
// task (choice −1 for golden/unknown tasks, which are not inferred). It
// reads the latest immutable snapshot and never blocks submits.
func (s *System) Result(taskID int) (choice int, confidence []float64) {
	v := s.inc.View(taskID)
	if v == nil {
		return model.NoTruth, nil
	}
	return v.Truth, mathx.Clone(v.S)
}

// Results runs the full iterative truth inference over everything received
// and returns the final result (slices aligned with InferTasks). Golden
// tasks and the workers' golden answers participate as pinned evidence so
// the quality scale stays anchored. It also merges each worker's session
// statistics into the long-run store (Theorem 1) and saves the store.
// Inference runs over a snapshot of the answer log, so submits continue
// concurrently (answers arriving after the snapshot appear in the next
// call).
func (s *System) Results() (*truth.Result, error) {
	as := s.answersSnapshot()
	s.mu.RLock()
	inferTasks := s.inferTasksRLocked()
	s.mu.RUnlock()
	combined, answers, pinned, err := s.combined(inferTasks, as)
	if err != nil {
		return nil, err
	}
	res, err := truth.Infer(combined, answers, s.m, truth.Options{
		InitQuality: s.initQuality(as),
		Pinned:      pinned,
	})
	if err != nil {
		return nil, err
	}
	for w, st := range truth.SessionStats(combined, answers, res, s.m) {
		if err := s.store.Merge(w, st); err != nil {
			return nil, err
		}
	}
	if err := s.store.Save(); err != nil {
		return nil, err
	}
	// Trim the golden entries so the result aligns with InferTasks.
	n := len(inferTasks)
	res.S = res.S[:n]
	res.M = res.M[:n]
	res.Truth = res.Truth[:n]
	return res, nil
}

// answersSnapshot rebuilds an AnswerSet from a point-in-time copy of the
// chronological answer log. Keeping the original submission order matters:
// several consumers accumulate floating-point sums over the per-task and
// per-worker slices, and a reordering would perturb results in the last ulp.
func (s *System) answersSnapshot() *model.AnswerSet {
	s.logMu.Lock()
	logCopy := append([]model.Answer(nil), s.log...)
	s.logMu.Unlock()
	as := model.NewAnswerSet()
	for _, a := range logCopy {
		// The log only ever holds answers the truth engine accepted, so
		// duplicates cannot occur here.
		if err := as.Add(a); err != nil {
			panic(fmt.Sprintf("core: corrupt answer log: %v", err))
		}
	}
	return as
}

// combined appends the golden tasks (with pinned truths) and the golden
// answers to the campaign's tasks and the given answer snapshot, anchoring
// inference. The input answer set is cloned, not mutated: callers keep
// using it as the regular-answers-only view (Reseed and initQuality must
// not see golden evidence — it is already anchored into worker stats via
// golden profiling, and folding it in again would double-count).
func (s *System) combined(inferTasks []*model.Task, answers *model.AnswerSet) ([]*model.Task, *model.AnswerSet, map[int]int, error) {
	s.mu.RLock()
	goldenList := s.goldenList
	s.mu.RUnlock()
	combined := inferTasks
	pinned := make(map[int]int)
	if len(goldenList) > 0 {
		combined = make([]*model.Task, len(inferTasks), len(inferTasks)+len(goldenList))
		copy(combined, inferTasks)
		for _, t := range goldenList {
			combined = append(combined, t)
			pinned[t.ID] = t.Truth
		}
		answers = answers.Clone()
		// Sorted worker order: golden answers must enter the answer set in
		// a fixed order, or per-task likelihood sums reorder between runs
		// and ulp-level differences flip assignment ties.
		golden := s.goldenAnswersByWorker()
		workers := make([]string, 0, len(golden))
		for w := range golden {
			workers = append(workers, w)
		}
		sort.Strings(workers)
		for _, w := range workers {
			for _, a := range golden[w] {
				if err := answers.Add(a); err != nil {
					return nil, nil, nil, err
				}
			}
		}
	}
	return combined, answers, pinned, nil
}

// goldenAnswersByWorker gathers every worker's golden answers across the
// shards.
func (s *System) goldenAnswersByWorker() map[string][]model.Answer {
	out := make(map[string][]model.Answer)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for w, ws := range sh.workers {
			if len(ws.goldenAnswers) > 0 {
				out[w] = append([]model.Answer(nil), ws.goldenAnswers...)
			}
		}
		sh.mu.Unlock()
	}
	return out
}

// InferTasks returns the non-golden tasks in publication order (the tasks
// Results infers over, in the same order as the result slices).
func (s *System) InferTasks() []*model.Task {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.inferTasksRLocked()
}

// WorkerQuality returns the system's current quality estimate for a worker.
func (s *System) WorkerQuality(workerID string) model.QualityVector {
	if st := s.inc.Worker(workerID); st != nil {
		return st.Q // Worker returns a private copy
	}
	if st, ok := s.store.Worker(workerID); ok {
		return st.Q
	}
	q := make(model.QualityVector, s.m)
	for k := range q {
		q[k] = truth.DefaultQuality
	}
	return q
}

// Answers returns a snapshot of the collected non-golden answers.
func (s *System) Answers() *model.AnswerSet {
	return s.answersSnapshot()
}

// AnswerCount returns the number of accepted non-golden answers so far.
func (s *System) AnswerCount() int64 { return s.submissions.Load() }

// Epoch returns the truth engine's snapshot epoch: it increases with every
// accepted answer and every batch-rerun swap, so two equal reads bracket a
// quiescent system.
func (s *System) Epoch() uint64 { return s.inc.Epoch() }

// Reruns returns how many periodic batch re-inference runs have completed
// and how many failed.
func (s *System) Reruns() (completed, failed int64) {
	return s.reruns.Load(), s.rerunErrs.Load()
}

// OpenTasks returns the number of open (assignable) tasks in the candidate
// index: non-golden tasks still under their redundancy cap. Zero before
// Publish.
func (s *System) OpenTasks() int {
	if ci := s.index.Load(); ci != nil {
		return int(ci.openCount.Load())
	}
	return 0
}

// IndexEpoch returns the candidate index's generation counter: it advances
// every time a new immutable candidate array is published (the initial
// build, compactions, and post-rerun resyncs). Zero before Publish.
func (s *System) IndexEpoch() uint64 {
	if ci := s.index.Load(); ci != nil {
		return ci.epoch.Load()
	}
	return 0
}

// ActiveLeases returns the number of live assignment leases (always zero
// when Config.LeaseTTL is unset). The read itself processes due expiries,
// so an idle system — one receiving no requests, which are the other place
// lazy expiry runs — still reports zero once every TTL has elapsed rather
// than counting expired leases forever.
func (s *System) ActiveLeases() int64 {
	if s.leases != nil {
		return s.leases.activeNow()
	}
	return 0
}

// --- internal helpers ---

// inferTasksRLocked returns the non-golden tasks; callers hold s.mu (read
// side suffices — the slice is append-only after Publish).
func (s *System) inferTasksRLocked() []*model.Task {
	out := make([]*model.Task, 0, len(s.tasks))
	for _, t := range s.tasks {
		if !s.golden[t.ID] {
			out = append(out, t)
		}
	}
	return out
}

// goldenAnswered returns the set of golden tasks the worker has answered.
func (s *System) goldenAnswered(workerID string) map[int]bool {
	out := make(map[int]bool)
	sh := s.shard(workerID)
	sh.mu.Lock()
	if ws, ok := sh.workers[workerID]; ok {
		for _, a := range ws.goldenAnswers {
			out[a.Task] = true
		}
	}
	sh.mu.Unlock()
	return out
}

// answeredSnapshot returns a private copy of the worker's answered-task set
// (T(w)); the copy lets the assignment scan run without holding her shard
// lock.
func (s *System) answeredSnapshot(workerID string) map[int]bool {
	sh := s.shard(workerID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ws, ok := sh.workers[workerID]
	if !ok || len(ws.answered) == 0 {
		return nil
	}
	out := make(map[int]bool, len(ws.answered))
	for id := range ws.answered {
		out[id] = true
	}
	return out
}

// workerReady reports whether the worker can receive regular tasks: either
// profiled this session, known to the store, or there are no golden tasks
// to profile with. Adopting a store profile is a durable event: the exact
// statistics read (and the profiled-flag flip) are logged as a KindSeed
// record under logMu, so replay restores the same bits at the same point
// in the answer order instead of re-reading a store that may have moved on.
func (s *System) workerReady(workerID string, goldenList []*model.Task) (bool, error) {
	if len(goldenList) == 0 {
		return true, nil
	}
	sh := s.shard(workerID)
	sh.mu.Lock()
	// Lookup without creating: bare Request traffic (including unknown or
	// scanning worker IDs) must not grow the shard maps — per-worker state
	// is materialized only when there is something to record.
	if ws, ok := sh.workers[workerID]; ok && ws.profiled {
		sh.mu.Unlock()
		return true, nil
	}
	st, ok := s.store.Worker(workerID)
	if !ok {
		sh.mu.Unlock()
		return false, nil
	}
	// The seed record is forced even when the incremental engine already
	// knew the worker (her regular answers preceded this request): the
	// profiled-flag flip below must replay at this exact sequence, and the
	// set-if-absent install loses identically on both sides.
	s.logMu.Lock()
	_, p, err := s.logSeed(workerID, st, true, true)
	s.logMu.Unlock()
	ws := sh.state(workerID)
	ws.profiled = true
	if ws.anchor == nil {
		ws.anchor = st.Clone()
	}
	sh.mu.Unlock()
	if err != nil {
		return true, err
	}
	return true, s.walCommit(p)
}

// profileWorker initializes the worker's quality from her golden-task
// answers and registers it with the incremental engine and the store.
// Callers hold the worker's shard lock.
//
// The store merge is idempotent by profile ID (store.MergeProfile): the
// live system applies it and fsyncs the delta; every replay of the same
// gauntlet completion — crash recovery, the snapshot shadow replica —
// finds the recorded ID and adopts the recorded post-merge anchor without
// double-counting. When a crash lost the merge delta after the completing
// answer became WAL-durable, the replay's MergeProfile finds no ID and
// repairs the store bit-exactly (the worker's stored record is exactly as
// it was before the lost merge, so the re-applied Theorem-1 fold produces
// the same bits). EstimateFromGolden is a pure function of the replayed
// golden answers, so no part of the profile depends on boot-time store
// contents.
func (s *System) profileWorker(workerID string, ws *workerState, goldenList []*model.Task) error {
	st := truth.EstimateFromGolden(goldenList, ws.goldenAnswers, s.m)
	anchor, _, err := s.store.MergeProfile(s.profileID(workerID), workerID, st)
	if err != nil {
		// The durable merge failed; abort profiling (the caller unwinds the
		// triggering answer) rather than continue with an unrecorded merge.
		return err
	}
	_ = s.inc.SetWorker(workerID, st)
	ws.profiled = true
	// Profiling pins (or re-pins) the anchor: the recorded post-merge value
	// is what rerun initialization must use from now on, live and replayed
	// alike — all replicas receive the same recorded bits.
	ws.anchor = anchor
	return nil
}

// ensureWorker makes sure the incremental engine knows the worker, seeding
// from the store when possible. The set-if-absent seed keeps a racing pair
// of the worker's first submits from clobbering each other's updates. An
// installed seed is logged (KindSeed) under logMu before the answer that
// triggered it reserves its own slot, so replay re-installs the exact
// seeded bits in the exact order; during recovery the store is never read
// — seeds replay from their own records.
func (s *System) ensureWorker(workerID string) error {
	if s.inc.HasWorker(workerID) {
		return nil
	}
	if s.recovering {
		return nil
	}
	st, ok := s.store.Worker(workerID)
	if !ok {
		return nil
	}
	s.logMu.Lock()
	installed, p, err := s.logSeed(workerID, st, false, false)
	s.logMu.Unlock()
	if err != nil {
		return err
	}
	if installed {
		sh := s.shard(workerID)
		sh.mu.Lock()
		ws := sh.state(workerID)
		if ws.anchor == nil {
			ws.anchor = st.Clone()
		}
		sh.mu.Unlock()
	}
	return s.walCommit(p)
}

// runRerun runs the full iterative TI (with pinned golden evidence) over a
// snapshot of the answer log and reseeds the incremental engine (the
// paper's "delayed" batch refresh every z submissions). Runs are
// serialized. The reseed skips tasks that received answers after the
// snapshot, so per-task truth state is never overwritten with stale
// values; worker quality stats are overwritten from the rerun's session
// statistics, so a worker's post-snapshot increments can regress until the
// next rerun — the same drift-and-correct contract the incremental engine
// documents.
func (s *System) runRerun() error {
	s.rerunMu.Lock()
	defer s.rerunMu.Unlock()
	err := s.rerunLocked()
	if err != nil {
		// A failed rerun must still leave the candidate index resynced: the
		// reseed never ran (inference failed before any swap), so no task
		// reopened, but resync is also the periodic safety net for closures
		// the incremental path missed — skipping it here would leave the
		// index drifting until the next SUCCESSFUL rerun, unboundedly long
		// if the failure repeats.
		if ci := s.index.Load(); ci != nil {
			ci.resync(s.cfg.AnswersPerTask)
		}
	}
	return err
}

// rerunLocked is runRerun's body; callers hold rerunMu.
func (s *System) rerunLocked() error {
	as := s.answersSnapshot()
	s.mu.RLock()
	inferTasks := s.inferTasksRLocked()
	s.mu.RUnlock()
	if s.rerunFault != nil {
		if err := s.rerunFault(); err != nil {
			return err
		}
	}
	combined, answers, pinned, err := s.combined(inferTasks, as)
	if err != nil {
		return err
	}
	res, err := truth.Infer(combined, answers, s.m, truth.Options{
		InitQuality: s.initQuality(as),
		Pinned:      pinned,
	})
	if err != nil {
		return err
	}
	s.inc.Reseed(combined, res, as)
	// The rerun swap is the only mutation that can change answer counts
	// non-monotonically, so re-derive the open-task set from the reseeded
	// snapshots (reopening any task the swap put back under its redundancy
	// cap, and catching any closure the incremental path missed).
	if ci := s.index.Load(); ci != nil {
		ci.resync(s.cfg.AnswersPerTask)
	}
	s.reruns.Add(1)
	return nil
}

// initQuality gathers the initial quality per answering worker. A worker's
// pinned anchor is preferred: it is the long-run store value adopted when
// she was profiled or first seeded — anchored by golden tasks and past
// sessions (Theorem 1) — whereas the incremental engine's estimates drift
// between batch reruns and, used as initialization, can place the EM in a
// label-flipped basin. The anchor is read instead of the LIVE store on
// purpose: the store evolves under concurrent campaigns, and a
// time-of-rerun store read is an unlogged float input that recovery could
// not reproduce (the root cause of the old ~1e-7 live-vs-recovered
// divergence — see docs/persistence.md).
func (s *System) initQuality(answers *model.AnswerSet) map[string]model.QualityVector {
	init := make(map[string]model.QualityVector)
	for _, w := range answers.Workers() {
		if a := s.anchorStats(w); a != nil {
			init[w] = a.Q
			continue
		}
		if st := s.inc.Worker(w); st != nil {
			init[w] = st.Q // already a private copy
		}
	}
	return init
}
