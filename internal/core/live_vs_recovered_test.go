package core

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"docs/internal/mathx"
	"docs/internal/model"
	"docs/internal/store"
)

// This file is the live-vs-recovered acceptance harness for the durability
// contract's strongest form: a recovered system must be bit-identical to
// the LIVE system as it stood at the moment the acknowledged prefix ended
// — not merely to a deterministic replay of that prefix. The two are the
// same thing only if the serving path derives nothing from state that
// recovery sees at a different time; the ~1e-7 /result drift this suite
// was built to catch came from exactly such a gap (worker-profile seeds
// re-READ from the evolving long-run store on replay instead of being
// restored from the log — see docs/persistence.md).
//
// The harness runs a serial contested campaign over a real WAL and a
// persistent shared store, captures a byte-level image of the durable
// files plus the live Fingerprint after EVERY acknowledged operation, and
// then recovers every image — clean boundaries, synthesized torn final
// frames, and store-delta loss — comparing fingerprints at float64-bit
// granularity. On failure it writes the bit-level diff report where
// LIVE_DIFF_REPORT points (CI uploads it as an artifact).

// liveCapture is one acknowledged-operation boundary: the live
// fingerprint and a full copy of the durable files at that instant.
type liveCapture struct {
	fp  string // live Fingerprint right after the op was acknowledged
	dir string // copy of WAL dir (wal/) and store files (store.json[.delta])
}

// captureImage copies the campaign's durable files — WAL segments and the
// shared store's checkpoint and delta log — into a fresh image directory.
// The campaign is serial, so between acknowledged operations the files are
// quiescent and a plain file copy IS the crash image a kill -9 would leave
// at a clean boundary.
func captureImage(t *testing.T, walDir, storePath, dst string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Join(dst, "wal"), 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(walDir)
	if err != nil {
		if os.IsNotExist(err) {
			return
		}
		t.Fatal(err)
	}
	for _, e := range entries {
		copyFile(t, filepath.Join(walDir, e.Name()), filepath.Join(dst, "wal", e.Name()))
	}
	for _, suffix := range []string{"", ".delta"} {
		data, err := os.ReadFile(storePath + suffix)
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, "store.json"+suffix), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func copyFile(t *testing.T, src, dst string) {
	t.Helper()
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// bootImage recovers a captured image with the same configuration the live
// system ran, returning the recovered system (caller closes).
func bootImage(t *testing.T, img string, cfg Config, m int) *System {
	t.Helper()
	st, err := store.Open(filepath.Join(img, "store.json"), m)
	if err != nil {
		t.Fatalf("boot %s: store: %v", img, err)
	}
	cfg.Store = st
	s := newSystem(t, cfg)
	if _, err := s.Recover(filepath.Join(img, "wal")); err != nil {
		t.Fatalf("boot %s: %v", img, err)
	}
	return s
}

// reportDiff writes the bit-level fingerprint diff where LIVE_DIFF_REPORT
// points (a directory; one file per failure) so CI can upload it, and
// returns the diff for the test failure message.
func reportDiff(t *testing.T, label, got, want string) string {
	t.Helper()
	diff := DiffFingerprints(got, want, 8)
	if dir := os.Getenv("LIVE_DIFF_REPORT"); dir != "" {
		if err := os.MkdirAll(dir, 0o755); err == nil {
			name := filepath.Join(dir, fmt.Sprintf("%s-%s.diff", t.Name(), label))
			_ = os.WriteFile(name, []byte(diff), 0o644)
		}
	}
	return diff
}

// frameSpans walks a buffer of WAL frames (the pinned 8-byte
// length+CRC header; see the wal golden-format test) and returns each
// frame's [start, end) offsets. A torn tail is ignored.
func frameSpans(data []byte) [][2]int {
	var spans [][2]int
	off := 0
	for off+8 <= len(data) {
		n := int(binary.LittleEndian.Uint32(data[off:]))
		end := off + 8 + n
		if end > len(data) {
			break
		}
		spans = append(spans, [2]int{off, end})
		off = end
	}
	return spans
}

// tornVariant synthesizes the crash image "previous boundary plus a torn
// final frame": it starts from the earlier capture's files and appends a
// strict prefix of the bytes the NEXT operation added to the WAL. Replay
// must discard the torn frame and land exactly on the earlier capture's
// state. Returns false when the WAL did not grow between the captures.
func tornVariant(t *testing.T, prev, next, dst string, cut float64) bool {
	t.Helper()
	prevWAL, nextWAL := filepath.Join(prev, "wal"), filepath.Join(next, "wal")
	entries, err := os.ReadDir(nextWAL)
	if err != nil {
		t.Fatal(err)
	}
	// Segments are append-only and sorted by name = first seq, so the first
	// segment that grew (or appeared) holds the next op's first new frame.
	for _, e := range entries {
		nextData, err := os.ReadFile(filepath.Join(nextWAL, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		prevData, err := os.ReadFile(filepath.Join(prevWAL, e.Name()))
		if err != nil && !os.IsNotExist(err) {
			t.Fatal(err)
		}
		if len(nextData) <= len(prevData) {
			continue
		}
		growth := nextData[len(prevData):]
		spans := frameSpans(growth)
		if len(spans) == 0 {
			continue
		}
		frameLen := spans[0][1] - spans[0][0]
		k := int(cut * float64(frameLen))
		if k < 1 {
			k = 1
		}
		if k >= frameLen {
			k = frameLen - 1
		}
		// Image = previous capture + the partial frame. The store files come
		// from the PREVIOUS capture: the serving path acknowledges the WAL
		// append before any store write, so "store ahead of a torn answer"
		// cannot occur and "store behind" is the physical window.
		captureless := filepath.Join(dst, "wal")
		if err := os.MkdirAll(captureless, 0o755); err != nil {
			t.Fatal(err)
		}
		prevEntries, err := os.ReadDir(prevWAL)
		if err != nil {
			t.Fatal(err)
		}
		for _, pe := range prevEntries {
			copyFile(t, filepath.Join(prevWAL, pe.Name()), filepath.Join(captureless, pe.Name()))
		}
		torn := append(append([]byte(nil), prevData...), growth[:k]...)
		if err := os.WriteFile(filepath.Join(captureless, e.Name()), torn, 0o644); err != nil {
			t.Fatal(err)
		}
		for _, suffix := range []string{"", ".delta"} {
			data, err := os.ReadFile(filepath.Join(prev, "store.json"+suffix))
			if os.IsNotExist(err) {
				continue
			}
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dst, "store.json"+suffix), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		return true
	}
	return false
}

// TestLiveVsRecoveredExact is the tentpole acceptance test: every
// acknowledged-operation boundary of a contested two-campaign run over a
// shared persistent store is recovered and compared bit-for-bit against
// the fingerprint the LIVE system had at that exact moment — clean
// boundaries, torn final frames, and a lost store delta. The second
// campaign starts workers from the store (the seed path whose re-reading
// caused the historical ~1e-7 drift), so the suite fails loudly if seeds
// ever go back to being re-derived instead of restored.
func TestLiveVsRecoveredExact(t *testing.T) {
	root := t.TempDir()
	storePath := filepath.Join(root, "store.json")

	probe := newSystem(t, Config{GoldenCount: -1})
	m := probe.Domains().Size()
	if err := probe.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(storePath, m)
	if err != nil {
		t.Fatal(err)
	}

	baseCfg := func(scope string) Config {
		return Config{GoldenCount: 4, HITSize: 4, AnswersPerTask: 3, RerunEvery: 20,
			CheckpointEvery: -1, SnapshotEvery: -1, WALSegmentBytes: 1 << 10,
			ProfileScope: scope}
	}

	var captures []liveCapture
	imageRoot := filepath.Join(root, "images")
	runCampaign := func(scope string, nTasks, taskBase int) (cfg Config, walDir string, first int) {
		cfg = baseCfg(scope)
		cfg.Store = st
		walDir = filepath.Join(root, "wal-"+scope)
		first = len(captures)
		s := newSystem(t, cfg)
		if _, err := s.Recover(walDir); err != nil {
			t.Fatal(err)
		}
		capture := func() {
			dir := filepath.Join(imageRoot, fmt.Sprintf("%03d", len(captures)))
			captureImage(t, walDir, storePath, dir)
			captures = append(captures, liveCapture{fp: s.Fingerprint(), dir: dir})
		}
		tasks := concTasks(s.m, nTasks)
		for _, tk := range tasks {
			tk.ID += taskBase
		}
		if err := s.Publish(tasks); err != nil {
			t.Fatal(err)
		}
		capture()
		goldenSet := map[int]bool{}
		for _, id := range s.GoldenTasks() {
			goldenSet[id] = true
		}
		r := mathx.NewRand(uint64(1000 + taskBase))
		for i := 0; ; i++ {
			w := fmt.Sprintf("w%d", i%7)
			got, err := s.Request(w, 4)
			if err != nil {
				t.Fatal(err)
			}
			capture() // Request can log a profile seed — its own boundary
			if len(got) == 0 {
				break
			}
			for _, tk := range got {
				c := tk.Truth
				if c == model.NoTruth {
					c = 0
				} else if !goldenSet[tk.ID] && r.Float64() >= 0.8 {
					c = 1 - c
				}
				if err := s.Submit(w, tk.ID, c); err != nil {
					t.Fatal(err)
				}
				capture()
			}
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		return cfg, walDir, first
	}

	type campaignRun struct {
		cfg    Config
		walDir string
		first  int // index of its first capture
		last   int // index one past its last capture
	}
	var runs []campaignRun
	cfg1, wal1, first1 := runCampaign("camp1", 16, 0)
	runs = append(runs, campaignRun{cfg1, wal1, first1, len(captures)})
	// Campaign 2 shares the store: its workers are already profiled, so
	// every first Request seeds them FROM the store — the exact path whose
	// time-of-read divergence this suite exists to catch.
	cfg2, wal2, first2 := runCampaign("camp2", 12, 100)
	runs = append(runs, campaignRun{cfg2, wal2, first2, len(captures)})

	if len(captures) < 40 {
		t.Fatalf("campaign produced only %d captures", len(captures))
	}

	// Clean boundaries: every image recovers to the live fingerprint.
	for _, run := range runs {
		for i := run.first; i < run.last; i++ {
			s := bootImage(t, captures[i].dir, run.cfg, m)
			got := s.Fingerprint()
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			if got != captures[i].fp {
				t.Fatalf("capture %d: recovered != live\n%s",
					i, reportDiff(t, fmt.Sprintf("clean-%03d", i), got, captures[i].fp))
			}
		}
	}

	// Torn final frames: previous boundary + a partial next frame must
	// recover to the PREVIOUS live state. Randomized cut points.
	r := mathx.NewRand(99)
	torn := 0
	for _, run := range runs {
		for i := run.first; i+1 < run.last; i++ {
			dst := filepath.Join(root, "torn", fmt.Sprintf("%03d", i))
			if !tornVariant(t, captures[i].dir, captures[i+1].dir, dst, r.Float64()) {
				continue
			}
			torn++
			s := bootImage(t, dst, run.cfg, m)
			got := s.Fingerprint()
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			if got != captures[i].fp {
				t.Fatalf("torn variant after capture %d: recovered != live\n%s",
					i, reportDiff(t, fmt.Sprintf("torn-%03d", i), got, captures[i].fp))
			}
		}
	}
	if torn < 10 {
		t.Fatalf("only %d torn variants synthesized", torn)
	}
}

// TestLostStoreDeltaRepairedExact pins the closed lost-merge window at the
// core level: a profiling merge whose store delta never reached disk (the
// WAL-committed gauntlet answers survive, the delta log loses its final
// record) must be REPAIRED by replay — the recovered system, including the
// shared store, is bit-identical to the live pre-crash system. A second
// recovery of the repaired image must reproduce the first bit-for-bit
// (recovery determinism).
func TestLostStoreDeltaRepairedExact(t *testing.T) {
	root := t.TempDir()
	storePath := filepath.Join(root, "store.json")
	walDir := filepath.Join(root, "wal")

	probe := newSystem(t, Config{GoldenCount: -1})
	m := probe.Domains().Size()
	if err := probe.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(storePath, m)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{GoldenCount: 4, HITSize: 4, AnswersPerTask: 3, RerunEvery: 20,
		CheckpointEvery: -1, SnapshotEvery: -1, WALSegmentBytes: 1 << 10,
		ProfileScope: "camp", Store: st}
	s := newSystem(t, cfg)
	if _, err := s.Recover(walDir); err != nil {
		t.Fatal(err)
	}
	if err := s.Publish(concTasks(s.m, 12)); err != nil {
		t.Fatal(err)
	}
	goldenSet := map[int]bool{}
	for _, id := range s.GoldenTasks() {
		goldenSet[id] = true
	}
	// Drive two workers through their gauntlets plus some contested
	// traffic, capturing the live state right after each profiling merge
	// lands in the store delta log.
	type mergePoint struct {
		fp  string
		dir string
	}
	var merges []mergePoint
	deltaLen := func() int {
		data, err := os.ReadFile(storePath + ".delta")
		if os.IsNotExist(err) {
			return 0
		}
		if err != nil {
			t.Fatal(err)
		}
		return len(data)
	}
	prevDelta := 0
	r := mathx.NewRand(7)
	for i := 0; ; i++ {
		w := fmt.Sprintf("w%d", i%5)
		got, err := s.Request(w, 4)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) == 0 {
			break
		}
		for _, tk := range got {
			c := tk.Truth
			if c == model.NoTruth {
				c = 0
			} else if !goldenSet[tk.ID] && r.Float64() >= 0.8 {
				c = 1 - c
			}
			if err := s.Submit(w, tk.ID, c); err != nil {
				t.Fatal(err)
			}
			if n := deltaLen(); n > prevDelta {
				prevDelta = n
				dir := filepath.Join(root, "merge", fmt.Sprintf("%02d", len(merges)))
				captureImage(t, walDir, storePath, dir)
				merges = append(merges, mergePoint{fp: s.Fingerprint(), dir: dir})
			}
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if len(merges) < 3 {
		t.Fatalf("only %d profiling merges captured", len(merges))
	}

	for i, mp := range merges {
		// Drop the delta log's final frame — the merge that just landed.
		deltaPath := filepath.Join(mp.dir, "store.json.delta")
		data, err := os.ReadFile(deltaPath)
		if err != nil {
			t.Fatal(err)
		}
		spans := frameSpans(data)
		if len(spans) == 0 {
			t.Fatalf("merge %d: no delta frames", i)
		}
		last := spans[len(spans)-1]
		if err := os.WriteFile(deltaPath, data[:last[0]], 0o644); err != nil {
			t.Fatal(err)
		}

		boot := bootImage(t, mp.dir, cfg, m)
		got := boot.Fingerprint()
		if err := boot.Close(); err != nil {
			t.Fatal(err)
		}
		if got != mp.fp {
			t.Fatalf("merge %d: repaired recovery != live\n%s",
				i, reportDiff(t, fmt.Sprintf("lostdelta-%02d", i), got, mp.fp))
		}

		// Recovery determinism: the first boot repaired the image on disk;
		// a second boot must land on the identical bits.
		again := bootImage(t, mp.dir, cfg, m)
		got2 := again.Fingerprint()
		if err := again.Close(); err != nil {
			t.Fatal(err)
		}
		if got2 != got {
			t.Fatalf("merge %d: second recovery != first\n%s",
				i, reportDiff(t, fmt.Sprintf("redo-%02d", i), got2, got))
		}
	}
}
