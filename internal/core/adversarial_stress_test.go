package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"docs/internal/crowd"
	"docs/internal/dataset"
	"docs/internal/kb"
	"docs/internal/mathx"
	"docs/internal/wal"
)

// Adversarial stress suite: the serving core's equivalence and durability
// contracts must hold under pathological answer distributions — spammers,
// sleepers, colluding cliques and drifting workers — not just the honest
// simulator. Three angles:
//
//  1. the indexed assignment path stays bit-identical to the scan oracle
//     when the traffic is adversarial;
//  2. a colluding clique hammering a tiny campaign concurrently can never
//     push a task past the documented a+l ≥ R assignment-stop bound;
//  3. the crash-injection kill-point sweep recovers bit-identically from a
//     spammer-heavy campaign's WAL.

// traceAdversarialCampaign is traceCampaignCfg with an adversarial
// population: same dataset, same serial protocol, but ~45% of the workers
// are spammers/sleepers/colluders and everyone drifts.
func traceAdversarialCampaign(t *testing.T, cfg Config) (string, *System) {
	t.Helper()
	ds := dataset.Item(3)
	tasks := ds.Tasks[:120]
	s := newSystem(t, cfg)
	if err := s.Publish(tasks); err != nil {
		t.Fatal(err)
	}
	m := kb.MustDefault().Domains().Size()
	pop, err := crowd.NewPopulation(crowd.Config{
		NumWorkers: 24, M: m, RelevantDomains: ds.YahooIndex, Seed: 7,
		Adversarial: crowd.Adversarial{
			SpammerFraction: 0.25,
			SleeperFraction: 0.125,
			Cliques:         1, CliqueSize: 3,
			DriftPerAnswer: -0.002,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := pop.Rand()
	trace := ""
	for hit := 0; hit < 400; hit++ {
		w := pop.Arrival()
		got, err := s.Request(w.ID, 4)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) == 0 {
			break
		}
		for _, tk := range got {
			c := w.Answer(tk, r)
			trace += fmt.Sprintf("%s:%d:%d;", w.ID, tk.ID, c)
			if err := s.Submit(w.ID, tk.ID, c); err != nil {
				t.Fatal(err)
			}
		}
	}
	return trace, s
}

// TestAdversarialIndexedAssignmentEquivalence extends the scan-vs-indexed
// oracle to adversarial traffic: the candidate index (with and without
// leases armed) must make bit-identical decisions and reach a bit-identical
// Fingerprint even when the answer stream is pathological.
func TestAdversarialIndexedAssignmentEquivalence(t *testing.T) {
	base := Config{GoldenCount: 8, HITSize: 4, AnswersPerTask: 5, RerunEvery: 50}
	scanCfg := base
	scanCfg.ScanAssign = true
	leaseCfg := base
	leaseCfg.LeaseTTL = time.Hour

	scanTrace, scanSys := traceAdversarialCampaign(t, scanCfg)
	idxTrace, idxSys := traceAdversarialCampaign(t, base)
	leaseTrace, leaseSys := traceAdversarialCampaign(t, leaseCfg)

	diffTraces(t, "adversarial scan vs indexed", scanTrace, idxTrace)
	diffTraces(t, "adversarial scan vs indexed+leases", scanTrace, leaseTrace)
	if fa, fb := scanSys.Fingerprint(), idxSys.Fingerprint(); fa != fb {
		t.Fatal("fingerprints differ between scan and indexed paths under adversarial traffic")
	}
	if fa, fb := scanSys.Fingerprint(), leaseSys.Fingerprint(); fa != fb {
		t.Fatal("fingerprints differ between scan and leased paths under adversarial traffic")
	}
	if leaseSys.ActiveLeases() != 0 {
		t.Fatalf("serial adversarial campaign left %d leases outstanding", leaseSys.ActiveLeases())
	}
}

// TestAdversarialCliqueHammerLeaseBound: a colluding clique floods a tiny
// campaign from G goroutines, every member voting the clique's agreed wrong
// choice on whatever it is assigned. With leases armed, assignment stops
// once answered + leased ≥ R, so a task's final answer count can overshoot
// R only by requests that raced the same grant — at most one per concurrent
// requester (HITSize 1). Run under -race.
func TestAdversarialCliqueHammerLeaseBound(t *testing.T) {
	const (
		redundancy = 5
		goroutines = 16
		nTasks     = 3
		cliqueSeed = 0xbad5eed
	)
	clk := newFakeClock()
	s := newSystem(t, Config{
		GoldenCount: -1, HITSize: 1, AnswersPerTask: redundancy,
		RerunEvery: -1, LeaseTTL: time.Minute, Clock: clk.Now,
	})
	tasks := concTasks(s.m, nTasks)
	if err := s.Publish(tasks); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			empty := 0
			for i := 0; empty < 64; i++ {
				// Fresh worker IDs per request: per-worker duplicate
				// exclusion never throttles the clique, only leases do.
				w := fmt.Sprintf("cliq%d-%d", g, i)
				got, err := s.Request(w, 1)
				if err != nil {
					errs <- err
					return
				}
				if len(got) == 0 {
					empty++
					runtime.Gosched()
					continue
				}
				empty = 0
				for _, tk := range got {
					if err := s.Submit(w, tk.ID, crowd.CliqueChoice(cliqueSeed, tk)); err != nil {
						errs <- err
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	as := s.Answers()
	for _, tk := range tasks {
		got := as.ForTask(tk.ID)
		if len(got) < redundancy {
			t.Errorf("task %d never saturated: %d answers, want >= %d", tk.ID, len(got), redundancy)
		}
		if len(got) > redundancy+goroutines {
			t.Errorf("task %d overshot the a+l >= R bound: %d answers > R(%d) + G(%d)",
				tk.ID, len(got), redundancy, goroutines)
		}
		want := crowd.CliqueChoice(cliqueSeed, tk)
		for _, a := range got {
			if a.Choice != want {
				t.Fatalf("task %d: clique member %s split its vote (%d, want %d)", tk.ID, a.Worker, a.Choice, want)
			}
		}
	}
	if s.ActiveLeases() != 0 {
		t.Fatalf("%d leases outstanding after every grant was answered", s.ActiveLeases())
	}
}

// runLoggedAdversarialCampaign drives a spammer-heavy campaign (40%
// spammers, sleepers, one clique, fatigue drift) with the WAL armed and
// returns the durable record stream — the adversarial twin of
// runLoggedCampaign.
func runLoggedAdversarialCampaign(t *testing.T, cfg Config, dir string, nTasks int) []wal.Record {
	t.Helper()
	s := newSystem(t, cfg)
	if _, err := s.Recover(dir); err != nil {
		t.Fatal(err)
	}
	if err := s.Publish(concTasks(s.m, nTasks)); err != nil {
		t.Fatal(err)
	}
	pop, err := crowd.NewPopulation(crowd.Config{
		NumWorkers: 16, M: s.m, Seed: 1213,
		Adversarial: crowd.Adversarial{
			SpammerFraction: 0.4,
			SleeperFraction: 0.15,
			Cliques:         1, CliqueSize: 3,
			DriftPerAnswer: -0.01,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := pop.Rand()
	for idle := 0; idle < 4*len(pop.Workers); {
		w := pop.Arrival()
		got, err := s.Request(w.ID, 4)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) == 0 {
			idle++
			continue
		}
		idle = 0
		for _, tk := range got {
			if err := s.Submit(w.ID, tk.ID, w.Answer(tk, r)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	var recs []wal.Record
	var cpSeq uint64
	cp, err := wal.ReadCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if cp != nil {
		recs = append(recs, cp.Records...)
		cpSeq = cp.LastSeq
	}
	st, err := wal.Replay(dir, func(rec wal.Record) error {
		if rec.Seq > cpSeq {
			recs = append(recs, rec)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.TornTail {
		t.Fatal("uninterrupted adversarial run left a torn tail")
	}
	return recs
}

// TestAdversarialCrashInjectionRecoveryExact reuses the Fingerprint
// kill-point harness on the spammer-heavy campaign: adversarial answer
// streams (uniform spam, correlated clique votes, mid-campaign sleeper
// flips) exercise WAL/replay value paths the honest simulator never
// produces, and every surviving prefix must still recover bit-identically.
func TestAdversarialCrashInjectionRecoveryExact(t *testing.T) {
	cfg := Config{GoldenCount: 6, HITSize: 4, AnswersPerTask: 4, RerunEvery: 25,
		CheckpointEvery: -1, WALSegmentBytes: 1 << 10}
	srcDir := t.TempDir()
	recs := runLoggedAdversarialCampaign(t, cfg, srcDir, 60)
	if len(recs) < 50 {
		t.Fatalf("adversarial campaign produced only %d records", len(recs))
	}
	spans := segmentSpans(t, srcDir, 0)

	r := mathx.NewRand(13)
	type kill struct {
		surviving int
		torn      int64
	}
	kills := make([]kill, 0, 25)
	for i := 0; i < 24; i++ {
		k := kill{surviving: int(r.Float64() * float64(len(recs)+1))}
		if k.surviving > len(recs) {
			k.surviving = len(recs)
		}
		if k.surviving < len(recs) && r.Float64() < 0.35 {
			k.torn = 1 + int64(r.Float64()*16)
		}
		kills = append(kills, k)
	}
	kills = append(kills, kill{surviving: len(recs) - 1, torn: 5})
	sort.Slice(kills, func(i, j int) bool { return kills[i].surviving < kills[j].surviving })

	ref := newSystem(t, cfg)
	applied := 0
	refPrint := fingerprint(ref)
	for i, k := range kills {
		if k.surviving > applied {
			applyPrefix(t, ref, recs[applied:k.surviving])
			applied = k.surviving
			refPrint = fingerprint(ref)
		}
		crashDir := buildCrashDir(t, srcDir, recs, spans, k.surviving, k.torn)
		rec := newSystem(t, cfg)
		info, err := rec.Recover(crashDir)
		if err != nil {
			t.Fatalf("kill %d (surviving=%d torn=%d): recover: %v", i, k.surviving, k.torn, err)
		}
		if info.Records != k.surviving {
			t.Fatalf("kill %d: recovered %d records, want %d (torn=%d)", i, info.Records, k.surviving, k.torn)
		}
		if got := fingerprint(rec); got != refPrint {
			t.Fatalf("kill %d (surviving=%d torn=%d): recovered adversarial state differs from serial reference",
				i, k.surviving, k.torn)
		}
		if err := rec.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
