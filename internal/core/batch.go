// Batched answer submission: N answers applied one by one through the
// ordinary Submit path but committed as ONE WAL record — one write and at
// most one fsync per batch instead of per answer.
//
// The contract has three parts, and the tests hold all of them at once:
//
//   - Equivalence: every item runs the exact per-answer sequence Submit
//     runs (validation, ingest, chronological log append, rerun and
//     checkpoint cadence), so the resulting state is bit-identical to the
//     same stream submitted individually (TestBatchSubmitEquivalence).
//   - Isolation: items are validated independently; a rejected item gets
//     its own status and never poisons its neighbors. Only accepted
//     regular answers enter the group record, so replay re-accepts every
//     logged item.
//   - Atomicity: the group is one frame. Under the WAL's torn-tail rule a
//     crash either keeps the whole group or drops the whole group — never
//     a prefix of it (the batched crash-injection variant asserts this).
//
// Golden answers split the group: their durability must still precede the
// profiling merge (see Submit), so a golden item flushes the accumulated
// group and then commits its own KindAnswer record, exactly as in
// single-submit mode. Steady-state traffic from profiled workers is all
// regular and pays one record per batch.
package core

import (
	"errors"

	"docs/internal/wal"
)

// BatchItem is one answer inside a batched submit.
type BatchItem struct {
	Worker string
	Task   int
	Choice int
}

// BatchStatus is the per-item outcome of a batched submit. A batch-level
// failure (durability) is returned as SubmitBatch's error instead.
type BatchStatus struct {
	OK  bool
	Err string // rejection reason, empty when OK
}

// batchGroup accumulates the WAL records of accepted regular answers that
// have been applied in memory but not yet reserved in the log. It is local
// to one SubmitBatch call; appends happen under logMu (see submitOne) so
// the group's internal order equals the chronological log order.
type batchGroup struct {
	recs []wal.Record
}

// flush reserves the accumulated answers as one KindBatch record and waits
// for its group-commit batch. No-op when the group is empty or no WAL is
// armed (walReserve returns a zero Pending and walCommit ignores it).
func (g *batchGroup) flush(s *System) error {
	if len(g.recs) == 0 {
		return nil
	}
	blob := wal.EncodeBatch(nil, g.recs)
	g.recs = g.recs[:0]
	s.logMu.Lock()
	p, err := s.walReserve(wal.Record{Kind: wal.KindBatch, Blob: blob})
	s.logMu.Unlock()
	if err != nil {
		return err
	}
	return s.walCommit(p)
}

// SubmitBatch records up to len(items) answers, validating each item
// independently and committing all accepted regular answers as one WAL
// record. The returned slice has one status per item, in order. The error
// is batch-level: a durability failure (some or all items are applied in
// memory but could not be promised durable — answer 5xx and stop acking),
// never a per-item rejection.
func (s *System) SubmitBatch(items []BatchItem) ([]BatchStatus, error) {
	if len(items) == 0 {
		return nil, nil
	}
	statuses := make([]BatchStatus, len(items))
	var g batchGroup
	accepted := int64(0)
	for i, it := range items {
		if err := s.submitOne(it.Worker, it.Task, it.Choice, &g); err != nil {
			if errors.Is(err, ErrDurability) {
				return nil, err
			}
			statuses[i].Err = err.Error()
			continue
		}
		statuses[i].OK = true
		accepted++
	}
	if err := g.flush(s); err != nil {
		return nil, err
	}
	s.batches.Add(1)
	s.batchAnswers.Add(accepted)
	return statuses, nil
}

// BatchCounts returns how many batched submits have been accepted and how
// many answers they carried (mean answers per batch = answers/batches).
func (s *System) BatchCounts() (batches, answers int64) {
	return s.batches.Load(), s.batchAnswers.Load()
}
