package core

import (
	"sync"
	"sync/atomic"

	"docs/internal/model"
	"docs/internal/truth"
)

// candidate is one assignable task in the candidate index: everything the
// OTA hot path needs to evaluate it without touching the campaign maps —
// its ID, its (immutable) domain vector, a lock-free accessor for its
// latest truth snapshot, and its lease counter.
type candidate struct {
	id     int
	domain model.DomainVector
	h      truth.Handle
	leases *atomic.Int32 // nil when leases are disabled
}

// candidateArr is one published, immutable generation of the candidate
// index. Concurrent requests share the backing slice; nothing is ever
// written to it after publication.
type candidateArr struct {
	epoch   uint64
	entries []candidate
}

// candidateIndex maintains the open-task set incrementally so Request
// never rediscovers it by scanning all tasks. "Open" means the task can
// still receive assignments: non-golden and, with a redundancy cap, fewer
// accepted answers than AnswersPerTask.
//
// The master slice holds every assignable task in publication order and is
// immutable after Publish; openness is tracked per entry. The serving side
// reads an immutable candidateArr via an atomic pointer — the compacted
// open subset, in the same publication order. Membership maintenance:
//
//   - noteAnswer marks a task closed the moment its redundancy is met (an
//     O(1) event on the Submit path, amortizing the occasional compaction);
//   - resync recomputes openness for every task from the latest truth
//     snapshots (an O(master) pass after each batch rerun, which is the
//     only event that can reopen a task);
//   - closed tasks linger in the published array until enough of them
//     accumulate to justify a compaction, so closure is O(1) amortized.
//     Lingering is harmless: the per-request filter re-checks redundancy
//     against the live snapshot, which it must do anyway for correctness.
//
// Because master order is publication order and both compaction and the
// per-request filter preserve it, the stream of candidates a request sees
// is identical to the full scan's stream — same benefit values, same
// tie-break indices, bit-identical assignments (asserted by
// TestIndexedAssignmentEquivalence).
type candidateIndex struct {
	mu     sync.Mutex
	master []candidate
	pos    map[int]int // task ID -> master position
	open   []bool      // parallel to master
	stale  int         // closed entries still present in the published array

	openCount atomic.Int64
	epoch     atomic.Uint64
	arr       atomic.Pointer[candidateArr]
}

// staleThreshold reports how many closed-but-still-published entries the
// index tolerates before compacting: a quarter of the published array,
// capped so huge arrays still compact regularly. Compaction is O(array),
// so the amortized cost per closure is O(1) with at most a constant-factor
// overshoot in array length.
func staleThreshold(arrLen int) int {
	t := arrLen / 4
	if t > 256 {
		t = 256
	}
	if t < 1 {
		t = 1
	}
	return t
}

// newCandidateIndex builds the index over the assignable tasks in
// publication order and publishes the first generation. Called from
// Publish with the campaign write lock held, before any request can see
// the tasks.
func newCandidateIndex(master []candidate) *candidateIndex {
	ci := &candidateIndex{
		master: master,
		pos:    make(map[int]int, len(master)),
		open:   make([]bool, len(master)),
	}
	for i, c := range master {
		ci.pos[c.id] = i
		ci.open[i] = true
	}
	ci.openCount.Store(int64(len(master)))
	ci.publishLocked()
	return ci
}

// publishLocked compacts the open subset of master (publication order
// preserved) into a fresh immutable array and publishes it.
func (ci *candidateIndex) publishLocked() {
	entries := make([]candidate, 0, ci.openCount.Load())
	for i, c := range ci.master {
		if ci.open[i] {
			entries = append(entries, c)
		}
	}
	ci.stale = 0
	ci.arr.Store(&candidateArr{epoch: ci.epoch.Add(1), entries: entries})
}

// load returns the current published generation (nil before Publish).
func (ci *candidateIndex) load() *candidateArr { return ci.arr.Load() }

// noteAnswer records that the task reached numAnswers accepted answers,
// closing it when the redundancy cap is met. O(1) except when the stale
// count crosses the compaction threshold.
func (ci *candidateIndex) noteAnswer(id, numAnswers, redundancy int) {
	if redundancy <= 0 || numAnswers < redundancy {
		return
	}
	ci.mu.Lock()
	defer ci.mu.Unlock()
	p, ok := ci.pos[id]
	if !ok || !ci.open[p] {
		return
	}
	ci.open[p] = false
	ci.openCount.Add(-1)
	ci.stale++
	if arr := ci.arr.Load(); ci.stale >= staleThreshold(len(arr.entries)) {
		ci.publishLocked()
	}
}

// resync recomputes every task's openness from its latest truth snapshot
// and republishes if anything changed. The batch rerun calls this after
// Reseed: a rerun is the only mutation that can change a task's answer
// count non-monotonically, so this is the reopen path (and a safety net
// for any closure the incremental path missed).
func (ci *candidateIndex) resync(redundancy int) {
	ci.mu.Lock()
	defer ci.mu.Unlock()
	changed := false
	for i, c := range ci.master {
		open := true
		if redundancy > 0 {
			if v := c.h.View(); v != nil && v.NumAnswers >= redundancy {
				open = false
			}
		}
		if ci.open[i] != open {
			ci.open[i] = open
			if open {
				ci.openCount.Add(1)
			} else {
				ci.openCount.Add(-1)
			}
			changed = true
		}
	}
	if changed || ci.stale > 0 {
		ci.publishLocked()
	}
}
