package core

import (
	"fmt"
	"sort"
	"testing"

	"docs/internal/mathx"
	"docs/internal/model"
	"docs/internal/wal"
)

// TestBatchSubmitEquivalence is the batched protocol's correctness
// anchor: a campaign driven through SubmitBatch — golden and regular
// answers mixed, invalid items injected into the batches — must leave
// the system bit-identical (Fingerprint) to submitting exactly the
// accepted answers one by one, live AND after WAL recovery of either
// log. The batch entry may only change how answers reach the log, never
// what state they produce.
func TestBatchSubmitEquivalence(t *testing.T) {
	cfg := Config{GoldenCount: 4, HITSize: 6, AnswersPerTask: 3, RerunEvery: 20, CheckpointEvery: -1}
	dirA := t.TempDir()
	a := newSystem(t, cfg)
	if _, err := a.Recover(dirA); err != nil {
		t.Fatal(err)
	}
	if err := a.Publish(concTasks(a.m, 40)); err != nil {
		t.Fatal(err)
	}
	goldenSet := map[int]bool{}
	for _, id := range a.GoldenTasks() {
		goldenSet[id] = true
	}

	type ans struct {
		w            string
		task, choice int
	}
	var accepted []ans
	rejected := 0
	r := mathx.NewRand(99)
	for i := 0; ; i++ {
		w := fmt.Sprintf("w%d", i%9)
		got, err := a.Request(w, 6)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) == 0 {
			break
		}
		items := make([]BatchItem, 0, len(got)+2)
		// Poison pills at deterministic positions: a bad item must be
		// rejected in place without touching its neighbours.
		if i%4 == 0 {
			items = append(items, BatchItem{Worker: "", Task: got[0].ID, Choice: 0})
		}
		for _, tk := range got {
			c := tk.Truth
			if c == model.NoTruth {
				c = 0
			} else if !goldenSet[tk.ID] && r.Float64() >= 0.85 {
				c = 1 - c
			}
			items = append(items, BatchItem{Worker: w, Task: tk.ID, Choice: c})
		}
		if i%3 == 0 {
			items = append(items, BatchItem{Worker: w, Task: 999999, Choice: 0})
		}
		statuses, err := a.SubmitBatch(items)
		if err != nil {
			t.Fatal(err)
		}
		if len(statuses) != len(items) {
			t.Fatalf("batch %d: %d statuses for %d items", i, len(statuses), len(items))
		}
		for j, st := range statuses {
			if st.OK {
				accepted = append(accepted, ans{items[j].Worker, items[j].Task, items[j].Choice})
			} else {
				rejected++
				if st.Err == "" {
					t.Fatalf("batch %d item %d: rejected without a reason", i, j)
				}
			}
		}
	}
	if rejected == 0 {
		t.Fatal("no invalid items were exercised")
	}
	batches, batchAnswers := a.BatchCounts()
	if batches == 0 {
		t.Fatal("no batches counted")
	}
	if batchAnswers != int64(len(accepted)) {
		t.Fatalf("batch answer counter %d, accepted %d", batchAnswers, len(accepted))
	}
	liveA := fingerprint(a)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	// Reference: the identical accepted stream, one Submit per answer.
	dirB := t.TempDir()
	b := newSystem(t, cfg)
	if _, err := b.Recover(dirB); err != nil {
		t.Fatal(err)
	}
	if err := b.Publish(concTasks(b.m, 40)); err != nil {
		t.Fatal(err)
	}
	for _, an := range accepted {
		if err := b.Submit(an.w, an.task, an.choice); err != nil {
			t.Fatalf("reference submit (%s, %d, %d): %v", an.w, an.task, an.choice, err)
		}
	}
	if got := fingerprint(b); got != liveA {
		t.Fatalf("batched state differs from one-by-one reference\nbatched:   %.300s\nreference: %.300s", liveA, got)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	// Both logs — A's KindBatch groups, B's per-answer records — must
	// recover to that same state.
	for name, dir := range map[string]string{"batched": dirA, "single": dirB} {
		rec := newSystem(t, cfg)
		if _, err := rec.Recover(dir); err != nil {
			t.Fatalf("%s recovery: %v", name, err)
		}
		if got := fingerprint(rec); got != liveA {
			t.Fatalf("%s log recovered to a different state", name)
		}
		if err := rec.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// A's durable stream must actually contain batch groups (the whole
	// point of the protocol: rejected items absent, accepted ones grouped).
	sawBatch := false
	if _, err := wal.Replay(dirA, func(rec wal.Record) error {
		if rec.Kind == wal.KindBatch {
			sawBatch = true
			if _, extra, err := wal.DecodeBatch(rec.Blob, 0); err != nil || extra != 0 {
				return fmt.Errorf("undecodable batch record %d: %v", rec.Seq, err)
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !sawBatch {
		t.Fatal("batched campaign logged no KindBatch records")
	}
}

// runLoggedBatchedCampaign mirrors runLoggedCampaign with every HIT
// submitted through SubmitBatch (invalid items injected and rejected
// along the way), returning the durable record stream — KindBatch groups
// among plain answers (golden submissions split out of their groups).
func runLoggedBatchedCampaign(t *testing.T, cfg Config, dir string, nTasks int) []wal.Record {
	t.Helper()
	s := newSystem(t, cfg)
	if _, err := s.Recover(dir); err != nil {
		t.Fatal(err)
	}
	if err := s.Publish(concTasks(s.m, nTasks)); err != nil {
		t.Fatal(err)
	}
	goldenSet := map[int]bool{}
	for _, id := range s.GoldenTasks() {
		goldenSet[id] = true
	}
	r := mathx.NewRand(43)
	for i := 0; ; i++ {
		w := fmt.Sprintf("w%d", i%11)
		got, err := s.Request(w, 4)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) == 0 {
			break
		}
		items := make([]BatchItem, 0, len(got)+1)
		for _, tk := range got {
			c := tk.Truth
			if c == model.NoTruth {
				c = 0
			} else if !goldenSet[tk.ID] && r.Float64() >= 0.85 {
				c = 1 - c
			}
			items = append(items, BatchItem{Worker: w, Task: tk.ID, Choice: c})
		}
		if i%5 == 0 {
			items = append(items, BatchItem{Worker: w, Task: -1, Choice: 0})
		}
		statuses, err := s.SubmitBatch(items)
		if err != nil {
			t.Fatal(err)
		}
		for j, st := range statuses {
			if !st.OK && items[j].Task != -1 {
				t.Fatalf("valid item (%s, %d) rejected: %s", items[j].Worker, items[j].Task, st.Err)
			}
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	var recs []wal.Record
	st, err := wal.Replay(dir, func(rec wal.Record) error {
		recs = append(recs, rec)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.TornTail {
		t.Fatal("uninterrupted batched run left a torn tail")
	}
	return recs
}

// TestCrashInjectionBatchedRecoveryExact reruns the crash-injection
// sweep over a campaign whose traffic went through SubmitBatch: each
// group is ONE WAL frame, so a kill point either keeps a whole group or
// drops it entirely — a torn cut inside a batch frame must recover to
// exactly the state before the group, bit for bit. Every kill point that
// lands just before a KindBatch record is additionally torn mid-frame to
// pin the all-or-nothing contract on the batch records themselves.
func TestCrashInjectionBatchedRecoveryExact(t *testing.T) {
	cfg := Config{GoldenCount: 4, HITSize: 4, AnswersPerTask: 3, RerunEvery: 20,
		CheckpointEvery: -1, WALSegmentBytes: 1 << 10}
	srcDir := t.TempDir()
	recs := runLoggedBatchedCampaign(t, cfg, srcDir, 60)
	if len(recs) < 20 {
		t.Fatalf("campaign produced only %d records", len(recs))
	}
	batchIdx := []int{}
	for i, rec := range recs {
		if rec.Kind == wal.KindBatch {
			batchIdx = append(batchIdx, i)
		}
	}
	if len(batchIdx) == 0 {
		t.Fatal("batched campaign logged no KindBatch records")
	}
	spans := segmentSpans(t, srcDir, 0)

	type kill struct {
		surviving int
		torn      int64
	}
	r := mathx.NewRand(17)
	kills := make([]kill, 0, 40+len(batchIdx))
	for i := 0; i < 40; i++ {
		k := kill{surviving: int(r.Float64() * float64(len(recs)+1))}
		if k.surviving > len(recs) {
			k.surviving = len(recs)
		}
		if k.surviving < len(recs) && r.Float64() < 0.35 {
			k.torn = 1 + int64(r.Float64()*16)
		}
		kills = append(kills, k)
	}
	// Tear into every batch frame: the cut lands mid-group and the whole
	// group must vanish.
	for _, bi := range batchIdx {
		kills = append(kills, kill{surviving: bi, torn: 5})
	}
	sort.Slice(kills, func(i, j int) bool { return kills[i].surviving < kills[j].surviving })

	ref := newSystem(t, cfg)
	applied := 0
	refPrint := fingerprint(ref)
	for i, k := range kills {
		if k.surviving > applied {
			applyPrefix(t, ref, recs[applied:k.surviving])
			applied = k.surviving
			refPrint = fingerprint(ref)
		}
		crashDir := buildCrashDir(t, srcDir, recs, spans, k.surviving, k.torn)
		rec := newSystem(t, cfg)
		info, err := rec.Recover(crashDir)
		if err != nil {
			t.Fatalf("kill %d (surviving=%d torn=%d): recover: %v", i, k.surviving, k.torn, err)
		}
		if info.Records != k.surviving {
			t.Fatalf("kill %d: recovered %d records, want %d (torn=%d)", i, info.Records, k.surviving, k.torn)
		}
		if got := fingerprint(rec); got != refPrint {
			t.Fatalf("kill %d (surviving=%d torn=%d): recovered state differs from serial reference",
				i, k.surviving, k.torn)
		}
		if err := rec.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
