package core

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is the injected lease clock: tests advance it explicitly, so
// TTL expiry is exercised deterministically with no sleeps.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func taskIDSet(t *testing.T, sys *System, worker string, k int) map[int]bool {
	t.Helper()
	got, err := sys.Request(worker, k)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[int]bool, len(got))
	for _, tk := range got {
		out[tk.ID] = true
	}
	return out
}

// TestLeaseDoubleRequestDisjoint is the double-assignment contract: a
// worker who requests again without submitting holds leases on the first
// batch, so consecutive requests return disjoint task sets until the pool
// drains — and the tasks come back after the TTL expires.
func TestLeaseDoubleRequestDisjoint(t *testing.T) {
	const n, k = 20, 5
	clk := newFakeClock()
	s := newSystem(t, Config{
		GoldenCount: -1, HITSize: k, RerunEvery: -1,
		LeaseTTL: time.Minute, Clock: clk.Now,
	})
	if err := s.Publish(indexTasks(n, s.Domains().Size())); err != nil {
		t.Fatal(err)
	}

	seen := make(map[int]bool)
	for i := 0; i < n/k; i++ {
		batch := taskIDSet(t, s, "w", k)
		if len(batch) != k {
			t.Fatalf("request %d returned %d tasks, want %d", i, len(batch), k)
		}
		for id := range batch {
			if seen[id] {
				t.Fatalf("request %d re-assigned leased task %d", i, id)
			}
			seen[id] = true
		}
	}
	if got := s.ActiveLeases(); got != n {
		t.Fatalf("ActiveLeases = %d, want %d", got, n)
	}
	// Pool exhausted: everything is leased to this worker.
	if batch := taskIDSet(t, s, "w", k); len(batch) != 0 {
		t.Fatalf("request on a fully leased pool returned %d tasks", len(batch))
	}

	// TTL elapses: the same worker gets tasks again.
	clk.Advance(time.Minute + time.Second)
	batch := taskIDSet(t, s, "w", k)
	if len(batch) != k {
		t.Fatalf("request after TTL expiry returned %d tasks, want %d", len(batch), k)
	}
	if got := s.ActiveLeases(); got != k {
		t.Fatalf("ActiveLeases after expiry+regrant = %d, want %d", got, k)
	}
}

// TestLeaseReleasedOnSubmit: answering retires the lease — the serial
// request→submit-all pattern never accumulates leases, and the per-task
// slot frees for other workers immediately.
func TestLeaseReleasedOnSubmit(t *testing.T) {
	const n, k = 10, 5
	clk := newFakeClock()
	s := newSystem(t, Config{
		GoldenCount: -1, HITSize: k, RerunEvery: -1, AnswersPerTask: 2,
		LeaseTTL: time.Minute, Clock: clk.Now,
	})
	if err := s.Publish(indexTasks(n, s.Domains().Size())); err != nil {
		t.Fatal(err)
	}
	first := taskIDSet(t, s, "w", k)
	if got := s.ActiveLeases(); got != k {
		t.Fatalf("ActiveLeases after request = %d, want %d", got, k)
	}
	for id := range first {
		if err := s.Submit("w", id, 0); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.ActiveLeases(); got != 0 {
		t.Fatalf("ActiveLeases after submitting all = %d, want 0", got)
	}
	// With redundancy 2 and one answer each, another worker can be served
	// the very same tasks: the released leases no longer count against the
	// open slots.
	second := taskIDSet(t, s, "w2", n)
	if len(second) != n {
		t.Fatalf("w2 got %d tasks, want all %d", len(second), n)
	}
}

// TestLeaseBoundsOutstandingAssignments: with AnswersPerTask = 1, a task
// leased to one worker has no open slot left, so a second worker gets
// nothing until the lease expires — concurrent traffic cannot over-assign
// past redundancy by more than the requests racing one grant.
func TestLeaseBoundsOutstandingAssignments(t *testing.T) {
	const n = 10
	clk := newFakeClock()
	s := newSystem(t, Config{
		GoldenCount: -1, HITSize: n, RerunEvery: -1, AnswersPerTask: 1,
		LeaseTTL: time.Minute, Clock: clk.Now,
	})
	if err := s.Publish(indexTasks(n, s.Domains().Size())); err != nil {
		t.Fatal(err)
	}
	first := taskIDSet(t, s, "w1", n)
	if len(first) != n {
		t.Fatalf("w1 got %d tasks, want %d", len(first), n)
	}
	if batch := taskIDSet(t, s, "w2", n); len(batch) != 0 {
		t.Fatalf("w2 got %d tasks while every slot is leased to w1", len(batch))
	}
	clk.Advance(2 * time.Minute)
	if batch := taskIDSet(t, s, "w2", n); len(batch) != n {
		t.Fatalf("w2 got %d tasks after w1's leases expired, want %d", len(batch), n)
	}
}

// TestLeaseScanPathParity: the legacy scan path applies the same lease
// filters as the indexed path, so the two stay interchangeable (the
// equivalence oracle must hold with leases armed too).
func TestLeaseScanPathParity(t *testing.T) {
	const n, k = 12, 4
	for _, scan := range []bool{false, true} {
		clk := newFakeClock()
		s := newSystem(t, Config{
			GoldenCount: -1, HITSize: k, RerunEvery: -1, AnswersPerTask: 1,
			LeaseTTL: time.Minute, Clock: clk.Now, ScanAssign: scan,
		})
		if err := s.Publish(indexTasks(n, s.Domains().Size())); err != nil {
			t.Fatal(err)
		}
		a := taskIDSet(t, s, "w", k)
		b := taskIDSet(t, s, "w", k)
		for id := range b {
			if a[id] {
				t.Fatalf("scan=%v: overlapping batches on task %d", scan, id)
			}
		}
		if other := taskIDSet(t, s, "w2", n); len(other) != n-2*k {
			t.Fatalf("scan=%v: w2 got %d tasks, want the %d unleased ones", scan, len(other), n-2*k)
		}
	}
}

// TestLeaseStatsLazyExpiry is the idle-server regression: lazy expiry used
// to run only at Request start, so a server receiving no requests reported
// expired leases as active forever — monitoring watching leases_active on
// an idle campaign saw a permanently wrong gauge. The stats read path must
// process due expiries itself, driven here by the fake clock with no
// requests after the TTL elapses.
func TestLeaseStatsLazyExpiry(t *testing.T) {
	const n, k = 10, 5
	clk := newFakeClock()
	s := newSystem(t, Config{
		GoldenCount: -1, HITSize: k, RerunEvery: -1,
		LeaseTTL: time.Minute, Clock: clk.Now,
	})
	if err := s.Publish(indexTasks(n, s.Domains().Size())); err != nil {
		t.Fatal(err)
	}
	if got := taskIDSet(t, s, "w", k); len(got) != k {
		t.Fatalf("request returned %d tasks, want %d", len(got), k)
	}
	if got := s.ActiveLeases(); got != k {
		t.Fatalf("ActiveLeases = %d, want %d", got, k)
	}
	// TTL elapses with NO further requests: the stats read alone must
	// retire the leases.
	clk.Advance(time.Minute + time.Second)
	if got := s.ActiveLeases(); got != 0 {
		t.Fatalf("ActiveLeases on an idle system after TTL = %d, want 0", got)
	}
	// And the expiry actually freed the slots, not just the counter.
	if got := taskIDSet(t, s, "w", k); len(got) != k {
		t.Fatalf("request after stats-driven expiry returned %d tasks, want %d", len(got), k)
	}
}
