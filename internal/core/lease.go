package core

import (
	"container/heap"
	"sync"
	"sync/atomic"
	"time"
)

// leaseTable tracks outstanding assignments: when a task is served to a
// worker on the OTA path, the worker holds a lease on it until they submit
// an answer or the lease's TTL elapses. Leases give Request the paper's
// one-HIT-at-a-time semantics under concurrency:
//
//   - a worker re-requesting before submitting is excluded from the tasks
//     they already hold, so two requests in flight return disjoint batches;
//   - a task's open slots are reduced by its active leases, so with a
//     redundancy cap of R a task with a answers and l live leases stops
//     being assigned once a+l ≥ R — heavy concurrent traffic cannot
//     over-assign it far past its redundancy (the overshoot is bounded by
//     the number of requests racing the same grant, never compounding).
//
// Leases are serving-only state: they are never written to the WAL. A
// lease is a promise about the near future ("an answer for this task may
// arrive shortly"), not a fact about the campaign, and logging it would
// force recovery to reason about wall-clock time. The cost is documented
// and bounded: after a crash, recovery replays answers but not outstanding
// leases, so workers who held assignments at crash time may briefly be
// re-assigned the same tasks and a task may collect a few answers past its
// redundancy cap until TTLs would have expired anyway. Extra answers are
// absorbed by truth inference exactly like any over-redundant answer; no
// state corruption is possible. See docs/assignment.md.
//
// Time is injected (Config.Clock) so tests drive expiry deterministically
// with no sleeps. All mutations take one mutex; per-task active counts are
// additionally mirrored in atomics so the assignment filter reads them
// without locking.
type leaseTable struct {
	ttl time.Duration
	now func() time.Time

	// counts maps every assignable (non-golden) task to its live lease
	// count. The map itself is built once at Publish, before serving, and
	// never grows: concurrent readers only perform map reads plus atomic
	// loads on the values.
	counts map[int]*atomic.Int32

	active atomic.Int64 // total live leases, the /stats gauge

	mu       sync.Mutex
	byWorker map[string]map[int]time.Time // worker -> task -> expiry
	exp      expiryHeap                   // possibly-stale (expiry, worker, task) entries
}

// leaseEntry is one scheduled expiry. Entries are never removed early: a
// release or a re-grant leaves the old entry in the heap and it is
// discarded when popped (byWorker is the authority).
type leaseEntry struct {
	at     time.Time
	worker string
	task   int
}

type expiryHeap []leaseEntry

func (h expiryHeap) Len() int           { return len(h) }
func (h expiryHeap) Less(i, j int) bool { return h[i].at.Before(h[j].at) }
func (h expiryHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *expiryHeap) Push(x any)        { *h = append(*h, x.(leaseEntry)) }
func (h *expiryHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

func newLeaseTable(ttl time.Duration, now func() time.Time) *leaseTable {
	if now == nil {
		//docs:allow clock injection-point default; tests pass a fake clock, leases never enter durable state
		now = time.Now
	}
	return &leaseTable{
		ttl:      ttl,
		now:      now,
		counts:   make(map[int]*atomic.Int32),
		byWorker: make(map[string]map[int]time.Time),
	}
}

// registerTask allocates the task's lease counter. Called from Publish
// (before serving) for every assignable task.
func (lt *leaseTable) registerTask(id int) {
	lt.counts[id] = new(atomic.Int32)
}

// taskLeases returns the task's live lease count without locking; 0 for
// tasks the table does not track (golden tasks).
func (lt *leaseTable) taskLeases(id int) int {
	if c, ok := lt.counts[id]; ok {
		return int(c.Load())
	}
	return 0
}

// beginRequest processes due expiries and returns the set of tasks the
// worker currently holds leases on (nil when none) — the per-worker
// exclusion for this request. One locked pass per request; the cost is
// O(expired·log + held).
func (lt *leaseTable) beginRequest(workerID string) map[int]bool {
	now := lt.now()
	lt.mu.Lock()
	defer lt.mu.Unlock()
	lt.expireLocked(now)
	held := lt.byWorker[workerID]
	if len(held) == 0 {
		return nil
	}
	out := make(map[int]bool, len(held))
	for id := range held {
		out[id] = true
	}
	return out
}

// activeNow processes due expiries and returns the live lease count. This
// is the stats read path: without the expiry pass, an idle server — no
// requests arriving to run beginRequest — would report expired leases as
// active forever.
func (lt *leaseTable) activeNow() int64 {
	now := lt.now()
	lt.mu.Lock()
	lt.expireLocked(now)
	n := lt.active.Load()
	lt.mu.Unlock()
	return n
}

// expireLocked drops every lease whose TTL elapsed. Heap entries that were
// released or superseded by a newer grant are discarded without effect.
func (lt *leaseTable) expireLocked(now time.Time) {
	for len(lt.exp) > 0 && !lt.exp[0].at.After(now) {
		e := heap.Pop(&lt.exp).(leaseEntry)
		held, ok := lt.byWorker[e.worker]
		if !ok {
			continue
		}
		expiry, live := held[e.task]
		if !live || expiry.After(now) {
			continue // released, or re-granted with a later expiry
		}
		delete(held, e.task)
		if len(held) == 0 {
			delete(lt.byWorker, e.worker)
		}
		lt.counts[e.task].Add(-1)
		lt.active.Add(-1)
	}
}

// grant records leases for the tasks just assigned to the worker. A task
// the worker already holds (two racing requests selecting it before either
// grant landed) only has its expiry extended.
func (lt *leaseTable) grant(workerID string, taskIDs []int) {
	if len(taskIDs) == 0 {
		return
	}
	now := lt.now()
	expiry := now.Add(lt.ttl)
	lt.mu.Lock()
	defer lt.mu.Unlock()
	held, ok := lt.byWorker[workerID]
	if !ok {
		held = make(map[int]time.Time, len(taskIDs))
		lt.byWorker[workerID] = held
	}
	for _, id := range taskIDs {
		if _, live := held[id]; !live {
			lt.counts[id].Add(1)
			lt.active.Add(1)
		}
		held[id] = expiry
		heap.Push(&lt.exp, leaseEntry{at: expiry, worker: workerID, task: id})
	}
}

// release drops the worker's lease on the task, if any — called when their
// answer is accepted. The heap entry stays behind and is discarded when its
// expiry comes due.
func (lt *leaseTable) release(workerID string, taskID int) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	held, ok := lt.byWorker[workerID]
	if !ok {
		return
	}
	if _, live := held[taskID]; !live {
		return
	}
	delete(held, taskID)
	if len(held) == 0 {
		delete(lt.byWorker, workerID)
	}
	lt.counts[taskID].Add(-1)
	lt.active.Add(-1)
}
