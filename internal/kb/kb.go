// Package kb implements the knowledge-base substrate of DOCS.
//
// The paper consults Freebase for concept→domain facts and organises the
// domain set around the 26 top-level Yahoo! Answers categories. Freebase is
// unavailable (retired, and this build is offline), so kb provides a curated
// in-memory knowledge base with the same interface contract the DVE module
// needs: a concept catalogue in which every concept carries an indicator
// vector over the 26 domains, and an alias table mapping surface forms
// (possibly ambiguously) to candidate concepts with popularity priors and
// context keywords for disambiguation.
package kb

import (
	"fmt"
	"sort"
	"strings"

	"docs/internal/model"
)

// YahooDomains is the 26-domain set D used throughout DOCS, mirroring the
// top-level Yahoo! Answers categories the paper maps Freebase onto.
var YahooDomains = []string{
	"Arts", "Beauty", "Business", "Cars", "Computers", "Electronics",
	"Dining", "Education", "Entertain", "Environment", "Family", "Food",
	"Games", "Health", "Home", "Local", "News", "Pets", "Politics",
	"Parenting", "Science", "SocialScience", "Society", "Sports",
	"Travel", "Products",
}

// Concept is a knowledge-base concept (a Freebase topic / Wikipedia page in
// the paper). Its Domains set induces the indicator vector h used by DVE.
type Concept struct {
	// ID is the unique concept identifier (e.g. "person/michael_jordan").
	ID string
	// Name is the human-readable title.
	Name string
	// Domains lists the indices of the domains this concept relates to.
	Domains []int
	// Prior is the concept's popularity prior used by the entity linker to
	// rank candidates of an ambiguous mention. Higher is more popular.
	Prior float64
	// Context holds lowercase keywords that, when present near a mention,
	// make this concept the more plausible link target.
	Context []string
}

// Indicator returns the concept's indicator vector h of size m: h_k = 1 iff
// the concept relates to domain k.
func (c *Concept) Indicator(m int) []float64 {
	h := make([]float64, m)
	for _, k := range c.Domains {
		if k >= 0 && k < m {
			h[k] = 1
		}
	}
	return h
}

// KB is an in-memory knowledge base: a domain set, a concept catalogue and
// an alias (surface form → candidate concepts) table.
type KB struct {
	domains  *model.DomainSet
	concepts map[string]*Concept
	aliases  map[string][]string // normalized alias -> concept IDs
}

// New returns an empty knowledge base over the given domain set.
func New(domains *model.DomainSet) *KB {
	return &KB{
		domains:  domains,
		concepts: make(map[string]*Concept),
		aliases:  make(map[string][]string),
	}
}

// Domains returns the knowledge base's domain set.
func (k *KB) Domains() *model.DomainSet { return k.domains }

// NumConcepts returns the number of concepts in the catalogue.
func (k *KB) NumConcepts() int { return len(k.concepts) }

// AddConcept inserts a concept and registers its name as an alias. The
// concept's domain indices must be valid and IDs must be unique.
func (k *KB) AddConcept(c *Concept) error {
	if c.ID == "" {
		return fmt.Errorf("kb: concept with empty ID")
	}
	if _, dup := k.concepts[c.ID]; dup {
		return fmt.Errorf("kb: duplicate concept %q", c.ID)
	}
	if len(c.Domains) == 0 {
		return fmt.Errorf("kb: concept %q has no domains", c.ID)
	}
	m := k.domains.Size()
	for _, d := range c.Domains {
		if d < 0 || d >= m {
			return fmt.Errorf("kb: concept %q domain index %d out of range [0,%d)", c.ID, d, m)
		}
	}
	if c.Prior <= 0 {
		return fmt.Errorf("kb: concept %q has non-positive prior %g", c.ID, c.Prior)
	}
	k.concepts[c.ID] = c
	k.addAlias(c.Name, c.ID)
	return nil
}

// AddAlias registers an additional surface form for an existing concept.
func (k *KB) AddAlias(alias, conceptID string) error {
	if _, ok := k.concepts[conceptID]; !ok {
		return fmt.Errorf("kb: alias %q refers to unknown concept %q", alias, conceptID)
	}
	if strings.TrimSpace(alias) == "" {
		return fmt.Errorf("kb: empty alias for concept %q", conceptID)
	}
	k.addAlias(alias, conceptID)
	return nil
}

func (k *KB) addAlias(alias, conceptID string) {
	key := NormalizeMention(alias)
	for _, id := range k.aliases[key] {
		if id == conceptID {
			return
		}
	}
	k.aliases[key] = append(k.aliases[key], conceptID)
}

// Concept returns the concept with the given ID, or nil.
func (k *KB) Concept(id string) *Concept { return k.concepts[id] }

// Candidates returns the concepts a surface form may link to, ordered by
// descending prior (ties broken by ID for determinism). The slice is fresh;
// callers may reorder it.
func (k *KB) Candidates(mention string) []*Concept {
	ids := k.aliases[NormalizeMention(mention)]
	if len(ids) == 0 {
		return nil
	}
	out := make([]*Concept, 0, len(ids))
	for _, id := range ids {
		out = append(out, k.concepts[id])
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Prior != out[j].Prior {
			return out[i].Prior > out[j].Prior
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// HasAlias reports whether the surface form is known to the alias table.
func (k *KB) HasAlias(mention string) bool {
	_, ok := k.aliases[NormalizeMention(mention)]
	return ok
}

// MaxAliasWords returns the largest number of words in any registered alias;
// the linker uses it to bound its longest-match window.
func (k *KB) MaxAliasWords() int {
	max := 1
	//docs:allow determinism max over map keys is order-independent
	for a := range k.aliases {
		if n := strings.Count(a, " ") + 1; n > max {
			max = n
		}
	}
	return max
}

// NormalizeMention lowercases a surface form, strips punctuation other than
// intra-word apostrophes and hyphens, and collapses whitespace, so alias
// lookup is insensitive to casing, spacing and punctuation ("Washington,
// D.C." and "washington d c" normalize identically).
func NormalizeMention(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for _, r := range strings.ToLower(s) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '\'', r == '-':
			b.WriteRune(r)
		case r > 127: // keep non-ASCII letters (e.g. "Beyoncé", "Pelé")
			b.WriteRune(r)
		default:
			b.WriteByte(' ')
		}
	}
	return strings.Join(strings.Fields(b.String()), " ")
}
