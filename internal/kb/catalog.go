package kb

import (
	"fmt"
	"strings"
	"sync"

	"docs/internal/model"
)

// entry is one row of the curated catalogue. domains and aliases are
// pipe-separated lists; context is a space-separated keyword bag.
type entry struct {
	id      string
	name    string
	domains string
	prior   float64
	context string
	aliases string
	cat     string // catalogue category used by the dataset generators
}

// Catalogue categories exposed to the dataset generators.
const (
	CatNBAPlayer  = "nba_player"
	CatNBATeam    = "nba_team"
	CatFood       = "food"
	CatCar        = "car"
	CatCarBrand   = "car_brand"
	CatCountry    = "country"
	CatMountain   = "mountain"
	CatFilm       = "film"
	CatActor      = "actor"
	CatPolitician = "politician"
	CatBusiness   = "business"
	CatCompany    = "company"
	CatScientist  = "scientist"
	CatMusician   = "musician"
	CatAthlete    = "athlete"
	CatCity       = "city"
)

var catalog = []entry{
	// --- NBA players (Sports; Michael Jordan also Entertain via Space Jam) ---
	{"person/michael_jordan", "Michael Jordan", "Sports|Entertain", 0.70, "basketball nba bulls championships player dunk court score team win game height position", "MJ|Air Jordan", CatNBAPlayer},
	{"person/michael_i_jordan", "Michael I. Jordan", "Science|Computers", 0.20, "machine learning professor berkeley statistics research ai computer", "Michael Jordan", CatScientist},
	{"person/michael_b_jordan", "Michael B. Jordan", "Entertain", 0.10, "actor film movie creed star role cast", "Michael Jordan", CatActor},
	{"person/kobe_bryant", "Kobe Bryant", "Sports", 1.0, "basketball nba lakers championships player score mamba game height position", "Kobe", CatNBAPlayer},
	{"person/lebron_james", "LeBron James", "Sports", 1.0, "basketball nba cavaliers heat lakers championships player game height position", "LeBron|King James", CatNBAPlayer},
	{"person/stephen_curry", "Stephen Curry", "Sports", 1.0, "basketball nba warriors three pointer championships player game height position", "Steph Curry|Curry", CatNBAPlayer},
	{"person/kevin_durant", "Kevin Durant", "Sports", 1.0, "basketball nba thunder warriors player scoring game height position", "KD", CatNBAPlayer},
	{"person/shaquille_oneal", "Shaquille O'Neal", "Sports", 1.0, "basketball nba lakers center championships player game height position", "Shaq", CatNBAPlayer},
	{"person/tim_duncan", "Tim Duncan", "Sports", 1.0, "basketball nba spurs championships player fundamental game height position", "", CatNBAPlayer},
	{"person/magic_johnson", "Magic Johnson", "Sports", 1.0, "basketball nba lakers point guard championships player game height position", "", CatNBAPlayer},
	{"person/larry_bird", "Larry Bird", "Sports", 1.0, "basketball nba celtics forward championships player game height position", "", CatNBAPlayer},
	{"person/kareem_abdul_jabbar", "Kareem Abdul-Jabbar", "Sports", 1.0, "basketball nba lakers skyhook championships player game height position", "Kareem", CatNBAPlayer},
	{"person/dirk_nowitzki", "Dirk Nowitzki", "Sports", 1.0, "basketball nba mavericks forward championships player game height position", "Dirk", CatNBAPlayer},
	{"person/allen_iverson", "Allen Iverson", "Sports", 1.0, "basketball nba sixers guard crossover player game height position", "", CatNBAPlayer},
	{"person/dwyane_wade", "Dwyane Wade", "Sports", 1.0, "basketball nba heat guard championships player game height position", "", CatNBAPlayer},
	{"person/chris_paul", "Chris Paul", "Sports", 1.0, "basketball nba clippers rockets point guard player game height position", "CP3", CatNBAPlayer},
	{"person/james_harden", "James Harden", "Sports", 1.0, "basketball nba rockets beard guard scoring player game height position", "", CatNBAPlayer},
	{"person/russell_westbrook", "Russell Westbrook", "Sports", 1.0, "basketball nba thunder triple double guard player game height position", "", CatNBAPlayer},
	{"person/yao_ming", "Yao Ming", "Sports", 1.0, "basketball nba rockets center china player game height position", "", CatNBAPlayer},
	{"person/kevin_garnett", "Kevin Garnett", "Sports", 1.0, "basketball nba timberwolves celtics forward player game height position", "KG", CatNBAPlayer},
	{"person/paul_pierce", "Paul Pierce", "Sports", 1.0, "basketball nba celtics forward truth player game height position", "", CatNBAPlayer},
	{"person/tony_parker", "Tony Parker", "Sports", 1.0, "basketball nba spurs guard france player game height position", "", CatNBAPlayer},
	{"person/scottie_pippen", "Scottie Pippen", "Sports", 1.0, "basketball nba bulls forward championships player game height position", "", CatNBAPlayer},
	{"person/dennis_rodman", "Dennis Rodman", "Sports", 1.0, "basketball nba bulls pistons rebound player game height position", "", CatNBAPlayer},
	{"person/charles_barkley", "Charles Barkley", "Sports", 1.0, "basketball nba suns sixers forward player game height position", "", CatNBAPlayer},
	{"person/karl_malone", "Karl Malone", "Sports", 1.0, "basketball nba jazz mailman forward player game height position", "", CatNBAPlayer},
	{"person/john_stockton", "John Stockton", "Sports", 1.0, "basketball nba jazz assists guard player game height position", "", CatNBAPlayer},
	{"person/hakeem_olajuwon", "Hakeem Olajuwon", "Sports", 1.0, "basketball nba rockets dream center player game height position", "", CatNBAPlayer},
	{"person/patrick_ewing", "Patrick Ewing", "Sports", 1.0, "basketball nba knicks center player game height position", "", CatNBAPlayer},
	{"person/klay_thompson", "Klay Thompson", "Sports", 1.0, "basketball nba warriors splash shooter player game height position", "", CatNBAPlayer},
	{"person/dwight_howard", "Dwight Howard", "Sports", 1.0, "basketball nba magic lakers center player game height position", "", CatNBAPlayer},

	// --- NBA teams ---
	{"team/golden_state_warriors", "Golden State Warriors", "Sports", 1.0, "basketball nba team championships oakland win season", "Warriors", CatNBATeam},
	{"team/los_angeles_lakers", "Los Angeles Lakers", "Sports", 1.0, "basketball nba team championships los angeles win season", "Lakers", CatNBATeam},
	{"team/chicago_bulls", "Chicago Bulls", "Sports", 1.0, "basketball nba team championships chicago win season", "Bulls", CatNBATeam},
	{"team/boston_celtics", "Boston Celtics", "Sports", 1.0, "basketball nba team championships boston win season", "Celtics", CatNBATeam},
	{"team/san_antonio_spurs", "San Antonio Spurs", "Sports", 1.0, "basketball nba team championships san antonio win season", "Spurs", CatNBATeam},
	{"team/miami_heat", "Miami Heat", "Sports", 1.0, "basketball nba team championships miami win season", "Heat", CatNBATeam},
	{"team/cleveland_cavaliers", "Cleveland Cavaliers", "Sports", 1.0, "basketball nba team championships cleveland win season", "Cavaliers|Cavs", CatNBATeam},
	{"team/houston_rockets", "Houston Rockets", "Sports", 1.0, "basketball nba team championships houston win season", "Rockets", CatNBATeam},
	{"team/new_york_knicks", "New York Knicks", "Sports", 1.0, "basketball nba team new york win season", "Knicks", CatNBATeam},
	{"team/dallas_mavericks", "Dallas Mavericks", "Sports", 1.0, "basketball nba team championships dallas win season", "Mavericks|Mavs", CatNBATeam},
	{"team/oklahoma_city_thunder", "Oklahoma City Thunder", "Sports", 1.0, "basketball nba team oklahoma win season", "Thunder", CatNBATeam},
	{"team/toronto_raptors", "Toronto Raptors", "Sports", 1.0, "basketball nba team toronto win season", "Raptors", CatNBATeam},
	{"team/phoenix_suns", "Phoenix Suns", "Sports", 0.6, "basketball nba team phoenix win season", "Suns", CatNBATeam},
	{"team/utah_jazz", "Utah Jazz", "Sports", 1.0, "basketball nba team utah win season", "Jazz", CatNBATeam},
	{"team/detroit_pistons", "Detroit Pistons", "Sports", 1.0, "basketball nba team championships detroit win season", "Pistons", CatNBATeam},

	// --- Organisations around the NBA running example ---
	{"org/national_basketball_association", "National Basketball Association", "Sports", 0.8, "basketball league teams players season championships game", "NBA", ""},
	{"org/national_bar_association", "National Bar Association", "Society", 0.2, "lawyers attorneys legal association bar justice", "NBA", ""},

	// --- Foods (Food domain; some also Health/Dining) ---
	{"food/chocolate", "Chocolate", "Food", 1.0, "calories sweet cocoa dessert eat sugar taste", "", CatFood},
	{"food/honey", "Honey", "Food|Health", 1.0, "calories sweet bees natural eat sugar taste", "", CatFood},
	{"food/pizza", "Pizza", "Food|Dining", 1.0, "calories cheese italian slice eat restaurant taste", "", CatFood},
	{"food/rice", "Rice", "Food", 1.0, "calories grain asia staple eat carbohydrate", "", CatFood},
	{"food/bread", "Bread", "Food", 1.0, "calories wheat bakery loaf eat carbohydrate", "", CatFood},
	{"food/cheese", "Cheese", "Food", 1.0, "calories dairy milk protein eat fat taste", "", CatFood},
	{"food/butter", "Butter", "Food", 1.0, "calories dairy fat spread eat cooking", "", CatFood},
	{"food/apple_fruit", "Apple", "Food|Health", 0.45, "fruit calories vitamin tree eat healthy orchard juicy", "Apple Fruit", CatFood},
	{"food/banana", "Banana", "Food|Health", 1.0, "fruit calories potassium yellow eat healthy", "", CatFood},
	{"food/orange_fruit", "Orange", "Food|Health", 1.0, "fruit calories vitamin citrus juice eat healthy", "", CatFood},
	{"food/avocado", "Avocado", "Food|Health", 1.0, "fruit calories fat toast green eat healthy", "", CatFood},
	{"food/almond", "Almond", "Food|Health", 1.0, "nut calories protein snack eat healthy", "Almonds", CatFood},
	{"food/peanut", "Peanut", "Food", 1.0, "nut calories protein butter snack eat allergy", "Peanuts", CatFood},
	{"food/pasta", "Pasta", "Food|Dining", 1.0, "calories italian noodles carbohydrate eat restaurant", "", CatFood},
	{"food/potato", "Potato", "Food", 1.0, "calories vegetable starch fries eat carbohydrate", "Potatoes", CatFood},
	{"food/tomato", "Tomato", "Food", 1.0, "vegetable fruit calories salad sauce eat healthy", "Tomatoes", CatFood},
	{"food/fried_chicken", "Fried Chicken", "Food|Dining", 1.0, "calories meat protein crispy eat restaurant fast", "", CatFood},
	{"food/beef_steak", "Beef Steak", "Food|Dining", 1.0, "calories meat protein grill eat restaurant", "Steak", CatFood},
	{"food/salmon", "Salmon", "Food|Health", 1.0, "fish calories protein omega eat healthy", "", CatFood},
	{"food/tofu", "Tofu", "Food|Health", 1.0, "soy calories protein vegetarian eat healthy", "", CatFood},
	{"food/yogurt", "Yogurt", "Food|Health", 1.0, "dairy calories probiotic breakfast eat healthy", "Yoghurt", CatFood},
	{"food/ice_cream", "Ice Cream", "Food|Dining", 1.0, "calories sweet frozen dessert eat sugar", "", CatFood},
	{"food/olive_oil", "Olive Oil", "Food|Health", 1.0, "calories fat mediterranean cooking eat healthy", "", CatFood},
	{"food/white_sugar", "White Sugar", "Food", 1.0, "calories sweet carbohydrate baking eat", "Sugar", CatFood},
	{"food/egg", "Egg", "Food|Health", 1.0, "calories protein breakfast yolk eat", "Eggs", CatFood},
	{"food/whole_milk", "Whole Milk", "Food|Health", 1.0, "dairy calories calcium drink breakfast", "Milk", CatFood},
	{"food/oatmeal", "Oatmeal", "Food|Health", 1.0, "calories grain fiber breakfast eat healthy", "Oats", CatFood},
	{"food/broccoli", "Broccoli", "Food|Health", 1.0, "vegetable calories vitamin green eat healthy", "", CatFood},
	{"food/lettuce", "Lettuce", "Food|Health", 1.0, "vegetable calories salad green eat healthy", "", CatFood},
	{"food/bacon", "Bacon", "Food", 1.0, "calories meat fat breakfast crispy eat", "", CatFood},
	{"food/kobe_beef", "Kobe Beef", "Food|Dining", 0.15, "beef wagyu japan expensive marbled eat restaurant", "Kobe", CatFood},

	// --- Car models (Cars) ---
	{"car/toyota_camry", "Toyota Camry", "Cars", 1.0, "sedan mpg engine horsepower drive reliability price fuel", "Camry", CatCar},
	{"car/honda_civic", "Honda Civic", "Cars", 1.0, "sedan compact mpg engine horsepower drive price fuel", "Civic", CatCar},
	{"car/ford_mustang", "Ford Mustang", "Cars", 1.0, "muscle coupe engine horsepower drive speed price", "Mustang", CatCar},
	{"car/chevrolet_corvette", "Chevrolet Corvette", "Cars", 1.0, "sports coupe engine horsepower drive speed price", "Corvette", CatCar},
	{"car/tesla_model_s", "Tesla Model S", "Cars|Electronics", 1.0, "electric sedan battery range autopilot drive price", "Model S", CatCar},
	{"car/bmw_3_series", "BMW 3 Series", "Cars", 1.0, "sedan luxury engine horsepower drive handling price", "BMW 3", CatCar},
	{"car/mercedes_c_class", "Mercedes-Benz C-Class", "Cars", 1.0, "sedan luxury engine horsepower drive comfort price", "C-Class", CatCar},
	{"car/audi_a4", "Audi A4", "Cars", 1.0, "sedan luxury quattro engine horsepower drive price", "A4", CatCar},
	{"car/porsche_911", "Porsche 911", "Cars", 1.0, "sports coupe engine horsepower drive speed price", "911", CatCar},
	{"car/ferrari_458", "Ferrari 458", "Cars", 1.0, "supercar italian engine horsepower drive speed price", "458 Italia", CatCar},
	{"car/lamborghini_aventador", "Lamborghini Aventador", "Cars", 1.0, "supercar italian engine horsepower drive speed price", "Aventador", CatCar},
	{"car/volkswagen_golf", "Volkswagen Golf", "Cars", 1.0, "hatchback compact mpg engine drive price fuel", "VW Golf", CatCar},
	{"car/nissan_altima", "Nissan Altima", "Cars", 1.0, "sedan mpg engine horsepower drive price fuel", "Altima", CatCar},
	{"car/hyundai_sonata", "Hyundai Sonata", "Cars", 1.0, "sedan mpg engine horsepower drive price fuel", "Sonata", CatCar},
	{"car/jeep_wrangler", "Jeep Wrangler", "Cars", 1.0, "suv offroad four wheel drive terrain price", "Wrangler", CatCar},
	{"car/subaru_outback", "Subaru Outback", "Cars", 1.0, "wagon awd mpg engine drive price fuel", "Outback", CatCar},
	{"car/mazda_mx5", "Mazda MX-5", "Cars", 1.0, "roadster convertible engine drive handling price", "Miata", CatCar},
	{"car/dodge_charger", "Dodge Charger", "Cars", 1.0, "muscle sedan engine horsepower drive speed price", "Charger", CatCar},
	{"car/jaguar_ftype", "Jaguar F-Type", "Cars", 0.55, "sports coupe british engine horsepower drive speed price", "Jaguar", CatCar},
	{"car/mini_cooper", "Mini Cooper", "Cars", 1.0, "compact hatchback british engine drive price fuel", "Mini", CatCar},
	{"car/ford_f150", "Ford F-150", "Cars", 1.0, "pickup truck towing engine horsepower drive price", "F-150", CatCar},
	{"car/toyota_prius", "Toyota Prius", "Cars|Environment", 1.0, "hybrid mpg battery fuel economy drive price", "Prius", CatCar},

	// --- Countries (Travel; a few also Politics) ---
	{"country/united_states", "United States", "Travel|Politics", 1.0, "country population area capital visit continent america", "USA|United States of America|America", CatCountry},
	{"country/china", "China", "Travel|Politics", 1.0, "country population area capital visit continent asia", "", CatCountry},
	{"country/india", "India", "Travel", 1.0, "country population area capital visit continent asia", "", CatCountry},
	{"country/brazil", "Brazil", "Travel", 1.0, "country population area capital visit continent america", "", CatCountry},
	{"country/russia", "Russia", "Travel|Politics", 1.0, "country population area capital visit continent europe asia", "", CatCountry},
	{"country/japan", "Japan", "Travel", 1.0, "country population area capital visit continent asia island", "", CatCountry},
	{"country/germany", "Germany", "Travel", 1.0, "country population area capital visit continent europe", "", CatCountry},
	{"country/france", "France", "Travel", 1.0, "country population area capital visit continent europe", "", CatCountry},
	{"country/united_kingdom", "United Kingdom", "Travel|Politics", 1.0, "country population area capital visit continent europe island", "UK|Britain|Great Britain", CatCountry},
	{"country/italy", "Italy", "Travel", 1.0, "country population area capital visit continent europe", "", CatCountry},
	{"country/canada", "Canada", "Travel", 1.0, "country population area capital visit continent america", "", CatCountry},
	{"country/australia", "Australia", "Travel", 1.0, "country population area capital visit continent island", "", CatCountry},
	{"country/mexico", "Mexico", "Travel", 1.0, "country population area capital visit continent america", "", CatCountry},
	{"country/spain", "Spain", "Travel", 1.0, "country population area capital visit continent europe", "", CatCountry},
	{"country/indonesia", "Indonesia", "Travel", 1.0, "country population area capital visit continent asia island", "", CatCountry},
	{"country/turkey_country", "Turkey", "Travel", 0.6, "country population area capital visit continent europe asia", "Turkey", CatCountry},
	{"food/turkey_meat", "Turkey Meat", "Food", 0.4, "calories meat protein thanksgiving roast eat", "Turkey", CatFood},
	{"country/egypt", "Egypt", "Travel", 1.0, "country population area capital visit continent africa pyramids", "", CatCountry},
	{"country/nigeria", "Nigeria", "Travel", 1.0, "country population area capital visit continent africa", "", CatCountry},
	{"country/argentina", "Argentina", "Travel", 1.0, "country population area capital visit continent america", "", CatCountry},
	{"country/south_korea", "South Korea", "Travel", 1.0, "country population area capital visit continent asia", "Korea", CatCountry},
	{"country/netherlands", "Netherlands", "Travel", 1.0, "country population area capital visit continent europe", "Holland", CatCountry},
	{"country/switzerland", "Switzerland", "Travel", 1.0, "country population area capital visit continent europe alps", "", CatCountry},
	{"country/sweden", "Sweden", "Travel", 1.0, "country population area capital visit continent europe nordic", "", CatCountry},
	{"country/norway", "Norway", "Travel", 1.0, "country population area capital visit continent europe nordic fjord", "", CatCountry},
	{"country/greece", "Greece", "Travel", 1.0, "country population area capital visit continent europe islands", "", CatCountry},
	{"country/portugal", "Portugal", "Travel", 1.0, "country population area capital visit continent europe", "", CatCountry},
	{"country/thailand", "Thailand", "Travel", 1.0, "country population area capital visit continent asia beaches", "", CatCountry},
	{"country/vietnam", "Vietnam", "Travel", 1.0, "country population area capital visit continent asia", "", CatCountry},

	// --- Mountains (Science; the paper maps 4D's Mountain domain to Science) ---
	{"mountain/mount_everest", "Mount Everest", "Science", 1.0, "mountain height peak summit climb meters himalaya elevation", "Everest", CatMountain},
	{"mountain/k2", "K2", "Science", 1.0, "mountain height peak summit climb meters karakoram elevation", "", CatMountain},
	{"mountain/kilimanjaro", "Mount Kilimanjaro", "Science", 1.0, "mountain height peak summit climb meters africa elevation", "Kilimanjaro", CatMountain},
	{"mountain/denali", "Denali", "Science", 1.0, "mountain height peak summit climb meters alaska elevation", "Mount McKinley", CatMountain},
	{"mountain/mont_blanc", "Mont Blanc", "Science", 1.0, "mountain height peak summit climb meters alps elevation", "", CatMountain},
	{"mountain/matterhorn", "Matterhorn", "Science", 1.0, "mountain height peak summit climb meters alps elevation", "", CatMountain},
	{"mountain/mount_fuji", "Mount Fuji", "Science", 1.0, "mountain height peak summit climb meters japan volcano elevation", "Fuji", CatMountain},
	{"mountain/aconcagua", "Aconcagua", "Science", 1.0, "mountain height peak summit climb meters andes elevation", "", CatMountain},
	{"mountain/annapurna", "Annapurna", "Science", 1.0, "mountain height peak summit climb meters himalaya elevation", "", CatMountain},
	{"mountain/kangchenjunga", "Kangchenjunga", "Science", 1.0, "mountain height peak summit climb meters himalaya elevation", "", CatMountain},
	{"mountain/lhotse", "Lhotse", "Science", 1.0, "mountain height peak summit climb meters himalaya elevation", "", CatMountain},
	{"mountain/makalu", "Makalu", "Science", 1.0, "mountain height peak summit climb meters himalaya elevation", "", CatMountain},
	{"mountain/mount_rainier", "Mount Rainier", "Science", 1.0, "mountain height peak summit climb meters cascade volcano elevation", "Rainier", CatMountain},
	{"mountain/mount_elbrus", "Mount Elbrus", "Science", 1.0, "mountain height peak summit climb meters caucasus elevation", "Elbrus", CatMountain},

	// --- Films (Entertain; Space Jam also Sports) ---
	{"film/titanic", "Titanic", "Entertain", 1.0, "film movie oscar director box office actor released year", "", CatFilm},
	{"film/inception", "Inception", "Entertain", 1.0, "film movie dream director nolan box office released year", "", CatFilm},
	{"film/the_godfather", "The Godfather", "Entertain", 1.0, "film movie mafia oscar director box office released year", "Godfather", CatFilm},
	{"film/avatar", "Avatar", "Entertain", 1.0, "film movie pandora director cameron box office released year", "", CatFilm},
	{"film/the_dark_knight", "The Dark Knight", "Entertain", 1.0, "film movie batman joker director box office released year", "Dark Knight", CatFilm},
	{"film/forrest_gump", "Forrest Gump", "Entertain", 1.0, "film movie oscar hanks director box office released year", "", CatFilm},
	{"film/pulp_fiction", "Pulp Fiction", "Entertain", 1.0, "film movie tarantino director box office released year", "", CatFilm},
	{"film/the_matrix", "The Matrix", "Entertain", 1.0, "film movie neo director box office released year", "Matrix", CatFilm},
	{"film/jurassic_park", "Jurassic Park", "Entertain", 1.0, "film movie dinosaurs spielberg director box office released year", "", CatFilm},
	{"film/star_wars", "Star Wars", "Entertain", 1.0, "film movie jedi lucas director box office released year", "", CatFilm},
	{"film/shawshank_redemption", "The Shawshank Redemption", "Entertain", 1.0, "film movie prison director box office released year", "Shawshank", CatFilm},
	{"film/gladiator", "Gladiator", "Entertain", 1.0, "film movie rome oscar director box office released year", "", CatFilm},
	{"film/interstellar", "Interstellar", "Entertain", 1.0, "film movie space nolan director box office released year", "", CatFilm},
	{"film/casablanca", "Casablanca", "Entertain", 1.0, "film movie classic oscar director released year", "", CatFilm},
	{"film/goodfellas", "Goodfellas", "Entertain", 1.0, "film movie mafia scorsese director released year", "", CatFilm},
	{"film/the_avengers", "The Avengers", "Entertain", 1.0, "film movie marvel superhero director box office released year", "Avengers", CatFilm},
	{"film/frozen", "Frozen", "Entertain", 1.0, "film movie disney animated box office released year", "", CatFilm},
	{"film/toy_story", "Toy Story", "Entertain", 1.0, "film movie pixar animated box office released year", "", CatFilm},
	{"film/the_lion_king", "The Lion King", "Entertain", 1.0, "film movie disney animated box office released year", "Lion King", CatFilm},
	{"film/schindlers_list", "Schindler's List", "Entertain", 1.0, "film movie oscar spielberg director released year", "", CatFilm},
	{"film/fight_club", "Fight Club", "Entertain", 1.0, "film movie fincher director released year", "", CatFilm},
	{"film/la_la_land", "La La Land", "Entertain", 1.0, "film movie musical oscar director box office released year", "", CatFilm},
	{"film/space_jam", "Space Jam", "Entertain|Sports", 1.0, "film movie basketball cartoon jordan box office released year", "", CatFilm},
	{"film/the_revenant", "The Revenant", "Entertain", 1.0, "film movie oscar dicaprio director box office released year", "Revenant", CatFilm},

	// --- Actors (Entertain) ---
	{"person/leonardo_dicaprio", "Leonardo DiCaprio", "Entertain", 1.0, "actor film movie oscar titanic star role", "DiCaprio|Leo DiCaprio", CatActor},
	{"person/tom_hanks", "Tom Hanks", "Entertain", 1.0, "actor film movie oscar star role", "", CatActor},
	{"person/meryl_streep", "Meryl Streep", "Entertain", 1.0, "actress film movie oscar star role", "", CatActor},
	{"person/brad_pitt", "Brad Pitt", "Entertain", 1.0, "actor film movie star role", "", CatActor},
	{"person/johnny_depp", "Johnny Depp", "Entertain", 1.0, "actor film movie pirates star role", "", CatActor},
	{"person/scarlett_johansson", "Scarlett Johansson", "Entertain", 1.0, "actress film movie marvel star role", "", CatActor},
	{"person/robert_de_niro", "Robert De Niro", "Entertain", 1.0, "actor film movie oscar star role", "De Niro", CatActor},
	{"person/al_pacino", "Al Pacino", "Entertain", 1.0, "actor film movie godfather star role", "", CatActor},
	{"person/denzel_washington", "Denzel Washington", "Entertain", 0.5, "actor film movie oscar star role", "Washington", CatActor},
	{"person/morgan_freeman", "Morgan Freeman", "Entertain", 1.0, "actor film movie voice star role", "", CatActor},
	{"person/natalie_portman", "Natalie Portman", "Entertain", 1.0, "actress film movie oscar star role", "", CatActor},
	{"person/will_smith", "Will Smith", "Entertain", 1.0, "actor film movie star role", "", CatActor},
	{"person/angelina_jolie", "Angelina Jolie", "Entertain", 1.0, "actress film movie star role", "", CatActor},
	{"person/jennifer_lawrence", "Jennifer Lawrence", "Entertain", 1.0, "actress film movie oscar hunger star role", "", CatActor},
	{"person/christian_bale", "Christian Bale", "Entertain", 1.0, "actor film movie batman star role", "", CatActor},
	{"person/anne_hathaway", "Anne Hathaway", "Entertain", 1.0, "actress film movie oscar star role", "", CatActor},
	{"person/emma_watson", "Emma Watson", "Entertain", 1.0, "actress film movie harry potter star role", "", CatActor},
	{"person/matt_damon", "Matt Damon", "Entertain", 1.0, "actor film movie bourne star role", "", CatActor},
	{"person/kate_winslet", "Kate Winslet", "Entertain", 1.0, "actress film movie titanic oscar star role", "", CatActor},
	{"person/joaquin_phoenix", "Joaquin Phoenix", "Entertain", 0.3, "actor film movie joker star role", "Phoenix", CatActor},

	// --- Politicians (Politics) ---
	{"person/barack_obama", "Barack Obama", "Politics", 1.0, "president election democrat senate white house policy born", "Obama", CatPolitician},
	{"person/donald_trump", "Donald Trump", "Politics|Business", 1.0, "president election republican white house policy tower born", "Trump", CatPolitician},
	{"person/hillary_clinton", "Hillary Clinton", "Politics", 1.0, "secretary state election democrat senate policy born", "Clinton", CatPolitician},
	{"person/george_washington", "George Washington", "Politics", 0.5, "president founding father revolution united states born", "Washington", CatPolitician},
	{"person/abraham_lincoln", "Abraham Lincoln", "Politics", 1.0, "president civil war emancipation united states born", "Lincoln", CatPolitician},
	{"person/angela_merkel", "Angela Merkel", "Politics", 1.0, "chancellor germany election policy european born", "Merkel", CatPolitician},
	{"person/vladimir_putin", "Vladimir Putin", "Politics", 1.0, "president russia kremlin election policy born", "Putin", CatPolitician},
	{"person/winston_churchill", "Winston Churchill", "Politics", 1.0, "prime minister britain war speech policy born", "Churchill", CatPolitician},
	{"person/john_f_kennedy", "John F. Kennedy", "Politics", 1.0, "president assassination democrat united states born", "JFK|Kennedy", CatPolitician},
	{"person/ronald_reagan", "Ronald Reagan", "Politics|Entertain", 1.0, "president republican actor united states policy born", "Reagan", CatPolitician},
	{"person/franklin_roosevelt", "Franklin D. Roosevelt", "Politics", 1.0, "president new deal war united states policy born", "FDR|Roosevelt", CatPolitician},
	{"person/margaret_thatcher", "Margaret Thatcher", "Politics", 1.0, "prime minister britain iron lady policy born", "Thatcher", CatPolitician},
	{"person/nelson_mandela", "Nelson Mandela", "Politics|Society", 1.0, "president south africa apartheid freedom born", "Mandela", CatPolitician},
	{"person/justin_trudeau", "Justin Trudeau", "Politics", 1.0, "prime minister canada liberal policy born", "Trudeau", CatPolitician},
	{"person/bernie_sanders", "Bernie Sanders", "Politics", 1.0, "senator vermont election democrat policy born", "Sanders", CatPolitician},
	{"person/queen_elizabeth_ii", "Queen Elizabeth II", "Politics|Society", 0.4, "monarch britain royal crown reign born", "Queen|The Queen", CatPolitician},

	// --- Business people (Business) ---
	{"person/bill_gates", "Bill Gates", "Business|Computers", 1.0, "microsoft founder billionaire philanthropy wealth company born age", "Gates", CatBusiness},
	{"person/steve_jobs", "Steve Jobs", "Business|Computers", 1.0, "apple founder iphone ceo company wealth born age", "Jobs", CatBusiness},
	{"person/elon_musk", "Elon Musk", "Business|Science", 1.0, "tesla spacex founder ceo rockets company wealth born age", "Musk", CatBusiness},
	{"person/warren_buffett", "Warren Buffett", "Business", 1.0, "berkshire investor billionaire omaha wealth company born age", "Buffett", CatBusiness},
	{"person/jeff_bezos", "Jeff Bezos", "Business|Computers", 1.0, "amazon founder ceo billionaire wealth company born age", "Bezos", CatBusiness},
	{"person/mark_zuckerberg", "Mark Zuckerberg", "Business|Computers", 1.0, "facebook founder ceo social network wealth company born age", "Zuckerberg", CatBusiness},
	{"person/larry_page", "Larry Page", "Business|Computers", 1.0, "google founder search engine wealth company born age", "", CatBusiness},
	{"person/sergey_brin", "Sergey Brin", "Business|Computers", 1.0, "google founder search engine wealth company born age", "Brin", CatBusiness},
	{"person/jack_ma", "Jack Ma", "Business", 1.0, "alibaba founder china ecommerce wealth company born age", "", CatBusiness},
	{"person/richard_branson", "Richard Branson", "Business|Travel", 1.0, "virgin founder airline island wealth company born age", "Branson", CatBusiness},

	// --- Companies (Business + Computers where apt) ---
	{"company/microsoft", "Microsoft", "Business|Computers", 1.0, "software windows company stock revenue ceo technology", "", CatCompany},
	{"company/apple_inc", "Apple Inc.", "Business|Computers|Electronics", 0.55, "iphone mac company stock revenue ceo technology cupertino", "Apple", CatCompany},
	{"company/google", "Google", "Business|Computers", 1.0, "search engine company stock revenue ceo technology android", "Alphabet", CatCompany},
	{"company/amazon_inc", "Amazon.com", "Business|Computers", 0.6, "ecommerce cloud company stock revenue ceo technology shopping", "Amazon", CatCompany},
	{"geo/amazon_river", "Amazon River", "Science|Environment|Travel", 0.4, "river rainforest brazil south america water basin nature", "Amazon", ""},
	{"company/facebook", "Facebook", "Business|Computers", 1.0, "social network company stock revenue ceo technology", "Meta", CatCompany},
	{"company/tesla_inc", "Tesla Inc.", "Business|Cars", 0.5, "electric cars company stock revenue ceo battery factory", "Tesla", CatCompany},
	{"person/nikola_tesla", "Nikola Tesla", "Science", 0.5, "inventor electricity alternating current physics coil born", "Tesla", CatScientist},
	{"company/berkshire_hathaway", "Berkshire Hathaway", "Business", 1.0, "holding investment company stock revenue omaha", "Berkshire", CatCompany},
	{"company/walmart", "Walmart", "Business", 1.0, "retail stores company stock revenue shopping", "", CatCompany},
	{"company/coca_cola", "Coca-Cola", "Business|Food", 1.0, "beverage soda company stock revenue brand drink", "Coke", CatCompany},
	{"company/mcdonalds", "McDonald's", "Business|Dining", 1.0, "fast food restaurant company stock revenue burger", "McDonalds", CatCompany},

	// --- Scientists (Science) ---
	{"person/albert_einstein", "Albert Einstein", "Science", 1.0, "physics relativity nobel theory genius born discovered", "Einstein", CatScientist},
	{"person/isaac_newton", "Isaac Newton", "Science", 1.0, "physics gravity calculus laws motion born discovered", "Newton", CatScientist},
	{"person/marie_curie", "Marie Curie", "Science", 1.0, "physics chemistry radioactivity nobel born discovered", "Curie", CatScientist},
	{"person/charles_darwin", "Charles Darwin", "Science", 1.0, "evolution biology species natural selection born discovered", "Darwin", CatScientist},
	{"person/stephen_hawking", "Stephen Hawking", "Science", 1.0, "physics black holes cosmology cambridge born discovered", "Hawking", CatScientist},
	{"person/galileo_galilei", "Galileo Galilei", "Science", 1.0, "astronomy telescope physics italy born discovered", "Galileo", CatScientist},
	{"person/ada_lovelace", "Ada Lovelace", "Science|Computers", 1.0, "mathematician first programmer analytical engine born", "Lovelace", CatScientist},
	{"person/alan_turing", "Alan Turing", "Science|Computers", 1.0, "computer science enigma machine mathematician born", "Turing", CatScientist},
	{"person/richard_feynman", "Richard Feynman", "Science", 1.0, "physics quantum nobel diagrams born discovered", "Feynman", CatScientist},
	{"person/niels_bohr", "Niels Bohr", "Science", 1.0, "physics atom quantum nobel born discovered", "Bohr", CatScientist},
	{"person/rosalind_franklin", "Rosalind Franklin", "Science", 1.0, "dna crystallography biology born discovered", "Franklin", CatScientist},
	{"person/carl_sagan", "Carl Sagan", "Science|Entertain", 1.0, "astronomy cosmos television author born discovered", "Sagan", CatScientist},

	// --- Musicians (Entertain) ---
	{"music/the_beatles", "The Beatles", "Entertain", 1.0, "band music album song rock liverpool hit", "Beatles", CatMusician},
	{"person/michael_jackson", "Michael Jackson", "Entertain", 1.0, "singer music album song pop thriller hit", "", CatMusician},
	{"person/madonna", "Madonna", "Entertain", 1.0, "singer music album song pop hit", "", CatMusician},
	{"person/beyonce", "Beyoncé", "Entertain", 1.0, "singer music album song pop hit", "Beyonce", CatMusician},
	{"person/taylor_swift", "Taylor Swift", "Entertain", 1.0, "singer music album song pop country hit", "", CatMusician},
	{"person/elvis_presley", "Elvis Presley", "Entertain", 1.0, "singer music album song rock king hit", "Elvis", CatMusician},
	{"person/bob_dylan", "Bob Dylan", "Entertain|Arts", 1.0, "singer music album song folk nobel hit", "Dylan", CatMusician},
	{"person/adele", "Adele", "Entertain", 1.0, "singer music album song pop hit", "", CatMusician},
	{"person/eminem", "Eminem", "Entertain", 1.0, "rapper music album song hip hop hit", "", CatMusician},
	{"music/queen_band", "Queen", "Entertain", 0.6, "band music album song rock bohemian hit", "Queen", CatMusician},
	{"person/mozart", "Wolfgang Amadeus Mozart", "Entertain|Arts", 1.0, "composer music symphony classical opera", "Mozart", CatMusician},
	{"person/beethoven", "Ludwig van Beethoven", "Entertain|Arts", 1.0, "composer music symphony classical deaf", "Beethoven", CatMusician},
	{"person/freddie_mercury", "Freddie Mercury", "Entertain", 0.3, "singer music queen band song rock hit", "Mercury", CatMusician},

	// --- Other athletes (Sports) ---
	{"person/lionel_messi", "Lionel Messi", "Sports", 1.0, "soccer football barcelona goals argentina player", "Messi", CatAthlete},
	{"person/cristiano_ronaldo", "Cristiano Ronaldo", "Sports", 1.0, "soccer football madrid goals portugal player", "Ronaldo", CatAthlete},
	{"person/serena_williams", "Serena Williams", "Sports", 1.0, "tennis grand slam titles player", "", CatAthlete},
	{"person/roger_federer", "Roger Federer", "Sports", 1.0, "tennis grand slam titles player", "Federer", CatAthlete},
	{"person/usain_bolt", "Usain Bolt", "Sports", 1.0, "sprinter olympics record fastest jamaica", "Bolt", CatAthlete},
	{"person/tiger_woods", "Tiger Woods", "Sports", 1.0, "golf majors masters player", "", CatAthlete},
	{"person/tom_brady", "Tom Brady", "Sports", 1.0, "football nfl quarterback super bowl player", "Brady", CatAthlete},
	{"person/muhammad_ali", "Muhammad Ali", "Sports", 1.0, "boxing heavyweight champion greatest", "Ali", CatAthlete},
	{"person/pele", "Pelé", "Sports", 1.0, "soccer football brazil goals world cup player", "Pele", CatAthlete},
	{"person/diego_maradona", "Diego Maradona", "Sports", 1.0, "soccer football argentina goals world cup player", "Maradona", CatAthlete},
	{"team/atalanta", "Atalanta BC", "Sports", 1.0, "soccer football calcio italy club team serie", "Atalanta|Atalanta calcio", ""},
	{"team/real_madrid", "Real Madrid", "Sports", 1.0, "soccer football spain club team champions", "", ""},
	{"team/fc_barcelona", "FC Barcelona", "Sports", 1.0, "soccer football spain club team champions", "Barcelona FC|Barca", ""},
	{"org/harlem_globetrotters", "Harlem Globetrotters", "Sports|Entertain", 1.0, "basketball exhibition team whistle show tricks", "Globetrotters", ""},

	// --- Cities & places (Travel; ambiguity fodder) ---
	{"city/paris", "Paris", "Travel", 0.8, "city france capital eiffel visit tourism", "", CatCity},
	{"person/paris_hilton", "Paris Hilton", "Entertain", 0.2, "celebrity heiress television star", "Paris", ""},
	{"city/london", "London", "Travel", 1.0, "city england capital thames visit tourism", "", CatCity},
	{"city/new_york_city", "New York City", "Travel", 1.0, "city manhattan visit tourism skyline", "New York|NYC", CatCity},
	{"city/tokyo", "Tokyo", "Travel", 1.0, "city japan capital visit tourism", "", CatCity},
	{"city/rome", "Rome", "Travel", 1.0, "city italy capital colosseum visit tourism", "", CatCity},
	{"city/phoenix_city", "Phoenix", "Travel", 0.3, "city arizona desert visit", "Phoenix", CatCity},
	{"city/kobe_city", "Kobe", "Travel", 0.15, "city japan port visit earthquake", "Kobe", CatCity},
	{"city/washington_dc", "Washington, D.C.", "Travel|Politics", 0.4, "city capital united states monuments visit", "Washington|Washington DC", CatCity},

	// --- Animals & nature (ambiguity fodder) ---
	{"animal/jaguar_animal", "Jaguar (animal)", "Pets|Environment", 0.45, "animal cat wild rainforest predator species", "Jaguar", ""},
	{"animal/python_snake", "Python (snake)", "Pets|Environment", 0.4, "snake reptile animal species constrictor", "Python", ""},
	{"tech/python_language", "Python (language)", "Computers", 0.6, "programming language code software developer script", "Python", ""},
	{"tech/java_language", "Java (language)", "Computers", 0.6, "programming language code software developer virtual machine", "Java", ""},
	{"geo/java_island", "Java (island)", "Travel", 0.4, "island indonesia jakarta visit volcano", "Java", ""},
	{"space/mercury_planet", "Mercury (planet)", "Science", 0.5, "planet solar system orbit astronomy smallest", "Mercury", ""},
	{"chem/mercury_element", "Mercury (element)", "Science", 0.2, "element metal liquid chemistry toxic thermometer", "Mercury", ""},

	// --- TV & misc entertainment used by the QA generator ---
	{"tv/the_simpsons", "The Simpsons", "Entertain", 1.0, "television cartoon episode springfield show animated", "Simpsons", ""},
	{"tv/game_of_thrones", "Game of Thrones", "Entertain", 1.0, "television series episode fantasy show hbo", "", ""},
	{"tv/friends", "Friends", "Entertain", 0.8, "television sitcom episode show new york", "", ""},
	{"country/soviet_union", "Soviet Union", "Politics|Society", 1.0, "ussr communist history russia cold war state", "USSR", ""},
}

var (
	defaultOnce sync.Once
	defaultKB   *KB
	defaultErr  error
	defaultCats map[string][]string
)

// Default returns the curated default knowledge base over YahooDomains.
// The same instance is returned to every caller; it must be treated as
// read-only.
func Default() (*KB, error) {
	defaultOnce.Do(buildDefault)
	return defaultKB, defaultErr
}

// MustDefault is Default that panics on error.
func MustDefault() *KB {
	k, err := Default()
	if err != nil {
		panic(err)
	}
	return k
}

// CategoryMembers returns the concept names of the default catalogue that
// belong to the given category (CatNBAPlayer, CatFood, ...), in catalogue
// order. Used by the dataset generators to phrase tasks with real entities.
func CategoryMembers(cat string) []string {
	defaultOnce.Do(buildDefault)
	return append([]string(nil), defaultCats[cat]...)
}

func buildDefault() {
	domains, err := model.NewDomainSet(YahooDomains)
	if err != nil {
		defaultErr = err
		return
	}
	k := New(domains)
	cats := make(map[string][]string)
	for _, e := range catalog {
		var dom []int
		for _, name := range strings.Split(e.domains, "|") {
			idx, ok := domains.Index(name)
			if !ok {
				defaultErr = fmt.Errorf("kb: catalogue entry %q names unknown domain %q", e.id, name)
				return
			}
			dom = append(dom, idx)
		}
		c := &Concept{
			ID:      e.id,
			Name:    e.name,
			Domains: dom,
			Prior:   e.prior,
			Context: strings.Fields(e.context),
		}
		if err := k.AddConcept(c); err != nil {
			defaultErr = err
			return
		}
		if e.aliases != "" {
			for _, a := range strings.Split(e.aliases, "|") {
				if err := k.AddAlias(a, e.id); err != nil {
					defaultErr = err
					return
				}
			}
		}
		if e.cat != "" {
			cats[e.cat] = append(cats[e.cat], e.name)
		}
	}
	defaultKB = k
	defaultCats = cats
}
