package kb

import (
	"testing"

	"docs/internal/model"
)

func smallKB(t *testing.T) *KB {
	t.Helper()
	ds := model.MustDomainSet([]string{"politics", "sports", "films"})
	k := New(ds)
	add := func(c *Concept) {
		t.Helper()
		if err := k.AddConcept(c); err != nil {
			t.Fatal(err)
		}
	}
	add(&Concept{ID: "mj_player", Name: "Michael Jordan", Domains: []int{1, 2}, Prior: 0.7})
	add(&Concept{ID: "mj_prof", Name: "Michael I. Jordan", Domains: []int{0}, Prior: 0.2})
	add(&Concept{ID: "mj_actor", Name: "Michael B. Jordan", Domains: []int{2}, Prior: 0.1})
	if err := k.AddAlias("Michael Jordan", "mj_prof"); err != nil {
		t.Fatal(err)
	}
	if err := k.AddAlias("Michael Jordan", "mj_actor"); err != nil {
		t.Fatal(err)
	}
	return k
}

func TestIndicator(t *testing.T) {
	c := &Concept{ID: "x", Name: "X", Domains: []int{1, 2}, Prior: 1}
	h := c.Indicator(3)
	want := []float64{0, 1, 1}
	for i := range want {
		if h[i] != want[i] {
			t.Errorf("Indicator[%d] = %g, want %g", i, h[i], want[i])
		}
	}
}

func TestCandidatesOrderedByPrior(t *testing.T) {
	k := smallKB(t)
	cands := k.Candidates("michael  JORDAN")
	if len(cands) != 3 {
		t.Fatalf("got %d candidates, want 3", len(cands))
	}
	wantOrder := []string{"mj_player", "mj_prof", "mj_actor"}
	for i, id := range wantOrder {
		if cands[i].ID != id {
			t.Errorf("candidate %d = %q, want %q", i, cands[i].ID, id)
		}
	}
}

func TestCandidatesUnknown(t *testing.T) {
	k := smallKB(t)
	if got := k.Candidates("nonexistent entity"); got != nil {
		t.Errorf("Candidates(unknown) = %v, want nil", got)
	}
}

func TestAddConceptErrors(t *testing.T) {
	ds := model.MustDomainSet([]string{"a", "b"})
	k := New(ds)
	if err := k.AddConcept(&Concept{ID: "", Name: "x", Domains: []int{0}, Prior: 1}); err == nil {
		t.Error("empty ID accepted")
	}
	if err := k.AddConcept(&Concept{ID: "c", Name: "x", Domains: nil, Prior: 1}); err == nil {
		t.Error("no domains accepted")
	}
	if err := k.AddConcept(&Concept{ID: "c", Name: "x", Domains: []int{5}, Prior: 1}); err == nil {
		t.Error("out-of-range domain accepted")
	}
	if err := k.AddConcept(&Concept{ID: "c", Name: "x", Domains: []int{0}, Prior: 0}); err == nil {
		t.Error("zero prior accepted")
	}
	if err := k.AddConcept(&Concept{ID: "c", Name: "x", Domains: []int{0}, Prior: 1}); err != nil {
		t.Fatalf("valid concept rejected: %v", err)
	}
	if err := k.AddConcept(&Concept{ID: "c", Name: "y", Domains: []int{0}, Prior: 1}); err == nil {
		t.Error("duplicate ID accepted")
	}
	if err := k.AddAlias("z", "missing"); err == nil {
		t.Error("alias to unknown concept accepted")
	}
	if err := k.AddAlias("  ", "c"); err == nil {
		t.Error("blank alias accepted")
	}
}

func TestAliasDeduplication(t *testing.T) {
	k := smallKB(t)
	if err := k.AddAlias("michael jordan", "mj_player"); err != nil {
		t.Fatal(err)
	}
	if got := len(k.Candidates("Michael Jordan")); got != 3 {
		t.Errorf("after duplicate alias: %d candidates, want 3", got)
	}
}

func TestNormalizeMention(t *testing.T) {
	if got := NormalizeMention("  Stephen   CURRY "); got != "stephen curry" {
		t.Errorf("NormalizeMention = %q", got)
	}
}

func TestDefaultKB(t *testing.T) {
	k, err := Default()
	if err != nil {
		t.Fatal(err)
	}
	if k.Domains().Size() != 26 {
		t.Errorf("default KB has %d domains, want 26", k.Domains().Size())
	}
	if k.NumConcepts() < 200 {
		t.Errorf("default KB has %d concepts, want >= 200", k.NumConcepts())
	}
	// The paper's running example: "Michael Jordan" must be ambiguous across
	// the player, the professor, and the actor.
	cands := k.Candidates("Michael Jordan")
	if len(cands) != 3 {
		t.Fatalf("Michael Jordan has %d candidates, want 3", len(cands))
	}
	if cands[0].ID != "person/michael_jordan" {
		t.Errorf("top candidate = %q, want the player", cands[0].ID)
	}
	// NBA maps to both the basketball league and the bar association.
	if got := len(k.Candidates("NBA")); got != 2 {
		t.Errorf("NBA has %d candidates, want 2", got)
	}
	// Kobe is ambiguous: player alias, beef, and city.
	if got := len(k.Candidates("Kobe")); got != 3 {
		t.Errorf("Kobe has %d candidates, want 3", got)
	}
	// Every concept's indicator vector is over the 26 domains.
	sports, ok := k.Domains().Index("Sports")
	if !ok {
		t.Fatal("Sports domain missing")
	}
	h := k.Concept("person/kobe_bryant").Indicator(26)
	if h[sports] != 1 {
		t.Error("Kobe Bryant not related to Sports")
	}
}

func TestDefaultKBCategories(t *testing.T) {
	for _, cat := range []string{CatNBAPlayer, CatFood, CatCar, CatCountry, CatMountain, CatFilm} {
		if n := len(CategoryMembers(cat)); n < 10 {
			t.Errorf("category %q has %d members, want >= 10", cat, n)
		}
	}
	members := CategoryMembers(CatNBAPlayer)
	members[0] = "mutated"
	if CategoryMembers(CatNBAPlayer)[0] == "mutated" {
		t.Error("CategoryMembers leaked internal slice")
	}
}

func TestDefaultKBIsSingleton(t *testing.T) {
	a, _ := Default()
	b, _ := Default()
	if a != b {
		t.Error("Default returned different instances")
	}
}

func TestMaxAliasWords(t *testing.T) {
	k := MustDefault()
	if n := k.MaxAliasWords(); n < 3 {
		t.Errorf("MaxAliasWords = %d, want >= 3 (e.g. 'Golden State Warriors')", n)
	}
}
