package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// A checkpoint compacts the replayed prefix of the log into one file so
// fully-covered segments can be deleted (TruncateBefore). It stores the
// record stream itself, not a serialized engine state: the serving core's
// canonical state is *defined* as the serial replay of its answer log, and
// replaying the checkpointed prefix reproduces that state bit-for-bit —
// float-by-float snapshots of LIVE state could drift from the replay the
// equivalence proofs are anchored to. The checkpoint consolidates
// segments, it does not shrink the stream, so a checkpoint alone leaves
// recovery linear in campaign size; O(suffix) boot is provided one layer
// up by state snapshots (docs/internal/snapshot), which sidestep the
// drift objection by serializing a serial shadow replica of this very
// record stream.
//
// File layout: an 8-byte magic, then frames — the same length+CRC encoding
// as a segment, in strictly increasing sequence order:
//
//	magic "DOCSCKP2" | frame | frame | ...
//
// The file is extended in place by ExtendCheckpoint (append + fsync), so
// growing it costs O(new records), not a rewrite of the prefix. A crash
// mid-extend leaves a torn final frame; because segment truncation only
// happens after a successful extend, the torn records still live in the
// segments and recovery is whole. Torn-tail tolerance follows the segment
// rule: a frame cut short by EOF is a tear, bytes present-but-wrong are
// corruption.

const (
	checkpointName = "checkpoint"
	ckptMagic      = "DOCSCKP2"
)

// Checkpoint is a decoded checkpoint file.
type Checkpoint struct {
	// LastSeq is the highest sequence number the checkpoint covers;
	// recovery replays it first, then WAL records with Seq > LastSeq.
	LastSeq uint64
	// Records is the covered prefix of the log, in sequence order.
	Records []Record
	// TornTail is true when the file ended in a torn frame (an interrupted
	// extend); the dropped records are still in the WAL segments.
	TornTail bool
	// ValidBytes is the byte length of the intact prefix (magic + whole
	// frames) — where the next extend appends.
	ValidBytes int64
}

// WriteCheckpoint atomically replaces the log directory's checkpoint with
// the given records (temp file, fsync, rename, directory fsync). records
// must be in strictly increasing sequence order ending at lastSeq.
// ExtendCheckpoint is the incremental path; this full rewrite serves
// first-time creation and test fabrication.
func WriteCheckpoint(dir string, lastSeq uint64, records []Record) error {
	if n := len(records); n > 0 && records[n-1].Seq != lastSeq {
		return fmt.Errorf("wal: checkpoint ends at seq %d, caller claims %d", records[n-1].Seq, lastSeq)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	var buf bytes.Buffer
	buf.WriteString(ckptMagic)
	var frame []byte
	for _, rec := range records {
		frame = rec.appendFrame(frame[:0])
		buf.Write(frame)
	}
	tmp, err := os.CreateTemp(dir, ".checkpoint-*")
	if err != nil {
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	if err := os.Rename(tmpName, filepath.Join(dir, checkpointName)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	return syncDir(dir)
}

// ExtendCheckpoint appends records at the known tail of the directory's
// checkpoint (creating the file when lastSeq and validBytes are zero) and
// fsyncs; the cost is O(new records), independent of the prefix length.
// Callers track (lastSeq, validBytes) across passes — ReadCheckpoint
// provides both after a restart. Anything past validBytes (a torn tail
// from an interrupted extend) is truncated away first; the records it
// carried are still in the segments, which callers truncate only after
// this returns successfully. records must continue the sequence order.
func ExtendCheckpoint(dir string, lastSeq uint64, validBytes int64, records []Record) (newLastSeq uint64, newValidBytes int64, err error) {
	if len(records) == 0 {
		return lastSeq, validBytes, nil
	}
	if records[0].Seq <= lastSeq {
		return lastSeq, validBytes, fmt.Errorf("wal: checkpoint extend: record seq %d does not continue %d", records[0].Seq, lastSeq)
	}
	newLastSeq = records[len(records)-1].Seq
	if validBytes == 0 {
		if err := WriteCheckpoint(dir, newLastSeq, records); err != nil {
			return lastSeq, validBytes, err
		}
		n := int64(len(ckptMagic))
		var frame []byte
		for _, rec := range records {
			frame = rec.appendFrame(frame[:0])
			n += int64(len(frame))
		}
		return newLastSeq, n, nil
	}
	f, err := os.OpenFile(filepath.Join(dir, checkpointName), os.O_RDWR, 0o644)
	if err != nil {
		return lastSeq, validBytes, fmt.Errorf("wal: checkpoint: %w", err)
	}
	defer f.Close()
	if err := f.Truncate(validBytes); err != nil {
		return lastSeq, validBytes, fmt.Errorf("wal: checkpoint: %w", err)
	}
	var buf []byte
	for _, rec := range records {
		buf = rec.appendFrame(buf)
	}
	if _, err := f.WriteAt(buf, validBytes); err != nil {
		return lastSeq, validBytes, fmt.Errorf("wal: checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		return lastSeq, validBytes, fmt.Errorf("wal: checkpoint: %w", err)
	}
	return newLastSeq, validBytes + int64(len(buf)), nil
}

// ReadCheckpoint loads the directory's checkpoint, or returns (nil, nil)
// when none exists. A torn final frame (interrupted extend) is dropped and
// reported via Checkpoint.TornTail; present-but-wrong bytes — CRC
// mismatch, absurd length, undecodable payload, out-of-order sequence —
// are corruption.
func ReadCheckpoint(dir string) (*Checkpoint, error) {
	data, err := os.ReadFile(filepath.Join(dir, checkpointName))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("wal: checkpoint: %w", err)
	}
	return decodeCheckpoint(data)
}

func decodeCheckpoint(data []byte) (*Checkpoint, error) {
	if len(data) < len(ckptMagic) || string(data[:len(ckptMagic)]) != ckptMagic {
		return nil, fmt.Errorf("%w: checkpoint header", ErrCorrupt)
	}
	cp := &Checkpoint{ValidBytes: int64(len(ckptMagic))}
	torn, err := DecodeFrames(data[len(ckptMagic):], func(payload []byte) error {
		rec, err := Decode(payload)
		if err != nil {
			return fmt.Errorf("%w: checkpoint: %v", ErrCorrupt, err)
		}
		if rec.Seq <= cp.LastSeq {
			return fmt.Errorf("%w: checkpoint seq %d after %d", ErrCorrupt, rec.Seq, cp.LastSeq)
		}
		cp.LastSeq = rec.Seq
		cp.Records = append(cp.Records, rec)
		cp.ValidBytes += frameHeaderLen + int64(len(payload))
		return nil
	})
	if err != nil {
		return nil, err
	}
	cp.TornTail = torn
	return cp, nil
}
