// Wire batch bodies: the binary encoding of a batched answer submit.
//
// The batch endpoint's binary content type reuses this package's frame
// codec (length + CRC32-C + canonical-varint payload), so the wire format
// and the durable format share one encoder/decoder and one fuzz surface
// (FuzzBatchDecode): a body accepted off the network is byte-for-byte a
// sequence of the same frames the WAL replays after a crash. A batch body
// is also exactly the blob a KindBatch record carries, which is what makes
// a batched submit one durable frame — all-or-nothing under the torn-tail
// rule — instead of N.
//
// Layout:
//
//	magic "DBB1" (4 bytes) | frame(item 1) | frame(item 2) | ...
//
// where each frame payload is a KindAnswer record whose Seq is the item's
// 1-based position in the batch. Positions make the encoding canonical
// (decode rejects any other Seq, so one batch has exactly one encoding)
// and give torn or reordered bodies no way to alias a shorter batch.
package wal

import (
	"bytes"
	"fmt"
)

// batchMagic opens every binary batch body. Versioned: a future layout
// bumps the trailing byte.
var batchMagic = []byte("DBB1")

// BatchOverhead is the fixed byte cost of a batch body before its items.
const BatchOverhead = len("DBB1")

// EncodeBatch appends the wire encoding of a batch of answers to dst.
// Only the Worker/Task/Choice fields of each item are encoded; Seq and
// Kind are derived from the item's position (callers need not set them).
//
//docs:deterministic
func EncodeBatch(dst []byte, items []Record) []byte {
	dst = append(dst, batchMagic...)
	var payload []byte
	for i, it := range items {
		it.Kind = KindAnswer
		it.Seq = uint64(i + 1)
		it.Blob = nil
		payload = it.encode(payload[:0])
		dst = EncodeFrame(dst, payload)
	}
	return dst
}

// DecodeBatch parses a wire batch body, materializing at most max items
// (max <= 0 means no bound). Frames past the bound are still walked and
// CRC-checked but only counted — extra reports how many were clamped off —
// so a client-chosen batch size can never drive the server's allocation
// past the configured bound (the same contract as the ?k= clamp; the
// alloc-pinned test holds it). A torn, corrupt, or non-canonical body is
// rejected whole: unlike the WAL's recovery walk, the wire has no crash
// excuse for a half-frame.
func DecodeBatch(data []byte, max int) (items []Record, extra int, err error) {
	if !bytes.HasPrefix(data, batchMagic) {
		return nil, 0, fmt.Errorf("wal: batch body lacks magic %q", batchMagic)
	}
	pos := 0
	torn, err := DecodeFrames(data[len(batchMagic):], func(payload []byte) error {
		pos++
		if max > 0 && pos > max {
			extra++
			return nil
		}
		rec, err := Decode(payload)
		if err != nil {
			return fmt.Errorf("batch item %d: %w", pos, err)
		}
		if rec.Kind != KindAnswer {
			return fmt.Errorf("batch item %d: kind %d, want answer", pos, rec.Kind)
		}
		if rec.Seq != uint64(pos) {
			return fmt.Errorf("batch item %d: position tag %d (non-canonical)", pos, rec.Seq)
		}
		items = append(items, rec)
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	if torn {
		return nil, 0, fmt.Errorf("wal: batch body ends in a torn frame")
	}
	return items, extra, nil
}
