// Package wal is the durable answer log of the DOCS serving core: a
// segmented, CRC-checked write-ahead log whose replay reconstructs a
// campaign exactly.
//
// The paper keeps worker quality vectors and task truth in the system
// database so campaigns survive requesters coming and going; this package
// is the reproduction's equivalent for the serving state that PR 1 moved
// into memory. Every accepted Submit appends one record; recovery replays
// the records through the orchestrator's serial submit path, and because
// the concurrent serving core was proven equivalent to a serial replay of
// its chronological answer log, the recovered state is exact by
// construction rather than by approximation.
//
// # On-disk format
//
// A log is a directory of segment files named <firstSeq:016x>.wal. Each
// segment is a sequence of frames:
//
//	+----------------+----------------+=================+
//	| length (u32le) | CRC32-C (u32le)|  payload bytes  |
//	+----------------+----------------+=================+
//
// The CRC covers the payload only. A frame whose bytes end before the
// length it declares (writes deliver prefixes, so this is what a crashed
// append leaves behind) is a torn write: at the tail of the last segment
// it is expected and silently dropped — the submit it carried was never
// acknowledged durable — and anywhere else it is corruption. A frame whose
// bytes are all present but wrong (CRC mismatch, absurd length,
// undecodable payload) cannot come from a torn append and always fails
// replay loudly, so rot never silently truncates acknowledged records.
//
// Payloads are records (see Record): a kind byte followed by kind-specific
// fields in uvarint/raw-byte encoding. The encoding is deterministic —
// byte-for-byte reproducible from the record — which the golden-format
// test pins down so the format cannot drift silently.
//
// # Group commit
//
// Append enqueues the encoded record under a short lock and then waits for
// the background flusher to write its batch; concurrent appenders share
// one write (and one fsync, when SyncEveryBatch is set) per batch, so the
// sharded ingest path keeps its throughput. Durability levels:
//
//	SyncNever      frames reach the OS on every batch flush; fsync only on
//	               segment rotation and Close. Survives process crashes,
//	               not power loss.
//	SyncEveryBatch one fsync per group-commit batch. Survives power loss
//	               at the cost of one fsync amortized over the batch.
//
// Append returns only after the record's batch reached the chosen level,
// so an acknowledged submit is durable under the configured contract.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// SyncPolicy selects the durability level of Append.
type SyncPolicy int

const (
	// SyncNever writes batches to the OS without fsync (fsync still runs on
	// rotation and Close).
	SyncNever SyncPolicy = iota
	// SyncEveryBatch fsyncs once per group-commit batch.
	SyncEveryBatch
)

// Options tunes a Log. The zero value is ready to use.
type Options struct {
	// SegmentBytes rotates to a new segment once the active one exceeds
	// this size (default 8 MiB, minimum 1 KiB).
	SegmentBytes int64
	// Sync is the durability level (default SyncNever).
	Sync SyncPolicy
}

const (
	defaultSegmentBytes = 8 << 20
	minSegmentBytes     = 1 << 10
	segmentSuffix       = ".wal"
	frameHeaderLen      = 8
	// MaxPayload bounds a single record; the length prefix of a frame
	// claiming more is treated as corruption, which keeps the decoder from
	// allocating attacker-controlled amounts.
	MaxPayload = 16 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by Append after Close.
var ErrClosed = errors.New("wal: log closed")

// ErrCorrupt wraps frame-level corruption found before the final torn tail.
var ErrCorrupt = errors.New("wal: corrupt record")

// Log is an open write-ahead log. It is safe for concurrent Append.
type Log struct {
	dir  string
	opts Options

	mu      sync.Mutex
	cond    *sync.Cond // broadcast when flushed or err advances
	buf     []byte     // encoded frames waiting for the flusher
	seq     uint64     // last assigned sequence number
	pending uint64     // last sequence number sitting in buf
	flushed uint64     // last sequence number durable per policy
	err     error      // sticky: first I/O failure poisons the log
	closed  bool

	// ioMu guards the active-segment file handle across the flusher's
	// writes/rotations and Sync/Close's fsyncs. Lock order: ioMu before mu,
	// never the reverse.
	ioMu sync.Mutex
	f    *os.File // active segment
	size int64    // bytes written to the active segment

	flusherC    chan struct{}
	done        chan struct{}
	flusherDone chan struct{}
}

// Open opens (creating if needed) the log directory and positions the
// writer after the last valid record. It does NOT replay records — use
// Replay first when recovering, then Open to continue appending. If the
// last segment ends in a torn frame the tail is truncated away so new
// frames never follow garbage.
func Open(dir string, opts Options) (*Log, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSegmentBytes
	}
	if opts.SegmentBytes < minSegmentBytes {
		opts.SegmentBytes = minSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	segs, err := segments(dir)
	if err != nil {
		return nil, err
	}
	l := &Log{
		dir: dir, opts: opts,
		flusherC:    make(chan struct{}, 1),
		done:        make(chan struct{}),
		flusherDone: make(chan struct{}),
	}
	l.cond = sync.NewCond(&l.mu)

	// The writer must never assign a sequence number the checkpoint already
	// covers — recovery skips those as checkpointed, silently dropping the
	// new records. The checkpoint can be AHEAD of the segments: it snapshots
	// reserved records whose group-commit batch may not have landed before a
	// crash. So numbering continues from max(segment tail, checkpoint).
	var cpSeq uint64
	if cp, err := ReadCheckpoint(dir); err != nil {
		return nil, err
	} else if cp != nil {
		cpSeq = cp.LastSeq
	}

	if len(segs) == 0 {
		first := cpSeq + 1
		l.seq, l.pending, l.flushed = cpSeq, cpSeq, cpSeq
		if err := l.openSegment(first); err != nil {
			return nil, err
		}
	} else {
		// Scan the last segment to find the end of valid data and the last
		// sequence number; truncate a torn tail in place.
		last := segs[len(segs)-1]
		lastSeq := last.firstSeq - 1
		end := int64(0)
		serr := ScanSegment(filepath.Join(dir, last.name), func(rec Record, _, off int64) error {
			lastSeq = rec.Seq
			end = off
			return nil
		})
		if serr != nil && !errors.Is(serr, errTornTail) {
			return nil, serr
		}
		if cpSeq > lastSeq {
			lastSeq = cpSeq
		}
		f, err := os.OpenFile(filepath.Join(dir, last.name), os.O_RDWR, 0o644)
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		if err := f.Truncate(end); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: %w", err)
		}
		if _, err := f.Seek(end, io.SeekStart); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: %w", err)
		}
		l.f, l.size = f, end
		l.seq, l.pending, l.flushed = lastSeq, lastSeq, lastSeq
	}
	go l.flusher()
	return l, nil
}

// Pending is a reservation handed out by Reserve: the record has a
// sequence number and sits in the flusher's queue, but is not yet durable.
type Pending struct {
	l   *Log
	seq uint64
}

// Seq returns the reserved sequence number.
func (p Pending) Seq() uint64 { return p.seq }

// Wait blocks until the reservation's group-commit batch is durable per
// the sync policy (or the log is poisoned by an I/O error).
func (p Pending) Wait() error {
	l := p.l
	l.mu.Lock()
	for l.flushed < p.seq && l.err == nil {
		l.cond.Wait()
	}
	landed := l.flushed >= p.seq // batch made it down before any failure
	err := l.err
	l.mu.Unlock()
	if landed {
		return nil
	}
	return err
}

// Reserve encodes the record, assigns it the next sequence number and
// queues it for the flusher without waiting. Callers that need an ordering
// guarantee relative to their own state can Reserve under their own lock —
// reservation order is durable order — and Wait outside it, preserving
// group-commit batching. Record.Seq is ignored on input.
func (l *Log) Reserve(rec Record) (Pending, error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return Pending{}, ErrClosed
	}
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return Pending{}, err
	}
	l.seq++
	rec.Seq = l.seq
	seq := l.seq
	l.buf = rec.appendFrame(l.buf)
	l.pending = seq
	l.mu.Unlock()
	select {
	case l.flusherC <- struct{}{}:
	default: // a wakeup is already queued; the flusher will see our bytes
	}
	return Pending{l: l, seq: seq}, nil
}

// Append is Reserve followed by Wait: it blocks until the record's
// group-commit batch is durable and returns the assigned sequence number.
func (l *Log) Append(rec Record) (uint64, error) {
	p, err := l.Reserve(rec)
	if err != nil {
		return 0, err
	}
	return p.seq, p.Wait()
}

// LastSeq returns the sequence number of the last durable record.
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushed
}

// ReservedSeq returns the last assigned sequence number — reservations
// included, durable or not. On a quiescent log (no reservation in flight)
// it is the sequence the next record will follow, which is what a state
// snapshot of a quiescent system covers.
func (l *Log) ReservedSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Sync flushes any pending batch and fsyncs the active segment.
func (l *Log) Sync() error {
	l.mu.Lock()
	for l.flushed < l.pending && l.err == nil {
		l.cond.Wait()
	}
	err := l.err
	l.mu.Unlock()
	if err != nil {
		return err
	}
	l.ioMu.Lock()
	defer l.ioMu.Unlock()
	if l.f == nil {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return l.poison(err)
	}
	return nil
}

// Close flushes, fsyncs and closes the log. Appends after Close fail with
// ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		<-l.flusherDone
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	close(l.done)
	<-l.flusherDone // the flusher drains the buffer before exiting
	l.mu.Lock()
	err := l.err
	l.mu.Unlock()
	l.ioMu.Lock()
	defer l.ioMu.Unlock()
	if l.f != nil {
		if serr := l.f.Sync(); err == nil {
			err = serr
		}
		if cerr := l.f.Close(); err == nil {
			err = cerr
		}
		l.f = nil
	}
	return err
}

// TruncateBefore deletes every segment whose records all have sequence
// numbers <= seq (typically a checkpoint's last covered sequence). The
// active segment is never deleted. Replay after truncation may still see
// records <= seq in the surviving segments; recovery skips them.
func (l *Log) TruncateBefore(seq uint64) error {
	segs, err := segments(l.dir)
	if err != nil {
		return err
	}
	for i := 0; i+1 < len(segs); i++ {
		// Segment i spans [segs[i].firstSeq, segs[i+1].firstSeq); it is
		// fully covered when the next segment starts at or below seq+1.
		if segs[i+1].firstSeq <= seq+1 {
			if err := os.Remove(filepath.Join(l.dir, segs[i].name)); err != nil {
				return fmt.Errorf("wal: truncate: %w", err)
			}
		}
	}
	return nil
}

// poison records the first I/O error and wakes every waiter.
func (l *Log) poison(err error) error {
	l.mu.Lock()
	if l.err == nil {
		l.err = fmt.Errorf("wal: %w", err)
	}
	err = l.err
	l.cond.Broadcast()
	l.mu.Unlock()
	return err
}

// flusher is the group-commit loop: it grabs whatever frames accumulated
// since its last pass, writes them in one syscall, fsyncs per policy,
// rotates full segments, then wakes the appenders it covered.
func (l *Log) flusher() {
	defer close(l.flusherDone)
	for {
		select {
		case <-l.done:
		case <-l.flusherC:
		}
		l.mu.Lock()
		batch := l.buf
		upTo := l.pending
		l.buf = nil
		closed := l.closed
		l.mu.Unlock()
		if len(batch) > 0 {
			err := l.writeBatch(batch, upTo)
			l.mu.Lock()
			if err != nil {
				if l.err == nil {
					l.err = fmt.Errorf("wal: %w", err)
				}
			} else {
				l.flushed = upTo
			}
			l.cond.Broadcast()
			l.mu.Unlock()
		}
		if closed {
			// Append fails once closed is set, so the buffer cannot grow
			// again: one more pass drains anything that raced in.
			l.mu.Lock()
			empty := len(l.buf) == 0
			l.mu.Unlock()
			if empty {
				return
			}
		}
	}
}

// writeBatch lands one group-commit batch ending at sequence upTo.
func (l *Log) writeBatch(batch []byte, upTo uint64) error {
	l.ioMu.Lock()
	defer l.ioMu.Unlock()
	if _, err := l.f.Write(batch); err != nil {
		return err
	}
	l.size += int64(len(batch))
	if l.opts.Sync == SyncEveryBatch {
		if err := l.f.Sync(); err != nil {
			return err
		}
	}
	if l.size >= l.opts.SegmentBytes {
		return l.rotate(upTo + 1)
	}
	return nil
}

// rotate seals the active segment (fsync + close) and opens the next one,
// named by the first sequence number it will hold. Callers hold ioMu.
func (l *Log) rotate(nextSeq uint64) error {
	if err := l.f.Sync(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	return l.openSegment(nextSeq)
}

func (l *Log) openSegment(firstSeq uint64) error {
	name := filepath.Join(l.dir, fmt.Sprintf("%016x%s", firstSeq, segmentSuffix))
	f, err := os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	// Persist the directory entry: fsyncing the file alone does not make
	// its existence durable, and a segment that vanishes on power loss
	// takes every fsynced record inside it along.
	if err := syncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	l.f, l.size = f, 0
	return nil
}

// --- segment discovery and replay ---

type segmentInfo struct {
	name     string
	firstSeq uint64
}

func segments(dir string) ([]segmentInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var segs []segmentInfo
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, segmentSuffix) {
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimSuffix(name, segmentSuffix), 16, 64)
		if err != nil {
			return nil, fmt.Errorf("wal: alien file %q in log directory", name)
		}
		segs = append(segs, segmentInfo{name: name, firstSeq: seq})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].firstSeq < segs[j].firstSeq })
	return segs, nil
}

// syncDir fsyncs a directory so renames into it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

// errTornTail is ScanSegment's signal that the segment ends mid-frame.
var errTornTail = errors.New("wal: torn tail")

// ScanSegment decodes one segment file, calling fn for every valid record
// with the byte offsets [start, end) of its frame.
//
// It distinguishes two failure shapes. A crashed append leaves a PREFIX of
// the intended bytes at end-of-file (writes deliver prefixes), so a frame
// whose header or payload extends past EOF is a torn tail, reported as
// errTornTail (wrapped) — callers tolerate it in the final segment. Bytes
// that are all present but wrong — a CRC mismatch, an absurd length field,
// an undecodable payload — cannot come from a torn append; they are rot or
// tampering and are reported as ErrCorrupt so acknowledged records after
// them are never silently truncated away. Exported for diagnostic tooling
// and the crash-injection harness.
func ScanSegment(path string, fn func(rec Record, start, end int64) error) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	off := int64(0)
	for int(off) < len(data) {
		rest := data[off:]
		if len(rest) < frameHeaderLen {
			return fmt.Errorf("%s: truncated header at %d: %w", path, off, errTornTail)
		}
		n := binary.LittleEndian.Uint32(rest)
		crc := binary.LittleEndian.Uint32(rest[4:])
		if n > MaxPayload {
			return fmt.Errorf("%w: %s: frame length %d at %d", ErrCorrupt, path, n, off)
		}
		if len(rest) < frameHeaderLen+int(n) {
			return fmt.Errorf("%s: truncated payload at %d: %w", path, off, errTornTail)
		}
		payload := rest[frameHeaderLen : frameHeaderLen+int(n)]
		if crc32.Checksum(payload, castagnoli) != crc {
			return fmt.Errorf("%w: %s: CRC mismatch at %d", ErrCorrupt, path, off)
		}
		rec, err := Decode(payload)
		if err != nil {
			return fmt.Errorf("%w: %s: offset %d: %v", ErrCorrupt, path, off, err)
		}
		end := off + frameHeaderLen + int64(n)
		if err := fn(rec, off, end); err != nil {
			return err
		}
		off = end
	}
	return nil
}

// ReplayStats summarizes a Replay pass.
type ReplayStats struct {
	// Records is the number of valid records delivered to the callback.
	Records int
	// LastSeq is the sequence number of the last valid record (0 if none).
	LastSeq uint64
	// TornTail is true when the final segment ended in a torn frame that
	// was dropped.
	TornTail bool
}

// Replay streams every valid record in the log directory, in sequence
// order, to fn. A torn frame at the tail of the last segment is tolerated
// and reported via ReplayStats.TornTail; torn or corrupt data anywhere else
// fails with ErrCorrupt. A missing directory replays zero records.
func Replay(dir string, fn func(rec Record) error) (ReplayStats, error) {
	return ReplayFrom(dir, 0, fn)
}

// ReplayFrom is Replay restricted to records with Seq > afterSeq. Segments
// that lie wholly at or below the cut are skipped without being read or
// CRC-checked — this is what makes a snapshot-assisted boot proportional
// to the un-snapshotted suffix rather than the whole log. The final
// segment is always scanned (torn-tail detection must see it), and records
// at or below the cut inside a scanned segment are decoded but not
// delivered.
func ReplayFrom(dir string, afterSeq uint64, fn func(rec Record) error) (ReplayStats, error) {
	var st ReplayStats
	segs, err := segments(dir)
	if errors.Is(err, os.ErrNotExist) {
		return st, nil
	}
	if err != nil {
		return st, err
	}
	for i, seg := range segs {
		// Segment i spans [segs[i].firstSeq, segs[i+1].firstSeq): it holds
		// nothing past the cut when the next segment starts at or below
		// afterSeq+1 (the same coverage rule TruncateBefore deletes by).
		if i+1 < len(segs) && segs[i+1].firstSeq <= afterSeq+1 {
			continue
		}
		serr := ScanSegment(filepath.Join(dir, seg.name), func(rec Record, _, _ int64) error {
			if rec.Seq <= afterSeq {
				return nil
			}
			st.Records++
			st.LastSeq = rec.Seq
			return fn(rec)
		})
		if serr == nil {
			continue
		}
		if errors.Is(serr, errTornTail) && i == len(segs)-1 {
			st.TornTail = true
			return st, nil
		}
		if errors.Is(serr, errTornTail) {
			return st, fmt.Errorf("%w: %v", ErrCorrupt, serr)
		}
		return st, serr
	}
	return st, nil
}

// OldestSeq returns the first sequence number the log's surviving
// segments can hold (the oldest segment's name), or 0 when there are no
// segments. Records below it live only in the checkpoint file; the
// serving core's snapshot pass uses this to skip reading — and fully
// decoding — the checkpoint, which holds the entire record prefix, on
// every pass where the segments alone cover everything it needs.
func OldestSeq(dir string) (uint64, error) {
	segs, err := segments(dir)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	if len(segs) == 0 {
		return 0, nil
	}
	return segs[0].firstSeq, nil
}

// TailSeq returns the sequence number of the last intact record in the
// directory's segments (0 when there are none), tolerating a torn tail in
// the final segment. Together with the checkpoint's LastSeq it bounds what
// a recovery can possibly replay — the guard a state snapshot must pass
// before it is trusted: a snapshot claiming to cover sequences the durable
// log does not hold (possible after a power loss under SyncNever) would
// silently resurrect unacknowledged state, so such a snapshot is rejected
// and the boot falls back to a full replay.
func TailSeq(dir string) (uint64, error) {
	segs, err := segments(dir)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	// Walk backwards: a freshly rotated final segment can be empty, in
	// which case the tail lives in the previous one.
	for i := len(segs) - 1; i >= 0; i-- {
		var seq uint64
		found := false
		serr := ScanSegment(filepath.Join(dir, segs[i].name), func(rec Record, _, _ int64) error {
			seq, found = rec.Seq, true
			return nil
		})
		if serr != nil && !errors.Is(serr, errTornTail) {
			return 0, serr
		}
		if serr != nil && i != len(segs)-1 {
			return 0, fmt.Errorf("%w: %v", ErrCorrupt, serr)
		}
		if found {
			return seq, nil
		}
	}
	return 0, nil
}
