package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Kind tags what a record carries.
//
// The //docs:exhaustive directive makes docs-lint reject any switch over
// Kind that does not handle every constant below: adding a record kind
// fails the lint gate until the encoder, the decoder, and every replay
// consumer have an explicit case for it, so a new kind can never be
// silently skipped by one of them.
//
//docs:exhaustive
type Kind uint8

const (
	// KindAnswer is one accepted worker answer (golden or regular — replay
	// routes both through the orchestrator's Submit, which re-derives the
	// distinction).
	KindAnswer Kind = 1
	// KindPublish is the campaign publication: a JSON blob of the published
	// tasks, including the domain vectors DVE computed, so recovery does
	// not depend on the knowledge base being byte-identical across builds.
	KindPublish Kind = 2
	// KindBatch is one batched-submit group: the blob is the wire batch
	// body (EncodeBatch) holding N accepted answers. The whole group lives
	// in one frame, so under the torn-tail crash rule it is durable
	// all-or-nothing; replay expands it back into per-answer submits.
	KindBatch Kind = 3
	// KindSeed records a worker-profile seed: the exact statistics (and
	// profiled flag) the orchestrator adopted from the long-run store the
	// moment the worker first became visible to the campaign. The blob is
	// an opaque core-layer payload (float64 bits); logging the bits lets
	// replay RESTORE the seed instead of re-reading the store, whose
	// contents at boot time may postdate the original read.
	KindSeed Kind = 4
)

// Record is one durable event. Seq is assigned by Log.Append and is
// strictly increasing across the whole log.
type Record struct {
	Seq  uint64
	Kind Kind

	// KindAnswer fields; Worker is also set for KindSeed.
	Worker string
	Task   int
	Choice int

	// KindPublish payload (JSON-encoded tasks); KindBatch wire body;
	// KindSeed stats payload.
	Blob []byte
}

// maxStringLen bounds decoded string/blob fields, independently of the
// frame-level MaxPayload, so a hostile payload cannot claim a huge length.
const maxStringLen = MaxPayload

// Encode returns the deterministic payload encoding of the record (no
// frame header). The layout is:
//
//	kind (1 byte) | seq (uvarint) | kind-specific fields
//
// KindAnswer:  len(worker) uvarint | worker bytes | task uvarint | choice uvarint
// KindPublish: len(blob) uvarint | blob bytes
// KindBatch:   len(blob) uvarint | blob bytes (a wire batch body, see wire.go)
// KindSeed:    len(worker) uvarint | worker bytes | len(blob) uvarint | blob bytes
//
//docs:deterministic
func (r Record) Encode() []byte {
	return r.encode(nil)
}

func (r Record) encode(dst []byte) []byte {
	dst = append(dst, byte(r.Kind))
	dst = binary.AppendUvarint(dst, r.Seq)
	switch r.Kind {
	case KindAnswer:
		dst = binary.AppendUvarint(dst, uint64(len(r.Worker)))
		dst = append(dst, r.Worker...)
		dst = binary.AppendUvarint(dst, uint64(r.Task))
		dst = binary.AppendUvarint(dst, uint64(r.Choice))
	case KindPublish, KindBatch:
		dst = binary.AppendUvarint(dst, uint64(len(r.Blob)))
		dst = append(dst, r.Blob...)
	case KindSeed:
		dst = binary.AppendUvarint(dst, uint64(len(r.Worker)))
		dst = append(dst, r.Worker...)
		dst = binary.AppendUvarint(dst, uint64(len(r.Blob)))
		dst = append(dst, r.Blob...)
	}
	return dst
}

// appendFrame appends the framed (length + CRC + payload) encoding.
func (r Record) appendFrame(dst []byte) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0) // header placeholder
	dst = r.encode(dst)
	payload := dst[start+frameHeaderLen:]
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[start+4:], crc32.Checksum(payload, castagnoli))
	return dst
}

// Decode parses a payload produced by Encode. It never panics on arbitrary
// input (the fuzz target FuzzWALDecode holds it to that) and rejects
// payloads with trailing garbage, unknown kinds, or fields whose declared
// lengths exceed the input.
func Decode(payload []byte) (Record, error) {
	var r Record
	if len(payload) == 0 {
		return r, fmt.Errorf("wal: empty record payload")
	}
	r.Kind = Kind(payload[0])
	rest := payload[1:]
	seq, rest, err := readUvarint(rest)
	if err != nil {
		return r, fmt.Errorf("wal: seq: %w", err)
	}
	r.Seq = seq
	switch r.Kind {
	case KindAnswer:
		var worker []byte
		worker, rest, err = readBytes(rest)
		if err != nil {
			return r, fmt.Errorf("wal: worker: %w", err)
		}
		r.Worker = string(worker)
		var task, choice uint64
		task, rest, err = readUvarint(rest)
		if err != nil {
			return r, fmt.Errorf("wal: task: %w", err)
		}
		choice, rest, err = readUvarint(rest)
		if err != nil {
			return r, fmt.Errorf("wal: choice: %w", err)
		}
		if task > maxInt || choice > maxInt {
			return r, fmt.Errorf("wal: task/choice out of int range")
		}
		r.Task, r.Choice = int(task), int(choice)
	case KindPublish, KindBatch:
		r.Blob, rest, err = readBytes(rest)
		if err != nil {
			return r, fmt.Errorf("wal: blob: %w", err)
		}
	case KindSeed:
		var worker []byte
		worker, rest, err = readBytes(rest)
		if err != nil {
			return r, fmt.Errorf("wal: worker: %w", err)
		}
		r.Worker = string(worker)
		r.Blob, rest, err = readBytes(rest)
		if err != nil {
			return r, fmt.Errorf("wal: blob: %w", err)
		}
	default:
		return r, fmt.Errorf("wal: unknown record kind %d", r.Kind)
	}
	if len(rest) != 0 {
		return r, fmt.Errorf("wal: %d trailing bytes after record", len(rest))
	}
	return r, nil
}

const maxInt = uint64(^uint(0) >> 1)

// EncodeFrame wraps an arbitrary payload in the WAL's frame format
// (length + CRC32-C + payload), appending to dst. Together with
// DecodeFrames it lets sibling durable files (the worker store's delta
// log) share the torn-write detection this package's fuzzing exercises.
func EncodeFrame(dst, payload []byte) []byte {
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, castagnoli))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// DecodeFrames walks a byte buffer of frames, calling fn on each intact
// payload. A frame cut short by the end of the buffer (what a crashed
// append leaves: writes deliver prefixes) stops the walk with torn = true;
// a frame whose bytes are all present but wrong (CRC mismatch, absurd
// length) is rot, not a tear, and returns an error so callers fail loudly
// instead of silently dropping everything after it.
func DecodeFrames(data []byte, fn func(payload []byte) error) (torn bool, err error) {
	off := 0
	for off < len(data) {
		rest := data[off:]
		if len(rest) < frameHeaderLen {
			return true, nil
		}
		n := binary.LittleEndian.Uint32(rest)
		crc := binary.LittleEndian.Uint32(rest[4:])
		if n > MaxPayload {
			return false, fmt.Errorf("%w: frame length %d at offset %d", ErrCorrupt, n, off)
		}
		if len(rest) < frameHeaderLen+int(n) {
			return true, nil
		}
		payload := rest[frameHeaderLen : frameHeaderLen+int(n)]
		if crc32.Checksum(payload, castagnoli) != crc {
			return false, fmt.Errorf("%w: CRC mismatch at offset %d", ErrCorrupt, off)
		}
		if err := fn(payload); err != nil {
			return false, err
		}
		off += frameHeaderLen + int(n)
	}
	return false, nil
}

// readUvarint pops one uvarint, rejecting non-minimal ("overlong")
// encodings: the format is canonical, so every accepted payload re-encodes
// to the exact same bytes. Without this, two byte strings could alias the
// same record and CRC-valid garbage would have more ways to parse.
func readUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, b, fmt.Errorf("bad varint")
	}
	if n > 1 && v>>(7*(n-1)) == 0 {
		return 0, b, fmt.Errorf("non-minimal varint")
	}
	return v, b[n:], nil
}

// readBytes pops a uvarint-length-prefixed byte field.
func readBytes(b []byte) (field, rest []byte, err error) {
	n, rest, err := readUvarint(b)
	if err != nil {
		return nil, b, fmt.Errorf("bad length: %w", err)
	}
	if n > maxStringLen || n > uint64(len(rest)) {
		return nil, b, fmt.Errorf("length %d exceeds remaining %d bytes", n, len(rest))
	}
	return rest[:n], rest[n:], nil
}
