package wal

import (
	"bytes"
	"encoding/hex"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files")

// goldenRecords is a fixed sequence covering every record kind, varint
// width boundaries (1-byte and 2-byte uvarints), empty and non-ASCII
// strings, and an empty blob.
func goldenRecords() []Record {
	return []Record{
		{Seq: 1, Kind: KindPublish, Blob: []byte(`[{"id":0,"text":"t","choices":["a","b"]}]`)},
		{Seq: 2, Kind: KindAnswer, Worker: "w0", Task: 0, Choice: 0},
		{Seq: 3, Kind: KindAnswer, Worker: "worker-with-a-longer-name", Task: 127, Choice: 1},
		{Seq: 128, Kind: KindAnswer, Worker: "", Task: 128, Choice: 2},
		{Seq: 300, Kind: KindAnswer, Worker: "wörker-ünïcode", Task: 16384, Choice: 0},
		{Seq: 301, Kind: KindPublish, Blob: nil},
		// A batched-submit group: the blob is itself a wire batch body
		// (magic + framed position-tagged answers), pinning both layers of
		// the format at once.
		{Seq: 302, Kind: KindBatch, Blob: EncodeBatch(nil, []Record{
			{Worker: "w0", Task: 1, Choice: 1},
			{Worker: "w1", Task: 2, Choice: 0},
		})},
		// A worker-seed record: the blob is the core's seed codec (uvarint
		// domain count, Q and U as raw float64 bits, profiled flag) but the
		// WAL layer treats it as opaque bytes keyed to the worker.
		{Seq: 303, Kind: KindSeed, Worker: "w-seeded", Blob: []byte{
			0x02,
			0x9a, 0x99, 0x99, 0x99, 0x99, 0x99, 0xe9, 0x3f,
			0x33, 0x33, 0x33, 0x33, 0x33, 0x33, 0xeb, 0x3f,
			0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xf0, 0x3f,
			0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x40,
			0x01,
		}},
		{Seq: 304, Kind: KindSeed, Worker: "w-empty-seed", Blob: []byte{0x00, 0x00}},
	}
}

// TestGoldenFormat pins the on-disk encoding: the framed bytes of a fixed
// record sequence must match the checked-in golden file byte for byte.
// The WAL is a durability contract — logs written by one build must replay
// on the next — so any intentional format change must both update this
// file (go test ./internal/wal -run Golden -update) and add migration
// handling for old logs.
func TestGoldenFormat(t *testing.T) {
	var got []byte
	for _, rec := range goldenRecords() {
		got = rec.appendFrame(got)
	}
	path := filepath.Join("testdata", "format.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("encoding drifted from golden file:\n got %s\nwant %s",
			hex.EncodeToString(got), hex.EncodeToString(want))
	}
	// And the golden bytes must decode back to the original records: replay
	// of old logs is the other half of the contract.
	off := 0
	var decoded []Record
	for off < len(want) {
		n := int(uint32(want[off]) | uint32(want[off+1])<<8 | uint32(want[off+2])<<16 | uint32(want[off+3])<<24)
		payload := want[off+frameHeaderLen : off+frameHeaderLen+n]
		rec, err := Decode(payload)
		if err != nil {
			t.Fatalf("decode golden frame at %d: %v", off, err)
		}
		decoded = append(decoded, rec)
		off += frameHeaderLen + n
	}
	wantRecs := goldenRecords()
	if len(decoded) != len(wantRecs) {
		t.Fatalf("decoded %d records, want %d", len(decoded), len(wantRecs))
	}
	for i := range decoded {
		g, w := decoded[i], wantRecs[i]
		if g.Seq != w.Seq || g.Kind != w.Kind || g.Worker != w.Worker ||
			g.Task != w.Task || g.Choice != w.Choice || !bytes.Equal(g.Blob, w.Blob) {
			t.Errorf("record %d = %+v, want %+v", i, g, w)
		}
	}
}

// TestEncodeDecodeRoundtrip is the property the fuzz target extends: any
// record that can be encoded decodes back to itself.
func TestEncodeDecodeRoundtrip(t *testing.T) {
	for i, rec := range goldenRecords() {
		got, err := Decode(rec.Encode())
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got.Seq != rec.Seq || got.Kind != rec.Kind || got.Worker != rec.Worker ||
			got.Task != rec.Task || got.Choice != rec.Choice || !bytes.Equal(got.Blob, rec.Blob) {
			t.Errorf("record %d roundtrip = %+v, want %+v", i, got, rec)
		}
	}
}
