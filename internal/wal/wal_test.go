package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func answerRec(w string, task, choice int) Record {
	return Record{Kind: KindAnswer, Worker: w, Task: task, Choice: choice}
}

func appendAll(t *testing.T, l *Log, recs []Record) {
	t.Helper()
	for i, r := range recs {
		seq, err := l.Append(r)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if want := uint64(i + 1); seq != want && l.opts.SegmentBytes == 0 {
			t.Fatalf("append %d: seq = %d, want %d", i, seq, want)
		}
	}
}

func replayAll(t *testing.T, dir string) ([]Record, ReplayStats) {
	t.Helper()
	var got []Record
	st, err := Replay(dir, func(rec Record) error {
		got = append(got, rec)
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return got, st
}

func testRecords(n int) []Record {
	recs := make([]Record, 0, n+1)
	recs = append(recs, Record{Kind: KindPublish, Blob: []byte(`[{"id":1}]`)})
	for i := 0; len(recs) < n; i++ {
		recs = append(recs, answerRec(fmt.Sprintf("w%d", i%7), i%31, i%3))
	}
	return recs
}

func TestAppendReplayRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords(50)
	appendAll(t, l, recs)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, st := replayAll(t, dir)
	if st.TornTail {
		t.Error("clean log reported a torn tail")
	}
	if len(got) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(got), len(recs))
	}
	for i, g := range got {
		want := recs[i]
		want.Seq = uint64(i + 1)
		if g.Seq != want.Seq || g.Kind != want.Kind || g.Worker != want.Worker ||
			g.Task != want.Task || g.Choice != want.Choice || !bytes.Equal(g.Blob, want.Blob) {
			t.Fatalf("record %d = %+v, want %+v", i, g, want)
		}
	}
}

func TestReplayMissingDirIsEmpty(t *testing.T) {
	got, st := replayAll(t, filepath.Join(t.TempDir(), "nope"))
	if len(got) != 0 || st.Records != 0 || st.TornTail {
		t.Fatalf("missing dir: got %d records, stats %+v", len(got), st)
	}
}

func TestTornTailToleratedAndTruncatedOnReopen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords(10)
	appendAll(t, l, recs)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := segments(dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments: %v (%d)", err, len(segs))
	}
	path := filepath.Join(dir, segs[0].name)
	// Tear the final record: chop a few bytes off the file.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	got, st := replayAll(t, dir)
	if !st.TornTail {
		t.Error("torn tail not reported")
	}
	if len(got) != len(recs)-1 {
		t.Fatalf("replayed %d records after tear, want %d", len(got), len(recs)-1)
	}
	// Reopen: the torn bytes must be truncated away and appends continue
	// with the next sequence number.
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if lastSeq := l2.LastSeq(); lastSeq != uint64(len(recs)-1) {
		t.Fatalf("reopened LastSeq = %d, want %d", lastSeq, len(recs)-1)
	}
	seq, err := l2.Append(answerRec("late", 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if seq != uint64(len(recs)) {
		t.Fatalf("post-reopen seq = %d, want %d", seq, len(recs))
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	got, st = replayAll(t, dir)
	if st.TornTail || len(got) != len(recs) {
		t.Fatalf("after reopen+append: %d records (torn=%v), want %d clean", len(got), st.TornTail, len(recs))
	}
}

func TestCorruptionMidLogFails(t *testing.T) {
	dir := t.TempDir()
	// Two segments; rot the FIRST one — that is corruption, not a torn tail.
	l, err := Open(dir, Options{SegmentBytes: minSegmentBytes})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, testRecords(200))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("want >= 2 segments, got %d", len(segs))
	}
	path := filepath.Join(dir, segs[0].name)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Replay(dir, func(Record) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mid-log corruption: err = %v, want ErrCorrupt", err)
	}
}

// TestRotInFinalSegmentFailsLoudly: a CRC flip on a frame whose bytes are
// all present is rot, not a torn append — even in the final segment it
// must fail replay and refuse to reopen, never silently truncate the
// acknowledged records behind it.
func TestRotInFinalSegmentFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, testRecords(10))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := segments(dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments: %v (%d)", err, len(segs))
	}
	path := filepath.Join(dir, segs[0].name)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[frameHeaderLen+1] ^= 0x01 // flip a payload bit of the FIRST frame
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(dir, func(Record) error { return nil }); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("replay of rotted final segment: err = %v, want ErrCorrupt", err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open truncated a rotted segment instead of failing")
	}
}

func TestRotationAndTruncateBefore(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: minSegmentBytes})
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords(300)
	appendAll(t, l, recs)
	segs, err := segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("want >= 3 segments after 300 records, got %d", len(segs))
	}
	// Truncate through the midpoint; every record > mid must survive.
	mid := uint64(len(recs) / 2)
	if err := l.TruncateBefore(mid); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	left, err := segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(left) >= len(segs) {
		t.Errorf("truncation removed no segments (%d -> %d)", len(segs), len(left))
	}
	got, _ := replayAll(t, dir)
	if len(got) == 0 || got[len(got)-1].Seq != uint64(len(recs)) {
		t.Fatalf("tail lost: last seq %v", got[len(got)-1].Seq)
	}
	seen := false
	for _, r := range got {
		if r.Seq == mid+1 {
			seen = true
		}
		if r.Seq > mid && seen == false && r.Seq != got[0].Seq {
			t.Fatalf("records after %d must be contiguous", mid)
		}
	}
	if !seen {
		t.Fatalf("record %d (first uncovered) was truncated away", mid+1)
	}
}

func TestCheckpointRoundtripAndOpenAfterFullTruncation(t *testing.T) {
	dir := t.TempDir()
	recs := testRecords(20)
	for i := range recs {
		recs[i].Seq = uint64(i + 1)
	}
	if err := WriteCheckpoint(dir, recs[len(recs)-1].Seq, recs); err != nil {
		t.Fatal(err)
	}
	cp, err := ReadCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if cp == nil || cp.LastSeq != uint64(len(recs)) || len(cp.Records) != len(recs) {
		t.Fatalf("checkpoint roundtrip: %+v", cp)
	}
	// A log opened over checkpoint-only state must continue numbering after
	// the checkpoint, or recovery would skip its records as covered.
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := l.Append(answerRec("next", 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(len(recs) + 1); seq != want {
		t.Fatalf("first post-checkpoint seq = %d, want %d", seq, want)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestOpenAfterCheckpointAheadOfSegments: a checkpoint may cover reserved
// records whose group-commit batch never hit the segments before a crash.
// Open must continue numbering after the checkpoint, not after the segment
// tail — reusing covered sequence numbers would make recovery silently
// drop the new records as already-checkpointed.
func TestOpenAfterCheckpointAheadOfSegments(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, testRecords(5)) // segments end at seq 5
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	cpRecs := testRecords(8) // checkpoint claims seqs 1..8
	for i := range cpRecs {
		cpRecs[i].Seq = uint64(i + 1)
	}
	if err := WriteCheckpoint(dir, 8, cpRecs); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := l2.Append(answerRec("w", 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 9 {
		t.Fatalf("post-checkpoint seq = %d, want 9 (checkpoint covers 1..8)", seq)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	recs := testRecords(10)
	for i := range recs {
		recs[i].Seq = uint64(i + 1)
	}
	if err := WriteCheckpoint(dir, uint64(len(recs)), recs); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, checkpointName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Present-but-wrong bytes are corruption and must refuse to load.
	for name, mutate := range map[string]func([]byte) []byte{
		"bit flip":     func(b []byte) []byte { b[len(b)/2] ^= 1; return b },
		"bad magic":    func(b []byte) []byte { b[0] = 'X'; return b },
		"payload flip": func(b []byte) []byte { b[16] ^= 0x7f; return b },
	} {
		cp := append([]byte(nil), data...)
		if err := os.WriteFile(path, mutate(cp), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadCheckpoint(dir); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
	// A frame cut short at EOF is an interrupted extend: tolerated, with
	// the torn record dropped and reported (its bytes are still in the
	// segments, which are only truncated after a successful extend).
	for name, mutate := range map[string]func([]byte) []byte{
		"torn tail":     func(b []byte) []byte { return b[:len(b)-1] },
		"trailing junk": func(b []byte) []byte { return append(b, 0x00, 0x01) },
	} {
		cp := append([]byte(nil), data...)
		if err := os.WriteFile(path, mutate(cp), 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := ReadCheckpoint(dir)
		if err != nil || !got.TornTail {
			t.Errorf("%s: err=%v torn=%v, want tolerated torn tail", name, err, got != nil && got.TornTail)
		}
	}
}

// TestExtendCheckpoint covers the incremental path: create via extend,
// extend again, survive an interrupted extend (torn tail truncated away on
// the next pass), and reject non-continuing sequences.
func TestExtendCheckpoint(t *testing.T) {
	dir := t.TempDir()
	recs := testRecords(12)
	for i := range recs {
		recs[i].Seq = uint64(i + 1)
	}
	lastSeq, bytes, err := ExtendCheckpoint(dir, 0, 0, recs[:5])
	if err != nil {
		t.Fatal(err)
	}
	if lastSeq != 5 {
		t.Fatalf("lastSeq = %d, want 5", lastSeq)
	}
	lastSeq, bytes, err = ExtendCheckpoint(dir, lastSeq, bytes, recs[5:9])
	if err != nil {
		t.Fatal(err)
	}
	cp, err := ReadCheckpoint(dir)
	if err != nil || cp.LastSeq != 9 || len(cp.Records) != 9 || cp.TornTail {
		t.Fatalf("after two extends: cp=%+v err=%v", cp, err)
	}
	if cp.ValidBytes != bytes {
		t.Fatalf("ValidBytes = %d, extend reported %d", cp.ValidBytes, bytes)
	}
	// Interrupted extend: garbage half-frame at the tail.
	path := filepath.Join(dir, checkpointName)
	if err := os.WriteFile(path, append(readFile(t, path), 0x55, 0x66, 0x77), 0o644); err != nil {
		t.Fatal(err)
	}
	cp, err = ReadCheckpoint(dir)
	if err != nil || !cp.TornTail || len(cp.Records) != 9 {
		t.Fatalf("torn extend: cp=%+v err=%v", cp, err)
	}
	// The next extend (from the intact tail) truncates the garbage.
	lastSeq, bytes, err = ExtendCheckpoint(dir, cp.LastSeq, cp.ValidBytes, recs[9:])
	if err != nil {
		t.Fatal(err)
	}
	cp, err = ReadCheckpoint(dir)
	if err != nil || cp.TornTail || cp.LastSeq != 12 || len(cp.Records) != 12 {
		t.Fatalf("extend over torn tail: cp=%+v err=%v", cp, err)
	}
	// Sequence must continue.
	if _, _, err := ExtendCheckpoint(dir, lastSeq, bytes, recs[:1]); err == nil {
		t.Fatal("extend accepted a non-continuing sequence")
	}
}

func readFile(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestConcurrentAppendGroupCommit(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 4 * minSegmentBytes})
	if err != nil {
		t.Fatal(err)
	}
	const (
		goroutines = 8
		perG       = 100
	)
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if _, err := l.Append(answerRec(fmt.Sprintf("g%d", g), i, 0)); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, st := replayAll(t, dir)
	if len(got) != goroutines*perG || st.TornTail {
		t.Fatalf("replayed %d records (torn=%v), want %d", len(got), st.TornTail, goroutines*perG)
	}
	for i, r := range got {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d: replay order must equal sequence order", i, r.Seq)
		}
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(answerRec("w", 0, 0)); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: err = %v, want ErrClosed", err)
	}
	if err := l.Close(); err != nil { // double close is a no-op
		t.Fatal(err)
	}
}

func TestSyncEveryBatch(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncEveryBatch})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, testRecords(20))
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, _ := replayAll(t, dir)
	if len(got) != 20 {
		t.Fatalf("replayed %d, want 20", len(got))
	}
}
