package wal

import (
	"bytes"
	"testing"
)

// FuzzWALDecode drives arbitrary bytes through the record decoder. The
// decoder sits on the recovery path, where it reads whatever a crash left
// on disk, so it must never panic and must hold the encode/decode
// roundtrip invariant on every payload it accepts. Seed corpus lives in
// testdata/fuzz/FuzzWALDecode (checked in).
func FuzzWALDecode(f *testing.F) {
	for _, rec := range goldenRecords() {
		f.Add(rec.Encode())
	}
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0x03, 0x01})                                                                   // unknown kind
	f.Add([]byte{byte(KindAnswer), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}) // overlong varint
	f.Add([]byte{byte(KindPublish), 0x01, 0xff, 0xff, 0xff, 0xff, 0x0f})                        // blob length > input
	f.Fuzz(func(t *testing.T, payload []byte) {
		rec, err := Decode(payload)
		if err != nil {
			return // rejected input: fine, as long as we did not panic
		}
		// Accepted payloads must re-encode to the exact input bytes —
		// otherwise two different byte strings would claim the same record
		// and a log could silently alias after rewrite.
		if got := rec.Encode(); !bytes.Equal(got, payload) {
			t.Fatalf("decode/encode not canonical:\n in  %x\n out %x", payload, got)
		}
	})
}
