package wal

import (
	"bytes"
	"fmt"
	"testing"
)

func sampleBatch(n int) []Record {
	items := make([]Record, n)
	for i := range items {
		items[i] = Record{Worker: fmt.Sprintf("w%d", i%7), Task: i, Choice: i % 3}
	}
	return items
}

func TestBatchRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 64, 300} {
		body := EncodeBatch(nil, sampleBatch(n))
		items, extra, err := DecodeBatch(body, 0)
		if err != nil {
			t.Fatalf("n=%d: decode: %v", n, err)
		}
		if extra != 0 || len(items) != n {
			t.Fatalf("n=%d: got %d items, %d extra", n, len(items), extra)
		}
		for i, it := range items {
			want := sampleBatch(n)[i]
			if it.Worker != want.Worker || it.Task != want.Task || it.Choice != want.Choice {
				t.Fatalf("n=%d item %d: got %+v, want %+v", n, i, it, want)
			}
		}
		// Canonical: re-encoding the decoded items reproduces the body.
		if got := EncodeBatch(nil, items); !bytes.Equal(got, body) {
			t.Fatalf("n=%d: encode/decode not canonical", n)
		}
	}
}

func TestBatchDecodeRejects(t *testing.T) {
	good := EncodeBatch(nil, sampleBatch(3))
	cases := map[string][]byte{
		"empty":       nil,
		"bad magic":   append([]byte("XXX1"), good[4:]...),
		"torn frame":  good[:len(good)-2],
		"flipped bit": flip(good, len(good)-1),
		// A publish record smuggled in as a batch item.
		"wrong kind": EncodeFrame(append([]byte(nil), batchMagic...),
			Record{Seq: 1, Kind: KindPublish, Blob: []byte("x")}.Encode()),
		// Position tag 2 on the first item: a reordered or spliced body.
		"bad position": EncodeFrame(append([]byte(nil), batchMagic...),
			Record{Seq: 2, Kind: KindAnswer, Worker: "w"}.Encode()),
	}
	for name, body := range cases {
		if _, _, err := DecodeBatch(body, 0); err == nil {
			t.Errorf("%s: decode accepted", name)
		}
	}
}

func flip(b []byte, i int) []byte {
	c := append([]byte(nil), b...)
	c[i] ^= 0x40
	return c
}

// TestBatchDecodeClamp pins the DoS guard: a body carrying far more items
// than the server's bound materializes only the bound, counts the rest,
// and — like the ?k= clamp on the request path — never lets the client's
// chosen size drive the allocation. The alloc ceiling is measured against
// a body that is exactly at the bound, so growth past it would fail here.
func TestBatchDecodeClamp(t *testing.T) {
	const max = 8
	huge := EncodeBatch(nil, sampleBatch(10*1000))
	items, extra, err := DecodeBatch(huge, max)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != max || extra != 10*1000-max {
		t.Fatalf("clamped decode = %d items, %d extra; want %d, %d", len(items), extra, max, 10*1000-max)
	}

	atBound := EncodeBatch(nil, sampleBatch(max))
	baseline := testing.AllocsPerRun(50, func() {
		if _, _, err := DecodeBatch(atBound, max); err != nil {
			t.Fatal(err)
		}
	})
	clamped := testing.AllocsPerRun(50, func() {
		if _, _, err := DecodeBatch(huge, max); err != nil {
			t.Fatal(err)
		}
	})
	if clamped > baseline {
		t.Fatalf("clamped decode of a 10000-item body allocates %.0f times, an at-bound body %.0f — overflow items must cost zero allocations", clamped, baseline)
	}
}

// FuzzBatchDecode drives arbitrary bytes through the wire batch decoder —
// the surface a hostile client reaches with POST /submit-batch and the
// binary content type, and byte-identical to what a KindBatch WAL record
// replays after a crash. It must never panic, and every accepted body must
// re-encode to the exact input bytes (one batch, one encoding). Seed
// corpus lives in testdata/fuzz/FuzzBatchDecode (checked in).
func FuzzBatchDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("DBB1"))
	f.Add([]byte("DBB0"))
	f.Add(EncodeBatch(nil, sampleBatch(1)))
	f.Add(EncodeBatch(nil, sampleBatch(5)))
	f.Add(EncodeBatch(nil, []Record{{Worker: "wörker", Task: 1 << 20, Choice: 3}}))
	torn := EncodeBatch(nil, sampleBatch(2))
	f.Add(torn[:len(torn)-3])
	f.Fuzz(func(t *testing.T, body []byte) {
		items, extra, err := DecodeBatch(body, 0)
		if err != nil {
			return // rejected input: fine, as long as we did not panic
		}
		if extra != 0 {
			t.Fatalf("unbounded decode reported %d clamped items", extra)
		}
		if got := EncodeBatch(nil, items); !bytes.Equal(got, body) {
			t.Fatalf("decode/encode not canonical:\n in  %x\n out %x", body, got)
		}
	})
}
