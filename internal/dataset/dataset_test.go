package dataset

import (
	"testing"

	"docs/internal/dve"
	"docs/internal/entitylink"
	"docs/internal/kb"
	"docs/internal/model"
)

func TestDatasetShapes(t *testing.T) {
	cases := []struct {
		ds      *Dataset
		nTasks  int
		domains int
	}{
		{Item(1), 360, 4},
		{FourDomain(1), 400, 4},
		{QA(1), 1000, 4},
		{SFV(1), 328, 4},
	}
	for _, c := range cases {
		if len(c.ds.Tasks) != c.nTasks {
			t.Errorf("%s: %d tasks, want %d", c.ds.Name, len(c.ds.Tasks), c.nTasks)
		}
		if c.ds.NumDomains() != c.domains {
			t.Errorf("%s: %d domains, want %d", c.ds.Name, c.ds.NumDomains(), c.domains)
		}
		if err := c.ds.Validate(26); err != nil {
			t.Errorf("%s: %v", c.ds.Name, err)
		}
	}
}

func TestDatasetsDeterministic(t *testing.T) {
	a, b := FourDomain(7), FourDomain(7)
	for i := range a.Tasks {
		if a.Tasks[i].Text != b.Tasks[i].Text || a.Tasks[i].Truth != b.Tasks[i].Truth {
			t.Fatalf("task %d differs across identical seeds", i)
		}
	}
	c := FourDomain(8)
	same := 0
	for i := range a.Tasks {
		if a.Tasks[i].Text == c.Tasks[i].Text {
			same++
		}
	}
	if same == len(a.Tasks) {
		t.Error("different seeds produced identical datasets")
	}
}

func TestGroundTruthSeedIndependent(t *testing.T) {
	// Ground truths come from the entity attribute table, not the seed:
	// the same question text must always have the same truth.
	textTruth := make(map[string]int)
	for _, tk := range Item(1).Tasks {
		textTruth[tk.Text] = tk.Truth
	}
	for _, tk := range Item(99).Tasks {
		if want, ok := textTruth[tk.Text]; ok && want != tk.Truth {
			t.Fatalf("task %q has truth %d under seed 99, %d under seed 1", tk.Text, tk.Truth, want)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range Names() {
		ds, err := ByName(name, 3)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if ds.Name != name {
			t.Errorf("ByName(%s).Name = %s", name, ds.Name)
		}
	}
	if _, err := ByName("nope", 1); err == nil {
		t.Error("unknown dataset accepted")
	}
	if got := len(All(1)); got != 4 {
		t.Errorf("All returned %d datasets", got)
	}
}

// TestTasksAreLinkable: the DVE pipeline must find at least one entity in
// nearly every generated task, otherwise domain detection cannot work.
func TestTasksAreLinkable(t *testing.T) {
	k := kb.MustDefault()
	linker := entitylink.New(k)
	for _, ds := range All(5) {
		unlinked := 0
		for _, tk := range ds.Tasks {
			if len(linker.Link(tk.Text)) == 0 {
				unlinked++
			}
		}
		if frac := float64(unlinked) / float64(len(ds.Tasks)); frac > 0.01 {
			t.Errorf("%s: %.1f%% of tasks have no linkable entities", ds.Name, 100*frac)
		}
	}
}

// TestDomainDetectionViaDVE: running the full DVE pipeline over each
// dataset must recover the labelled domain for the vast majority of tasks —
// the DOCS bars of Figure 3 (the paper reports >95% on 4D and clear wins on
// QA/SFV).
func TestDomainDetectionViaDVE(t *testing.T) {
	k := kb.MustDefault()
	linker := entitylink.New(k)
	m := k.Domains().Size()
	for _, ds := range All(9) {
		correct, total := 0, 0
		for _, tk := range ds.Tasks {
			ents := dve.FromLinked(linker.Link(tk.Text), m)
			r := dve.Normalized(ents, m)
			total++
			if model.DomainVector(r).Top() == tk.TrueDomain {
				correct++
			}
		}
		acc := float64(correct) / float64(total)
		if acc < 0.85 {
			t.Errorf("%s: DVE domain detection accuracy %.3f, want >= 0.85", ds.Name, acc)
		}
	}
}

func TestSFVChoicesDistinctAndContainTruth(t *testing.T) {
	ds := SFV(3)
	for _, tk := range ds.Tasks {
		seen := make(map[string]bool)
		for _, c := range tk.Choices {
			if seen[c] {
				t.Fatalf("task %d has duplicate choice %q", tk.ID, c)
			}
			seen[c] = true
		}
		if len(tk.Choices) != 4 {
			t.Fatalf("task %d has %d choices, want 4", tk.ID, len(tk.Choices))
		}
		if tk.Truth < 0 || tk.Truth >= 4 {
			t.Fatalf("task %d truth %d out of range", tk.ID, tk.Truth)
		}
	}
}

func TestItemTemplatesAreUniformPerDomain(t *testing.T) {
	// The Item dataset's defining property: one template per domain, so
	// tasks within a domain share all non-entity words.
	ds := Item(2)
	prefix := map[int]string{}
	for i, tk := range ds.Tasks {
		lbl := ds.EvalLabel[i]
		p := tk.Text[:10]
		if prev, ok := prefix[lbl]; ok && prev != p {
			t.Fatalf("domain %d mixes templates: %q vs %q", lbl, prev, p)
		}
		prefix[lbl] = p
	}
}
