package dataset

import (
	"fmt"

	"docs/internal/kb"
	"docs/internal/mathx"
	"docs/internal/model"
)

// itemPerDomain is the number of tasks per domain in the Item dataset
// (360 tasks over 4 domains).
const itemPerDomain = 90

// Item generates the ItemCompare dataset: two-item comparisons where every
// task in a domain uses the same sentence template, so intra-domain text
// similarity is very high — the regime in which the LDA-based baselines do
// well (Figure 3(a)).
func Item(seed uint64) *Dataset {
	r := mathx.NewRand(seed ^ 0x17e4)
	d := &Dataset{
		Name:        "Item",
		EvalDomains: []string{"NBA", "Food", "Auto", "Country"},
		YahooIndex: []int{
			yahooIdx("Sports"), yahooIdx("Food"), yahooIdx("Cars"), yahooIdx("Travel"),
		},
	}
	type domSpec struct {
		pool      []string
		attribute string
		template  string
	}
	specs := []domSpec{
		{kb.CategoryMembers(kb.CatNBAPlayer), "championships", "Who wins more NBA championships, %s or %s?"},
		{kb.CategoryMembers(kb.CatFood), "calories", "Which food contains more calories, %s or %s?"},
		{kb.CategoryMembers(kb.CatCar), "price", "Which car has a higher price, %s or %s?"},
		{kb.CategoryMembers(kb.CatCountry), "population", "Which country has a larger population, %s or %s?"},
	}
	id := 0
	for dom, spec := range specs {
		seen := make(map[string]bool)
		for n := 0; n < itemPerDomain; n++ {
			var a, b string
			for {
				a, b = pair(r, spec.pool)
				key := a + "|" + b
				if !seen[key] {
					seen[key] = true
					break
				}
			}
			d.Tasks = append(d.Tasks, &model.Task{
				ID:         id,
				Text:       fmt.Sprintf(spec.template, a, b),
				Choices:    []string{a, b},
				Truth:      compareTruth(a, b, spec.attribute),
				TrueDomain: d.YahooIndex[dom],
			})
			d.EvalLabel = append(d.EvalLabel, dom)
			id++
		}
	}
	return d
}
