package dataset

import (
	"fmt"
	"strconv"

	"docs/internal/kb"
	"docs/internal/mathx"
	"docs/internal/model"
)

// sfvTotal matches the paper's SFV dataset size.
const sfvTotal = 328

// SFV generates the slot-filling-validation dataset: each task asks one
// attribute of a well-known person and offers several candidate values, as
// if collected from competing QA systems; workers pick the correct one. A
// person's labelled domain is the domain they are renowned for
// (Section 6.2): Entertain, Business, Sports or Politics.
func SFV(seed uint64) *Dataset {
	r := mathx.NewRand(seed ^ 0x5f5f)
	d := &Dataset{
		Name:        "SFV",
		EvalDomains: []string{"Entertain", "Business", "Sports", "Politics"},
		YahooIndex: []int{
			yahooIdx("Entertain"), yahooIdx("Business"), yahooIdx("Sports"), yahooIdx("Politics"),
		},
	}
	pools := [][]string{
		append(kb.CategoryMembers(kb.CatActor), kb.CategoryMembers(kb.CatMusician)...),
		kb.CategoryMembers(kb.CatBusiness),
		append(kb.CategoryMembers(kb.CatNBAPlayer), kb.CategoryMembers(kb.CatAthlete)...),
		kb.CategoryMembers(kb.CatPolitician),
	}
	type attrSpec struct {
		name     string
		question string
		lo, hi   int
		unit     string
	}
	attrs := []attrSpec{
		{"age", "What is the age of %s?", 25, 90, ""},
		{"birthyear", "In which year was %s born?", 1930, 1995, ""},
		{"heightcm", "How tall is %s in centimeters?", 155, 215, " cm"},
		{"siblings", "How many siblings does %s have?", 0, 7, ""},
	}

	id := 0
	for id < sfvTotal {
		dom := id % len(pools)
		pool := pools[dom]
		person := pool[r.Intn(len(pool))]
		spec := attrs[r.Intn(len(attrs))]
		span := spec.hi - spec.lo
		trueVal := spec.lo + int(attr(person, spec.name)*float64(span))

		// Build 4 candidate values as QA systems would return: the truth
		// plus three distinct distractors near it.
		values := map[int]bool{trueVal: true}
		for len(values) < 4 {
			delta := 1 + r.Intn(span/4+1)
			if r.Float64() < 0.5 {
				delta = -delta
			}
			v := trueVal + delta
			if v >= spec.lo-span/4 && !values[v] {
				values[v] = true
			}
		}
		choices := make([]string, 0, 4)
		for v := range values {
			choices = append(choices, strconv.Itoa(v)+spec.unit)
		}
		// Deterministic order: shuffle with the dataset RNG after sorting
		// the map iteration artifacts away.
		sortStrings(choices)
		r.Shuffle(len(choices), func(i, j int) { choices[i], choices[j] = choices[j], choices[i] })
		truth := 0
		want := strconv.Itoa(trueVal) + spec.unit
		for i, c := range choices {
			if c == want {
				truth = i
			}
		}

		d.Tasks = append(d.Tasks, &model.Task{
			ID:         id,
			Text:       fmt.Sprintf(spec.question, person),
			Choices:    choices,
			Truth:      truth,
			TrueDomain: d.YahooIndex[dom],
		})
		d.EvalLabel = append(d.EvalLabel, dom)
		id++
	}
	return d
}

// sortStrings is a tiny insertion sort; choices slices have length 4.
func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
