package dataset

import (
	"fmt"

	"docs/internal/kb"
	"docs/internal/mathx"
	"docs/internal/model"
)

// fdPerDomain is the number of tasks per domain in the 4D dataset
// (400 tasks over 4 domains).
const fdPerDomain = 100

// FourDomain generates the 4D dataset: 4 domains (NBA, Car, Film, Mountain)
// whose tasks vary widely in phrasing within each domain and deliberately
// collide across domains ("Compare the height of <player A> and <player B>"
// vs "Compare the height of <mountain A> and <mountain B>"), which defeats
// string-similarity topic models but not KB-based domain detection —
// the headline of Figure 3(b).
func FourDomain(seed uint64) *Dataset {
	r := mathx.NewRand(seed ^ 0x4d4d)
	d := &Dataset{
		Name:        "4D",
		EvalDomains: []string{"NBA", "Car", "Film", "Mountain"},
		YahooIndex: []int{
			yahooIdx("Sports"), yahooIdx("Cars"), yahooIdx("Entertain"), yahooIdx("Science"),
		},
	}
	players := kb.CategoryMembers(kb.CatNBAPlayer)
	teams := kb.CategoryMembers(kb.CatNBATeam)
	cars := kb.CategoryMembers(kb.CatCar)
	films := kb.CategoryMembers(kb.CatFilm)
	actors := kb.CategoryMembers(kb.CatActor)
	mountains := kb.CategoryMembers(kb.CatMountain)

	// gen produces one task text + choices + truth for the domain.
	type task struct {
		text    string
		choices []string
		truth   int
	}
	positions := []string{"point guard", "shooting guard", "small forward", "power forward", "center"}

	nbaGen := []func() task{
		func() task {
			p := players[r.Intn(len(players))]
			truth := int(attr(p, "position") * float64(len(positions)))
			return task{fmt.Sprintf("What position does %s play?", p), positions, truth}
		},
		func() task {
			a, b := pair(r, players)
			return task{fmt.Sprintf("Compare the height of %s and %s.", a, b),
				[]string{a + " is taller", b + " is taller"}, compareTruth(a, b, "height")}
		},
		func() task {
			a, b := pair(r, players)
			return task{fmt.Sprintf("Is %s older than %s?", a, b),
				[]string{"yes", "no"}, compareTruth(a, b, "age")}
		},
		func() task {
			a, b := pair(r, teams)
			return task{fmt.Sprintf("Which team wins more championships, the %s or the %s?", a, b),
				[]string{a, b}, compareTruth(a, b, "championships")}
		},
		func() task {
			p := players[r.Intn(len(players))]
			a, b := pair(r, teams)
			truth := compareTruth(p+a, p+b, "playedfor")
			return task{fmt.Sprintf("Did %s ever play for the %s or the %s?", p, a, b),
				[]string{a, b}, truth}
		},
	}
	carGen := []func() task{
		func() task {
			a, b := pair(r, cars)
			return task{fmt.Sprintf("Which costs more, the %s or the %s?", a, b),
				[]string{a, b}, compareTruth(a, b, "price")}
		},
		func() task {
			a, b := pair(r, cars)
			return task{fmt.Sprintf("Does the %s have better fuel economy than the %s?", a, b),
				[]string{"yes", "no"}, compareTruth(a, b, "mpg")}
		},
		func() task {
			a, b := pair(r, cars)
			return task{fmt.Sprintf("Compare the top speed of the %s and the %s.", a, b),
				[]string{a + " is faster", b + " is faster"}, compareTruth(a, b, "speed")}
		},
		func() task {
			c := cars[r.Intn(len(cars))]
			return task{fmt.Sprintf("Is the %s offered with an electric engine?", c),
				[]string{"yes", "no"}, int(attr(c, "electric") * 2)}
		},
	}
	filmGen := []func() task{
		func() task {
			a, b := pair(r, films)
			return task{fmt.Sprintf("Which was released earlier, %s or %s?", a, b),
				[]string{a, b}, compareTruth(a, b, "year")}
		},
		func() task {
			a, b := pair(r, films)
			return task{fmt.Sprintf("Did %s earn more at the box office than %s?", a, b),
				[]string{"yes", "no"}, compareTruth(a, b, "boxoffice")}
		},
		func() task {
			f := films[r.Intn(len(films))]
			a, b := pair(r, actors)
			truth := compareTruth(f+a, f+b, "starred")
			return task{fmt.Sprintf("Who starred in %s, %s or %s?", f, a, b),
				[]string{a, b}, truth}
		},
		func() task {
			a, b := pair(r, films)
			return task{fmt.Sprintf("Which won more awards, %s or %s?", a, b),
				[]string{a, b}, compareTruth(a, b, "awards")}
		},
	}
	mountainGen := []func() task{
		func() task {
			a, b := pair(r, mountains)
			return task{fmt.Sprintf("Compare the height of %s and %s.", a, b),
				[]string{a + " is taller", b + " is taller"}, compareTruth(a, b, "height")}
		},
		func() task {
			a, b := pair(r, mountains)
			return task{fmt.Sprintf("Is %s harder to climb than %s?", a, b),
				[]string{"yes", "no"}, compareTruth(a, b, "difficulty")}
		},
		func() task {
			m := mountains[r.Intn(len(mountains))]
			return task{fmt.Sprintf("Has %s ever been climbed in winter?", m),
				[]string{"yes", "no"}, int(attr(m, "winter") * 2)}
		},
		func() task {
			a, b := pair(r, mountains)
			return task{fmt.Sprintf("Which sees more snowfall, %s or %s?", a, b),
				[]string{a, b}, compareTruth(a, b, "snow")}
		},
	}

	gens := [][]func() task{nbaGen, carGen, filmGen, mountainGen}
	id := 0
	for dom, gs := range gens {
		for n := 0; n < fdPerDomain; n++ {
			tk := gs[n%len(gs)]()
			d.Tasks = append(d.Tasks, &model.Task{
				ID:         id,
				Text:       tk.text,
				Choices:    tk.choices,
				Truth:      tk.truth,
				TrueDomain: d.YahooIndex[dom],
			})
			d.EvalLabel = append(d.EvalLabel, dom)
			id++
		}
	}
	return d
}
