// Package dataset generates the four evaluation workloads of the paper
// (Section 6.1) as synthetic equivalents with matched shape:
//
//	Item — 360 comparison tasks over 4 domains (NBA, Food, Auto, Country),
//	       one fixed sentence template per domain so intra-domain text
//	       similarity is very high;
//	4D   — 400 tasks over 4 domains (NBA, Car, Film, Mountain) with many
//	       varied templates per domain, including the paper's deliberately
//	       confusing cross-domain pairs ("compare the height of two
//	       players" vs "compare the height of two mountains");
//	QA   — 1000 free-form question-answering tasks over Entertain, Science,
//	       Sports and Business;
//	SFV  — 328 person-attribute tasks ("slot filling validation") whose
//	       choices mimic candidate answers from QA systems.
//
// Entity names come from the in-repo knowledge base so the DVE pipeline can
// link them; ground truths are derived from deterministic per-entity
// attribute values, so every dataset is exactly reproducible from its seed.
package dataset

import (
	"fmt"
	"hash/fnv"

	"docs/internal/kb"
	"docs/internal/mathx"
	"docs/internal/model"
)

// Dataset is one generated workload.
type Dataset struct {
	// Name is "Item", "4D", "QA" or "SFV".
	Name string
	// Tasks are the generated tasks. Task.Truth holds the ground truth and
	// Task.TrueDomain the Yahoo-domain index of the task's labelled domain;
	// Task.Domain is nil until DVE runs.
	Tasks []*model.Task
	// EvalDomains are the dataset's labelled domain names (e.g. NBA, Food).
	EvalDomains []string
	// YahooIndex[d] is the Yahoo!-domain index EvalDomains[d] maps to.
	YahooIndex []int
	// EvalLabel[i] is the index into EvalDomains of task i's labelled
	// domain.
	EvalLabel []int
}

// NumDomains returns the number of labelled evaluation domains.
func (d *Dataset) NumDomains() int { return len(d.EvalDomains) }

// Validate checks the dataset's structural invariants over m Yahoo domains.
func (d *Dataset) Validate(m int) error {
	if len(d.EvalLabel) != len(d.Tasks) {
		return fmt.Errorf("dataset %s: %d labels for %d tasks", d.Name, len(d.EvalLabel), len(d.Tasks))
	}
	if len(d.YahooIndex) != len(d.EvalDomains) {
		return fmt.Errorf("dataset %s: %d yahoo mappings for %d domains", d.Name, len(d.YahooIndex), len(d.EvalDomains))
	}
	for i, t := range d.Tasks {
		if err := t.Validate(m); err != nil {
			return fmt.Errorf("dataset %s: %w", d.Name, err)
		}
		if lbl := d.EvalLabel[i]; lbl < 0 || lbl >= len(d.EvalDomains) {
			return fmt.Errorf("dataset %s: task %d label %d out of range", d.Name, i, lbl)
		}
		if t.Truth == model.NoTruth {
			return fmt.Errorf("dataset %s: task %d lacks ground truth", d.Name, i)
		}
	}
	return nil
}

// attr returns a stable pseudo-attribute in [0,1) for an entity/attribute
// pair; it is the synthetic stand-in for real-world facts (heights, prices,
// populations) and is independent of any generator seed so ground truths
// are globally consistent.
func attr(entity, attribute string) float64 {
	h := fnv.New64a()
	h.Write([]byte(entity))
	h.Write([]byte{0})
	h.Write([]byte(attribute))
	r := mathx.NewRand(h.Sum64())
	return r.Float64()
}

// compareTruth returns 0 if a beats b on the attribute, 1 otherwise, with a
// deterministic lexicographic tie-break.
func compareTruth(a, b, attribute string) int {
	va, vb := attr(a, attribute), attr(b, attribute)
	if va > vb || (va == vb && a < b) {
		return 0
	}
	return 1
}

// pair draws two distinct members of pool.
func pair(r *mathx.Rand, pool []string) (string, string) {
	i := r.Intn(len(pool))
	j := r.Intn(len(pool) - 1)
	if j >= i {
		j++
	}
	return pool[i], pool[j]
}

// yahooIdx resolves a Yahoo domain name against the default domain set.
func yahooIdx(name string) int {
	ds := kb.MustDefault().Domains()
	k, ok := ds.Index(name)
	if !ok {
		panic("dataset: unknown Yahoo domain " + name)
	}
	return k
}

// ByName returns the named dataset generated with the given seed.
func ByName(name string, seed uint64) (*Dataset, error) {
	switch name {
	case "Item":
		return Item(seed), nil
	case "4D":
		return FourDomain(seed), nil
	case "QA":
		return QA(seed), nil
	case "SFV":
		return SFV(seed), nil
	default:
		return nil, fmt.Errorf("dataset: unknown dataset %q (want Item, 4D, QA or SFV)", name)
	}
}

// Names lists the four dataset names in the paper's order.
func Names() []string { return []string{"Item", "4D", "QA", "SFV"} }

// All generates the four datasets with the given seed.
func All(seed uint64) []*Dataset {
	return []*Dataset{Item(seed), FourDomain(seed), QA(seed), SFV(seed)}
}
