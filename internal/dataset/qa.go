package dataset

import (
	"fmt"

	"docs/internal/kb"
	"docs/internal/mathx"
	"docs/internal/model"
)

// qaTotal is the number of QA tasks (the paper selects 1000 queries).
const qaTotal = 1000

// QA generates the Yahoo-QA dataset: free-form question-answering tasks
// whose best answers came from Yahoo! Answers in the paper. Most queries
// fall into Entertain, Science, Sports and Business (Section 6.2), and the
// phrasing within a domain varies so much that string-similarity topic
// models break down — the regime of Figure 3(c).
func QA(seed uint64) *Dataset {
	r := mathx.NewRand(seed ^ 0x9a9a)
	d := &Dataset{
		Name:        "QA",
		EvalDomains: []string{"Entertain", "Science", "Sports", "Business"},
		YahooIndex: []int{
			yahooIdx("Entertain"), yahooIdx("Science"), yahooIdx("Sports"), yahooIdx("Business"),
		},
	}
	films := kb.CategoryMembers(kb.CatFilm)
	actors := kb.CategoryMembers(kb.CatActor)
	musicians := kb.CategoryMembers(kb.CatMusician)
	scientists := kb.CategoryMembers(kb.CatScientist)
	mountains := kb.CategoryMembers(kb.CatMountain)
	players := kb.CategoryMembers(kb.CatNBAPlayer)
	teams := kb.CategoryMembers(kb.CatNBATeam)
	athletes := kb.CategoryMembers(kb.CatAthlete)
	businesspeople := kb.CategoryMembers(kb.CatBusiness)
	companies := kb.CategoryMembers(kb.CatCompany)

	type task struct {
		text    string
		choices []string
		truth   int
	}
	entertainGen := []func() task{
		func() task {
			f := films[r.Intn(len(films))]
			a, b := pair(r, actors)
			return task{fmt.Sprintf("I just watched %s again - was it %s or %s in the lead role?", f, a, b),
				[]string{a, b}, compareTruth(f+a, f+b, "lead")}
		},
		func() task {
			m := musicians[r.Intn(len(musicians))]
			return task{fmt.Sprintf("Anyone know if %s toured in Europe before hitting number one?", m),
				[]string{"yes", "no"}, int(attr(m, "tour") * 2)}
		},
		func() task {
			a, b := pair(r, films)
			return task{fmt.Sprintf("Settle a bet for me: did %s come out before %s?", a, b),
				[]string{"yes", "no"}, compareTruth(b, a, "year")}
		},
		func() task {
			a, b := pair(r, musicians)
			return task{fmt.Sprintf("Whose albums sold better overall, %s or %s?", a, b),
				[]string{a, b}, compareTruth(a, b, "sales")}
		},
		func() task {
			ac := actors[r.Intn(len(actors))]
			return task{fmt.Sprintf("Has %s ever won an award for a leading role?", ac),
				[]string{"yes", "no"}, int(attr(ac, "award") * 2)}
		},
	}
	scienceGen := []func() task{
		func() task {
			a, b := pair(r, scientists)
			return task{fmt.Sprintf("Who was born first, %s or %s?", a, b),
				[]string{a, b}, compareTruth(a, b, "born")}
		},
		func() task {
			s := scientists[r.Intn(len(scientists))]
			return task{fmt.Sprintf("My homework asks whether %s received a Nobel prize - true?", s),
				[]string{"true", "false"}, int(attr(s, "nobel") * 2)}
		},
		func() task {
			a, b := pair(r, mountains)
			return task{fmt.Sprintf("For a geography quiz: which is higher, %s or %s?", a, b),
				[]string{a, b}, compareTruth(a, b, "height")}
		},
		func() task {
			m := mountains[r.Intn(len(mountains))]
			return task{fmt.Sprintf("Is %s a volcano? I keep getting conflicting answers online.", m),
				[]string{"yes", "no"}, int(attr(m, "volcano") * 2)}
		},
		func() task {
			a, b := pair(r, scientists)
			return task{fmt.Sprintf("Whose discoveries are cited more today, %s or %s?", a, b),
				[]string{a, b}, compareTruth(a, b, "citations")}
		},
	}
	sportsGen := []func() task{
		func() task {
			a, b := pair(r, players)
			return task{fmt.Sprintf("Arguing with my brother: does %s score more points per game than %s?", a, b),
				[]string{"yes", "no"}, compareTruth(a, b, "ppg")}
		},
		func() task {
			tm := teams[r.Intn(len(teams))]
			return task{fmt.Sprintf("Have the %s ever lost a finals series at home?", tm),
				[]string{"yes", "no"}, int(attr(tm, "finals") * 2)}
		},
		func() task {
			a, b := pair(r, athletes)
			return task{fmt.Sprintf("Who earned more prize money across their career, %s or %s?", a, b),
				[]string{a, b}, compareTruth(a, b, "prize")}
		},
		func() task {
			p := players[r.Intn(len(players))]
			tm := teams[r.Intn(len(teams))]
			return task{fmt.Sprintf("Quick question - did %s start his career with the %s?", p, tm),
				[]string{"yes", "no"}, int(attr(p+tm, "started") * 2)}
		},
	}
	businessGen := []func() task{
		func() task {
			a, b := pair(r, businesspeople)
			return task{fmt.Sprintf("Forbes question: is %s wealthier than %s right now?", a, b),
				[]string{"yes", "no"}, compareTruth(a, b, "wealth")}
		},
		func() task {
			a, b := pair(r, companies)
			return task{fmt.Sprintf("Which company reported higher revenue last year, %s or %s?", a, b),
				[]string{a, b}, compareTruth(a, b, "revenue")}
		},
		func() task {
			c := companies[r.Intn(len(companies))]
			return task{fmt.Sprintf("Thinking about investing - has %s stock split in the last decade?", c),
				[]string{"yes", "no"}, int(attr(c, "split") * 2)}
		},
		func() task {
			p := businesspeople[r.Intn(len(businesspeople))]
			c := companies[r.Intn(len(companies))]
			return task{fmt.Sprintf("Did %s ever sit on the board of %s?", p, c),
				[]string{"yes", "no"}, int(attr(p+c, "board") * 2)}
		},
	}

	gens := [][]func() task{entertainGen, scienceGen, sportsGen, businessGen}
	id := 0
	perDomain := qaTotal / len(gens)
	for dom, gs := range gens {
		for n := 0; n < perDomain; n++ {
			tk := gs[r.Intn(len(gs))]()
			d.Tasks = append(d.Tasks, &model.Task{
				ID:         id,
				Text:       tk.text,
				Choices:    tk.choices,
				Truth:      tk.truth,
				TrueDomain: d.YahooIndex[dom],
			})
			d.EvalLabel = append(d.EvalLabel, dom)
			id++
		}
	}
	return d
}
