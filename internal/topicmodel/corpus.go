// Package topicmodel implements the topic-model substrate used by the
// iCrowd and FaitCrowd baselines: Latent Dirichlet Allocation (Blei et al.)
// and TwitterLDA (Zhao et al.), both trained with collapsed Gibbs sampling.
// The paper's baselines model each task's text with these to obtain latent
// domain vectors; DOCS itself does not use them — they exist so the
// comparisons of Figures 3, 5 and 8 run against real implementations.
package topicmodel

import (
	"strings"
)

// stopwords are common function words excluded from the vocabulary; topic
// models degrade badly when they dominate the counts.
var stopwords = map[string]bool{
	"a": true, "an": true, "and": true, "are": true, "as": true, "at": true,
	"be": true, "by": true, "did": true, "do": true, "does": true,
	"for": true, "from": true, "had": true, "has": true, "have": true,
	"how": true, "if": true, "in": true, "is": true, "it": true, "its": true,
	"more": true, "most": true, "much": true, "of": true, "on": true,
	"or": true, "than": true, "that": true, "the": true, "their": true,
	"there": true, "this": true, "to": true, "was": true, "were": true,
	"what": true, "when": true, "where": true, "which": true, "who": true,
	"whose": true, "why": true, "will": true, "with": true, "you": true,
	"your": true, "ever": true, "between": true, "two": true, "given": true,
}

// Corpus is a tokenized document collection over a fixed vocabulary.
type Corpus struct {
	// Docs[d] is document d as a sequence of vocabulary indices.
	Docs [][]int
	// Vocab maps word ID back to the word.
	Vocab []string

	index map[string]int
}

// NewCorpus tokenizes texts (lowercasing, stripping punctuation, dropping
// stopwords and single-character tokens) and builds the vocabulary.
func NewCorpus(texts []string) *Corpus {
	c := &Corpus{index: make(map[string]int)}
	for _, txt := range texts {
		var doc []int
		for _, tok := range tokenize(txt) {
			id, ok := c.index[tok]
			if !ok {
				id = len(c.Vocab)
				c.index[tok] = id
				c.Vocab = append(c.Vocab, tok)
			}
			doc = append(doc, id)
		}
		c.Docs = append(c.Docs, doc)
	}
	return c
}

// VocabSize returns the number of distinct words.
func (c *Corpus) VocabSize() int { return len(c.Vocab) }

// NumDocs returns the number of documents (including empty ones).
func (c *Corpus) NumDocs() int { return len(c.Docs) }

func tokenize(text string) []string {
	var b strings.Builder
	b.Grow(len(text))
	for _, r := range strings.ToLower(text) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '\'':
			b.WriteRune(r)
		case r > 127:
			b.WriteRune(r)
		default:
			b.WriteByte(' ')
		}
	}
	var out []string
	for _, tok := range strings.Fields(b.String()) {
		if len(tok) < 2 || stopwords[tok] {
			continue
		}
		out = append(out, tok)
	}
	return out
}
