package topicmodel

import (
	"testing"

	"docs/internal/mathx"
)

// twoClusterTexts builds a corpus with two vocabularies that never co-occur;
// any reasonable topic model must separate them.
func twoClusterTexts() ([]string, []int) {
	sports := []string{
		"basketball player scores points in the championship game",
		"the team wins the basketball championship this season",
		"famous player dunks during the basketball game",
		"the coach praises the team after the championship win",
		"basketball season ends with the team winning the title",
		"the player signs with a new basketball team",
	}
	cooking := []string{
		"the recipe calls for butter flour and sugar",
		"bake the cake with sugar and fresh butter",
		"mix flour with eggs for the pancake recipe",
		"the chef cooks pasta with tomato sauce",
		"fresh tomato sauce tastes great on pasta",
		"add sugar and butter to the cookie recipe",
	}
	var texts []string
	var labels []int
	for i := 0; i < len(sports); i++ {
		texts = append(texts, sports[i], cooking[i])
		labels = append(labels, 0, 1)
	}
	return texts, labels
}

// clusterAccuracy maps latent topics to labels by majority and returns the
// resulting accuracy (the same manual mapping the paper applies to IC/FC).
func clusterAccuracy(assign []int, labels []int, k int) float64 {
	if len(assign) != len(labels) {
		return 0
	}
	votes := make([]map[int]int, k)
	for i := range votes {
		votes[i] = make(map[int]int)
	}
	for i, a := range assign {
		votes[a][labels[i]]++
	}
	mapping := make([]int, k)
	for t := 0; t < k; t++ {
		best, bestC := 0, -1
		for lbl, c := range votes[t] {
			if c > bestC {
				best, bestC = lbl, c
			}
		}
		mapping[t] = best
	}
	correct := 0
	for i, a := range assign {
		if mapping[a] == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(labels))
}

func TestCorpusTokenization(t *testing.T) {
	c := NewCorpus([]string{"Does the player win more championships?", ""})
	if c.NumDocs() != 2 {
		t.Fatalf("NumDocs = %d, want 2", c.NumDocs())
	}
	if len(c.Docs[1]) != 0 {
		t.Errorf("empty text produced %d tokens", len(c.Docs[1]))
	}
	// Stopwords "does", "the", "more" must be gone.
	if len(c.Docs[0]) != 3 {
		t.Errorf("doc 0 tokens = %d, want 3 (player, win, championships)", len(c.Docs[0]))
	}
	if c.VocabSize() != 3 {
		t.Errorf("vocab = %d, want 3", c.VocabSize())
	}
}

func TestLDASeparatesClusters(t *testing.T) {
	texts, labels := twoClusterTexts()
	c := NewCorpus(texts)
	l := NewLDA(2, 0, 0, 42)
	l.Fit(c, 300)
	assign := make([]int, c.NumDocs())
	for d := range assign {
		assign[d] = mathx.ArgMax(l.DocTopics(d))
	}
	if acc := clusterAccuracy(assign, labels, 2); acc < 0.9 {
		t.Errorf("LDA cluster accuracy = %.2f, want >= 0.9", acc)
	}
}

func TestLDADocTopicsAreDistributions(t *testing.T) {
	texts, _ := twoClusterTexts()
	c := NewCorpus(texts)
	l := NewLDA(3, 0, 0, 7)
	l.Fit(c, 50)
	for d := 0; d < c.NumDocs(); d++ {
		if err := mathx.CheckDistribution(l.DocTopics(d), 1e-9); err != nil {
			t.Fatalf("doc %d: %v", d, err)
		}
	}
	for k := 0; k < 3; k++ {
		if err := mathx.CheckDistribution(l.TopicWords(k), 1e-9); err != nil {
			t.Fatalf("topic %d: %v", k, err)
		}
	}
}

func TestLDAEmptyDocUniform(t *testing.T) {
	c := NewCorpus([]string{"basketball game", ""})
	l := NewLDA(2, 0, 0, 1)
	l.Fit(c, 10)
	th := l.DocTopics(1)
	if th[0] != 0.5 || th[1] != 0.5 {
		t.Errorf("empty doc topics = %v, want uniform", th)
	}
}

func TestLDADeterministicGivenSeed(t *testing.T) {
	texts, _ := twoClusterTexts()
	run := func() []float64 {
		c := NewCorpus(texts)
		l := NewLDA(2, 0, 0, 99)
		l.Fit(c, 50)
		return l.DocTopics(0)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed produced different results: %v vs %v", a, b)
		}
	}
}

func TestTwitterLDASeparatesClusters(t *testing.T) {
	texts, labels := twoClusterTexts()
	c := NewCorpus(texts)
	tl := NewTwitterLDA(2, 42)
	tl.Fit(c, 200)
	assign := make([]int, c.NumDocs())
	for d := range assign {
		assign[d] = tl.DocTopic(d)
	}
	if acc := clusterAccuracy(assign, labels, 2); acc < 0.9 {
		t.Errorf("TwitterLDA cluster accuracy = %.2f, want >= 0.9", acc)
	}
}

func TestTwitterLDADocTopicsAreDistributions(t *testing.T) {
	texts, _ := twoClusterTexts()
	c := NewCorpus(texts)
	tl := NewTwitterLDA(3, 5)
	tl.Fit(c, 60)
	for d := 0; d < c.NumDocs(); d++ {
		dist := tl.DocTopics(d)
		if err := mathx.CheckDistribution(dist, 1e-9); err != nil {
			t.Fatalf("doc %d: %v", d, err)
		}
		// The sampled hard topic should be plausible under the soft
		// distribution (not the single least likely topic).
		least := 0
		for k := range dist {
			if dist[k] < dist[least] {
				least = k
			}
		}
		if tl.DocTopic(d) == least && dist[least] < 0.05 {
			t.Errorf("doc %d: hard topic %d has soft mass %g", d, tl.DocTopic(d), dist[least])
		}
	}
}
