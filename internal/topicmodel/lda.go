package topicmodel

import (
	"docs/internal/mathx"
)

// LDA is Latent Dirichlet Allocation trained by collapsed Gibbs sampling.
// Document-topic proportions θ_d carry a symmetric Dirichlet(α) prior and
// topic-word distributions φ_k a symmetric Dirichlet(β) prior.
type LDA struct {
	K     int     // number of topics (m' in the paper's IC baseline)
	Alpha float64 // document-topic concentration
	Beta  float64 // topic-word concentration

	corpus *Corpus
	z      [][]int // token topic assignments
	ndk    [][]int // doc-topic counts
	nkw    [][]int // topic-word counts
	nk     []int   // topic totals
	rand   *mathx.Rand
}

// NewLDA returns an LDA sampler with the given topic count and seed.
// When non-positive values are supplied, Alpha defaults to 0.1 and Beta to
// 0.01: crowdsourcing task descriptions are short documents, and the
// classic 50/K heuristic over-smooths θ_d so badly on 5–10-token texts
// that the argmax topic is near-random.
func NewLDA(k int, alpha, beta float64, seed uint64) *LDA {
	if alpha <= 0 {
		alpha = 0.1
	}
	if beta <= 0 {
		beta = 0.01
	}
	return &LDA{K: k, Alpha: alpha, Beta: beta, rand: mathx.NewRand(seed)}
}

// Fit runs iters sweeps of collapsed Gibbs sampling over the corpus.
func (l *LDA) Fit(c *Corpus, iters int) {
	l.corpus = c
	V := c.VocabSize()
	l.z = make([][]int, c.NumDocs())
	l.ndk = make([][]int, c.NumDocs())
	l.nkw = make([][]int, l.K)
	for k := range l.nkw {
		l.nkw[k] = make([]int, V)
	}
	l.nk = make([]int, l.K)

	// Random initialization.
	for d, doc := range c.Docs {
		l.z[d] = make([]int, len(doc))
		l.ndk[d] = make([]int, l.K)
		for n, w := range doc {
			k := l.rand.Intn(l.K)
			l.z[d][n] = k
			l.ndk[d][k]++
			l.nkw[k][w]++
			l.nk[k]++
		}
	}

	weights := make([]float64, l.K)
	vb := float64(V) * l.Beta
	for it := 0; it < iters; it++ {
		for d, doc := range c.Docs {
			for n, w := range doc {
				old := l.z[d][n]
				l.ndk[d][old]--
				l.nkw[old][w]--
				l.nk[old]--
				for k := 0; k < l.K; k++ {
					weights[k] = (float64(l.ndk[d][k]) + l.Alpha) *
						(float64(l.nkw[k][w]) + l.Beta) /
						(float64(l.nk[k]) + vb)
				}
				nk := l.rand.Categorical(weights)
				l.z[d][n] = nk
				l.ndk[d][nk]++
				l.nkw[nk][w]++
				l.nk[nk]++
			}
		}
	}
}

// DocTopics returns the posterior document-topic distribution θ_d.
// Documents with no tokens get the uniform distribution.
func (l *LDA) DocTopics(d int) []float64 {
	theta := make([]float64, l.K)
	total := 0
	for _, c := range l.ndk[d] {
		total += c
	}
	if total == 0 {
		return mathx.Uniform(l.K)
	}
	denom := float64(total) + float64(l.K)*l.Alpha
	for k := 0; k < l.K; k++ {
		theta[k] = (float64(l.ndk[d][k]) + l.Alpha) / denom
	}
	return theta
}

// TopicWords returns the posterior topic-word distribution φ_k.
func (l *LDA) TopicWords(k int) []float64 {
	V := l.corpus.VocabSize()
	phi := make([]float64, V)
	denom := float64(l.nk[k]) + float64(V)*l.Beta
	for w := 0; w < V; w++ {
		phi[w] = (float64(l.nkw[k][w]) + l.Beta) / denom
	}
	return phi
}
