package topicmodel

import (
	"math"

	"docs/internal/mathx"
)

// TwitterLDA is the short-text topic model of Zhao et al. (ECIR 2011),
// which the FaitCrowd baseline uses: every document carries a single latent
// topic z_d, and each token is either drawn from that topic's word
// distribution or from a shared background distribution, switched by a
// Bernoulli gate. Collapsed Gibbs sampling alternates the per-token gates
// and the per-document topics.
type TwitterLDA struct {
	K     int     // number of topics (m'' in the paper's FC baseline)
	Alpha float64 // topic proportion concentration
	Beta  float64 // word distribution concentration
	Gamma float64 // Beta prior on the background gate

	corpus *Corpus
	zd     []int   // per-document topic
	y      [][]int // per-token gate: 0 = background, 1 = topic
	nkTop  []int   // documents per topic
	nkw    [][]int // topic-word counts (gated tokens only)
	nk     []int   // topic token totals
	nbw    []int   // background word counts
	nb     int     // background token total
	nyc    [2]int  // gate counts
	rand   *mathx.Rand
}

// NewTwitterLDA returns a sampler with the given topic count and seed.
func NewTwitterLDA(k int, seed uint64) *TwitterLDA {
	return &TwitterLDA{K: k, Alpha: 50.0 / float64(k), Beta: 0.01, Gamma: 20, rand: mathx.NewRand(seed)}
}

// Fit runs iters Gibbs sweeps over the corpus.
func (t *TwitterLDA) Fit(c *Corpus, iters int) {
	t.corpus = c
	V := c.VocabSize()
	D := c.NumDocs()
	t.zd = make([]int, D)
	t.y = make([][]int, D)
	t.nkTop = make([]int, t.K)
	t.nkw = make([][]int, t.K)
	for k := range t.nkw {
		t.nkw[k] = make([]int, V)
	}
	t.nk = make([]int, t.K)
	t.nbw = make([]int, V)
	t.nb = 0
	t.nyc = [2]int{}

	for d, doc := range c.Docs {
		t.zd[d] = t.rand.Intn(t.K)
		t.nkTop[t.zd[d]]++
		t.y[d] = make([]int, len(doc))
		for n, w := range doc {
			g := t.rand.Intn(2)
			t.y[d][n] = g
			t.nyc[g]++
			if g == 0 {
				t.nbw[w]++
				t.nb++
			} else {
				t.nkw[t.zd[d]][w]++
				t.nk[t.zd[d]]++
			}
		}
	}

	vb := float64(V) * t.Beta
	logW := make([]float64, t.K)
	for it := 0; it < iters; it++ {
		// Resample per-token gates.
		for d, doc := range c.Docs {
			k := t.zd[d]
			for n, w := range doc {
				if t.y[d][n] == 0 {
					t.nbw[w]--
					t.nb--
					t.nyc[0]--
				} else {
					t.nkw[k][w]--
					t.nk[k]--
					t.nyc[1]--
				}
				pBg := (float64(t.nyc[0]) + t.Gamma) *
					(float64(t.nbw[w]) + t.Beta) / (float64(t.nb) + vb)
				pTop := (float64(t.nyc[1]) + t.Gamma) *
					(float64(t.nkw[k][w]) + t.Beta) / (float64(t.nk[k]) + vb)
				g := 0
				if t.rand.Float64() < pTop/(pBg+pTop) {
					g = 1
				}
				t.y[d][n] = g
				t.nyc[g]++
				if g == 0 {
					t.nbw[w]++
					t.nb++
				} else {
					t.nkw[k][w]++
					t.nk[k]++
				}
			}
		}
		// Resample per-document topics.
		for d, doc := range c.Docs {
			old := t.zd[d]
			t.nkTop[old]--
			// Remove this doc's gated tokens from the old topic.
			for n, w := range doc {
				if t.y[d][n] == 1 {
					t.nkw[old][w]--
					t.nk[old]--
				}
			}
			for k := 0; k < t.K; k++ {
				lw := math.Log(float64(t.nkTop[k]) + t.Alpha)
				// Sequential likelihood of the doc's gated tokens under
				// topic k, with within-doc repetition handled by offsets.
				seen := make(map[int]int)
				pos := 0
				for n, w := range doc {
					if t.y[d][n] != 1 {
						continue
					}
					lw += math.Log((float64(t.nkw[k][w]) + t.Beta + float64(seen[w])) /
						(float64(t.nk[k]) + vb + float64(pos)))
					seen[w]++
					pos++
				}
				logW[k] = lw
			}
			nk := sampleLog(t.rand, logW)
			t.zd[d] = nk
			t.nkTop[nk]++
			for n, w := range doc {
				if t.y[d][n] == 1 {
					t.nkw[nk][w]++
					t.nk[nk]++
				}
			}
		}
	}
}

// DocTopic returns the sampled topic of document d.
func (t *TwitterLDA) DocTopic(d int) int { return t.zd[d] }

// DocTopics returns a soft document-topic distribution for document d,
// computed as the posterior predictive over topics given the final counts.
func (t *TwitterLDA) DocTopics(d int) []float64 {
	V := t.corpus.VocabSize()
	vb := float64(V) * t.Beta
	logW := make([]float64, t.K)
	doc := t.corpus.Docs[d]
	for k := 0; k < t.K; k++ {
		lw := math.Log(float64(t.nkTop[k]) + t.Alpha)
		seen := make(map[int]int)
		pos := 0
		for n, w := range doc {
			if t.y[d][n] != 1 {
				continue
			}
			lw += math.Log((float64(t.nkw[k][w]) + t.Beta + float64(seen[w])) /
				(float64(t.nk[k]) + vb + float64(pos)))
			seen[w]++
			pos++
		}
		logW[k] = lw
	}
	return softmaxLog(logW)
}

// sampleLog draws an index proportional to exp(logw) stably.
func sampleLog(r *mathx.Rand, logw []float64) int {
	return r.Categorical(softmaxLog(logw))
}

func softmaxLog(logw []float64) []float64 {
	max := logw[0]
	for _, x := range logw[1:] {
		if x > max {
			max = x
		}
	}
	w := make([]float64, len(logw))
	for i, x := range logw {
		w[i] = math.Exp(x - max)
	}
	return mathx.Normalize(w)
}
