package store

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"docs/internal/truth"
)

func mkStats(m int, base float64) *truth.Stats {
	st := truth.NewStats(m)
	for k := 0; k < m; k++ {
		st.Q[k] = 0.5 + base/10
		st.U[k] = base
	}
	return st
}

func statsEqual(a, b *truth.Stats) bool {
	if len(a.Q) != len(b.Q) || len(a.U) != len(b.U) {
		return false
	}
	for k := range a.Q {
		if math.Float64bits(a.Q[k]) != math.Float64bits(b.Q[k]) ||
			math.Float64bits(a.U[k]) != math.Float64bits(b.U[k]) {
			return false
		}
	}
	return true
}

// TestDeltaDurabilityWithoutSave is the point of checkpoint-plus-delta:
// updates that returned success survive a crash even when Save never ran.
// (The seed's whole-file-on-Save design lost everything since the last
// Save.)
func TestDeltaDurabilityWithoutSave(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.json")
	s, err := Open(path, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Merge("w1", mkStats(3, 2)); err != nil {
		t.Fatal(err)
	}
	if err := s.Merge("w1", mkStats(3, 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("w2", mkStats(3, 4)); err != nil {
		t.Fatal(err)
	}
	want1, _ := s.Worker("w1")
	want2, _ := s.Worker("w2")
	// No Save, no Close: the "crashed" process just stops. Reopen.
	s2, err := Open(path, 3)
	if err != nil {
		t.Fatal(err)
	}
	got1, ok1 := s2.Worker("w1")
	got2, ok2 := s2.Worker("w2")
	if !ok1 || !ok2 || !statsEqual(got1, want1) || !statsEqual(got2, want2) {
		t.Fatal("unsaved updates did not survive reopen")
	}
}

// TestTornDeltaTailTolerated simulates a crash mid-append: the torn final
// record is dropped, everything before it survives.
func TestTornDeltaTailTolerated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.json")
	s, err := Open(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Merge("w1", mkStats(2, 2)); err != nil {
		t.Fatal(err)
	}
	want, _ := s.Worker("w1")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path + ".delta")
	if err != nil {
		t.Fatal(err)
	}
	// Append half of a duplicate record — a torn write.
	if err := os.WriteFile(path+".delta", append(data, data[:len(data)/2]...), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s2.Worker("w1")
	if !ok || !statsEqual(got, want) {
		t.Fatal("intact prefix lost after torn tail")
	}
}

// TestCrashMidSaveKeepsOldCheckpoint: Save goes through a temp file and an
// atomic rename, so a copy of the state mid-write (the temp file) never
// shadows the real checkpoint, and a straggler temp file is ignored by
// Open.
func TestCrashMidSaveKeepsOldCheckpoint(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.json")
	s, err := Open(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Merge("w1", mkStats(2, 3)); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(); err != nil {
		t.Fatal(err)
	}
	want, _ := s.Worker("w1")
	// Simulate a crash mid-save: a partially-written temp file next to the
	// checkpoint (the rename never happened).
	if err := os.WriteFile(filepath.Join(dir, ".store-crash.json"), []byte(`{"m":2,"wor`), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s2.Worker("w1")
	if !ok || !statsEqual(got, want) {
		t.Fatal("checkpoint lost to a crashed save")
	}
}

// TestStaleDeltasNotReappliedAfterSave covers the crash window between the
// checkpoint rename and the delta-log reset: deltas already folded into
// the checkpoint must not double-apply (Merge is not idempotent).
func TestStaleDeltasNotReappliedAfterSave(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.json")
	s, err := Open(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Merge("w1", mkStats(2, 2)); err != nil {
		t.Fatal(err)
	}
	stale, err := os.ReadFile(path + ".delta")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save(); err != nil {
		t.Fatal(err)
	}
	want, _ := s.Worker("w1")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Crash restored the world to: new checkpoint + old (pre-save) deltas.
	if err := os.WriteFile(path+".delta", stale, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s2.Worker("w1")
	if !ok || !statsEqual(got, want) {
		t.Fatal("stale delta re-applied on top of the checkpoint that folded it in")
	}
	// And new deltas after the reopened Save generation still apply.
	if err := s2.Merge("w1", mkStats(2, 1)); err != nil {
		t.Fatal(err)
	}
	want2, _ := s2.Worker("w1")
	s3, err := Open(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	got2, _ := s3.Worker("w1")
	if !statsEqual(got2, want2) {
		t.Fatal("post-save delta lost")
	}
}

// TestDeltaMidFileCorruptionRejected: torn-tail tolerance must not mask a
// rotted record with valid data after it.
func TestDeltaMidFileCorruptionRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.json")
	s, err := Open(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Merge("w1", mkStats(2, 2)); err != nil {
		t.Fatal(err)
	}
	if err := s.Merge("w2", mkStats(2, 3)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path + ".delta")
	if err != nil {
		t.Fatal(err)
	}
	data[12] ^= 0xff // inside the first record's payload
	if err := os.WriteFile(path+".delta", data, 0o644); err != nil {
		t.Fatal(err)
	}
	// The flip breaks the first frame's CRC while all its bytes are
	// present — that is rot, not a torn append, and silently dropping the
	// valid second record behind it would lose acknowledged state. Open
	// must refuse.
	if _, err := Open(path, 2); err == nil {
		t.Fatal("mid-file delta corruption accepted")
	}
}

// TestSaveResetsDeltaLog: after Save the delta file is empty, so replay
// cost does not grow without bound.
func TestSaveResetsDeltaLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.json")
	s, err := Open(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.Merge("w", mkStats(2, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if fi, err := os.Stat(path + ".delta"); err != nil || fi.Size() == 0 {
		t.Fatalf("delta log missing or empty before save: %v", err)
	}
	if err := s.Save(); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(path + ".delta"); err != nil || fi.Size() != 0 {
		t.Fatalf("delta log not reset by save (size %d, err %v)", fi.Size(), err)
	}
	// The checkpoint alone now carries the state.
	if data, err := os.ReadFile(path); err != nil || !strings.Contains(string(data), `"w"`) {
		t.Fatalf("checkpoint missing merged worker: %v", err)
	}
}
