// Package store persists DOCS's long-run parameters: each worker's quality
// vector q^w and weight vector u^w (Section 4.2, Theorem 1). The paper keeps
// these in the system's SQL database so workers returning for a later
// requester's tasks start from their history; here the store is an
// in-memory map persisted as a checkpoint plus a delta log, safe for
// concurrent use by the HTTP server.
//
// # On-disk layout
//
// The checkpoint at `path` is a JSON snapshot, always replaced atomically
// (temp file, fsync, rename, directory fsync), so a crash mid-save leaves
// the previous checkpoint intact. Between saves, every Merge and Put also
// appends one CRC-framed JSON record to `path+".delta"`, so a crash loses
// no update that ever returned success — the seed rewrote the whole JSON
// file on Save only, leaving everything since the last Save to die with
// the process. Open loads the checkpoint and replays the delta log; a torn
// final delta (the crash interrupted the append) is dropped, torn data
// anywhere else is corruption. Save folds the deltas into a fresh
// checkpoint and resets the log.
//
// Replaying a delta twice would double-count a Merge, so checkpoint and
// deltas carry a generation number: Save bumps it, and Open skips deltas
// older than the checkpoint's generation — which is exactly the crash
// window between the checkpoint rename and the delta-log reset.
//
// Golden-profiling merges go through MergeProfile, which additionally
// records each merge under a caller-chosen profile ID (one per
// campaign×worker) together with the post-merge statistics. The record
// makes the merge idempotent across campaign-log replays — crash
// recovery and the snapshot shadow replica re-drive the same gauntlet
// completion through the same code path — and lets a merge whose delta
// died with the process be repaired bit-exactly from the replay.
package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"docs/internal/truth"
	"docs/internal/wal"
)

// Store holds per-worker statistics, keyed by platform worker ID.
type Store struct {
	mu      sync.RWMutex
	m       int
	workers map[string]*truth.Stats
	// profiles records every profiling merge that was ever applied, keyed
	// by a caller-chosen profile ID (one per campaign×worker), mapping to
	// the post-merge statistics the merge produced. MergeProfile consults
	// it to apply each profiling merge exactly once no matter how many
	// times the same campaign event is replayed (live, crash recovery,
	// snapshot shadow), and returns the recorded value so every replica
	// anchors on identical bits.
	profiles map[string]*truth.Stats
	path     string
	gen      uint64   // bumped by every Save; tags delta records
	deltaF   *os.File // append-only delta log, nil for memory-only stores
}

// snapshot is the checkpoint JSON wire format.
type snapshot struct {
	M        int                     `json:"m"`
	Gen      uint64                  `json:"gen,omitempty"`
	Workers  map[string]*truth.Stats `json:"workers"`
	Profiles map[string]*truth.Stats `json:"profiles,omitempty"`
}

// delta is one logged update. A "profile" delta carries the merged session
// stats plus the profile ID; the recorded post-merge anchor is recomputed
// on replay (deltas re-apply in order onto the checkpointed state, so the
// recomputation is bit-identical to the original).
type delta struct {
	Gen   uint64       `json:"gen"`
	Op    string       `json:"op"` // "merge", "put" or "profile"
	ID    string       `json:"id"`
	PID   string       `json:"pid,omitempty"` // profile ID, op "profile" only
	Stats *truth.Stats `json:"stats"`
}

// Open creates a store over m domains. If path is non-empty the checkpoint
// (if present) is loaded and the delta log replayed; Save writes back to
// the same path. An empty path keeps the store memory-only.
func Open(path string, m int) (*Store, error) {
	if m <= 0 {
		return nil, fmt.Errorf("store: m = %d, want > 0", m)
	}
	s := &Store{m: m, workers: make(map[string]*truth.Stats), profiles: make(map[string]*truth.Stats), path: path}
	if path == "" {
		return s, nil
	}
	data, err := os.ReadFile(path)
	switch {
	case errors.Is(err, fs.ErrNotExist):
		// fresh store
	case err != nil:
		return nil, fmt.Errorf("store: %w", err)
	default:
		var snap snapshot
		if err := json.Unmarshal(data, &snap); err != nil {
			return nil, fmt.Errorf("store: corrupt snapshot %s: %w", path, err)
		}
		if snap.M != m {
			return nil, fmt.Errorf("store: snapshot has m=%d, want %d", snap.M, m)
		}
		for w, st := range snap.Workers {
			if err := st.Validate(m); err != nil {
				return nil, fmt.Errorf("store: worker %q: %w", w, err)
			}
			s.workers[w] = st
		}
		for pid, st := range snap.Profiles {
			if err := st.Validate(m); err != nil {
				return nil, fmt.Errorf("store: profile %q: %w", pid, err)
			}
			s.profiles[pid] = st
		}
		s.gen = snap.Gen
	}
	if err := s.replayDeltas(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(s.deltaPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s.deltaF = f
	return s, nil
}

func (s *Store) deltaPath() string { return s.path + ".delta" }

// Persistent reports whether the store is file-backed: its contents
// survive the process, so replay-style recovery must not re-apply merges
// the store already absorbed.
func (s *Store) Persistent() bool { return s.path != "" }

// replayDeltas applies the delta log on top of the loaded checkpoint,
// skipping records from generations the checkpoint already folded in and
// tolerating a torn final record.
func (s *Store) replayDeltas() error {
	data, err := os.ReadFile(s.deltaPath())
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	torn, err := wal.DecodeFrames(data, func(payload []byte) error {
		var d delta
		if err := json.Unmarshal(payload, &d); err != nil {
			return fmt.Errorf("store: corrupt delta record: %w", err)
		}
		if d.Gen < s.gen {
			// Written before the checkpoint that is already loaded; the
			// crash hit between checkpoint rename and delta reset.
			return nil
		}
		if d.Stats == nil {
			return fmt.Errorf("store: delta for %q has no stats", d.ID)
		}
		if err := d.Stats.Validate(s.m); err != nil {
			return fmt.Errorf("store: delta for %q: %w", d.ID, err)
		}
		switch d.Op {
		case "merge":
			s.mergeLocked(d.ID, d.Stats)
		case "put":
			s.workers[d.ID] = d.Stats.Clone()
		case "profile":
			if d.PID == "" {
				return fmt.Errorf("store: profile delta for %q has no profile ID", d.ID)
			}
			s.mergeLocked(d.ID, d.Stats)
			s.profiles[d.PID] = s.workers[d.ID].Clone()
		default:
			return fmt.Errorf("store: delta op %q", d.Op)
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("store: delta log %s: %w", s.deltaPath(), err)
	}
	_ = torn // a torn tail is the expected crash artifact; drop it silently
	return nil
}

// appendDelta logs one update, fsynced before returning: WAL recovery
// relies on a persistent store's merges being durable (it skips
// re-applying them), so a delta that only reached the page cache would be
// a silent loss under power failure. Deltas are rare — one per worker
// profiling plus one per worker per Results call — so the fsync is off
// every hot path. Callers hold s.mu.
func (s *Store) appendDelta(op, id, pid string, st *truth.Stats) error {
	if s.deltaF == nil {
		return nil
	}
	payload, err := json.Marshal(delta{Gen: s.gen, Op: op, ID: id, PID: pid, Stats: st})
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := s.deltaF.Write(wal.EncodeFrame(nil, payload)); err != nil {
		return fmt.Errorf("store: delta: %w", err)
	}
	if err := s.deltaF.Sync(); err != nil {
		return fmt.Errorf("store: delta: %w", err)
	}
	return nil
}

// Len returns the number of workers with stored statistics.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.workers)
}

// Worker returns a copy of the stored statistics for the worker, and
// whether any exist.
func (s *Store) Worker(id string) (*truth.Stats, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st, ok := s.workers[id]
	if !ok {
		return nil, false
	}
	return st.Clone(), true
}

// Put overwrites the worker's stored statistics (durably, when the store
// is file-backed: the delta is on disk before Put returns).
func (s *Store) Put(id string, st *truth.Stats) error {
	if err := st.Validate(s.m); err != nil {
		return fmt.Errorf("store: worker %q: %w", id, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.workers[id] = st.Clone()
	return s.appendDelta("put", id, "", st)
}

// Merge folds a session's statistics into the stored ones per Theorem 1,
// creating the record if absent (durably, when the store is file-backed).
func (s *Store) Merge(id string, session *truth.Stats) error {
	if err := session.Validate(s.m); err != nil {
		return fmt.Errorf("store: worker %q: %w", id, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mergeLocked(id, session)
	return s.appendDelta("merge", id, "", session)
}

// MergeProfile applies a golden-profiling merge exactly once per profile
// ID. The first call with a given pid merges the session statistics into
// the worker's stored record (durably, when file-backed: the delta is
// fsynced before returning) and records the post-merge value under pid;
// every later call — a crash-recovery replay of the same gauntlet
// completion, the snapshot shadow replica re-applying it, a double boot —
// finds the pid and returns the recorded value WITHOUT touching the
// worker's record, so replay cannot double-count and a merge whose delta
// died with the process is repaired from the replayed campaign log (the
// pid is then absent, and the merge re-applies identically because the
// worker's stored record is exactly as it was before the lost merge).
//
// The returned anchor is the post-merge statistics as first recorded; all
// replicas of the campaign see identical bits, which is what lets reruns
// initialize worker quality reproducibly across live serving and
// recovery (see core's profiling path).
func (s *Store) MergeProfile(pid, id string, session *truth.Stats) (anchor *truth.Stats, applied bool, err error) {
	if pid == "" {
		return nil, false, fmt.Errorf("store: empty profile ID for worker %q", id)
	}
	if err := session.Validate(s.m); err != nil {
		return nil, false, fmt.Errorf("store: worker %q: %w", id, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if a, ok := s.profiles[pid]; ok {
		return a.Clone(), false, nil
	}
	s.mergeLocked(id, session)
	anchor = s.workers[id].Clone()
	s.profiles[pid] = anchor.Clone()
	if err := s.appendDelta("profile", id, pid, session); err != nil {
		return nil, false, err
	}
	return anchor, true, nil
}

// SetProfile installs a recorded anchor under a profile ID without merging
// anything — the snapshot-restore path for memory-only stores, whose
// profile ledger (like their worker records) is derived state the snapshot
// must carry. It does not write a delta; persistent stores restore their
// ledger from their own file and must never take this path.
func (s *Store) SetProfile(pid string, anchor *truth.Stats) error {
	if pid == "" {
		return fmt.Errorf("store: empty profile ID")
	}
	if err := anchor.Validate(s.m); err != nil {
		return fmt.Errorf("store: profile %q: %w", pid, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.profiles[pid] = anchor.Clone()
	return nil
}

// ProfileIDs returns the recorded profile IDs in sorted order.
func (s *Store) ProfileIDs() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ids := make([]string, 0, len(s.profiles))
	for pid := range s.profiles {
		ids = append(ids, pid)
	}
	sort.Strings(ids)
	return ids
}

// ProfileAnchor returns a copy of the post-merge statistics recorded under
// the profile ID, and whether the ID is known.
func (s *Store) ProfileAnchor(pid string) (*truth.Stats, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	a, ok := s.profiles[pid]
	if !ok {
		return nil, false
	}
	return a.Clone(), true
}

func (s *Store) mergeLocked(id string, session *truth.Stats) {
	cur, ok := s.workers[id]
	if !ok {
		cur = &truth.Stats{Q: make([]float64, s.m), U: make([]float64, s.m)}
		for k := range cur.Q {
			cur.Q[k] = truth.DefaultQuality
		}
		s.workers[id] = cur
	}
	cur.Merge(session)
}

// Workers returns the stored worker IDs in sorted order.
func (s *Store) Workers() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ids := make([]string, 0, len(s.workers))
	for id := range s.workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Save writes a fresh checkpoint atomically (temp file, fsync, rename,
// directory fsync) and resets the delta log. A crash at any point leaves a
// loadable store: before the rename the old checkpoint + deltas win, after
// it the generation guard keeps the stale deltas from re-applying. It is a
// no-op for memory-only stores.
//
// Save deliberately holds the exclusive lock across the file I/O: a Merge
// landing between the marshal and the delta-log reset would append a
// record the new checkpoint does not contain and the reset then destroys.
// The stall is bounded by one small-file write + fsync and Save is only
// called from Results (itself a full batch inference), so correctness wins
// over the brief pause.
func (s *Store) Save() error {
	if s.path == "" {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := snapshot{M: s.m, Gen: s.gen + 1, Workers: s.workers, Profiles: s.profiles}
	data, err := json.MarshalIndent(&snap, "", "  ")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	dir := filepath.Dir(s.path)
	tmp, err := os.CreateTemp(dir, ".store-*.json")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("store: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmpName, s.path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	s.gen++
	// Reset the delta log: its records are folded into the checkpoint now.
	if s.deltaF != nil {
		if err := s.deltaF.Truncate(0); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		if _, err := s.deltaF.Seek(0, 0); err != nil {
			return fmt.Errorf("store: %w", err)
		}
	}
	return nil
}

// Close releases the delta log file handle. The store must not be used
// after Close.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.deltaF == nil {
		return nil
	}
	err := s.deltaF.Close()
	s.deltaF = nil
	return err
}
