// Package store persists DOCS's long-run parameters: each worker's quality
// vector q^w and weight vector u^w (Section 4.2, Theorem 1). The paper keeps
// these in the system's SQL database so workers returning for a later
// requester's tasks start from their history; here the store is an
// in-memory map with an optional JSON snapshot on disk, safe for concurrent
// use by the HTTP server.
package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"docs/internal/truth"
)

// Store holds per-worker statistics, keyed by platform worker ID.
type Store struct {
	mu      sync.RWMutex
	m       int
	workers map[string]*truth.Stats
	path    string
}

// snapshot is the JSON wire format.
type snapshot struct {
	M       int                     `json:"m"`
	Workers map[string]*truth.Stats `json:"workers"`
}

// Open creates a store over m domains. If path is non-empty and the file
// exists, the snapshot is loaded; Save writes back to the same path. An
// empty path keeps the store memory-only.
func Open(path string, m int) (*Store, error) {
	if m <= 0 {
		return nil, fmt.Errorf("store: m = %d, want > 0", m)
	}
	s := &Store{m: m, workers: make(map[string]*truth.Stats), path: path}
	if path == "" {
		return s, nil
	}
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return s, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var snap snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("store: corrupt snapshot %s: %w", path, err)
	}
	if snap.M != m {
		return nil, fmt.Errorf("store: snapshot has m=%d, want %d", snap.M, m)
	}
	for w, st := range snap.Workers {
		if err := st.Validate(m); err != nil {
			return nil, fmt.Errorf("store: worker %q: %w", w, err)
		}
		s.workers[w] = st
	}
	return s, nil
}

// Len returns the number of workers with stored statistics.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.workers)
}

// Worker returns a copy of the stored statistics for the worker, and
// whether any exist.
func (s *Store) Worker(id string) (*truth.Stats, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st, ok := s.workers[id]
	if !ok {
		return nil, false
	}
	return st.Clone(), true
}

// Put overwrites the worker's stored statistics.
func (s *Store) Put(id string, st *truth.Stats) error {
	if err := st.Validate(s.m); err != nil {
		return fmt.Errorf("store: worker %q: %w", id, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.workers[id] = st.Clone()
	return nil
}

// Merge folds a session's statistics into the stored ones per Theorem 1,
// creating the record if absent.
func (s *Store) Merge(id string, session *truth.Stats) error {
	if err := session.Validate(s.m); err != nil {
		return fmt.Errorf("store: worker %q: %w", id, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cur, ok := s.workers[id]
	if !ok {
		cur = &truth.Stats{Q: make([]float64, s.m), U: make([]float64, s.m)}
		for k := range cur.Q {
			cur.Q[k] = truth.DefaultQuality
		}
		s.workers[id] = cur
	}
	cur.Merge(session)
	return nil
}

// Workers returns the stored worker IDs in sorted order.
func (s *Store) Workers() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ids := make([]string, 0, len(s.workers))
	for id := range s.workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Save writes the JSON snapshot atomically (write temp file, rename). It is
// a no-op for memory-only stores.
func (s *Store) Save() error {
	if s.path == "" {
		return nil
	}
	s.mu.RLock()
	snap := snapshot{M: s.m, Workers: s.workers}
	data, err := json.MarshalIndent(&snap, "", "  ")
	s.mu.RUnlock()
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	dir := filepath.Dir(s.path)
	tmp, err := os.CreateTemp(dir, ".store-*.json")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmpName, s.path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: %w", err)
	}
	return nil
}
