package store

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"docs/internal/truth"
)

func TestOpenMemoryOnly(t *testing.T) {
	s, err := Open("", 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Errorf("fresh store has %d workers", s.Len())
	}
	if err := s.Save(); err != nil {
		t.Errorf("memory-only Save: %v", err)
	}
}

func TestOpenErrors(t *testing.T) {
	if _, err := Open("", 0); err == nil {
		t.Error("m=0 accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(bad, 3); err == nil {
		t.Error("corrupt snapshot accepted")
	}
}

func TestPutWorkerRoundTrip(t *testing.T) {
	s, _ := Open("", 2)
	st := truth.NewStats(2)
	st.Q[0] = 0.9
	st.U[0] = 4
	if err := s.Put("alice", st); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Worker("alice")
	if !ok {
		t.Fatal("worker missing after Put")
	}
	if got.Q[0] != 0.9 || got.U[0] != 4 {
		t.Errorf("round trip lost data: %+v", got)
	}
	// Returned stats are a copy.
	got.Q[0] = 0.1
	again, _ := s.Worker("alice")
	if again.Q[0] != 0.9 {
		t.Error("Worker returned a live reference")
	}
	if _, ok := s.Worker("bob"); ok {
		t.Error("missing worker found")
	}
}

func TestPutValidates(t *testing.T) {
	s, _ := Open("", 2)
	bad := &truth.Stats{Q: []float64{0.5}, U: []float64{1}}
	if err := s.Put("x", bad); err == nil {
		t.Error("wrong-size stats accepted")
	}
}

func TestMergeTheorem1(t *testing.T) {
	s, _ := Open("", 1)
	first := &truth.Stats{Q: []float64{0.8}, U: []float64{4}}
	if err := s.Merge("w", first); err != nil {
		t.Fatal(err)
	}
	second := &truth.Stats{Q: []float64{0.5}, U: []float64{1}}
	if err := s.Merge("w", second); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Worker("w")
	want := (0.8*4 + 0.5*1) / 5
	if d := got.Q[0] - want; d > 1e-12 || d < -1e-12 {
		t.Errorf("merged Q = %g, want %g", got.Q[0], want)
	}
	if got.U[0] != 5 {
		t.Errorf("merged U = %g, want 5", got.U[0])
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "workers.json")
	s, err := Open(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	st := truth.NewStats(2)
	st.Q[1] = 0.85
	st.U[1] = 7
	if err := s.Put("carol", st); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(); err != nil {
		t.Fatal(err)
	}

	reloaded, err := Open(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := reloaded.Worker("carol")
	if !ok {
		t.Fatal("carol missing after reload")
	}
	if got.Q[1] != 0.85 || got.U[1] != 7 {
		t.Errorf("reload lost data: %+v", got)
	}

	// Wrong m is rejected.
	if _, err := Open(path, 5); err == nil {
		t.Error("snapshot with mismatched m accepted")
	}
}

func TestWorkersSorted(t *testing.T) {
	s, _ := Open("", 1)
	for _, id := range []string{"zoe", "amy", "mia"} {
		if err := s.Put(id, truth.NewStats(1)); err != nil {
			t.Fatal(err)
		}
	}
	ids := s.Workers()
	if len(ids) != 3 || ids[0] != "amy" || ids[2] != "zoe" {
		t.Errorf("Workers = %v", ids)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s, _ := Open("", 2)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			id := string(rune('a' + g))
			for i := 0; i < 100; i++ {
				session := &truth.Stats{Q: []float64{0.5, 0.5}, U: []float64{1, 1}}
				if err := s.Merge(id, session); err != nil {
					t.Error(err)
					return
				}
				s.Worker(id)
				s.Len()
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 8 {
		t.Errorf("Len = %d, want 8", s.Len())
	}
	got, _ := s.Worker("a")
	if got.U[0] != 100 {
		t.Errorf("merged weight = %g, want 100", got.U[0])
	}
}

func TestMergeProfileOnce(t *testing.T) {
	s, _ := Open("", 2)
	session := &truth.Stats{Q: []float64{0.9, 0.8}, U: []float64{4, 4}}
	anchor, applied, err := s.MergeProfile("camp/alice", "alice", session)
	if err != nil {
		t.Fatal(err)
	}
	if !applied {
		t.Fatal("first MergeProfile not applied")
	}
	got, _ := s.Worker("alice")
	if got.Q[0] != anchor.Q[0] || got.U[0] != anchor.U[0] {
		t.Errorf("anchor %+v differs from post-merge record %+v", anchor, got)
	}

	// Re-applying under the same profile ID is a no-op that returns the
	// ORIGINAL anchor — even with different session stats.
	other := &truth.Stats{Q: []float64{0.1, 0.1}, U: []float64{9, 9}}
	again, applied, err := s.MergeProfile("camp/alice", "alice", other)
	if err != nil {
		t.Fatal(err)
	}
	if applied {
		t.Error("second MergeProfile applied")
	}
	for k := range again.Q {
		if again.Q[k] != anchor.Q[k] || again.U[k] != anchor.U[k] {
			t.Fatalf("replayed anchor %+v differs from recorded %+v", again, anchor)
		}
	}
	unchanged, _ := s.Worker("alice")
	if unchanged.U[0] != got.U[0] {
		t.Error("duplicate MergeProfile mutated the worker record")
	}

	// A different scope for the same worker is a distinct profile.
	_, applied, err = s.MergeProfile("other/alice", "alice", session)
	if err != nil {
		t.Fatal(err)
	}
	if !applied {
		t.Error("distinct profile ID not applied")
	}

	if _, _, err := s.MergeProfile("", "alice", session); err == nil {
		t.Error("empty profile ID accepted")
	}
}

func TestProfileDeltaReplay(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "workers.json")
	s, err := Open(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	session := &truth.Stats{Q: []float64{0.9, 0.8}, U: []float64{4, 4}}
	anchor, _, err := s.MergeProfile("camp/alice", "alice", session)
	if err != nil {
		t.Fatal(err)
	}

	// No Save: the profile merge must survive on the delta log alone.
	reloaded, err := Open(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := reloaded.ProfileAnchor("camp/alice")
	if !ok {
		t.Fatal("profile ledger lost across delta replay")
	}
	for k := range got.Q {
		if got.Q[k] != anchor.Q[k] || got.U[k] != anchor.U[k] {
			t.Fatalf("replayed anchor %+v, want %+v", got, anchor)
		}
	}
	w, _ := reloaded.Worker("alice")
	if w.Q[0] != anchor.Q[0] || w.U[0] != anchor.U[0] {
		t.Errorf("replayed worker record %+v, want anchor %+v", w, anchor)
	}

	// After a Save the ledger must survive via the checkpoint (generation
	// guard skips the stale delta).
	if err := reloaded.Save(); err != nil {
		t.Fatal(err)
	}
	again, err := Open(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := again.ProfileAnchor("camp/alice"); !ok {
		t.Fatal("profile ledger lost across Save checkpoint")
	}
	if ids := again.ProfileIDs(); len(ids) != 1 || ids[0] != "camp/alice" {
		t.Errorf("ProfileIDs = %v", ids)
	}
}

func TestSetProfileRestore(t *testing.T) {
	s, _ := Open("", 2)
	anchor := &truth.Stats{Q: []float64{0.7, 0.6}, U: []float64{3, 3}}
	if err := s.SetProfile("camp/bob", anchor); err != nil {
		t.Fatal(err)
	}
	got, ok := s.ProfileAnchor("camp/bob")
	if !ok || got.Q[0] != 0.7 {
		t.Fatalf("SetProfile round trip = %+v, %v", got, ok)
	}
	// Installed anchors block later MergeProfile under the same ID.
	if _, applied, _ := s.MergeProfile("camp/bob", "bob", anchor); applied {
		t.Error("MergeProfile applied over a restored profile")
	}
	if err := s.SetProfile("", anchor); err == nil {
		t.Error("empty profile ID accepted")
	}
}
