package mathx

import "math"

// Rand is a small deterministic pseudo-random source (splitmix64 seeded
// xorshift128+). Every simulator in this repository draws from Rand rather
// than math/rand so experiments replay exactly across runs and platforms,
// and so packages do not contend on a shared global source.
type Rand struct {
	s0, s1 uint64
}

// NewRand returns a Rand seeded deterministically from seed.
func NewRand(seed uint64) *Rand {
	r := &Rand{}
	r.Seed(seed)
	return r
}

// Seed resets the generator state from seed using splitmix64, which
// guarantees a well-mixed nonzero state for any input including 0.
func (r *Rand) Seed(seed uint64) {
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	r.s0 = next()
	r.s1 = next()
	if r.s0 == 0 && r.s1 == 0 {
		r.s1 = 1
	}
}

// Uint64 returns the next pseudo-random 64-bit value.
func (r *Rand) Uint64() uint64 {
	x, y := r.s0, r.s1
	r.s0 = y
	x ^= x << 23
	x ^= x >> 17
	x ^= y ^ (y >> 26)
	r.s1 = x
	return x + y
}

// Float64 returns a pseudo-random number in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a pseudo-random integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("mathx: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Range returns a pseudo-random float64 in [lo, hi).
func (r *Rand) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomly permutes the first n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Categorical draws an index from the (not necessarily normalized)
// non-negative weight vector w. It panics if the total weight is not
// positive.
func (r *Rand) Categorical(w []float64) int {
	var total float64
	for _, x := range w {
		total += x
	}
	if total <= 0 {
		panic("mathx: Categorical with non-positive total weight")
	}
	u := r.Float64() * total
	for i, x := range w {
		u -= x
		if u < 0 {
			return i
		}
	}
	return len(w) - 1
}

// Dirichlet draws a distribution from a symmetric Dirichlet with
// concentration alpha over n outcomes, using Gamma(alpha,1) marginals.
func (r *Rand) Dirichlet(n int, alpha float64) []float64 {
	p := make([]float64, n)
	for i := range p {
		p[i] = r.Gamma(alpha)
	}
	return Normalize(p)
}

// Gamma draws from Gamma(shape, 1) using Marsaglia–Tsang for shape >= 1 and
// the boost transform for shape < 1.
func (r *Rand) Gamma(shape float64) float64 {
	if shape <= 0 {
		panic("mathx: Gamma with non-positive shape")
	}
	if shape < 1 {
		// Boost: if U~Uniform and G~Gamma(shape+1), G*U^(1/shape) ~ Gamma(shape).
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return r.Gamma(shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1.0 / (3.0 * math.Sqrt(d))
	for {
		x := r.Normal()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Normal draws a standard normal variate via Box–Muller (polar form).
func (r *Rand) Normal() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}
