package mathx

// TopK returns the indices of the k largest values in vals, in descending
// value order. It runs in O(n + k log k): a linear-time selection (the PICK
// algorithm of Blum, Floyd, Pratt, Rivest and Tarjan, which the paper cites
// for its O(n) assignment step) partitions the candidates, then only the k
// survivors are sorted. vals is not modified. If k >= len(vals), all indices
// are returned sorted by value.
func TopK(vals []float64, k int) []int {
	n := len(vals)
	if k <= 0 || n == 0 {
		return nil
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	if k > n {
		k = n
	}
	selectTopK(vals, idx, 0, n-1, k)
	out := idx[:k:k]
	// Sort the k winners in descending value order (insertion sort keeps the
	// dependency surface zero and k is small in every caller).
	for i := 1; i < len(out); i++ {
		j := i
		for j > 0 && vals[out[j]] > vals[out[j-1]] {
			out[j], out[j-1] = out[j-1], out[j]
			j--
		}
	}
	return out
}

// selectTopK partially partitions idx[lo..hi] so that the k largest values
// (by vals) occupy idx[0..k-1]. Median-of-medians pivot selection gives the
// worst-case linear bound.
func selectTopK(vals []float64, idx []int, lo, hi, k int) {
	for lo < hi {
		p := medianOfMedians(vals, idx, lo, hi)
		p = partitionDesc(vals, idx, lo, hi, p)
		switch {
		case p == k-1:
			return
		case p > k-1:
			hi = p - 1
		default:
			lo = p + 1
		}
	}
}

// partitionDesc partitions idx[lo..hi] around the value at pivot index so
// that larger values come first, returning the pivot's final position.
func partitionDesc(vals []float64, idx []int, lo, hi, pivot int) int {
	pv := vals[idx[pivot]]
	idx[pivot], idx[hi] = idx[hi], idx[pivot]
	store := lo
	for i := lo; i < hi; i++ {
		if vals[idx[i]] > pv {
			idx[store], idx[i] = idx[i], idx[store]
			store++
		}
	}
	idx[store], idx[hi] = idx[hi], idx[store]
	return store
}

// medianOfMedians returns an index into idx[lo..hi] whose value is a
// guaranteed-good pivot (between the 30th and 70th percentile).
func medianOfMedians(vals []float64, idx []int, lo, hi int) int {
	n := hi - lo + 1
	if n <= 5 {
		return median5(vals, idx, lo, hi)
	}
	// Move the median of each group of 5 to the front of the range.
	dst := lo
	for i := lo; i <= hi; i += 5 {
		end := i + 4
		if end > hi {
			end = hi
		}
		m := median5(vals, idx, i, end)
		idx[m], idx[dst] = idx[dst], idx[m]
		dst++
	}
	mid := lo + (dst-lo-1)/2
	selectNthDesc(vals, idx, lo, dst-1, mid)
	return mid
}

// median5 sorts idx[lo..hi] (at most 5 elements) descending by value and
// returns the index of the median position.
func median5(vals []float64, idx []int, lo, hi int) int {
	for i := lo + 1; i <= hi; i++ {
		for j := i; j > lo && vals[idx[j]] > vals[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	return lo + (hi-lo)/2
}

// selectNthDesc rearranges idx[lo..hi] so idx[nth] holds the element that
// belongs at position nth in descending order.
func selectNthDesc(vals []float64, idx []int, lo, hi, nth int) {
	for lo < hi {
		p := median5approx(vals, idx, lo, hi)
		p = partitionDesc(vals, idx, lo, hi, p)
		switch {
		case p == nth:
			return
		case p > nth:
			hi = p - 1
		default:
			lo = p + 1
		}
	}
}

// median5approx picks a pivot by median-of-three; used only inside the
// recursive median computation where adversarial inputs cannot arise.
func median5approx(vals []float64, idx []int, lo, hi int) int {
	mid := lo + (hi-lo)/2
	a, b, c := vals[idx[lo]], vals[idx[mid]], vals[idx[hi]]
	switch {
	case (a >= b) == (b >= c):
		return mid
	case (b >= a) == (a >= c):
		return lo
	default:
		return hi
	}
}
