package mathx

import (
	"fmt"
	"math"
)

// Normalize scales p in place so its entries sum to 1 and returns p.
// If the sum is zero or not finite, p becomes the uniform distribution.
func Normalize(p []float64) []float64 {
	var sum float64
	for _, x := range p {
		sum += x
	}
	if sum <= 0 || math.IsInf(sum, 0) || math.IsNaN(sum) {
		u := 1.0 / float64(len(p))
		for i := range p {
			p[i] = u
		}
		return p
	}
	for i := range p {
		p[i] /= sum
	}
	return p
}

// Uniform returns the uniform distribution over n outcomes.
func Uniform(n int) []float64 {
	p := make([]float64, n)
	u := 1.0 / float64(n)
	for i := range p {
		p[i] = u
	}
	return p
}

// ArgMax returns the index of the largest element of p, breaking ties toward
// the smallest index. It returns -1 for an empty slice.
func ArgMax(p []float64) int {
	if len(p) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(p); i++ {
		if p[i] > p[best] {
			best = i
		}
	}
	return best
}

// Sum returns the sum of the elements of p.
func Sum(p []float64) float64 {
	var s float64
	for _, x := range p {
		s += x
	}
	return s
}

// Clone returns a copy of p.
func Clone(p []float64) []float64 {
	q := make([]float64, len(p))
	copy(q, p)
	return q
}

// L1Distance returns Σ |p_i − q_i|. The slices must have equal length.
func L1Distance(p, q []float64) float64 {
	var d float64
	for i := range p {
		d += math.Abs(p[i] - q[i])
	}
	return d
}

// IsDistribution reports whether p is a probability distribution: every
// entry in [0,1] and the entries summing to 1 within tol.
func IsDistribution(p []float64, tol float64) bool {
	var sum float64
	for _, x := range p {
		if x < -tol || x > 1+tol || math.IsNaN(x) {
			return false
		}
		sum += x
	}
	return math.Abs(sum-1) <= tol
}

// CheckDistribution returns an error describing the first way in which p
// fails to be a probability distribution, or nil if it is one within tol.
func CheckDistribution(p []float64, tol float64) error {
	if len(p) == 0 {
		return fmt.Errorf("mathx: empty distribution")
	}
	var sum float64
	for i, x := range p {
		if math.IsNaN(x) {
			return fmt.Errorf("mathx: entry %d is NaN", i)
		}
		if x < -tol {
			//docs:allow floatbits error text is human-facing; never encoded or digested
			return fmt.Errorf("mathx: entry %d = %g is negative", i, x)
		}
		if x > 1+tol {
			//docs:allow floatbits error text is human-facing; never encoded or digested
			return fmt.Errorf("mathx: entry %d = %g exceeds 1", i, x)
		}
		sum += x
	}
	if math.Abs(sum-1) > tol {
		//docs:allow floatbits error text is human-facing; never encoded or digested
		return fmt.Errorf("mathx: entries sum to %g, want 1", sum)
	}
	return nil
}
