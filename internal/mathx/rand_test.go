package mathx

import (
	"math"
	"testing"
)

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(99), NewRand(99)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestRandDifferentSeedsDiffer(t *testing.T) {
	a, b := NewRand(1), NewRand(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d/100 identical draws", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRand(3)
	for i := 0; i < 10000; i++ {
		x := r.Float64()
		if x < 0 || x >= 1 {
			t.Fatalf("Float64() = %g out of [0,1)", x)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRand(4)
	counts := make([]int, 5)
	for i := 0; i < 5000; i++ {
		counts[r.Intn(5)]++
	}
	for v, c := range counts {
		if c < 700 || c > 1300 {
			t.Errorf("Intn(5) value %d drawn %d/5000 times, badly skewed", v, c)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRand(1).Intn(0)
}

func TestPerm(t *testing.T) {
	r := NewRand(5)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm invalid: %v", p)
		}
		seen[v] = true
	}
}

func TestCategorical(t *testing.T) {
	r := NewRand(6)
	w := []float64{0, 1, 3}
	counts := make([]int, 3)
	for i := 0; i < 8000; i++ {
		counts[r.Categorical(w)]++
	}
	if counts[0] != 0 {
		t.Errorf("zero-weight outcome drawn %d times", counts[0])
	}
	ratio := float64(counts[2]) / float64(counts[1])
	if ratio < 2.5 || ratio > 3.6 {
		t.Errorf("Categorical ratio = %g, want ≈3", ratio)
	}
}

func TestDirichletIsDistribution(t *testing.T) {
	r := NewRand(8)
	for trial := 0; trial < 100; trial++ {
		p := r.Dirichlet(6, 0.5)
		if !IsDistribution(p, 1e-9) {
			t.Fatalf("Dirichlet draw not a distribution: %v", p)
		}
	}
}

func TestGammaMean(t *testing.T) {
	r := NewRand(9)
	for _, shape := range []float64{0.5, 1, 2, 5} {
		var sum float64
		const n = 20000
		for i := 0; i < n; i++ {
			sum += r.Gamma(shape)
		}
		mean := sum / n
		if math.Abs(mean-shape) > 0.15*shape+0.05 {
			t.Errorf("Gamma(%g) sample mean %g, want ≈%g", shape, mean, shape)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	r := NewRand(10)
	var sum, sumsq float64
	const n = 50000
	for i := 0; i < n; i++ {
		x := r.Normal()
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.03 {
		t.Errorf("Normal mean = %g, want ≈0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("Normal variance = %g, want ≈1", variance)
	}
}
