package mathx

import (
	"math"
	"testing"
)

func TestNormalize(t *testing.T) {
	p := Normalize([]float64{1, 2, 1})
	want := []float64{0.25, 0.5, 0.25}
	for i := range want {
		if !almostEqual(p[i], want[i], 1e-12) {
			t.Errorf("Normalize[%d] = %g, want %g", i, p[i], want[i])
		}
	}
}

func TestNormalizeZeroFallsBackToUniform(t *testing.T) {
	p := Normalize([]float64{0, 0, 0, 0})
	for i, x := range p {
		if !almostEqual(x, 0.25, 1e-12) {
			t.Errorf("Normalize zero vec [%d] = %g, want 0.25", i, x)
		}
	}
}

func TestNormalizeNaNFallsBackToUniform(t *testing.T) {
	p := Normalize([]float64{math.NaN(), 1})
	if !almostEqual(p[0], 0.5, 1e-12) || !almostEqual(p[1], 0.5, 1e-12) {
		t.Errorf("Normalize NaN vec = %v, want uniform", p)
	}
}

func TestArgMax(t *testing.T) {
	cases := []struct {
		p    []float64
		want int
	}{
		{nil, -1},
		{[]float64{3}, 0},
		{[]float64{1, 3, 2}, 1},
		{[]float64{2, 2, 2}, 0}, // ties break low
		{[]float64{-5, -1, -9}, 1},
	}
	for _, c := range cases {
		if got := ArgMax(c.p); got != c.want {
			t.Errorf("ArgMax(%v) = %d, want %d", c.p, got, c.want)
		}
	}
}

func TestIsDistribution(t *testing.T) {
	if !IsDistribution([]float64{0.3, 0.7}, 1e-9) {
		t.Error("valid distribution rejected")
	}
	if IsDistribution([]float64{0.3, 0.3}, 1e-9) {
		t.Error("sum 0.6 accepted")
	}
	if IsDistribution([]float64{-0.1, 1.1}, 1e-9) {
		t.Error("negative entry accepted")
	}
	if IsDistribution([]float64{math.NaN(), 1}, 1e-9) {
		t.Error("NaN accepted")
	}
}

func TestCheckDistribution(t *testing.T) {
	if err := CheckDistribution([]float64{0.5, 0.5}, 1e-9); err != nil {
		t.Errorf("valid distribution: %v", err)
	}
	if err := CheckDistribution(nil, 1e-9); err == nil {
		t.Error("empty distribution accepted")
	}
	if err := CheckDistribution([]float64{0.9, 0.2}, 1e-9); err == nil {
		t.Error("sum 1.1 accepted")
	}
}

func TestL1Distance(t *testing.T) {
	d := L1Distance([]float64{0, 1}, []float64{1, 0})
	if !almostEqual(d, 2, 1e-12) {
		t.Errorf("L1 = %g, want 2", d)
	}
}
