package mathx

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestTopKBasic(t *testing.T) {
	vals := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	got := TopK(vals, 3)
	want := []int{5, 7, 4} // values 9, 6, 5
	if len(got) != 3 {
		t.Fatalf("TopK returned %d indices, want 3", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("TopK[%d] = %d (val %g), want %d (val %g)",
				i, got[i], vals[got[i]], want[i], vals[want[i]])
		}
	}
}

func TestTopKEdgeCases(t *testing.T) {
	if got := TopK(nil, 3); got != nil {
		t.Errorf("TopK(nil) = %v, want nil", got)
	}
	if got := TopK([]float64{1, 2}, 0); got != nil {
		t.Errorf("TopK(k=0) = %v, want nil", got)
	}
	got := TopK([]float64{1, 2}, 10)
	if len(got) != 2 || got[0] != 1 || got[1] != 0 {
		t.Errorf("TopK(k>n) = %v, want [1 0]", got)
	}
}

func TestTopKDoesNotMutateInput(t *testing.T) {
	vals := []float64{5, 3, 8, 1}
	orig := Clone(vals)
	TopK(vals, 2)
	for i := range vals {
		if vals[i] != orig[i] {
			t.Fatalf("TopK mutated input at %d", i)
		}
	}
}

// TestTopKMatchesSort cross-checks the linear-time selection against a full
// sort on random inputs, including heavy ties.
func TestTopKMatchesSort(t *testing.T) {
	r := NewRand(42)
	f := func(seed uint64, nRaw, kRaw uint8) bool {
		n := int(nRaw)%200 + 1
		k := int(kRaw)%(n+5) + 1
		r.Seed(seed)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = float64(r.Intn(20)) // heavy ties on purpose
		}
		got := TopK(vals, k)
		sorted := Clone(vals)
		sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
		if k > n {
			k = n
		}
		if len(got) != k {
			return false
		}
		seen := make(map[int]bool)
		for i, gi := range got {
			if seen[gi] {
				return false // duplicate index
			}
			seen[gi] = true
			if vals[gi] != sorted[i] {
				return false // wrong multiset of top values
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkTopK(b *testing.B) {
	r := NewRand(1)
	vals := make([]float64, 100000)
	for i := range vals {
		vals[i] = r.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TopK(vals, 20)
	}
}
