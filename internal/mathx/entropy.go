// Package mathx provides the small numeric substrate DOCS is built on:
// Shannon entropy and KL divergence over discrete distributions, linear-time
// top-k selection (the PICK algorithm the paper cites for O(n) assignment),
// distribution helpers, and a deterministic random source used by the
// simulators so every experiment is reproducible.
package mathx

import "math"

// Entropy returns the Shannon entropy H(p) = -Σ p_i ln p_i in nats.
// Zero-probability entries contribute nothing (lim x→0 of x ln x = 0).
// Entries are not required to be normalized; callers that pass a proper
// distribution get the textbook value.
func Entropy(p []float64) float64 {
	var h float64
	for _, x := range p {
		if x > 0 {
			h -= x * math.Log(x)
		}
	}
	return h
}

// EntropyBits returns the entropy of p in bits (log base 2).
func EntropyBits(p []float64) float64 {
	return Entropy(p) / math.Ln2
}

// MaxEntropy returns the entropy of the uniform distribution over n
// outcomes, ln n, which upper-bounds Entropy for any distribution of size n.
func MaxEntropy(n int) float64 {
	if n <= 1 {
		return 0
	}
	return math.Log(float64(n))
}

// KLDivergence returns D(p ‖ q) = Σ p_i ln(p_i/q_i).
// Entries where p_i = 0 contribute 0. Entries where p_i > 0 but q_i = 0
// make the divergence +Inf, matching the mathematical definition.
func KLDivergence(p, q []float64) float64 {
	var d float64
	for i, pi := range p {
		if pi <= 0 {
			continue
		}
		qi := 0.0
		if i < len(q) {
			qi = q[i]
		}
		if qi <= 0 {
			return math.Inf(1)
		}
		d += pi * math.Log(pi/qi)
	}
	return d
}
