package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestEntropyUniform(t *testing.T) {
	for _, n := range []int{1, 2, 3, 10, 26} {
		h := Entropy(Uniform(n))
		want := math.Log(float64(n))
		if !almostEqual(h, want, 1e-12) {
			t.Errorf("Entropy(Uniform(%d)) = %g, want %g", n, h, want)
		}
	}
}

func TestEntropyDegenerate(t *testing.T) {
	if h := Entropy([]float64{1, 0, 0}); h != 0 {
		t.Errorf("Entropy(point mass) = %g, want 0", h)
	}
	if h := Entropy(nil); h != 0 {
		t.Errorf("Entropy(nil) = %g, want 0", h)
	}
}

func TestEntropyBits(t *testing.T) {
	if h := EntropyBits([]float64{0.5, 0.5}); !almostEqual(h, 1, 1e-12) {
		t.Errorf("EntropyBits(fair coin) = %g, want 1", h)
	}
}

func TestMaxEntropyBoundsEntropy(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		p := make([]float64, len(raw))
		for i, x := range raw {
			p[i] = math.Abs(x)
			if math.IsNaN(p[i]) || math.IsInf(p[i], 0) {
				p[i] = 1
			}
		}
		Normalize(p)
		h := Entropy(p)
		return h >= -1e-12 && h <= MaxEntropy(len(p))+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestKLDivergence(t *testing.T) {
	p := []float64{0.5, 0.5}
	q := []float64{0.9, 0.1}
	want := 0.5*math.Log(0.5/0.9) + 0.5*math.Log(0.5/0.1)
	if d := KLDivergence(p, q); !almostEqual(d, want, 1e-12) {
		t.Errorf("KL = %g, want %g", d, want)
	}
	if d := KLDivergence(p, p); !almostEqual(d, 0, 1e-12) {
		t.Errorf("KL(p‖p) = %g, want 0", d)
	}
	if d := KLDivergence([]float64{1, 0}, []float64{0, 1}); !math.IsInf(d, 1) {
		t.Errorf("KL with unsupported mass = %g, want +Inf", d)
	}
}

func TestKLNonNegative(t *testing.T) {
	r := NewRand(7)
	for trial := 0; trial < 200; trial++ {
		n := 2 + r.Intn(8)
		p := r.Dirichlet(n, 0.7)
		q := r.Dirichlet(n, 0.7)
		if d := KLDivergence(p, q); d < -1e-9 {
			t.Fatalf("KL(%v‖%v) = %g < 0", p, q, d)
		}
	}
}
