package crowd

import (
	"math"
	"testing"

	"docs/internal/mathx"
	"docs/internal/model"
)

func advTask(id, truth, ell int) *model.Task {
	choices := []string{"a", "b", "c", "d", "e"}[:ell]
	return &model.Task{
		ID: id, Choices: choices,
		Domain: model.DomainVector{1, 0, 0, 0}, Truth: truth, TrueDomain: model.NoTruth,
	}
}

// Enabling the zero-value Adversarial section must not change anything:
// same quality draws, all workers honest, identical answer streams.
func TestAdversarialZeroValueNoOp(t *testing.T) {
	plain, _ := NewPopulation(testConfig(25, 21))
	cfg := testConfig(25, 21)
	cfg.Adversarial = Adversarial{}
	adv, err := NewPopulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	task := advTask(0, 1, 3)
	ra, rb := mathx.NewRand(9), mathx.NewRand(9)
	for i := range plain.Workers {
		wa, wb := plain.Workers[i], adv.Workers[i]
		if wb.Archetype != Honest {
			t.Fatalf("worker %s archetype %v, want honest", wb.ID, wb.Archetype)
		}
		for k := range wa.TrueQ {
			if wa.TrueQ[k] != wb.TrueQ[k] {
				t.Fatal("zero-value Adversarial changed quality draws")
			}
		}
		for j := 0; j < 50; j++ {
			if wa.Answer(task, ra) != wb.Answer(task, rb) {
				t.Fatal("zero-value Adversarial changed the answer stream")
			}
		}
	}
}

// Two same-seed populations must match in archetypes, cliques, qualities
// AND answer sequences — the bit-identical reproduction contract.
func TestAdversarialDeterministic(t *testing.T) {
	mk := func() *Population {
		cfg := testConfig(40, 33)
		cfg.Adversarial = Adversarial{
			SpammerFraction: 0.2, SleeperFraction: 0.15,
			Cliques: 2, CliqueSize: 3, DriftPerAnswer: -0.002,
		}
		pop, err := NewPopulation(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return pop
	}
	a, b := mk(), mk()
	tasks := []*model.Task{advTask(0, 0, 4), advTask(1, 2, 4), advTask(2, 1, 2)}
	ra, rb := mathx.NewRand(1), mathx.NewRand(1)
	for i := range a.Workers {
		wa, wb := a.Workers[i], b.Workers[i]
		if wa.Archetype != wb.Archetype || wa.Clique != wb.Clique {
			t.Fatalf("worker %s role differs across same-seed draws", wa.ID)
		}
		for _, tk := range tasks {
			for j := 0; j < 30; j++ {
				if wa.Answer(tk, ra) != wb.Answer(tk, rb) {
					t.Fatalf("worker %s (%v) answer stream differs", wa.ID, wa.Archetype)
				}
			}
		}
	}
}

func TestCompositionCounts(t *testing.T) {
	cfg := testConfig(40, 5)
	cfg.Adversarial = Adversarial{
		SpammerFraction: 0.25, SleeperFraction: 0.1, Cliques: 2, CliqueSize: 4,
	}
	pop, err := NewPopulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	comp := pop.Composition()
	if comp[Spammer] != 10 || comp[Sleeper] != 4 || comp[Colluder] != 8 {
		t.Fatalf("composition %v, want 10 spammers / 4 sleepers / 8 colluders", comp)
	}
	if comp[Honest] != 40-10-4-8 {
		t.Fatalf("honest count %d, want %d", comp[Honest], 40-10-4-8)
	}
	cliques := map[int]int{}
	for _, w := range pop.Workers {
		if w.Archetype == Colluder {
			cliques[w.Clique]++
		}
	}
	if len(cliques) != 2 || cliques[0] != 4 || cliques[1] != 4 {
		t.Fatalf("clique sizes %v, want two cliques of 4", cliques)
	}
}

// Spammers answer uniformly over ALL choices: accuracy ≈ 1/ℓ and every
// choice (including the truth) equally likely.
func TestSpammerUniform(t *testing.T) {
	cfg := testConfig(4, 51)
	cfg.Adversarial = Adversarial{SpammerFraction: 1}
	pop, _ := NewPopulation(cfg)
	w := pop.Workers[0]
	task := advTask(0, 2, 4)
	r := mathx.NewRand(3)
	counts := map[int]int{}
	const n = 40000
	for i := 0; i < n; i++ {
		counts[w.Answer(task, r)]++
	}
	for c := 0; c < 4; c++ {
		got := float64(counts[c]) / n
		if math.Abs(got-0.25) > 0.01 {
			t.Errorf("choice %d frequency %.3f, want 0.25", c, got)
		}
	}
}

// Sleepers are perfect for their first SleeperHonest answers (the golden
// gauntlet), then collapse to SleeperQuality.
func TestSleeperPhaseSwitch(t *testing.T) {
	cfg := testConfig(4, 52)
	cfg.Adversarial = Adversarial{SleeperFraction: 1, SleeperHonest: 25, SleeperQuality: 0.3}
	pop, _ := NewPopulation(cfg)
	w := pop.Workers[0]
	task := advTask(0, 1, 4)
	r := mathx.NewRand(4)
	for i := 0; i < 25; i++ {
		if w.Answer(task, r) != task.Truth {
			t.Fatalf("sleeper wrong during honest phase (answer %d)", i)
		}
	}
	correct := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if w.Answer(task, r) == task.Truth {
			correct++
		}
	}
	got := float64(correct) / n
	if math.Abs(got-0.3) > 0.02 {
		t.Errorf("post-profiling accuracy %.3f, want ≈0.30", got)
	}
}

// Clique members cast the identical wrong vote on shared tasks with no
// runtime coordination; distinct cliques disagree on at least some tasks.
func TestCliqueCorrelatedVotes(t *testing.T) {
	cfg := testConfig(12, 53)
	cfg.Adversarial = Adversarial{Cliques: 2, CliqueSize: 5}
	pop, _ := NewPopulation(cfg)
	byClique := map[int][]*Worker{}
	for _, w := range pop.Workers {
		if w.Archetype == Colluder {
			byClique[w.Clique] = append(byClique[w.Clique], w)
		}
	}
	r := mathx.NewRand(5)
	votes := map[int][]int{} // clique -> vote per task
	for id := 0; id < 40; id++ {
		task := advTask(id, id%4, 4)
		for c, members := range byClique {
			first := members[0].Answer(task, r)
			if first == task.Truth {
				t.Fatalf("clique %d voted the truth on task %d", c, id)
			}
			if first != CliqueChoice(members[0].beh.cliqueSeed, task) {
				t.Fatalf("clique vote disagrees with CliqueChoice on task %d", id)
			}
			for _, m := range members[1:] {
				if got := m.Answer(task, r); got != first {
					t.Fatalf("clique %d split its vote on task %d: %d vs %d", c, id, got, first)
				}
			}
			votes[c] = append(votes[c], first)
		}
	}
	differ := 0
	for i := range votes[0] {
		if votes[0][i] != votes[1][i] {
			differ++
		}
	}
	if differ == 0 {
		t.Error("two distinct cliques agreed on every task — seeds not independent")
	}
}

// Negative drift degrades honest accuracy over a worker's answer history,
// clamped at the floor.
func TestQualityDrift(t *testing.T) {
	cfg := testConfig(4, 54)
	cfg.Adversarial = Adversarial{DriftPerAnswer: -0.0005, DriftFloor: 0.3}
	pop, _ := NewPopulation(cfg)
	w := pop.Workers[0]
	w.TrueQ = model.QualityVector{0.9, 0.9, 0.9, 0.9} // pin p0 = 0.9
	task := advTask(0, 0, 2)
	r := mathx.NewRand(6)
	phase := func(n int) float64 {
		correct := 0
		for i := 0; i < n; i++ {
			if w.Answer(task, r) == task.Truth {
				correct++
			}
		}
		return float64(correct) / float64(n)
	}
	early := phase(400)           // mean p ≈ 0.9 − 0.0005·200 = 0.8
	for i := 0; i < 100000; i++ { // deep into the floor regime
		w.Answer(task, r)
	}
	late := phase(2000)
	if early-late < 0.1 {
		t.Errorf("drift did not degrade accuracy: early %.3f, late %.3f", early, late)
	}
	if math.Abs(late-0.3) > 0.03 {
		t.Errorf("late accuracy %.3f, want floor ≈0.30", late)
	}
}

func TestAdversarialValidation(t *testing.T) {
	bad := []Adversarial{
		{SpammerFraction: 1.5},
		{SpammerFraction: -0.1},
		{SleeperFraction: 2},
		{SleeperFraction: 0.1, SleeperQuality: 1.5},
		{Cliques: -1},
		{Cliques: 1, CliqueSize: 1},
		{Cliques: 1, CliqueRate: 2},
		{DriftPerAnswer: -0.01, DriftFloor: 2},
		{SpammerFraction: 0.6, SleeperFraction: 0.6}, // roles exceed population
	}
	for i, adv := range bad {
		cfg := testConfig(10, 1)
		cfg.Adversarial = adv
		if _, err := NewPopulation(cfg); err == nil {
			t.Errorf("case %d: invalid Adversarial %+v accepted", i, adv)
		}
	}
}

// CliqueChoice is a pure function: never the truth, stable across calls,
// in range for any choice count.
func TestCliqueChoicePure(t *testing.T) {
	for id := 0; id < 200; id++ {
		for ell := 2; ell <= 5; ell++ {
			task := advTask(id, id%ell, ell)
			got := CliqueChoice(77, task)
			if got == task.Truth {
				t.Fatalf("CliqueChoice returned the truth (task %d, ell %d)", id, ell)
			}
			if got < 0 || got >= ell {
				t.Fatalf("CliqueChoice out of range: %d (ell %d)", got, ell)
			}
			if got != CliqueChoice(77, task) {
				t.Fatal("CliqueChoice not stable")
			}
		}
	}
}
