// Adversarial worker archetypes: the pathological answer distributions the
// paper's honest-but-noisy population never produces. Each archetype is a
// deterministic function of the population seed and the worker's own answer
// history, so a campaign against an adversarial crowd reproduces
// bit-identically under the same seed — the property the accuracy benchmark
// artifacts and the crash-injection suites rely on.
//
// The taxonomy (docs/experiments.md maps each to the paper's evaluation):
//
//	Spammer  — answers uniformly at random over ALL choices, ignoring the
//	           task entirely: expected accuracy 1/ℓ, strictly worse than the
//	           legacy AdversarialFraction workers (quality 0.5 coin flip).
//	Sleeper  — answers perfectly for its first SleeperHonest answers (long
//	           enough to ace the golden-task gauntlet and earn a high
//	           quality estimate), then degrades to SleeperQuality.
//	Colluder — members of a clique cast the SAME wrong vote on any shared
//	           task with probability CliqueRate, otherwise answer honestly.
//	           The agreed choice is a pure hash of (clique seed, task), so
//	           members correlate without runtime coordination — safe to
//	           answer from concurrent goroutines.
//	Drift    — honest workers whose accuracy decays per answer given
//	           (fatigue), clamped at DriftFloor.
package crowd

import (
	"fmt"

	"docs/internal/mathx"
	"docs/internal/model"
)

// Archetype classifies a worker's answer behavior.
type Archetype uint8

const (
	// Honest workers follow the paper's answer model: correct with
	// probability q̃·r, otherwise a uniform wrong choice.
	Honest Archetype = iota
	// Spammer workers answer uniformly over all choices.
	Spammer
	// Sleeper workers answer perfectly until profiled, then degrade.
	Sleeper
	// Colluder workers vote with their clique's agreed wrong choice.
	Colluder
)

// String implements fmt.Stringer.
func (a Archetype) String() string {
	switch a {
	case Honest:
		return "honest"
	case Spammer:
		return "spammer"
	case Sleeper:
		return "sleeper"
	case Colluder:
		return "colluder"
	}
	return fmt.Sprintf("archetype(%d)", uint8(a))
}

// Adversarial configures the adversarial slice of a population. The zero
// value is a no-op: populations built without it are bit-identical to those
// built before the field existed. Archetypes are dealt from a random
// permutation drawn with a rand derived from (but distinct from) the
// population seed, so enabling adversaries never perturbs the honest
// workers' hidden quality draws.
type Adversarial struct {
	// SpammerFraction of workers answer uniformly at random (rounded to
	// the nearest worker count).
	SpammerFraction float64
	// SleeperFraction of workers are sleepers.
	SleeperFraction float64
	// SleeperHonest is how many answers a sleeper gives perfectly before
	// degrading (default 20 — the paper's golden-task count, so sleepers
	// ace exactly the profiling gauntlet).
	SleeperHonest int
	// SleeperQuality is the flat correctness probability after the honest
	// phase (default 0.3).
	SleeperQuality float64
	// Cliques is the number of colluding cliques; CliqueSize members each
	// (default size 3). Members vote identically-wrong on shared tasks.
	Cliques    int
	CliqueSize int
	// CliqueRate is the probability a colluder casts the clique vote
	// rather than answering honestly (default 1.0).
	CliqueRate float64
	// DriftPerAnswer is added to every honest (and colluder-fallback)
	// worker's correctness probability per answer already given — negative
	// models fatigue. 0 disables drift.
	DriftPerAnswer float64
	// DriftFloor clamps drifted accuracy from below (default 0.25).
	DriftFloor float64
}

func (a Adversarial) enabled() bool {
	// Any nonzero knob counts (including invalid negatives, so they reach
	// validation instead of being silently ignored).
	return a.SpammerFraction != 0 || a.SleeperFraction != 0 || a.Cliques != 0 ||
		a.DriftPerAnswer != 0
}

func (a Adversarial) withDefaults() Adversarial {
	out := a
	if out.SleeperHonest <= 0 {
		out.SleeperHonest = 20
	}
	if out.SleeperQuality <= 0 {
		out.SleeperQuality = 0.3
	}
	if out.CliqueSize <= 0 {
		out.CliqueSize = 3
	}
	if out.CliqueRate <= 0 {
		out.CliqueRate = 1.0
	}
	if out.DriftFloor <= 0 {
		out.DriftFloor = 0.25
	}
	return out
}

// validate runs after withDefaults, against the population size.
func (a Adversarial) validate(n int) error {
	if a.SpammerFraction < 0 || a.SpammerFraction > 1 {
		return fmt.Errorf("crowd: SpammerFraction %v outside [0,1]", a.SpammerFraction)
	}
	if a.SleeperFraction < 0 || a.SleeperFraction > 1 {
		return fmt.Errorf("crowd: SleeperFraction %v outside [0,1]", a.SleeperFraction)
	}
	if a.SleeperQuality > 1 {
		return fmt.Errorf("crowd: SleeperQuality %v > 1", a.SleeperQuality)
	}
	if a.Cliques < 0 {
		return fmt.Errorf("crowd: Cliques = %d, want >= 0", a.Cliques)
	}
	if a.Cliques > 0 && a.CliqueSize < 2 {
		return fmt.Errorf("crowd: CliqueSize = %d, want >= 2 (a clique of one cannot collude)", a.CliqueSize)
	}
	if a.CliqueRate > 1 {
		return fmt.Errorf("crowd: CliqueRate %v > 1", a.CliqueRate)
	}
	if a.DriftFloor > 1 {
		return fmt.Errorf("crowd: DriftFloor %v > 1", a.DriftFloor)
	}
	total := a.spammers(n) + a.sleepers(n) + a.Cliques*a.CliqueSize
	if total > n {
		return fmt.Errorf("crowd: adversarial roles need %d workers, population has %d", total, n)
	}
	return nil
}

func (a Adversarial) spammers(n int) int {
	return int(a.SpammerFraction*float64(n) + 0.5)
}

func (a Adversarial) sleepers(n int) int {
	return int(a.SleeperFraction*float64(n) + 0.5)
}

// behavior carries the per-worker adversarial parameters. All fields are
// fixed at population time; only the worker's answer counter is mutable.
type behavior struct {
	sleeperHonest  int
	sleeperQuality float64
	cliqueSeed     uint64
	cliqueRate     float64
	driftPerAnswer float64
	driftFloor     float64
}

// splitmix64 is the same finalizer mathx seeds its generators with; used
// here to hash (clique seed, task ID) into an agreed vote with no state.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// CliqueChoice is the wrong answer a clique agrees on for a task: a pure
// function of the clique seed and the task, so every member computes the
// same vote with no shared mutable state. Exported so stress tests can
// submit the agreed vote directly against the serving core.
func CliqueChoice(cliqueSeed uint64, t *model.Task) int {
	ell := t.NumChoices()
	if ell <= 1 {
		return 0
	}
	wrong := int(splitmix64(cliqueSeed^(uint64(t.ID)+1)) % uint64(ell-1))
	if wrong >= t.Truth {
		wrong++
	}
	return wrong
}

// applyAdversarial deals archetypes onto an already-drawn population using
// a rand derived from the population seed but separate from the draw
// stream, so the honest workers' quality vectors are unchanged versus a
// population built without adversaries.
func applyAdversarial(pop *Population, adv Adversarial, seed uint64) error {
	if !adv.enabled() {
		return nil
	}
	adv = adv.withDefaults()
	n := len(pop.Workers)
	if err := adv.validate(n); err != nil {
		return err
	}
	// Derived seed: distinct from the population-draw stream (^0xc20d) so
	// archetype dealing never perturbs quality draws.
	r := mathx.NewRand(seed ^ 0xad0e)
	perm := r.Perm(n)
	idx := 0
	take := func() *Worker {
		w := pop.Workers[perm[idx]]
		idx++
		return w
	}
	for i := 0; i < adv.spammers(n); i++ {
		take().Archetype = Spammer
	}
	for i := 0; i < adv.sleepers(n); i++ {
		w := take()
		w.Archetype = Sleeper
		w.beh.sleeperHonest = adv.SleeperHonest
		w.beh.sleeperQuality = adv.SleeperQuality
	}
	for c := 0; c < adv.Cliques; c++ {
		cliqueSeed := splitmix64(seed ^ 0x11c0 ^ uint64(c+1))
		for i := 0; i < adv.CliqueSize; i++ {
			w := take()
			w.Archetype = Colluder
			w.Clique = c
			w.beh.cliqueSeed = cliqueSeed
			w.beh.cliqueRate = adv.CliqueRate
		}
	}
	if adv.DriftPerAnswer != 0 {
		for _, w := range pop.Workers {
			w.beh.driftPerAnswer = adv.DriftPerAnswer
			w.beh.driftFloor = adv.DriftFloor
		}
	}
	return nil
}

// Composition counts workers per archetype, for reports and tests.
func (p *Population) Composition() map[Archetype]int {
	out := make(map[Archetype]int)
	for _, w := range p.Workers {
		out[w.Archetype]++
	}
	return out
}
