// Package crowd simulates the crowdsourcing platform (Amazon Mechanical
// Turk in the paper). Each simulated worker carries a hidden true quality
// vector q̃^w over the domain set; when asked a task with domain vector r,
// the worker answers correctly with probability Σ_k r_k·q̃_k and otherwise
// picks uniformly among the wrong choices — exactly the answer model DOCS
// assumes (Equation 4 marginalised over the task's true domain), so the
// simulator exercises the same code paths as the paper's AMT deployment.
//
// The package provides worker populations with controllable domain
// expertise structure, HIT batching, arrival sequences, and the
// fixed-redundancy answer collection used in Section 6.1 (each task
// answered by exactly 10 workers).
package crowd

import (
	"fmt"
	"sync/atomic"

	"docs/internal/mathx"
	"docs/internal/model"
)

// DefaultAnswersPerTask is the redundancy the paper collects per task.
const DefaultAnswersPerTask = 10

// Worker is a simulated crowd worker. TrueQ is hidden from inference and
// used only to generate answers and to evaluate calibration (Figure 6).
type Worker struct {
	ID    string
	TrueQ model.QualityVector
	// Archetype is the worker's behavioral class; the zero value (Honest)
	// follows the paper's answer model. Set by NewPopulation when the
	// config carries an Adversarial section.
	Archetype Archetype
	// Clique groups colluders (0-based); meaningful only when Archetype is
	// Colluder.
	Clique int

	// beh holds the archetype's fixed parameters; answered counts the
	// answers this worker has given (drives sleeper phase switches and
	// quality drift). Atomic: stress tests answer from many goroutines.
	beh      behavior
	answered atomic.Int64
}

// Answered reports how many answers the worker has given so far.
func (w *Worker) Answered() int { return int(w.answered.Load()) }

// Answer simulates the worker answering the task. Honest workers are
// correct with probability q̃·r and otherwise pick a uniformly random wrong
// choice; adversarial archetypes override that model (see Archetype). The
// caller supplies the random source so collection order is reproducible.
func (w *Worker) Answer(t *model.Task, r *mathx.Rand) int {
	n := w.answered.Add(1) - 1 // answers given before this one
	switch w.Archetype {
	case Spammer:
		return r.Intn(t.NumChoices())
	case Sleeper:
		if n < int64(w.beh.sleeperHonest) {
			return t.Truth
		}
		return w.answerWithProb(t, w.beh.sleeperQuality, r)
	case Colluder:
		if r.Float64() < w.beh.cliqueRate {
			return CliqueChoice(w.beh.cliqueSeed, t)
		}
	}
	// Honest model (also the colluder's fallback), optionally drifted.
	p := w.TrueQ.Expected(t.Domain)
	if d := w.beh.driftPerAnswer; d != 0 {
		p += d * float64(n)
		if p < w.beh.driftFloor {
			p = w.beh.driftFloor
		}
		if p > 1 {
			p = 1
		}
	}
	return w.answerWithProb(t, p, r)
}

// answerWithProb draws Float64 then (on a miss) Intn(ℓ-1) — the exact
// stream order the pre-adversarial Answer used, so honest populations
// reproduce bit-identical answer sequences.
func (w *Worker) answerWithProb(t *model.Task, p float64, r *mathx.Rand) int {
	if r.Float64() < p {
		return t.Truth
	}
	ell := t.NumChoices()
	wrong := r.Intn(ell - 1)
	if wrong >= t.Truth {
		wrong++
	}
	return wrong
}

// Config describes a worker population.
type Config struct {
	// NumWorkers is the population size.
	NumWorkers int
	// M is the domain-set size (26 for the default KB).
	M int
	// RelevantDomains are the domain indices the workload actually touches
	// (e.g. the 4 mapped Yahoo domains of a dataset). Each worker becomes
	// an expert on a random non-empty subset of them and a novice on the
	// rest. If empty, expertise is spread over all M domains.
	RelevantDomains []int
	// ExpertProb is the chance a worker is expert on any given relevant
	// domain (default 0.5; at least one expert domain is forced).
	ExpertProb float64
	// ExpertQ and NoviceQ are the [lo, hi) quality ranges for expert and
	// novice domains (defaults [0.85,0.97) and [0.45,0.65)).
	ExpertQ, NoviceQ [2]float64
	// DomainBias optionally shifts all workers' quality on specific
	// domains, modelling per-domain difficulty (Figure 6(a) shows e.g.
	// Auto easy, Food hard). Indexed by domain; may be nil.
	DomainBias []float64
	// AdversarialFraction of workers answer at uniform-random quality 1/ℓ
	// regardless of domain (spammers). Default 0.
	//
	// Deprecated-ish: this legacy knob only flattens TrueQ to 0.5 coin
	// flips. The Adversarial section below configures the real archetypes
	// (spammers, sleepers, cliques, drift); both may coexist.
	AdversarialFraction float64
	// Adversarial configures spammer/sleeper/colluder/drift archetypes.
	// The zero value is a no-op: populations are bit-identical to ones
	// drawn before the field existed.
	Adversarial Adversarial
	// Seed drives the population draw.
	Seed uint64
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.ExpertProb <= 0 {
		out.ExpertProb = 0.5
	}
	if out.ExpertQ == [2]float64{} {
		out.ExpertQ = [2]float64{0.85, 0.97}
	}
	if out.NoviceQ == [2]float64{} {
		out.NoviceQ = [2]float64{0.45, 0.65}
	}
	return out
}

// Population is a set of simulated workers plus the platform's random
// source for arrivals and answers.
type Population struct {
	Workers []*Worker
	rand    *mathx.Rand
}

// NewPopulation draws a worker population from the config.
func NewPopulation(cfg Config) (*Population, error) {
	if cfg.NumWorkers <= 0 {
		return nil, fmt.Errorf("crowd: NumWorkers = %d, want > 0", cfg.NumWorkers)
	}
	if cfg.M <= 0 {
		return nil, fmt.Errorf("crowd: M = %d, want > 0", cfg.M)
	}
	for _, d := range cfg.RelevantDomains {
		if d < 0 || d >= cfg.M {
			return nil, fmt.Errorf("crowd: relevant domain %d out of range [0,%d)", d, cfg.M)
		}
	}
	c := cfg.withDefaults()
	r := mathx.NewRand(c.Seed ^ 0xc20d)
	relevant := c.RelevantDomains
	if len(relevant) == 0 {
		relevant = make([]int, c.M)
		for i := range relevant {
			relevant[i] = i
		}
	}
	pop := &Population{rand: r}
	for i := 0; i < c.NumWorkers; i++ {
		w := &Worker{
			ID:    fmt.Sprintf("w%03d", i),
			TrueQ: make(model.QualityVector, c.M),
		}
		adversarial := r.Float64() < c.AdversarialFraction
		for k := 0; k < c.M; k++ {
			w.TrueQ[k] = r.Range(c.NoviceQ[0], c.NoviceQ[1])
		}
		if !adversarial {
			expertAny := false
			for _, k := range relevant {
				if r.Float64() < c.ExpertProb {
					w.TrueQ[k] = r.Range(c.ExpertQ[0], c.ExpertQ[1])
					expertAny = true
				}
			}
			if !expertAny {
				k := relevant[r.Intn(len(relevant))]
				w.TrueQ[k] = r.Range(c.ExpertQ[0], c.ExpertQ[1])
			}
		} else {
			for k := 0; k < c.M; k++ {
				w.TrueQ[k] = 0.5 // coin flip on binary tasks; worse on more choices
			}
		}
		if c.DomainBias != nil {
			for k := 0; k < c.M && k < len(c.DomainBias); k++ {
				w.TrueQ[k] = clamp01(w.TrueQ[k] + c.DomainBias[k])
			}
		}
		pop.Workers = append(pop.Workers, w)
	}
	// Archetypes are dealt after the full draw, from a separately-derived
	// rand: enabling adversaries never shifts the honest quality stream.
	if err := applyAdversarial(pop, c.Adversarial, c.Seed); err != nil {
		return nil, err
	}
	return pop, nil
}

// ByID returns the worker with the given ID, or nil.
func (p *Population) ByID(id string) *Worker {
	for _, w := range p.Workers {
		if w.ID == id {
			return w
		}
	}
	return nil
}

// Arrival returns a uniformly random worker (the platform's "a worker
// comes" event).
func (p *Population) Arrival() *Worker {
	return p.Workers[p.rand.Intn(len(p.Workers))]
}

// Rand exposes the platform's random source so collection helpers and
// experiments share one reproducible stream.
func (p *Population) Rand() *mathx.Rand { return p.rand }

// Collect assigns every task to exactly perTask distinct workers (the
// paper's fixed-redundancy collection) and returns the answers. Tasks must
// already carry domain vectors.
func Collect(tasks []*model.Task, pop *Population, perTask int) (*model.AnswerSet, error) {
	if perTask > len(pop.Workers) {
		return nil, fmt.Errorf("crowd: perTask %d exceeds population %d", perTask, len(pop.Workers))
	}
	as := model.NewAnswerSet()
	for _, t := range tasks {
		if t.Domain == nil {
			return nil, fmt.Errorf("crowd: task %d has no domain vector", t.ID)
		}
		perm := pop.rand.Perm(len(pop.Workers))
		for _, wi := range perm[:perTask] {
			w := pop.Workers[wi]
			if err := as.Add(model.Answer{Worker: w.ID, Task: t.ID, Choice: w.Answer(t, pop.rand)}); err != nil {
				return nil, err
			}
		}
	}
	return as, nil
}

// AnswerGolden simulates every worker in the population answering all
// golden tasks, returning per-worker answer lists for quality
// initialization (Section 5.2).
func AnswerGolden(golden []*model.Task, pop *Population) map[string][]model.Answer {
	out := make(map[string][]model.Answer, len(pop.Workers))
	for _, w := range pop.Workers {
		for _, g := range golden {
			out[w.ID] = append(out[w.ID], model.Answer{
				Worker: w.ID, Task: g.ID, Choice: w.Answer(g, pop.rand),
			})
		}
	}
	return out
}

// TrueQualities returns the hidden quality vectors keyed by worker ID, for
// calibration studies (Figure 6).
func (p *Population) TrueQualities() map[string]model.QualityVector {
	out := make(map[string]model.QualityVector, len(p.Workers))
	for _, w := range p.Workers {
		q := make(model.QualityVector, len(w.TrueQ))
		copy(q, w.TrueQ)
		out[w.ID] = q
	}
	return out
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
