package crowd

import (
	"math"
	"testing"

	"docs/internal/mathx"
	"docs/internal/model"
)

func testConfig(n int, seed uint64) Config {
	return Config{
		NumWorkers:      n,
		M:               4,
		RelevantDomains: []int{0, 1},
		Seed:            seed,
	}
}

func TestNewPopulation(t *testing.T) {
	pop, err := NewPopulation(testConfig(20, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(pop.Workers) != 20 {
		t.Fatalf("population size %d, want 20", len(pop.Workers))
	}
	ids := make(map[string]bool)
	for _, w := range pop.Workers {
		if ids[w.ID] {
			t.Fatalf("duplicate worker ID %s", w.ID)
		}
		ids[w.ID] = true
		if err := w.TrueQ.Validate(4); err != nil {
			t.Fatalf("worker %s: %v", w.ID, err)
		}
		// Every worker must be expert on at least one relevant domain.
		if w.TrueQ[0] < 0.85 && w.TrueQ[1] < 0.85 {
			t.Errorf("worker %s has no expert domain: %v", w.ID, w.TrueQ)
		}
	}
}

func TestNewPopulationErrors(t *testing.T) {
	if _, err := NewPopulation(Config{NumWorkers: 0, M: 3}); err == nil {
		t.Error("zero workers accepted")
	}
	if _, err := NewPopulation(Config{NumWorkers: 5, M: 0}); err == nil {
		t.Error("zero domains accepted")
	}
	if _, err := NewPopulation(Config{NumWorkers: 5, M: 3, RelevantDomains: []int{7}}); err == nil {
		t.Error("out-of-range relevant domain accepted")
	}
}

func TestPopulationDeterministic(t *testing.T) {
	a, _ := NewPopulation(testConfig(10, 5))
	b, _ := NewPopulation(testConfig(10, 5))
	for i := range a.Workers {
		for k := range a.Workers[i].TrueQ {
			if a.Workers[i].TrueQ[k] != b.Workers[i].TrueQ[k] {
				t.Fatal("same seed produced different populations")
			}
		}
	}
}

func TestWorkerAnswerAccuracyMatchesQuality(t *testing.T) {
	w := &Worker{ID: "w", TrueQ: model.QualityVector{0.9, 0.5}}
	task := &model.Task{
		ID: 0, Choices: []string{"a", "b", "c"},
		Domain: model.DomainVector{0.8, 0.2}, Truth: 1, TrueDomain: model.NoTruth,
	}
	r := mathx.NewRand(2)
	const n = 20000
	correct := 0
	wrongCounts := map[int]int{}
	for i := 0; i < n; i++ {
		c := w.Answer(task, r)
		if c == task.Truth {
			correct++
		} else {
			wrongCounts[c]++
		}
	}
	want := 0.9*0.8 + 0.5*0.2
	got := float64(correct) / n
	if math.Abs(got-want) > 0.01 {
		t.Errorf("empirical accuracy %.3f, want %.3f", got, want)
	}
	// Wrong answers spread uniformly over the two wrong choices.
	if wrongCounts[1] != 0 {
		t.Error("truth counted as wrong")
	}
	ratio := float64(wrongCounts[0]) / float64(wrongCounts[2])
	if ratio < 0.85 || ratio > 1.18 {
		t.Errorf("wrong-answer ratio %.2f, want ≈1", ratio)
	}
}

func TestCollect(t *testing.T) {
	pop, _ := NewPopulation(testConfig(15, 3))
	tasks := []*model.Task{
		{ID: 0, Choices: []string{"a", "b"}, Domain: model.DomainVector{1, 0, 0, 0}, Truth: 0, TrueDomain: model.NoTruth},
		{ID: 1, Choices: []string{"a", "b"}, Domain: model.DomainVector{0, 1, 0, 0}, Truth: 1, TrueDomain: model.NoTruth},
	}
	as, err := Collect(tasks, pop, 10)
	if err != nil {
		t.Fatal(err)
	}
	if as.Len() != 20 {
		t.Fatalf("collected %d answers, want 20", as.Len())
	}
	for _, tk := range tasks {
		if n := len(as.ForTask(tk.ID)); n != 10 {
			t.Errorf("task %d has %d answers, want 10", tk.ID, n)
		}
		seen := map[string]bool{}
		for _, a := range as.ForTask(tk.ID) {
			if seen[a.Worker] {
				t.Errorf("task %d answered twice by %s", tk.ID, a.Worker)
			}
			seen[a.Worker] = true
		}
	}
}

func TestCollectErrors(t *testing.T) {
	pop, _ := NewPopulation(testConfig(5, 3))
	tasks := []*model.Task{{ID: 0, Choices: []string{"a", "b"}, Truth: 0, TrueDomain: model.NoTruth}}
	if _, err := Collect(tasks, pop, 10); err == nil {
		t.Error("perTask > population accepted")
	}
	if _, err := Collect(tasks, pop, 3); err == nil {
		t.Error("task without domain vector accepted")
	}
}

func TestAdversarialWorkers(t *testing.T) {
	cfg := testConfig(40, 7)
	cfg.AdversarialFraction = 1.0
	pop, _ := NewPopulation(cfg)
	for _, w := range pop.Workers {
		for _, q := range w.TrueQ {
			if q != 0.5 {
				t.Fatalf("adversarial worker has quality %g, want 0.5", q)
			}
		}
	}
}

func TestDomainBias(t *testing.T) {
	cfg := testConfig(30, 9)
	cfg.DomainBias = []float64{0, 0, 0.3, -0.3}
	pop, _ := NewPopulation(cfg)
	var mean2, mean3 float64
	for _, w := range pop.Workers {
		mean2 += w.TrueQ[2]
		mean3 += w.TrueQ[3]
	}
	mean2 /= float64(len(pop.Workers))
	mean3 /= float64(len(pop.Workers))
	if mean2 <= mean3 {
		t.Errorf("bias not applied: domain2 mean %.2f <= domain3 mean %.2f", mean2, mean3)
	}
}

func TestAnswerGolden(t *testing.T) {
	pop, _ := NewPopulation(testConfig(8, 11))
	golden := []*model.Task{
		{ID: 100, Choices: []string{"a", "b"}, Domain: model.DomainVector{1, 0, 0, 0}, Truth: 0, TrueDomain: model.NoTruth},
		{ID: 101, Choices: []string{"a", "b"}, Domain: model.DomainVector{0, 1, 0, 0}, Truth: 1, TrueDomain: model.NoTruth},
	}
	byWorker := AnswerGolden(golden, pop)
	if len(byWorker) != 8 {
		t.Fatalf("golden answers for %d workers, want 8", len(byWorker))
	}
	for w, as := range byWorker {
		if len(as) != 2 {
			t.Errorf("worker %s answered %d golden tasks, want 2", w, len(as))
		}
	}
}

func TestArrivalAndByID(t *testing.T) {
	pop, _ := NewPopulation(testConfig(10, 13))
	w := pop.Arrival()
	if w == nil {
		t.Fatal("Arrival returned nil")
	}
	if got := pop.ByID(w.ID); got != w {
		t.Error("ByID did not find arrived worker")
	}
	if pop.ByID("missing") != nil {
		t.Error("ByID found a missing worker")
	}
}

func TestTrueQualitiesIsCopy(t *testing.T) {
	pop, _ := NewPopulation(testConfig(3, 17))
	qs := pop.TrueQualities()
	id := pop.Workers[0].ID
	qs[id][0] = -99
	if pop.Workers[0].TrueQ[0] == -99 {
		t.Error("TrueQualities leaked internal slice")
	}
}
