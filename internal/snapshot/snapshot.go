// Package snapshot serializes the complete recoverable state of a DOCS
// serving campaign — the state a boot would otherwise reconstruct by
// replaying the whole write-ahead log — so restart cost becomes
// proportional to the un-snapshotted WAL suffix instead of the campaign's
// lifetime answer count.
//
// # What a snapshot is
//
// The serving core's canonical state is *defined* as the serial replay of
// its durable record stream (see docs/internal/wal's checkpoint notes), so
// a snapshot is only correct if it is bit-for-bit that serial state. The
// core therefore never snapshots its live concurrently-mutated state; it
// maintains a serial shadow replica fed from the durable log and
// serializes that (see docs/internal/core's snapshot worker). This package
// is just the codec and the atomic file protocol.
//
// Every float64 that participates in inference — the truth-matrix
// numerators M̂, the probabilistic truths s, worker quality q and weight u
// — is stored as its raw IEEE-754 bits (uint64), so "close" can never pass
// for "equal" across an encode/decode round trip. Task metadata travels as
// the same JSON encoding the WAL's publish record uses.
//
// # File format
//
//	magic "DOCSSNP2" | one frame: length (u32le) | CRC32-C (u32le) | JSON
//
// The magic doubles as the format version: "DOCSSNP2" added the per-worker
// profile anchors (AnchorQ/AnchorU). A "DOCSSNP1" snapshot is rejected as
// unreadable and the boot falls back to a full log replay, which
// reconstructs the anchors from the WAL — an automatic, lossless
// migration paid once in boot time.
//
// The frame is the WAL's frame encoding (wal.EncodeFrame), so torn-write
// discrimination follows the WAL's rule: a frame cut short by EOF is a
// torn write (an interrupted replace that the atomic rename should have
// prevented, or plain truncation), bytes present-but-wrong are corruption.
// Either way the snapshot is rejected and the boot falls back to a full
// log replay — losing time, never state.
//
// The file is written to a temp name, fsynced, renamed over
// <dir>/snapshot, and the directory fsynced, so readers see either the old
// complete snapshot or the new complete snapshot, never a mix.
package snapshot

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"docs/internal/wal"
)

// FileName is the snapshot's name inside a campaign's WAL directory.
const FileName = "snapshot"

const magic = "DOCSSNP2"

// ErrCorrupt marks a snapshot file that exists but cannot be trusted —
// torn, CRC-mismatched, undecodable, or structurally invalid. Boots treat
// it as "no snapshot" (full replay) but must surface the reason loudly.
var ErrCorrupt = errors.New("snapshot: corrupt")

// State is the complete recoverable state of one campaign at a WAL
// sequence number. Restoring it and then replaying WAL records with
// Seq > Seq reconstructs exactly the state a full replay would.
type State struct {
	// Seq is the last WAL sequence number the snapshot covers.
	Seq uint64 `json:"seq"`
	// Answers is the accepted non-golden answer count (the counter that
	// drives the periodic-rerun cadence; must equal the log length).
	Answers int64 `json:"answers"`
	// Tasks is the published task set with DVE-computed domain vectors —
	// the same JSON encoding the WAL's publish record carries, so a
	// restored publication matches a replayed one exactly.
	Tasks json.RawMessage `json:"tasks,omitempty"`
	// GoldenIDs are the golden task IDs in publication order.
	GoldenIDs []int `json:"golden_ids,omitempty"`
	// TaskStates hold each non-golden task's inference state, sorted by ID.
	TaskStates []TaskState `json:"task_states,omitempty"`
	// Workers are the truth engine's per-worker statistics, sorted by ID.
	Workers []WorkerStats `json:"workers,omitempty"`
	// Serving is the orchestrator's per-worker serving state (golden
	// answers, profiling flag, answered-task sets), sorted by ID.
	Serving []WorkerServing `json:"serving,omitempty"`
	// Store holds the long-run worker store's contents — present only when
	// the campaign runs over a memory-only store (a persistent store is
	// durable on its own; recovery's only writes to it are idempotent
	// merge-once profile repairs).
	Store []WorkerStats `json:"store,omitempty"`
	// StoreProfiles is the memory-only store's merge-once profile ledger:
	// each recorded profile ID with its post-merge anchor bits (WorkerStats
	// with ID holding the profile ID). Empty for persistent stores, whose
	// ledger lives in their own file.
	StoreProfiles []WorkerStats `json:"store_profiles,omitempty"`
	// Log is the chronological non-golden answer log, column-packed.
	Log Log `json:"log"`
}

// Log is the chronological answer log in columnar form: Workers is a
// dictionary in first-appearance order and W/T/C are parallel arrays of
// (worker index, task ID, choice). Columnar integers decode an order of
// magnitude faster than an array of objects, and the log dominates a
// snapshot's size.
type Log struct {
	Workers []string `json:"workers,omitempty"`
	W       []int    `json:"w,omitempty"`
	T       []int    `json:"t,omitempty"`
	C       []int    `json:"c,omitempty"`
}

// Len returns the number of logged answers.
func (l *Log) Len() int { return len(l.W) }

// TaskState is one task's recoverable inference state. The task's accepted
// answers are not stored: they are exactly the per-task subsequence of the
// chronological log, from which the restore rebuilds them.
type TaskState struct {
	ID int `json:"id"`
	// MHat are the raw (rescaled) numerators M̂ the incremental updates
	// multiply into — not the normalized M, which is derived. Row per
	// domain, column per choice, as float64 bits.
	MHat [][]uint64 `json:"mhat"`
	// S is the probabilistic truth s_i, as float64 bits.
	S []uint64 `json:"s"`
}

// WorkerStats is one worker's (q, u) statistics as float64 bits.
type WorkerStats struct {
	ID string   `json:"id"`
	Q  []uint64 `json:"q"`
	U  []uint64 `json:"u"`
}

// WorkerServing is one worker's orchestrator-side serving state.
type WorkerServing struct {
	ID       string `json:"id"`
	Profiled bool   `json:"profiled,omitempty"`
	// GoldenTasks/GoldenChoices are the worker's golden answers in the
	// order profiling consumed them.
	GoldenTasks   []int `json:"golden_tasks,omitempty"`
	GoldenChoices []int `json:"golden_choices,omitempty"`
	// Answered are the regular tasks the worker answered (T(w)), sorted.
	Answered []int `json:"answered,omitempty"`
	// AnchorQ/AnchorU are the worker's pinned profile anchor — the
	// long-run store statistics adopted when she was profiled or first
	// seeded — as float64 bits. Both empty when no anchor is pinned.
	AnchorQ []uint64 `json:"anchor_q,omitempty"`
	AnchorU []uint64 `json:"anchor_u,omitempty"`
}

// Bits converts floats to their raw IEEE-754 bits.
func Bits(fs []float64) []uint64 {
	out := make([]uint64, len(fs))
	for i, f := range fs {
		out[i] = math.Float64bits(f)
	}
	return out
}

// Floats converts raw bits back to floats.
func Floats(bs []uint64) []float64 {
	out := make([]float64, len(bs))
	for i, b := range bs {
		out[i] = math.Float64frombits(b)
	}
	return out
}

// BitsMatrix converts a float matrix to raw bits row by row.
func BitsMatrix(m [][]float64) [][]uint64 {
	out := make([][]uint64, len(m))
	for i, row := range m {
		out[i] = Bits(row)
	}
	return out
}

// FloatsMatrix converts a bit matrix back to floats row by row.
func FloatsMatrix(m [][]uint64) [][]float64 {
	out := make([][]float64, len(m))
	for i, row := range m {
		out[i] = Floats(row)
	}
	return out
}

// Encode renders the state as a complete snapshot file image. Snapshots
// are compared bit-for-bit across boots, so Encode is a docs-lint
// determinism root (json.Marshal of the State struct is deterministic:
// fields in declaration order, floats already converted to raw bits).
//
//docs:deterministic
func Encode(st *State) ([]byte, error) {
	payload, err := json.Marshal(st)
	if err != nil {
		return nil, fmt.Errorf("snapshot: encode: %w", err)
	}
	out := make([]byte, 0, len(magic)+8+len(payload))
	out = append(out, magic...)
	return wal.EncodeFrame(out, payload), nil
}

// Decode parses a snapshot file image, distinguishing a torn tail (frame
// cut short by EOF) from present-but-wrong bytes; both reject the snapshot
// with ErrCorrupt, carrying the reason.
func Decode(data []byte) (*State, error) {
	if len(data) < len(magic) || string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w: bad header", ErrCorrupt)
	}
	var st *State
	frames := 0
	torn, err := wal.DecodeFrames(data[len(magic):], func(payload []byte) error {
		frames++
		if frames > 1 {
			return fmt.Errorf("%w: trailing frame after state", ErrCorrupt)
		}
		st = new(State)
		if jerr := json.Unmarshal(payload, st); jerr != nil {
			return fmt.Errorf("%w: %v", ErrCorrupt, jerr)
		}
		return nil
	})
	if err != nil {
		if errors.Is(err, ErrCorrupt) {
			return nil, err
		}
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if torn {
		return nil, fmt.Errorf("%w: torn frame", ErrCorrupt)
	}
	if st == nil {
		return nil, fmt.Errorf("%w: no state frame", ErrCorrupt)
	}
	return st, nil
}

// Write atomically replaces dir's snapshot with the given state: temp
// file, fsync, rename, directory fsync. A crash at any point leaves either
// the previous snapshot or the new one.
func Write(dir string, st *State) error {
	data, err := Encode(st)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".snapshot-*")
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("snapshot: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("snapshot: %w", err)
	}
	if err := os.Rename(tmpName, filepath.Join(dir, FileName)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("snapshot: %w", err)
	}
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	return nil
}

// Read loads dir's snapshot, or (nil, nil) when none exists. Any other
// failure — unreadable file, torn tail, corruption — is an error wrapping
// ErrCorrupt where applicable; callers fall back to full replay and
// surface the reason.
func Read(dir string) (*State, error) {
	data, err := os.ReadFile(filepath.Join(dir, FileName))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	return Decode(data)
}
