package snapshot

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func sampleState() *State {
	return &State{
		Seq:       41,
		Answers:   3,
		Tasks:     []byte(`[{"ID":0}]`),
		GoldenIDs: []int{7},
		TaskStates: []TaskState{{
			ID:   0,
			MHat: BitsMatrix([][]float64{{1, 0.5}, {0.25, 1}}),
			S:    Bits([]float64{0.25, 0.75}),
		}},
		Workers: []WorkerStats{{ID: "w", Q: Bits([]float64{0.9}), U: Bits([]float64{2})}},
		Serving: []WorkerServing{{ID: "w", Profiled: true, GoldenTasks: []int{7}, GoldenChoices: []int{1}, Answered: []int{0}}},
		Log:     Log{Workers: []string{"w"}, W: []int{0, 0, 0}, T: []int{0, 1, 2}, C: []int{1, 0, 1}},
	}
}

// TestBitsExactness: the float codec must round-trip every bit pattern,
// including negative zero, denormals and values that decimal formatting
// would mangle.
func TestBitsExactness(t *testing.T) {
	vals := []float64{0, math.Copysign(0, -1), 1.0 / 3.0, math.SmallestNonzeroFloat64,
		math.MaxFloat64, 0.1 + 0.2, math.Nextafter(1, 2)}
	got := Floats(Bits(vals))
	for i := range vals {
		if math.Float64bits(got[i]) != math.Float64bits(vals[i]) {
			t.Fatalf("value %d: %x != %x", i, math.Float64bits(got[i]), math.Float64bits(vals[i]))
		}
	}
}

// TestEncodeDecodeRoundTrip pins the file image: decode(encode(state))
// must reproduce the state exactly, and Write/Read must agree with it.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	st := sampleState()
	data, err := Encode(st)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st, back) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", st, back)
	}

	dir := t.TempDir()
	if err := Write(dir, st); err != nil {
		t.Fatal(err)
	}
	back, err = Read(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st, back) {
		t.Fatal("Write/Read mismatch")
	}
}

// TestReadAbsent: no snapshot is (nil, nil), not an error.
func TestReadAbsent(t *testing.T) {
	st, err := Read(t.TempDir())
	if st != nil || err != nil {
		t.Fatalf("Read on empty dir = (%v, %v), want (nil, nil)", st, err)
	}
}

// TestDecodeRejectsDamage: every damage shape — torn tail, payload rot,
// header rot, trailing garbage — must reject with ErrCorrupt, never decode
// to a different state and never panic.
func TestDecodeRejectsDamage(t *testing.T) {
	data, err := Encode(sampleState())
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]func([]byte) []byte{
		"torn header":      func(b []byte) []byte { return b[:len(magic)+4] },
		"torn payload":     func(b []byte) []byte { return b[:len(b)-3] },
		"payload rot":      func(b []byte) []byte { b[len(b)-5] ^= 1; return b },
		"crc rot":          func(b []byte) []byte { b[len(magic)+5] ^= 1; return b },
		"bad magic":        func(b []byte) []byte { b[2] ^= 1; return b },
		"trailing garbage": func(b []byte) []byte { return append(b, make([]byte, 64)...) },
		"empty":            func(b []byte) []byte { return nil },
	}
	for name, mutate := range cases {
		mutated := mutate(append([]byte(nil), data...))
		st, err := Decode(mutated)
		if err == nil || st != nil {
			t.Fatalf("%s: decoded despite damage", name)
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("%s: error %v does not wrap ErrCorrupt", name, err)
		}
	}
}

// TestWriteAtomic: a Write over an existing snapshot either fully
// replaces it or leaves it; no temp litter survives.
func TestWriteAtomic(t *testing.T) {
	dir := t.TempDir()
	st := sampleState()
	if err := Write(dir, st); err != nil {
		t.Fatal(err)
	}
	st2 := sampleState()
	st2.Seq = 99
	if err := Write(dir, st2); err != nil {
		t.Fatal(err)
	}
	back, err := Read(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.Seq != 99 {
		t.Fatalf("Seq = %d after replace, want 99", back.Seq)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != FileName {
			t.Fatalf("stray file %q left behind", filepath.Join(dir, e.Name()))
		}
	}
}
