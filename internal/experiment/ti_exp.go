package experiment

import (
	"fmt"
	"math"
	"time"

	"docs/internal/baselines"
	"docs/internal/crowd"
	"docs/internal/mathx"
	"docs/internal/model"
	"docs/internal/truth"
)

// datasetNames is the paper's fixed dataset order.
var datasetNames = []string{"Item", "4D", "QA", "SFV"}

func quickNames(quick bool) []string {
	if quick {
		return []string{"Item", "SFV"}
	}
	return datasetNames
}

// Fig4aConvergence reproduces Figure 4(a): the parameter change Δ per
// iteration of the iterative truth inference on each dataset's collected
// answers.
func Fig4aConvergence(seed uint64, quick bool) (*Table, error) {
	iters := 50
	if quick {
		iters = 20
	}
	t := &Table{
		Title:  "Figure 4(a): Convergence of TI (parameter change Δ per iteration)",
		Header: []string{"Iteration"},
	}
	names := quickNames(quick)
	t.Header = append(t.Header, names...)
	deltas := make(map[string][]float64)
	for _, name := range names {
		p, err := Prepare(name, Options{Seed: seed})
		if err != nil {
			return nil, err
		}
		res, err := truth.Infer(p.Main, p.Answers, p.M, truth.Options{
			MaxIter: iters, Epsilon: -1, RecordDeltas: true,
			InitQuality: p.InitQuality,
		})
		if err != nil {
			return nil, err
		}
		deltas[name] = res.Deltas
	}
	for it := 4; it < iters; it += 5 {
		row := []string{fmt.Sprintf("%d", it+1)}
		for _, name := range names {
			row = append(row, fmt.Sprintf("%.4f", deltas[name][it]))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig4bGoldenTasks reproduces Figure 4(b): final accuracy as the number of
// golden tasks used for initialisation varies in [0, 40].
func Fig4bGoldenTasks(seed uint64, quick bool) (*Table, error) {
	counts := []int{0, 5, 10, 15, 20, 25, 30, 35, 40}
	if quick {
		counts = []int{0, 10, 20}
	}
	names := quickNames(quick)
	t := &Table{
		Title:  "Figure 4(b): Accuracy vs #Golden Tasks",
		Header: append([]string{"#Golden"}, names...),
	}
	type prep struct{ p *Prepared }
	preps := map[string]prep{}
	for _, name := range names {
		p, err := Prepare(name, Options{Seed: seed, GoldenCount: 40})
		if err != nil {
			return nil, err
		}
		preps[name] = prep{p}
	}
	for _, n := range counts {
		row := []string{fmt.Sprintf("%d", n)}
		for _, name := range names {
			p := preps[name].p
			var init map[string]model.QualityVector
			if n > 0 {
				golden := p.Golden
				if n < len(golden) {
					golden = golden[:n]
				}
				byWorker := make(map[string][]model.Answer, len(p.GoldenAnswers))
				keep := make(map[int]bool, len(golden))
				for _, g := range golden {
					keep[g.ID] = true
				}
				for w, as := range p.GoldenAnswers {
					for _, a := range as {
						if keep[a.Task] {
							byWorker[w] = append(byWorker[w], a)
						}
					}
				}
				init = truth.InitQualityFromGolden(golden, byWorker, p.M)
			}
			res, err := truth.Infer(p.Main, p.Answers, p.M, truth.Options{InitQuality: init})
			if err != nil {
				return nil, err
			}
			acc, _ := truth.Accuracy(p.Main, res.Truth)
			row = append(row, pct(acc))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig4cAnswersPerTask reproduces Figure 4(c): accuracy as the number of
// collected answers per task varies in [1, 10].
func Fig4cAnswersPerTask(seed uint64, quick bool) (*Table, error) {
	counts := []int{1, 2, 4, 6, 8, 10}
	if quick {
		counts = []int{2, 6, 10}
	}
	names := quickNames(quick)
	t := &Table{
		Title:  "Figure 4(c): Accuracy vs #Collected Answers per Task",
		Header: append([]string{"#Answers"}, names...),
	}
	preps := map[string]*Prepared{}
	for _, name := range names {
		p, err := Prepare(name, Options{Seed: seed})
		if err != nil {
			return nil, err
		}
		preps[name] = p
	}
	for _, n := range counts {
		row := []string{fmt.Sprintf("%d", n)}
		for _, name := range names {
			p := preps[name]
			sub := SubsampleAnswers(p.Answers, n)
			res, err := truth.Infer(p.Main, sub, p.M, truth.Options{InitQuality: p.InitQuality})
			if err != nil {
				return nil, err
			}
			acc, _ := truth.Accuracy(p.Main, res.Truth)
			row = append(row, pct(acc))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig4dWorkerQuality reproduces Figure 4(d): the average deviation between
// estimated and true worker quality as each worker answers more tasks.
func Fig4dWorkerQuality(seed uint64, quick bool) (*Table, error) {
	counts := []int{20, 40, 60, 80, 100}
	if quick {
		counts = []int{20, 60, 100}
	}
	names := quickNames(quick)
	t := &Table{
		Title:  "Figure 4(d): Worker Quality Estimation (avg deviation vs #answered tasks)",
		Header: append([]string{"#Answered"}, names...),
		Notes:  []string{"deviation averaged over the dataset's labelled evaluation domains"},
	}
	for _, n := range counts {
		row := []string{fmt.Sprintf("%d", n)}
		for range names {
			row = append(row, "")
		}
		t.AddRow(row...)
	}
	for col, name := range names {
		p, err := Prepare(name, Options{Seed: seed, SkipCollect: true})
		if err != nil {
			return nil, err
		}
		for ci, n := range counts {
			dev, err := workerQualityDeviation(p, n, seed)
			if err != nil {
				return nil, err
			}
			t.Rows[ci][col+1] = f3(dev)
		}
	}
	return t, nil
}

// workerQualityDeviation has each worker answer exactly n random main
// tasks, runs TI, and returns the mean |q̃−q| over the dataset's relevant
// domains.
func workerQualityDeviation(p *Prepared, n int, seed uint64) (float64, error) {
	r := mathx.NewRand(seed ^ uint64(n)*0x9e37)
	as := model.NewAnswerSet()
	for _, w := range p.Pop.Workers {
		perm := r.Perm(len(p.Main))
		if n > len(perm) {
			n = len(perm)
		}
		for _, ti := range perm[:n] {
			tk := p.Main[ti]
			if err := as.Add(model.Answer{Worker: w.ID, Task: tk.ID, Choice: w.Answer(tk, r)}); err != nil {
				return 0, err
			}
		}
	}
	res, err := truth.Infer(p.Main, as, p.M, truth.Options{InitQuality: p.InitQuality})
	if err != nil {
		return 0, err
	}
	var dev float64
	var cnt int
	trueQ := p.Pop.TrueQualities()
	for w, tq := range trueQ {
		eq, ok := res.Quality[w]
		if !ok {
			continue
		}
		for _, k := range p.YahooIndex {
			dev += math.Abs(tq[k] - eq[k])
			cnt++
		}
	}
	if cnt == 0 {
		return 0, nil
	}
	return dev / float64(cnt), nil
}

// Fig4eTIScalability reproduces Figure 4(e): iterative TI time vs number of
// tasks n ∈ [2K, 10K] for |W| ∈ {10, 100, 500}, m = 20.
func Fig4eTIScalability(seed uint64, quick bool) (*Table, error) {
	sizes := []int{2000, 4000, 6000, 8000, 10000}
	workers := []int{10, 100, 500}
	if quick {
		sizes = []int{500, 1000}
		workers = []int{10, 100}
	}
	t := &Table{
		Title:  "Figure 4(e): Scalability of TI (simulation, m=20, 10 answers/task)",
		Header: []string{"#Tasks"},
	}
	for _, w := range workers {
		t.Header = append(t.Header, fmt.Sprintf("%d workers", w))
	}
	for _, n := range sizes {
		row := []string{fmt.Sprintf("%d", n)}
		for _, nw := range workers {
			tasks, as, err := syntheticCampaign(n, nw, 20, 10, seed)
			if err != nil {
				return nil, err
			}
			d := timeIt(func() {
				if _, err2 := truth.Infer(tasks, as, 20, truth.Options{MaxIter: 20, Epsilon: -1}); err2 != nil {
					err = err2
				}
			})
			if err != nil {
				return nil, err
			}
			row = append(row, d.String())
		}
		t.AddRow(row...)
	}
	return t, nil
}

// syntheticCampaign builds n random tasks over m domains with nw workers
// and perTask answers each, mirroring the paper's scalability simulation.
func syntheticCampaign(n, nw, m, perTask int, seed uint64) ([]*model.Task, *model.AnswerSet, error) {
	pop, err := crowd.NewPopulation(crowd.Config{NumWorkers: nw, M: m, Seed: seed})
	if err != nil {
		return nil, nil, err
	}
	r := pop.Rand()
	tasks := make([]*model.Task, n)
	for i := range tasks {
		dom := make(model.DomainVector, m)
		dom[r.Intn(m)] = 1
		tasks[i] = &model.Task{
			ID: i, Choices: []string{"a", "b"},
			Domain: dom, Truth: r.Intn(2), TrueDomain: model.NoTruth,
		}
	}
	if perTask > nw {
		perTask = nw
	}
	as, err := crowd.Collect(tasks, pop, perTask)
	if err != nil {
		return nil, nil, err
	}
	return tasks, as, nil
}

// Fig5TruthInference reproduces Figure 5: accuracy and execution time of
// MV, ZC, DS, IC, FC and DOCS on the four datasets' collected answers.
// IC and FC receive the ground-truth domain of every task, as the paper
// grants them.
func Fig5TruthInference(seed uint64, quick bool) (*Table, error) {
	t := &Table{
		Title:  "Figure 5: Truth Inference comparison (accuracy / execution time)",
		Header: []string{"Dataset", "MV", "ZC", "DS", "IC", "FC", "DOCS"},
		Notes:  []string{"IC and FC are given each task's ground-truth domain (the paper's favored setup)"},
	}
	names := quickNames(quick)
	for _, name := range names {
		p, err := Prepare(name, Options{Seed: seed})
		if err != nil {
			return nil, err
		}
		scalarInit := ScalarInit(p.InitQuality)

		givenDomains := make([][]float64, len(p.Main))
		givenTopics := make([]int, len(p.Main))
		labelOf := make(map[int]int, len(p.Tasks))
		for i := range p.Tasks {
			labelOf[p.Tasks[i].ID] = p.EvalLabel[i]
		}
		for i, tk := range p.Main {
			lbl := labelOf[tk.ID]
			v := make([]float64, p.NumDomains())
			v[lbl] = 1
			givenDomains[i] = v
			givenTopics[i] = lbl
		}

		methods := []baselines.TruthInferrer{
			baselines.MV{},
			&baselines.ZC{InitReliability: scalarInit},
			&baselines.DS{InitReliability: scalarInit},
			&baselines.IC{GivenDomains: givenDomains},
			&baselines.FC{GivenTopics: givenTopics, InitReliability: scalarInit},
		}
		row := []string{name}
		for _, mth := range methods {
			var inferred []int
			var err error
			d := timeIt(func() { inferred, err = mth.InferTruth(p.Main, p.Answers) })
			if err != nil {
				return nil, fmt.Errorf("%s on %s: %w", mth.Name(), name, err)
			}
			acc, _ := truth.Accuracy(p.Main, inferred)
			row = append(row, fmt.Sprintf("%s / %s", pct(acc), roundDur(d)))
		}
		// DOCS.
		var res *truth.Result
		var err2 error
		d := timeIt(func() {
			res, err2 = truth.Infer(p.Main, p.Answers, p.M, truth.Options{InitQuality: p.InitQuality})
		})
		if err2 != nil {
			return nil, err2
		}
		acc, _ := truth.Accuracy(p.Main, res.Truth)
		row = append(row, fmt.Sprintf("%s / %s", pct(acc), roundDur(d)))
		t.AddRow(row...)
	}
	return t, nil
}

func roundDur(d time.Duration) string {
	return d.Round(100 * time.Microsecond).String()
}

// Fig6CaseStudy reproduces Figure 6 on the Item dataset: (a) the histogram
// of workers' true qualities per domain, (b) calibration of the 3 most
// active workers, (c) calibration over all workers in the NBA domain.
func Fig6CaseStudy(seed uint64, quick bool) (*Table, error) {
	p, err := Prepare("Item", Options{Seed: seed})
	if err != nil {
		return nil, err
	}
	res, err := truth.Infer(p.Main, p.Answers, p.M, truth.Options{InitQuality: p.InitQuality})
	if err != nil {
		return nil, err
	}
	trueQ := p.Pop.TrueQualities()

	t := &Table{
		Title:  "Figure 6: Case Studies of Worker Qualities (Item)",
		Header: []string{"Part", "Detail", "Values"},
	}
	// (a) histogram: 10 bins per evaluation domain.
	for d, dom := range p.EvalDomains {
		k := p.YahooIndex[d]
		bins := make([]int, 10)
		for _, q := range trueQ {
			b := int(q[k] * 10)
			if b > 9 {
				b = 9
			}
			bins[b]++
		}
		t.AddRow("(a) histogram", dom, fmt.Sprintf("%v", bins))
	}
	// (b) three most active workers: (true, est) per domain.
	type activity struct {
		w string
		n int
	}
	var acts []activity
	for _, w := range p.Answers.Workers() {
		acts = append(acts, activity{w, len(p.Answers.ForWorker(w))})
	}
	for i := 0; i < len(acts); i++ {
		for j := i + 1; j < len(acts); j++ {
			if acts[j].n > acts[i].n || (acts[j].n == acts[i].n && acts[j].w < acts[i].w) {
				acts[i], acts[j] = acts[j], acts[i]
			}
		}
	}
	top := 3
	if top > len(acts) {
		top = len(acts)
	}
	var devB float64
	var cntB int
	for _, a := range acts[:top] {
		pairs := make([]string, 0, len(p.EvalDomains))
		for d := range p.EvalDomains {
			k := p.YahooIndex[d]
			tq := trueQ[a.w][k]
			eq := res.Quality[a.w][k]
			devB += math.Abs(tq - eq)
			cntB++
			pairs = append(pairs, fmt.Sprintf("(%.2f,%.2f)", tq, eq))
		}
		t.AddRow("(b) calibration", a.w+fmt.Sprintf(" [%d tasks]", a.n), joinSpace(pairs))
	}
	if cntB > 0 {
		t.AddRow("(b) calibration", "mean |true-est|", f3(devB/float64(cntB)))
	}
	// (c) NBA domain calibration over workers with > 20 answered tasks.
	kNBA := p.YahooIndex[0]
	var devC float64
	var cntC int
	for _, a := range acts {
		if a.n <= 20 {
			continue
		}
		devC += math.Abs(trueQ[a.w][kNBA] - res.Quality[a.w][kNBA])
		cntC++
	}
	if cntC > 0 {
		t.AddRow("(c) NBA calibration", fmt.Sprintf("%d workers >20 tasks", cntC), "mean |true-est| = "+f3(devC/float64(cntC)))
	}
	return t, nil
}

func joinSpace(xs []string) string {
	out := ""
	for i, x := range xs {
		if i > 0 {
			out += " "
		}
		out += x
	}
	return out
}
