// Package experiment reproduces every table and figure of the paper's
// evaluation (Section 6). Each experiment function returns a Table whose
// rows mirror what the paper plots; cmd/docs-bench prints them and
// bench_test.go wraps them as Go benchmarks. All experiments are seeded and
// deterministic.
//
// Absolute numbers differ from the paper (the substrate is a simulator, not
// AMT + Freebase), but the qualitative shapes are asserted by the test
// suite: DOCS beats the baselines where the paper says it does, Algorithm 1
// dominates enumeration, scalability curves are linear, and convergence is
// fast.
package experiment

import (
	"fmt"
	"strings"
	"time"

	"docs/internal/assign"
	"docs/internal/crowd"
	"docs/internal/dataset"
	"docs/internal/dve"
	"docs/internal/entitylink"
	"docs/internal/kb"
	"docs/internal/mathx"
	"docs/internal/model"
	"docs/internal/truth"
)

// Table is one experiment's output: a titled grid of cells.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	// Notes are printed under the table (caveats, parameters).
	Notes []string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var b strings.Builder
	b.WriteString(t.Title)
	b.WriteByte('\n')
	b.WriteString(strings.Repeat("=", len(t.Title)))
	b.WriteByte('\n')
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	var total int
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// f formats a float with 3 decimals; pct as a percentage.
func f3(x float64) string  { return fmt.Sprintf("%.3f", x) }
func pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }
func ms(d time.Duration) string {
	return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
}

// Prepared bundles a generated dataset with everything the experiments
// need: DVE-computed domain vectors, linked entities, a worker population,
// collected answers, and golden-task initialisation.
type Prepared struct {
	*dataset.Dataset
	M int
	// Entities[i] is the DVE input of task i (linked entities, candidates
	// possibly padded to top-c).
	Entities [][]dve.Entity
	// Pop is the simulated worker population.
	Pop *crowd.Population
	// Answers are the fixed-redundancy collected answers (Section 6.1).
	Answers *model.AnswerSet
	// Golden are the selected golden tasks (disjoint from inference; the
	// paper reserves 20 per dataset).
	Golden []*model.Task
	// GoldenAnswers are every worker's answers to the golden tasks.
	GoldenAnswers map[string][]model.Answer
	// InitQuality / InitStats are derived from the golden answers.
	InitQuality map[string]model.QualityVector
	InitStats   map[string]*truth.Stats
	// Main are the non-golden tasks truth inference runs over.
	Main []*model.Task
}

// Options tunes Prepare.
type Options struct {
	Seed           uint64
	Workers        int // population size (default 50)
	AnswersPerTask int // redundancy (default 10)
	GoldenCount    int // golden tasks (default 20)
	SkipCollect    bool
}

// Prepare generates the named dataset and runs the full pre-experiment
// pipeline: DVE, golden selection, population draw, golden answering,
// quality initialisation and fixed-redundancy answer collection.
func Prepare(name string, opt Options) (*Prepared, error) {
	if opt.Workers <= 0 {
		opt.Workers = 50
	}
	if opt.AnswersPerTask <= 0 {
		opt.AnswersPerTask = crowd.DefaultAnswersPerTask
	}
	if opt.GoldenCount == 0 {
		opt.GoldenCount = 20
	}
	ds, err := dataset.ByName(name, opt.Seed)
	if err != nil {
		return nil, err
	}
	k := kb.MustDefault()
	m := k.Domains().Size()
	linker := entitylink.New(k)

	p := &Prepared{Dataset: ds, M: m, Entities: make([][]dve.Entity, len(ds.Tasks))}
	for i, t := range ds.Tasks {
		ents := dve.FromLinked(linker.Link(t.Text), m)
		p.Entities[i] = ents
		t.Domain = dve.Normalized(ents, m)
	}

	// Golden selection among all tasks (they all carry synthetic truth);
	// golden tasks are excluded from inference.
	goldenSet := make(map[int]bool)
	if opt.GoldenCount > 0 {
		for _, idx := range assign.SelectGolden(ds.Tasks, opt.GoldenCount, m) {
			goldenSet[ds.Tasks[idx].ID] = true
			p.Golden = append(p.Golden, ds.Tasks[idx])
		}
	}
	for _, t := range ds.Tasks {
		if !goldenSet[t.ID] {
			p.Main = append(p.Main, t)
		}
	}

	pop, err := crowd.NewPopulation(crowd.Config{
		NumWorkers:      opt.Workers,
		M:               m,
		RelevantDomains: ds.YahooIndex,
		Seed:            opt.Seed ^ 0xf00d,
	})
	if err != nil {
		return nil, err
	}
	p.Pop = pop

	p.GoldenAnswers = crowd.AnswerGolden(p.Golden, pop)
	p.InitQuality = truth.InitQualityFromGolden(p.Golden, p.GoldenAnswers, m)
	p.InitStats = make(map[string]*truth.Stats, len(p.GoldenAnswers))
	for w, as := range p.GoldenAnswers {
		p.InitStats[w] = truth.EstimateFromGolden(p.Golden, as, m)
	}

	if !opt.SkipCollect {
		p.Answers, err = crowd.Collect(p.Main, pop, opt.AnswersPerTask)
		if err != nil {
			return nil, err
		}
	}
	return p, nil
}

// ScalarInit averages a quality vector into the scalar reliability the
// ZC/QASCA baselines consume, weighting by the golden tasks' domain mass.
func ScalarInit(init map[string]model.QualityVector) map[string]float64 {
	out := make(map[string]float64, len(init))
	for w, q := range init {
		out[w] = mathx.Sum(q) / float64(len(q))
	}
	return out
}

// SubsampleAnswers keeps only the first n answers per task, mimicking the
// paper's "varying #collected answers" sweep (Figure 4(c)).
func SubsampleAnswers(as *model.AnswerSet, n int) *model.AnswerSet {
	out := model.NewAnswerSet()
	for _, id := range as.Tasks() {
		list := as.ForTask(id)
		if len(list) > n {
			list = list[:n]
		}
		for _, a := range list {
			if err := out.Add(a); err != nil {
				panic(err) // impossible: subsampling a valid set
			}
		}
	}
	return out
}

// EvalDomainAccuracy scores detected Yahoo-domain indices against the
// dataset's labelled domains, overall and per evaluation domain.
func EvalDomainAccuracy(ds *dataset.Dataset, detected []int) (overall float64, perDomain []float64) {
	correct := make([]int, ds.NumDomains())
	total := make([]int, ds.NumDomains())
	allCorrect := 0
	for i := range ds.Tasks {
		lbl := ds.EvalLabel[i]
		total[lbl]++
		if detected[i] == ds.YahooIndex[lbl] {
			correct[lbl]++
			allCorrect++
		}
	}
	perDomain = make([]float64, ds.NumDomains())
	for d := range perDomain {
		if total[d] > 0 {
			perDomain[d] = float64(correct[d]) / float64(total[d])
		}
	}
	return float64(allCorrect) / float64(len(ds.Tasks)), perDomain
}

// MapLatentToEval maps latent topic IDs to evaluation domains by majority
// vote against the ground-truth labels — the "manual mapping" the paper
// performs for IC and FC — and returns the detected Yahoo-domain index per
// task under that mapping.
func MapLatentToEval(ds *dataset.Dataset, latent []int, nLatent int) []int {
	votes := make([]map[int]int, nLatent)
	for i := range votes {
		votes[i] = make(map[int]int)
	}
	for i, z := range latent {
		votes[z][ds.EvalLabel[i]]++
	}
	mapping := make([]int, nLatent)
	for z := range mapping {
		best, bestC := 0, -1
		for lbl, c := range votes[z] {
			if c > bestC {
				best, bestC = lbl, c
			}
		}
		mapping[z] = best
	}
	out := make([]int, len(latent))
	for i, z := range latent {
		out[i] = ds.YahooIndex[mapping[z]]
	}
	return out
}
