package experiment

import (
	"fmt"
	"time"

	"docs/internal/assign"
	"docs/internal/baselines"
	"docs/internal/crowd"
	"docs/internal/mathx"
	"docs/internal/model"
	"docs/internal/truth"
)

// DOCSAssigner adapts the DOCS OTA module (benefit-based assignment over
// incremental truth inference) to the baselines.Assigner campaign
// interface so Figure 8 compares all six methods under identical rules.
type DOCSAssigner struct {
	m       int
	tasks   []*model.Task
	pos     map[int]int
	inc     *truth.Incremental
	stats   map[string]*truth.Stats
	answers *model.AnswerSet
	// LastAssignTime records the duration of the most recent Assign call
	// (Figure 8(b) reports the worst case).
	LastAssignTime time.Duration
}

// NewDOCSAssigner returns the DOCS assigner over m domains; initStats
// optionally seeds worker statistics from golden tasks.
func NewDOCSAssigner(m int, initStats map[string]*truth.Stats) *DOCSAssigner {
	return &DOCSAssigner{m: m, stats: initStats}
}

// Name implements baselines.Assigner.
func (d *DOCSAssigner) Name() string { return "DOCS" }

// Init implements baselines.Assigner.
func (d *DOCSAssigner) Init(tasks []*model.Task) error {
	d.tasks = tasks
	d.pos = make(map[int]int, len(tasks))
	d.inc = truth.NewIncremental(d.m)
	d.answers = model.NewAnswerSet()
	for i, t := range tasks {
		d.pos[t.ID] = i
		if err := d.inc.AddTask(t); err != nil {
			return err
		}
	}
	for w, st := range d.stats {
		if err := d.inc.SetWorker(w, st); err != nil {
			return err
		}
	}
	return nil
}

// Assign implements baselines.Assigner: top-k benefit (Theorems 2–4).
func (d *DOCSAssigner) Assign(workerID string, candidates []int, k int) []int {
	//docs:allow clock experiment wall-clock measurement; timings are report output, not state
	start := time.Now()
	//docs:allow clock experiment wall-clock measurement; timings are report output, not state
	defer func() { d.LastAssignTime = time.Since(start) }()
	if len(candidates) == 0 || k <= 0 {
		return nil
	}
	var q model.QualityVector
	if st := d.inc.Worker(workerID); st != nil {
		q = st.Q
	} else {
		q = make(model.QualityVector, d.m)
		for i := range q {
			q[i] = truth.DefaultQuality
		}
	}
	states := make([]*assign.TaskState, 0, len(candidates))
	for _, id := range candidates {
		t := d.tasks[d.pos[id]]
		states = append(states, &assign.TaskState{
			ID: id, R: t.Domain, M: d.inc.M(id), S: d.inc.S(id),
		})
	}
	return assign.Assign(states, q, k, nil)
}

// Observe implements baselines.Assigner.
func (d *DOCSAssigner) Observe(a model.Answer) error {
	if err := d.answers.Add(a); err != nil {
		return err
	}
	return d.inc.Submit(a)
}

// Finalize implements baselines.Assigner: full iterative TI.
func (d *DOCSAssigner) Finalize() ([]int, error) {
	init := make(map[string]model.QualityVector, len(d.stats))
	for w, st := range d.stats {
		init[w] = st.Q
	}
	res, err := truth.Infer(d.tasks, d.answers, d.m, truth.Options{InitQuality: init})
	if err != nil {
		return nil, err
	}
	return res.Truth, nil
}

// Fig7aGoldenSelection reproduces Figure 7(a): execution time of the
// approximate golden-task allocator vs exhaustive enumeration for
// n' ∈ [4, 20], m = 10, plus the average approximation ratio γ.
func Fig7aGoldenSelection(seed uint64, quick bool) (*Table, error) {
	sizes := []int{4, 8, 12, 16, 20}
	if quick {
		sizes = []int{4, 8}
	}
	t := &Table{
		Title:  "Figure 7(a): Golden Task Selection — DOCS vs Enumeration (m=10)",
		Header: []string{"n'", "DOCS", "Enumeration", "gamma"},
		Notes:  []string{"gamma = |D - D_opt| / D_opt over the run's random tau"},
	}
	r := mathx.NewRand(seed ^ 0x901d)
	const m = 10
	for _, n := range sizes {
		tau := r.Dirichlet(m, 1.2)
		var approx []int
		dApprox := timeIt(func() { approx = assign.GoldenAllocation(tau, n) })
		var exact []int
		dExact := timeIt(func() { exact = assign.GoldenAllocationExact(tau, n) })
		da := assign.GoldenObjective(approx, tau)
		de := assign.GoldenObjective(exact, tau)
		gamma := 0.0
		if de > 0 {
			gamma = (da - de) / de
		}
		t.AddRow(fmt.Sprintf("%d", n), dApprox.String(), dExact.String(), fmt.Sprintf("%.4f", gamma))
	}
	return t, nil
}

// Fig7bGoldenScalability reproduces Figure 7(b): approximate allocator time
// vs n' ∈ [1K, 10K] for m ∈ {10, 20, 50} — flat in n', as the paper shows.
func Fig7bGoldenScalability(seed uint64, quick bool) (*Table, error) {
	sizes := []int{1000, 4000, 7000, 10000}
	ms := []int{10, 20, 50}
	if quick {
		sizes = []int{1000, 4000}
		ms = []int{10, 20}
	}
	t := &Table{
		Title:  "Figure 7(b): Golden Task Selection Scalability",
		Header: []string{"n'"},
	}
	for _, m := range ms {
		t.Header = append(t.Header, fmt.Sprintf("m=%d", m))
	}
	r := mathx.NewRand(seed ^ 0x901e)
	for _, n := range sizes {
		row := []string{fmt.Sprintf("%d", n)}
		for _, m := range ms {
			tau := r.Dirichlet(m, 1.2)
			d := timeIt(func() { assign.GoldenAllocation(tau, n) })
			row = append(row, d.String())
		}
		t.AddRow(row...)
	}
	return t, nil
}

// CampaignResult is one method's outcome in the Figure 8 comparison.
type CampaignResult struct {
	Method      string
	Accuracy    float64
	WorstAssign time.Duration
}

// RunCampaign drives one assigner through a full simulated campaign under
// the Section 6.1 protocol: arriving workers receive k eligible tasks
// (below the redundancy cap, not previously answered by them) until
// totalAnswers are collected, then the method's own inference runs.
func RunCampaign(a baselines.Assigner, tasks []*model.Task, pop *crowd.Population, totalAnswers, k, cap int, seed uint64) (*CampaignResult, error) {
	if err := a.Init(tasks); err != nil {
		return nil, err
	}
	r := mathx.NewRand(seed ^ 0xca4b)
	counts := make(map[int]int, len(tasks))
	answered := make(map[string]map[int]bool)
	var worst time.Duration

	collected := 0
	stuck := 0
	for collected < totalAnswers && stuck < 10*len(pop.Workers) {
		w := pop.Workers[r.Intn(len(pop.Workers))]
		if answered[w.ID] == nil {
			answered[w.ID] = make(map[int]bool)
		}
		candidates := make([]int, 0, len(tasks))
		for _, tk := range tasks {
			if counts[tk.ID] < cap && !answered[w.ID][tk.ID] {
				candidates = append(candidates, tk.ID)
			}
		}
		if len(candidates) == 0 {
			stuck++
			continue
		}
		//docs:allow clock experiment wall-clock measurement; timings are report output, not state
		start := time.Now()
		got := a.Assign(w.ID, candidates, k)
		//docs:allow clock experiment wall-clock measurement; timings are report output, not state
		if d := time.Since(start); d > worst {
			worst = d
		}
		if len(got) == 0 {
			stuck++
			continue
		}
		stuck = 0
		for _, id := range got {
			tk := tasks[taskIndex(tasks, id)]
			if err := a.Observe(model.Answer{Worker: w.ID, Task: id, Choice: w.Answer(tk, r)}); err != nil {
				return nil, err
			}
			answered[w.ID][id] = true
			counts[id]++
			collected++
		}
	}
	inferred, err := a.Finalize()
	if err != nil {
		return nil, err
	}
	acc, _ := truth.Accuracy(tasks, inferred)
	return &CampaignResult{Method: a.Name(), Accuracy: acc, WorstAssign: worst}, nil
}

func taskIndex(tasks []*model.Task, id int) int {
	// Tasks keep ID == position for generated datasets, but don't rely on it.
	if id >= 0 && id < len(tasks) && tasks[id].ID == id {
		return id
	}
	for i, t := range tasks {
		if t.ID == id {
			return i
		}
	}
	return -1
}

// Fig8Assignment reproduces Figure 8(a)(b): end-to-end accuracy and
// worst-case assignment time of Baseline, AskIt!, IC, QASCA, D-Max and
// DOCS on each dataset. Each method runs its own campaign (k = 3 per HIT,
// redundancy 10) against the same worker population, mirroring the paper's
// parallel-assignment protocol.
func Fig8Assignment(seed uint64, quick bool) (*Table, error) {
	t := &Table{
		Title:  "Figure 8(a)(b): Online Task Assignment comparison (accuracy / worst-case assign time)",
		Header: []string{"Dataset", "Baseline", "AskIt!", "IC", "QASCA", "D-Max", "DOCS"},
	}
	names := quickNames(quick)
	for _, name := range names {
		p, err := Prepare(name, Options{Seed: seed, SkipCollect: true})
		if err != nil {
			return nil, err
		}
		tasks := p.Main
		if quick && len(tasks) > 120 {
			tasks = tasks[:120]
		}
		// Budget below the saturation point (cap × n) so each method's
		// allocation strategy matters: smart assigners can give hard tasks
		// more answers by giving settled tasks fewer. At exact saturation
		// every method collects the identical multiset of (task, 10 answers)
		// and the comparison degenerates to final-inference noise.
		total := 7 * len(tasks)
		scalarInit := ScalarInit(p.InitQuality)

		// IC gets its latent domains from LDA (its own pipeline).
		ldaIters := 200
		if quick {
			ldaIters = 60
		}
		ic := &baselines.IC{Topics: p.NumDomains(), LDAIters: ldaIters, Seed: seed}

		assigners := []baselines.Assigner{
			baselines.NewRandomAssigner(seed),
			baselines.NewAskItAssigner(),
			baselines.NewICAssigner(ic),
			baselines.NewQASCAAssigner(scalarInit),
			baselines.NewDMaxAssigner(p.M, p.InitStats),
			NewDOCSAssigner(p.M, p.InitStats),
		}
		row := []string{name}
		for _, a := range assigners {
			res, err := RunCampaign(a, tasks, p.Pop, total, 3, 10, seed)
			if err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name(), name, err)
			}
			row = append(row, fmt.Sprintf("%s / %s", pct(res.Accuracy), roundDur(res.WorstAssign)))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig8cOTAScalability reproduces Figure 8(c): assignment time vs number of
// tasks n ∈ [2K, 10K] for k ∈ {5, 10, 50}, m = 20, with random task states
// and a random worker — linear in n, flat in k.
func Fig8cOTAScalability(seed uint64, quick bool) (*Table, error) {
	sizes := []int{2000, 4000, 6000, 8000, 10000}
	ks := []int{5, 10, 50}
	if quick {
		sizes = []int{500, 1000}
		ks = []int{5, 10}
	}
	t := &Table{
		Title:  "Figure 8(c): Scalability of OTA (simulation, m=20)",
		Header: []string{"#Tasks"},
	}
	for _, k := range ks {
		t.Header = append(t.Header, fmt.Sprintf("k=%d", k))
	}
	r := mathx.NewRand(seed ^ 0x8c)
	const m = 20
	for _, n := range sizes {
		states := make([]*assign.TaskState, n)
		for i := range states {
			ts := &assign.TaskState{
				ID: i,
				R:  model.DomainVector(r.Dirichlet(m, 0.5)),
				M:  make([][]float64, m),
			}
			for kk := 0; kk < m; kk++ {
				ts.M[kk] = r.Dirichlet(2, 1)
			}
			s := make([]float64, 2)
			for kk, rk := range ts.R {
				for j := range s {
					s[j] += rk * ts.M[kk][j]
				}
			}
			ts.S = mathx.Normalize(s)
			states[i] = ts
		}
		q := make(model.QualityVector, m)
		for i := range q {
			q[i] = r.Range(0.4, 0.95)
		}
		row := []string{fmt.Sprintf("%d", n)}
		for _, k := range ks {
			d := timeIt(func() { assign.Assign(states, q, k, nil) })
			row = append(row, d.String())
		}
		t.AddRow(row...)
	}
	return t, nil
}
