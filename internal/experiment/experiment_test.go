package experiment

import (
	"strconv"
	"strings"
	"testing"

	"docs/internal/baselines"
	"docs/internal/truth"
)

const testSeed = 20160412

func TestTableFormat(t *testing.T) {
	tb := &Table{
		Title:  "T",
		Header: []string{"a", "bb"},
		Notes:  []string{"n"},
	}
	tb.AddRow("1", "2")
	out := tb.Format()
	for _, want := range []string{"T\n", "a", "bb", "1", "2", "note: n"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q:\n%s", want, out)
		}
	}
}

func TestPrepare(t *testing.T) {
	p, err := Prepare("Item", Options{Seed: testSeed, Workers: 20, AnswersPerTask: 4, GoldenCount: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Golden) != 10 {
		t.Errorf("golden = %d, want 10", len(p.Golden))
	}
	if len(p.Main)+len(p.Golden) != len(p.Tasks) {
		t.Errorf("main %d + golden %d != %d", len(p.Main), len(p.Golden), len(p.Tasks))
	}
	if p.Answers.Len() != 4*len(p.Main) {
		t.Errorf("collected %d answers, want %d", p.Answers.Len(), 4*len(p.Main))
	}
	if len(p.InitQuality) != 20 {
		t.Errorf("init quality for %d workers, want 20", len(p.InitQuality))
	}
	for _, tk := range p.Tasks {
		if tk.Domain == nil {
			t.Fatalf("task %d has no DVE vector", tk.ID)
		}
	}
}

func TestPrepareUnknownDataset(t *testing.T) {
	if _, err := Prepare("nope", Options{}); err == nil {
		t.Error("unknown dataset accepted")
	}
}

// parsePct turns "93.4%" back into 0.934 for assertions on table cells.
func parsePct(t *testing.T, cell string) float64 {
	t.Helper()
	s := strings.TrimSuffix(strings.Fields(cell)[0], "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q not a percentage: %v", cell, err)
	}
	return v / 100
}

// TestFig3Shape asserts the Figure 3 headline: on Item every method
// detects domains well; on 4D/QA/SFV (varied intra-domain text) DOCS stays
// high while at least one topic-model baseline collapses, and DOCS wins
// overall on every dataset.
func TestFig3Shape(t *testing.T) {
	tb, err := Fig3DomainDetection(testSeed, true)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tb.Format())
	overall := map[string][3]float64{} // ic, fc, docs
	for _, row := range tb.Rows {
		if row[1] != "OVERALL" {
			continue
		}
		overall[row[0]] = [3]float64{parsePct(t, row[2]), parsePct(t, row[3]), parsePct(t, row[4])}
	}
	for name, o := range overall {
		ic, fc, docs := o[0], o[1], o[2]
		if docs < 0.85 {
			t.Errorf("%s: DOCS overall %.2f, want >= 0.85", name, docs)
		}
		if docs+0.02 < ic || docs+0.02 < fc {
			t.Errorf("%s: DOCS %.2f loses to a topic model (IC %.2f, FC %.2f)", name, docs, ic, fc)
		}
	}
	for _, name := range []string{"QA", "SFV", "4D"} {
		o, ok := overall[name]
		if !ok {
			continue
		}
		if o[2] < o[0]+0.05 && o[2] < o[1]+0.05 {
			t.Errorf("%s: DOCS %.2f does not clearly beat IC %.2f / FC %.2f on varied text", name, o[2], o[0], o[1])
		}
	}
}

func TestTable3Shape(t *testing.T) {
	tb, err := Table3DVE(testSeed, true)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tb.Format())
	// The synthetic |Et|=8 row must show enumeration as infeasible.
	last := tb.Rows[len(tb.Rows)-1]
	if !strings.HasPrefix(last[3], "est.") {
		t.Errorf("synthetic row enumeration = %q, want an estimate (infeasible)", last[3])
	}
}

func TestFig4aConverges(t *testing.T) {
	tb, err := Fig4aConvergence(testSeed, true)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tb.Format())
	first := tb.Rows[0]
	last := tb.Rows[len(tb.Rows)-1]
	for c := 1; c < len(first); c++ {
		f, _ := strconv.ParseFloat(first[c], 64)
		l, _ := strconv.ParseFloat(last[c], 64)
		if l > f+1e-9 {
			t.Errorf("column %d: Δ grew from %g to %g", c, f, l)
		}
		if l > 0.01 {
			t.Errorf("column %d: final Δ = %g, want < 0.01", c, l)
		}
	}
}

func TestFig4cMoreAnswersHelp(t *testing.T) {
	tb, err := Fig4cAnswersPerTask(testSeed, true)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tb.Format())
	first := tb.Rows[0]
	last := tb.Rows[len(tb.Rows)-1]
	for c := 1; c < len(first); c++ {
		lo := parsePct(t, first[c])
		hi := parsePct(t, last[c])
		if hi+0.03 < lo {
			t.Errorf("column %d: accuracy fell from %.2f (few answers) to %.2f (many)", c, lo, hi)
		}
	}
}

func TestFig4dDeviationShrinks(t *testing.T) {
	tb, err := Fig4dWorkerQuality(testSeed, true)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tb.Format())
	first := tb.Rows[0]
	last := tb.Rows[len(tb.Rows)-1]
	for c := 1; c < len(first); c++ {
		lo, _ := strconv.ParseFloat(first[c], 64)
		hi, _ := strconv.ParseFloat(last[c], 64)
		if hi > lo+0.02 {
			t.Errorf("column %d: deviation grew from %.3f to %.3f with more answers", c, lo, hi)
		}
		if hi > 0.15 {
			t.Errorf("column %d: deviation %.3f with 100 answers, want <= 0.15", c, hi)
		}
	}
}

// TestFig5Shape asserts the Figure 5(a) headline: DOCS is at least as good
// as every competitor on every dataset tested.
func TestFig5Shape(t *testing.T) {
	tb, err := Fig5TruthInference(testSeed, true)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tb.Format())
	for _, row := range tb.Rows {
		docs := parsePct(t, row[len(row)-1])
		for c := 1; c < len(row)-1; c++ {
			other := parsePct(t, row[c])
			if docs+0.015 < other {
				t.Errorf("%s: DOCS %.3f below %s %.3f", row[0], docs, tb.Header[c], other)
			}
		}
		if docs < 0.85 {
			t.Errorf("%s: DOCS accuracy %.3f, want >= 0.85", row[0], docs)
		}
	}
}

func TestFig6Runs(t *testing.T) {
	tb, err := Fig6CaseStudy(testSeed, true)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tb.Format())
	if len(tb.Rows) < 6 {
		t.Errorf("case study produced only %d rows", len(tb.Rows))
	}
}

func TestFig7aNearOptimal(t *testing.T) {
	tb, err := Fig7aGoldenSelection(testSeed, true)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tb.Format())
	for _, row := range tb.Rows {
		gamma, _ := strconv.ParseFloat(row[3], 64)
		if gamma > 0.05 {
			t.Errorf("n'=%s: gamma %.4f, want <= 0.05", row[0], gamma)
		}
	}
}

func TestFig7bRuns(t *testing.T) {
	tb, err := Fig7bGoldenScalability(testSeed, true)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tb.Format())
}

// TestFig8Shape asserts the Figure 8(a) headline at quick scale: DOCS is
// not beaten by any competitor by more than noise.
func TestFig8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign simulation is slow")
	}
	tb, err := Fig8Assignment(testSeed, true)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tb.Format())
	for _, row := range tb.Rows {
		docs := parsePct(t, row[len(row)-1])
		for c := 1; c < len(row)-1; c++ {
			other := parsePct(t, row[c])
			if docs+0.03 < other {
				t.Errorf("%s: DOCS %.3f below %s %.3f", row[0], docs, tb.Header[c], other)
			}
		}
	}
}

func TestFig8cRuns(t *testing.T) {
	tb, err := Fig8cOTAScalability(testSeed, true)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tb.Format())
}

func TestFig4bGoldenHelps(t *testing.T) {
	tb, err := Fig4bGoldenTasks(testSeed, true)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tb.Format())
	// Accuracy with 20 golden tasks must not be materially below 0 golden.
	first := tb.Rows[0]
	last := tb.Rows[len(tb.Rows)-1]
	for c := 1; c < len(first); c++ {
		none := parsePct(t, first[c])
		some := parsePct(t, last[c])
		if some+0.03 < none {
			t.Errorf("column %d: golden init hurt: %.3f -> %.3f", c, none, some)
		}
	}
}

func TestFig4eRuns(t *testing.T) {
	tb, err := Fig4eTIScalability(testSeed, true)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tb.Format())
}

// TestRunCampaignProtocol checks the shared campaign loop enforces the
// redundancy cap and no-repeat rule for the DOCS assigner.
func TestRunCampaignProtocol(t *testing.T) {
	p, err := Prepare("Item", Options{Seed: testSeed, Workers: 15, SkipCollect: true})
	if err != nil {
		t.Fatal(err)
	}
	tasks := p.Main[:40]
	a := NewDOCSAssigner(p.M, p.InitStats)
	res, err := RunCampaign(a, tasks, p.Pop, 200, 3, 5, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != "DOCS" {
		t.Errorf("method = %s", res.Method)
	}
	if res.Accuracy < 0.6 {
		t.Errorf("campaign accuracy %.3f suspiciously low", res.Accuracy)
	}
}

// TestDOCSAssignerInterfaceCompliance ensures the adapter satisfies the
// baselines contract.
func TestDOCSAssignerInterfaceCompliance(t *testing.T) {
	var _ baselines.Assigner = NewDOCSAssigner(2, nil)
	var _ baselines.Assigner = baselines.NewDMaxAssigner(2, map[string]*truth.Stats{})
}

// TestAblationShape: the full system must not lose to any ablated variant
// by more than noise, and the variants must all stay above the random-ish
// floor.
func TestAblationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign simulation is slow")
	}
	tb, err := AblationStudy(testSeed, true)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tb.Format())
	for _, row := range tb.Rows {
		full := parsePct(t, row[1])
		for c := 2; c < len(row); c++ {
			if v := parsePct(t, row[c]); full+0.03 < v {
				t.Errorf("%s: full DOCS %.3f below %s %.3f", row[0], full, tb.Header[c], v)
			}
		}
	}
}
