package experiment

import (
	"fmt"

	"docs/internal/baselines"
	"docs/internal/crowd"
	"docs/internal/mathx"
	"docs/internal/model"
	"docs/internal/truth"
)

// The accuracy experiment turns the paper's robustness story into a tracked
// benchmark: for each adversarial population mix (docs/experiments.md), run
// DOCS against the baseline competitors twice —
//
//	inference: all methods score the SAME fixed-redundancy answer set
//	           (MV, IC and FC with their paper-favored inputs, DOCS with
//	           golden-task initialisation), isolating truth inference;
//	campaign:  each assigner runs its own end-to-end campaign under the
//	           Figure 8 protocol (fresh same-seed population per method, so
//	           sleeper phase switches and drift replay identically),
//	           isolating online task assignment.
//
// Everything is a pure function of the seed; cmd/docs-bench commits the
// result as bench/BENCH_accuracy.json and scripts/check_bench.sh gates the
// DOCS−MV margin at every spammer fraction against the committed copy.

// AccuracyRow is one (mix, mode, method) cell of the accuracy experiment.
type AccuracyRow struct {
	Mix             string  `json:"mix"`
	SpammerFraction float64 `json:"spammer_fraction"`
	Mode            string  `json:"mode"` // "inference" | "campaign"
	Method          string  `json:"method"`
	Accuracy        float64 `json:"accuracy"`
	// Degradation is the clean-mix accuracy of the same (mode, method)
	// minus this row's — how much this population mix costs the method.
	Degradation float64 `json:"degradation_vs_clean"`
}

// AccuracyMargin is the guard's unit: DOCS minus majority vote on the
// shared answer set at one spammer fraction.
type AccuracyMargin struct {
	Mix             string  `json:"mix"`
	SpammerFraction float64 `json:"spammer_fraction"`
	DOCS            float64 `json:"docs"`
	MV              float64 `json:"mv"`
	DOCSMinusMV     float64 `json:"docs_minus_mv"`
}

// AccuracyResult is the committed artifact. It intentionally carries no
// timings or other machine-dependent values: two runs with the same seed
// must serialize byte-identically (asserted by a regression test).
type AccuracyResult struct {
	Experiment string `json:"experiment"`
	Seed       uint64 `json:"seed"`
	Quick      bool   `json:"quick"`
	Tasks      int    `json:"tasks"`
	Workers    int    `json:"workers"`
	Redundancy int    `json:"redundancy"`
	Golden     int    `json:"golden"`
	Domains    int    `json:"domains"`
	Choices    int    `json:"choices"`

	Rows    []AccuracyRow    `json:"rows"`
	Margins []AccuracyMargin `json:"margins"`
}

type accSizes struct {
	tasks, workers, redundancy, golden, m, choices, budgetPerTask int
}

func accuracySizesFor(quick bool) accSizes {
	// Redundancy sits well below saturation (5, not the paper's 10): with 8+
	// answers per task every method nears 100% and the quality-weighting
	// margins the guard tracks vanish into noise.
	if quick {
		return accSizes{tasks: 200, workers: 60, redundancy: 5, golden: 20, m: 12, choices: 4, budgetPerTask: 4}
	}
	return accSizes{tasks: 600, workers: 120, redundancy: 5, golden: 20, m: 20, choices: 4, budgetPerTask: 4}
}

type accuracyMix struct {
	Name string
	Adv  crowd.Adversarial
	// SpamFrac and Gate mark the spammer-sweep mixes whose DOCS−MV margin
	// the bench guard enforces.
	SpamFrac float64
	Gate     bool
}

// accuracyMixes is the population sweep: a spammer-fraction family (gated)
// plus one mix per remaining archetype. Identical in quick and full mode so
// the committed quick artifact covers every row the guard reads.
func accuracyMixes() []accuracyMix {
	spam := func(f float64) accuracyMix {
		return accuracyMix{
			Name:     fmt.Sprintf("spam-%.0f%%", f*100),
			Adv:      crowd.Adversarial{SpammerFraction: f},
			SpamFrac: f,
			Gate:     true,
		}
	}
	return []accuracyMix{
		{Name: "clean", Gate: true},
		spam(0.10),
		spam(0.20),
		spam(0.30),
		{Name: "sleeper-30%", Adv: crowd.Adversarial{SleeperFraction: 0.3}},
		{Name: "clique-2x5", Adv: crowd.Adversarial{Cliques: 2, CliqueSize: 5}},
		{Name: "drift", Adv: crowd.Adversarial{DriftPerAnswer: -0.002}},
	}
}

// accuracyTasks builds the synthetic workload: one-hot domains over m,
// sz.choices-way choices (4-way, so spammer accuracy 1/ℓ = 0.25 sits well
// below any honest worker). The task stream is drawn independently of every
// population so all mixes score the identical task set.
func accuracyTasks(seed uint64, sz accSizes) (main, golden []*model.Task) {
	r := mathx.NewRand(seed ^ 0xacc7)
	choices := []string{"a", "b", "c", "d", "e", "f"}[:sz.choices]
	mk := func(id int) *model.Task {
		dom := make(model.DomainVector, sz.m)
		dom[r.Intn(sz.m)] = 1
		return &model.Task{
			ID: id, Choices: choices, Domain: dom,
			Truth: r.Intn(sz.choices), TrueDomain: model.NoTruth,
		}
	}
	for i := 0; i < sz.tasks; i++ {
		main = append(main, mk(i))
	}
	for i := 0; i < sz.golden; i++ {
		golden = append(golden, mk(sz.tasks+i))
	}
	return main, golden
}

func accuracyPop(seed uint64, sz accSizes, adv crowd.Adversarial) (*crowd.Population, error) {
	return crowd.NewPopulation(crowd.Config{
		NumWorkers:  sz.workers,
		M:           sz.m,
		Seed:        seed ^ 0xf00d,
		Adversarial: adv,
	})
}

// goldenProfile runs the golden gauntlet: every worker answers all golden
// tasks (20 of them — exactly a default sleeper's honest budget, so
// sleepers ace profiling and degrade immediately after, the attack the
// archetype models).
func goldenProfile(pop *crowd.Population, golden []*model.Task, m int) (map[string]model.QualityVector, map[string]*truth.Stats) {
	ga := crowd.AnswerGolden(golden, pop)
	initQ := truth.InitQualityFromGolden(golden, ga, m)
	stats := make(map[string]*truth.Stats, len(ga))
	for w, as := range ga {
		stats[w] = truth.EstimateFromGolden(golden, as, m)
	}
	return initQ, stats
}

type accCell struct {
	method string
	acc    float64
}

// accuracyInference scores MV, IC (given true domains), FC (given true
// topics + golden scalar init) and DOCS (golden init) on one shared
// fixed-redundancy answer set from the mix's population.
func accuracyInference(seed uint64, sz accSizes, adv crowd.Adversarial) ([]accCell, error) {
	main, golden := accuracyTasks(seed, sz)
	pop, err := accuracyPop(seed, sz, adv)
	if err != nil {
		return nil, err
	}
	initQ, _ := goldenProfile(pop, golden, sz.m)
	answers, err := crowd.Collect(main, pop, sz.redundancy)
	if err != nil {
		return nil, err
	}
	scalar := ScalarInit(initQ)
	givenDomains := make([][]float64, len(main))
	givenTopics := make([]int, len(main))
	for i, tk := range main {
		givenDomains[i] = tk.Domain
		givenTopics[i] = tk.Domain.Top()
	}
	methods := []baselines.TruthInferrer{
		baselines.MV{},
		&baselines.IC{GivenDomains: givenDomains},
		&baselines.FC{GivenTopics: givenTopics, InitReliability: scalar},
	}
	var out []accCell
	for _, mth := range methods {
		inferred, err := mth.InferTruth(main, answers)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", mth.Name(), err)
		}
		acc, _ := truth.Accuracy(main, inferred)
		out = append(out, accCell{mth.Name(), acc})
	}
	res, err := truth.Infer(main, answers, sz.m, truth.Options{InitQuality: initQ})
	if err != nil {
		return nil, err
	}
	acc, _ := truth.Accuracy(main, res.Truth)
	out = append(out, accCell{"DOCS", acc})
	return out, nil
}

// accuracyCampaigns runs Baseline (random), D-Max and DOCS through the
// Figure 8 campaign protocol. Each method gets a FRESH population from the
// same seed: identical quality draws and archetype deals, and — because
// sleeper phases and drift depend on each worker's answer count — identical
// adversarial trajectories, so the comparison is apples-to-apples.
func accuracyCampaigns(seed uint64, sz accSizes, adv crowd.Adversarial) ([]accCell, error) {
	main, golden := accuracyTasks(seed, sz)
	methods := []struct {
		name string
		mk   func(stats map[string]*truth.Stats) baselines.Assigner
	}{
		{"Baseline", func(map[string]*truth.Stats) baselines.Assigner { return baselines.NewRandomAssigner(seed) }},
		{"D-Max", func(st map[string]*truth.Stats) baselines.Assigner { return baselines.NewDMaxAssigner(sz.m, st) }},
		{"DOCS", func(st map[string]*truth.Stats) baselines.Assigner { return NewDOCSAssigner(sz.m, st) }},
	}
	var out []accCell
	for _, mth := range methods {
		pop, err := accuracyPop(seed, sz, adv)
		if err != nil {
			return nil, err
		}
		_, stats := goldenProfile(pop, golden, sz.m)
		res, err := RunCampaign(mth.mk(stats), main, pop, sz.budgetPerTask*len(main), 3, sz.redundancy, seed)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", mth.name, err)
		}
		out = append(out, accCell{mth.name, res.Accuracy})
	}
	return out, nil
}

// AccuracyExperiment runs the full mix sweep and returns both the printable
// table and the committed artifact.
func AccuracyExperiment(seed uint64, quick bool) (*Table, *AccuracyResult, error) {
	sz := accuracySizesFor(quick)
	mixes := accuracyMixes()
	res := &AccuracyResult{
		Experiment: "accuracy",
		Seed:       seed,
		Quick:      quick,
		Tasks:      sz.tasks,
		Workers:    sz.workers,
		Redundancy: sz.redundancy,
		Golden:     sz.golden,
		Domains:    sz.m,
		Choices:    sz.choices,
	}
	tb := &Table{
		Title:  "Accuracy under adversarial crowds: DOCS vs baselines",
		Header: []string{"Mix", "MV", "IC", "FC", "DOCS(TI)", "Baseline", "D-Max", "DOCS(OTA)"},
		Notes: []string{
			fmt.Sprintf("inference columns share one fixed-redundancy answer set (%d answers/task, %d tasks, %d workers, %d-choice)",
				sz.redundancy, sz.tasks, sz.workers, sz.choices),
			fmt.Sprintf("campaign columns each run the Fig.8 protocol (budget %d×tasks, k=3, cap=%d) on a fresh same-seed population",
				sz.budgetPerTask, sz.redundancy),
			"the bench guard gates DOCS(TI) − MV at every spammer fraction against bench/BENCH_accuracy.json",
		},
	}
	for _, mix := range mixes {
		inf, err := accuracyInference(seed, sz, mix.Adv)
		if err != nil {
			return nil, nil, fmt.Errorf("accuracy %s inference: %w", mix.Name, err)
		}
		camp, err := accuracyCampaigns(seed, sz, mix.Adv)
		if err != nil {
			return nil, nil, fmt.Errorf("accuracy %s campaign: %w", mix.Name, err)
		}
		row := []string{mix.Name}
		for _, c := range inf {
			res.Rows = append(res.Rows, AccuracyRow{
				Mix: mix.Name, SpammerFraction: mix.SpamFrac,
				Mode: "inference", Method: c.method, Accuracy: c.acc,
			})
			row = append(row, pct(c.acc))
		}
		for _, c := range camp {
			res.Rows = append(res.Rows, AccuracyRow{
				Mix: mix.Name, SpammerFraction: mix.SpamFrac,
				Mode: "campaign", Method: c.method, Accuracy: c.acc,
			})
			row = append(row, pct(c.acc))
		}
		if mix.Gate {
			var docs, mv float64
			for _, c := range inf {
				switch c.method {
				case "DOCS":
					docs = c.acc
				case "MV":
					mv = c.acc
				}
			}
			res.Margins = append(res.Margins, AccuracyMargin{
				Mix: mix.Name, SpammerFraction: mix.SpamFrac,
				DOCS: docs, MV: mv, DOCSMinusMV: docs - mv,
			})
		}
		tb.AddRow(row...)
	}
	// Degradation vs the clean mix, per (mode, method).
	clean := make(map[string]float64)
	for _, r := range res.Rows {
		if r.Mix == "clean" {
			clean[r.Mode+"/"+r.Method] = r.Accuracy
		}
	}
	for i := range res.Rows {
		r := &res.Rows[i]
		r.Degradation = clean[r.Mode+"/"+r.Method] - r.Accuracy
	}
	return tb, res, nil
}
