package experiment

import (
	"encoding/json"
	"testing"

	"docs/internal/crowd"
	"docs/internal/mathx"
	"docs/internal/model"
	"docs/internal/truth"
)

// smallAccSizes keeps the property tests fast while staying far enough
// from saturation that quality weighting matters.
func smallAccSizes() accSizes {
	return accSizes{tasks: 120, workers: 40, redundancy: 5, golden: 16, m: 8, choices: 4, budgetPerTask: 4}
}

// DOCS accuracy must degrade monotonically (within tolerance) as the
// spammer fraction rises — more spam can never help.
func TestAccuracyMonotoneSpammerDegradation(t *testing.T) {
	sz := smallAccSizes()
	const tol = 0.05
	for _, seed := range []uint64{testSeed, testSeed + 1} {
		fractions := []float64{0, 0.15, 0.30, 0.45}
		var docs []float64
		for _, f := range fractions {
			cells, err := accuracyInference(seed, sz, crowd.Adversarial{SpammerFraction: f})
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range cells {
				if c.method == "DOCS" {
					docs = append(docs, c.acc)
				}
			}
		}
		for i := 1; i < len(docs); i++ {
			if docs[i] > docs[i-1]+tol {
				t.Errorf("seed %d: DOCS accuracy rose with more spam: %.3f at %.0f%% vs %.3f at %.0f%%",
					seed, docs[i], fractions[i]*100, docs[i-1], fractions[i-1]*100)
			}
		}
		if docs[len(docs)-1] >= docs[0] {
			t.Errorf("seed %d: 45%% spam did not degrade DOCS at all (%.3f vs clean %.3f)",
				seed, docs[len(docs)-1], docs[0])
		}
	}
}

// Golden-task profiling must detect spammers: every spammer's mean
// estimated quality lands strictly below every honest worker's (the bottom
// tier), across seeds.
func TestGoldenProfilingDetectsSpammers(t *testing.T) {
	sz := smallAccSizes()
	sz.golden = 32 // enough golden exposure per domain to overcome smoothing
	for _, seed := range []uint64{testSeed, testSeed + 7, testSeed + 13} {
		_, golden := accuracyTasks(seed, sz)
		pop, err := accuracyPop(seed, sz, crowd.Adversarial{SpammerFraction: 0.4})
		if err != nil {
			t.Fatal(err)
		}
		_, stats := goldenProfile(pop, golden, sz.m)
		// Exposure-weighted mean: domains the golden set never exercised sit
		// at the smoothing prior for everyone and would only blur the tiers.
		mean := func(w *crowd.Worker) float64 {
			st := stats[w.ID]
			var num, den float64
			for k, q := range st.Q {
				num += q * st.U[k]
				den += st.U[k]
			}
			return num / den
		}
		worstHonest, bestSpammer := 2.0, -1.0
		var honestID, spamID string
		for _, w := range pop.Workers {
			m := mean(w)
			switch w.Archetype {
			case crowd.Spammer:
				if m > bestSpammer {
					bestSpammer, spamID = m, w.ID
				}
			case crowd.Honest:
				if m < worstHonest {
					worstHonest, honestID = m, w.ID
				}
			}
		}
		if bestSpammer >= worstHonest {
			t.Errorf("seed %d: spammer %s profiled at %.3f, above honest %s at %.3f",
				seed, spamID, bestSpammer, honestID, worstHonest)
		}
	}
}

// Profiling must never demote an always-right worker below an always-wrong
// one, whatever the golden set looks like: per-domain estimates must order
// right ≥ wrong everywhere, strictly wherever the domain saw answers.
func TestGoldenProfilingOrdersRightAboveWrong(t *testing.T) {
	r := mathx.NewRand(testSeed ^ 0x0bde)
	for trial := 0; trial < 60; trial++ {
		m := 2 + r.Intn(6)
		nGolden := 1 + r.Intn(24)
		golden := make([]*model.Task, nGolden)
		var right, wrong []model.Answer
		for i := range golden {
			ell := 2 + r.Intn(3)
			dom := make(model.DomainVector, m)
			if r.Float64() < 0.5 {
				dom[r.Intn(m)] = 1 // one-hot
			} else {
				dom = model.DomainVector(r.Dirichlet(m, 0.8)) // mixed
			}
			truthChoice := r.Intn(ell)
			golden[i] = &model.Task{
				ID: i, Choices: []string{"a", "b", "c", "d"}[:ell],
				Domain: dom, Truth: truthChoice, TrueDomain: model.NoTruth,
			}
			right = append(right, model.Answer{Worker: "right", Task: i, Choice: truthChoice})
			w := r.Intn(ell - 1)
			if w >= truthChoice {
				w++
			}
			wrong = append(wrong, model.Answer{Worker: "wrong", Task: i, Choice: w})
		}
		qr := truth.EstimateFromGolden(golden, right, m)
		qw := truth.EstimateFromGolden(golden, wrong, m)
		for k := 0; k < m; k++ {
			if qr.Q[k] < qw.Q[k] {
				t.Fatalf("trial %d: domain %d ranks always-right (%.3f) below always-wrong (%.3f)",
					trial, k, qr.Q[k], qw.Q[k])
			}
			if qr.U[k] > 0 && qr.Q[k] <= qw.Q[k] {
				t.Fatalf("trial %d: domain %d (weight %.2f) does not strictly prefer always-right: %.3f vs %.3f",
					trial, k, qr.U[k], qr.Q[k], qw.Q[k])
			}
		}
	}
}

// The committed artifact's contract: two same-seed runs serialize
// byte-identically, and the guard's margins hold — DOCS ≥ MV at every
// gated mix and strictly above at the top spammer fraction.
func TestAccuracyArtifactDeterministicAndMargins(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick-mode accuracy sweep twice")
	}
	run := func() ([]byte, *AccuracyResult) {
		_, res, err := AccuracyExperiment(testSeed, true)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return b, res
	}
	b1, res := run()
	b2, _ := run()
	if string(b1) != string(b2) {
		t.Fatal("two same-seed accuracy runs serialized differently")
	}
	if len(res.Margins) < 4 {
		t.Fatalf("only %d gated mixes, want clean + >=3 spammer fractions", len(res.Margins))
	}
	var top AccuracyMargin
	for _, mg := range res.Margins {
		if mg.DOCSMinusMV < 0 {
			t.Errorf("mix %s: DOCS %.3f below MV %.3f", mg.Mix, mg.DOCS, mg.MV)
		}
		if mg.SpammerFraction > top.SpammerFraction {
			top = mg
		}
	}
	if top.DOCSMinusMV <= 0 {
		t.Errorf("at the top spammer fraction (%.0f%%) DOCS does not strictly beat MV (margin %.3f)",
			top.SpammerFraction*100, top.DOCSMinusMV)
	}
}
