package experiment

import (
	"docs/internal/baselines"
	"docs/internal/model"
	"docs/internal/truth"
)

// Ablation isolates the contribution of each DOCS design choice on one
// end-to-end campaign (this experiment has no direct analogue in the
// paper's figures; it substantiates the design arguments of Sections 4–5):
//
//	DOCS            — full system: domain-aware TI + benefit assignment +
//	                  golden profiling
//	−golden         — no golden-task profiling (flat quality init)
//	−benefit        — assignment by domain match only (D-Max): shows the
//	                  value of the entropy-reduction benefit
//	−domains        — scalar worker model with benefit-style assignment
//	                  (QASCA): shows the value of the domain dimension
//	−assignment     — random assignment with domain-aware TI: shows the
//	                  value of OTA as a whole
type ablationVariant struct {
	name string
	mk   func(p *Prepared) baselines.Assigner
}

// randomWithDOCSTI is the "−assignment" variant: random task selection but
// DOCS truth inference.
type randomWithDOCSTI struct {
	inner *baselines.RandomAssigner
	m     int
	stats map[string]*truth.Stats
	tasks []*model.Task
	log   *model.AnswerSet
}

func (r *randomWithDOCSTI) Name() string { return "-assignment" }

func (r *randomWithDOCSTI) Init(tasks []*model.Task) error {
	r.tasks = tasks
	r.log = model.NewAnswerSet()
	return r.inner.Init(tasks)
}

func (r *randomWithDOCSTI) Assign(w string, candidates []int, k int) []int {
	return r.inner.Assign(w, candidates, k)
}

func (r *randomWithDOCSTI) Observe(a model.Answer) error {
	if err := r.log.Add(a); err != nil {
		return err
	}
	return r.inner.Observe(a)
}

func (r *randomWithDOCSTI) Finalize() ([]int, error) {
	init := make(map[string]model.QualityVector, len(r.stats))
	for w, st := range r.stats {
		init[w] = st.Q
	}
	res, err := truth.Infer(r.tasks, r.log, r.m, truth.Options{InitQuality: init})
	if err != nil {
		return nil, err
	}
	return res.Truth, nil
}

// AblationStudy runs the five variants over the given datasets and reports
// end-to-end accuracy under the Figure 8 protocol.
func AblationStudy(seed uint64, quick bool) (*Table, error) {
	t := &Table{
		Title:  "Ablation: contribution of each DOCS design choice (end-to-end accuracy)",
		Header: []string{"Dataset", "DOCS", "-golden", "-benefit", "-domains", "-assignment"},
		Notes: []string{
			"-golden: no golden profiling; -benefit: domain match only (D-Max);",
			"-domains: scalar worker model (QASCA); -assignment: random assignment + DOCS TI",
		},
	}
	names := quickNames(quick)
	for _, name := range names {
		p, err := Prepare(name, Options{Seed: seed, SkipCollect: true})
		if err != nil {
			return nil, err
		}
		tasks := p.Main
		if quick && len(tasks) > 120 {
			tasks = tasks[:120]
		}
		total := 7 * len(tasks)

		variants := []ablationVariant{
			{"DOCS", func(p *Prepared) baselines.Assigner {
				return NewDOCSAssigner(p.M, p.InitStats)
			}},
			{"-golden", func(p *Prepared) baselines.Assigner {
				return NewDOCSAssigner(p.M, nil)
			}},
			{"-benefit", func(p *Prepared) baselines.Assigner {
				return baselines.NewDMaxAssigner(p.M, p.InitStats)
			}},
			{"-domains", func(p *Prepared) baselines.Assigner {
				return baselines.NewQASCAAssigner(ScalarInit(p.InitQuality))
			}},
			{"-assignment", func(p *Prepared) baselines.Assigner {
				return &randomWithDOCSTI{
					inner: baselines.NewRandomAssigner(seed),
					m:     p.M,
					stats: p.InitStats,
				}
			}},
		}
		row := []string{name}
		for _, v := range variants {
			res, err := RunCampaign(v.mk(p), tasks, p.Pop, total, 3, 10, seed)
			if err != nil {
				return nil, err
			}
			row = append(row, pct(res.Accuracy))
		}
		t.AddRow(row...)
	}
	return t, nil
}
