package experiment

import (
	"fmt"
	"time"

	"docs/internal/baselines"
	"docs/internal/dve"
	"docs/internal/kb"
	"docs/internal/mathx"
	"docs/internal/model"
)

// enumCostLimit bounds the estimated enumeration work (linkings × entities
// × domains) beyond which the experiment reports an estimate instead of
// running — the analogue of the paper's ">1 day" cells.
const enumCostLimit = 5e8

// PadCandidates extends each entity's candidate list to exactly c
// candidates by appending random KB concepts with a small probability mass
// (ε of the total, shared evenly), mirroring Wikifier's fixed top-20 output
// in which the tail candidates are near-noise. Padding is what makes the
// top-c sweep of Table 3 meaningful: the alias table alone yields only 1–3
// real candidates per mention.
func PadCandidates(entities []dve.Entity, c, m int, r *mathx.Rand) []dve.Entity {
	const eps = 0.05
	k := kb.MustDefault()
	ids := allConceptIndicators(k, m)
	out := make([]dve.Entity, len(entities))
	for i, e := range entities {
		pe := dve.Entity{Probs: mathx.Clone(e.Probs), H: append([][]float64(nil), e.H...)}
		if len(pe.Probs) < c {
			need := c - len(pe.Probs)
			for j := range pe.Probs {
				pe.Probs[j] *= 1 - eps
			}
			for j := 0; j < need; j++ {
				pe.Probs = append(pe.Probs, eps/float64(need))
				pe.H = append(pe.H, ids[r.Intn(len(ids))])
			}
		} else if len(pe.Probs) > c {
			pe = dve.TruncateTopC([]dve.Entity{pe}, c)[0]
		}
		out[i] = pe
	}
	return out
}

var conceptIndicatorCache [][]float64

func allConceptIndicators(k *kb.KB, m int) [][]float64 {
	if conceptIndicatorCache != nil {
		return conceptIndicatorCache
	}
	// A small representative pool of indicator vectors drawn from the
	// catalogue via the category tables (stable across runs).
	var out [][]float64
	for _, cat := range []string{kb.CatNBAPlayer, kb.CatFood, kb.CatCar, kb.CatCountry, kb.CatMountain, kb.CatFilm, kb.CatPolitician, kb.CatCompany} {
		for _, name := range kb.CategoryMembers(cat) {
			for _, c := range k.Candidates(name) {
				out = append(out, c.Indicator(m))
			}
		}
	}
	conceptIndicatorCache = out
	return out
}

// Table3DVE reproduces Table 3: per-dataset total DVE time for Algorithm 1
// vs Enumeration at top-c ∈ {20, 10, 3}. Rows whose estimated enumeration
// cost exceeds the limit print an estimate, mirroring the paper's ">1 day".
// A synthetic row with 8 entities per task shows the exponential blow-up
// directly. quick reduces the task counts for use under `go test`.
func Table3DVE(seed uint64, quick bool) (*Table, error) {
	t := &Table{
		Title:  "Table 3: The Efficiency of Different Heuristics on DVE",
		Header: []string{"Dataset", "c", "Alg. 1", "Enumeration", "speedup"},
		Notes: []string{
			"entity candidate lists padded to top-c with noise concepts (Wikifier returns a fixed top-20)",
			"enumeration entries marked 'est.' were not run; cost = c^|Et|·|Et|·m operations",
		},
	}
	r := mathx.NewRand(seed ^ 0x7ab1e3)
	m := kb.MustDefault().Domains().Size()
	limit := 0
	if quick {
		limit = 40
	}
	for _, name := range []string{"Item", "4D", "QA", "SFV"} {
		p, err := Prepare(name, Options{Seed: seed, SkipCollect: true, GoldenCount: -1})
		if err != nil {
			return nil, err
		}
		ents := p.Entities
		if limit > 0 && len(ents) > limit {
			ents = ents[:limit]
		}
		for _, c := range []int{20, 10, 3} {
			padded := make([][]dve.Entity, len(ents))
			for i, e := range ents {
				padded[i] = PadCandidates(e, c, m, r)
			}
			algTime := timeIt(func() {
				for _, e := range padded {
					dve.Compute(e, m)
				}
			})
			cell, enumDur, ran := timeEnum(padded, m)
			t.AddRow(name, fmt.Sprintf("%d", c), algTime.String(), cell, speedupCell(algTime, enumDur, ran))
		}
	}
	// Synthetic many-entity row: the regime where enumeration explodes.
	synth := syntheticEntities(r, 30, 8, 20, m)
	algTime := timeIt(func() {
		for _, e := range synth {
			dve.Compute(e, m)
		}
	})
	cell, enumDur, ran := timeEnum(synth, m)
	t.AddRow("synthetic |Et|=8", "20", algTime.String(), cell, speedupCell(algTime, enumDur, ran))
	return t, nil
}

func timeIt(fn func()) time.Duration {
	//docs:allow clock experiment wall-clock measurement; timings are report output, not state
	start := time.Now()
	fn()
	//docs:allow clock experiment wall-clock measurement; timings are report output, not state
	return time.Since(start)
}

// timeEnum runs enumeration if its estimated cost is tolerable; ran
// reports whether it actually executed (cell holds an estimate otherwise).
func timeEnum(tasks [][]dve.Entity, m int) (cell string, d time.Duration, ran bool) {
	var cost float64
	for _, ents := range tasks {
		linkings := 1.0
		for _, e := range ents {
			linkings *= float64(len(e.Probs))
		}
		cost += linkings * float64(len(ents)) * float64(m)
	}
	if cost > enumCostLimit {
		return fmt.Sprintf("est. %s", humanOps(cost)), 0, false
	}
	d = timeIt(func() {
		for _, e := range tasks {
			dve.ComputeEnum(e, m)
		}
	})
	return d.String(), d, true
}

func speedupCell(alg, enum time.Duration, ran bool) string {
	if !ran {
		return ">>1000x"
	}
	if alg <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.1fx", float64(enum)/float64(alg))
}

func humanOps(x float64) string {
	switch {
	case x >= 1e12:
		return fmt.Sprintf("%.1fT ops", x/1e12)
	case x >= 1e9:
		return fmt.Sprintf("%.1fG ops", x/1e9)
	default:
		return fmt.Sprintf("%.1fM ops", x/1e6)
	}
}

func syntheticEntities(r *mathx.Rand, nTasks, nEnt, c, m int) [][]dve.Entity {
	out := make([][]dve.Entity, nTasks)
	for i := range out {
		ents := make([]dve.Entity, nEnt)
		for j := range ents {
			e := dve.Entity{Probs: r.Dirichlet(c, 1), H: make([][]float64, c)}
			for l := range e.H {
				h := make([]float64, m)
				for k := 0; k < m; k++ {
					if r.Float64() < 0.1 {
						h[k] = 1
					}
				}
				e.H[l] = h
			}
			ents[j] = e
		}
		out[i] = ents
	}
	return out
}

// Fig3DomainDetection reproduces Figure 3: per-domain and overall domain
// detection accuracy of IC (LDA), FC (TwitterLDA) and DOCS on the four
// datasets. The latent models get m' = m” = 4 topics and the manual
// latent→domain mapping, exactly as the paper favours them.
func Fig3DomainDetection(seed uint64, quick bool) (*Table, error) {
	t := &Table{
		Title:  "Figure 3: Domain Detection Accuracy (per domain and overall)",
		Header: []string{"Dataset", "Domain", "IC(LDA)", "FC(TwitterLDA)", "DOCS"},
	}
	ldaIters := 300
	if quick {
		ldaIters = 80
	}
	type overall struct{ ic, fc, docs float64 }
	overalls := map[string]overall{}
	for _, name := range []string{"Item", "4D", "QA", "SFV"} {
		p, err := Prepare(name, Options{Seed: seed, SkipCollect: true, GoldenCount: -1})
		if err != nil {
			return nil, err
		}
		ds := p.Dataset

		// IC: LDA topic vectors, hard argmax topic, majority mapping.
		ic := &baselines.IC{Topics: ds.NumDomains(), LDAIters: ldaIters, Seed: seed}
		theta := ic.TaskDomains(ds.Tasks)
		icLatent := make([]int, len(ds.Tasks))
		for i := range theta {
			icLatent[i] = mathx.ArgMax(theta[i])
		}
		icDetected := MapLatentToEval(ds, icLatent, ds.NumDomains())

		// FC: TwitterLDA hard topics, majority mapping.
		fc := &baselines.FC{Topics: ds.NumDomains(), LDAIters: ldaIters, Seed: seed}
		fcDetected := MapLatentToEval(ds, fc.TaskTopics(ds.Tasks), ds.NumDomains())

		// DOCS: DVE top domain.
		docsDetected := make([]int, len(ds.Tasks))
		for i, tk := range ds.Tasks {
			docsDetected[i] = model.DomainVector(tk.Domain).Top()
		}

		icAll, icPer := EvalDomainAccuracy(ds, icDetected)
		fcAll, fcPer := EvalDomainAccuracy(ds, fcDetected)
		docsAll, docsPer := EvalDomainAccuracy(ds, docsDetected)
		for d, dom := range ds.EvalDomains {
			t.AddRow(name, dom, pct(icPer[d]), pct(fcPer[d]), pct(docsPer[d]))
		}
		overalls[name] = overall{icAll, fcAll, docsAll}
	}
	for _, name := range []string{"Item", "4D", "QA", "SFV"} {
		o := overalls[name]
		t.AddRow(name, "OVERALL", pct(o.ic), pct(o.fc), pct(o.docs))
	}
	return t, nil
}
