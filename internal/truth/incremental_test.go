package truth

import (
	"math"
	"testing"

	"docs/internal/mathx"
	"docs/internal/model"
)

func TestIncrementalSingleTaskMatchesBatchStep1(t *testing.T) {
	// With fixed worker qualities (huge weights pin them), the incremental
	// engine's s after three answers must equal one batch Step-1 pass with
	// the same qualities — the likelihood factorization is identical.
	inc := NewIncremental(3)
	task := paperTask()
	if err := inc.AddTask(task); err != nil {
		t.Fatal(err)
	}
	for w, q := range paperQualities() {
		st := &Stats{Q: q, U: []float64{1e9, 1e9, 1e9}}
		if err := inc.SetWorker(w, st); err != nil {
			t.Fatal(err)
		}
	}
	for _, a := range []model.Answer{
		{Worker: "w1", Task: 1, Choice: 0},
		{Worker: "w2", Task: 1, Choice: 1},
		{Worker: "w3", Task: 1, Choice: 1},
	} {
		if err := inc.Submit(a); err != nil {
			t.Fatal(err)
		}
	}
	s := inc.S(1)
	if math.Abs(s[0]-0.79) > 0.005 || math.Abs(s[1]-0.21) > 0.005 {
		t.Errorf("incremental s = [%.4f %.4f], want ≈[0.79 0.21]", s[0], s[1])
	}
	if inc.Truth(1) != 0 {
		t.Errorf("incremental truth = %d, want 0", inc.Truth(1))
	}
	M := inc.M(1)
	if math.Abs(M[1][0]-0.93) > 0.005 {
		t.Errorf("M[sports][yes] = %.4f, want ≈0.93", M[1][0])
	}
}

func TestIncrementalErrors(t *testing.T) {
	inc := NewIncremental(2)
	noDomain := &model.Task{ID: 1, Choices: []string{"a", "b"}, Truth: model.NoTruth, TrueDomain: model.NoTruth}
	if err := inc.AddTask(noDomain); err == nil {
		t.Error("task without domain accepted")
	}
	task := &model.Task{ID: 1, Choices: []string{"a", "b"}, Domain: model.DomainVector{1, 0}, Truth: model.NoTruth, TrueDomain: model.NoTruth}
	if err := inc.AddTask(task); err != nil {
		t.Fatal(err)
	}
	if err := inc.AddTask(task); err == nil {
		t.Error("duplicate task accepted")
	}
	if err := inc.Submit(model.Answer{Worker: "w", Task: 9, Choice: 0}); err == nil {
		t.Error("answer for unknown task accepted")
	}
	if err := inc.Submit(model.Answer{Worker: "w", Task: 1, Choice: 5}); err == nil {
		t.Error("out-of-range choice accepted")
	}
	if err := inc.Submit(model.Answer{Worker: "w", Task: 1, Choice: 0}); err != nil {
		t.Fatal(err)
	}
	if err := inc.Submit(model.Answer{Worker: "w", Task: 1, Choice: 1}); err == nil {
		t.Error("duplicate answer accepted")
	}
	badStats := &Stats{Q: model.QualityVector{0.5}, U: []float64{1}}
	if err := inc.SetWorker("x", badStats); err == nil {
		t.Error("wrong-size stats accepted")
	}
}

func TestIncrementalWorkerQualityMoves(t *testing.T) {
	// A worker agreeing with a confident truth should gain quality; one
	// disagreeing should lose it.
	inc := NewIncremental(1)
	task := &model.Task{ID: 1, Choices: []string{"a", "b"}, Domain: model.DomainVector{1}, Truth: model.NoTruth, TrueDomain: model.NoTruth}
	if err := inc.AddTask(task); err != nil {
		t.Fatal(err)
	}
	// Three agreeing workers build confidence in choice 0.
	for _, w := range []string{"w1", "w2", "w3"} {
		if err := inc.Submit(model.Answer{Worker: w, Task: 1, Choice: 0}); err != nil {
			t.Fatal(err)
		}
	}
	s := inc.S(1)
	if s[0] <= 0.9 {
		t.Fatalf("after 3 agreements s = %v, want confident", s)
	}
	before := inc.Worker("w1").Q[0]
	// A dissenting fourth worker should start below the agreeing ones.
	if err := inc.Submit(model.Answer{Worker: "w4", Task: 1, Choice: 1}); err != nil {
		t.Fatal(err)
	}
	if q4 := inc.Worker("w4").Q[0]; q4 >= before {
		t.Errorf("dissenter quality %g >= agreeing worker %g", q4, before)
	}
}

func TestIncrementalStep2bAdjustsPriorWorkers(t *testing.T) {
	inc := NewIncremental(1)
	task := &model.Task{ID: 1, Choices: []string{"a", "b"}, Domain: model.DomainVector{1}, Truth: model.NoTruth, TrueDomain: model.NoTruth}
	if err := inc.AddTask(task); err != nil {
		t.Fatal(err)
	}
	if err := inc.Submit(model.Answer{Worker: "w1", Task: 1, Choice: 0}); err != nil {
		t.Fatal(err)
	}
	q1AfterOwn := inc.Worker("w1").Q[0]
	// w2 contradicts; the truth shifts toward ambiguity and w1's quality is
	// corrected downward by Step 2b.
	if err := inc.Submit(model.Answer{Worker: "w2", Task: 1, Choice: 1}); err != nil {
		t.Fatal(err)
	}
	q1AfterOther := inc.Worker("w1").Q[0]
	if q1AfterOther >= q1AfterOwn {
		t.Errorf("w1 quality did not decrease after contradiction: %g -> %g", q1AfterOwn, q1AfterOther)
	}
}

func TestIncrementalSIsAlwaysDistribution(t *testing.T) {
	r := mathx.NewRand(77)
	inc := NewIncremental(3)
	for i := 0; i < 20; i++ {
		dom := model.DomainVector(r.Dirichlet(3, 1))
		task := &model.Task{ID: i, Choices: []string{"a", "b", "c"}, Domain: dom, Truth: model.NoTruth, TrueDomain: model.NoTruth}
		if err := inc.AddTask(task); err != nil {
			t.Fatal(err)
		}
	}
	workers := []string{"a", "b", "c", "d", "e", "f"}
	for i := 0; i < 20; i++ {
		for _, w := range workers {
			if r.Float64() < 0.6 {
				if err := inc.Submit(model.Answer{Worker: w, Task: i, Choice: r.Intn(3)}); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := mathx.CheckDistribution(inc.S(i), 1e-9); err != nil {
			t.Fatalf("task %d: %v", i, err)
		}
	}
	for _, w := range workers {
		st := inc.Worker(w)
		if st == nil {
			continue
		}
		if err := st.Validate(3); err != nil {
			t.Errorf("worker %s stats invalid: %v", w, err)
		}
	}
}

func TestIncrementalReseedFromBatch(t *testing.T) {
	tasks, as, _ := synthetic(t, 40, 8, 5, 53)
	res, err := Infer(tasks, as, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	inc := NewIncremental(2)
	for _, tk := range tasks {
		if err := inc.AddTask(tk); err != nil {
			t.Fatal(err)
		}
	}
	inc.Reseed(tasks, res, as)
	for i, tk := range tasks {
		s := inc.S(tk.ID)
		if mathx.L1Distance(s, res.S[i]) > 1e-9 {
			t.Fatalf("task %d: reseeded s %v != batch %v", tk.ID, s, res.S[i])
		}
		if inc.Answers(tk.ID) != len(as.ForTask(tk.ID)) {
			t.Fatalf("task %d: answer count not reseeded", tk.ID)
		}
	}
	// After reseeding, further submissions still work and keep s valid.
	if err := inc.Submit(model.Answer{Worker: "fresh", Task: tasks[0].ID, Choice: 0}); err != nil {
		t.Fatal(err)
	}
	if err := mathx.CheckDistribution(inc.S(tasks[0].ID), 1e-9); err != nil {
		t.Fatal(err)
	}
}

func TestIncrementalUnknownAccessors(t *testing.T) {
	inc := NewIncremental(2)
	if inc.S(5) != nil || inc.M(5) != nil {
		t.Error("unknown task returned state")
	}
	if inc.Truth(5) != model.NoTruth {
		t.Error("unknown task returned truth")
	}
	if inc.Answers(5) != 0 {
		t.Error("unknown task returned answers")
	}
	if inc.Worker("nobody") != nil {
		t.Error("unknown worker returned stats")
	}
}
