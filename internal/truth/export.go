package truth

import (
	"fmt"
	"sort"

	"docs/internal/mathx"
	"docs/internal/model"
)

// TaskState is one task's complete recoverable inference state, exported
// for state snapshots: the raw (rescaled) truth-matrix numerators M̂ the
// incremental updates multiply into and the probabilistic truth s. The
// normalized M and the argmax truth are derived and are not exported; the
// task's accepted answers are restored from the orchestrator's
// chronological answer log, of which they are exactly the per-task
// subsequence.
type TaskState struct {
	ID   int
	MHat [][]float64
	S    []float64
}

// ExportTasks returns every registered task's internal inference state,
// sorted by task ID. All slices are private copies. The export is a
// consistent cut only on a quiescent engine — the serving core calls it on
// its serial shadow replica, which nothing mutates concurrently.
func (inc *Incremental) ExportTasks() []TaskState {
	inc.mu.RLock()
	ids := make([]int, 0, len(inc.tasks))
	for id := range inc.tasks {
		ids = append(ids, id)
	}
	inc.mu.RUnlock()
	sort.Ints(ids)
	out := make([]TaskState, 0, len(ids))
	for _, id := range ids {
		it := inc.lookup(id)
		if it == nil {
			continue
		}
		it.mu.Lock()
		ts := TaskState{ID: id, MHat: make([][]float64, len(it.mhat)), S: mathx.Clone(it.s)}
		for k, row := range it.mhat {
			ts.MHat[k] = mathx.Clone(row)
		}
		it.mu.Unlock()
		out = append(out, ts)
	}
	return out
}

// RestoreTask overwrites a registered task's internal inference state with
// an exported one — raw numerators, probabilistic truth, and the task's
// accepted answers in chronological order — and republishes the task's
// immutable view. The dimensions must match the registered task exactly;
// answer validity (choice range, known workers) is the caller's to check
// before mutating anything.
func (inc *Incremental) RestoreTask(ts TaskState, answers []model.Answer) error {
	it := inc.lookup(ts.ID)
	if it == nil {
		return fmt.Errorf("truth: restore of unknown task %d", ts.ID)
	}
	ell := it.task.NumChoices()
	if len(ts.MHat) != inc.m {
		return fmt.Errorf("truth: task %d restore has %d domain rows, want %d", ts.ID, len(ts.MHat), inc.m)
	}
	for k, row := range ts.MHat {
		if len(row) != ell {
			return fmt.Errorf("truth: task %d restore row %d has %d choices, want %d", ts.ID, k, len(row), ell)
		}
	}
	if len(ts.S) != ell {
		return fmt.Errorf("truth: task %d restore s has %d choices, want %d", ts.ID, len(ts.S), ell)
	}
	it.mu.Lock()
	for k := range it.mhat {
		copy(it.mhat[k], ts.MHat[k])
	}
	it.s = mathx.Clone(ts.S)
	it.answers = append(it.answers[:0], answers...)
	it.publishView(inc.epoch.Add(1))
	it.mu.Unlock()
	return nil
}
