package truth

import (
	"docs/internal/model"
)

// EstimateFromGolden initializes a worker's per-domain quality from answers
// to golden tasks (tasks with known ground truth, Section 5.2). For domain
// k, the estimate is the domain-weighted fraction of correct answers,
// q_k = Σ r_k·1{correct} / Σ r_k, lightly smoothed toward the default prior
// so a single golden task cannot pin the quality to exactly 0 or 1. The
// returned Stats carry the golden weights so later sessions merge correctly
// under Theorem 1.
func EstimateFromGolden(golden []*model.Task, answers []model.Answer, m int) *Stats {
	// pseudoWeight is the strength of the smoothing prior per domain. It
	// matters most when a domain has a single golden task: an unsmoothed
	// wrong answer would estimate q = 0, and any q < 1/ℓ makes inference
	// treat the worker's votes as anti-evidence — far too strong a
	// conclusion from one sample. With weight 1 a lone wrong answer lands
	// at (0 + 0.7)/2 = 0.35 and a lone right one at 0.85.
	const pseudoWeight = 1.0

	byID := make(map[int]*model.Task, len(golden))
	for _, t := range golden {
		byID[t.ID] = t
	}
	st := &Stats{Q: make(model.QualityVector, m), U: make([]float64, m)}
	num := make([]float64, m)
	for _, a := range answers {
		t, ok := byID[a.Task]
		if !ok || t.Truth == model.NoTruth || t.Domain == nil {
			continue
		}
		correct := 0.0
		if a.Choice == t.Truth {
			correct = 1.0
		}
		for k := 0; k < m; k++ {
			num[k] += t.Domain[k] * correct
			st.U[k] += t.Domain[k]
		}
	}
	for k := 0; k < m; k++ {
		st.Q[k] = (num[k] + pseudoWeight*DefaultQuality) / (st.U[k] + pseudoWeight)
	}
	return st
}

// InitQualityFromGolden builds the Options.InitQuality map for a set of
// workers given their golden-task answers.
func InitQualityFromGolden(golden []*model.Task, byWorker map[string][]model.Answer, m int) map[string]model.QualityVector {
	out := make(map[string]model.QualityVector, len(byWorker))
	for w, as := range byWorker {
		out[w] = EstimateFromGolden(golden, as, m).Q
	}
	return out
}
