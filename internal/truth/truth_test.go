package truth

import (
	"math"
	"testing"

	"docs/internal/mathx"
	"docs/internal/model"
)

// paperTask builds task t1 of the paper's running example: domain vector
// [0, 0.78, 0.22] over D = {politics, sports, films}, two choices.
func paperTask() *model.Task {
	return &model.Task{
		ID:         1,
		Text:       "Does Michael Jordan win more NBA championships than Kobe Bryant?",
		Choices:    []string{"yes", "no"},
		Domain:     model.DomainVector{0, 0.78, 0.22},
		Truth:      model.NoTruth,
		TrueDomain: model.NoTruth,
	}
}

// paperQualities is Table 1's worker quality vectors.
func paperQualities() map[string]model.QualityVector {
	return map[string]model.QualityVector{
		"w1": {0.3, 0.9, 0.6},
		"w2": {0.9, 0.6, 0.3},
		"w3": {0.6, 0.3, 0.9},
	}
}

// paperAnswers is Table 1's answers: w1 says yes, w2 and w3 say no.
func paperAnswers(t *testing.T) *model.AnswerSet {
	t.Helper()
	as := model.NewAnswerSet()
	for _, a := range []model.Answer{
		{Worker: "w1", Task: 1, Choice: 0},
		{Worker: "w2", Task: 1, Choice: 1},
		{Worker: "w3", Task: 1, Choice: 1},
	} {
		if err := as.Add(a); err != nil {
			t.Fatal(err)
		}
	}
	return as
}

// TestStep1WorkedExample reproduces Section 4.1's Step-1 numbers:
// M^(1)_{1,•} = [0.03, 0.97], M^(1)_{2,•} = [0.93, 0.07],
// M^(1)_{3,•} = [0.28, 0.72], and s_1 = [0.79, 0.21].
func TestStep1WorkedExample(t *testing.T) {
	tasks := []*model.Task{paperTask()}
	res, err := Infer(tasks, paperAnswers(t), 3, Options{
		MaxIter:     1,
		Epsilon:     -1,
		InitQuality: paperQualities(),
	})
	if err != nil {
		t.Fatal(err)
	}
	M := res.M[0]
	wantM := [][]float64{{0.03, 0.97}, {0.93, 0.07}, {0.28, 0.72}}
	for k := range wantM {
		for j := range wantM[k] {
			if math.Abs(M[k][j]-wantM[k][j]) > 0.005 {
				t.Errorf("M[%d][%d] = %.4f, want ≈%.2f", k, j, M[k][j], wantM[k][j])
			}
		}
	}
	// Although two workers answered "no", the domain-aware truth leans "yes"
	// because w1 is the sports expert.
	s := res.S[0]
	if math.Abs(s[0]-0.79) > 0.005 || math.Abs(s[1]-0.21) > 0.005 {
		t.Errorf("s_1 = [%.4f, %.4f], want ≈[0.79, 0.21]", s[0], s[1])
	}
	if res.Truth[0] != 0 {
		t.Errorf("inferred truth = %d, want 0 (yes)", res.Truth[0])
	}
}

// TestStep2WorkedExample reproduces Section 4.1's Step-2 number: with
// s_{1,1}=0.95, s_{2,1}=0.3, r^{t1}_2=0.9, r^{t2}_2=0.05, the worker's
// quality for domain 2 is (0.9·0.95 + 0.05·0.3)/(0.9+0.05) ≈ 0.92.
func TestStep2WorkedExample(t *testing.T) {
	tasks := []*model.Task{
		{ID: 1, Choices: []string{"a", "b"}, Domain: model.DomainVector{0.1, 0.9}, Truth: model.NoTruth, TrueDomain: model.NoTruth},
		{ID: 2, Choices: []string{"a", "b"}, Domain: model.DomainVector{0.95, 0.05}, Truth: model.NoTruth, TrueDomain: model.NoTruth},
	}
	as := model.NewAnswerSet()
	if err := as.Add(model.Answer{Worker: "w1", Task: 1, Choice: 0}); err != nil {
		t.Fatal(err)
	}
	if err := as.Add(model.Answer{Worker: "w1", Task: 2, Choice: 0}); err != nil {
		t.Fatal(err)
	}
	res := &Result{S: [][]float64{{0.95, 0.05}, {0.3, 0.7}}}
	stats := SessionStats(tasks, as, res, 2)
	got := stats["w1"].Q[1]
	want := (0.9*0.95 + 0.05*0.3) / (0.9 + 0.05)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("q_2 = %.4f, want %.4f (≈0.92)", got, want)
	}
	if math.Abs(stats["w1"].U[1]-0.95) > 1e-9 {
		t.Errorf("u_2 = %g, want 0.95", stats["w1"].U[1])
	}
}

func TestInferValidation(t *testing.T) {
	noDomain := &model.Task{ID: 1, Choices: []string{"a", "b"}, Truth: model.NoTruth, TrueDomain: model.NoTruth}
	if _, err := Infer([]*model.Task{noDomain}, model.NewAnswerSet(), 3, Options{}); err == nil {
		t.Error("task without domain vector accepted")
	}

	tk := paperTask()
	dup := paperTask()
	if _, err := Infer([]*model.Task{tk, dup}, model.NewAnswerSet(), 3, Options{}); err == nil {
		t.Error("duplicate task IDs accepted")
	}

	as := model.NewAnswerSet()
	if err := as.Add(model.Answer{Worker: "w", Task: 99, Choice: 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := Infer([]*model.Task{tk}, as, 3, Options{}); err == nil {
		t.Error("answer for unknown task accepted")
	}

	as2 := model.NewAnswerSet()
	if err := as2.Add(model.Answer{Worker: "w", Task: 1, Choice: 7}); err != nil {
		t.Fatal(err)
	}
	if _, err := Infer([]*model.Task{tk}, as2, 3, Options{}); err == nil {
		t.Error("out-of-range choice accepted")
	}
}

func TestInferNoAnswersGivesUniform(t *testing.T) {
	tasks := []*model.Task{paperTask()}
	res, err := Infer(tasks, model.NewAnswerSet(), 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.S[0][0]-0.5) > 1e-9 {
		t.Errorf("unanswered task s = %v, want uniform", res.S[0])
	}
}

// synthetic builds a campaign where workers have strong domain structure:
// half the workers are experts on domain 0 and weak on domain 1, half the
// reverse; tasks are pure domain-0 or domain-1.
func synthetic(t *testing.T, nTasks, nWorkers, perTask int, seed uint64) ([]*model.Task, *model.AnswerSet, map[string]model.QualityVector) {
	t.Helper()
	r := mathx.NewRand(seed)
	const m = 2
	tasks := make([]*model.Task, nTasks)
	for i := range tasks {
		dom := model.DomainVector{1, 0}
		td := 0
		if i%2 == 1 {
			dom = model.DomainVector{0, 1}
			td = 1
		}
		tasks[i] = &model.Task{
			ID: i, Choices: []string{"a", "b"},
			Domain: dom, Truth: r.Intn(2), TrueDomain: td,
		}
	}
	trueQ := make(map[string]model.QualityVector, nWorkers)
	workers := make([]string, nWorkers)
	for w := 0; w < nWorkers; w++ {
		name := "worker" + string(rune('A'+w%26)) + string(rune('0'+w/26))
		workers[w] = name
		if w%2 == 0 {
			trueQ[name] = model.QualityVector{0.95, 0.55}
		} else {
			trueQ[name] = model.QualityVector{0.55, 0.95}
		}
	}
	as := model.NewAnswerSet()
	for _, tk := range tasks {
		perm := r.Perm(nWorkers)
		for _, wi := range perm[:perTask] {
			name := workers[wi]
			q := trueQ[name].Expected(tk.Domain)
			choice := tk.Truth
			if r.Float64() >= q {
				choice = 1 - tk.Truth
			}
			if err := as.Add(model.Answer{Worker: name, Task: tk.ID, Choice: choice}); err != nil {
				t.Fatal(err)
			}
		}
	}
	return tasks, as, trueQ
}

func majorityVote(tasks []*model.Task, as *model.AnswerSet) []int {
	out := make([]int, len(tasks))
	for i, tk := range tasks {
		counts := make([]float64, tk.NumChoices())
		for _, a := range as.ForTask(tk.ID) {
			counts[a.Choice]++
		}
		out[i] = mathx.ArgMax(counts)
	}
	return out
}

// TestInferBeatsMajorityVote: with domain-structured workers, domain-aware
// TI must dominate majority voting — the paper's Figure 5 headline.
func TestInferBeatsMajorityVote(t *testing.T) {
	tasks, as, _ := synthetic(t, 200, 20, 5, 11)
	res, err := Infer(tasks, as, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	accTI, _ := Accuracy(tasks, res.Truth)
	accMV, _ := Accuracy(tasks, majorityVote(tasks, as))
	if accTI < accMV {
		t.Errorf("TI accuracy %.3f < MV accuracy %.3f", accTI, accMV)
	}
	if accTI < 0.85 {
		t.Errorf("TI accuracy %.3f unexpectedly low", accTI)
	}
}

// TestInferRecoversWorkerQuality: estimated qualities should approach the
// generating qualities (Figure 6(b)'s calibration property).
func TestInferRecoversWorkerQuality(t *testing.T) {
	tasks, as, trueQ := synthetic(t, 400, 10, 6, 13)
	res, err := Infer(tasks, as, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var dev float64
	var cnt int
	for w, tq := range trueQ {
		eq, ok := res.Quality[w]
		if !ok {
			continue
		}
		for k := range tq {
			dev += math.Abs(tq[k] - eq[k])
			cnt++
		}
	}
	if avg := dev / float64(cnt); avg > 0.12 {
		t.Errorf("average quality deviation %.3f, want <= 0.12", avg)
	}
}

// TestInferConvergence: Δ must be non-increasing in trend and fall below a
// small threshold within 20 iterations (Figure 4(a)).
func TestInferConvergence(t *testing.T) {
	tasks, as, _ := synthetic(t, 150, 12, 5, 29)
	res, err := Infer(tasks, as, 2, Options{MaxIter: 30, Epsilon: -1, RecordDeltas: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Deltas) != 30 {
		t.Fatalf("recorded %d deltas, want 30", len(res.Deltas))
	}
	if res.Deltas[19] > 0.01 {
		t.Errorf("Δ after 20 iterations = %g, want < 0.01", res.Deltas[19])
	}
	if res.Deltas[0] < res.Deltas[29] {
		t.Errorf("Δ grew: first %g, last %g", res.Deltas[0], res.Deltas[29])
	}
}

// TestInferEarlyStop: with a positive epsilon the solver stops before
// MaxIter on an easy instance.
func TestInferEarlyStop(t *testing.T) {
	tasks, as, _ := synthetic(t, 100, 8, 5, 31)
	res, err := Infer(tasks, as, 2, Options{MaxIter: 100, Epsilon: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations >= 100 {
		t.Errorf("no early stop: ran %d iterations", res.Iterations)
	}
}

// TestInferSIsDistribution: probabilistic truths are distributions and M
// rows are distributions.
func TestInferSIsDistribution(t *testing.T) {
	tasks, as, _ := synthetic(t, 60, 10, 4, 37)
	res, err := Infer(tasks, as, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range tasks {
		if err := mathx.CheckDistribution(res.S[i], 1e-9); err != nil {
			t.Fatalf("s[%d]: %v", i, err)
		}
		for k := range res.M[i] {
			if err := mathx.CheckDistribution(res.M[i][k], 1e-9); err != nil {
				t.Fatalf("M[%d][%d]: %v", i, k, err)
			}
		}
	}
}

// TestGoldenInitializationHelps: seeding worker qualities from golden tasks
// must not hurt accuracy relative to the flat default (Figure 4(b)).
func TestGoldenInitializationHelps(t *testing.T) {
	tasks, as, trueQ := synthetic(t, 200, 14, 3, 41)
	r := mathx.NewRand(5)

	// Build 12 golden tasks (6 per domain) and simulate each worker
	// answering all of them.
	golden := make([]*model.Task, 12)
	for g := range golden {
		dom := model.DomainVector{1, 0}
		if g%2 == 1 {
			dom = model.DomainVector{0, 1}
		}
		golden[g] = &model.Task{ID: 1000 + g, Choices: []string{"a", "b"}, Domain: dom, Truth: r.Intn(2), TrueDomain: model.NoTruth}
	}
	byWorker := make(map[string][]model.Answer)
	for w, q := range trueQ {
		for _, g := range golden {
			choice := g.Truth
			if r.Float64() >= q.Expected(g.Domain) {
				choice = 1 - g.Truth
			}
			byWorker[w] = append(byWorker[w], model.Answer{Worker: w, Task: g.ID, Choice: choice})
		}
	}
	init := InitQualityFromGolden(golden, byWorker, 2)

	resPlain, err := Infer(tasks, as, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	resGolden, err := Infer(tasks, as, 2, Options{InitQuality: init})
	if err != nil {
		t.Fatal(err)
	}
	accPlain, _ := Accuracy(tasks, resPlain.Truth)
	accGolden, _ := Accuracy(tasks, resGolden.Truth)
	if accGolden+0.02 < accPlain {
		t.Errorf("golden init hurt: %.3f vs %.3f", accGolden, accPlain)
	}
}

func TestAccuracySkipsUnknownTruth(t *testing.T) {
	tasks := []*model.Task{
		{ID: 0, Choices: []string{"a", "b"}, Truth: 1, TrueDomain: model.NoTruth},
		{ID: 1, Choices: []string{"a", "b"}, Truth: model.NoTruth, TrueDomain: model.NoTruth},
	}
	acc, n := Accuracy(tasks, []int{1, 0})
	if n != 1 || acc != 1 {
		t.Errorf("Accuracy = %g over %d, want 1 over 1", acc, n)
	}
	if acc, n := Accuracy(nil, nil); acc != 0 || n != 0 {
		t.Errorf("empty Accuracy = %g,%d", acc, n)
	}
}
