package truth

import (
	"math"
	"testing"

	"docs/internal/model"
)

func TestPinnedTaskKeepsOneHot(t *testing.T) {
	tasks := []*model.Task{
		{ID: 0, Choices: []string{"a", "b"}, Domain: model.DomainVector{1}, Truth: 1, TrueDomain: model.NoTruth},
		{ID: 1, Choices: []string{"a", "b"}, Domain: model.DomainVector{1}, Truth: model.NoTruth, TrueDomain: model.NoTruth},
	}
	as := model.NewAnswerSet()
	// Both workers answer the pinned task wrong and the free task with "a".
	for _, w := range []string{"w1", "w2"} {
		if err := as.Add(model.Answer{Worker: w, Task: 0, Choice: 0}); err != nil {
			t.Fatal(err)
		}
		if err := as.Add(model.Answer{Worker: w, Task: 1, Choice: 0}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := Infer(tasks, as, 1, Options{Pinned: map[int]int{0: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.S[0][1] != 1 || res.S[0][0] != 0 {
		t.Errorf("pinned s = %v, want one-hot on choice 1", res.S[0])
	}
	if res.Truth[0] != 1 {
		t.Errorf("pinned truth = %d, want 1", res.Truth[0])
	}
	// Both workers were wrong on the pinned task, so their quality must be
	// dragged well below the default.
	for _, w := range []string{"w1", "w2"} {
		if q := res.Quality[w][0]; q > 0.55 {
			t.Errorf("worker %s quality %.2f despite wrong pinned answer", w, q)
		}
	}
}

func TestPinnedValidation(t *testing.T) {
	tasks := []*model.Task{
		{ID: 0, Choices: []string{"a", "b"}, Domain: model.DomainVector{1}, Truth: model.NoTruth, TrueDomain: model.NoTruth},
	}
	if _, err := Infer(tasks, model.NewAnswerSet(), 1, Options{Pinned: map[int]int{9: 0}}); err == nil {
		t.Error("pinned unknown task accepted")
	}
	if _, err := Infer(tasks, model.NewAnswerSet(), 1, Options{Pinned: map[int]int{0: 5}}); err == nil {
		t.Error("pinned out-of-range truth accepted")
	}
}

// TestPinnedAnchorPreventsInversion reconstructs the label-flip failure:
// with an adversarially inverted initialisation and a realistically noisy
// crowd, unanchored EM converges to flipped truths, while pinning a
// handful of golden tasks recovers them. (With a perfectly unanimous crowd
// no finite anchor escapes the basin — a pinned fraction p yields the
// self-consistent flipped quality q = p — so the crowd here is ~80%
// accurate, like a real one.)
func TestPinnedAnchorPreventsInversion(t *testing.T) {
	const nTasks = 40
	tasks := make([]*model.Task, nTasks)
	for i := range tasks {
		tasks[i] = &model.Task{
			ID: i, Choices: []string{"a", "b"},
			Domain: model.DomainVector{1}, Truth: i % 2, TrueDomain: model.NoTruth,
		}
	}
	workers := []string{"w1", "w2", "w3", "w4", "w5"}
	as := model.NewAnswerSet()
	for ti, tk := range tasks {
		for wi, w := range workers {
			// ~80% accurate: worker wi errs on tasks where (ti+wi)%5 == 0.
			choice := tk.Truth
			if (ti+wi)%5 == 0 {
				choice = 1 - tk.Truth
			}
			if err := as.Add(model.Answer{Worker: w, Task: tk.ID, Choice: choice}); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Adversarial init: the system believes everyone is mostly a liar.
	badInit := make(map[string]model.QualityVector)
	for _, w := range workers {
		badInit[w] = model.QualityVector{0.15}
	}

	unanchored, err := Infer(tasks, as, 1, Options{InitQuality: badInit, MaxIter: 50})
	if err != nil {
		t.Fatal(err)
	}
	accU, _ := Accuracy(tasks, unanchored.Truth)
	if accU > 0.5 {
		t.Fatalf("expected the unanchored run to invert (got accuracy %.2f); the scenario no longer demonstrates the basin", accU)
	}

	pinned := map[int]int{}
	for i := 0; i < 8; i++ {
		pinned[i] = tasks[i].Truth
	}
	anchored, err := Infer(tasks, as, 1, Options{InitQuality: badInit, Pinned: pinned, MaxIter: 50})
	if err != nil {
		t.Fatal(err)
	}
	accA, _ := Accuracy(tasks, anchored.Truth)
	if accA < 0.9 {
		t.Errorf("anchored accuracy %.2f, want >= 0.9 (golden pins must pull EM out of the flipped basin)", accA)
	}
	// And the quality estimates must have recovered too.
	for _, w := range workers {
		if q := anchored.Quality[w][0]; math.Abs(q-0.8) > 0.1 {
			t.Errorf("worker %s anchored quality %.2f, want ≈0.8", w, q)
		}
	}
}

func TestPinnedTasksContributeToQuality(t *testing.T) {
	// A worker who only answered a pinned task still gets a quality
	// estimate from it (that is the anchoring mechanism).
	tasks := []*model.Task{
		{ID: 0, Choices: []string{"a", "b"}, Domain: model.DomainVector{1}, Truth: 0, TrueDomain: model.NoTruth},
	}
	as := model.NewAnswerSet()
	if err := as.Add(model.Answer{Worker: "right", Task: 0, Choice: 0}); err != nil {
		t.Fatal(err)
	}
	if err := as.Add(model.Answer{Worker: "wrong", Task: 0, Choice: 1}); err != nil {
		t.Fatal(err)
	}
	res, err := Infer(tasks, as, 1, Options{Pinned: map[int]int{0: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Quality["right"][0] <= res.Quality["wrong"][0] {
		t.Errorf("pinned evidence did not separate qualities: right %.2f, wrong %.2f",
			res.Quality["right"][0], res.Quality["wrong"][0])
	}
}
