package truth

import (
	"fmt"
	"math"

	"docs/internal/mathx"
	"docs/internal/model"
)

// Incremental is the online truth-inference engine of Section 4.2. Instead
// of re-running the full iterative algorithm on every submission, it stores
// per-task unnormalized truth numerators M̂^(i) and per-worker (q, u) stats,
// and updates only the parameters touched by each incoming answer:
//
//	Step 1: M̂^(i) gains the new answer's likelihood factor, M^(i) and s_i
//	        are recomputed for that task alone;
//	Step 2: the answering worker's quality absorbs the new evidence, and
//	        the qualities of workers who answered the task before are
//	        corrected for the shift from s̃_i to the new s_i.
//
// Each Submit costs O(m·ℓ + m·|V(i)|), matching the paper's bound. The
// trade-off, as the paper notes, is that incremental estimates can drift
// from the batch fixed point; DOCS therefore re-runs the iterative solver
// every z submissions (see the core orchestrator).
type Incremental struct {
	m       int
	tasks   map[int]*incTask
	workers map[string]*Stats
}

type incTask struct {
	task *model.Task
	// mhat[k][j] is the running numerator of Equation 3 for domain k and
	// choice j, rescaled per row to avoid underflow (only ratios matter).
	mhat    [][]float64
	s       []float64
	answers []model.Answer
}

// NewIncremental returns an empty incremental engine over m domains.
func NewIncremental(m int) *Incremental {
	return &Incremental{
		m:       m,
		tasks:   make(map[int]*incTask),
		workers: make(map[string]*Stats),
	}
}

// AddTask registers a task. The task must have a domain vector.
func (inc *Incremental) AddTask(t *model.Task) error {
	if t.Domain == nil {
		return fmt.Errorf("truth: incremental task %d has no domain vector", t.ID)
	}
	if err := t.Validate(inc.m); err != nil {
		return err
	}
	if _, dup := inc.tasks[t.ID]; dup {
		return fmt.Errorf("truth: incremental task %d already registered", t.ID)
	}
	ell := t.NumChoices()
	it := &incTask{task: t, mhat: make([][]float64, inc.m)}
	for k := range it.mhat {
		row := make([]float64, ell)
		for j := range row {
			row[j] = 1 // uniform prior numerator
		}
		it.mhat[k] = row
	}
	it.s = applyDomain(t.Domain, normalizeRows(it.mhat))
	inc.tasks[t.ID] = it
	return nil
}

// SetWorker installs stored statistics for a worker (e.g. loaded from the
// parameter store or derived from golden tasks). Unknown workers submitting
// answers are lazily created with NewStats defaults.
func (inc *Incremental) SetWorker(w string, st *Stats) error {
	if err := st.Validate(inc.m); err != nil {
		return fmt.Errorf("truth: worker %q: %w", w, err)
	}
	inc.workers[w] = st.Clone()
	return nil
}

// Worker returns the current statistics for a worker (nil if unseen).
func (inc *Incremental) Worker(w string) *Stats { return inc.workers[w] }

// ensureWorker returns the stats for w, creating defaults if needed.
func (inc *Incremental) ensureWorker(w string) *Stats {
	st, ok := inc.workers[w]
	if !ok {
		st = NewStats(inc.m)
		inc.workers[w] = st
	}
	return st
}

// Submit processes one answer through the two incremental steps.
func (inc *Incremental) Submit(a model.Answer) error {
	it, ok := inc.tasks[a.Task]
	if !ok {
		return fmt.Errorf("truth: answer for unknown task %d", a.Task)
	}
	ell := it.task.NumChoices()
	if a.Choice < 0 || a.Choice >= ell {
		return fmt.Errorf("truth: choice %d out of range for task %d (ℓ=%d)", a.Choice, a.Task, ell)
	}
	for _, prev := range it.answers {
		if prev.Worker == a.Worker {
			return fmt.Errorf("truth: worker %q already answered task %d", a.Worker, a.Task)
		}
	}
	st := inc.ensureWorker(a.Worker)
	r := it.task.Domain

	// Step 1: fold the answer's likelihood into M̂^(i), refresh M and s.
	sTilde := mathx.Clone(it.s)
	for k := 0; k < inc.m; k++ {
		qk := clampQ(st.Q[k])
		wrong := (1 - qk) / float64(ell-1)
		row := it.mhat[k]
		var max float64
		for j := range row {
			if j == a.Choice {
				row[j] *= qk
			} else {
				row[j] *= wrong
			}
			if row[j] > max {
				max = row[j]
			}
		}
		if max > 0 {
			for j := range row {
				row[j] /= max
			}
		}
	}
	it.s = applyDomain(r, normalizeRows(it.mhat))

	// Step 2a: the submitting worker absorbs the new evidence.
	for k := 0; k < inc.m; k++ {
		if rk := r[k]; rk > 0 {
			st.Q[k] = clamp01((st.Q[k]*st.U[k] + it.s[a.Choice]*rk) / (st.U[k] + rk))
			st.U[k] += rk
		}
	}

	// Step 2b: workers who answered this task before are corrected for the
	// truth shift s̃ → s on their own chosen option.
	for _, prev := range it.answers {
		ps := inc.workers[prev.Worker]
		for k := 0; k < inc.m; k++ {
			rk := r[k]
			if rk == 0 || ps.U[k] == 0 {
				continue
			}
			ps.Q[k] = clamp01((ps.Q[k]*ps.U[k] - sTilde[prev.Choice]*rk + it.s[prev.Choice]*rk) / ps.U[k])
		}
	}

	it.answers = append(it.answers, a)
	return nil
}

// S returns task id's current probabilistic truth (nil if unknown task).
func (inc *Incremental) S(id int) []float64 {
	it, ok := inc.tasks[id]
	if !ok {
		return nil
	}
	return mathx.Clone(it.s)
}

// M returns task id's current truth matrix M^(i) (row-normalized).
func (inc *Incremental) M(id int) [][]float64 {
	it, ok := inc.tasks[id]
	if !ok {
		return nil
	}
	return normalizeRows(it.mhat)
}

// Truth returns the current inferred truth for task id (-1 if unknown).
func (inc *Incremental) Truth(id int) int {
	it, ok := inc.tasks[id]
	if !ok {
		return model.NoTruth
	}
	return mathx.ArgMax(it.s)
}

// Answers returns the number of answers received for task id.
func (inc *Incremental) Answers(id int) int {
	it, ok := inc.tasks[id]
	if !ok {
		return 0
	}
	return len(it.answers)
}

// Reseed overwrites the engine's task states and worker qualities from a
// batch inference result; the core orchestrator calls this after the
// periodic full iterative run (every z submissions).
func (inc *Incremental) Reseed(tasks []*model.Task, res *Result, answers *model.AnswerSet) {
	pos := make(map[int]int, len(tasks))
	for idx, t := range tasks {
		pos[t.ID] = idx
	}
	for id, it := range inc.tasks {
		i, ok := pos[id]
		if !ok {
			continue
		}
		for k := range it.mhat {
			copy(it.mhat[k], res.M[i][k])
		}
		it.s = mathx.Clone(res.S[i])
		it.answers = append(it.answers[:0], answers.ForTask(id)...)
	}
	session := SessionStats(tasks, answers, res, inc.m)
	for w, st := range session {
		cur := inc.ensureWorker(w)
		for k := 0; k < inc.m; k++ {
			if st.U[k] > 0 {
				cur.Q[k] = st.Q[k]
				cur.U[k] = st.U[k]
			}
		}
	}
}

func normalizeRows(mhat [][]float64) [][]float64 {
	out := make([][]float64, len(mhat))
	for k, row := range mhat {
		out[k] = mathx.Normalize(mathx.Clone(row))
	}
	return out
}

func clamp01(x float64) float64 {
	if x < 0 || math.IsNaN(x) {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
