package truth

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"docs/internal/mathx"
	"docs/internal/model"
	"docs/internal/shard"
)

// workerShardCount shards the per-worker statistics so concurrent submits
// touching different workers do not contend on one lock.
const workerShardCount = shard.Count

// Incremental is the online truth-inference engine of Section 4.2. Instead
// of re-running the full iterative algorithm on every submission, it stores
// per-task unnormalized truth numerators M̂^(i) and per-worker (q, u) stats,
// and updates only the parameters touched by each incoming answer:
//
//	Step 1: M̂^(i) gains the new answer's likelihood factor, M^(i) and s_i
//	        are recomputed for that task alone;
//	Step 2: the answering worker's quality absorbs the new evidence, and
//	        the qualities of workers who answered the task before are
//	        corrected for the shift from s̃_i to the new s_i.
//
// Each Submit costs O(m·ℓ + m·|V(i)|), matching the paper's bound. The
// trade-off, as the paper notes, is that incremental estimates can drift
// from the batch fixed point; DOCS therefore re-runs the iterative solver
// every z submissions (see the core orchestrator).
//
// The engine is safe for concurrent use. Mutations take a per-task lock
// (serializing answers to the same task) plus sharded per-worker locks, so
// submits to different tasks proceed in parallel. Readers never touch live
// state: every mutation publishes an immutable TaskView via an atomic
// pointer, and View/S/M/Truth/Answers read the latest published snapshot
// without blocking writers. Under concurrency the incremental estimates can
// interleave differently than a serial replay — the same kind of drift the
// periodic batch rerun already corrects — but every published view is an
// internally consistent (task, M, s) snapshot.
type Incremental struct {
	m     int
	epoch atomic.Uint64 // bumped on every state mutation

	mu    sync.RWMutex // guards the tasks map itself (not per-task state)
	tasks map[int]*incTask

	workers [workerShardCount]workerShard
}

type workerShard struct {
	mu sync.Mutex
	m  map[string]*Stats
}

type incTask struct {
	mu   sync.Mutex
	task *model.Task
	// mhat[k][j] is the running numerator of Equation 3 for domain k and
	// choice j, rescaled per row to avoid underflow (only ratios matter).
	mhat    [][]float64
	s       []float64
	answers []model.Answer
	qbuf    []float64 // scratch copy of the submitting worker's quality

	view atomic.Pointer[TaskView]
}

// TaskView is an immutable snapshot of one task's inference state, published
// atomically after every mutation. All slices are private copies: readers
// (the OTA hot path, the HTTP result endpoints) may hold a view across
// concurrent submits but must not modify it.
type TaskView struct {
	// Task is the underlying task (immutable after publication).
	Task *model.Task
	// M is the row-normalized truth matrix M^(i) at snapshot time.
	M [][]float64
	// S is the probabilistic truth s_i at snapshot time.
	S []float64
	// Truth is argmax(S), model.NoTruth only for degenerate states.
	Truth int
	// NumAnswers is |V(i)| at snapshot time.
	NumAnswers int
	// Epoch is the engine-wide mutation counter when the view was taken;
	// later views of any task carry larger epochs.
	Epoch uint64
}

// NewIncremental returns an empty incremental engine over m domains.
func NewIncremental(m int) *Incremental {
	inc := &Incremental{m: m, tasks: make(map[int]*incTask)}
	for i := range inc.workers {
		inc.workers[i].m = make(map[string]*Stats)
	}
	return inc
}

func (inc *Incremental) shard(w string) *workerShard {
	return &inc.workers[shard.Index(w, workerShardCount)]
}

// withWorker runs f with the worker's live stats under the shard lock,
// creating default stats first if the worker is unseen.
func (inc *Incremental) withWorker(w string, f func(st *Stats)) {
	sh := inc.shard(w)
	sh.mu.Lock()
	st, ok := sh.m[w]
	if !ok {
		st = NewStats(inc.m)
		sh.m[w] = st
	}
	f(st)
	sh.mu.Unlock()
}

// AddTask registers a task. The task must have a domain vector.
func (inc *Incremental) AddTask(t *model.Task) error {
	if t.Domain == nil {
		return fmt.Errorf("truth: incremental task %d has no domain vector", t.ID)
	}
	if err := t.Validate(inc.m); err != nil {
		return err
	}
	ell := t.NumChoices()
	it := &incTask{task: t, mhat: make([][]float64, inc.m), qbuf: make([]float64, inc.m)}
	for k := range it.mhat {
		row := make([]float64, ell)
		for j := range row {
			row[j] = 1 // uniform prior numerator
		}
		it.mhat[k] = row
	}
	it.s = applyDomain(t.Domain, normalizeRows(it.mhat))
	// Publish the initial view before the task becomes visible in the map:
	// a Submit racing this AddTask can only find the task after the insert,
	// by which point the view exists and every later view carries a larger
	// epoch.
	it.publishView(inc.epoch.Add(1))

	inc.mu.Lock()
	if _, dup := inc.tasks[t.ID]; dup {
		inc.mu.Unlock()
		return fmt.Errorf("truth: incremental task %d already registered", t.ID)
	}
	inc.tasks[t.ID] = it
	inc.mu.Unlock()
	return nil
}

// publishView snapshots the task's current state into an immutable view.
// Callers hold it.mu (or have exclusive access, as in AddTask).
func (it *incTask) publishView(epoch uint64) {
	v := &TaskView{
		Task:       it.task,
		M:          normalizeRows(it.mhat),
		S:          mathx.Clone(it.s),
		Truth:      mathx.ArgMax(it.s),
		NumAnswers: len(it.answers),
		Epoch:      epoch,
	}
	it.view.Store(v)
}

func (inc *Incremental) lookup(id int) *incTask {
	inc.mu.RLock()
	it := inc.tasks[id]
	inc.mu.RUnlock()
	return it
}

// SetWorker installs stored statistics for a worker (e.g. loaded from the
// parameter store or derived from golden tasks). Unknown workers submitting
// answers are lazily created with NewStats defaults.
func (inc *Incremental) SetWorker(w string, st *Stats) error {
	if err := st.Validate(inc.m); err != nil {
		return fmt.Errorf("truth: worker %q: %w", w, err)
	}
	sh := inc.shard(w)
	sh.mu.Lock()
	sh.m[w] = st.Clone()
	sh.mu.Unlock()
	return nil
}

// Worker returns a copy of the current statistics for a worker (nil if
// unseen). The copy is private to the caller: live stats are only ever
// mutated under the engine's shard locks.
func (inc *Incremental) Worker(w string) *Stats {
	sh := inc.shard(w)
	sh.mu.Lock()
	st := sh.m[w]
	if st != nil {
		st = st.Clone()
	}
	sh.mu.Unlock()
	return st
}

// Workers returns the IDs of every worker the engine has statistics for,
// in sorted order. Used by state fingerprinting (recovery equivalence
// checks) and diagnostics; it takes each shard lock briefly, so it is safe
// but not free to call while serving.
func (inc *Incremental) Workers() []string {
	var ids []string
	for i := range inc.workers {
		sh := &inc.workers[i]
		sh.mu.Lock()
		for w := range sh.m {
			ids = append(ids, w)
		}
		sh.mu.Unlock()
	}
	sort.Strings(ids)
	return ids
}

// HasWorker reports whether the engine has statistics for the worker,
// without copying them.
func (inc *Incremental) HasWorker(w string) bool {
	sh := inc.shard(w)
	sh.mu.Lock()
	_, ok := sh.m[w]
	sh.mu.Unlock()
	return ok
}

// SeedWorker installs the statistics only if the worker is still unseen —
// the atomic set-if-absent the orchestrator needs when two of a worker's
// first answers race: the loser must not overwrite stats the winner's
// submit already updated. Reports whether the seed was installed.
func (inc *Incremental) SeedWorker(w string, st *Stats) (bool, error) {
	if err := st.Validate(inc.m); err != nil {
		return false, fmt.Errorf("truth: worker %q: %w", w, err)
	}
	sh := inc.shard(w)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.m[w]; ok {
		return false, nil
	}
	sh.m[w] = st.Clone()
	return true, nil
}

// Submit processes one answer through the two incremental steps. Concurrent
// submits to distinct tasks run in parallel; submits to the same task are
// serialized by the per-task lock.
func (inc *Incremental) Submit(a model.Answer) error {
	it := inc.lookup(a.Task)
	if it == nil {
		return fmt.Errorf("truth: answer for unknown task %d", a.Task)
	}
	ell := it.task.NumChoices()
	if a.Choice < 0 || a.Choice >= ell {
		return fmt.Errorf("truth: choice %d out of range for task %d (ℓ=%d)", a.Choice, a.Task, ell)
	}

	it.mu.Lock()
	defer it.mu.Unlock()
	for _, prev := range it.answers {
		if prev.Worker == a.Worker {
			return fmt.Errorf("truth: worker %q already answered task %d", a.Worker, a.Task)
		}
	}
	// Snapshot the submitting worker's quality: Step 1 folds it into M̂ and
	// must see one consistent vector even if other tasks' submits are
	// adjusting this worker concurrently.
	inc.withWorker(a.Worker, func(st *Stats) { copy(it.qbuf, st.Q) })
	r := it.task.Domain

	// Step 1: fold the answer's likelihood into M̂^(i), refresh M and s.
	sTilde := mathx.Clone(it.s)
	for k := 0; k < inc.m; k++ {
		qk := clampQ(it.qbuf[k])
		wrong := (1 - qk) / float64(ell-1)
		row := it.mhat[k]
		var max float64
		for j := range row {
			if j == a.Choice {
				row[j] *= qk
			} else {
				row[j] *= wrong
			}
			if row[j] > max {
				max = row[j]
			}
		}
		if max > 0 {
			for j := range row {
				row[j] /= max
			}
		}
	}
	it.s = applyDomain(r, normalizeRows(it.mhat))

	// Step 2a: the submitting worker absorbs the new evidence.
	inc.withWorker(a.Worker, func(st *Stats) {
		for k := 0; k < inc.m; k++ {
			if rk := r[k]; rk > 0 {
				st.Q[k] = clamp01((st.Q[k]*st.U[k] + it.s[a.Choice]*rk) / (st.U[k] + rk))
				st.U[k] += rk
			}
		}
	})

	// Step 2b: workers who answered this task before are corrected for the
	// truth shift s̃ → s on their own chosen option.
	for _, prev := range it.answers {
		prev := prev
		inc.withWorker(prev.Worker, func(ps *Stats) {
			for k := 0; k < inc.m; k++ {
				rk := r[k]
				if rk == 0 || ps.U[k] == 0 {
					continue
				}
				ps.Q[k] = clamp01((ps.Q[k]*ps.U[k] - sTilde[prev.Choice]*rk + it.s[prev.Choice]*rk) / ps.U[k])
			}
		})
	}

	it.answers = append(it.answers, a)
	it.publishView(inc.epoch.Add(1))
	return nil
}

// View returns the latest published immutable snapshot for task id (nil if
// the task is unknown). This is the lock-free read path: the returned view
// is never mutated, so callers may use its M and S slices directly.
func (inc *Incremental) View(id int) *TaskView {
	it := inc.lookup(id)
	if it == nil {
		return nil
	}
	return it.view.Load()
}

// Handle is a stable, lock-free accessor for one task's published views.
// Looking a task up by ID costs an RLock'd map read (View); a Handle pays
// that once and then loads the latest snapshot with a single atomic read —
// the accessor the serving core's candidate index holds per open task so a
// request never touches the task map at all.
type Handle struct{ it *incTask }

// Handle returns the task's view accessor (the zero Handle for unknown
// tasks). Handles stay valid for the life of the engine.
func (inc *Incremental) Handle(id int) Handle { return Handle{it: inc.lookup(id)} }

// Valid reports whether the handle refers to a registered task.
func (h Handle) Valid() bool { return h.it != nil }

// View returns the latest published immutable snapshot (nil for the zero
// Handle). Same contract as Incremental.View, minus the map lookup.
func (h Handle) View() *TaskView {
	if h.it == nil {
		return nil
	}
	return h.it.view.Load()
}

// Epoch returns the engine-wide mutation counter: it increases on every
// AddTask, Submit, and Reseed. Two reads returning the same epoch bracket a
// quiescent engine.
func (inc *Incremental) Epoch() uint64 { return inc.epoch.Load() }

// S returns task id's current probabilistic truth (nil if unknown task).
// The returned slice is the caller's to keep.
func (inc *Incremental) S(id int) []float64 {
	v := inc.View(id)
	if v == nil {
		return nil
	}
	return mathx.Clone(v.S)
}

// M returns task id's current truth matrix M^(i) (row-normalized). The
// returned matrix is the caller's to keep.
func (inc *Incremental) M(id int) [][]float64 {
	v := inc.View(id)
	if v == nil {
		return nil
	}
	out := make([][]float64, len(v.M))
	for k, row := range v.M {
		out[k] = mathx.Clone(row)
	}
	return out
}

// Truth returns the current inferred truth for task id (-1 if unknown).
func (inc *Incremental) Truth(id int) int {
	v := inc.View(id)
	if v == nil {
		return model.NoTruth
	}
	return v.Truth
}

// Answers returns the number of answers received for task id.
func (inc *Incremental) Answers(id int) int {
	v := inc.View(id)
	if v == nil {
		return 0
	}
	return v.NumAnswers
}

// Reseed overwrites the engine's task states and worker qualities from a
// batch inference result; the core orchestrator calls this after the
// periodic full iterative run (every z submissions). The swap is atomic per
// task: readers see either the pre-rerun view or the reseeded one, never a
// mix. A task that has received more answers than the result's answer set
// covers (possible when the rerun ran asynchronously off a snapshot) is
// left untouched — its extra incremental evidence would otherwise be lost;
// the next rerun picks it up.
func (inc *Incremental) Reseed(tasks []*model.Task, res *Result, answers *model.AnswerSet) {
	pos := make(map[int]int, len(tasks))
	for idx, t := range tasks {
		pos[t.ID] = idx
	}
	type taskEntry struct {
		id int
		it *incTask
	}
	inc.mu.RLock()
	entries := make([]taskEntry, 0, len(inc.tasks))
	for id, it := range inc.tasks {
		entries = append(entries, taskEntry{id, it})
	}
	inc.mu.RUnlock()
	// Sorted so the per-view epochs assigned below are a deterministic
	// function of the task set, not of map iteration order.
	sort.Slice(entries, func(i, j int) bool { return entries[i].id < entries[j].id })
	for _, e := range entries {
		it := e.it
		i, ok := pos[e.id]
		if !ok {
			continue
		}
		snap := answers.ForTask(e.id)
		it.mu.Lock()
		if len(it.answers) > len(snap) {
			it.mu.Unlock()
			continue
		}
		for k := range it.mhat {
			copy(it.mhat[k], res.M[i][k])
		}
		it.s = mathx.Clone(res.S[i])
		it.answers = append(it.answers[:0], snap...)
		it.publishView(inc.epoch.Add(1))
		it.mu.Unlock()
	}
	session := SessionStats(tasks, answers, res, inc.m)
	sessionWorkers := make([]string, 0, len(session))
	for w := range session {
		sessionWorkers = append(sessionWorkers, w)
	}
	sort.Strings(sessionWorkers)
	for _, w := range sessionWorkers {
		st := session[w]
		inc.withWorker(w, func(cur *Stats) {
			for k := 0; k < inc.m; k++ {
				if st.U[k] > 0 {
					cur.Q[k] = st.Q[k]
					cur.U[k] = st.U[k]
				}
			}
		})
	}
}

func normalizeRows(mhat [][]float64) [][]float64 {
	out := make([][]float64, len(mhat))
	for k, row := range mhat {
		out[k] = mathx.Normalize(mathx.Clone(row))
	}
	return out
}

func clamp01(x float64) float64 {
	if x < 0 || math.IsNaN(x) {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
