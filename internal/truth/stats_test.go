package truth

import (
	"math"
	"testing"
	"testing/quick"

	"docs/internal/mathx"
	"docs/internal/model"
)

func TestStatsMergeTheorem1(t *testing.T) {
	// Stored: q̂ = [0.8, 0.6] with weights û = [4, 1].
	stored := &Stats{Q: model.QualityVector{0.8, 0.6}, U: []float64{4, 1}}
	// Session: q = [0.5, 0.9] with weights u = [1, 3].
	session := &Stats{Q: model.QualityVector{0.5, 0.9}, U: []float64{1, 3}}
	stored.Merge(session)
	want0 := (0.8*4 + 0.5*1) / 5
	want1 := (0.6*1 + 0.9*3) / 4
	if math.Abs(stored.Q[0]-want0) > 1e-12 || math.Abs(stored.Q[1]-want1) > 1e-12 {
		t.Errorf("merged Q = %v, want [%g %g]", stored.Q, want0, want1)
	}
	if stored.U[0] != 5 || stored.U[1] != 4 {
		t.Errorf("merged U = %v, want [5 4]", stored.U)
	}
}

func TestStatsMergeZeroWeightKeepsStored(t *testing.T) {
	stored := &Stats{Q: model.QualityVector{0.8}, U: []float64{0}}
	session := &Stats{Q: model.QualityVector{0.2}, U: []float64{0}}
	stored.Merge(session)
	if stored.Q[0] != 0.8 {
		t.Errorf("zero-weight merge changed quality to %g", stored.Q[0])
	}
}

// TestStatsMergeAssociativity: merging sessions one at a time must equal
// merging their weighted union — this is exactly why Theorem 1's update is
// "correct".
func TestStatsMergeAssociativity(t *testing.T) {
	r := mathx.NewRand(23)
	f := func(seed uint64) bool {
		r.Seed(seed)
		m := 1 + r.Intn(4)
		mk := func() *Stats {
			s := &Stats{Q: make(model.QualityVector, m), U: make([]float64, m)}
			for k := 0; k < m; k++ {
				s.Q[k] = r.Float64()
				s.U[k] = r.Float64() * 10
			}
			return s
		}
		a, b, c := mk(), mk(), mk()

		seq := a.Clone()
		seq.Merge(b)
		seq.Merge(c)

		bc := b.Clone()
		bc.Merge(c)
		grouped := a.Clone()
		grouped.Merge(bc)

		for k := 0; k < m; k++ {
			if math.Abs(seq.Q[k]-grouped.Q[k]) > 1e-9 || math.Abs(seq.U[k]-grouped.U[k]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestStatsMergeIsWeightedMean: the merged quality must always lie between
// the two inputs and equal the overall weighted mean.
func TestStatsMergeIsWeightedMean(t *testing.T) {
	r := mathx.NewRand(29)
	for trial := 0; trial < 100; trial++ {
		q1, q2 := r.Float64(), r.Float64()
		u1, u2 := r.Float64()*5+0.1, r.Float64()*5+0.1
		s := &Stats{Q: model.QualityVector{q1}, U: []float64{u1}}
		s.Merge(&Stats{Q: model.QualityVector{q2}, U: []float64{u2}})
		lo, hi := math.Min(q1, q2), math.Max(q1, q2)
		if s.Q[0] < lo-1e-12 || s.Q[0] > hi+1e-12 {
			t.Fatalf("merged %g outside [%g,%g]", s.Q[0], lo, hi)
		}
		want := (q1*u1 + q2*u2) / (u1 + u2)
		if math.Abs(s.Q[0]-want) > 1e-12 {
			t.Fatalf("merged %g, want %g", s.Q[0], want)
		}
	}
}

func TestStatsValidate(t *testing.T) {
	if err := NewStats(3).Validate(3); err != nil {
		t.Errorf("NewStats invalid: %v", err)
	}
	bad := &Stats{Q: model.QualityVector{0.5}, U: []float64{-1}}
	if err := bad.Validate(1); err == nil {
		t.Error("negative weight accepted")
	}
	short := &Stats{Q: model.QualityVector{0.5, 0.5}, U: []float64{1}}
	if err := short.Validate(2); err == nil {
		t.Error("mismatched weight size accepted")
	}
}

func TestEstimateFromGolden(t *testing.T) {
	golden := []*model.Task{
		{ID: 0, Choices: []string{"a", "b"}, Domain: model.DomainVector{1, 0}, Truth: 0, TrueDomain: model.NoTruth},
		{ID: 1, Choices: []string{"a", "b"}, Domain: model.DomainVector{1, 0}, Truth: 1, TrueDomain: model.NoTruth},
		{ID: 2, Choices: []string{"a", "b"}, Domain: model.DomainVector{0, 1}, Truth: 0, TrueDomain: model.NoTruth},
	}
	answers := []model.Answer{
		{Worker: "w", Task: 0, Choice: 0}, // correct, domain 0
		{Worker: "w", Task: 1, Choice: 0}, // wrong, domain 0
		{Worker: "w", Task: 2, Choice: 0}, // correct, domain 1
	}
	st := EstimateFromGolden(golden, answers, 2)
	// Domain 0: 1 correct of 2 → smoothed toward 0.7: (1+0.7)/(2+1) ≈ 0.567.
	if math.Abs(st.Q[0]-1.7/3) > 1e-9 {
		t.Errorf("q_0 = %g, want %g", st.Q[0], 1.7/3)
	}
	// Domain 1: 1 of 1 → (1+0.7)/2 = 0.85.
	if math.Abs(st.Q[1]-0.85) > 1e-9 {
		t.Errorf("q_1 = %g, want 0.85", st.Q[1])
	}
	if st.U[0] != 2 || st.U[1] != 1 {
		t.Errorf("U = %v, want [2 1]", st.U)
	}
}

func TestEstimateFromGoldenIgnoresNonGolden(t *testing.T) {
	golden := []*model.Task{
		{ID: 0, Choices: []string{"a", "b"}, Domain: model.DomainVector{1}, Truth: 0, TrueDomain: model.NoTruth},
	}
	answers := []model.Answer{
		{Worker: "w", Task: 0, Choice: 0},
		{Worker: "w", Task: 99, Choice: 1}, // unknown task: skipped
	}
	st := EstimateFromGolden(golden, answers, 1)
	if st.U[0] != 1 {
		t.Errorf("U = %v, want [1]", st.U)
	}
}

func TestEstimateFromGoldenNoAnswers(t *testing.T) {
	st := EstimateFromGolden(nil, nil, 2)
	for k := range st.Q {
		if math.Abs(st.Q[k]-DefaultQuality) > 1e-9 {
			t.Errorf("q[%d] = %g, want default %g", k, st.Q[k], DefaultQuality)
		}
	}
}
