package truth

import (
	"fmt"
	"math"
	"testing"

	"docs/internal/mathx"
	"docs/internal/model"
)

// Property-based suite for the batch truth-inference algorithm. Three
// families of randomized campaigns (~200 cases total, fixed seeds) pin
// structural invariants a refactor must not break:
//
//   - permutation invariance: the answer log's order is bookkeeping, not
//     evidence — shuffling it leaves every inferred truth unchanged and
//     every probability equal to within float-reassociation noise;
//   - label-renaming equivariance: choice labels carry no information —
//     permuting each task's choices permutes the probabilistic truths the
//     same way and leaves worker qualities untouched;
//   - quality monotonicity: the Step-2 estimate is exactly the
//     domain-weighted average of s_i over a worker's chosen options, so a
//     worker whose choices dominate another's (same task set, at least as
//     much probability on every pick) can never score a lower quality, and
//     workers in clearly separated accuracy tiers rank accordingly.

// propCampaign is one randomized campaign: tasks with domain vectors,
// workers with planted accuracies, and a generated answer log.
type propCampaign struct {
	tasks   []*model.Task
	m       int
	answers []model.Answer
	planted []int              // planted ground truth per task index
	acc     map[string]float64 // planted accuracy per worker
}

// genCampaign draws a campaign: 4–10 tasks over m=6 domains (one- or
// two-hot vectors), 2–4 choices each, 3–7 workers with accuracies in
// [0.40, 0.95] answering ~80% of tasks.
func genCampaign(r *mathx.Rand) *propCampaign {
	const m = 6
	c := &propCampaign{m: m, acc: make(map[string]float64)}
	nTasks := 4 + r.Intn(7)
	for i := 0; i < nTasks; i++ {
		ell := 2 + r.Intn(3)
		dom := make(model.DomainVector, m)
		if r.Float64() < 0.5 {
			dom[r.Intn(m)] = 1
		} else {
			a, b := r.Intn(m), r.Intn(m)
			w := 0.2 + 0.6*r.Float64()
			dom[a] += w
			dom[b] += 1 - w
		}
		choices := make([]string, ell)
		for j := range choices {
			choices[j] = fmt.Sprintf("c%d", j)
		}
		c.tasks = append(c.tasks, &model.Task{
			ID: i, Text: fmt.Sprintf("task %d", i), Choices: choices,
			Domain: dom, Truth: model.NoTruth, TrueDomain: model.NoTruth,
		})
		c.planted = append(c.planted, r.Intn(ell))
	}
	nWorkers := 3 + r.Intn(5)
	for w := 0; w < nWorkers; w++ {
		id := fmt.Sprintf("w%d", w)
		c.acc[id] = 0.40 + 0.55*r.Float64()
		c.answerAll(r, id, 0.8)
	}
	return c
}

// answerAll makes the worker answer each task with probability pAnswer,
// correct (vs the planted truth) with their planted accuracy.
func (c *propCampaign) answerAll(r *mathx.Rand, id string, pAnswer float64) {
	for i, t := range c.tasks {
		if r.Float64() >= pAnswer {
			continue
		}
		choice := c.planted[i]
		if r.Float64() >= c.acc[id] {
			wrong := r.Intn(t.NumChoices() - 1)
			if wrong >= choice {
				wrong++
			}
			choice = wrong
		}
		c.answers = append(c.answers, model.Answer{Worker: id, Task: t.ID, Choice: choice})
	}
}

func buildSet(t *testing.T, answers []model.Answer) *model.AnswerSet {
	t.Helper()
	as := model.NewAnswerSet()
	for _, a := range answers {
		if err := as.Add(a); err != nil {
			t.Fatal(err)
		}
	}
	return as
}

// fixedIter forces an exact iteration count so two runs being compared can
// never diverge by one early stop flipping on an ulp of the convergence
// metric.
var fixedIter = Options{MaxIter: 12, Epsilon: -1}

const propTol = 1e-9

func absDiff(a, b float64) float64 { return math.Abs(a - b) }

// TestPropertyPermutationInvariance: shuffling the answer log must not
// change inference. 80 randomized campaigns, each compared against a
// shuffled twin.
func TestPropertyPermutationInvariance(t *testing.T) {
	r := mathx.NewRand(101)
	for cse := 0; cse < 80; cse++ {
		c := genCampaign(r)
		if len(c.answers) == 0 {
			continue
		}
		resA, err := Infer(c.tasks, buildSet(t, c.answers), c.m, fixedIter)
		if err != nil {
			t.Fatal(err)
		}
		shuffled := append([]model.Answer(nil), c.answers...)
		r.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		resB, err := Infer(c.tasks, buildSet(t, shuffled), c.m, fixedIter)
		if err != nil {
			t.Fatal(err)
		}
		for i := range c.tasks {
			for j := range resA.S[i] {
				if absDiff(resA.S[i][j], resB.S[i][j]) > propTol {
					t.Fatalf("case %d task %d choice %d: S %v vs %v under permutation",
						cse, i, j, resA.S[i][j], resB.S[i][j])
				}
			}
			// The argmax may only differ where the top two probabilities sit
			// inside the comparison tolerance of each other.
			if resA.Truth[i] != resB.Truth[i] {
				if gap := topTwoGap(resA.S[i]); gap > 1e-7 {
					t.Fatalf("case %d task %d: truth %d vs %d under permutation (gap %v)",
						cse, i, resA.Truth[i], resB.Truth[i], gap)
				}
			}
		}
		for w, qa := range resA.Quality {
			qb := resB.Quality[w]
			for k := range qa {
				if absDiff(qa[k], qb[k]) > propTol {
					t.Fatalf("case %d worker %s domain %d: quality %v vs %v under permutation",
						cse, w, k, qa[k], qb[k])
				}
			}
		}
	}
}

func topTwoGap(s []float64) float64 {
	best, second := math.Inf(-1), math.Inf(-1)
	for _, x := range s {
		if x > best {
			best, second = x, best
		} else if x > second {
			second = x
		}
	}
	return best - second
}

// TestPropertyLabelRenamingEquivariance: permuting each task's choice
// labels (and remapping answers and pinned truths accordingly) must
// permute the probabilistic truths the same way and leave worker
// qualities unchanged. 60 randomized campaigns, half with pinned tasks.
func TestPropertyLabelRenamingEquivariance(t *testing.T) {
	r := mathx.NewRand(202)
	for cse := 0; cse < 60; cse++ {
		c := genCampaign(r)
		if len(c.answers) == 0 {
			continue
		}
		optsA := fixedIter
		if cse%2 == 1 {
			optsA.Pinned = map[int]int{0: c.planted[0]}
		}

		// Per-task choice permutations: sigma[i][j] is the new index of
		// task i's old choice j.
		sigma := make([][]int, len(c.tasks))
		tasksB := make([]*model.Task, len(c.tasks))
		for i, tk := range c.tasks {
			ell := tk.NumChoices()
			sigma[i] = r.Perm(ell)
			choices := make([]string, ell)
			for j, name := range tk.Choices {
				choices[sigma[i][j]] = name
			}
			tasksB[i] = &model.Task{
				ID: tk.ID, Text: tk.Text, Choices: choices,
				Domain: tk.Domain, Truth: model.NoTruth, TrueDomain: model.NoTruth,
			}
		}
		renamed := make([]model.Answer, len(c.answers))
		for n, a := range c.answers {
			renamed[n] = model.Answer{Worker: a.Worker, Task: a.Task, Choice: sigma[a.Task][a.Choice]}
		}
		optsB := fixedIter
		if optsA.Pinned != nil {
			optsB.Pinned = map[int]int{0: sigma[0][c.planted[0]]}
		}

		resA, err := Infer(c.tasks, buildSet(t, c.answers), c.m, optsA)
		if err != nil {
			t.Fatal(err)
		}
		resB, err := Infer(tasksB, buildSet(t, renamed), c.m, optsB)
		if err != nil {
			t.Fatal(err)
		}
		for i := range c.tasks {
			for j := range resA.S[i] {
				if absDiff(resA.S[i][j], resB.S[i][sigma[i][j]]) > propTol {
					t.Fatalf("case %d task %d: S[%d]=%v but renamed S[%d]=%v",
						cse, i, j, resA.S[i][j], sigma[i][j], resB.S[i][sigma[i][j]])
				}
			}
			if want := sigma[i][resA.Truth[i]]; resB.Truth[i] != want {
				if gap := topTwoGap(resA.S[i]); gap > 1e-7 {
					t.Fatalf("case %d task %d: renamed truth %d, want %d (gap %v)",
						cse, i, resB.Truth[i], want, gap)
				}
			}
		}
		for w, qa := range resA.Quality {
			qb := resB.Quality[w]
			for k := range qa {
				if absDiff(qa[k], qb[k]) > propTol {
					t.Fatalf("case %d worker %s domain %d: quality %v changed to %v under renaming",
						cse, w, k, qa[k], qb[k])
				}
			}
		}
	}
}

// TestPropertyQualityMonotoneInAgreement: 60 randomized campaigns carrying
// two designed extra workers — "good" always answers the planted truth,
// "bad" always answers wrong — answering every task. Three checks per
// campaign:
//
//  1. the Step-2 identity: every returned quality equals the
//     domain-weighted average of final s_i over the worker's choices;
//  2. dominance: for worker pairs with the same task set where one's
//     choices carry at least as much final probability on every task,
//     quality dominates domain by domain;
//  3. tier ordering: the always-right worker's mean quality over active
//     domains beats the always-wrong worker's.
func TestPropertyQualityMonotoneInAgreement(t *testing.T) {
	r := mathx.NewRand(303)
	for cse := 0; cse < 60; cse++ {
		c := genCampaign(r)
		c.acc["good"] = 1.0
		c.answerAll(r, "good", 1.0)
		c.acc["bad"] = 0.0
		c.answerAll(r, "bad", 1.0)
		as := buildSet(t, c.answers)
		res, err := Infer(c.tasks, as, c.m, fixedIter)
		if err != nil {
			t.Fatal(err)
		}
		pos := make(map[int]int, len(c.tasks))
		for i, tk := range c.tasks {
			pos[tk.ID] = i
		}

		// 1. Step-2 identity, recomputed from the returned S.
		for w, q := range res.Quality {
			num := make([]float64, c.m)
			den := make([]float64, c.m)
			for _, a := range as.ForWorker(w) {
				i := pos[a.Task]
				for k := 0; k < c.m; k++ {
					num[k] += c.tasks[i].Domain[k] * res.S[i][a.Choice]
					den[k] += c.tasks[i].Domain[k]
				}
			}
			for k := 0; k < c.m; k++ {
				if den[k] == 0 {
					continue
				}
				if absDiff(q[k], num[k]/den[k]) > 1e-12 {
					t.Fatalf("case %d worker %s domain %d: quality %v, Step-2 identity gives %v",
						cse, w, k, q[k], num[k]/den[k])
				}
			}
		}

		// 2. Dominance between workers sharing a task set.
		workers := as.Workers()
		for _, v := range workers {
			for _, w := range workers {
				if v == w {
					continue
				}
				va, wa := as.ForWorker(v), as.ForWorker(w)
				if !sameTaskSet(va, wa) {
					continue
				}
				wChoice := make(map[int]int, len(wa))
				for _, a := range wa {
					wChoice[a.Task] = a.Choice
				}
				dominates := true
				for _, a := range va {
					i := pos[a.Task]
					if res.S[i][a.Choice] < res.S[i][wChoice[a.Task]] {
						dominates = false
						break
					}
				}
				if !dominates {
					continue
				}
				qv, qw := res.Quality[v], res.Quality[w]
				den := activeDomains(va, pos, c.tasks, c.m)
				for k := range den {
					if qv[k] < qw[k]-1e-12 {
						t.Fatalf("case %d: worker %s dominates %s per task but quality[%d] %v < %v",
							cse, v, w, k, qv[k], qw[k])
					}
				}
			}
		}

		// 3. Tier ordering of the designed workers over active domains.
		good, bad := res.Quality["good"], res.Quality["bad"]
		den := activeDomains(as.ForWorker("good"), pos, c.tasks, c.m)
		var gMean, bMean float64
		for k := range den {
			gMean += good[k]
			bMean += bad[k]
		}
		if n := float64(len(den)); n > 0 {
			gMean, bMean = gMean/n, bMean/n
		}
		if gMean <= bMean {
			t.Fatalf("case %d: always-right worker mean quality %v <= always-wrong %v", cse, gMean, bMean)
		}
	}
}

// sameTaskSet reports whether two answer slices cover exactly the same
// tasks.
func sameTaskSet(a, b []model.Answer) bool {
	if len(a) != len(b) {
		return false
	}
	set := make(map[int]bool, len(a))
	for _, x := range a {
		set[x.Task] = true
	}
	for _, x := range b {
		if !set[x.Task] {
			return false
		}
	}
	return true
}

// activeDomains returns the set of domains with positive answer weight for
// the given answers.
func activeDomains(answers []model.Answer, pos map[int]int, tasks []*model.Task, m int) map[int]bool {
	out := make(map[int]bool)
	for _, a := range answers {
		for k := 0; k < m; k++ {
			if tasks[pos[a.Task]].Domain[k] > 0 {
				out[k] = true
			}
		}
	}
	return out
}
