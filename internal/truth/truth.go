// Package truth implements the Truth Inference (TI) module of DOCS
// (Section 4 of the paper).
//
// Given tasks with domain vectors and the workers' collected answers, TI
// jointly estimates each task's probabilistic truth s_i and each worker's
// per-domain quality vector q^w by alternating two steps until convergence:
//
//	Step 1 (q^w → s_i): per-domain truth matrices M^(i) via Equations 3–4,
//	        then s_i = r^{t_i} × M^(i) (Equation 2);
//	Step 2 (s_i → q^w): expected per-domain accuracy via Equation 5.
//
// The package also provides the incremental single-answer update of
// Section 4.2 (see Incremental) and the long-run quality maintenance rule of
// Theorem 1 (see Stats.Merge).
package truth

import (
	"fmt"
	"math"
	"sort"

	"docs/internal/mathx"
	"docs/internal/model"
)

// Default inference parameters.
const (
	// DefaultMaxIter bounds the iterations; the paper observes convergence
	// well within 20.
	DefaultMaxIter = 20
	// DefaultEpsilon is the Δ threshold below which iteration stops.
	DefaultEpsilon = 1e-4
	// DefaultQuality initializes workers with no golden-task history; 0.7 is
	// the usual "better than random, below expert" crowdsourcing prior.
	DefaultQuality = 0.7
	// qualityFloor / qualityCeil clamp worker qualities inside (0,1) so the
	// likelihoods in Equation 4 never degenerate to hard 0/1.
	qualityFloor = 0.01
	qualityCeil  = 0.99
)

// Options configures Infer.
type Options struct {
	// MaxIter bounds the number of iterations (default DefaultMaxIter).
	MaxIter int
	// Epsilon stops iteration once the parameter change Δ falls below it
	// (default DefaultEpsilon). Zero means "use the default"; set negative
	// to force exactly MaxIter iterations (used by the convergence figure).
	Epsilon float64
	// InitQuality seeds worker qualities, typically from golden tasks
	// (Section 5.2). Workers absent from the map start at DefaultQuality.
	InitQuality map[string]model.QualityVector
	// RecordDeltas retains the per-iteration Δ sequence in Result.Deltas
	// (Figure 4(a)).
	RecordDeltas bool
	// Pinned maps task IDs to known ground truths (golden tasks). Pinned
	// tasks keep a one-hot probabilistic truth throughout the iteration, so
	// they anchor the worker-quality scale: without an anchor the EM has a
	// mirrored fixed point per domain in which truths flip and good
	// workers' qualities collapse toward zero.
	Pinned map[int]int
}

// Result holds the output of Infer.
type Result struct {
	// S[i] is task i's probabilistic truth s_i (indexed by position in the
	// task slice passed to Infer).
	S [][]float64
	// M[i] is task i's per-domain truth matrix M^(i) of size m × ℓ_i.
	M [][][]float64
	// Truth[i] is argmax_j S[i][j], the inferred truth v*_i.
	Truth []int
	// Quality maps each answering worker to the estimated quality vector.
	Quality map[string]model.QualityVector
	// Iterations is the number of iterations executed.
	Iterations int
	// Deltas is the per-iteration parameter change (if recorded).
	Deltas []float64
}

// Infer runs the iterative truth-inference algorithm over the given tasks
// and answers. Every task must carry a domain vector of size m. Tasks with
// no answers receive a uniform probabilistic truth.
func Infer(tasks []*model.Task, answers *model.AnswerSet, m int, opt Options) (*Result, error) {
	if opt.MaxIter <= 0 {
		opt.MaxIter = DefaultMaxIter
	}
	if opt.Epsilon == 0 {
		opt.Epsilon = DefaultEpsilon
	}
	pos := make(map[int]int, len(tasks)) // task ID -> slice index
	for idx, t := range tasks {
		if t.Domain == nil {
			return nil, fmt.Errorf("truth: task %d has no domain vector (run DVE first)", t.ID)
		}
		if err := t.Validate(m); err != nil {
			return nil, err
		}
		if _, dup := pos[t.ID]; dup {
			return nil, fmt.Errorf("truth: duplicate task ID %d", t.ID)
		}
		pos[t.ID] = idx
	}
	for _, id := range answers.Tasks() {
		if _, ok := pos[id]; !ok {
			return nil, fmt.Errorf("truth: answers reference unknown task %d", id)
		}
		for _, a := range answers.ForTask(id) {
			if ell := len(tasks[pos[id]].Choices); a.Choice < 0 || a.Choice >= ell {
				return nil, fmt.Errorf("truth: worker %q chose %d on task %d with %d choices", a.Worker, a.Choice, id, ell)
			}
		}
	}

	// Initialize worker qualities. Workers are processed in sorted order
	// everywhere below: map iteration order would otherwise reorder the
	// floating-point accumulation in the convergence metric and make runs
	// differ in the last ulp — enough to flip an early stop and change
	// downstream assignment decisions.
	workers := answers.Workers()
	sort.Strings(workers)
	quality := make(map[string]model.QualityVector)
	for _, w := range workers {
		if init, ok := opt.InitQuality[w]; ok {
			q := make(model.QualityVector, m)
			copy(q, init)
			quality[w] = q
		} else {
			q := make(model.QualityVector, m)
			for k := range q {
				q[k] = DefaultQuality
			}
			quality[w] = q
		}
	}

	// Validate pinned truths in sorted ID order so the first-reported error
	// is deterministic (a map-order range here would pick an arbitrary one).
	pinnedIDs := make([]int, 0, len(opt.Pinned))
	for id := range opt.Pinned {
		pinnedIDs = append(pinnedIDs, id)
	}
	sort.Ints(pinnedIDs)
	for _, id := range pinnedIDs {
		truth := opt.Pinned[id]
		i, ok := pos[id]
		if !ok {
			return nil, fmt.Errorf("truth: pinned truth for unknown task %d", id)
		}
		if truth < 0 || truth >= tasks[i].NumChoices() {
			return nil, fmt.Errorf("truth: pinned truth %d out of range for task %d", truth, id)
		}
	}

	res := &Result{
		S:       make([][]float64, len(tasks)),
		M:       make([][][]float64, len(tasks)),
		Truth:   make([]int, len(tasks)),
		Quality: quality,
	}
	for i, t := range tasks {
		if pv, ok := opt.Pinned[t.ID]; ok {
			res.S[i] = oneHot(t.NumChoices(), pv)
			continue
		}
		res.S[i] = mathx.Uniform(t.NumChoices())
	}

	prevS := make([][]float64, len(tasks))
	for iter := 0; iter < opt.MaxIter; iter++ {
		for i := range res.S {
			prevS[i] = mathx.Clone(res.S[i])
		}
		prevQ := cloneQuality(quality)

		// Step 1: q^w → s_i. Pinned (golden) tasks keep their one-hot truth.
		for i, t := range tasks {
			if pv, ok := opt.Pinned[t.ID]; ok {
				res.M[i] = pinnedMatrix(m, t.NumChoices(), pv)
				res.S[i] = oneHot(t.NumChoices(), pv)
				continue
			}
			v := answers.ForTask(t.ID)
			if len(v) == 0 {
				res.M[i] = uniformMatrix(m, t.NumChoices())
				res.S[i] = mathx.Uniform(t.NumChoices())
				continue
			}
			M := truthMatrix(t, v, quality, m)
			res.M[i] = M
			res.S[i] = applyDomain(t.Domain, M)
		}

		// Step 2: s_i → q^w.
		for _, w := range workers {
			q := quality[w]
			num := make([]float64, m)
			den := make([]float64, m)
			for _, a := range answers.ForWorker(w) {
				i := pos[a.Task]
				r := tasks[i].Domain
				si := res.S[i]
				for k := 0; k < m; k++ {
					num[k] += r[k] * si[a.Choice]
					den[k] += r[k]
				}
			}
			for k := 0; k < m; k++ {
				if den[k] > 0 {
					q[k] = num[k] / den[k]
				}
				// Domains the worker never touched keep their previous value
				// (the paper's maintenance keeps them at the stored prior).
			}
		}

		res.Iterations = iter + 1
		delta := paramDelta(res.S, prevS, workers, quality, prevQ, m)
		if opt.RecordDeltas {
			res.Deltas = append(res.Deltas, delta)
		}
		if delta < opt.Epsilon {
			break
		}
	}

	for i := range res.S {
		res.Truth[i] = mathx.ArgMax(res.S[i])
	}
	return res, nil
}

// truthMatrix computes M^(i) (Equations 3–4) for a task: row k is the truth
// distribution conditioned on the task's true domain being k. Likelihoods
// are accumulated in log space so large answer sets cannot underflow.
func truthMatrix(t *model.Task, v []model.Answer, quality map[string]model.QualityVector, m int) [][]float64 {
	ell := t.NumChoices()
	M := make([][]float64, m)
	logRow := make([]float64, ell)
	for k := 0; k < m; k++ {
		for j := range logRow {
			logRow[j] = 0
		}
		for _, a := range v {
			qk := clampQ(quality[a.Worker][k])
			logCorrect := math.Log(qk)
			logWrong := math.Log((1 - qk) / float64(ell-1))
			for j := 0; j < ell; j++ {
				if a.Choice == j {
					logRow[j] += logCorrect
				} else {
					logRow[j] += logWrong
				}
			}
		}
		M[k] = softmax(logRow)
	}
	return M
}

// applyDomain computes s = r × M (Equation 2).
func applyDomain(r model.DomainVector, M [][]float64) []float64 {
	ell := len(M[0])
	s := make([]float64, ell)
	for k, row := range M {
		rk := r[k]
		if rk == 0 {
			continue
		}
		for j := 0; j < ell; j++ {
			s[j] += rk * row[j]
		}
	}
	return mathx.Normalize(s)
}

// softmax exponentiates and normalizes a log-weight vector stably.
func softmax(logw []float64) []float64 {
	max := logw[0]
	for _, x := range logw[1:] {
		if x > max {
			max = x
		}
	}
	out := make([]float64, len(logw))
	var sum float64
	for i, x := range logw {
		out[i] = math.Exp(x - max)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

func clampQ(q float64) float64 {
	if q < qualityFloor {
		return qualityFloor
	}
	if q > qualityCeil {
		return qualityCeil
	}
	return q
}

func uniformMatrix(rows, cols int) [][]float64 {
	M := make([][]float64, rows)
	for k := range M {
		M[k] = mathx.Uniform(cols)
	}
	return M
}

func oneHot(n, idx int) []float64 {
	v := make([]float64, n)
	v[idx] = 1
	return v
}

func pinnedMatrix(rows, cols, idx int) [][]float64 {
	M := make([][]float64, rows)
	for k := range M {
		M[k] = oneHot(cols, idx)
	}
	return M
}

func cloneQuality(q map[string]model.QualityVector) map[string]model.QualityVector {
	out := make(map[string]model.QualityVector, len(q))
	for w, v := range q {
		c := make(model.QualityVector, len(v))
		copy(c, v)
		out[w] = c
	}
	return out
}

// paramDelta is the convergence metric Δ of Section 6.3: the mean absolute
// change of the probabilistic truths plus the mean absolute change of the
// worker qualities.
func paramDelta(s, sPrev [][]float64, workers []string, q, qPrev map[string]model.QualityVector, m int) float64 {
	var ds float64
	var terms int
	for i := range s {
		ds += mathx.L1Distance(s[i], sPrev[i]) / float64(len(s[i]))
		terms++
	}
	if terms > 0 {
		ds /= float64(terms)
	}
	var dq float64
	for _, w := range workers {
		dq += mathx.L1Distance(q[w], qPrev[w])
	}
	if len(workers) > 0 {
		dq /= float64(len(workers) * m)
	}
	return ds + dq
}

// Accuracy returns the fraction of tasks with known ground truth whose
// inferred truth matches it. Tasks without ground truth are skipped; the
// second return value is the number of evaluated tasks.
func Accuracy(tasks []*model.Task, inferred []int) (float64, int) {
	correct, total := 0, 0
	for i, t := range tasks {
		if t.Truth == model.NoTruth {
			continue
		}
		total++
		if i < len(inferred) && inferred[i] == t.Truth {
			correct++
		}
	}
	if total == 0 {
		return 0, 0
	}
	return float64(correct) / float64(total), total
}
