package truth

import (
	"fmt"

	"docs/internal/model"
)

// Stats is the pair of statistics DOCS persists per worker (Section 4.2):
// the quality vector q^w and its weight vector u^w, where u^w_k is the
// expected number of tasks the worker answered that relate to domain k
// (Σ_{t_i ∈ T(w)} r^{t_i}_k). The weight makes qualities mergeable across
// requester sessions (Theorem 1).
type Stats struct {
	Q model.QualityVector `json:"q"`
	U []float64           `json:"u"`
}

// NewStats returns zero-weight stats of size m with the default prior
// quality.
func NewStats(m int) *Stats {
	s := &Stats{Q: make(model.QualityVector, m), U: make([]float64, m)}
	for k := range s.Q {
		s.Q[k] = DefaultQuality
	}
	return s
}

// Validate checks the structural invariants of the stats.
func (s *Stats) Validate(m int) error {
	if err := s.Q.Validate(m); err != nil {
		return err
	}
	if len(s.U) != m {
		return fmt.Errorf("truth: stats weight has size %d, want %d", len(s.U), m)
	}
	for k, u := range s.U {
		if u < 0 || u != u {
			//docs:allow floatbits error text is human-facing; never encoded or digested
			return fmt.Errorf("truth: stats weight[%d] = %g is negative", k, u)
		}
	}
	return nil
}

// Merge folds newly computed session statistics into the stored ones per
// Theorem 1: q̂_k ← (q̂_k·û_k + q_k·u_k)/(û_k + u_k) and û_k ← û_k + u_k.
// Domains with zero combined weight keep the stored quality.
func (s *Stats) Merge(session *Stats) {
	for k := range s.Q {
		total := s.U[k] + session.U[k]
		if total > 0 {
			s.Q[k] = (s.Q[k]*s.U[k] + session.Q[k]*session.U[k]) / total
		}
		s.U[k] = total
	}
}

// Clone returns a deep copy.
func (s *Stats) Clone() *Stats {
	c := &Stats{Q: make(model.QualityVector, len(s.Q)), U: make([]float64, len(s.U))}
	copy(c.Q, s.Q)
	copy(c.U, s.U)
	return c
}

// SessionStats derives per-worker (q, u) statistics from a finished
// inference Result over the given tasks, ready to be merged into stored
// stats via Theorem 1. For each worker, u_k = Σ_{t∈T(w)} r_k and
// q_k = Σ r_k·s_{i,v^w_i} / u_k (Equation 5 restricted to this session).
func SessionStats(tasks []*model.Task, answers *model.AnswerSet, res *Result, m int) map[string]*Stats {
	pos := make(map[int]int, len(tasks))
	for idx, t := range tasks {
		pos[t.ID] = idx
	}
	out := make(map[string]*Stats)
	for _, w := range answers.Workers() {
		st := &Stats{Q: make(model.QualityVector, m), U: make([]float64, m)}
		num := make([]float64, m)
		for _, a := range answers.ForWorker(w) {
			i, ok := pos[a.Task]
			if !ok {
				continue
			}
			r := tasks[i].Domain
			si := res.S[i]
			for k := 0; k < m; k++ {
				num[k] += r[k] * si[a.Choice]
				st.U[k] += r[k]
			}
		}
		for k := 0; k < m; k++ {
			if st.U[k] > 0 {
				st.Q[k] = num[k] / st.U[k]
			} else {
				st.Q[k] = DefaultQuality
			}
		}
		out[w] = st
	}
	return out
}
