package assign

import (
	"math"
	"testing"
	"testing/quick"

	"docs/internal/mathx"
	"docs/internal/model"
)

// randomState builds a random consistent TaskState over m domains and ell
// choices.
func randomState(r *mathx.Rand, id, m, ell int) *TaskState {
	ts := &TaskState{
		ID: id,
		R:  model.DomainVector(r.Dirichlet(m, 1)),
		M:  make([][]float64, m),
	}
	for k := 0; k < m; k++ {
		ts.M[k] = r.Dirichlet(ell, 1)
	}
	s := make([]float64, ell)
	for k, rk := range ts.R {
		for j, v := range ts.M[k] {
			s[j] += rk * v
		}
	}
	ts.S = mathx.Normalize(s)
	return ts
}

func randomQuality(r *mathx.Rand, m int) model.QualityVector {
	q := make(model.QualityVector, m)
	for k := range q {
		q[k] = r.Range(0.05, 0.95)
	}
	return q
}

func TestAnswerProbIsDistribution(t *testing.T) {
	r := mathx.NewRand(3)
	for trial := 0; trial < 100; trial++ {
		m, ell := 2+r.Intn(4), 2+r.Intn(3)
		ts := randomState(r, trial, m, ell)
		q := randomQuality(r, m)
		var sum float64
		for a := 0; a < ell; a++ {
			pa := AnswerProb(ts, q, a)
			if pa < -1e-9 || pa > 1+1e-9 {
				t.Fatalf("Pr(a=%d) = %g out of [0,1]", a, pa)
			}
			sum += pa
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("answer probabilities sum to %g", sum)
		}
	}
}

func TestUpdatedMRowsAreDistributions(t *testing.T) {
	r := mathx.NewRand(5)
	for trial := 0; trial < 100; trial++ {
		m, ell := 2+r.Intn(4), 2+r.Intn(3)
		ts := randomState(r, trial, m, ell)
		q := randomQuality(r, m)
		a := r.Intn(ell)
		Ma := UpdatedM(ts, q, a)
		for k := range Ma {
			if err := mathx.CheckDistribution(Ma[k], 1e-9); err != nil {
				t.Fatalf("M|a row %d: %v", k, err)
			}
		}
	}
}

func TestUpdatedMSharpensTowardAnswer(t *testing.T) {
	// A high-quality worker answering choice 0 must raise M_{k,0} in every
	// domain where the worker is reliable (q_k > 1/ℓ keeps the likelihood
	// ratio above 1).
	ts := &TaskState{
		ID: 1,
		R:  model.DomainVector{0.5, 0.5},
		M:  [][]float64{{0.5, 0.5}, {0.5, 0.5}},
		S:  []float64{0.5, 0.5},
	}
	q := model.QualityVector{0.9, 0.9}
	Ma := UpdatedM(ts, q, 0)
	for k := range Ma {
		if Ma[k][0] <= ts.M[k][0] {
			t.Errorf("domain %d: M|a[0] = %g did not increase from %g", k, Ma[k][0], ts.M[k][0])
		}
	}
	want := 0.9 * 0.5 / (0.9*0.5 + 0.1*0.5)
	if math.Abs(Ma[0][0]-want) > 1e-12 {
		t.Errorf("M|a[0][0] = %g, want %g", Ma[0][0], want)
	}
}

// TestBenefitConfidentTaskIsLow: a task whose truth is already certain has
// (near) zero benefit — the motivating example of Section 5.1
// (s = [0.99, 0.01]).
func TestBenefitConfidentTaskIsLow(t *testing.T) {
	confident := &TaskState{
		ID: 1,
		R:  model.DomainVector{1},
		M:  [][]float64{{0.99, 0.01}},
		S:  []float64{0.99, 0.01},
	}
	ambiguous := &TaskState{
		ID: 2,
		R:  model.DomainVector{1},
		M:  [][]float64{{0.5, 0.5}},
		S:  []float64{0.5, 0.5},
	}
	q := model.QualityVector{0.9}
	bc := Benefit(confident, q)
	ba := Benefit(ambiguous, q)
	if bc >= ba {
		t.Errorf("confident benefit %g >= ambiguous benefit %g", bc, ba)
	}
	if bc > 0.05 {
		t.Errorf("confident benefit %g, want near zero", bc)
	}
}

// TestBenefitPrefersExpertDomain: for the same ambiguous task, a worker who
// is expert in the task's domain yields a larger benefit than a novice —
// and a task in the worker's expert domain beats one outside it.
func TestBenefitPrefersExpertDomain(t *testing.T) {
	task := &TaskState{
		ID: 1,
		R:  model.DomainVector{1, 0},
		M:  [][]float64{{0.5, 0.5}, {0.5, 0.5}},
		S:  []float64{0.5, 0.5},
	}
	expert := model.QualityVector{0.95, 0.5}
	novice := model.QualityVector{0.55, 0.5}
	if be, bn := Benefit(task, expert), Benefit(task, novice); be <= bn {
		t.Errorf("expert benefit %g <= novice benefit %g", be, bn)
	}

	inDomain := task
	outDomain := &TaskState{
		ID: 2,
		R:  model.DomainVector{0, 1},
		M:  [][]float64{{0.5, 0.5}, {0.5, 0.5}},
		S:  []float64{0.5, 0.5},
	}
	if bi, bo := Benefit(inDomain, expert), Benefit(outDomain, expert); bi <= bo {
		t.Errorf("in-domain benefit %g <= out-of-domain %g", bi, bo)
	}
}

// TestBenefitNonNegativeSingleDomain: for a single-domain task the
// predictive distribution (Theorem 2) is exactly the Bayes marginal of the
// update (Theorem 3), so by concavity of entropy the benefit is
// non-negative. (With several domains the paper's r-weighted mixture can
// produce tiny negative benefits, which is why this property is asserted
// only at m = 1.)
func TestBenefitNonNegativeSingleDomain(t *testing.T) {
	r := mathx.NewRand(7)
	f := func(seed uint64) bool {
		r.Seed(seed)
		ts := randomState(r, 0, 1, 2+r.Intn(3))
		q := randomQuality(r, 1)
		return Benefit(ts, q) >= -1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPerDomainMartingale: Theorems 2 and 3 are mutually consistent within
// each domain: Σ_a Pr(a | o=k)·M|a_{k,•} = M_{k,•}, where Pr(a | o=k) is
// the domain-k answer likelihood q_k·M_{k,a} + (1−q_k)/(ℓ−1)·(1−M_{k,a}).
func TestPerDomainMartingale(t *testing.T) {
	r := mathx.NewRand(19)
	for trial := 0; trial < 100; trial++ {
		m, ell := 1+r.Intn(4), 2+r.Intn(3)
		ts := randomState(r, trial, m, ell)
		q := randomQuality(r, m)
		for k := 0; k < m; k++ {
			mixed := make([]float64, ell)
			for a := 0; a < ell; a++ {
				pak := q[k]*ts.M[k][a] + (1-q[k])/float64(ell-1)*(1-ts.M[k][a])
				Ma := UpdatedM(ts, q, a)
				for j := 0; j < ell; j++ {
					mixed[j] += pak * Ma[k][j]
				}
			}
			for j := 0; j < ell; j++ {
				if math.Abs(mixed[j]-ts.M[k][j]) > 1e-9 {
					t.Fatalf("domain %d: martingale violated: mixed %v vs M %v", k, mixed, ts.M[k])
				}
			}
		}
	}
}

// TestTheorem4Additivity: the enumerated batch benefit (Equation 10) must
// equal the sum of individual benefits.
func TestTheorem4Additivity(t *testing.T) {
	r := mathx.NewRand(11)
	f := func(seed uint64) bool {
		r.Seed(seed)
		m := 1 + r.Intn(3)
		kTasks := 1 + r.Intn(3)
		q := randomQuality(r, m)
		batch := make([]*TaskState, kTasks)
		var sum float64
		for i := range batch {
			batch[i] = randomState(r, i, m, 2+r.Intn(2))
			sum += Benefit(batch[i], q)
		}
		enum := BatchBenefitEnum(batch, q)
		return math.Abs(enum-sum) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBatchBenefitEnumEmpty(t *testing.T) {
	if b := BatchBenefitEnum(nil, model.QualityVector{0.5}); b != 0 {
		t.Errorf("empty batch benefit = %g", b)
	}
}

func TestTaskStateValidate(t *testing.T) {
	r := mathx.NewRand(13)
	ts := randomState(r, 1, 3, 2)
	if err := ts.Validate(3); err != nil {
		t.Errorf("valid state rejected: %v", err)
	}
	bad := randomState(r, 2, 3, 2)
	bad.M = bad.M[:2]
	if err := bad.Validate(3); err == nil {
		t.Error("short M accepted")
	}
	bad2 := randomState(r, 3, 3, 2)
	bad2.S = []float64{0.6, 0.6}
	if err := bad2.Validate(3); err == nil {
		t.Error("non-normalized s accepted")
	}
	bad3 := randomState(r, 4, 3, 2)
	bad3.S = bad3.S[:1]
	if err := bad3.Validate(3); err == nil {
		t.Error("single-choice s accepted")
	}
}
