package assign

import (
	"math"
	"testing"

	"docs/internal/mathx"
	"docs/internal/model"
)

func TestGoldenAllocationFeasibility(t *testing.T) {
	r := mathx.NewRand(3)
	for trial := 0; trial < 200; trial++ {
		m := 2 + r.Intn(8)
		nPrime := 1 + r.Intn(40)
		tau := r.Dirichlet(m, 0.8)
		alloc := GoldenAllocation(tau, nPrime)
		total := 0
		for k, a := range alloc {
			if a < 0 {
				t.Fatalf("negative allocation %d at domain %d", a, k)
			}
			total += a
		}
		if total != nPrime {
			t.Fatalf("allocation sums to %d, want %d (tau=%v)", total, nPrime, tau)
		}
	}
}

// TestGoldenAllocationNearOptimal reproduces the Figure 7(a) property: the
// approximation's objective is within a whisker of the enumerated optimum
// (the paper reports γ within 0.1% on average).
func TestGoldenAllocationNearOptimal(t *testing.T) {
	r := mathx.NewRand(7)
	var sumGamma float64
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		m := 2 + r.Intn(3) // keep enumeration tractable
		nPrime := 3 + r.Intn(10)
		tau := r.Dirichlet(m, 1.2)
		approx := GoldenAllocation(tau, nPrime)
		exact := GoldenAllocationExact(tau, nPrime)
		dA := GoldenObjective(approx, tau)
		dE := GoldenObjective(exact, tau)
		if dA+1e-12 < dE {
			t.Fatalf("approx objective %g below exact optimum %g", dA, dE)
		}
		if dE > 0 {
			sumGamma += (dA - dE) / dE
		}
	}
	if avg := sumGamma / trials; avg > 0.05 {
		t.Errorf("average approximation gap γ = %g, want <= 0.05", avg)
	}
}

func TestGoldenAllocationMatchesTauShape(t *testing.T) {
	tau := []float64{0.5, 0.3, 0.2}
	alloc := GoldenAllocation(tau, 10)
	if alloc[0] != 5 || alloc[1] != 3 || alloc[2] != 2 {
		t.Errorf("allocation = %v, want [5 3 2]", alloc)
	}
}

func TestGoldenAllocationZeroTauDomain(t *testing.T) {
	tau := []float64{0.6, 0.4, 0}
	alloc := GoldenAllocation(tau, 7)
	if alloc[2] != 0 {
		t.Errorf("allocated %d tasks to a zero-mass domain", alloc[2])
	}
	if alloc[0]+alloc[1] != 7 {
		t.Errorf("allocation = %v does not sum to 7", alloc)
	}
}

func TestGoldenAllocationDegenerate(t *testing.T) {
	if alloc := GoldenAllocation(nil, 5); len(alloc) != 0 {
		t.Errorf("empty tau allocation = %v", alloc)
	}
	alloc := GoldenAllocation([]float64{0.5, 0.5}, 0)
	if alloc[0] != 0 || alloc[1] != 0 {
		t.Errorf("n'=0 allocation = %v", alloc)
	}
	// All-zero tau still distributes (uniform fallback).
	alloc = GoldenAllocation([]float64{0, 0}, 4)
	if alloc[0]+alloc[1] != 4 {
		t.Errorf("zero-tau allocation = %v", alloc)
	}
}

func TestGoldenObjective(t *testing.T) {
	tau := []float64{0.5, 0.5}
	if d := GoldenObjective([]int{5, 5}, tau); math.Abs(d) > 1e-12 {
		t.Errorf("perfect match objective = %g, want 0", d)
	}
	if d := GoldenObjective([]int{10, 0}, tau); d <= 0 {
		t.Errorf("skewed objective = %g, want > 0", d)
	}
	if d := GoldenObjective([]int{1, 1}, []float64{1, 0}); !math.IsInf(d, 1) {
		t.Errorf("mass on zero-tau domain objective = %g, want +Inf", d)
	}
	if d := GoldenObjective([]int{0, 0}, tau); d != 0 {
		t.Errorf("empty allocation objective = %g", d)
	}
}

func buildDomainTasks(r *mathx.Rand, n, m int) []*model.Task {
	tasks := make([]*model.Task, n)
	for i := range tasks {
		k := i % m
		dom := make(model.DomainVector, m)
		for j := range dom {
			dom[j] = 0.05
		}
		dom[k] = 1
		mathx.Normalize(dom)
		tasks[i] = &model.Task{
			ID: i, Choices: []string{"a", "b"},
			Domain: dom, Truth: r.Intn(2), TrueDomain: k,
		}
	}
	return tasks
}

func TestSelectGolden(t *testing.T) {
	r := mathx.NewRand(9)
	const n, m, nPrime = 120, 4, 20
	tasks := buildDomainTasks(r, n, m)
	idx := SelectGolden(tasks, nPrime, m)
	if len(idx) != nPrime {
		t.Fatalf("selected %d tasks, want %d", len(idx), nPrime)
	}
	seen := make(map[int]bool)
	perDomain := make([]int, m)
	for _, i := range idx {
		if seen[i] {
			t.Fatalf("task %d selected twice", i)
		}
		seen[i] = true
		perDomain[tasks[i].TrueDomain]++
	}
	// τ is uniform over 4 domains, so each domain should get n'/m = 5.
	for k, c := range perDomain {
		if c != nPrime/m {
			t.Errorf("domain %d got %d golden tasks, want %d", k, c, nPrime/m)
		}
	}
	// Guideline 1: each selected task must be strongly related to its
	// allocated domain (r_k is the 1-weighted entry here).
	for _, i := range idx {
		if tasks[i].Domain.Top() != tasks[i].TrueDomain {
			t.Errorf("selected task %d is not a strong representative", i)
		}
	}
}

func TestSelectGoldenEdgeCases(t *testing.T) {
	r := mathx.NewRand(10)
	tasks := buildDomainTasks(r, 6, 3)
	if got := SelectGolden(nil, 5, 3); got != nil {
		t.Errorf("SelectGolden(no tasks) = %v", got)
	}
	if got := SelectGolden(tasks, 0, 3); got != nil {
		t.Errorf("SelectGolden(n'=0) = %v", got)
	}
	got := SelectGolden(tasks, 100, 3)
	if len(got) != 6 {
		t.Errorf("n' > n selected %d, want all 6", len(got))
	}
}

func TestAggregateDomainDistribution(t *testing.T) {
	tasks := []*model.Task{
		{ID: 0, Choices: []string{"a", "b"}, Domain: model.DomainVector{1, 0}, Truth: model.NoTruth, TrueDomain: model.NoTruth},
		{ID: 1, Choices: []string{"a", "b"}, Domain: model.DomainVector{0, 1}, Truth: model.NoTruth, TrueDomain: model.NoTruth},
	}
	tau := AggregateDomainDistribution(tasks, 2)
	if math.Abs(tau[0]-0.5) > 1e-12 || math.Abs(tau[1]-0.5) > 1e-12 {
		t.Errorf("tau = %v, want [0.5 0.5]", tau)
	}
	if tau := AggregateDomainDistribution(nil, 2); tau[0] != 0 {
		t.Errorf("empty tau = %v", tau)
	}
}
