package assign

import (
	"fmt"

	"docs/internal/mathx"
	"docs/internal/model"
)

// DefaultBatchSize is k, the number of tasks batched into one HIT; the
// paper uses k = 20 on AMT (and k = 3 per method in the parallel-comparison
// experiments).
const DefaultBatchSize = 20

// Assign selects up to k tasks from candidates with the highest benefit for
// the worker with quality q, per Theorem 4 (batch benefit is additive, so
// top-k individual benefits are optimal). exclude, if non-nil, reports tasks
// the worker must not receive (typically T(w), the tasks already answered).
// The returned IDs are in descending benefit order. Runs in O(n·m·ℓ²) for
// benefit computation plus O(n) selection.
func Assign(candidates []*TaskState, q model.QualityVector, k int, exclude func(taskID int) bool) []int {
	if k <= 0 {
		return nil
	}
	eligible := make([]*TaskState, 0, len(candidates))
	for _, ts := range candidates {
		if exclude != nil && exclude(ts.ID) {
			continue
		}
		eligible = append(eligible, ts)
	}
	if len(eligible) == 0 {
		return nil
	}
	benefits := make([]float64, len(eligible))
	for i, ts := range eligible {
		benefits[i] = Benefit(ts, q)
	}
	order := mathx.TopK(benefits, k)
	out := make([]int, 0, len(order))
	for _, i := range order {
		out = append(out, eligible[i].ID)
	}
	return out
}

// ValidateWorker checks the worker quality vector against m domains.
func ValidateWorker(q model.QualityVector, m int) error {
	if err := q.Validate(m); err != nil {
		return fmt.Errorf("assign: %w", err)
	}
	return nil
}
