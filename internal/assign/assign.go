package assign

import (
	"fmt"

	"docs/internal/model"
)

// DefaultBatchSize is k, the number of tasks batched into one HIT; the
// paper uses k = 20 on AMT (and k = 3 per method in the parallel-comparison
// experiments).
const DefaultBatchSize = 20

// scored is one heap entry: a candidate task's benefit plus its position in
// the candidate stream (the tie-breaker — earlier candidates win).
type scored struct {
	benefit float64
	idx     int
	id      int
}

// worse reports whether a ranks strictly below b: lower benefit, or equal
// benefit and later arrival. Using arrival order as the tie-break keeps the
// selection deterministic for identical inputs, which the campaign
// determinism tests rely on.
func (a scored) worse(b scored) bool {
	if a.benefit != b.benefit {
		return a.benefit < b.benefit
	}
	return a.idx > b.idx
}

// Assigner computes top-k assignments with reusable scratch buffers: the
// benefit evaluation and the bounded min-heap allocate nothing across calls
// (only the returned ID slice is fresh). An Assigner is not safe for
// concurrent use; pool one per goroutine.
type Assigner struct {
	sc   Scratch
	heap []scored
}

// Assign selects up to k tasks from candidates with the highest benefit for
// the worker with quality q, per Theorem 4 (batch benefit is additive, so
// top-k individual benefits are optimal). exclude, if non-nil, reports tasks
// the worker must not receive (typically T(w), the tasks already answered).
// The returned IDs are in descending benefit order. The candidates are
// streamed through a size-k min-heap: O(n·m·ℓ²) benefit computation plus
// O(n log k) selection, with no per-candidate allocation.
func (as *Assigner) Assign(candidates []*TaskState, q model.QualityVector, k int, exclude func(taskID int) bool) []int {
	return as.assign(len(candidates), func(i int) *TaskState { return candidates[i] }, q, k, exclude)
}

// AssignStates is Assign over a contiguous value slice — the serving hot
// path builds its candidates in one backing array and avoids materializing
// a pointer slice just to adapt the signature.
func (as *Assigner) AssignStates(candidates []TaskState, q model.QualityVector, k int, exclude func(taskID int) bool) []int {
	return as.assign(len(candidates), func(i int) *TaskState { return &candidates[i] }, q, k, exclude)
}

func (as *Assigner) assign(n int, at func(int) *TaskState, q model.QualityVector, k int, exclude func(taskID int) bool) []int {
	return as.AssignFunc(n, func(i int, ts *TaskState) bool {
		c := at(i)
		if exclude != nil && exclude(c.ID) {
			return false
		}
		*ts = *c
		return true
	}, q, k)
}

// AssignFunc is the streaming form of Assign: fetch is called once per
// candidate position in order and either fills ts with the candidate's
// current state (returning true) or rejects the position (returning false —
// an excluded, closed or stale candidate). Rejected positions do not
// consume a tie-break slot, so a stream pre-filtered by the caller and a
// stream filtered through fetch select identically — the property the
// serving core's candidate index relies on to stay bit-identical to the
// full-scan implementation. ts is scratch owned by the Assigner; fetch must
// not retain it across calls.
func (as *Assigner) AssignFunc(n int, fetch func(i int, ts *TaskState) bool, q model.QualityVector, k int) []int {
	if k <= 0 || n == 0 {
		return nil
	}
	// Clamp before sizing the heap: k arrives from the network (the HTTP
	// request's ?k= parameter) and must not drive an allocation.
	if k > n {
		k = n
	}
	if cap(as.heap) < k {
		as.heap = make([]scored, 0, k)
	}
	h := as.heap[:0]
	idx := 0
	var ts TaskState
	for i := 0; i < n; i++ {
		if !fetch(i, &ts) {
			continue
		}
		e := scored{benefit: BenefitWith(&ts, q, &as.sc), idx: idx, id: ts.ID}
		idx++
		if len(h) < k {
			h = append(h, e)
			siftUp(h, len(h)-1)
		} else if h[0].worse(e) {
			h[0] = e
			siftDown(h, 0)
		}
	}
	as.heap = h[:0] // retain capacity for the next call
	if len(h) == 0 {
		return nil
	}
	// Pop the heap into the output back to front: repeatedly remove the
	// worst survivor, leaving the IDs in descending benefit order.
	out := make([]int, len(h))
	for n := len(h); n > 0; n-- {
		out[n-1] = h[0].id
		h[0] = h[n-1]
		h = h[:n-1]
		siftDown(h, 0)
	}
	return out
}

// siftUp restores the min-heap property (worst entry at the root) after
// appending at position i.
func siftUp(h []scored, i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h[i].worse(h[p]) {
			return
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

// siftDown restores the min-heap property after replacing the root.
func siftDown(h []scored, i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		worst := i
		if l < n && h[l].worse(h[worst]) {
			worst = l
		}
		if r < n && h[r].worse(h[worst]) {
			worst = r
		}
		if worst == i {
			return
		}
		h[i], h[worst] = h[worst], h[i]
		i = worst
	}
}

// Assign is the convenience form of Assigner.Assign with one-shot buffers.
func Assign(candidates []*TaskState, q model.QualityVector, k int, exclude func(taskID int) bool) []int {
	var as Assigner
	return as.Assign(candidates, q, k, exclude)
}

// ValidateWorker checks the worker quality vector against m domains.
func ValidateWorker(q model.QualityVector, m int) error {
	if err := q.Validate(m); err != nil {
		return fmt.Errorf("assign: %w", err)
	}
	return nil
}
