package assign

import (
	"testing"

	"docs/internal/mathx"
	"docs/internal/model"
)

func TestAssignPicksHighestBenefit(t *testing.T) {
	// Three tasks: one ambiguous in the worker's expert domain, one
	// ambiguous outside it, one already confident. The expert-domain
	// ambiguous task must be ranked first, confident last.
	expertAmbiguous := &TaskState{
		ID: 1, R: model.DomainVector{1, 0},
		M: [][]float64{{0.5, 0.5}, {0.5, 0.5}}, S: []float64{0.5, 0.5},
	}
	otherAmbiguous := &TaskState{
		ID: 2, R: model.DomainVector{0, 1},
		M: [][]float64{{0.5, 0.5}, {0.5, 0.5}}, S: []float64{0.5, 0.5},
	}
	confident := &TaskState{
		ID: 3, R: model.DomainVector{1, 0},
		M: [][]float64{{0.99, 0.01}, {0.99, 0.01}}, S: []float64{0.99, 0.01},
	}
	// The worker is a domain-0 expert and a pure coin flip on domain 1, so
	// the domain-1 task carries exactly zero information benefit.
	q := model.QualityVector{0.95, 0.5}

	got := Assign([]*TaskState{confident, otherAmbiguous, expertAmbiguous}, q, 3, nil)
	if len(got) != 3 {
		t.Fatalf("assigned %d tasks, want 3", len(got))
	}
	if got[0] != 1 {
		t.Errorf("first assignment = task %d, want 1 (expert-domain ambiguous)", got[0])
	}
	if got[2] != 2 {
		t.Errorf("last assignment = task %d, want 2 (coin-flip domain, zero benefit)", got[2])
	}
}

func TestAssignExcludesAnswered(t *testing.T) {
	r := mathx.NewRand(3)
	states := make([]*TaskState, 10)
	for i := range states {
		states[i] = randomState(r, i, 2, 2)
	}
	q := model.QualityVector{0.8, 0.8}
	answered := map[int]bool{0: true, 1: true, 2: true}
	got := Assign(states, q, 5, func(id int) bool { return answered[id] })
	if len(got) != 5 {
		t.Fatalf("assigned %d, want 5", len(got))
	}
	for _, id := range got {
		if answered[id] {
			t.Errorf("assigned already-answered task %d", id)
		}
	}
}

func TestAssignFewerCandidatesThanK(t *testing.T) {
	r := mathx.NewRand(4)
	states := []*TaskState{randomState(r, 0, 2, 2), randomState(r, 1, 2, 2)}
	q := model.QualityVector{0.8, 0.8}
	got := Assign(states, q, 20, nil)
	if len(got) != 2 {
		t.Errorf("assigned %d, want 2", len(got))
	}
}

func TestAssignEdgeCases(t *testing.T) {
	q := model.QualityVector{0.8}
	if got := Assign(nil, q, 5, nil); got != nil {
		t.Errorf("Assign(no candidates) = %v", got)
	}
	r := mathx.NewRand(5)
	states := []*TaskState{randomState(r, 0, 1, 2)}
	if got := Assign(states, q, 0, nil); got != nil {
		t.Errorf("Assign(k=0) = %v", got)
	}
	all := func(int) bool { return true }
	if got := Assign(states, q, 5, all); got != nil {
		t.Errorf("Assign(all excluded) = %v", got)
	}
}

func TestValidateWorker(t *testing.T) {
	if err := ValidateWorker(model.QualityVector{0.5, 0.5}, 2); err != nil {
		t.Errorf("valid worker rejected: %v", err)
	}
	if err := ValidateWorker(model.QualityVector{0.5}, 2); err == nil {
		t.Error("wrong-size worker accepted")
	}
}

func TestAssignHugeKDoesNotAllocate(t *testing.T) {
	// k arrives from the network (?k= on the HTTP API); a huge value must
	// be clamped to the candidate count, not drive a heap allocation. The
	// allocation count is the guard: without the clamp, sizing the heap
	// from k would attempt a multi-gigabyte make.
	r := mathx.NewRand(6)
	states := []*TaskState{randomState(r, 0, 2, 2), randomState(r, 1, 2, 2)}
	q := model.QualityVector{0.8, 0.8}
	var as Assigner
	var got []int
	allocs := testing.AllocsPerRun(10, func() {
		got = as.Assign(states, q, 1<<30, nil)
	})
	if len(got) != 2 {
		t.Errorf("assigned %d, want 2", len(got))
	}
	// One small allocation for the returned ID slice; the heap itself must
	// be sized by the candidate count, not k.
	if allocs > 2 {
		t.Errorf("Assign(k=1<<30) made %.0f allocs/run, want <= 2 (clamp lost?)", allocs)
	}
}
